// PROFILE_SPEEDUP — wall-clock comparison of the port-load profile
// structures and the schedule validator engines on large schedules:
//
//   queries:     StepFunction (std::map deltas, O(n) scans)  vs
//                TimelineProfile (flat breakpoints + prefix caches,
//                O(log n) binary-searched queries)
//   validation:  validate_schedule kReference (serial, map profiles)  vs
//                kSerial (flat)  vs  kParallel (flat + per-port threads)
//
// Both sides of every pair are checked to produce identical results before
// timing is reported. Results land in BENCH_profile_speedup.json by default;
// pass --json=PATH to redirect or --quick for a smoke run that skips the
// JSON artifact. (ISSUE target: >=5x on profile queries and >=2x on
// whole-schedule validation at the 100k-request scale.)

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/step_function.hpp"
#include "core/timeline_profile.hpp"
#include "core/validate.hpp"
#include "util/random.hpp"
#include "workload/generator.hpp"
#include "workload/load.hpp"
#include "workload/scenario.hpp"

namespace gridbw {
namespace {

TimePoint at(double s) { return TimePoint::at_seconds(s); }

template <typename Fn>
double time_once(const Fn& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

struct Interval {
  double lo, hi, bw;
};

struct QueryProbe {
  double t0, t1;
};

/// One structure's timings over the same interval stack + query mix.
struct ProfileTiming {
  double build_s{0.0};
  double query_s{0.0};
  double checksum{0.0};  // fold of every query result, for cross-checking
};

template <typename Profile>
ProfileTiming run_profile(const std::vector<Interval>& intervals,
                          const std::vector<QueryProbe>& probes) {
  ProfileTiming out;
  Profile profile;
  out.build_s = time_once([&] {
    if constexpr (std::is_same_v<Profile, TimelineProfile>) {
      profile.reserve(intervals.size());
    }
    for (const Interval& iv : intervals) profile.add(at(iv.lo), at(iv.hi), iv.bw);
    // The flat profile defers sorting to the first query; fold that cost
    // into build so the query timing below is pure query work — the same
    // accounting the map gets (its sorting happens inside add).
    if constexpr (std::is_same_v<Profile, TimelineProfile>) {
      profile.ensure_merged();
    }
  });
  out.query_s = time_once([&] {
    double acc = 0.0;
    for (const QueryProbe& q : probes) {
      acc += profile.value_at(at(q.t0));
      acc += profile.max_over(at(q.t0), at(q.t1));
      acc += profile.integral(at(q.t0), at(q.t1));
    }
    acc += profile.global_max();
    out.checksum = acc;
  });
  return out;
}

const Network& paper_network() {
  static const Network net =
      Network::uniform(10, 10, Bandwidth::gigabytes_per_second(1));
  return net;
}

std::vector<Request> workload_of(std::size_t count) {
  workload::Scenario scenario =
      workload::paper_flexible(Duration::seconds(1), Duration::seconds(1), 4.0);
  scenario.spec.mean_interarrival =
      workload::interarrival_for_load(scenario.spec, scenario.network, 3.0);
  scenario.spec.horizon =
      scenario.spec.mean_interarrival * static_cast<double>(count);
  Rng rng{1234};
  auto requests = workload::generate(scenario.spec, rng);
  requests.resize(std::min(requests.size(), count));
  return requests;
}

bool same_report(const ValidationReport& a, const ValidationReport& b) {
  if (a.violations.size() != b.violations.size()) return false;
  for (std::size_t k = 0; k < a.violations.size(); ++k) {
    if (a.violations[k].kind != b.violations[k].kind ||
        a.violations[k].request != b.violations[k].request ||
        a.violations[k].port != b.violations[k].port ||
        a.violations[k].detail != b.violations[k].detail) {
      return false;
    }
  }
  return true;
}

int run(int argc, const char* const* argv) {
  auto args = bench::BenchArgs::parse(argc, argv);
  // This bench's artifact is the ISSUE's speedup proof; keep writing it by
  // default on full runs, but never let a --quick smoke run overwrite it.
  if (args.json_path.empty() && !args.quick) {
    args.json_path = "BENCH_profile_speedup.json";
  }
  const std::vector<std::size_t> sizes =
      args.quick ? std::vector<std::size_t>{2000}
                 : std::vector<std::size_t>{10000, 100000};
  const std::size_t query_count = args.quick ? 100 : 400;
  const std::size_t reps = args.quick ? 1 : 3;

  Table table{{"section", "requests", "variant", "build_s", "run_s", "speedup"}};
  std::vector<std::string> names;
  std::vector<RunningStats> walls;

  // -------------------------------------------------------------------
  // Part A: profile queries on a single port's load profile.
  // -------------------------------------------------------------------
  for (const std::size_t n : sizes) {
    Rng rng{args.config.base_seed};
    std::vector<Interval> intervals;
    intervals.reserve(n);
    const double horizon = static_cast<double>(n);  // ~1 new transfer per second
    for (std::size_t k = 0; k < n; ++k) {
      const double lo = rng.uniform(0.0, horizon);
      intervals.push_back(
          Interval{lo, lo + rng.uniform(10.0, 2000.0), rng.uniform(1e7, 1e9)});
    }
    std::vector<QueryProbe> probes;
    probes.reserve(query_count);
    for (std::size_t q = 0; q < query_count; ++q) {
      const double t0 = rng.uniform(-10.0, horizon);
      probes.push_back(QueryProbe{t0, t0 + rng.uniform(1.0, 500.0)});
    }

    RunningStats map_build, map_query, flat_build, flat_query;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const auto map_t = run_profile<StepFunction>(intervals, probes);
      const auto flat_t = run_profile<TimelineProfile>(intervals, probes);
      if (map_t.checksum != flat_t.checksum) {
        std::cerr << "FATAL: profile structures diverge at n=" << n << "\n";
        return 1;
      }
      map_build.add(map_t.build_s);
      map_query.add(map_t.query_s);
      flat_build.add(flat_t.build_s);
      flat_query.add(flat_t.query_s);
    }
    const double speedup =
        flat_query.mean() > 0.0 ? map_query.mean() / flat_query.mean() : 0.0;
    table.add_row({"queries", std::to_string(n), "map", format_double(map_build.mean(), 4),
                   format_double(map_query.mean(), 4), "1.00x"});
    table.add_row({"queries", std::to_string(n), "flat",
                   format_double(flat_build.mean(), 4), format_double(flat_query.mean(), 4),
                   format_double(speedup, 2) + "x"});
    names.push_back("queries/" + std::to_string(n) + "/map");
    names.push_back("queries/" + std::to_string(n) + "/flat");
    walls.push_back(map_query);
    walls.push_back(flat_query);
    std::cout << "profile queries, n=" << n << ": map " << format_double(map_query.mean(), 4)
              << "s vs flat " << format_double(flat_query.mean(), 4) << "s  ("
              << format_double(speedup, 1) << "x)\n";
  }

  // -------------------------------------------------------------------
  // Part B: whole-schedule validation, reference vs flat vs parallel.
  // -------------------------------------------------------------------
  for (const std::size_t n : sizes) {
    const auto requests = workload_of(n);
    std::vector<Assignment> assignments;
    assignments.reserve(requests.size());
    for (const Request& r : requests) {
      assignments.push_back(Assignment{r.id, r.release, r.min_rate()});
    }

    auto options_for = [&](ValidateEngine engine) {
      ValidateOptions options;
      options.engine = engine;
      options.threads = args.config.threads;
      return options;
    };
    ValidationReport ref_report, serial_report, parallel_report;
    RunningStats ref_wall, serial_wall, parallel_wall;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      ref_wall.add(time_once([&] {
        ref_report = validate_assignments(paper_network(), requests, assignments,
                                          options_for(ValidateEngine::kReference));
      }));
      serial_wall.add(time_once([&] {
        serial_report = validate_assignments(paper_network(), requests, assignments,
                                             options_for(ValidateEngine::kSerial));
      }));
      parallel_wall.add(time_once([&] {
        parallel_report = validate_assignments(paper_network(), requests, assignments,
                                               options_for(ValidateEngine::kParallel));
      }));
    }
    if (!same_report(ref_report, serial_report) ||
        !same_report(ref_report, parallel_report)) {
      std::cerr << "FATAL: validator engines diverge at n=" << n << "\n";
      return 1;
    }
    const double serial_speedup =
        serial_wall.mean() > 0.0 ? ref_wall.mean() / serial_wall.mean() : 0.0;
    const double parallel_speedup =
        parallel_wall.mean() > 0.0 ? ref_wall.mean() / parallel_wall.mean() : 0.0;
    table.add_row({"validate", std::to_string(requests.size()), "reference", "-",
                   format_double(ref_wall.mean(), 4), "1.00x"});
    table.add_row({"validate", std::to_string(requests.size()), "flat-serial", "-",
                   format_double(serial_wall.mean(), 4),
                   format_double(serial_speedup, 2) + "x"});
    table.add_row({"validate", std::to_string(requests.size()), "flat-parallel", "-",
                   format_double(parallel_wall.mean(), 4),
                   format_double(parallel_speedup, 2) + "x"});
    names.push_back("validate/" + std::to_string(requests.size()) + "/reference");
    names.push_back("validate/" + std::to_string(requests.size()) + "/flat-serial");
    names.push_back("validate/" + std::to_string(requests.size()) + "/flat-parallel");
    walls.push_back(ref_wall);
    walls.push_back(serial_wall);
    walls.push_back(parallel_wall);
    std::cout << "validation, n=" << requests.size() << ": reference "
              << format_double(ref_wall.mean(), 4) << "s, flat-serial "
              << format_double(serial_wall.mean(), 4) << "s ("
              << format_double(serial_speedup, 1) << "x), flat-parallel "
              << format_double(parallel_wall.mean(), 4) << "s ("
              << format_double(parallel_speedup, 1) << "x)\n";
  }

  const std::string title =
      "Flat timeline profiles — map vs flat queries, serial vs parallel validation";
  bench::emit(title, table, args);
  if (!args.json_path.empty()) {
    bench::write_bench_json(args.json_path, "profile_speedup", title, table, names,
                            walls);
    std::cout << "(json written to " << args.json_path << ")\n";
  }
  return 0;
}

}  // namespace
}  // namespace gridbw

int main(int argc, char** argv) { return gridbw::run(argc, argv); }
