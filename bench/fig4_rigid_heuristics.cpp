// FIG4 — reproduces Figure 4: rigid-request heuristics (FCFS/FIFO,
// CUMULATED-SLOTS, MINBW-SLOTS, MINVOL-SLOTS) compared on (a) request
// accept rate and (b) resource utilization ratio, across system load.
//
// Paper shape to match (§4.4): FIFO is far worst (~10 % accept, < 20 %
// utilization); MINVOL-SLOTS trails MINBW-SLOTS and CUMULATED-SLOTS, which
// are very close to each other.

#include <vector>

#include "bench_common.hpp"
#include "heuristics/registry.hpp"
#include "metrics/objectives.hpp"
#include "workload/generator.hpp"
#include "workload/load.hpp"
#include "workload/scenario.hpp"

namespace gridbw {
namespace {

int run(int argc, const char* const* argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::vector<double> loads =
      args.quick ? std::vector<double>{1.0, 4.0}
                 : std::vector<double>{0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0};
  const Duration horizon = Duration::seconds(args.quick ? 1000 : 4000);
  const auto lineup = heuristics::rigid_schedulers();

  std::vector<std::string> header{"load"};
  std::vector<std::string> names;
  for (const auto& h : lineup) {
    header.push_back(h.name + " accept");
    header.push_back(h.name + " util");
    names.push_back(h.name);
  }
  Table table{header};
  std::vector<RunningStats> wall(lineup.size());

  for (const double load : loads) {
    workload::Scenario scenario = workload::paper_rigid(Duration::seconds(1), horizon);
    scenario.spec.mean_interarrival =
        workload::interarrival_for_load(scenario.spec, scenario.network, load);

    // One (replication, heuristic) cell per work item: independent
    // heuristics of the same replication run concurrently, each over the
    // identical regenerated workload.
    const auto tasked = metrics::run_replicated_tasks(
        args.config, lineup.size(), [&](Rng& rng, std::size_t, std::size_t t) {
          const auto requests = workload::generate(scenario.spec, rng);
          const auto& h = lineup[t];
          const auto result = h.run(scenario.network, requests);
          metrics::MetricBag bag;
          bag[h.name + "/accept"] = metrics::accept_rate(requests, result.schedule);
          bag[h.name + "/util"] =
              metrics::utilization_over(scenario.network, requests, result.schedule,
                                        TimePoint::origin(),
                                        TimePoint::origin() + horizon);
          return bag;
        });
    for (std::size_t t = 0; t < lineup.size(); ++t) {
      wall[t].merge(tasked.task_wall_seconds[t]);
    }

    std::vector<std::string> row{format_double(load, 2)};
    for (const auto& h : lineup) {
      row.push_back(bench::cell(metrics::metric(tasked.metrics, h.name + "/accept")));
      row.push_back(bench::cell(metrics::metric(tasked.metrics, h.name + "/util")));
    }
    table.add_row(std::move(row));
  }

  const std::string title = "Fig. 4 — rigid heuristics vs load (accept rate, utilization)";
  bench::emit(title, table, args);
  bench::emit_timing("fig4_rigid_heuristics", title, table, names, wall, args);

  if (args.wants_observability()) {
    // Representative replay at the base seed: the sweep's heaviest load.
    workload::Scenario scenario = workload::paper_rigid(Duration::seconds(1), horizon);
    scenario.spec.mean_interarrival =
        workload::interarrival_for_load(scenario.spec, scenario.network, loads.back());
    Rng rng{args.config.base_seed};
    const auto requests = workload::generate(scenario.spec, rng);
    bench::dump_observability(args, scenario.network, requests, lineup,
                              "fig4_rigid_heuristics");
  }
  return 0;
}

}  // namespace
}  // namespace gridbw

int main(int argc, char** argv) { return gridbw::run(argc, argv); }
