// TUNE — the §5.3 tuning-factor study: accept rate as a function of f under
// very underloaded conditions, for both GREEDY and WINDOW(400). The paper
// reports the accept-rate gain of lowering f to be roughly linear in
// (1 - f) in this regime; the last columns print the measured gain over
// f = 1 and the gain predicted by a linear fit through (f=1, gain=0).

#include <vector>

#include "bench_common.hpp"
#include "heuristics/registry.hpp"
#include "metrics/objectives.hpp"
#include "workload/generator.hpp"
#include "workload/scenario.hpp"

namespace gridbw {
namespace {

using heuristics::BandwidthPolicy;

int run(int argc, const char* const* argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::vector<double> fs =
      args.quick ? std::vector<double>{0.2, 0.5, 0.8, 1.0}
                 : std::vector<double>{0.1, 0.2, 0.3, 0.4, 0.5,
                                       0.6, 0.7, 0.8, 0.9, 1.0};
  const Duration interarrival = Duration::seconds(args.quick ? 12 : 10);
  const Duration horizon = Duration::seconds(args.quick ? 2000 : 8000);

  const workload::Scenario scenario =
      workload::paper_flexible(interarrival, horizon, 4.0);

  // One pass per f, both schedulers, plus the mean stretch (how much faster
  // transfers complete — the grid-application payoff of a larger f).
  struct Point {
    double f;
    RunningStats greedy, window, stretch;
  };
  std::vector<Point> points;

  for (const double f : fs) {
    Point p;
    p.f = f;
    const BandwidthPolicy policy = BandwidthPolicy::fraction_of_max(f);
    const auto greedy = heuristics::make_greedy(policy);
    heuristics::WindowOptions opt;
    opt.step = Duration::seconds(400);
    opt.policy = policy;
    const auto window = heuristics::make_window(opt);

    const auto stats = metrics::run_replicated(args.config, [&](Rng& rng, std::size_t) {
      const auto requests = workload::generate(scenario.spec, rng);
      metrics::MetricBag bag;
      const auto g = greedy.run(scenario.network, requests);
      bag["greedy"] = g.accept_rate();
      bag["stretch"] = metrics::stretch_stats(requests, g.schedule).mean();
      bag["window"] = window.run(scenario.network, requests).accept_rate();
      return bag;
    });
    p.greedy = metrics::metric(stats, "greedy");
    p.window = metrics::metric(stats, "window");
    p.stretch = metrics::metric(stats, "stretch");
    points.push_back(p);
  }

  const double base_greedy = points.back().greedy.mean();  // f = 1
  Table table{{"f", "greedy accept", "window accept", "greedy gain vs f=1",
               "gain per (1-f)", "mean stretch"}};
  for (const Point& p : points) {
    const double gain = p.greedy.mean() - base_greedy;
    const double slope = p.f < 1.0 ? gain / (1.0 - p.f) : 0.0;
    table.add_row({format_double(p.f, 2), bench::cell(p.greedy), bench::cell(p.window),
                   format_double(gain, 4), format_double(slope, 4),
                   format_double(p.stretch.mean(), 3)});
  }
  bench::emit("Tuning factor study (§5.3) — accept rate vs f, underloaded", table,
              args);
  std::cout << "A roughly constant 'gain per (1-f)' column reproduces the paper's\n"
               "claim that the accept-rate gain is linear in (1 - f) under low load.\n";
  return 0;
}

}  // namespace
}  // namespace gridbw

int main(int argc, char** argv) { return gridbw::run(argc, argv); }
