// LONG — the companion long-lived problem (§2.1/§3): uniform long-lived
// requests scheduled by the polynomial optimum (max-flow) vs the online
// greedy, across demand intensity. The paper states the uniform case is
// polynomial; this bench measures how much optimality is worth over greedy
// and how the gap closes as the per-flow rate shrinks (more slots per port
// -> greedy's early mistakes matter less).

#include <vector>

#include "bench_common.hpp"
#include "longlived/longlived.hpp"
#include "util/random.hpp"

namespace gridbw {
namespace {

int run(int argc, const char* const* argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t ports = 10;
  const Network net =
      Network::uniform(ports, ports, Bandwidth::gigabytes_per_second(1));

  Table table{{"flow rate MB/s", "demand/capacity", "greedy accept", "optimal accept",
               "greedy/optimal"}};

  const std::vector<double> rates = args.quick
                                        ? std::vector<double>{100.0, 500.0}
                                        : std::vector<double>{50.0, 100.0, 250.0,
                                                              500.0, 1000.0};
  for (const double rate_mbps : rates) {
    for (const double demand_ratio : {1.0, 2.0, 4.0}) {
      const Bandwidth rate = Bandwidth::megabytes_per_second(rate_mbps);
      // Number of requests targeting `demand_ratio` x the schedulable slots.
      const double slots_per_port = 1000.0 / rate_mbps;
      const auto count = static_cast<std::size_t>(
          demand_ratio * slots_per_port * static_cast<double>(ports));

      const auto stats =
          metrics::run_replicated(args.config, [&](Rng& rng, std::size_t) {
            std::vector<longlived::LongLivedRequest> rs;
            for (RequestId id = 1; id <= count; ++id) {
              rs.push_back(longlived::LongLivedRequest{
                  id, IngressId{static_cast<std::size_t>(rng.uniform_int(0, 9))},
                  EgressId{static_cast<std::size_t>(rng.uniform_int(0, 9))}, rate});
            }
            const auto greedy = longlived::schedule_greedy(net, rs);
            const auto optimal = longlived::schedule_uniform_optimal(net, rs, rate);
            const double opt = static_cast<double>(optimal.accepted_count());
            return metrics::MetricBag{
                {"greedy", greedy.accept_rate()},
                {"optimal", optimal.accept_rate()},
                {"ratio", opt == 0.0 ? 1.0
                                     : static_cast<double>(greedy.accepted_count()) /
                                           opt}};
          });

      table.add_row({format_double(rate_mbps, 0), format_double(demand_ratio, 1),
                     bench::cell(metrics::metric(stats, "greedy")),
                     bench::cell(metrics::metric(stats, "optimal")),
                     bench::cell(metrics::metric(stats, "ratio"))});
    }
  }
  bench::emit("Long-lived uniform requests — polynomial optimum vs greedy (§3)",
              table, args);
  return 0;
}

}  // namespace
}  // namespace gridbw

int main(int argc, char** argv) { return gridbw::run(argc, argv); }
