// ENGINE_SPEEDUP — wall-clock comparison of the fast admission engines
// against their paper-literal references on a large (default 10k-request)
// workload:
//
//   *-SLOTS:  SlotsEngine::kRebuild  vs  kIncremental  (all three SlotCosts)
//   WINDOW:   WindowEngine::kScan    vs  kHeap  vs  kAuto
//
// All members of each group are checked to produce the identical schedule
// before timing is reported. Results (including slices/sec telemetry) are
// written to BENCH_engine_speedup.json by default; pass --json=PATH to
// redirect or --quick for a smoke run that skips the JSON artifact.
//
// `--scale=N` appends a CUMULATED-SLOTS incremental-only scaling row at N
// requests (the rebuild oracle is quadratic and unaffordable there). Full
// runs default to N = 1,000,000; --quick defaults to off. CI's sanitizer
// smoke passes `--quick --scale=100000`.

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "heuristics/flexible_window.hpp"
#include "heuristics/rigid_slots.hpp"
#include "workload/generator.hpp"
#include "workload/load.hpp"
#include "workload/scenario.hpp"

namespace gridbw {
namespace {

std::vector<Request> workload_of(std::size_t count, bool rigid) {
  workload::Scenario scenario =
      rigid ? workload::paper_rigid(Duration::seconds(1), Duration::seconds(1))
            : workload::paper_flexible(Duration::seconds(1), Duration::seconds(1), 4.0);
  scenario.spec.mean_interarrival =
      workload::interarrival_for_load(scenario.spec, scenario.network, 3.0);
  scenario.spec.horizon =
      scenario.spec.mean_interarrival * static_cast<double>(count);
  Rng rng{1234};
  auto requests = workload::generate(scenario.spec, rng);
  requests.resize(std::min(requests.size(), count));
  return requests;
}

const Network& paper_network() {
  static const Network net =
      Network::uniform(10, 10, Bandwidth::gigabytes_per_second(1));
  return net;
}

/// Times `fn` (which returns a ScheduleResult) `reps` times.
template <typename Fn>
RunningStats time_runs(std::size_t reps, const Fn& fn, ScheduleResult* last) {
  RunningStats wall;
  for (std::size_t k = 0; k < reps; ++k) {
    const auto t0 = std::chrono::steady_clock::now();
    auto result = fn();
    const auto t1 = std::chrono::steady_clock::now();
    wall.add(std::chrono::duration<double>(t1 - t0).count());
    *last = std::move(result);
  }
  return wall;
}

bool same_schedule(const ScheduleResult& a, const ScheduleResult& b) {
  if (a.rejected.size() != b.rejected.size()) return false;
  if (a.schedule.assignments().size() != b.schedule.assignments().size()) return false;
  for (std::size_t k = 0; k < a.schedule.assignments().size(); ++k) {
    const Assignment& x = a.schedule.assignments()[k];
    const Assignment& y = b.schedule.assignments()[k];
    if (x.request != y.request || !(x.start == y.start) || !(x.bw == y.bw)) return false;
  }
  return true;
}

int run(int argc, const char* const* argv) {
  auto args = bench::BenchArgs::parse(argc, argv);
  const Flags flags{argc, argv};
  // This bench's artifact is the ISSUE's speedup proof; keep writing it by
  // default on full runs, but never let a --quick smoke run overwrite it.
  if (args.json_path.empty() && !args.quick) {
    args.json_path = "BENCH_engine_speedup.json";
  }
  const std::size_t count = args.quick ? 2000 : 10000;
  const std::size_t reps = args.quick ? 1 : 3;
  const std::size_t scale = static_cast<std::size_t>(
      flags.get_int("scale", args.quick ? 0 : 1000000));

  const auto rigid = workload_of(count, true);
  const auto flexible = workload_of(count, false);
  std::cout << "workload: " << rigid.size() << " rigid / " << flexible.size()
            << " flexible requests, " << reps << " timed runs each\n";

  Table table{{"kernel", "engine", "wall_s", "speedup", "slices", "skipped",
               "admission_checks", "slices_per_s"}};
  std::vector<std::string> names;
  std::vector<RunningStats> walls;

  for (const auto cost : {heuristics::SlotCost::kCumulated,
                          heuristics::SlotCost::kMinBandwidth,
                          heuristics::SlotCost::kMinVolume}) {
    const std::string kernel = to_string(cost);
    ScheduleResult ref, fast;
    heuristics::SlotsTelemetry ref_tm, fast_tm;
    const RunningStats ref_wall = time_runs(
        reps,
        [&] {
          ref_tm = {};
          return heuristics::schedule_rigid_slots(
              paper_network(), rigid, cost, heuristics::SlotsEngine::kRebuild, &ref_tm);
        },
        &ref);
    const RunningStats fast_wall = time_runs(
        reps,
        [&] {
          fast_tm = {};
          return heuristics::schedule_rigid_slots(paper_network(), rigid, cost,
                                                  heuristics::SlotsEngine::kIncremental,
                                                  &fast_tm);
        },
        &fast);
    if (!same_schedule(ref, fast)) {
      std::cerr << "FATAL: engines diverge for " << kernel << "\n";
      return 1;
    }
    const double speedup = fast_wall.mean() > 0.0 ? ref_wall.mean() / fast_wall.mean() : 0.0;
    for (const auto& [engine, wall, tm] :
         {std::tuple{std::string{"rebuild"}, ref_wall, ref_tm},
          std::tuple{std::string{"incremental"}, fast_wall, fast_tm}}) {
      table.add_row({kernel, engine, format_double(wall.mean(), 4),
                     engine == "incremental" ? format_double(speedup, 2) + "x" : "1.00x",
                     std::to_string(tm.slices), std::to_string(tm.skipped_slices),
                     std::to_string(tm.admission_checks),
                     format_double(wall.mean() > 0.0
                                       ? static_cast<double>(tm.slices) / wall.mean()
                                       : 0.0,
                                   0)});
      names.push_back(kernel + "/" + engine);
      walls.push_back(wall);
    }
  }

  {
    heuristics::WindowOptions opt;
    opt.step = Duration::seconds(100);
    opt.policy = heuristics::BandwidthPolicy::fraction_of_max(1.0);
    // Window runs drain microsecond-scale batches, so engine ratios sit
    // within scheduler noise of 1.0 on this workload; extra reps plus
    // best-of-reps ratios keep the reported speedups stable run to run.
    const std::size_t window_reps = args.quick ? 1 : 3 * reps;
    ScheduleResult ref;
    opt.engine = heuristics::WindowEngine::kScan;
    const RunningStats ref_wall = time_runs(
        window_reps,
        [&] { return heuristics::schedule_flexible_window(paper_network(), flexible, opt); },
        &ref);
    table.add_row({"window", "scan", format_double(ref_wall.mean(), 4), "1.00x", "-",
                   "-", "-", "-"});
    names.push_back("window/scan");
    walls.push_back(ref_wall);
    for (const auto engine :
         {heuristics::WindowEngine::kHeap, heuristics::WindowEngine::kAuto}) {
      ScheduleResult fast;
      opt.engine = engine;
      const RunningStats fast_wall = time_runs(
          window_reps,
          [&] { return heuristics::schedule_flexible_window(paper_network(), flexible, opt); },
          &fast);
      if (!same_schedule(ref, fast)) {
        std::cerr << "FATAL: engines diverge for window/" << to_string(engine) << "\n";
        return 1;
      }
      const double speedup =
          fast_wall.min() > 0.0 ? ref_wall.min() / fast_wall.min() : 0.0;
      table.add_row({"window", to_string(engine), format_double(fast_wall.mean(), 4),
                     format_double(speedup, 2) + "x", "-", "-", "-", "-"});
      names.push_back("window/" + to_string(engine));
      walls.push_back(fast_wall);
    }
  }

  // Scaling row: CUMULATED-SLOTS incremental alone at `scale` requests. The
  // rebuild oracle re-sorts and re-admits every active request per slice —
  // quadratic in practice — so only the incremental engine is timed here;
  // its schedule is differentially verified against rebuild at the 10k size
  // above (and in tests/incremental_engine_test.cpp).
  if (scale > 0) {
    const auto big = workload_of(scale, true);
    std::cout << "scaling workload: " << big.size() << " rigid requests\n";
    ScheduleResult result;
    heuristics::SlotsTelemetry tm;
    // Quick smokes run the scaling row once (its JSON then carries
    // stddev_s: null); full runs take >= 2 timed repetitions so the
    // reported spread is a real measurement.
    const std::size_t scale_reps =
        args.quick ? 1 : std::max<std::size_t>(2, reps);
    const RunningStats wall = time_runs(
        scale_reps,
        [&] {
          tm = {};
          return heuristics::schedule_rigid_slots(
              paper_network(), big, heuristics::SlotCost::kCumulated,
              heuristics::SlotsEngine::kIncremental, &tm);
        },
        &result);
    table.add_row({"cumulated-slots@" + std::to_string(big.size()), "incremental",
                   format_double(wall.mean(), 4), "-", std::to_string(tm.slices),
                   std::to_string(tm.skipped_slices),
                   std::to_string(tm.admission_checks),
                   format_double(wall.mean() > 0.0
                                     ? static_cast<double>(tm.slices) / wall.mean()
                                     : 0.0,
                                 0)});
    names.push_back("cumulated-slots-scale/incremental");
    walls.push_back(wall);
  }

  const std::string title = "Admission engine speedup — fast vs reference, " +
                            std::to_string(count) + " requests";
  bench::emit(title, table, args);
  if (!args.json_path.empty()) {
    bench::write_bench_json(args.json_path, "engine_speedup", title, table, names,
                            walls);
    std::cout << "(json written to " << args.json_path << ")\n";
  }
  return 0;
}

}  // namespace
}  // namespace gridbw

int main(int argc, char** argv) { return gridbw::run(argc, argv); }
