// ORDER — ablation of the WINDOW heuristic's candidate-selection rule: the
// paper's min-cost order (balance port utilization) against EDF (most
// urgent first) and SJF (shortest transfer first), across load, with the
// paper's objectives plus port fairness.
//
// This probes *why* the paper's cost works: min-cost spreads load across
// ports (higher Jain fairness), EDF saves tight-deadline requests, SJF
// drains the queue fastest. Under symmetric workloads the three land close;
// min-cost wins as port contention grows.

#include <vector>

#include "bench_common.hpp"
#include "heuristics/registry.hpp"
#include "metrics/objectives.hpp"
#include "workload/generator.hpp"
#include "workload/scenario.hpp"

namespace gridbw {
namespace {

using heuristics::BandwidthPolicy;
using heuristics::CandidateOrder;

int run(int argc, const char* const* argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::vector<double> interarrivals =
      args.quick ? std::vector<double>{0.5, 5.0}
                 : std::vector<double>{0.2, 0.5, 1.0, 2.0, 5.0};
  const Duration horizon = Duration::seconds(args.quick ? 300 : 800);

  Table table{{"interarrival_s", "order", "accept rate", "egress Jain index"}};

  for (const double ia : interarrivals) {
    const workload::Scenario scenario =
        workload::paper_flexible(Duration::seconds(ia), horizon, 4.0);
    for (const CandidateOrder order :
         {CandidateOrder::kMinCost, CandidateOrder::kEarliestDeadline,
          CandidateOrder::kShortestJob}) {
      heuristics::WindowOptions opt;
      opt.step = Duration::seconds(100);
      opt.policy = BandwidthPolicy::fraction_of_max(1.0);
      opt.order = order;

      const auto stats =
          metrics::run_replicated(args.config, [&](Rng& rng, std::size_t) {
            const auto requests = workload::generate(scenario.spec, rng);
            const auto result = heuristics::schedule_flexible_window(
                scenario.network, requests, opt);
            const auto granted = metrics::granted_per_egress(
                scenario.network, requests, result.schedule);
            std::vector<double> bytes;
            bytes.reserve(granted.size());
            for (Volume v : granted) bytes.push_back(v.to_bytes());
            return metrics::MetricBag{
                {"accept", metrics::accept_rate(requests, result.schedule)},
                {"jain", metrics::jain_fairness(bytes)}};
          });

      table.add_row({format_double(ia, 1), to_string(order),
                     bench::cell(metrics::metric(stats, "accept")),
                     bench::cell(metrics::metric(stats, "jain"))});
    }
  }
  bench::emit("WINDOW candidate-order ablation — min-cost vs EDF vs SJF", table,
              args);
  return 0;
}

}  // namespace
}  // namespace gridbw

int main(int argc, char** argv) { return gridbw::run(argc, argv); }
