// FIG5 — reproduces Figure 5: FCFS/greedy vs interval-based WINDOW
// heuristics (several interval lengths) on accept rate, in the heavy-loaded
// regime (mean inter-arrival 0.1 .. 5 s), bandwidth policy f = 1.
//
// Paper shape to match (§5.3): in a very loaded network the interval-based
// heuristics beat FCFS (which stays under ~20 % accept); the longer the
// interval, the better the accept rate (> 50 % with large windows).

#include <vector>

#include "bench_common.hpp"
#include "heuristics/registry.hpp"
#include "workload/generator.hpp"
#include "workload/scenario.hpp"

namespace gridbw {
namespace {

int run(int argc, const char* const* argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::vector<double> interarrivals =
      args.quick ? std::vector<double>{0.2, 2.0}
                 : std::vector<double>{0.1, 0.2, 0.5, 1.0, 2.0, 5.0};
  const Duration horizon = Duration::seconds(args.quick ? 300 : 1000);

  using heuristics::BandwidthPolicy;
  std::vector<heuristics::NamedScheduler> lineup;
  lineup.push_back(heuristics::make_greedy(BandwidthPolicy::fraction_of_max(1.0)));
  for (const double step : {100.0, 200.0, 400.0}) {
    heuristics::WindowOptions opt;
    opt.step = Duration::seconds(step);
    opt.policy = BandwidthPolicy::fraction_of_max(1.0);
    lineup.push_back(heuristics::make_window(opt));
  }

  std::vector<std::string> header{"interarrival_s"};
  std::vector<std::string> names;
  for (const auto& h : lineup) {
    header.push_back(h.name + " accept");
    names.push_back(h.name);
  }
  Table table{header};
  std::vector<RunningStats> wall(lineup.size());

  for (const double ia : interarrivals) {
    workload::Scenario scenario =
        workload::paper_flexible(Duration::seconds(ia), horizon, 4.0);
    const auto tasked = metrics::run_replicated_tasks(
        args.config, lineup.size(), [&](Rng& rng, std::size_t, std::size_t t) {
          const auto requests = workload::generate(scenario.spec, rng);
          const auto& h = lineup[t];
          metrics::MetricBag bag;
          bag[h.name] = h.run(scenario.network, requests).accept_rate();
          return bag;
        });
    for (std::size_t t = 0; t < lineup.size(); ++t) {
      wall[t].merge(tasked.task_wall_seconds[t]);
    }

    std::vector<std::string> row{format_double(ia, 2)};
    for (const auto& h : lineup) {
      row.push_back(bench::cell(metrics::metric(tasked.metrics, h.name)));
    }
    table.add_row(std::move(row));
  }

  const std::string title = "Fig. 5 — FCFS vs WINDOW(100/200/400), heavy load, f = 1";
  bench::emit(title, table, args);
  bench::emit_timing("fig5_window_vs_fcfs", title, table, names, wall, args);

  if (args.wants_observability()) {
    // Representative replay at the base seed: the heaviest inter-arrival.
    const workload::Scenario scenario =
        workload::paper_flexible(Duration::seconds(interarrivals.front()), horizon, 4.0);
    Rng rng{args.config.base_seed};
    const auto requests = workload::generate(scenario.spec, rng);
    bench::dump_observability(args, scenario.network, requests, lineup,
                              "fig5_window_vs_fcfs");
  }
  return 0;
}

}  // namespace
}  // namespace gridbw

int main(int argc, char** argv) { return gridbw::run(argc, argv); }
