// FIG5 — reproduces Figure 5: FCFS/greedy vs interval-based WINDOW
// heuristics (several interval lengths) on accept rate, in the heavy-loaded
// regime (mean inter-arrival 0.1 .. 5 s), bandwidth policy f = 1.
//
// Paper shape to match (§5.3): in a very loaded network the interval-based
// heuristics beat FCFS (which stays under ~20 % accept); the longer the
// interval, the better the accept rate (> 50 % with large windows).

#include <vector>

#include "bench_common.hpp"
#include "heuristics/registry.hpp"
#include "workload/generator.hpp"
#include "workload/scenario.hpp"

namespace gridbw {
namespace {

int run(int argc, const char* const* argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::vector<double> interarrivals =
      args.quick ? std::vector<double>{0.2, 2.0}
                 : std::vector<double>{0.1, 0.2, 0.5, 1.0, 2.0, 5.0};
  const Duration horizon = Duration::seconds(args.quick ? 300 : 1000);

  using heuristics::BandwidthPolicy;
  std::vector<heuristics::NamedScheduler> lineup;
  lineup.push_back(heuristics::make_greedy(BandwidthPolicy::fraction_of_max(1.0)));
  for (const double step : {100.0, 200.0, 400.0}) {
    heuristics::WindowOptions opt;
    opt.step = Duration::seconds(step);
    opt.policy = BandwidthPolicy::fraction_of_max(1.0);
    lineup.push_back(heuristics::make_window(opt));
  }

  std::vector<std::string> header{"interarrival_s"};
  for (const auto& h : lineup) header.push_back(h.name + " accept");
  Table table{header};

  for (const double ia : interarrivals) {
    workload::Scenario scenario =
        workload::paper_flexible(Duration::seconds(ia), horizon, 4.0);
    const auto stats = metrics::run_replicated(args.config, [&](Rng& rng, std::size_t) {
      const auto requests = workload::generate(scenario.spec, rng);
      metrics::MetricBag bag;
      for (const auto& h : lineup) {
        bag[h.name] = h.run(scenario.network, requests).accept_rate();
      }
      return bag;
    });

    std::vector<std::string> row{format_double(ia, 2)};
    for (const auto& h : lineup) row.push_back(bench::cell(metrics::metric(stats, h.name)));
    table.add_row(std::move(row));
  }

  bench::emit("Fig. 5 — FCFS vs WINDOW(100/200/400), heavy load, f = 1", table, args);
  return 0;
}

}  // namespace
}  // namespace gridbw

int main(int argc, char** argv) { return gridbw::run(argc, argv); }
