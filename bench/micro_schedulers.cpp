// MICRO — google-benchmark microbenchmarks of the scheduling kernels:
// decisions per second for each heuristic as the request count grows, plus
// the primitive operations they lean on (StepFunction updates/queries,
// max-min allocation rounds).

#include <benchmark/benchmark.h>

#include <vector>

#include "baseline/maxmin.hpp"
#include "core/step_function.hpp"
#include "core/timeline_profile.hpp"
#include "heuristics/flexible_greedy.hpp"
#include "heuristics/flexible_window.hpp"
#include "heuristics/rigid_fcfs.hpp"
#include "heuristics/rigid_slots.hpp"
#include "workload/generator.hpp"
#include "workload/load.hpp"
#include "workload/scenario.hpp"

namespace gridbw {
namespace {

std::vector<Request> workload_of(std::size_t count, bool rigid) {
  workload::Scenario scenario =
      rigid ? workload::paper_rigid(Duration::seconds(1), Duration::seconds(1))
            : workload::paper_flexible(Duration::seconds(1), Duration::seconds(1), 4.0);
  scenario.spec.mean_interarrival =
      workload::interarrival_for_load(scenario.spec, scenario.network, 3.0);
  scenario.spec.horizon =
      scenario.spec.mean_interarrival * static_cast<double>(count);
  Rng rng{1234};
  auto requests = workload::generate(scenario.spec, rng);
  requests.resize(std::min(requests.size(), count));
  return requests;
}

const Network& paper_network() {
  static const Network net =
      Network::uniform(10, 10, Bandwidth::gigabytes_per_second(1));
  return net;
}

void BM_RigidFcfs(benchmark::State& state) {
  const auto requests = workload_of(static_cast<std::size_t>(state.range(0)), true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(heuristics::schedule_rigid_fcfs(paper_network(), requests));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(requests.size()));
}
BENCHMARK(BM_RigidFcfs)->Arg(100)->Arg(500)->Arg(2000);

void BM_RigidSlotsCumulated(benchmark::State& state) {
  const auto requests = workload_of(static_cast<std::size_t>(state.range(0)), true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(heuristics::schedule_rigid_slots(
        paper_network(), requests, heuristics::SlotCost::kCumulated));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(requests.size()));
}
BENCHMARK(BM_RigidSlotsCumulated)->Arg(100)->Arg(500)->Arg(2000);

void BM_FlexibleGreedy(benchmark::State& state) {
  const auto requests = workload_of(static_cast<std::size_t>(state.range(0)), false);
  const auto policy = heuristics::BandwidthPolicy::fraction_of_max(1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        heuristics::schedule_flexible_greedy(paper_network(), requests, policy));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(requests.size()));
}
BENCHMARK(BM_FlexibleGreedy)->Arg(100)->Arg(1000)->Arg(5000);

void BM_FlexibleWindow(benchmark::State& state) {
  const auto requests = workload_of(static_cast<std::size_t>(state.range(0)), false);
  heuristics::WindowOptions opt;
  opt.step = Duration::seconds(100);
  opt.policy = heuristics::BandwidthPolicy::fraction_of_max(1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        heuristics::schedule_flexible_window(paper_network(), requests, opt));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(requests.size()));
}
BENCHMARK(BM_FlexibleWindow)->Arg(100)->Arg(1000)->Arg(5000);

void BM_StepFunctionAddQuery(benchmark::State& state) {
  const auto spans = static_cast<std::size_t>(state.range(0));
  Rng rng{7};
  std::vector<std::pair<double, double>> intervals;
  for (std::size_t k = 0; k < spans; ++k) {
    const double lo = rng.uniform(0, 1000);
    intervals.emplace_back(lo, lo + rng.uniform(1, 50));
  }
  for (auto _ : state) {
    StepFunction f;
    for (const auto& [lo, hi] : intervals) {
      f.add(TimePoint::at_seconds(lo), TimePoint::at_seconds(hi), 1.0);
    }
    benchmark::DoNotOptimize(
        f.max_over(TimePoint::at_seconds(200), TimePoint::at_seconds(800)));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(spans));
}
BENCHMARK(BM_StepFunctionAddQuery)->Arg(64)->Arg(512)->Arg(4096);

void BM_TimelineProfileAddQuery(benchmark::State& state) {
  const auto spans = static_cast<std::size_t>(state.range(0));
  Rng rng{7};
  std::vector<std::pair<double, double>> intervals;
  for (std::size_t k = 0; k < spans; ++k) {
    const double lo = rng.uniform(0, 1000);
    intervals.emplace_back(lo, lo + rng.uniform(1, 50));
  }
  for (auto _ : state) {
    TimelineProfile f;
    f.reserve(spans);
    for (const auto& [lo, hi] : intervals) {
      f.add(TimePoint::at_seconds(lo), TimePoint::at_seconds(hi), 1.0);
    }
    benchmark::DoNotOptimize(
        f.max_over(TimePoint::at_seconds(200), TimePoint::at_seconds(800)));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(spans));
}
BENCHMARK(BM_TimelineProfileAddQuery)->Arg(64)->Arg(512)->Arg(4096);

void BM_MaxMinAllocation(benchmark::State& state) {
  const auto flows_count = static_cast<std::size_t>(state.range(0));
  Rng rng{8};
  std::vector<baseline::ActiveFlow> flows;
  for (std::size_t k = 0; k < flows_count; ++k) {
    flows.push_back(baseline::ActiveFlow{
        IngressId{static_cast<std::size_t>(rng.uniform_int(0, 9))},
        EgressId{static_cast<std::size_t>(rng.uniform_int(0, 9))},
        Bandwidth::megabytes_per_second(rng.uniform(10, 1000))});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(baseline::maxmin_allocation(paper_network(), flows));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(flows_count));
}
BENCHMARK(BM_MaxMinAllocation)->Arg(16)->Arg(128)->Arg(1024);

}  // namespace
}  // namespace gridbw

BENCHMARK_MAIN();
