// CHURN — steady-state throughput of the sharded admission service
// (src/service/, DESIGN.md §5h, EXPERIMENTS.md CHRN).
//
// A sustained arrival+departure trace (default 1M requests, --quick 20k,
// --requests=N to override) on a 32x32 fabric is pushed through
// service::AdmissionService in four configurations: {GC on, GC off} x
// {1 shard, N shards}. Reported per configuration:
//
//   * sustained admissions/sec (wall clock over the whole drain),
//   * p50/p99 per-admission decision latency (injected steady-clock),
//   * resident breakpoints after the drain and peak live reservations,
//   * GC activity (compactions, breakpoints retired).
//
// The bench FATALs unless every configuration's decision fingerprint is
// identical (GC on vs off and 1 vs N shards must agree bit for bit) and
// unless GC keeps resident breakpoints O(live): at most 4x the live peak
// plus a per-port batch allowance, independent of trace length. Results go
// to BENCH_churn.json (suppressed under --quick unless --json is given).

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "service/admission_service.hpp"
#include "util/random.hpp"

namespace gridbw {
namespace {

constexpr std::size_t kPorts = 32;

/// Poisson arrivals of rigid reservations over uniformly random port pairs.
/// Mean window 60 s at 0.3 s interarrival -> ~200 live reservations at any
/// instant (~6 per port at 2-15% of capacity each), so the ports run hot
/// enough that the peaks produce real rejections while most requests admit.
std::vector<Request> churn_trace(std::uint64_t seed, std::size_t count) {
  Rng rng{seed};
  std::vector<Request> out;
  out.reserve(count);
  double now = 0.0;
  for (std::size_t k = 0; k < count; ++k) {
    now += rng.exponential(0.3);
    const double window = rng.uniform(20.0, 100.0);
    Request r;
    r.id = static_cast<RequestId>(k + 1);
    r.ingress = IngressId{static_cast<std::size_t>(rng.uniform_int(0, kPorts - 1))};
    r.egress = EgressId{static_cast<std::size_t>(rng.uniform_int(0, kPorts - 1))};
    r.release = TimePoint::at_seconds(now);
    r.deadline = TimePoint::at_seconds(now + window);
    // 2-15% of port capacity, rigid: min_rate == max_rate.
    const double frac = rng.uniform(0.02, 0.15);
    r.volume = Volume::bytes(frac * 1e9 * window);
    r.max_rate = Bandwidth::bytes_per_second(frac * 1e9);
    out.push_back(r);
  }
  return out;
}

struct ConfigResult {
  std::string name;
  service::ServiceReport report;
  double wall_s{0.0};
  double p50_us{0.0};
  double p99_us{0.0};
};

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t idx = std::min(
      values.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(values.size() - 1) + 0.5));
  return values[idx];
}

ConfigResult run_config(const Network& net, const std::vector<Request>& trace,
                        std::string name, std::size_t shards, bool gc) {
  service::ServiceOptions options;
  options.shards = shards;
  options.gc = gc;
  options.clock = [] {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  };
  service::AdmissionService svc{net, std::move(options)};
  for (const Request& r : trace) svc.submit(r);
  const auto t0 = std::chrono::steady_clock::now();
  ConfigResult result;
  result.report = svc.drain();
  const auto t1 = std::chrono::steady_clock::now();
  result.name = std::move(name);
  result.wall_s = std::chrono::duration<double>(t1 - t0).count();
  result.p50_us = percentile(result.report.latency, 0.50) * 1e6;
  result.p99_us = percentile(result.report.latency, 0.99) * 1e6;
  return result;
}

int run(int argc, const char* const* argv) {
  auto args = bench::BenchArgs::parse(argc, argv);
  const Flags flags{argc, argv};
  if (args.json_path.empty() && !args.quick) {
    args.json_path = "BENCH_churn.json";
  }
  const std::size_t requests = static_cast<std::size_t>(
      flags.get_int("requests", args.quick ? 20000 : 1000000));
  const std::size_t multi = static_cast<std::size_t>(flags.get_int(
      "shards",
      static_cast<std::int64_t>(std::min<std::size_t>(
          8, std::max<std::size_t>(2, std::thread::hardware_concurrency())))));

  const Network net =
      Network::uniform(kPorts, kPorts, Bandwidth::gigabytes_per_second(1));
  const auto trace = churn_trace(args.config.base_seed, requests);
  std::cout << "churn trace: " << trace.size() << " requests, fabric " << kPorts
            << "x" << kPorts << ", multi-shard = " << multi << "\n";

  std::vector<ConfigResult> results;
  results.push_back(run_config(net, trace, "gc/1shard", 1, true));
  results.push_back(run_config(net, trace, "gc/" + std::to_string(multi) + "shard",
                               multi, true));
  results.push_back(run_config(net, trace, "nogc/1shard", 1, false));
  results.push_back(run_config(net, trace, "nogc/" + std::to_string(multi) + "shard",
                               multi, false));

  // --- invariants the bench enforces -------------------------------------
  for (const ConfigResult& r : results) {
    if (r.report.decision_fingerprint != results[0].report.decision_fingerprint) {
      std::cerr << "FATAL: " << r.name << " decisions diverge from "
                << results[0].name << "\n";
      return 1;
    }
  }
  const ConfigResult& gc_multi = results[1];
  const std::size_t resident_cap =
      4 * gc_multi.report.live_peak + 128 * 2 * kPorts;
  for (const ConfigResult& r : {results[0], results[1]}) {
    if (r.report.resident_breakpoints > resident_cap) {
      std::cerr << "FATAL: " << r.name << " resident breakpoints "
                << r.report.resident_breakpoints << " exceed O(live) cap "
                << resident_cap << "\n";
      return 1;
    }
    if (r.report.breakpoints_retired == 0) {
      std::cerr << "FATAL: " << r.name << " retired no breakpoints\n";
      return 1;
    }
  }

  Table table{{"config", "requests", "wall_s", "admissions_per_s", "p50_us",
               "p99_us", "resident_bp", "live_peak", "compactions", "retired"}};
  std::vector<std::string> names;
  std::vector<RunningStats> walls;
  for (const ConfigResult& r : results) {
    const double rate =
        r.wall_s > 0.0 ? static_cast<double>(r.report.submitted) / r.wall_s : 0.0;
    table.add_row({r.name, std::to_string(r.report.submitted),
                   format_double(r.wall_s, 4), format_double(rate, 0),
                   format_double(r.p50_us, 2), format_double(r.p99_us, 2),
                   std::to_string(r.report.resident_breakpoints),
                   std::to_string(r.report.live_peak),
                   std::to_string(r.report.compactions),
                   std::to_string(r.report.breakpoints_retired)});
    RunningStats wall;
    wall.add(r.wall_s);
    names.push_back(r.name);
    walls.push_back(wall);
  }

  const double speedup =
      results[1].wall_s > 0.0 ? results[0].wall_s / results[1].wall_s : 0.0;
  std::cout << "multi-shard speedup (gc on): " << format_double(speedup, 2)
            << "x over 1 shard\n";

  const std::string title = "Steady-state churn — sharded admission service, " +
                            std::to_string(trace.size()) + " requests";
  bench::emit(title, table, args);
  if (!args.json_path.empty()) {
    bench::write_bench_json(args.json_path, "churn", title, table, names, walls);
    std::cout << "(json written to " << args.json_path << ")\n";
  }
  return 0;
}

}  // namespace
}  // namespace gridbw

int main(int argc, char** argv) { return gridbw::run(argc, argv); }
