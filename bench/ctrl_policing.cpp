// CTRL — control-plane ablation (§5.4): (a) the token-bucket policer keeps
// misbehaving senders at their reservation so conforming flows are
// unharmed; (b) the distributed reservation protocol's egress-conflict rate
// as a function of the overlay's mesh latency.

#include <vector>

#include "bench_common.hpp"
#include "control/control_plane.hpp"
#include "control/policer.hpp"
#include "workload/generator.hpp"

namespace gridbw {
namespace {

void policing_panel(const bench::BenchArgs& args) {
  Table table{{"overload factor", "conforming delivery", "misbehaving delivery",
               "dropped / offered", "peak aggregate GB/s"}};
  for (const double factor : {1.0, 1.5, 2.0, 5.0, 10.0}) {
    // 10 conforming flows at 50 MB/s, 10 misbehaving at factor x 50 MB/s,
    // all policed at the 50 MB/s reservation on a 1 GB/s port.
    std::vector<control::PolicedFlow> flows;
    for (RequestId id = 1; id <= 10; ++id) {
      flows.push_back(control::PolicedFlow{id, Bandwidth::megabytes_per_second(50),
                                           Bandwidth::megabytes_per_second(50)});
    }
    for (RequestId id = 11; id <= 20; ++id) {
      flows.push_back(control::PolicedFlow{
          id, Bandwidth::megabytes_per_second(50),
          Bandwidth::megabytes_per_second(50.0 * factor)});
    }
    const auto report =
        control::police_flows(flows, Duration::seconds(args.quick ? 2 : 10));
    double conforming = 0.0, misbehaving = 0.0;
    Volume offered = Volume::zero();
    for (const auto& f : report.flows) {
      (f.id <= 10 ? conforming : misbehaving) += f.delivery_ratio() / 10.0;
      offered += f.offered;
    }
    table.add_row({format_double(factor, 1), format_double(conforming, 4),
                   format_double(misbehaving, 4),
                   format_double(report.total_dropped() / offered, 4),
                   format_double(report.peak_aggregate.to_gigabytes_per_second(), 3)});
  }
  bench::emit("Token-bucket policing — conforming flows protected (§5.4)", table,
              args);
}

void control_plane_panel(const bench::BenchArgs& args) {
  Table table{{"mesh latency ms", "accept rate", "egress conflicts",
               "mean response ms", "control msgs"}};
  for (const double mesh_ms : {1.0, 10.0, 50.0, 200.0}) {
    auto topo_sites = std::vector<control::Site>{};
    for (std::size_t m = 0; m < 8; ++m) {
      control::Site s;
      s.name = "site-" + std::to_string(m);
      s.connections = 64;
      s.access_capacity = Bandwidth::gigabytes_per_second(1);
      s.local_latency = Duration::seconds(0.0005);
      s.mesh_latency = Duration::seconds(mesh_ms / 1000.0);
      topo_sites.push_back(s);
    }
    const control::OverlayTopology topo{topo_sites};

    workload::WorkloadSpec spec;
    spec.ingress_count = 8;
    spec.egress_count = 8;
    spec.mean_interarrival = Duration::seconds(0.05);  // a request burst
    spec.horizon = Duration::seconds(args.quick ? 10 : 30);
    spec.slack = workload::SlackLaw::flexible(1.5, 4.0);

    metrics::ExperimentConfig cfg = args.config;
    const auto stats = metrics::run_replicated(cfg, [&](Rng& rng, std::size_t) {
      const auto requests = workload::generate(spec, rng);
      control::ControlPlaneOptions opt;
      opt.policy = heuristics::BandwidthPolicy::fraction_of_max(1.0);
      const auto report = control::run_control_plane(topo, requests, opt);
      return metrics::MetricBag{
          {"accept", report.result.accept_rate()},
          {"conflicts", static_cast<double>(report.egress_conflicts)},
          {"response_ms", report.response_time_s.mean() * 1000.0},
          {"messages", static_cast<double>(report.control_messages)}};
    });
    table.add_row({format_double(mesh_ms, 1),
                   bench::cell(metrics::metric(stats, "accept")),
                   bench::cell(metrics::metric(stats, "conflicts")),
                   format_double(metrics::metric(stats, "response_ms").mean(), 3),
                   format_double(metrics::metric(stats, "messages").mean(), 0)});
  }
  bench::emit("Reservation control plane — staleness conflicts vs mesh latency",
              table, args);
}

int run(int argc, const char* const* argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  policing_panel(args);
  control_plane_panel(args);
  return 0;
}

}  // namespace
}  // namespace gridbw

int main(int argc, char** argv) { return gridbw::run(argc, argv); }
