// BOOK — ablation of the book-ahead extension: accept rate and mean start
// delay of advance reservations as the allowed horizon (number of intervals
// a request may be deferred) grows, against the plain WINDOW heuristic.
// Related-work [6] studies exactly this axis ("the impact of the percentage
// of book-ahead periods ... on the system").

#include <vector>

#include "bench_common.hpp"
#include "heuristics/flexible_bookahead.hpp"
#include "heuristics/registry.hpp"
#include "metrics/objectives.hpp"
#include "workload/generator.hpp"
#include "workload/scenario.hpp"

namespace gridbw {
namespace {

using heuristics::BandwidthPolicy;

int run(int argc, const char* const* argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const workload::Scenario scenario = workload::paper_flexible(
      Duration::seconds(0.5), Duration::seconds(args.quick ? 300 : 800), 6.0);
  const Duration step = Duration::seconds(100);

  Table table{{"scheduler", "accept rate", "mean wait s", "mean stretch"}};

  auto add_row = [&](const heuristics::NamedScheduler& scheduler) {
    const auto stats = metrics::run_replicated(args.config, [&](Rng& rng, std::size_t) {
      const auto requests = workload::generate(scenario.spec, rng);
      const auto result = scheduler.run(scenario.network, requests);
      return metrics::MetricBag{
          {"accept", metrics::accept_rate(requests, result.schedule)},
          {"wait", metrics::start_delay_stats(requests, result.schedule).mean()},
          {"stretch", metrics::stretch_stats(requests, result.schedule).mean()}};
    });
    table.add_row({scheduler.name, bench::cell(metrics::metric(stats, "accept")),
                   format_double(metrics::metric(stats, "wait").mean(), 1),
                   format_double(metrics::metric(stats, "stretch").mean(), 2)});
  };

  heuristics::WindowOptions plain;
  plain.step = step;
  plain.policy = BandwidthPolicy::fraction_of_max(1.0);
  add_row(heuristics::make_window(plain));

  for (const std::size_t ahead : {0u, 1u, 2u, 4u, 8u, 16u}) {
    heuristics::BookAheadOptions opt;
    opt.step = step;
    opt.policy = BandwidthPolicy::fraction_of_max(1.0);
    opt.max_book_ahead = ahead;
    add_row(heuristics::NamedScheduler{
        "bookahead x" + std::to_string(ahead),
        [opt](const Network& n, std::span<const Request> r) {
          return heuristics::schedule_flexible_bookahead(n, r, opt);
        }});
  }

  bench::emit("Book-ahead horizon — advance reservations vs WINDOW, heavy load",
              table, args);
  std::cout << "Accept rate should grow with the horizon while mean wait grows\n"
               "with it — the admission/latency trade related work [6] studies.\n";
  return 0;
}

}  // namespace
}  // namespace gridbw

int main(int argc, char** argv) { return gridbw::run(argc, argv); }
