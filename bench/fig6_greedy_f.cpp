// FIG6 — reproduces Figure 6: the FCFS/greedy heuristic under different
// bandwidth allocation policies (MIN BW and f x MaxRate for several f),
// under heavy load (left panel: inter-arrival 0.1 .. 5 s) and underloaded
// conditions (right panel: 3 .. 20 s).
//
// Paper shape to match: a smaller allocated bandwidth yields more accepted
// requests when the network is not too loaded; under heavy load the
// ordering compresses (full-rate transfers leave the network sooner and
// free their ports).

#include <vector>

#include "bench_common.hpp"
#include "heuristics/registry.hpp"
#include "workload/generator.hpp"
#include "workload/scenario.hpp"

namespace gridbw {
namespace {

using heuristics::BandwidthPolicy;

std::vector<heuristics::NamedScheduler> lineup() {
  std::vector<heuristics::NamedScheduler> all;
  all.push_back(heuristics::make_greedy(BandwidthPolicy::min_rate()));
  for (const double f : {0.2, 0.5, 0.8, 1.0}) {
    all.push_back(heuristics::make_greedy(BandwidthPolicy::fraction_of_max(f)));
  }
  return all;
}

void panel(const bench::BenchArgs& args, const std::string& bench_id,
           const std::string& title, const std::vector<double>& interarrivals,
           Duration horizon) {
  const auto schedulers = lineup();
  std::vector<std::string> header{"interarrival_s"};
  std::vector<std::string> names;
  for (const auto& h : schedulers) {
    header.push_back(h.name);
    names.push_back(h.name);
  }
  Table table{header};
  std::vector<RunningStats> wall(schedulers.size());

  for (const double ia : interarrivals) {
    const workload::Scenario scenario =
        workload::paper_flexible(Duration::seconds(ia), horizon, 4.0);
    const auto tasked = metrics::run_replicated_tasks(
        args.config, schedulers.size(), [&](Rng& rng, std::size_t, std::size_t t) {
          const auto requests = workload::generate(scenario.spec, rng);
          const auto& h = schedulers[t];
          metrics::MetricBag bag;
          bag[h.name] = h.run(scenario.network, requests).accept_rate();
          return bag;
        });
    for (std::size_t t = 0; t < schedulers.size(); ++t) {
      wall[t].merge(tasked.task_wall_seconds[t]);
    }
    std::vector<std::string> row{format_double(ia, 2)};
    for (const auto& h : schedulers) {
      row.push_back(bench::cell(metrics::metric(tasked.metrics, h.name)));
    }
    table.add_row(std::move(row));
  }
  bench::emit(title, table, args);
  bench::emit_timing(bench_id, title, table, names, wall, args);
}

int run(int argc, const char* const* argv) {
  auto args = bench::BenchArgs::parse(argc, argv);
  const std::string csv = args.csv_path;
  const std::string json = args.json_path;

  args.csv_path = csv.empty() ? "" : csv + ".heavy.csv";
  args.json_path = json.empty() ? "" : json + ".heavy.json";
  panel(args, "fig6_greedy_f.heavy",
        "Fig. 6 (left) — GREEDY accept rate vs f, heavy load",
        args.quick ? std::vector<double>{0.5, 2.0}
                   : std::vector<double>{0.1, 0.2, 0.5, 1.0, 2.0, 5.0},
        Duration::seconds(args.quick ? 300 : 1000));

  args.csv_path = csv.empty() ? "" : csv + ".light.csv";
  args.json_path = json.empty() ? "" : json + ".light.json";
  panel(args, "fig6_greedy_f.light",
        "Fig. 6 (right) — GREEDY accept rate vs f, underloaded",
        args.quick ? std::vector<double>{5.0, 20.0}
                   : std::vector<double>{3.0, 5.0, 8.0, 12.0, 16.0, 20.0},
        Duration::seconds(args.quick ? 2000 : 8000));

  if (args.wants_observability()) {
    // Representative replay at the base seed: heavy-panel conditions.
    const auto schedulers = lineup();
    const workload::Scenario scenario = workload::paper_flexible(
        Duration::seconds(0.5), Duration::seconds(args.quick ? 300 : 1000), 4.0);
    Rng rng{args.config.base_seed};
    const auto requests = workload::generate(scenario.spec, rng);
    bench::dump_observability(args, scenario.network, requests, schedulers,
                              "fig6_greedy_f");
  }
  return 0;
}

}  // namespace
}  // namespace gridbw

int main(int argc, char** argv) { return gridbw::run(argc, argv); }
