// REPLAY — end-to-end enforcement ablation (§5.4): a WINDOW schedule is
// executed on the data plane twice — with token-bucket policing at the
// access points, and without any enforcement (senders share ports max-min).
// A growing fraction of senders misbehaves (offers 3x its reservation).
//
// Expected shape: with policing, zero broken promises at any misbehaving
// fraction (the excess is dropped); without policing, the fraction of
// conforming transfers finishing late grows with the misbehaving fraction —
// the paper's argument for an enforcement mechanism below the control
// plane.

#include <vector>

#include "bench_common.hpp"
#include "dataplane/replay.hpp"
#include "heuristics/registry.hpp"
#include "workload/generator.hpp"
#include "workload/scenario.hpp"

namespace gridbw {
namespace {

int run(int argc, const char* const* argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const workload::Scenario scenario = workload::paper_flexible(
      Duration::seconds(2), Duration::seconds(args.quick ? 300 : 1000), 4.0);
  heuristics::WindowOptions wopt;
  wopt.step = Duration::seconds(100);
  wopt.policy = heuristics::BandwidthPolicy::fraction_of_max(0.8);
  const auto scheduler = heuristics::make_window(wopt);

  Table table{{"misbehaving frac", "policed late", "policed dropped TB",
               "unpoliced late (conforming)", "unpoliced peak util"}};

  for (const double frac : {0.0, 0.1, 0.3, 0.5}) {
    const auto stats = metrics::run_replicated(args.config, [&](Rng& rng, std::size_t) {
      const auto requests = workload::generate(scenario.spec, rng);
      const auto schedule = scheduler.run(scenario.network, requests);

      dataplane::ReplayOptions opt;
      opt.misbehave_factor = 3.0;
      for (const Assignment& a : schedule.schedule.assignments()) {
        if (rng.bernoulli(frac)) opt.misbehaving.push_back(a.request);
      }

      const auto policed =
          dataplane::replay_policed(scenario.network, requests, schedule.schedule, opt);
      const auto wild = dataplane::replay_unpoliced(scenario.network, requests,
                                                    schedule.schedule, opt);
      std::size_t conforming_late = 0;
      std::size_t conforming_total = 0;
      for (const auto& t : wild.transfers) {
        if (t.misbehaving) continue;
        ++conforming_total;
        conforming_late += t.late() ? 1 : 0;
      }
      return metrics::MetricBag{
          {"policed late", static_cast<double>(policed.late_count())},
          {"policed dropped", policed.total_dropped().to_terabytes()},
          {"wild late",
           conforming_total == 0 ? 0.0
                                 : static_cast<double>(conforming_late) /
                                       static_cast<double>(conforming_total)},
          {"wild peak", wild.peak_port_utilization}};
    });

    table.add_row({format_double(frac, 2),
                   format_double(metrics::metric(stats, "policed late").mean(), 1),
                   bench::cell(metrics::metric(stats, "policed dropped")),
                   bench::cell(metrics::metric(stats, "wild late")),
                   format_double(metrics::metric(stats, "wild peak").mean(), 3)});
  }

  bench::emit("Data-plane enforcement — policed vs unpoliced replay (§5.4)", table,
              args);
  return 0;
}

}  // namespace
}  // namespace gridbw

int main(int argc, char** argv) { return gridbw::run(argc, argv); }
