// GAP — our ablation: how far are the polynomial heuristics from the
// provable optimum? Random small rigid instances are solved exactly by
// branch-and-bound and by each heuristic; the table reports the mean
// fraction of the optimal accept count each heuristic achieves, plus the
// flexible relaxation's headroom (how much delayed starts could buy).

#include <vector>

#include "bench_common.hpp"
#include "exact/bnb.hpp"
#include "heuristics/registry.hpp"
#include "util/random.hpp"
#include "workload/generator.hpp"

namespace gridbw {
namespace {

int run(int argc, const char* const* argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t instances = args.quick ? 8 : 24;
  const std::size_t request_count = 12;

  const Network net = Network::uniform(3, 3, Bandwidth::megabytes_per_second(100));
  const auto lineup = heuristics::rigid_schedulers();

  metrics::ExperimentConfig cfg = args.config;
  cfg.replications = instances;
  const auto stats = metrics::run_replicated(cfg, [&](Rng& rng, std::size_t) {
    std::vector<Request> rs;
    for (RequestId id = 1; id <= request_count; ++id) {
      rs.push_back(RequestBuilder{id}
                       .from(IngressId{static_cast<std::size_t>(rng.uniform_int(0, 2))})
                       .to(EgressId{static_cast<std::size_t>(rng.uniform_int(0, 2))})
                       .rigid(TimePoint::at_seconds(rng.uniform(0, 40)),
                              Duration::seconds(rng.uniform(5, 25)),
                              Bandwidth::megabytes_per_second(rng.uniform(20, 100)))
                       .build());
    }
    const auto optimal = exact::solve_rigid_optimal(net, rs);
    const auto flexible = exact::solve_flexible_optimal(net, rs, Duration::seconds(5));
    const auto opt_count = static_cast<double>(optimal.result.accepted_count());

    metrics::MetricBag bag;
    bag["optimal accepted"] = opt_count;
    bag["flexible-relax accepted"] =
        static_cast<double>(flexible.result.accepted_count());
    for (const auto& h : lineup) {
      const auto result = h.run(net, rs);
      bag[h.name + " / optimal"] =
          opt_count == 0.0 ? 1.0 : static_cast<double>(result.accepted_count()) /
                                       opt_count;
    }
    return bag;
  });

  Table table{{"metric", "mean ±95%CI", "min", "max"}};
  auto add = [&](const std::string& name) {
    const auto& s = metrics::metric(stats, name);
    table.add_row({name, bench::cell(s), format_double(s.min(), 3),
                   format_double(s.max(), 3)});
  };
  add("optimal accepted");
  add("flexible-relax accepted");
  for (const auto& h : lineup) add(h.name + " / optimal");

  bench::emit("Optimality gap — heuristics vs exact B&B (12 rigid requests, 3x3)",
              table, args);
  return 0;
}

}  // namespace
}  // namespace gridbw

int main(int argc, char** argv) { return gridbw::run(argc, argv); }
