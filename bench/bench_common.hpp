// Shared plumbing for the figure-reproduction benches: flag parsing,
// replication configs, and consistent table/CSV/JSON output. Every bench
// accepts
//
//   --reps=N        replications per sweep point (default 8)
//   --threads=N     worker threads (default: hardware concurrency)
//   --seed=S        base seed (default 42)
//   --quick         cut workloads down for smoke runs
//   --csv=PATH      also write the table as CSV
//   --json=PATH     also write the table + timing as a BENCH_*.json
//   --trace=PATH    dump a JSONL admission trace of one representative
//                   workload (base seed) through every heuristic
//   --util-out=PATH dump per-port utilization for the same replay
//                   (CSV, or JSONL objects when PATH ends in .json)
//
// and prints the same series the corresponding paper figure plots, followed
// by a per-heuristic wall-clock timing table.

#pragma once

#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "heuristics/registry.hpp"
#include "metrics/experiment.hpp"
#include "obs/counters.hpp"
#include "obs/observer.hpp"
#include "obs/trace_sink.hpp"
#include "obs/utilization.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace gridbw::bench {

struct BenchArgs {
  metrics::ExperimentConfig config;
  bool quick{false};
  std::string csv_path;
  std::string json_path;
  std::string trace_path;
  std::string util_path;

  /// True when `--trace` or `--util-out` asks for an observability replay.
  [[nodiscard]] bool wants_observability() const {
    return !trace_path.empty() || !util_path.empty();
  }

  static BenchArgs parse(int argc, const char* const* argv) {
    const Flags flags{argc, argv};
    BenchArgs args;
    args.config.replications =
        static_cast<std::size_t>(flags.get_int("reps", 8));
    args.config.threads = static_cast<std::size_t>(flags.get_int("threads", 0));
    args.config.base_seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
    args.quick = flags.get_bool("quick", false);
    args.csv_path = flags.get_string("csv", "");
    args.json_path = flags.get_string("json", "");
    args.trace_path = flags.get_string("trace", "");
    args.util_path = flags.get_string("util-out", "");
    if (args.quick && !flags.has("reps")) args.config.replications = 3;
    return args;
  }
};

/// Replays `requests` through every scheduler in `lineup` with an attached
/// observer and writes the artifacts the `--trace` / `--util-out` flags ask
/// for. The caller generates `requests` deterministically from the base
/// seed; the JSONL sink never stamps wall-clock time by default, so two
/// same-seed runs produce byte-identical traces. Each scheduler's run is
/// bracketed by meta lines (`scheduler`, then `accepted`/`rejected` totals
/// taken from its ScheduleResult) so the trace is self-reconciling.
inline void dump_observability(const BenchArgs& args, const Network& network,
                               std::span<const Request> requests,
                               std::span<const heuristics::NamedScheduler> lineup,
                               std::string_view workload_label) {
  if (!args.wants_observability()) return;

  std::optional<obs::JsonlSink> sink;
  if (!args.trace_path.empty()) {
    sink.emplace(args.trace_path);
    sink->annotate("workload", workload_label);
    sink->annotate("seed", std::to_string(args.config.base_seed));
  }
  std::ofstream util_out;
  const bool util_json =
      args.util_path.size() >= 5 &&
      args.util_path.compare(args.util_path.size() - 5, 5, ".json") == 0;
  if (!args.util_path.empty()) {
    util_out.open(args.util_path);
    if (!util_json) obs::UtilizationReport::write_csv_header(util_out);
  }

  TimePoint window_end = TimePoint::origin();
  for (const Request& r : requests) window_end = max(window_end, r.deadline);

  obs::CounterRegistry counters;
  for (const auto& h : lineup) {
    if (sink) sink->annotate("scheduler", h.name);
    obs::Observer observer{sink ? &*sink : nullptr, &counters};
    const ScheduleResult result = h.run(network, requests, &observer);
    if (sink) {
      sink->annotate("accepted", std::to_string(result.accepted_count()));
      sink->annotate("rejected", std::to_string(result.rejected.size()));
    }
    if (util_out.is_open()) {
      const obs::UtilizationReport report = obs::utilization_report(
          network, requests, result.schedule, TimePoint::origin(), window_end);
      if (util_json) {
        report.write_json(util_out, h.name);
      } else {
        report.write_csv(util_out, h.name);
      }
    }
  }
  if (sink) {
    sink->flush();
    std::cout << "(trace written to " << args.trace_path << ")\n";
  }
  if (util_out.is_open()) {
    std::cout << "(utilization written to " << args.util_path << ")\n";
  }
  std::cout.flush();
}

/// Prints the banner, the table, and (optionally) the CSV file.
inline void emit(const std::string& title, const Table& table,
                 const BenchArgs& args) {
  std::cout << "\n=== " << title << " ===\n";
  table.print(std::cout);
  if (!args.csv_path.empty()) {
    std::ofstream out{args.csv_path};
    out << table.to_csv();
    std::cout << "(csv written to " << args.csv_path << ")\n";
  }
  std::cout.flush();
}

/// "0.5321 ±0.0123" cell.
inline std::string cell(const RunningStats& stats) {
  return format_mean_ci(stats);
}

/// Per-task wall-clock table: one row per heuristic, aggregated over every
/// replication of every sweep point.
inline Table timing_table(const std::vector<std::string>& names,
                          const std::vector<RunningStats>& wall_seconds) {
  Table table{{"heuristic", "wall_s (per run)", "total_s", "runs"}};
  for (std::size_t t = 0; t < names.size(); ++t) {
    const RunningStats& w = wall_seconds[t];
    table.add_row({names[t], format_mean_ci(w),
                   format_double(w.mean() * static_cast<double>(w.count()), 3),
                   std::to_string(w.count())});
  }
  return table;
}

/// Minimal RFC 8259 string escaping (the cells are ASCII table text).
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Writes the bench result as a small self-describing JSON document:
/// {"bench": ..., "title": ..., "columns": [...], "rows": [[...]],
///  "timing": {"<heuristic>": {"mean_s":, "stddev_s":, "total_s":, "runs":}}}.
inline void write_bench_json(const std::string& path, const std::string& bench,
                             const std::string& title, const Table& table,
                             const std::vector<std::string>& names,
                             const std::vector<RunningStats>& wall_seconds) {
  std::ofstream out{path};
  out << "{\n  \"bench\": \"" << json_escape(bench) << "\",\n";
  out << "  \"title\": \"" << json_escape(title) << "\",\n";
  out << "  \"columns\": [";
  for (std::size_t c = 0; c < table.header().size(); ++c) {
    out << (c == 0 ? "" : ", ") << '"' << json_escape(table.header()[c]) << '"';
  }
  out << "],\n  \"rows\": [\n";
  const auto& rows = table.rows();
  for (std::size_t r = 0; r < rows.size(); ++r) {
    out << "    [";
    for (std::size_t c = 0; c < rows[r].size(); ++c) {
      out << (c == 0 ? "" : ", ") << '"' << json_escape(rows[r][c]) << '"';
    }
    out << (r + 1 < rows.size() ? "],\n" : "]\n");
  }
  out << "  ],\n  \"timing\": {\n";
  for (std::size_t t = 0; t < names.size(); ++t) {
    const RunningStats& w = wall_seconds[t];
    char buf[160];
    // A single run has no spread to report: emit null instead of a fake
    // zero variance so downstream tooling cannot mistake it for a real
    // (perfectly stable) measurement.
    if (w.count() > 1) {
      std::snprintf(buf, sizeof buf,
                    "{\"mean_s\": %.6f, \"stddev_s\": %.6f, \"total_s\": %.6f, "
                    "\"runs\": %zu}",
                    w.mean(), w.stddev(),
                    w.mean() * static_cast<double>(w.count()), w.count());
    } else {
      std::snprintf(buf, sizeof buf,
                    "{\"mean_s\": %.6f, \"stddev_s\": null, \"total_s\": %.6f, "
                    "\"runs\": %zu}",
                    w.count() > 0 ? w.mean() : 0.0,
                    w.count() > 0 ? w.mean() : 0.0, w.count());
    }
    out << "    \"" << json_escape(names[t]) << "\": " << buf
        << (t + 1 < names.size() ? ",\n" : "\n");
  }
  out << "  }\n}\n";
}

/// Prints the timing table and, when --json was given, persists the main
/// table plus timing. `wall_seconds` is indexed like `names`.
inline void emit_timing(const std::string& bench, const std::string& title,
                        const Table& table, const std::vector<std::string>& names,
                        const std::vector<RunningStats>& wall_seconds,
                        const BenchArgs& args) {
  Table timing = timing_table(names, wall_seconds);
  std::cout << "\n=== " << title << " — timing ===\n";
  timing.print(std::cout);
  if (!args.json_path.empty()) {
    write_bench_json(args.json_path, bench, title, table, names, wall_seconds);
    std::cout << "(json written to " << args.json_path << ")\n";
  }
  std::cout.flush();
}

}  // namespace gridbw::bench
