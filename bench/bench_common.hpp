// Shared plumbing for the figure-reproduction benches: flag parsing,
// replication configs, and consistent table/CSV output. Every bench accepts
//
//   --reps=N        replications per sweep point (default 8)
//   --threads=N     worker threads (default: hardware concurrency)
//   --seed=S        base seed (default 42)
//   --quick         cut workloads down for smoke runs
//   --csv=PATH      also write the table as CSV
//
// and prints the same series the corresponding paper figure plots.

#pragma once

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "metrics/experiment.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace gridbw::bench {

struct BenchArgs {
  metrics::ExperimentConfig config;
  bool quick{false};
  std::string csv_path;

  static BenchArgs parse(int argc, const char* const* argv) {
    const Flags flags{argc, argv};
    BenchArgs args;
    args.config.replications =
        static_cast<std::size_t>(flags.get_int("reps", 8));
    args.config.threads = static_cast<std::size_t>(flags.get_int("threads", 0));
    args.config.base_seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
    args.quick = flags.get_bool("quick", false);
    args.csv_path = flags.get_string("csv", "");
    if (args.quick && !flags.has("reps")) args.config.replications = 3;
    return args;
  }
};

/// Prints the banner, the table, and (optionally) the CSV file.
inline void emit(const std::string& title, const Table& table,
                 const BenchArgs& args) {
  std::cout << "\n=== " << title << " ===\n";
  table.print(std::cout);
  if (!args.csv_path.empty()) {
    std::ofstream out{args.csv_path};
    out << table.to_csv();
    std::cout << "(csv written to " << args.csv_path << ")\n";
  }
  std::cout.flush();
}

/// "0.5321 ±0.0123" cell.
inline std::string cell(const RunningStats& stats) {
  return format_mean_ci(stats);
}

}  // namespace gridbw::bench
