// Shared plumbing for the figure-reproduction benches: flag parsing,
// replication configs, and consistent table/CSV/JSON output. Every bench
// accepts
//
//   --reps=N        replications per sweep point (default 8)
//   --threads=N     worker threads (default: hardware concurrency)
//   --seed=S        base seed (default 42)
//   --quick         cut workloads down for smoke runs
//   --csv=PATH      also write the table as CSV
//   --json=PATH     also write the table + timing as a BENCH_*.json
//
// and prints the same series the corresponding paper figure plots, followed
// by a per-heuristic wall-clock timing table.

#pragma once

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "metrics/experiment.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace gridbw::bench {

struct BenchArgs {
  metrics::ExperimentConfig config;
  bool quick{false};
  std::string csv_path;
  std::string json_path;

  static BenchArgs parse(int argc, const char* const* argv) {
    const Flags flags{argc, argv};
    BenchArgs args;
    args.config.replications =
        static_cast<std::size_t>(flags.get_int("reps", 8));
    args.config.threads = static_cast<std::size_t>(flags.get_int("threads", 0));
    args.config.base_seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
    args.quick = flags.get_bool("quick", false);
    args.csv_path = flags.get_string("csv", "");
    args.json_path = flags.get_string("json", "");
    if (args.quick && !flags.has("reps")) args.config.replications = 3;
    return args;
  }
};

/// Prints the banner, the table, and (optionally) the CSV file.
inline void emit(const std::string& title, const Table& table,
                 const BenchArgs& args) {
  std::cout << "\n=== " << title << " ===\n";
  table.print(std::cout);
  if (!args.csv_path.empty()) {
    std::ofstream out{args.csv_path};
    out << table.to_csv();
    std::cout << "(csv written to " << args.csv_path << ")\n";
  }
  std::cout.flush();
}

/// "0.5321 ±0.0123" cell.
inline std::string cell(const RunningStats& stats) {
  return format_mean_ci(stats);
}

/// Per-task wall-clock table: one row per heuristic, aggregated over every
/// replication of every sweep point.
inline Table timing_table(const std::vector<std::string>& names,
                          const std::vector<RunningStats>& wall_seconds) {
  Table table{{"heuristic", "wall_s (per run)", "total_s", "runs"}};
  for (std::size_t t = 0; t < names.size(); ++t) {
    const RunningStats& w = wall_seconds[t];
    table.add_row({names[t], format_mean_ci(w),
                   format_double(w.mean() * static_cast<double>(w.count()), 3),
                   std::to_string(w.count())});
  }
  return table;
}

/// Minimal RFC 8259 string escaping (the cells are ASCII table text).
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Writes the bench result as a small self-describing JSON document:
/// {"bench": ..., "title": ..., "columns": [...], "rows": [[...]],
///  "timing": {"<heuristic>": {"mean_s":, "stddev_s":, "total_s":, "runs":}}}.
inline void write_bench_json(const std::string& path, const std::string& bench,
                             const std::string& title, const Table& table,
                             const std::vector<std::string>& names,
                             const std::vector<RunningStats>& wall_seconds) {
  std::ofstream out{path};
  out << "{\n  \"bench\": \"" << json_escape(bench) << "\",\n";
  out << "  \"title\": \"" << json_escape(title) << "\",\n";
  out << "  \"columns\": [";
  for (std::size_t c = 0; c < table.header().size(); ++c) {
    out << (c == 0 ? "" : ", ") << '"' << json_escape(table.header()[c]) << '"';
  }
  out << "],\n  \"rows\": [\n";
  const auto& rows = table.rows();
  for (std::size_t r = 0; r < rows.size(); ++r) {
    out << "    [";
    for (std::size_t c = 0; c < rows[r].size(); ++c) {
      out << (c == 0 ? "" : ", ") << '"' << json_escape(rows[r][c]) << '"';
    }
    out << (r + 1 < rows.size() ? "],\n" : "]\n");
  }
  out << "  ],\n  \"timing\": {\n";
  for (std::size_t t = 0; t < names.size(); ++t) {
    const RunningStats& w = wall_seconds[t];
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "{\"mean_s\": %.6f, \"stddev_s\": %.6f, \"total_s\": %.6f, "
                  "\"runs\": %zu}",
                  w.count() > 0 ? w.mean() : 0.0, w.count() > 1 ? w.stddev() : 0.0,
                  w.count() > 0 ? w.mean() * static_cast<double>(w.count()) : 0.0,
                  w.count());
    out << "    \"" << json_escape(names[t]) << "\": " << buf
        << (t + 1 < names.size() ? ",\n" : "\n");
  }
  out << "  }\n}\n";
}

/// Prints the timing table and, when --json was given, persists the main
/// table plus timing. `wall_seconds` is indexed like `names`.
inline void emit_timing(const std::string& bench, const std::string& title,
                        const Table& table, const std::vector<std::string>& names,
                        const std::vector<RunningStats>& wall_seconds,
                        const BenchArgs& args) {
  Table timing = timing_table(names, wall_seconds);
  std::cout << "\n=== " << title << " — timing ===\n";
  timing.print(std::cout);
  if (!args.json_path.empty()) {
    write_bench_json(args.json_path, bench, title, table, names, wall_seconds);
    std::cout << "(json written to " << args.json_path << ")\n";
  }
  std::cout.flush();
}

}  // namespace gridbw::bench
