// BASE — our ablation: admission control (the paper's approach) vs
// uncontrolled max-min fair sharing (the "Internet way") across load. For
// max-min, a transfer that misses its deadline fails after consuming
// bandwidth; the table reports success rate and wasted bytes, next to the
// accept rate and (by construction, waste-free) goodput of the WINDOW and
// GREEDY admission schedulers.
//
// This regenerates the paper's §5.3 argument: "concurrent high speed TCP
// flows have great difficulties in obtaining bandwidth ... bulk transfers
// often fail before ending", while scheduled transfers are reliable.

#include <vector>

#include "baseline/maxmin.hpp"
#include "bench_common.hpp"
#include "heuristics/registry.hpp"
#include "workload/generator.hpp"
#include "workload/scenario.hpp"

namespace gridbw {
namespace {

using heuristics::BandwidthPolicy;

int run(int argc, const char* const* argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::vector<double> interarrivals =
      args.quick ? std::vector<double>{1.0, 10.0}
                 : std::vector<double>{0.5, 1.0, 2.0, 5.0, 10.0, 20.0};
  const Duration horizon = Duration::seconds(args.quick ? 200 : 400);

  Table table{{"interarrival_s", "maxmin success", "maxmin wasted TB",
               "greedy accept", "window accept", "window goodput TB"}};

  for (const double ia : interarrivals) {
    // Slack 1.5: tight deadlines, the regime where fair sharing breaks.
    const workload::Scenario scenario =
        workload::paper_flexible(Duration::seconds(ia), horizon, 1.5);

    const auto greedy = heuristics::make_greedy(BandwidthPolicy::fraction_of_max(1.0));
    heuristics::WindowOptions opt;
    opt.step = Duration::seconds(100);
    opt.policy = BandwidthPolicy::fraction_of_max(1.0);
    const auto window = heuristics::make_window(opt);

    const auto stats = metrics::run_replicated(args.config, [&](Rng& rng, std::size_t) {
      const auto requests = workload::generate(scenario.spec, rng);
      metrics::MetricBag bag;
      const auto fluid = baseline::simulate_maxmin(scenario.network, requests);
      bag["maxmin success"] = fluid.success_rate();
      bag["maxmin wasted"] = fluid.wasted_bytes().to_terabytes();
      bag["greedy accept"] = greedy.run(scenario.network, requests).accept_rate();
      const auto w = window.run(scenario.network, requests);
      bag["window accept"] = w.accept_rate();
      Volume goodput = Volume::zero();
      for (const Request& r : requests) {
        if (w.schedule.is_accepted(r.id)) goodput += r.volume;
      }
      bag["window goodput"] = goodput.to_terabytes();
      return bag;
    });

    table.add_row({format_double(ia, 1),
                   bench::cell(metrics::metric(stats, "maxmin success")),
                   bench::cell(metrics::metric(stats, "maxmin wasted")),
                   bench::cell(metrics::metric(stats, "greedy accept")),
                   bench::cell(metrics::metric(stats, "window accept")),
                   bench::cell(metrics::metric(stats, "window goodput"))});
  }

  bench::emit("Baseline — max-min fair sharing vs admission control", table, args);
  return 0;
}

}  // namespace
}  // namespace gridbw

int main(int argc, char** argv) { return gridbw::run(argc, argv); }
