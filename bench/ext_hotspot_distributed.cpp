// EXT — ablations for the two implemented future-work extensions (§7):
//
//  (a) hot-spot-aware WINDOW cost: accept rate and per-port utilization
//      imbalance vs the plain cost, on a skewed workload where two ports
//      attract most of the demand;
//  (b) distributed admission: accept rate and egress-conflict rate vs the
//      view-synchronization period, against the centralized greedy.

#include <algorithm>
#include <numeric>
#include <vector>

#include "bench_common.hpp"
#include "heuristics/distributed.hpp"
#include "heuristics/flexible_greedy.hpp"
#include "heuristics/flexible_window.hpp"
#include "workload/generator.hpp"
#include "workload/scenario.hpp"

namespace gridbw {
namespace {

using heuristics::BandwidthPolicy;

/// Skews a workload: a fraction of requests is redirected to ports {0, 1}.
std::vector<Request> skew(std::vector<Request> requests, Rng& rng, double fraction) {
  for (Request& r : requests) {
    if (rng.bernoulli(fraction)) {
      r.ingress = IngressId{static_cast<std::size_t>(rng.uniform_int(0, 1))};
      r.egress = EgressId{static_cast<std::size_t>(rng.uniform_int(0, 1))};
    }
  }
  return requests;
}

/// Max/mean ratio of granted volume across egress ports (1 = perfectly even).
double imbalance(const Network& net, std::span<const Request> requests,
                 const Schedule& schedule) {
  std::vector<double> granted(net.egress_count(), 0.0);
  for (const Request& r : requests) {
    if (schedule.is_accepted(r.id)) granted[r.egress.value] += r.volume.to_bytes();
  }
  const double total = std::accumulate(granted.begin(), granted.end(), 0.0);
  if (total == 0.0) return 1.0;
  const double mean = total / static_cast<double>(granted.size());
  return *std::max_element(granted.begin(), granted.end()) / mean;
}

void hotspot_panel(const bench::BenchArgs& args) {
  Table table{{"hotspot weight", "accept rate", "egress imbalance (max/mean)"}};
  const workload::Scenario scenario = workload::paper_flexible(
      Duration::seconds(1.0), Duration::seconds(args.quick ? 300 : 1000), 4.0);

  for (const double weight : {0.0, 0.5, 1.0, 2.0}) {
    const auto stats = metrics::run_replicated(args.config, [&](Rng& rng, std::size_t) {
      auto requests = workload::generate(scenario.spec, rng);
      requests = skew(std::move(requests), rng, 0.5);
      heuristics::WindowOptions opt;
      opt.step = Duration::seconds(100);
      opt.policy = BandwidthPolicy::fraction_of_max(1.0);
      opt.hotspot_weight = weight;
      const auto result =
          heuristics::schedule_flexible_window(scenario.network, requests, opt);
      return metrics::MetricBag{
          {"accept", result.accept_rate()},
          {"imbalance", imbalance(scenario.network, requests, result.schedule)}};
    });
    table.add_row({format_double(weight, 1),
                   bench::cell(metrics::metric(stats, "accept")),
                   bench::cell(metrics::metric(stats, "imbalance"))});
  }
  bench::emit("Extension (a) — hot-spot-aware WINDOW cost on a skewed workload",
              table, args);
}

void distributed_panel(const bench::BenchArgs& args) {
  Table table{{"sync period s", "accept rate", "conflict rate", "vs centralized"}};
  const workload::Scenario scenario = workload::paper_flexible(
      Duration::seconds(0.5), Duration::seconds(args.quick ? 200 : 600), 4.0);

  for (const double sync_s : {0.0, 5.0, 30.0, 120.0}) {
    const auto stats = metrics::run_replicated(args.config, [&](Rng& rng, std::size_t) {
      const auto requests = workload::generate(scenario.spec, rng);
      heuristics::DistributedOptions opt;
      opt.policy = BandwidthPolicy::fraction_of_max(1.0);
      opt.sync_period = Duration::seconds(sync_s);
      const auto out =
          heuristics::schedule_flexible_distributed(scenario.network, requests, opt);
      const auto central = heuristics::schedule_flexible_greedy(
          scenario.network, requests, opt.policy);
      const double central_rate = central.accept_rate();
      return metrics::MetricBag{
          {"accept", out.result.accept_rate()},
          {"conflicts", requests.empty()
                            ? 0.0
                            : static_cast<double>(out.egress_conflicts) /
                                  static_cast<double>(requests.size())},
          {"delta", out.result.accept_rate() - central_rate}};
    });
    table.add_row({format_double(sync_s, 1),
                   bench::cell(metrics::metric(stats, "accept")),
                   bench::cell(metrics::metric(stats, "conflicts")),
                   bench::cell(metrics::metric(stats, "delta"))});
  }
  bench::emit("Extension (b) — distributed admission vs egress-view staleness",
              table, args);
}

int run(int argc, const char* const* argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  hotspot_panel(args);
  distributed_panel(args);
  return 0;
}

}  // namespace
}  // namespace gridbw

int main(int argc, char** argv) { return gridbw::run(argc, argv); }
