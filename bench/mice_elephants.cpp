// MICE — measuring the paper's §6 separation assumption: grid bulk
// transfers (elephants) share the access ports with interactive small
// transfers (mice). Three operating modes per load point:
//
//   mixed      — one online GREEDY pool; mice and elephants compete (mice
//                cannot tolerate interval batching: their windows are
//                seconds, so WINDOW-style waiting would expire them);
//   separated  — each port is split 15/85 into a mice lane (GREEDY — low
//                latency) and an elephant lane (WINDOW(50) — batched), the
//                paper's separation assumption made physical. Separation
//                also unlocks the right *policy* per class.

#include <vector>

#include "bench_common.hpp"
#include "heuristics/registry.hpp"
#include "metrics/objectives.hpp"
#include "workload/mixture.hpp"

namespace gridbw {
namespace {

using heuristics::BandwidthPolicy;

int run(int argc, const char* const* argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const Duration horizon = Duration::seconds(args.quick ? 300 : 800);
  const Network full = Network::uniform(10, 10, Bandwidth::gigabytes_per_second(1));
  const Network mice_lane =
      Network::uniform(10, 10, Bandwidth::megabytes_per_second(150));
  const Network bulk_lane =
      Network::uniform(10, 10, Bandwidth::megabytes_per_second(850));

  heuristics::WindowOptions wopt;
  wopt.step = Duration::seconds(50);
  wopt.policy = BandwidthPolicy::fraction_of_max(1.0);
  const auto window = heuristics::make_window(wopt);
  const auto greedy = heuristics::make_greedy(BandwidthPolicy::fraction_of_max(1.0));

  Table table{{"interarrival_s", "mixed: mice", "mixed: elephants",
               "separated: mice", "separated: elephants"}};

  const std::vector<double> interarrivals =
      args.quick ? std::vector<double>{0.5, 2.0}
                 : std::vector<double>{0.2, 0.5, 1.0, 2.0, 5.0};
  for (const double ia : interarrivals) {
    const auto spec =
        workload::mice_and_elephants(Duration::seconds(ia), horizon, 0.8);

    const auto stats = metrics::run_replicated(args.config, [&](Rng& rng, std::size_t) {
      const auto trace = workload::generate_mixture(spec, rng);
      const auto mice = trace.of_class(0);
      const auto elephants = trace.of_class(1);

      metrics::MetricBag bag;
      // Mixed pool: one online schedule over everything, per-class rates.
      const auto mixed = greedy.run(full, trace.requests);
      bag["mixed mice"] = metrics::accept_rate(mice, mixed.schedule);
      bag["mixed elephants"] = metrics::accept_rate(elephants, mixed.schedule);
      // Separated lanes with per-class policies.
      bag["sep mice"] = greedy.run(mice_lane, mice).accept_rate();
      bag["sep elephants"] = window.run(bulk_lane, elephants).accept_rate();
      return bag;
    });

    table.add_row({format_double(ia, 1),
                   bench::cell(metrics::metric(stats, "mixed mice")),
                   bench::cell(metrics::metric(stats, "mixed elephants")),
                   bench::cell(metrics::metric(stats, "sep mice")),
                   bench::cell(metrics::metric(stats, "sep elephants"))});
  }

  bench::emit("Mice & elephants — shared pool vs separated lanes (§6 assumption)",
              table, args);
  return 0;
}

}  // namespace
}  // namespace gridbw

int main(int argc, char** argv) { return gridbw::run(argc, argv); }
