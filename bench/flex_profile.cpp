// FLEX-PROFILE — the malleable (piecewise-constant rate) engines against
// their constant-rate counterparts on the Fig. 5/7 workload: accept rate
// and the paper's RESOURCE-UTIL metric across the heavy-load inter-arrival
// sweep, bandwidth policy MinRate (the regime where reclaiming guarantees
// early matters most: a MinRate guarantee occupies a port for the whole
// request window unless the flow actually finishes sooner).
//
// Expected shape: the malleable engines admit a superset of what the
// constant engines admit — same guarantee book, but water-filled execution
// finishes flows at or before their constant-rate promise, so guarantees
// come back earlier and later arrivals find room. Accept rate and
// RESOURCE-UTIL may only move up; the gap widens as the load grows.

#include <vector>

#include "bench_common.hpp"
#include "heuristics/registry.hpp"
#include "metrics/objectives.hpp"
#include "workload/generator.hpp"
#include "workload/scenario.hpp"

namespace gridbw {
namespace {

using heuristics::BandwidthPolicy;

std::vector<heuristics::NamedScheduler> lineup() {
  std::vector<heuristics::NamedScheduler> all;
  all.push_back(heuristics::make_greedy(BandwidthPolicy::min_rate()));
  all.push_back(heuristics::make_greedy(BandwidthPolicy::fraction_of_max(1.0)));

  heuristics::WindowOptions wopt;
  wopt.step = Duration::seconds(400);
  wopt.policy = BandwidthPolicy::min_rate();
  all.push_back(heuristics::make_window(wopt));

  heuristics::MalleableOptions mg;
  mg.policy = BandwidthPolicy::min_rate();
  all.push_back(heuristics::make_malleable_greedy(mg));

  heuristics::MalleableOptions mw;
  mw.policy = BandwidthPolicy::min_rate();
  mw.step = Duration::seconds(400);
  all.push_back(heuristics::make_malleable_window(mw));
  return all;
}

int run(int argc, const char* const* argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::vector<double> interarrivals =
      args.quick ? std::vector<double>{0.2, 2.0}
                 : std::vector<double>{0.1, 0.2, 0.5, 1.0, 2.0, 5.0};
  const Duration horizon = Duration::seconds(args.quick ? 300 : 1000);

  const auto schedulers = lineup();
  std::vector<std::string> header{"interarrival_s"};
  std::vector<std::string> names;
  for (const auto& h : schedulers) {
    header.push_back(h.name + " accept");
    header.push_back(h.name + " util");
    names.push_back(h.name);
  }
  Table table{header};
  std::vector<RunningStats> wall(schedulers.size());

  for (const double ia : interarrivals) {
    const workload::Scenario scenario =
        workload::paper_flexible(Duration::seconds(ia), horizon, 4.0);
    const auto tasked = metrics::run_replicated_tasks(
        args.config, schedulers.size(), [&](Rng& rng, std::size_t, std::size_t t) {
          const auto requests = workload::generate(scenario.spec, rng);
          const auto& h = schedulers[t];
          const ScheduleResult result = h.run(scenario.network, requests);
          metrics::MetricBag bag;
          bag[h.name + " accept"] = result.accept_rate();
          bag[h.name + " util"] = metrics::resource_util_paper(
              scenario.network, requests, result.schedule);
          return bag;
        });
    for (std::size_t t = 0; t < schedulers.size(); ++t) {
      wall[t].merge(tasked.task_wall_seconds[t]);
    }

    std::vector<std::string> row{format_double(ia, 2)};
    for (const auto& h : schedulers) {
      row.push_back(bench::cell(metrics::metric(tasked.metrics, h.name + " accept")));
      row.push_back(bench::cell(metrics::metric(tasked.metrics, h.name + " util")));
    }
    table.add_row(std::move(row));
  }

  const std::string title =
      "FLEX-PROFILE — malleable vs constant-rate engines, heavy load, MinRate";
  bench::emit(title, table, args);
  bench::emit_timing("flex_profile", title, table, names, wall, args);

  if (args.wants_observability()) {
    // Representative replay at the base seed: the heaviest inter-arrival,
    // where reshaping fires most often.
    const workload::Scenario scenario =
        workload::paper_flexible(Duration::seconds(interarrivals.front()), horizon, 4.0);
    Rng rng{args.config.base_seed};
    const auto requests = workload::generate(scenario.spec, rng);
    bench::dump_observability(args, scenario.network, requests, schedulers,
                              "flex_profile");
  }
  return 0;
}

}  // namespace
}  // namespace gridbw

int main(int argc, char** argv) { return gridbw::run(argc, argv); }
