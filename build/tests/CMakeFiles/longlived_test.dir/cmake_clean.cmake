file(REMOVE_RECURSE
  "CMakeFiles/longlived_test.dir/longlived_test.cpp.o"
  "CMakeFiles/longlived_test.dir/longlived_test.cpp.o.d"
  "longlived_test"
  "longlived_test.pdb"
  "longlived_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/longlived_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
