# Empty dependencies file for paper_shapes2_test.
# This may be replaced when dependencies are built.
