file(REMOVE_RECURSE
  "CMakeFiles/threedm_test.dir/threedm_test.cpp.o"
  "CMakeFiles/threedm_test.dir/threedm_test.cpp.o.d"
  "threedm_test"
  "threedm_test.pdb"
  "threedm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threedm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
