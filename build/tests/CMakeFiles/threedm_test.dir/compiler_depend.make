# Empty compiler generated dependencies file for threedm_test.
# This may be replaced when dependencies are built.
