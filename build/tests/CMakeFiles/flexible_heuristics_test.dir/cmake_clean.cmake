file(REMOVE_RECURSE
  "CMakeFiles/flexible_heuristics_test.dir/flexible_heuristics_test.cpp.o"
  "CMakeFiles/flexible_heuristics_test.dir/flexible_heuristics_test.cpp.o.d"
  "flexible_heuristics_test"
  "flexible_heuristics_test.pdb"
  "flexible_heuristics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexible_heuristics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
