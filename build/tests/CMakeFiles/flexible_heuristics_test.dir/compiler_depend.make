# Empty compiler generated dependencies file for flexible_heuristics_test.
# This may be replaced when dependencies are built.
