
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/flexible_heuristics_test.cpp" "tests/CMakeFiles/flexible_heuristics_test.dir/flexible_heuristics_test.cpp.o" "gcc" "tests/CMakeFiles/flexible_heuristics_test.dir/flexible_heuristics_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gridbw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gridbw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gridbw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/gridbw_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/heuristics/CMakeFiles/gridbw_heuristics.dir/DependInfo.cmake"
  "/root/repo/build/src/exact/CMakeFiles/gridbw_exact.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/gridbw_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/gridbw_control.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/gridbw_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/gridbw_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/longlived/CMakeFiles/gridbw_longlived.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/gridbw_dataplane.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
