# Empty compiler generated dependencies file for quantity_test.
# This may be replaced when dependencies are built.
