file(REMOVE_RECURSE
  "CMakeFiles/quantity_test.dir/quantity_test.cpp.o"
  "CMakeFiles/quantity_test.dir/quantity_test.cpp.o.d"
  "quantity_test"
  "quantity_test.pdb"
  "quantity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quantity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
