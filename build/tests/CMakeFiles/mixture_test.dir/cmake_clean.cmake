file(REMOVE_RECURSE
  "CMakeFiles/mixture_test.dir/mixture_test.cpp.o"
  "CMakeFiles/mixture_test.dir/mixture_test.cpp.o.d"
  "mixture_test"
  "mixture_test.pdb"
  "mixture_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixture_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
