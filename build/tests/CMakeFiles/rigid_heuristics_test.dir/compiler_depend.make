# Empty compiler generated dependencies file for rigid_heuristics_test.
# This may be replaced when dependencies are built.
