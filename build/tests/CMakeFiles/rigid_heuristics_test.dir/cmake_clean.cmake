file(REMOVE_RECURSE
  "CMakeFiles/rigid_heuristics_test.dir/rigid_heuristics_test.cpp.o"
  "CMakeFiles/rigid_heuristics_test.dir/rigid_heuristics_test.cpp.o.d"
  "rigid_heuristics_test"
  "rigid_heuristics_test.pdb"
  "rigid_heuristics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rigid_heuristics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
