file(REMOVE_RECURSE
  "CMakeFiles/policer_test.dir/policer_test.cpp.o"
  "CMakeFiles/policer_test.dir/policer_test.cpp.o.d"
  "policer_test"
  "policer_test.pdb"
  "policer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
