# Empty dependencies file for single_pair_test.
# This may be replaced when dependencies are built.
