file(REMOVE_RECURSE
  "CMakeFiles/single_pair_test.dir/single_pair_test.cpp.o"
  "CMakeFiles/single_pair_test.dir/single_pair_test.cpp.o.d"
  "single_pair_test"
  "single_pair_test.pdb"
  "single_pair_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/single_pair_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
