# Empty compiler generated dependencies file for bookahead_test.
# This may be replaced when dependencies are built.
