file(REMOVE_RECURSE
  "CMakeFiles/bookahead_test.dir/bookahead_test.cpp.o"
  "CMakeFiles/bookahead_test.dir/bookahead_test.cpp.o.d"
  "bookahead_test"
  "bookahead_test.pdb"
  "bookahead_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bookahead_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
