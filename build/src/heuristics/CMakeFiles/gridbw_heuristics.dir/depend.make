# Empty dependencies file for gridbw_heuristics.
# This may be replaced when dependencies are built.
