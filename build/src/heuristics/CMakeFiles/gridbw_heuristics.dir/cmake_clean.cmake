file(REMOVE_RECURSE
  "CMakeFiles/gridbw_heuristics.dir/bandwidth_policy.cpp.o"
  "CMakeFiles/gridbw_heuristics.dir/bandwidth_policy.cpp.o.d"
  "CMakeFiles/gridbw_heuristics.dir/compact.cpp.o"
  "CMakeFiles/gridbw_heuristics.dir/compact.cpp.o.d"
  "CMakeFiles/gridbw_heuristics.dir/distributed.cpp.o"
  "CMakeFiles/gridbw_heuristics.dir/distributed.cpp.o.d"
  "CMakeFiles/gridbw_heuristics.dir/flexible_bookahead.cpp.o"
  "CMakeFiles/gridbw_heuristics.dir/flexible_bookahead.cpp.o.d"
  "CMakeFiles/gridbw_heuristics.dir/flexible_greedy.cpp.o"
  "CMakeFiles/gridbw_heuristics.dir/flexible_greedy.cpp.o.d"
  "CMakeFiles/gridbw_heuristics.dir/flexible_window.cpp.o"
  "CMakeFiles/gridbw_heuristics.dir/flexible_window.cpp.o.d"
  "CMakeFiles/gridbw_heuristics.dir/parse.cpp.o"
  "CMakeFiles/gridbw_heuristics.dir/parse.cpp.o.d"
  "CMakeFiles/gridbw_heuristics.dir/registry.cpp.o"
  "CMakeFiles/gridbw_heuristics.dir/registry.cpp.o.d"
  "CMakeFiles/gridbw_heuristics.dir/retry.cpp.o"
  "CMakeFiles/gridbw_heuristics.dir/retry.cpp.o.d"
  "CMakeFiles/gridbw_heuristics.dir/rigid_fcfs.cpp.o"
  "CMakeFiles/gridbw_heuristics.dir/rigid_fcfs.cpp.o.d"
  "CMakeFiles/gridbw_heuristics.dir/rigid_slots.cpp.o"
  "CMakeFiles/gridbw_heuristics.dir/rigid_slots.cpp.o.d"
  "libgridbw_heuristics.a"
  "libgridbw_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridbw_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
