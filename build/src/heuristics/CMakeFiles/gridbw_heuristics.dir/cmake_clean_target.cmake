file(REMOVE_RECURSE
  "libgridbw_heuristics.a"
)
