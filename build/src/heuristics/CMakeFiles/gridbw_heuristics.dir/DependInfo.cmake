
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/heuristics/bandwidth_policy.cpp" "src/heuristics/CMakeFiles/gridbw_heuristics.dir/bandwidth_policy.cpp.o" "gcc" "src/heuristics/CMakeFiles/gridbw_heuristics.dir/bandwidth_policy.cpp.o.d"
  "/root/repo/src/heuristics/compact.cpp" "src/heuristics/CMakeFiles/gridbw_heuristics.dir/compact.cpp.o" "gcc" "src/heuristics/CMakeFiles/gridbw_heuristics.dir/compact.cpp.o.d"
  "/root/repo/src/heuristics/distributed.cpp" "src/heuristics/CMakeFiles/gridbw_heuristics.dir/distributed.cpp.o" "gcc" "src/heuristics/CMakeFiles/gridbw_heuristics.dir/distributed.cpp.o.d"
  "/root/repo/src/heuristics/flexible_bookahead.cpp" "src/heuristics/CMakeFiles/gridbw_heuristics.dir/flexible_bookahead.cpp.o" "gcc" "src/heuristics/CMakeFiles/gridbw_heuristics.dir/flexible_bookahead.cpp.o.d"
  "/root/repo/src/heuristics/flexible_greedy.cpp" "src/heuristics/CMakeFiles/gridbw_heuristics.dir/flexible_greedy.cpp.o" "gcc" "src/heuristics/CMakeFiles/gridbw_heuristics.dir/flexible_greedy.cpp.o.d"
  "/root/repo/src/heuristics/flexible_window.cpp" "src/heuristics/CMakeFiles/gridbw_heuristics.dir/flexible_window.cpp.o" "gcc" "src/heuristics/CMakeFiles/gridbw_heuristics.dir/flexible_window.cpp.o.d"
  "/root/repo/src/heuristics/parse.cpp" "src/heuristics/CMakeFiles/gridbw_heuristics.dir/parse.cpp.o" "gcc" "src/heuristics/CMakeFiles/gridbw_heuristics.dir/parse.cpp.o.d"
  "/root/repo/src/heuristics/registry.cpp" "src/heuristics/CMakeFiles/gridbw_heuristics.dir/registry.cpp.o" "gcc" "src/heuristics/CMakeFiles/gridbw_heuristics.dir/registry.cpp.o.d"
  "/root/repo/src/heuristics/retry.cpp" "src/heuristics/CMakeFiles/gridbw_heuristics.dir/retry.cpp.o" "gcc" "src/heuristics/CMakeFiles/gridbw_heuristics.dir/retry.cpp.o.d"
  "/root/repo/src/heuristics/rigid_fcfs.cpp" "src/heuristics/CMakeFiles/gridbw_heuristics.dir/rigid_fcfs.cpp.o" "gcc" "src/heuristics/CMakeFiles/gridbw_heuristics.dir/rigid_fcfs.cpp.o.d"
  "/root/repo/src/heuristics/rigid_slots.cpp" "src/heuristics/CMakeFiles/gridbw_heuristics.dir/rigid_slots.cpp.o" "gcc" "src/heuristics/CMakeFiles/gridbw_heuristics.dir/rigid_slots.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gridbw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gridbw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
