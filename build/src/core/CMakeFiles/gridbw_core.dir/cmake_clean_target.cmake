file(REMOVE_RECURSE
  "libgridbw_core.a"
)
