file(REMOVE_RECURSE
  "CMakeFiles/gridbw_core.dir/ledger.cpp.o"
  "CMakeFiles/gridbw_core.dir/ledger.cpp.o.d"
  "CMakeFiles/gridbw_core.dir/network.cpp.o"
  "CMakeFiles/gridbw_core.dir/network.cpp.o.d"
  "CMakeFiles/gridbw_core.dir/request.cpp.o"
  "CMakeFiles/gridbw_core.dir/request.cpp.o.d"
  "CMakeFiles/gridbw_core.dir/schedule.cpp.o"
  "CMakeFiles/gridbw_core.dir/schedule.cpp.o.d"
  "CMakeFiles/gridbw_core.dir/schedule_io.cpp.o"
  "CMakeFiles/gridbw_core.dir/schedule_io.cpp.o.d"
  "CMakeFiles/gridbw_core.dir/step_function.cpp.o"
  "CMakeFiles/gridbw_core.dir/step_function.cpp.o.d"
  "CMakeFiles/gridbw_core.dir/validate.cpp.o"
  "CMakeFiles/gridbw_core.dir/validate.cpp.o.d"
  "libgridbw_core.a"
  "libgridbw_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridbw_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
