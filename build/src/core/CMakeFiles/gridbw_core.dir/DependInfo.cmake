
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ledger.cpp" "src/core/CMakeFiles/gridbw_core.dir/ledger.cpp.o" "gcc" "src/core/CMakeFiles/gridbw_core.dir/ledger.cpp.o.d"
  "/root/repo/src/core/network.cpp" "src/core/CMakeFiles/gridbw_core.dir/network.cpp.o" "gcc" "src/core/CMakeFiles/gridbw_core.dir/network.cpp.o.d"
  "/root/repo/src/core/request.cpp" "src/core/CMakeFiles/gridbw_core.dir/request.cpp.o" "gcc" "src/core/CMakeFiles/gridbw_core.dir/request.cpp.o.d"
  "/root/repo/src/core/schedule.cpp" "src/core/CMakeFiles/gridbw_core.dir/schedule.cpp.o" "gcc" "src/core/CMakeFiles/gridbw_core.dir/schedule.cpp.o.d"
  "/root/repo/src/core/schedule_io.cpp" "src/core/CMakeFiles/gridbw_core.dir/schedule_io.cpp.o" "gcc" "src/core/CMakeFiles/gridbw_core.dir/schedule_io.cpp.o.d"
  "/root/repo/src/core/step_function.cpp" "src/core/CMakeFiles/gridbw_core.dir/step_function.cpp.o" "gcc" "src/core/CMakeFiles/gridbw_core.dir/step_function.cpp.o.d"
  "/root/repo/src/core/validate.cpp" "src/core/CMakeFiles/gridbw_core.dir/validate.cpp.o" "gcc" "src/core/CMakeFiles/gridbw_core.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gridbw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
