# Empty compiler generated dependencies file for gridbw_core.
# This may be replaced when dependencies are built.
