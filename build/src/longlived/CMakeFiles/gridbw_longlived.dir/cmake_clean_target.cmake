file(REMOVE_RECURSE
  "libgridbw_longlived.a"
)
