
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/longlived/longlived.cpp" "src/longlived/CMakeFiles/gridbw_longlived.dir/longlived.cpp.o" "gcc" "src/longlived/CMakeFiles/gridbw_longlived.dir/longlived.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gridbw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gridbw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/gridbw_flow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
