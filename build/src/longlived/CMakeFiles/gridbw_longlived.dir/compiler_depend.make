# Empty compiler generated dependencies file for gridbw_longlived.
# This may be replaced when dependencies are built.
