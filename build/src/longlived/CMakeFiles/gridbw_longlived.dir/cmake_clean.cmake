file(REMOVE_RECURSE
  "CMakeFiles/gridbw_longlived.dir/longlived.cpp.o"
  "CMakeFiles/gridbw_longlived.dir/longlived.cpp.o.d"
  "libgridbw_longlived.a"
  "libgridbw_longlived.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridbw_longlived.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
