file(REMOVE_RECURSE
  "libgridbw_metrics.a"
)
