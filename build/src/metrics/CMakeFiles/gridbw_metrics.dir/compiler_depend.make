# Empty compiler generated dependencies file for gridbw_metrics.
# This may be replaced when dependencies are built.
