file(REMOVE_RECURSE
  "CMakeFiles/gridbw_metrics.dir/experiment.cpp.o"
  "CMakeFiles/gridbw_metrics.dir/experiment.cpp.o.d"
  "CMakeFiles/gridbw_metrics.dir/objectives.cpp.o"
  "CMakeFiles/gridbw_metrics.dir/objectives.cpp.o.d"
  "libgridbw_metrics.a"
  "libgridbw_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridbw_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
