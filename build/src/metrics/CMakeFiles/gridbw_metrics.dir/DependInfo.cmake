
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/experiment.cpp" "src/metrics/CMakeFiles/gridbw_metrics.dir/experiment.cpp.o" "gcc" "src/metrics/CMakeFiles/gridbw_metrics.dir/experiment.cpp.o.d"
  "/root/repo/src/metrics/objectives.cpp" "src/metrics/CMakeFiles/gridbw_metrics.dir/objectives.cpp.o" "gcc" "src/metrics/CMakeFiles/gridbw_metrics.dir/objectives.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gridbw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gridbw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
