# Empty compiler generated dependencies file for gridbw_exact.
# This may be replaced when dependencies are built.
