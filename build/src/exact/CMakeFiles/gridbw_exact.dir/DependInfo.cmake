
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exact/bnb.cpp" "src/exact/CMakeFiles/gridbw_exact.dir/bnb.cpp.o" "gcc" "src/exact/CMakeFiles/gridbw_exact.dir/bnb.cpp.o.d"
  "/root/repo/src/exact/single_pair.cpp" "src/exact/CMakeFiles/gridbw_exact.dir/single_pair.cpp.o" "gcc" "src/exact/CMakeFiles/gridbw_exact.dir/single_pair.cpp.o.d"
  "/root/repo/src/exact/threedm.cpp" "src/exact/CMakeFiles/gridbw_exact.dir/threedm.cpp.o" "gcc" "src/exact/CMakeFiles/gridbw_exact.dir/threedm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gridbw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gridbw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
