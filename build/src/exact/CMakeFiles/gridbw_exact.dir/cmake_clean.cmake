file(REMOVE_RECURSE
  "CMakeFiles/gridbw_exact.dir/bnb.cpp.o"
  "CMakeFiles/gridbw_exact.dir/bnb.cpp.o.d"
  "CMakeFiles/gridbw_exact.dir/single_pair.cpp.o"
  "CMakeFiles/gridbw_exact.dir/single_pair.cpp.o.d"
  "CMakeFiles/gridbw_exact.dir/threedm.cpp.o"
  "CMakeFiles/gridbw_exact.dir/threedm.cpp.o.d"
  "libgridbw_exact.a"
  "libgridbw_exact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridbw_exact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
