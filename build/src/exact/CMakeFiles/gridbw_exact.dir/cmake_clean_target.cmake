file(REMOVE_RECURSE
  "libgridbw_exact.a"
)
