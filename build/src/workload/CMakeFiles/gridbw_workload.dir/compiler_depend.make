# Empty compiler generated dependencies file for gridbw_workload.
# This may be replaced when dependencies are built.
