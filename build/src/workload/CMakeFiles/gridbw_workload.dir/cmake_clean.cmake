file(REMOVE_RECURSE
  "CMakeFiles/gridbw_workload.dir/generator.cpp.o"
  "CMakeFiles/gridbw_workload.dir/generator.cpp.o.d"
  "CMakeFiles/gridbw_workload.dir/load.cpp.o"
  "CMakeFiles/gridbw_workload.dir/load.cpp.o.d"
  "CMakeFiles/gridbw_workload.dir/mixture.cpp.o"
  "CMakeFiles/gridbw_workload.dir/mixture.cpp.o.d"
  "CMakeFiles/gridbw_workload.dir/scenario.cpp.o"
  "CMakeFiles/gridbw_workload.dir/scenario.cpp.o.d"
  "CMakeFiles/gridbw_workload.dir/trace.cpp.o"
  "CMakeFiles/gridbw_workload.dir/trace.cpp.o.d"
  "CMakeFiles/gridbw_workload.dir/volume_law.cpp.o"
  "CMakeFiles/gridbw_workload.dir/volume_law.cpp.o.d"
  "libgridbw_workload.a"
  "libgridbw_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridbw_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
