file(REMOVE_RECURSE
  "libgridbw_workload.a"
)
