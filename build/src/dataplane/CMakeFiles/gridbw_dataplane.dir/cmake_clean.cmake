file(REMOVE_RECURSE
  "CMakeFiles/gridbw_dataplane.dir/replay.cpp.o"
  "CMakeFiles/gridbw_dataplane.dir/replay.cpp.o.d"
  "libgridbw_dataplane.a"
  "libgridbw_dataplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridbw_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
