# Empty compiler generated dependencies file for gridbw_dataplane.
# This may be replaced when dependencies are built.
