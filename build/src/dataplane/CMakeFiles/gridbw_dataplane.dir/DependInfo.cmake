
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataplane/replay.cpp" "src/dataplane/CMakeFiles/gridbw_dataplane.dir/replay.cpp.o" "gcc" "src/dataplane/CMakeFiles/gridbw_dataplane.dir/replay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gridbw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/gridbw_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gridbw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
