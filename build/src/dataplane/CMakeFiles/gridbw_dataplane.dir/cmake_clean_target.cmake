file(REMOVE_RECURSE
  "libgridbw_dataplane.a"
)
