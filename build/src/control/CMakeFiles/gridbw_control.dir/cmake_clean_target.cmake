file(REMOVE_RECURSE
  "libgridbw_control.a"
)
