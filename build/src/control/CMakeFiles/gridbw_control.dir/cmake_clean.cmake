file(REMOVE_RECURSE
  "CMakeFiles/gridbw_control.dir/control_plane.cpp.o"
  "CMakeFiles/gridbw_control.dir/control_plane.cpp.o.d"
  "CMakeFiles/gridbw_control.dir/messages.cpp.o"
  "CMakeFiles/gridbw_control.dir/messages.cpp.o.d"
  "CMakeFiles/gridbw_control.dir/policer.cpp.o"
  "CMakeFiles/gridbw_control.dir/policer.cpp.o.d"
  "CMakeFiles/gridbw_control.dir/token_bucket.cpp.o"
  "CMakeFiles/gridbw_control.dir/token_bucket.cpp.o.d"
  "CMakeFiles/gridbw_control.dir/topology.cpp.o"
  "CMakeFiles/gridbw_control.dir/topology.cpp.o.d"
  "libgridbw_control.a"
  "libgridbw_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridbw_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
