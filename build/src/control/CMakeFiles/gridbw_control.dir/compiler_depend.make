# Empty compiler generated dependencies file for gridbw_control.
# This may be replaced when dependencies are built.
