
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/control/control_plane.cpp" "src/control/CMakeFiles/gridbw_control.dir/control_plane.cpp.o" "gcc" "src/control/CMakeFiles/gridbw_control.dir/control_plane.cpp.o.d"
  "/root/repo/src/control/messages.cpp" "src/control/CMakeFiles/gridbw_control.dir/messages.cpp.o" "gcc" "src/control/CMakeFiles/gridbw_control.dir/messages.cpp.o.d"
  "/root/repo/src/control/policer.cpp" "src/control/CMakeFiles/gridbw_control.dir/policer.cpp.o" "gcc" "src/control/CMakeFiles/gridbw_control.dir/policer.cpp.o.d"
  "/root/repo/src/control/token_bucket.cpp" "src/control/CMakeFiles/gridbw_control.dir/token_bucket.cpp.o" "gcc" "src/control/CMakeFiles/gridbw_control.dir/token_bucket.cpp.o.d"
  "/root/repo/src/control/topology.cpp" "src/control/CMakeFiles/gridbw_control.dir/topology.cpp.o" "gcc" "src/control/CMakeFiles/gridbw_control.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gridbw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gridbw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/heuristics/CMakeFiles/gridbw_heuristics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gridbw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
