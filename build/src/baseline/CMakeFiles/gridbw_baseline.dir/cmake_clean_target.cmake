file(REMOVE_RECURSE
  "libgridbw_baseline.a"
)
