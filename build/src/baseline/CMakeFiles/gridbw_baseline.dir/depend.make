# Empty dependencies file for gridbw_baseline.
# This may be replaced when dependencies are built.
