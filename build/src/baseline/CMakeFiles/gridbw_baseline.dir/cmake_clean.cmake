file(REMOVE_RECURSE
  "CMakeFiles/gridbw_baseline.dir/maxmin.cpp.o"
  "CMakeFiles/gridbw_baseline.dir/maxmin.cpp.o.d"
  "libgridbw_baseline.a"
  "libgridbw_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridbw_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
