file(REMOVE_RECURSE
  "libgridbw_flow.a"
)
