file(REMOVE_RECURSE
  "CMakeFiles/gridbw_flow.dir/maxflow.cpp.o"
  "CMakeFiles/gridbw_flow.dir/maxflow.cpp.o.d"
  "libgridbw_flow.a"
  "libgridbw_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridbw_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
