# Empty dependencies file for gridbw_flow.
# This may be replaced when dependencies are built.
