file(REMOVE_RECURSE
  "CMakeFiles/gridbw_util.dir/config.cpp.o"
  "CMakeFiles/gridbw_util.dir/config.cpp.o.d"
  "CMakeFiles/gridbw_util.dir/flags.cpp.o"
  "CMakeFiles/gridbw_util.dir/flags.cpp.o.d"
  "CMakeFiles/gridbw_util.dir/histogram.cpp.o"
  "CMakeFiles/gridbw_util.dir/histogram.cpp.o.d"
  "CMakeFiles/gridbw_util.dir/quantity.cpp.o"
  "CMakeFiles/gridbw_util.dir/quantity.cpp.o.d"
  "CMakeFiles/gridbw_util.dir/random.cpp.o"
  "CMakeFiles/gridbw_util.dir/random.cpp.o.d"
  "CMakeFiles/gridbw_util.dir/stats.cpp.o"
  "CMakeFiles/gridbw_util.dir/stats.cpp.o.d"
  "CMakeFiles/gridbw_util.dir/table.cpp.o"
  "CMakeFiles/gridbw_util.dir/table.cpp.o.d"
  "CMakeFiles/gridbw_util.dir/thread_pool.cpp.o"
  "CMakeFiles/gridbw_util.dir/thread_pool.cpp.o.d"
  "libgridbw_util.a"
  "libgridbw_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridbw_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
