file(REMOVE_RECURSE
  "libgridbw_util.a"
)
