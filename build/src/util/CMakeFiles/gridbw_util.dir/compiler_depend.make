# Empty compiler generated dependencies file for gridbw_util.
# This may be replaced when dependencies are built.
