# Empty compiler generated dependencies file for gridbw_sim.
# This may be replaced when dependencies are built.
