file(REMOVE_RECURSE
  "CMakeFiles/gridbw_sim.dir/event_queue.cpp.o"
  "CMakeFiles/gridbw_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/gridbw_sim.dir/simulator.cpp.o"
  "CMakeFiles/gridbw_sim.dir/simulator.cpp.o.d"
  "libgridbw_sim.a"
  "libgridbw_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridbw_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
