file(REMOVE_RECURSE
  "libgridbw_sim.a"
)
