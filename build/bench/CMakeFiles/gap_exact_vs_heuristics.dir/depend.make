# Empty dependencies file for gap_exact_vs_heuristics.
# This may be replaced when dependencies are built.
