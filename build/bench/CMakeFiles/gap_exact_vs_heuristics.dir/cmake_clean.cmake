file(REMOVE_RECURSE
  "CMakeFiles/gap_exact_vs_heuristics.dir/gap_exact_vs_heuristics.cpp.o"
  "CMakeFiles/gap_exact_vs_heuristics.dir/gap_exact_vs_heuristics.cpp.o.d"
  "gap_exact_vs_heuristics"
  "gap_exact_vs_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gap_exact_vs_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
