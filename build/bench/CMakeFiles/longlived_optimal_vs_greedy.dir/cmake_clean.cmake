file(REMOVE_RECURSE
  "CMakeFiles/longlived_optimal_vs_greedy.dir/longlived_optimal_vs_greedy.cpp.o"
  "CMakeFiles/longlived_optimal_vs_greedy.dir/longlived_optimal_vs_greedy.cpp.o.d"
  "longlived_optimal_vs_greedy"
  "longlived_optimal_vs_greedy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/longlived_optimal_vs_greedy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
