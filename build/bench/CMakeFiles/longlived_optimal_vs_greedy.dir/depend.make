# Empty dependencies file for longlived_optimal_vs_greedy.
# This may be replaced when dependencies are built.
