file(REMOVE_RECURSE
  "CMakeFiles/fig4_rigid_heuristics.dir/fig4_rigid_heuristics.cpp.o"
  "CMakeFiles/fig4_rigid_heuristics.dir/fig4_rigid_heuristics.cpp.o.d"
  "fig4_rigid_heuristics"
  "fig4_rigid_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_rigid_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
