# Empty compiler generated dependencies file for fig4_rigid_heuristics.
# This may be replaced when dependencies are built.
