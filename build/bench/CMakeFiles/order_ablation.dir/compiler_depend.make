# Empty compiler generated dependencies file for order_ablation.
# This may be replaced when dependencies are built.
