file(REMOVE_RECURSE
  "CMakeFiles/order_ablation.dir/order_ablation.cpp.o"
  "CMakeFiles/order_ablation.dir/order_ablation.cpp.o.d"
  "order_ablation"
  "order_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
