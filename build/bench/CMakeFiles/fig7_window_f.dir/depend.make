# Empty dependencies file for fig7_window_f.
# This may be replaced when dependencies are built.
