file(REMOVE_RECURSE
  "CMakeFiles/fig7_window_f.dir/fig7_window_f.cpp.o"
  "CMakeFiles/fig7_window_f.dir/fig7_window_f.cpp.o.d"
  "fig7_window_f"
  "fig7_window_f.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_window_f.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
