file(REMOVE_RECURSE
  "CMakeFiles/baseline_maxmin_vs_admission.dir/baseline_maxmin_vs_admission.cpp.o"
  "CMakeFiles/baseline_maxmin_vs_admission.dir/baseline_maxmin_vs_admission.cpp.o.d"
  "baseline_maxmin_vs_admission"
  "baseline_maxmin_vs_admission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_maxmin_vs_admission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
