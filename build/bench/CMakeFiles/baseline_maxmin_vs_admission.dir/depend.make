# Empty dependencies file for baseline_maxmin_vs_admission.
# This may be replaced when dependencies are built.
