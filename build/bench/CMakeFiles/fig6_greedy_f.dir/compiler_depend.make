# Empty compiler generated dependencies file for fig6_greedy_f.
# This may be replaced when dependencies are built.
