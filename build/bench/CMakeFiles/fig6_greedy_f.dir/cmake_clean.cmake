file(REMOVE_RECURSE
  "CMakeFiles/fig6_greedy_f.dir/fig6_greedy_f.cpp.o"
  "CMakeFiles/fig6_greedy_f.dir/fig6_greedy_f.cpp.o.d"
  "fig6_greedy_f"
  "fig6_greedy_f.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_greedy_f.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
