# Empty dependencies file for fig5_window_vs_fcfs.
# This may be replaced when dependencies are built.
