file(REMOVE_RECURSE
  "CMakeFiles/fig5_window_vs_fcfs.dir/fig5_window_vs_fcfs.cpp.o"
  "CMakeFiles/fig5_window_vs_fcfs.dir/fig5_window_vs_fcfs.cpp.o.d"
  "fig5_window_vs_fcfs"
  "fig5_window_vs_fcfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_window_vs_fcfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
