# Empty dependencies file for bookahead_horizon.
# This may be replaced when dependencies are built.
