file(REMOVE_RECURSE
  "CMakeFiles/bookahead_horizon.dir/bookahead_horizon.cpp.o"
  "CMakeFiles/bookahead_horizon.dir/bookahead_horizon.cpp.o.d"
  "bookahead_horizon"
  "bookahead_horizon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bookahead_horizon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
