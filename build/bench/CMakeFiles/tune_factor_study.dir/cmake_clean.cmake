file(REMOVE_RECURSE
  "CMakeFiles/tune_factor_study.dir/tune_factor_study.cpp.o"
  "CMakeFiles/tune_factor_study.dir/tune_factor_study.cpp.o.d"
  "tune_factor_study"
  "tune_factor_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tune_factor_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
