# Empty dependencies file for tune_factor_study.
# This may be replaced when dependencies are built.
