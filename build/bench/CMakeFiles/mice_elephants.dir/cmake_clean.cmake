file(REMOVE_RECURSE
  "CMakeFiles/mice_elephants.dir/mice_elephants.cpp.o"
  "CMakeFiles/mice_elephants.dir/mice_elephants.cpp.o.d"
  "mice_elephants"
  "mice_elephants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mice_elephants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
