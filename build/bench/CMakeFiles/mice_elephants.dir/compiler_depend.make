# Empty compiler generated dependencies file for mice_elephants.
# This may be replaced when dependencies are built.
