file(REMOVE_RECURSE
  "CMakeFiles/replay_enforcement.dir/replay_enforcement.cpp.o"
  "CMakeFiles/replay_enforcement.dir/replay_enforcement.cpp.o.d"
  "replay_enforcement"
  "replay_enforcement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_enforcement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
