# Empty compiler generated dependencies file for replay_enforcement.
# This may be replaced when dependencies are built.
