file(REMOVE_RECURSE
  "CMakeFiles/ext_hotspot_distributed.dir/ext_hotspot_distributed.cpp.o"
  "CMakeFiles/ext_hotspot_distributed.dir/ext_hotspot_distributed.cpp.o.d"
  "ext_hotspot_distributed"
  "ext_hotspot_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_hotspot_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
