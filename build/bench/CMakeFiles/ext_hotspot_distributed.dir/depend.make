# Empty dependencies file for ext_hotspot_distributed.
# This may be replaced when dependencies are built.
