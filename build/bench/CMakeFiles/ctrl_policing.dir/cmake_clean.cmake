file(REMOVE_RECURSE
  "CMakeFiles/ctrl_policing.dir/ctrl_policing.cpp.o"
  "CMakeFiles/ctrl_policing.dir/ctrl_policing.cpp.o.d"
  "ctrl_policing"
  "ctrl_policing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctrl_policing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
