# Empty compiler generated dependencies file for ctrl_policing.
# This may be replaced when dependencies are built.
