file(REMOVE_RECURSE
  "CMakeFiles/control_plane_demo.dir/control_plane_demo.cpp.o"
  "CMakeFiles/control_plane_demo.dir/control_plane_demo.cpp.o.d"
  "control_plane_demo"
  "control_plane_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/control_plane_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
