# Empty dependencies file for control_plane_demo.
# This may be replaced when dependencies are built.
