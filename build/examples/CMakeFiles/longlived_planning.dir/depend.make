# Empty dependencies file for longlived_planning.
# This may be replaced when dependencies are built.
