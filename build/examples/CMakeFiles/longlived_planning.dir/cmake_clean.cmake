file(REMOVE_RECURSE
  "CMakeFiles/longlived_planning.dir/longlived_planning.cpp.o"
  "CMakeFiles/longlived_planning.dir/longlived_planning.cpp.o.d"
  "longlived_planning"
  "longlived_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/longlived_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
