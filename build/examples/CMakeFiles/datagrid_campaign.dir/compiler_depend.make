# Empty compiler generated dependencies file for datagrid_campaign.
# This may be replaced when dependencies are built.
