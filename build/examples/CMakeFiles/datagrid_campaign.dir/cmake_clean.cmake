file(REMOVE_RECURSE
  "CMakeFiles/datagrid_campaign.dir/datagrid_campaign.cpp.o"
  "CMakeFiles/datagrid_campaign.dir/datagrid_campaign.cpp.o.d"
  "datagrid_campaign"
  "datagrid_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datagrid_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
