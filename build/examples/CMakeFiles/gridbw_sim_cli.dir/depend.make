# Empty dependencies file for gridbw_sim_cli.
# This may be replaced when dependencies are built.
