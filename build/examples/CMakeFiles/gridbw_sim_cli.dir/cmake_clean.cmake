file(REMOVE_RECURSE
  "CMakeFiles/gridbw_sim_cli.dir/gridbw_sim.cpp.o"
  "CMakeFiles/gridbw_sim_cli.dir/gridbw_sim.cpp.o.d"
  "gridbw_sim"
  "gridbw_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridbw_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
