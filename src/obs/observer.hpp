// gridbw/obs/observer.hpp
//
// The handle every admission engine threads through: a (sink, counters)
// pair, either of which may be absent. Schedulers receive a *nullable*
// `Observer*` — the disabled path is a single branch on that pointer at
// each note_* call site, with no event construction, no allocation, and no
// formatting, so hot-path benchmarks are unaffected when observability is
// off (acceptance: < 2 % on micro_schedulers / engine_speedup).

#pragma once

#include <cstddef>
#include <cstdint>

#include "obs/counters.hpp"
#include "obs/event.hpp"
#include "obs/trace_sink.hpp"

namespace gridbw::obs {

class Observer {
 public:
  Observer() = default;
  Observer(TraceSink* sink, CounterRegistry* counters)
      : sink_{sink}, counters_{counters} {}

  [[nodiscard]] TraceSink* sink() const { return sink_; }
  [[nodiscard]] CounterRegistry* counters() const { return counters_; }

  /// Forwards to the sink (if any); does not touch counters. Sanctioned
  /// observability boundary for the interprocedural hot walk: the disabled
  /// path is a single pointer test, and the enabled path's virtual record()
  /// cost is the documented opt-in (< 2 % acceptance gate above).
  // GRIDBW-ALLOW(hot-propagation): opt-in trace emission boundary (see above)
  void emit(const AdmissionEvent& event) {
    if (sink_ != nullptr) sink_->record(event);
  }

  /// Bumps a counter (if a registry is attached).
  void count(Counter counter, std::uint64_t delta = 1) {
    if (counters_ != nullptr) counters_->add(counter, delta);
  }

  /// Overwrites a gauge-style counter (if a registry is attached).
  void gauge(Counter counter, std::uint64_t value) {
    if (counters_ != nullptr) counters_->set(counter, value);
  }

 private:
  TraceSink* sink_{nullptr};
  CounterRegistry* counters_{nullptr};
};

// ---------------------------------------------------------------------------
// Call-site helpers. Each is a no-op (one branch, nothing constructed) when
// `observer` is null; otherwise it builds the event, forwards it to the
// sink, and bumps the lifecycle counter.
//
// The null check lives in a forced-inline shim so the disabled path is a
// pointer test even in unoptimized builds, where plain `inline` functions
// are still emitted as out-of-line calls; the event construction stays in
// detail::, reached only when an observer is attached.
// ---------------------------------------------------------------------------

#if defined(__GNUC__) || defined(__clang__)
#define GRIDBW_OBS_FORCE_INLINE [[gnu::always_inline]] inline
#else
#define GRIDBW_OBS_FORCE_INLINE inline
#endif

namespace detail {

inline void note_submitted_enabled(Observer* observer, RequestId request,
                                   TimePoint when, std::size_t attempt) {
  AdmissionEvent e;
  e.kind = EventKind::kSubmitted;
  e.request = request;
  e.when = when;
  e.attempt = attempt;
  observer->emit(e);
  observer->count(Counter::kSubmitted);
}

inline void note_accepted_enabled(Observer* observer, RequestId request,
                                  TimePoint when, TimePoint sigma, Bandwidth bw,
                                  std::size_t attempt) {
  AdmissionEvent e;
  e.kind = EventKind::kAccepted;
  e.request = request;
  e.when = when;
  e.attempt = attempt;
  e.sigma = sigma;
  e.bw = bw;
  observer->emit(e);
  observer->count(Counter::kAccepted);
}

inline void note_rejected_enabled(Observer* observer, RequestId request,
                                  TimePoint when, RejectReason reason,
                                  std::size_t attempt) {
  AdmissionEvent e;
  e.kind = EventKind::kRejected;
  e.request = request;
  e.when = when;
  e.attempt = attempt;
  e.reason = reason;
  observer->emit(e);
  observer->count(Counter::kRejected);
}

inline void note_retried_enabled(Observer* observer, RequestId request,
                                 TimePoint when, std::size_t next_attempt,
                                 Duration backoff) {
  AdmissionEvent e;
  e.kind = EventKind::kRetried;
  e.request = request;
  e.when = when;
  e.attempt = next_attempt;
  e.backoff = backoff;
  observer->emit(e);
  observer->count(Counter::kRetried);
}

inline void note_preempted_enabled(Observer* observer, RequestId request,
                                   TimePoint when) {
  AdmissionEvent e;
  e.kind = EventKind::kPreempted;
  e.request = request;
  e.when = when;
  observer->emit(e);
  observer->count(Counter::kPreempted);
}

inline void note_reclaimed_enabled(Observer* observer, RequestId request,
                                   TimePoint when, Bandwidth bw) {
  AdmissionEvent e;
  e.kind = EventKind::kReclaimed;
  e.request = request;
  e.when = when;
  e.bw = bw;
  observer->emit(e);
  observer->count(Counter::kReclaimed);
}

inline void note_expired_enabled(Observer* observer, RequestId request,
                                 TimePoint when, Bandwidth bw) {
  AdmissionEvent e;
  e.kind = EventKind::kExpired;
  e.request = request;
  e.when = when;
  e.bw = bw;
  observer->emit(e);
  observer->count(Counter::kExpired);
}

inline void note_revoked_enabled(Observer* observer, RequestId request,
                                 TimePoint when, RejectReason reason,
                                 Bandwidth bw) {
  AdmissionEvent e;
  e.kind = EventKind::kRevoked;
  e.request = request;
  e.when = when;
  e.reason = reason;
  e.bw = bw;
  observer->emit(e);
  observer->count(Counter::kRevoked);
}

inline void note_reshaped_enabled(Observer* observer, RequestId request,
                                  TimePoint when, Bandwidth bw) {
  AdmissionEvent e;
  e.kind = EventKind::kReshaped;
  e.request = request;
  e.when = when;
  e.bw = bw;
  observer->emit(e);
  observer->count(Counter::kReshaped);
}

}  // namespace detail

GRIDBW_OBS_FORCE_INLINE void note_submitted(Observer* observer, RequestId request,
                                            TimePoint when, std::size_t attempt = 1) {
  if (observer == nullptr) return;
  detail::note_submitted_enabled(observer, request, when, attempt);
}

GRIDBW_OBS_FORCE_INLINE void note_accepted(Observer* observer, RequestId request,
                                           TimePoint when, TimePoint sigma,
                                           Bandwidth bw, std::size_t attempt = 1) {
  if (observer == nullptr) return;
  detail::note_accepted_enabled(observer, request, when, sigma, bw, attempt);
}

GRIDBW_OBS_FORCE_INLINE void note_rejected(Observer* observer, RequestId request,
                                           TimePoint when, RejectReason reason,
                                           std::size_t attempt = 1) {
  if (observer == nullptr) return;
  detail::note_rejected_enabled(observer, request, when, reason, attempt);
}

GRIDBW_OBS_FORCE_INLINE void note_retried(Observer* observer, RequestId request,
                                          TimePoint when, std::size_t next_attempt,
                                          Duration backoff) {
  if (observer == nullptr) return;
  detail::note_retried_enabled(observer, request, when, next_attempt, backoff);
}

GRIDBW_OBS_FORCE_INLINE void note_preempted(Observer* observer, RequestId request,
                                            TimePoint when) {
  if (observer == nullptr) return;
  detail::note_preempted_enabled(observer, request, when);
}

GRIDBW_OBS_FORCE_INLINE void note_reclaimed(Observer* observer, RequestId request,
                                            TimePoint when, Bandwidth bw) {
  if (observer == nullptr) return;
  detail::note_reclaimed_enabled(observer, request, when, bw);
}

GRIDBW_OBS_FORCE_INLINE void note_expired(Observer* observer, RequestId request,
                                          TimePoint when, Bandwidth bw) {
  if (observer == nullptr) return;
  detail::note_expired_enabled(observer, request, when, bw);
}

GRIDBW_OBS_FORCE_INLINE void note_revoked(Observer* observer, RequestId request,
                                          TimePoint when, RejectReason reason,
                                          Bandwidth bw) {
  if (observer == nullptr) return;
  detail::note_revoked_enabled(observer, request, when, reason, bw);
}

GRIDBW_OBS_FORCE_INLINE void note_reshaped(Observer* observer, RequestId request,
                                           TimePoint when, Bandwidth bw) {
  if (observer == nullptr) return;
  detail::note_reshaped_enabled(observer, request, when, bw);
}

#undef GRIDBW_OBS_FORCE_INLINE

}  // namespace gridbw::obs
