// gridbw/obs/counters.hpp
//
// Lock-free-ish counter registry for the observability layer. Increments go
// to a per-thread shard (one relaxed atomic add, no lock on the hot path
// after a thread's first touch); reads merge every shard. The merge is
// deterministic regardless of thread scheduling because 64-bit addition is
// commutative and shards only ever grow — the same workload produces the
// same totals whether it ran serially or on the shared ThreadPool
// (tests/tsan_stress_test.cpp hammers this under TSan).
//
// The counter taxonomy is a fixed enum so shards are flat arrays; adding a
// counter means adding an enum entry and a name in counters.cpp.

#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gridbw::obs {

enum class Counter : std::size_t {
  // Admission lifecycle (bumped by the Observer note_* helpers).
  kSubmitted,
  kAccepted,
  kRejected,
  kRetried,
  kPreempted,
  kReclaimed,
  kExpired,
  kRevoked,
  kReshaped,
  // Ledger activity (bumped by the instrumented ledgers).
  kLedgerFitsChecks,
  kLedgerFitsRejected,
  kLedgerReservations,
  kLedgerReleases,
  // Counter-book anomaly: a reclaim drove a port counter below zero by more
  // than the admission tolerance (a mismatched allocate/reclaim pair).
  kLedgerDriftClamped,
  // Residual-index (O(log n) probe) adoption inside NetworkLedger::fits.
  kResidualIndexProbes,
  kResidualIndexFallbacks,
  kResidualIndexRebuilds,
  // TimelineProfile breakpoint GC (NetworkLedger / churn service):
  // per-port compaction passes and the breakpoints they folded away.
  kProfileCompactions,
  kBreakpointsRetired,
  // Churn service: events whose two ports straddle distinct workers' shard
  // sets (a static property of the port pair, so totals are deterministic).
  kShardHandoffs,
  // WINDOW selection-engine adoption: which drain engine each interval's
  // batch actually ran (kAuto picks scan below the break-even batch size,
  // heap at or above it; empty batches count nothing).
  kWindowScanDrains,
  kWindowHeapDrains,
  // Validator activity.
  kValidatorRuns,
  kValidatorAssignments,
  kValidatorViolations,
  // Retry-engine invariant: residual port occupancy (bytes/s, rounded)
  // after the final completion drain. Must be zero — tests assert it.
  kRetryResidualBps,
  kCount,  // sentinel: number of counters
};

inline constexpr std::size_t kCounterCount = static_cast<std::size_t>(Counter::kCount);

/// Stable snake_case identifier ("submitted", "ledger_fits_checks", ...).
[[nodiscard]] std::string to_string(Counter counter);

class CounterRegistry {
 public:
  CounterRegistry();
  ~CounterRegistry() = default;
  CounterRegistry(const CounterRegistry&) = delete;
  CounterRegistry& operator=(const CounterRegistry&) = delete;

  /// Adds `delta` to `counter` on the calling thread's shard. After a
  /// thread's first touch of this registry the cost is one cached pointer
  /// compare plus one relaxed atomic add.
  void add(Counter counter, std::uint64_t delta = 1);

  /// Overwrites the calling thread's shard cell (used for gauge-style
  /// counters such as the retry engine's residual occupancy).
  void set(Counter counter, std::uint64_t value);

  /// Merged total across every shard. Safe to call concurrently with
  /// writers; the value is a consistent lower bound of in-flight activity
  /// and exact once writers have quiesced.
  [[nodiscard]] std::uint64_t value(Counter counter) const;

  /// Merged totals for all counters, indexed by Counter.
  [[nodiscard]] std::array<std::uint64_t, kCounterCount> snapshot() const;

  /// Zeroes every shard in place. Callers must ensure no concurrent writer.
  void reset();

 private:
  struct Shard {
    std::array<std::atomic<std::uint64_t>, kCounterCount> cells{};
  };

  [[nodiscard]] Shard& local_shard() const;

  /// Registry identity for the per-thread shard cache. Monotonic across the
  /// process so a destroyed registry's id is never reused by a new one at
  /// the same address.
  std::uint64_t id_{0};
  mutable std::mutex mutex_;
  mutable std::vector<std::unique_ptr<Shard>> shards_;  // gridbw:guarded_by(mutex_)
};

}  // namespace gridbw::obs
