// gridbw/obs/event.hpp
//
// Structured admission events: the one vocabulary every scheduler speaks
// when an Observer is attached. Events are plain value types — building one
// never allocates or formats, so the enabled path stays cheap and the
// disabled path is a single null-pointer branch at the call site.
//
// Event kinds mirror the lifecycle of a reservation request:
//
//   submitted  — a request (or a retry attempt) entered an admission engine
//   accepted   — the engine granted {σ, bw}
//   rejected   — the engine refused, with a RejectReason from the taxonomy
//   retried    — a rejected attempt was re-queued after a backoff
//   preempted  — a previously admitted request was retro-removed mid-sweep
//                (the rigid *-SLOTS engines)
//   reclaimed  — a finished transfer returned its bandwidth to the ledger
//   expired    — a reservation reached its deadline in the churn service and
//                the expiry path released its bandwidth
//   revoked    — an admitted reservation was forcibly withdrawn before its
//                deadline (capacity loss, operator drain)
//   reshaped   — a malleable engine changed an in-flight transfer's rate
//                (upward when a departure freed capacity, back toward the
//                guarantee when a newcomer claimed its share; never below
//                the admission guarantee, so no revocation is implied)
//
// The RejectReason taxonomy answers the evaluation question Figs. 4–7 pose:
// *which constraint* killed the request as load grows.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/ids.hpp"
#include "util/quantity.hpp"

namespace gridbw::obs {

enum class EventKind : std::uint8_t {
  kSubmitted,
  kAccepted,
  kRejected,
  kRetried,
  kPreempted,
  kReclaimed,
  kExpired,
  kRevoked,
  kReshaped,
};

/// Why an admission engine refused (or retro-removed) a request.
enum class RejectReason : std::uint8_t {
  kNone,                // not a rejection
  kDegenerateWindow,    // deadline <= release: the window carries no volume
  kInfeasibleRate,      // MinRate (from the decision instant) > MaxRate
  kIngressSaturated,    // the ingress port cannot carry the extra bandwidth
  kEgressSaturated,     // the egress port cannot carry the extra bandwidth
  kBothPortsSaturated,  // neither port can
  kNoFeasibleStart,     // no start slot within the book-ahead horizon fits
  kRetroRemoved,        // a *-SLOTS sweep discarded the request in a slice
  kRetriesExhausted,    // every attempt of the retry budget failed
};

/// One structured admission event. `when` is always simulated time; wall
/// clocks never appear in the event stream (gridbw-wall-clock).
struct AdmissionEvent {
  EventKind kind{EventKind::kSubmitted};
  RequestId request{0};
  /// Simulated instant of the decision (submission, acceptance, ...).
  TimePoint when;
  /// 1-based submission attempt (always 1 outside the retry engine).
  std::size_t attempt{1};
  /// accepted: the granted start time σ(r).
  TimePoint sigma;
  /// accepted / reclaimed / reshaped: the granted (returned, new) bandwidth.
  Bandwidth bw;
  /// rejected: taxonomy entry; kNone for every other kind.
  RejectReason reason{RejectReason::kNone};
  /// retried: the delay before the next attempt.
  Duration backoff;
};

/// Maps per-port admission verdicts to the saturation taxonomy. Returns
/// kNone when both ports fit (the caller rejected for another reason).
[[nodiscard]] constexpr RejectReason classify_saturation(bool ingress_fits,
                                                         bool egress_fits) {
  if (!ingress_fits && !egress_fits) return RejectReason::kBothPortsSaturated;
  if (!ingress_fits) return RejectReason::kIngressSaturated;
  if (!egress_fits) return RejectReason::kEgressSaturated;
  return RejectReason::kNone;
}

/// Stable lowercase identifiers used in the JSONL schema ("submitted", ...).
[[nodiscard]] std::string to_string(EventKind kind);
/// Stable lowercase identifiers ("ingress_saturated", ...).
[[nodiscard]] std::string to_string(RejectReason reason);

}  // namespace gridbw::obs
