#include "obs/trace_sink.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <stdexcept>
#include <system_error>

namespace gridbw::obs {
namespace {

/// Shortest decimal representation that round-trips the double — the same
/// bytes for the same bits, on every run (std::to_chars is locale-free).
std::string format_double(double value) {
  std::array<char, 32> buf{};
  const auto [ptr, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), value);
  if (ec != std::errc{}) return "0";
  return std::string{buf.data(), ptr};
}

/// Minimal RFC 8259 escaping for annotation strings (names, seeds).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::array<char, 8> buf{};
          std::snprintf(buf.data(), buf.size(), "\\u%04x", c);
          out += buf.data();
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string meta_line(std::string_view key, std::string_view value) {
  return "{\"event\":\"meta\",\"key\":\"" + json_escape(key) + "\",\"value\":\"" +
         json_escape(value) + "\"}";
}

/// The wall-clock stamp is the one sanctioned real-time read in the library
/// (see gridbw-lint's wall-clock rule, which allowlists src/obs/). It is
/// opt-in precisely because it breaks byte-identical replay.
std::string wallclock_iso8601() {
  const std::time_t now = std::chrono::system_clock::to_time_t(
      std::chrono::system_clock::now());
  std::tm utc{};
  gmtime_r(&now, &utc);
  std::array<char, 32> buf{};
  std::strftime(buf.data(), buf.size(), "%Y-%m-%dT%H:%M:%SZ", &utc);
  return std::string{buf.data()};
}

}  // namespace

// ---------------------------------------------------------------------------
// MemorySink
// ---------------------------------------------------------------------------

void MemorySink::record(const AdmissionEvent& event) {
  std::lock_guard lock{mutex_};
  events_.push_back(event);
}

void MemorySink::annotate(std::string_view key, std::string_view value) {
  std::lock_guard lock{mutex_};
  annotations_.emplace_back(std::string{key}, std::string{value});
}

std::size_t MemorySink::count(EventKind kind) const {
  std::lock_guard lock{mutex_};
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [kind](const AdmissionEvent& e) { return e.kind == kind; }));
}

std::size_t MemorySink::count(RejectReason reason) const {
  std::lock_guard lock{mutex_};
  return static_cast<std::size_t>(std::count_if(
      events_.begin(), events_.end(), [reason](const AdmissionEvent& e) {
        return e.kind == EventKind::kRejected && e.reason == reason;
      }));
}

void MemorySink::clear() {
  std::lock_guard lock{mutex_};
  events_.clear();
  annotations_.clear();
}

// ---------------------------------------------------------------------------
// JsonlSink
// ---------------------------------------------------------------------------

JsonlSink::JsonlSink(std::ostream& out, const Options& options) : out_{&out} {
  if (options.stamp_wallclock) write_line(meta_line("wallclock", wallclock_iso8601()));
}

JsonlSink::JsonlSink(const std::string& path, const Options& options)
    : owned_{path}, out_{&owned_} {
  if (!owned_.is_open()) {
    throw std::runtime_error{"JsonlSink: cannot open " + path};
  }
  if (options.stamp_wallclock) write_line(meta_line("wallclock", wallclock_iso8601()));
}

JsonlSink::~JsonlSink() { out_->flush(); }

std::string JsonlSink::format(const AdmissionEvent& event) {
  std::string line = "{\"event\":\"" + to_string(event.kind) + "\"";
  line += ",\"req\":" + std::to_string(event.request);
  line += ",\"t\":" + format_double(event.when.to_seconds());
  switch (event.kind) {
    case EventKind::kSubmitted:
      line += ",\"attempt\":" + std::to_string(event.attempt);
      break;
    case EventKind::kAccepted:
      line += ",\"attempt\":" + std::to_string(event.attempt);
      line += ",\"sigma\":" + format_double(event.sigma.to_seconds());
      line += ",\"bw\":" + format_double(event.bw.to_bytes_per_second());
      break;
    case EventKind::kRejected:
      line += ",\"attempt\":" + std::to_string(event.attempt);
      line += ",\"reason\":\"" + to_string(event.reason) + "\"";
      break;
    case EventKind::kRetried:
      line += ",\"attempt\":" + std::to_string(event.attempt);
      line += ",\"backoff\":" + format_double(event.backoff.to_seconds());
      break;
    case EventKind::kPreempted:
      break;
    case EventKind::kReclaimed:
      line += ",\"bw\":" + format_double(event.bw.to_bytes_per_second());
      break;
    case EventKind::kExpired:
      line += ",\"bw\":" + format_double(event.bw.to_bytes_per_second());
      break;
    case EventKind::kRevoked:
      line += ",\"reason\":\"" + to_string(event.reason) + "\"";
      line += ",\"bw\":" + format_double(event.bw.to_bytes_per_second());
      break;
    case EventKind::kReshaped:
      line += ",\"bw\":" + format_double(event.bw.to_bytes_per_second());
      break;
  }
  line += "}";
  return line;
}

void JsonlSink::record(const AdmissionEvent& event) { write_line(format(event)); }

void JsonlSink::annotate(std::string_view key, std::string_view value) {
  write_line(meta_line(key, value));
}

void JsonlSink::flush() {
  std::lock_guard lock{mutex_};
  out_->flush();
}

void JsonlSink::write_line(const std::string& line) {
  std::lock_guard lock{mutex_};
  *out_ << line << '\n';
}

}  // namespace gridbw::obs
