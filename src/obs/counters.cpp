#include "obs/counters.hpp"

#include <utility>

namespace gridbw::obs {

std::string to_string(Counter counter) {
  switch (counter) {
    case Counter::kSubmitted: return "submitted";
    case Counter::kAccepted: return "accepted";
    case Counter::kRejected: return "rejected";
    case Counter::kRetried: return "retried";
    case Counter::kPreempted: return "preempted";
    case Counter::kReclaimed: return "reclaimed";
    case Counter::kExpired: return "expired";
    case Counter::kRevoked: return "revoked";
    case Counter::kReshaped: return "reshaped";
    case Counter::kLedgerFitsChecks: return "ledger_fits_checks";
    case Counter::kLedgerFitsRejected: return "ledger_fits_rejected";
    case Counter::kLedgerReservations: return "ledger_reservations";
    case Counter::kLedgerReleases: return "ledger_releases";
    case Counter::kLedgerDriftClamped: return "ledger_drift_clamped";
    case Counter::kResidualIndexProbes: return "residual_index_probes";
    case Counter::kResidualIndexFallbacks: return "residual_index_fallbacks";
    case Counter::kResidualIndexRebuilds: return "residual_index_rebuilds";
    case Counter::kProfileCompactions: return "profile_compactions";
    case Counter::kBreakpointsRetired: return "breakpoints_retired";
    case Counter::kShardHandoffs: return "shard_handoffs";
    case Counter::kWindowScanDrains: return "window_scan_drains";
    case Counter::kWindowHeapDrains: return "window_heap_drains";
    case Counter::kValidatorRuns: return "validator_runs";
    case Counter::kValidatorAssignments: return "validator_assignments";
    case Counter::kValidatorViolations: return "validator_violations";
    case Counter::kRetryResidualBps: return "retry_residual_bps";
    case Counter::kCount: break;
  }
  return "unknown";
}

namespace {

std::uint64_t next_registry_id() {
  static std::atomic<std::uint64_t> next{1};
  // Uniqueness is the only requirement, no ordering with any other memory.
  // GRIDBW-ALLOW(atomic-discipline): relaxed id allocation.
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

CounterRegistry::CounterRegistry() : id_{next_registry_id()} {}

// The steady state is a thread-local cache hit (one compare); the
// allocation and registry lock below run once per (thread, registry) —
// first-touch shard creation, amortized to nothing on the hot path.
// GRIDBW-ALLOW(hot-propagation): amortized first-touch shard creation
CounterRegistry::Shard& CounterRegistry::local_shard() const {
  struct Entry {
    std::uint64_t id{0};
    Shard* shard{nullptr};
  };
  // Single-entry fast cache (the common case touches one registry per
  // thread) backed by a small per-thread list for tests that juggle several
  // registries. Ids are process-unique, so a stale entry can never alias a
  // newer registry reusing the same address.
  thread_local Entry last;
  thread_local std::vector<Entry> rest;

  if (last.id == id_) return *last.shard;
  for (Entry& e : rest) {
    if (e.id == id_) {
      std::swap(e, last);
      return *last.shard;
    }
  }
  auto shard = std::make_unique<Shard>();
  Shard* raw = shard.get();
  {
    std::lock_guard lock{mutex_};
    shards_.push_back(std::move(shard));
  }
  if (last.id != 0) rest.push_back(last);
  last = Entry{id_, raw};
  return *raw;
}

void CounterRegistry::add(Counter counter, std::uint64_t delta) {
  local_shard().cells[static_cast<std::size_t>(counter)].fetch_add(
      // The merge is exact after quiescence whatever order increments land in.
      // GRIDBW-ALLOW(atomic-discipline): commutative shard add.
      delta, std::memory_order_relaxed);
}

void CounterRegistry::set(Counter counter, std::uint64_t value) {
  local_shard().cells[static_cast<std::size_t>(counter)].store(
      // Gauge write to the caller's own shard cell; nothing else published.
      // GRIDBW-ALLOW(atomic-discipline): relaxed gauge store.
      value, std::memory_order_relaxed);
}

std::uint64_t CounterRegistry::value(Counter counter) const {
  const std::size_t c = static_cast<std::size_t>(counter);
  std::uint64_t total = 0;
  std::lock_guard lock{mutex_};
  for (const auto& shard : shards_) {
    // A consistent lower bound while writers run, exact after quiescence.
    // GRIDBW-ALLOW(atomic-discipline): commutative-sum read.
    total += shard->cells[c].load(std::memory_order_relaxed);
  }
  return total;
}

std::array<std::uint64_t, kCounterCount> CounterRegistry::snapshot() const {
  std::array<std::uint64_t, kCounterCount> totals{};
  std::lock_guard lock{mutex_};
  for (const auto& shard : shards_) {
    for (std::size_t c = 0; c < kCounterCount; ++c) {
      // GRIDBW-ALLOW(atomic-discipline): same commutative-sum read as value().
      totals[c] += shard->cells[c].load(std::memory_order_relaxed);
    }
  }
  return totals;
}

void CounterRegistry::reset() {
  std::lock_guard lock{mutex_};
  for (const auto& shard : shards_) {
    // The reset contract requires quiesced writers; no ordering is relied on.
    // GRIDBW-ALLOW(atomic-discipline): quiesced reset store.
    for (auto& cell : shard->cells) cell.store(0, std::memory_order_relaxed);
  }
}

}  // namespace gridbw::obs
