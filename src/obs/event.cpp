#include "obs/event.hpp"

namespace gridbw::obs {

std::string to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kSubmitted: return "submitted";
    case EventKind::kAccepted: return "accepted";
    case EventKind::kRejected: return "rejected";
    case EventKind::kRetried: return "retried";
    case EventKind::kPreempted: return "preempted";
    case EventKind::kReclaimed: return "reclaimed";
    case EventKind::kExpired: return "expired";
    case EventKind::kRevoked: return "revoked";
    case EventKind::kReshaped: return "reshaped";
  }
  return "unknown";
}

std::string to_string(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone: return "none";
    case RejectReason::kDegenerateWindow: return "degenerate_window";
    case RejectReason::kInfeasibleRate: return "infeasible_rate";
    case RejectReason::kIngressSaturated: return "ingress_saturated";
    case RejectReason::kEgressSaturated: return "egress_saturated";
    case RejectReason::kBothPortsSaturated: return "both_ports_saturated";
    case RejectReason::kNoFeasibleStart: return "no_feasible_start";
    case RejectReason::kRetroRemoved: return "retro_removed";
    case RejectReason::kRetriesExhausted: return "retries_exhausted";
  }
  return "unknown";
}

}  // namespace gridbw::obs
