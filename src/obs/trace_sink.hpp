// gridbw/obs/trace_sink.hpp
//
// Where structured admission events go. The sink contract:
//
//  * `record` may be called from any thread; implementations serialize
//    internally. Schedulers themselves are single-threaded, so events from
//    one run arrive in decision order; concurrent runs sharing one sink
//    interleave at record granularity.
//  * `annotate` emits an out-of-band key/value marker (scheduler name, seed,
//    workload id) so one stream can carry several runs.
//  * Determinism: neither implementation below stamps wall-clock time into
//    the stream by default — two runs with the same seed produce
//    byte-identical JSONL. `JsonlSink` can optionally prepend one wall-clock
//    meta line (`stamp_wallclock`), the single sanctioned use of real time
//    in the library (see gridbw-lint's wall-clock rule).
//
// JSONL schema (one object per line, validated by
// scripts/trace_schema_check.py and DESIGN.md §5e):
//
//   {"event":"submitted","req":7,"t":12.5,"attempt":1}
//   {"event":"accepted","req":7,"t":12.5,"attempt":1,"sigma":12.5,"bw":1e+08}
//   {"event":"rejected","req":9,"t":13.0,"attempt":1,"reason":"egress_saturated"}
//   {"event":"retried","req":9,"t":13.0,"attempt":2,"backoff":60}
//   {"event":"preempted","req":4,"t":200.0}
//   {"event":"reclaimed","req":7,"t":62.5,"bw":1e+08}
//   {"event":"expired","req":3,"t":75.0,"bw":1e+08}
//   {"event":"revoked","req":5,"t":80.0,"reason":"retro_removed","bw":1e+08}
//   {"event":"meta","key":"scheduler","value":"FCFS"}

#pragma once

#include <fstream>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/event.hpp"

namespace gridbw::obs {

class TraceSink {
 public:
  TraceSink() = default;
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;
  virtual ~TraceSink() = default;

  /// Records one admission event. Thread-safe.
  virtual void record(const AdmissionEvent& event) = 0;

  /// Emits an out-of-band marker (run boundaries, scheduler names, seeds).
  virtual void annotate(std::string_view key, std::string_view value) = 0;

  /// Flushes buffered output (no-op for in-memory sinks).
  virtual void flush() {}
};

/// Collects events in memory, for tests and programmatic inspection.
class MemorySink final : public TraceSink {
 public:
  void record(const AdmissionEvent& event) override;
  void annotate(std::string_view key, std::string_view value) override;

  /// Events in record order. Do not call concurrently with writers.
  // GRIDBW-ALLOW(guarded-by): lock-free read by documented quiesced contract.
  [[nodiscard]] const std::vector<AdmissionEvent>& events() const { return events_; }
  /// Annotations in record order, as (key, value) pairs.
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>& annotations()
      const {
    // GRIDBW-ALLOW(guarded-by): same quiesced-reader contract as events().
    return annotations_;
  }

  /// Number of events of `kind` recorded so far.
  [[nodiscard]] std::size_t count(EventKind kind) const;
  /// Number of rejections recorded with `reason`.
  [[nodiscard]] std::size_t count(RejectReason reason) const;

  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<AdmissionEvent> events_;  // gridbw:guarded_by(mutex_)
  std::vector<std::pair<std::string, std::string>> annotations_;  // gridbw:guarded_by(mutex_)
};

struct JsonlSinkOptions {
  /// Prepend one `{"event":"meta","key":"wallclock",...}` line with the
  /// real-world ISO-8601 time the sink was opened. Off by default: the
  /// stream stays byte-identical across runs with the same seed.
  bool stamp_wallclock{false};
};

/// Streams events as JSON Lines to an ostream (or an owned file).
class JsonlSink final : public TraceSink {
 public:
  using Options = JsonlSinkOptions;

  /// Writes to `out`; the stream must outlive the sink.
  explicit JsonlSink(std::ostream& out, const Options& options = {});
  /// Opens `path` for writing (truncates). Throws std::runtime_error when
  /// the file cannot be opened.
  explicit JsonlSink(const std::string& path, const Options& options = {});
  ~JsonlSink() override;

  void record(const AdmissionEvent& event) override;
  void annotate(std::string_view key, std::string_view value) override;
  void flush() override;

  /// Formats one event exactly as `record` writes it (minus the newline).
  /// Exposed so the schema test and the docs stay honest.
  [[nodiscard]] static std::string format(const AdmissionEvent& event);

 private:
  void write_line(const std::string& line);

  std::ofstream owned_;
  std::ostream* out_;
  std::mutex mutex_;
};

}  // namespace gridbw::obs
