#include "obs/utilization.hpp"

#include <array>
#include <charconv>
#include <string>
#include <system_error>
#include <unordered_map>

#include "core/timeline_profile.hpp"

namespace gridbw::obs {
namespace {

std::string fmt(double value) {
  std::array<char, 32> buf{};
  const auto [ptr, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), value);
  if (ec != std::errc{}) return "0";
  return std::string{buf.data(), ptr};
}

PortUtilization summarize(const TimelineProfile& profile, std::size_t port,
                          bool is_ingress, Bandwidth capacity, TimePoint t0,
                          TimePoint t1) {
  PortUtilization u;
  u.port = port;
  u.is_ingress = is_ingress;
  u.capacity = capacity;
  u.peak = Bandwidth::bytes_per_second(profile.max_over(t0, t1));
  u.peak_ratio = capacity.is_positive() ? u.peak / capacity : 0.0;
  u.carried = Volume::bytes(profile.integral(t0, t1));
  const Volume deliverable = capacity * (t1 - t0);
  u.mean_ratio = deliverable.is_positive() ? u.carried / deliverable : 0.0;

  u.series.push_back(UtilSample{t0, Bandwidth::bytes_per_second(profile.value_at(t0))});
  for (const TimePoint bp : profile.breakpoints()) {
    if (!(bp > t0) || !(bp < t1)) continue;
    u.series.push_back(
        UtilSample{bp, Bandwidth::bytes_per_second(profile.value_at(bp))});
  }
  return u;
}

void write_port_csv(std::ostream& out, std::string_view label,
                    const PortUtilization& u) {
  const char* kind = u.is_ingress ? "ingress" : "egress";
  out << label << ",summary," << kind << ',' << u.port << ",,,"
      << fmt(u.capacity.to_bytes_per_second()) << ','
      << fmt(u.peak.to_bytes_per_second()) << ',' << fmt(u.peak_ratio) << ','
      << fmt(u.carried.to_bytes()) << ',' << fmt(u.mean_ratio) << '\n';
  for (const UtilSample& s : u.series) {
    out << label << ",sample," << kind << ',' << u.port << ','
        << fmt(s.at.to_seconds()) << ',' << fmt(s.load.to_bytes_per_second()) << ','
        << fmt(u.capacity.to_bytes_per_second()) << ",,,,\n";
  }
}

void write_port_json(std::ostream& out, const PortUtilization& u) {
  out << "{\"port\":" << u.port << ",\"capacity_bps\":"
      << fmt(u.capacity.to_bytes_per_second())
      << ",\"peak_bps\":" << fmt(u.peak.to_bytes_per_second())
      << ",\"peak_ratio\":" << fmt(u.peak_ratio)
      << ",\"carried_bytes\":" << fmt(u.carried.to_bytes())
      << ",\"mean_ratio\":" << fmt(u.mean_ratio) << ",\"series\":[";
  for (std::size_t s = 0; s < u.series.size(); ++s) {
    out << (s == 0 ? "" : ",") << "[" << fmt(u.series[s].at.to_seconds()) << ","
        << fmt(u.series[s].load.to_bytes_per_second()) << "]";
  }
  out << "]}";
}

}  // namespace

Volume UtilizationReport::total_carried() const {
  Volume total = Volume::zero();
  for (const PortUtilization& u : ingress) total += u.carried;
  return total;
}

void UtilizationReport::write_csv_header(std::ostream& out) {
  out << "scheduler,row,kind,port,time_s,load_bps,capacity_bps,peak_bps,"
         "peak_ratio,carried_bytes,mean_ratio\n";
}

void UtilizationReport::write_csv(std::ostream& out, std::string_view label) const {
  for (const PortUtilization& u : ingress) write_port_csv(out, label, u);
  for (const PortUtilization& u : egress) write_port_csv(out, label, u);
}

void UtilizationReport::write_json(std::ostream& out, std::string_view label) const {
  out << "{\"scheduler\":\"" << label << "\",\"window\":["
      << fmt(window_start.to_seconds()) << "," << fmt(window_end.to_seconds())
      << "],\"ingress\":[";
  for (std::size_t p = 0; p < ingress.size(); ++p) {
    if (p != 0) out << ",";
    write_port_json(out, ingress[p]);
  }
  out << "],\"egress\":[";
  for (std::size_t p = 0; p < egress.size(); ++p) {
    if (p != 0) out << ",";
    write_port_json(out, egress[p]);
  }
  out << "]}\n";
}

UtilizationReport utilization_report(const Network& network,
                                     std::span<const Request> requests,
                                     const Schedule& schedule, TimePoint window_start,
                                     TimePoint window_end) {
  std::unordered_map<RequestId, const Request*> by_id;
  by_id.reserve(requests.size());
  for (const Request& r : requests) by_id.emplace(r.id, &r);

  std::vector<TimelineProfile> in_load(network.ingress_count());
  std::vector<TimelineProfile> out_load(network.egress_count());
  for (const Assignment& a : schedule.assignments()) {
    const auto it = by_id.find(a.request);
    if (it == by_id.end() || !a.bw.is_positive()) continue;
    const Request& r = *it->second;
    a.for_each_segment(r, [&](TimePoint t0, TimePoint t1, Bandwidth rate) {
      in_load[r.ingress.value].add(t0, t1, rate.to_bytes_per_second());
      out_load[r.egress.value].add(t0, t1, rate.to_bytes_per_second());
    });
  }

  UtilizationReport report;
  report.window_start = window_start;
  report.window_end = window_end;
  report.ingress.reserve(in_load.size());
  for (std::size_t p = 0; p < in_load.size(); ++p) {
    report.ingress.push_back(summarize(in_load[p], p, true,
                                       network.ingress_capacity(IngressId{p}),
                                       window_start, window_end));
  }
  report.egress.reserve(out_load.size());
  for (std::size_t p = 0; p < out_load.size(); ++p) {
    report.egress.push_back(summarize(out_load[p], p, false,
                                      network.egress_capacity(EgressId{p}),
                                      window_start, window_end));
  }
  return report;
}

}  // namespace gridbw::obs
