// gridbw/obs/utilization.hpp
//
// Per-port utilization export built on TimelineProfile: replay a finished
// schedule into exact port-load profiles (the validator's construction) and
// export, for every ingress and egress port,
//
//   * the time series of load vs capacity (one sample per breakpoint,
//     clamped to the reporting window),
//   * the peak load and peak/capacity ratio over the window,
//   * the carried volume (integral of load) and mean utilization ratio.
//
// Writers emit CSV (flat rows, summary + series distinguished by the `row`
// column) and JSON (one object per port with inline series). All numbers
// are shortest-round-trip doubles, so exports are byte-stable across runs.

#pragma once

#include <ostream>
#include <span>
#include <string_view>
#include <vector>

#include "core/network.hpp"
#include "core/request.hpp"
#include "core/schedule.hpp"
#include "util/quantity.hpp"

namespace gridbw::obs {

/// One breakpoint of a port's load profile.
struct UtilSample {
  TimePoint at;
  Bandwidth load;
};

struct PortUtilization {
  std::size_t port{0};
  bool is_ingress{true};
  Bandwidth capacity;
  /// Peak load over the reporting window.
  Bandwidth peak;
  /// peak / capacity.
  double peak_ratio{0.0};
  /// Integral of load over the window: the volume the port carried.
  Volume carried;
  /// carried / (capacity * window length).
  double mean_ratio{0.0};
  /// Load samples: the value at window start, then one per breakpoint
  /// inside the window (right-continuous, constant until the next sample).
  std::vector<UtilSample> series;
};

struct UtilizationReport {
  TimePoint window_start;
  TimePoint window_end;
  std::vector<PortUtilization> ingress;
  std::vector<PortUtilization> egress;

  /// Volume carried across all ingress ports (== egress side for a
  /// feasible schedule restricted to the window).
  [[nodiscard]] Volume total_carried() const;

  /// CSV header matching `write_csv` rows.
  static void write_csv_header(std::ostream& out);
  /// Flat CSV rows: one `summary` row per port, then its `sample` rows.
  /// `label` fills the first column (scheduler name; may be empty).
  void write_csv(std::ostream& out, std::string_view label) const;
  /// One JSON object: window, per-port summaries and series.
  void write_json(std::ostream& out, std::string_view label) const;
};

/// Replays `schedule` (against `requests`) into per-port load profiles and
/// summarizes utilization over [window_start, window_end).
[[nodiscard]] UtilizationReport utilization_report(const Network& network,
                                                   std::span<const Request> requests,
                                                   const Schedule& schedule,
                                                   TimePoint window_start,
                                                   TimePoint window_end);

}  // namespace gridbw::obs
