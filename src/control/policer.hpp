// gridbw/control/policer.hpp
//
// Access-point flow policing (§5.4): each admitted flow is policed by a
// token bucket sized from its reservation; traffic beyond the reservation
// is dropped so that misbehaving senders cannot crowd out conforming ones.
// The simulation feeds each flow's offered traffic in fixed quanta and
// reports delivered/dropped volumes per flow plus the aggregate the port
// actually carried (which must stay within the port capacity whenever all
// reservations do).

#pragma once

#include <span>
#include <vector>

#include "control/token_bucket.hpp"
#include "core/ids.hpp"
#include "util/quantity.hpp"

namespace gridbw::control {

/// One sender sharing the policed access point.
struct PolicedFlow {
  RequestId id{0};
  /// The reserved (granted) rate — the policer enforces this.
  Bandwidth reserved;
  /// The rate the sender actually offers. conforming: offered == reserved;
  /// misbehaving: offered > reserved.
  Bandwidth offered;
};

struct FlowPolicingStats {
  RequestId id{0};
  Volume offered;
  Volume delivered;
  Volume dropped;

  [[nodiscard]] double delivery_ratio() const {
    return offered.is_positive() ? delivered / offered : 1.0;
  }
};

struct PolicingReport {
  std::vector<FlowPolicingStats> flows;
  /// Peak aggregate delivered rate observed over any quantum.
  Bandwidth peak_aggregate;

  [[nodiscard]] Volume total_delivered() const;
  [[nodiscard]] Volume total_dropped() const;
};

struct PolicerOptions {
  /// Simulation quantum (senders emit offered_rate * quantum each tick).
  Duration quantum{Duration::seconds(0.01)};
  /// Bucket depth as a multiple of reserved_rate * quantum (>= 1).
  double burst_quanta{4.0};
};

/// Polices `flows` for `duration` and reports per-flow and aggregate stats.
[[nodiscard]] PolicingReport police_flows(std::span<const PolicedFlow> flows,
                                          Duration duration,
                                          const PolicerOptions& options = {});

}  // namespace gridbw::control
