#include "control/token_bucket.hpp"

#include <stdexcept>

namespace gridbw::control {

TokenBucket::TokenBucket(Bandwidth rate, Volume burst)
    : rate_{rate}, burst_{burst}, tokens_{burst}, last_{TimePoint::origin()} {
  if (!rate.is_positive()) throw std::invalid_argument{"TokenBucket: rate must be positive"};
  if (!burst.is_positive()) throw std::invalid_argument{"TokenBucket: burst must be positive"};
}

void TokenBucket::refill(TimePoint now) {
  if (now < last_) throw std::invalid_argument{"TokenBucket: time went backwards"};
  tokens_ = min(burst_, tokens_ + rate_ * (now - last_));
  last_ = now;
}

bool TokenBucket::try_consume(TimePoint now, Volume bytes) {
  refill(now);
  // Byte-granularity tolerance: lazy refill accumulates floating-point
  // error, and a flow sending at exactly its reserved rate must conform.
  const double slack = 1e-9 * burst_.to_bytes() + 1e-3;
  if (bytes.to_bytes() <= tokens_.to_bytes() + slack) {
    tokens_ = max(Volume::zero(), tokens_ - bytes);
    return true;
  }
  return false;
}

Volume TokenBucket::consume_up_to(TimePoint now, Volume bytes) {
  refill(now);
  const Volume granted = min(bytes, tokens_);
  tokens_ -= granted;
  return granted;
}

Volume TokenBucket::tokens_at(TimePoint now) const {
  if (now < last_) throw std::invalid_argument{"TokenBucket: time went backwards"};
  return min(burst_, tokens_ + rate_ * (now - last_));
}

}  // namespace gridbw::control
