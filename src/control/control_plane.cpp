#include "control/control_plane.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "control/messages.hpp"
#include "core/ledger.hpp"
#include "sim/simulator.hpp"

namespace gridbw::control {
namespace {

/// Per-router stale view of every egress port's allocated bandwidth.
struct RouterView {
  std::vector<Bandwidth> egress_allocated;
};

}  // namespace

ControlPlaneReport run_control_plane(const OverlayTopology& topology,
                                     std::span<const Request> requests,
                                     const ControlPlaneOptions& options) {
  const Network network = topology.data_plane();
  const std::size_t sites = topology.site_count();
  for (const Request& r : requests) {
    if (r.ingress.value >= sites || r.egress.value >= sites) {
      throw std::invalid_argument{"run_control_plane: request endpoints outside topology"};
    }
  }

  ControlPlaneReport report;
  auto log_message = [&](const Message& m) {
    if (options.record_wire_log) report.wire_log.push_back(serialize(m));
  };
  CounterLedger truth{network};
  std::vector<RouterView> views(
      sites, RouterView{std::vector<Bandwidth>(sites, Bandwidth::zero())});

  sim::Simulator simulator;

  // Broadcasts a delta on an egress port's allocation to every other
  // router's view, arriving after the mesh latency.
  auto broadcast = [&](std::size_t from_site, EgressId egress, Bandwidth delta,
                       bool positive) {
    for (std::size_t m = 0; m < sites; ++m) {
      if (m == from_site) continue;
      ++report.control_messages;
      simulator.after(topology.site(from_site).mesh_latency, [&views, m, egress, delta,
                                                              positive] {
        Bandwidth& cell = views[m].egress_allocated[egress.value];
        if (positive) {
          cell += delta;
        } else {
          cell = max(Bandwidth::zero(), cell - delta);
        }
      });
    }
  };

  std::vector<Request> order{requests.begin(), requests.end()};
  sort_fcfs(order);

  for (const Request& r : order) {
    // Client -> ingress router: the decision event.
    const std::size_t router = r.ingress.value;
    const Duration uplink = topology.site(router).local_latency;
    simulator.at(r.release + uplink, [&, router, r] {
      const TimePoint now = simulator.now();
      log_message(Message{ResvMessage{r}});
      const auto bw = options.policy.assign(r, now);
      const Duration response = 2.0 * topology.site(router).local_latency;

      auto reject = [&](const char* reason) {
        report.result.rejected.push_back(r.id);
        report.response_time_s.add(response.to_seconds());
        log_message(Message{RejectMessage{r.id, reason}});
      };

      if (!bw.has_value()) {
        reject("deadline-infeasible");
        return;
      }
      // Local decision: exact own ingress counter, stale egress view.
      const bool ingress_ok = approx_le(truth.allocated_ingress(r.ingress) + *bw,
                                        network.ingress_capacity(r.ingress));
      Bandwidth egress_seen = views[router].egress_allocated[r.egress.value];
      if (r.egress.value == router) {
        egress_seen = truth.allocated_egress(r.egress);  // own port: exact
      }
      const bool egress_ok =
          approx_le(egress_seen + *bw, network.egress_capacity(r.egress));
      if (!ingress_ok || !egress_ok) {
        reject(ingress_ok ? "egress-full" : "ingress-full");
        return;
      }
      // Enforcement: the true egress may already be full due to staleness.
      if (!approx_le(truth.allocated_egress(r.egress) + *bw,
                     network.egress_capacity(r.egress))) {
        ++report.egress_conflicts;
        reject("egress-conflict");
        return;
      }

      truth.allocate(r.ingress, r.egress, *bw);
      if (r.egress.value != router) {
        views[router].egress_allocated[r.egress.value] += *bw;
      }
      broadcast(router, r.egress, *bw, /*positive=*/true);
      report.result.schedule.accept(r.id, now, *bw);
      report.response_time_s.add(response.to_seconds());
      log_message(Message{GrantMessage{r.id, now, *bw}});

      // Completion: reclaim and broadcast the release.
      const Duration transfer = r.volume / *bw;
      simulator.after(transfer, [&, router, r, bw] {
        log_message(Message{TearMessage{r.id, r.egress, *bw}});
        truth.reclaim(r.ingress, r.egress, *bw);
        if (r.egress.value != router) {
          Bandwidth& cell = views[router].egress_allocated[r.egress.value];
          cell = max(Bandwidth::zero(), cell - *bw);
        }
        broadcast(router, r.egress, *bw, /*positive=*/false);
      });
    });
  }

  simulator.run();
  return report;
}

}  // namespace gridbw::control
