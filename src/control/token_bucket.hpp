// gridbw/control/token_bucket.hpp
//
// The client-side rate enforcement mechanism of §5.4: a token bucket with
// rate r (the allocated bandwidth) and burst b. The policer at the access
// point uses it to verify that a bulk flow conforms to its reservation and
// drops the excess so misbehaving flows "do not hurt other well behaving
// TCP flows".

#pragma once

#include "util/quantity.hpp"

namespace gridbw::control {

class TokenBucket {
 public:
  /// `rate`: sustained token refill (bytes/s). `burst`: bucket depth
  /// (bytes); also the initial fill. Both must be positive.
  TokenBucket(Bandwidth rate, Volume burst);

  /// Attempts to consume `bytes` at time `now`. Refills lazily from the
  /// last update, caps at the burst size, then consumes atomically: either
  /// the whole amount conforms (true) or nothing is consumed (false).
  /// `now` must not go backwards.
  [[nodiscard]] bool try_consume(TimePoint now, Volume bytes);

  /// Consumes what fits and returns the conforming fraction of `bytes`
  /// (partial policing, used by the fluid policer).
  [[nodiscard]] Volume consume_up_to(TimePoint now, Volume bytes);

  [[nodiscard]] Volume tokens_at(TimePoint now) const;
  [[nodiscard]] Bandwidth rate() const { return rate_; }
  [[nodiscard]] Volume burst() const { return burst_; }

 private:
  void refill(TimePoint now);

  Bandwidth rate_;
  Volume burst_;
  Volume tokens_;
  TimePoint last_;
};

}  // namespace gridbw::control
