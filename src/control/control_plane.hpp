// gridbw/control/control_plane.hpp
//
// Message-level simulation of the paper's reservation control plane
// (§5.4): clients submit reservation requests to their site's overlay
// router; the *ingress router decides locally* (the paper's design choice,
// unlike hop-by-hop RSVP) using its own exact ingress counter plus a view
// of the other routers' egress counters maintained by broadcast updates
// over the full mesh. Views are stale by the mesh latency, so two routers
// can momentarily over-commit an egress port; the enforcement point (the
// true counters) NACKs the later arrival — those conflicts are counted.
//
// The grant returned to the client carries the allocated rate and start
// time; the client-measured response time is two local hops (the decision
// never leaves the ingress router).

#pragma once

#include <span>
#include <string>
#include <vector>

#include "control/topology.hpp"
#include "core/request.hpp"
#include "core/schedule.hpp"
#include "heuristics/bandwidth_policy.hpp"
#include "util/stats.hpp"

namespace gridbw::control {

struct ControlPlaneOptions {
  heuristics::BandwidthPolicy policy{heuristics::BandwidthPolicy::min_rate()};
  /// When set, every protocol message is serialized (control/messages
  /// wire format) into ControlPlaneReport::wire_log, in simulation order —
  /// a replayable trace of the reservation session.
  bool record_wire_log{false};
};

struct ControlPlaneReport {
  ScheduleResult result;
  /// Optimistic admissions NACKed at enforcement because a concurrent
  /// decision at another router had already filled the egress port.
  std::size_t egress_conflicts{0};
  /// Client-observed reservation response times (seconds).
  RunningStats response_time_s;
  /// Broadcast messages carried by the overlay mesh.
  std::size_t control_messages{0};
  /// Serialized protocol trace (only when options.record_wire_log).
  std::vector<std::string> wire_log;
};

/// Runs the reservation protocol for `requests` over `topology`. Request
/// ingress/egress ids index the topology's sites (one ingress and one
/// egress port per site, as produced by OverlayTopology::data_plane()).
[[nodiscard]] ControlPlaneReport run_control_plane(const OverlayTopology& topology,
                                                   std::span<const Request> requests,
                                                   const ControlPlaneOptions& options = {});

}  // namespace gridbw::control
