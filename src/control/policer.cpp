#include "control/policer.hpp"

#include <stdexcept>

namespace gridbw::control {

Volume PolicingReport::total_delivered() const {
  Volume total = Volume::zero();
  for (const FlowPolicingStats& f : flows) total += f.delivered;
  return total;
}

Volume PolicingReport::total_dropped() const {
  Volume total = Volume::zero();
  for (const FlowPolicingStats& f : flows) total += f.dropped;
  return total;
}

PolicingReport police_flows(std::span<const PolicedFlow> flows, Duration duration,
                            const PolicerOptions& options) {
  if (!options.quantum.is_positive()) {
    throw std::invalid_argument{"police_flows: quantum must be positive"};
  }
  if (options.burst_quanta < 1.0) {
    throw std::invalid_argument{"police_flows: burst must be >= 1 quantum"};
  }

  PolicingReport report;
  report.peak_aggregate = Bandwidth::zero();

  std::vector<TokenBucket> buckets;
  buckets.reserve(flows.size());
  for (const PolicedFlow& f : flows) {
    if (!f.reserved.is_positive() || !f.offered.is_positive()) {
      throw std::invalid_argument{"police_flows: rates must be positive"};
    }
    buckets.emplace_back(f.reserved, f.reserved * options.quantum * options.burst_quanta);
    report.flows.push_back(FlowPolicingStats{f.id, Volume::zero(), Volume::zero(),
                                             Volume::zero()});
  }

  const auto steps = static_cast<std::size_t>(duration / options.quantum);
  for (std::size_t s = 1; s <= steps; ++s) {
    const TimePoint now = TimePoint::origin() + options.quantum * static_cast<double>(s);
    Volume tick_delivered = Volume::zero();
    for (std::size_t f = 0; f < flows.size(); ++f) {
      const Volume offered = flows[f].offered * options.quantum;
      const Volume granted = buckets[f].consume_up_to(now, offered);
      report.flows[f].offered += offered;
      report.flows[f].delivered += granted;
      report.flows[f].dropped += offered - granted;
      tick_delivered += granted;
    }
    report.peak_aggregate =
        max(report.peak_aggregate, tick_delivered / options.quantum);
  }
  return report;
}

}  // namespace gridbw::control
