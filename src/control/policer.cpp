#include "control/policer.hpp"

#include <cmath>
#include <stdexcept>

namespace gridbw::control {

Volume PolicingReport::total_delivered() const {
  Volume total = Volume::zero();
  for (const FlowPolicingStats& f : flows) total += f.delivered;
  return total;
}

Volume PolicingReport::total_dropped() const {
  Volume total = Volume::zero();
  for (const FlowPolicingStats& f : flows) total += f.dropped;
  return total;
}

PolicingReport police_flows(std::span<const PolicedFlow> flows, Duration duration,
                            const PolicerOptions& options) {
  // Gates are written in negated >= form so NaN fails them: `x < 1.0` is
  // false for NaN and used to let non-finite options through.
  if (!options.quantum.is_positive() || !std::isfinite(options.quantum.to_seconds())) {
    throw std::invalid_argument{"police_flows: quantum must be positive and finite"};
  }
  if (!(options.burst_quanta >= 1.0) || !std::isfinite(options.burst_quanta)) {
    throw std::invalid_argument{"police_flows: burst must be >= 1 quantum and finite"};
  }
  if (!(duration.to_seconds() >= 0.0) || !std::isfinite(duration.to_seconds())) {
    throw std::invalid_argument{"police_flows: duration must be >= 0 and finite"};
  }

  PolicingReport report;
  report.peak_aggregate = Bandwidth::zero();

  std::vector<TokenBucket> buckets;
  buckets.reserve(flows.size());
  for (const PolicedFlow& f : flows) {
    if (!f.reserved.is_positive() || !f.offered.is_positive()) {
      throw std::invalid_argument{"police_flows: rates must be positive"};
    }
    buckets.emplace_back(f.reserved, f.reserved * options.quantum * options.burst_quanta);
    report.flows.push_back(FlowPolicingStats{f.id, Volume::zero(), Volume::zero(),
                                             Volume::zero()});
  }

  auto run_tick = [&](TimePoint now, Duration tick) {
    Volume tick_delivered = Volume::zero();
    for (std::size_t f = 0; f < flows.size(); ++f) {
      const Volume offered = flows[f].offered * tick;
      const Volume granted = buckets[f].consume_up_to(now, offered);
      report.flows[f].offered += offered;
      report.flows[f].delivered += granted;
      report.flows[f].dropped += offered - granted;
      tick_delivered += granted;
    }
    report.peak_aggregate = max(report.peak_aggregate, tick_delivered / tick);
  };

  const auto steps = static_cast<std::size_t>(duration / options.quantum);
  for (std::size_t s = 1; s <= steps; ++s) {
    run_tick(TimePoint::origin() + options.quantum * static_cast<double>(s),
             options.quantum);
  }
  // The horizon rarely divides evenly into quanta; the leftover is simulated
  // as one shortened final tick so the report covers the whole duration
  // (previously the tail — the entire run when duration < quantum — was
  // silently dropped). The relative guard skips only floating-point dust
  // from the division above, not a genuine sub-quantum remainder.
  const Duration remainder =
      duration - options.quantum * static_cast<double>(steps);
  if (remainder.to_seconds() > options.quantum.to_seconds() * 1e-9) {
    run_tick(TimePoint::origin() + duration, remainder);
  }
  return report;
}

}  // namespace gridbw::control
