#include "control/topology.hpp"

#include <stdexcept>

namespace gridbw::control {

OverlayTopology::OverlayTopology(std::vector<Site> sites) : sites_{std::move(sites)} {
  if (sites_.size() < 2) {
    throw std::invalid_argument{"OverlayTopology: need at least two sites"};
  }
  for (const Site& s : sites_) {
    if (!s.access_capacity.is_positive()) {
      throw std::invalid_argument{"OverlayTopology: non-positive access capacity"};
    }
    if (s.connections == 0) {
      throw std::invalid_argument{"OverlayTopology: site without connections"};
    }
  }
}

OverlayTopology OverlayTopology::grid5000_like(std::size_t site_count,
                                               std::size_t connections) {
  std::vector<Site> sites;
  sites.reserve(site_count);
  for (std::size_t m = 0; m < site_count; ++m) {
    Site s;
    s.name = "site-" + std::to_string(m);
    s.connections = connections;
    s.access_capacity = Bandwidth::gigabytes_per_second(1);
    s.local_latency = Duration::seconds(0.0005);
    s.mesh_latency = Duration::seconds(0.010);
    sites.push_back(std::move(s));
  }
  return OverlayTopology{std::move(sites)};
}

std::size_t OverlayTopology::mesh_link_count() const {
  return sites_.size() * (sites_.size() - 1);
}

std::size_t OverlayTopology::attachment_count() const {
  std::size_t total = 0;
  for (const Site& s : sites_) total += s.connections;
  return total;
}

Duration OverlayTopology::control_latency(std::size_t from, std::size_t to) const {
  const Site& origin = sites_.at(from);
  (void)sites_.at(to);  // bounds check
  if (from == to) return origin.local_latency;
  return origin.local_latency + origin.mesh_latency;
}

Network OverlayTopology::data_plane() const {
  std::vector<Bandwidth> ingress, egress;
  ingress.reserve(sites_.size());
  egress.reserve(sites_.size());
  for (const Site& s : sites_) {
    ingress.push_back(s.access_capacity);
    egress.push_back(s.access_capacity);
  }
  return Network{std::move(ingress), std::move(egress)};
}

}  // namespace gridbw::control
