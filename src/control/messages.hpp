// gridbw/control/messages.hpp
//
// The reservation protocol's message vocabulary (§5.4: "this bandwidth
// sharing approach can reutilize most of the RSVP protocol features (client
// side and RSVP request format)"). Four message kinds travel the overlay:
//
//   RESV   client -> ingress router   reservation request (the Request)
//   GRANT  ingress router -> client   assigned window + rate
//   REJECT ingress router -> client   admission denied
//   TEAR   ingress router -> mesh     reservation released (completion)
//
// Messages serialize to a compact single-line wire format so the control
// plane can be traced, replayed, and tested byte-for-byte:
//
//   RESV|id=42|in=3|out=7|ts=10.5|tf=110.5|vol=5e10|max=1e9
//   GRANT|id=42|start=12.0|bw=8e8
//   REJECT|id=42|reason=egress-full
//   TEAR|id=42|egress=7|bw=8e8

#pragma once

#include <optional>
#include <string>
#include <variant>

#include "core/request.hpp"

namespace gridbw::control {

struct ResvMessage {
  Request request;
  friend bool operator==(const ResvMessage&, const ResvMessage&);
};

struct GrantMessage {
  RequestId id{0};
  TimePoint start;
  Bandwidth bw;
  friend bool operator==(const GrantMessage&, const GrantMessage&) = default;
};

struct RejectMessage {
  RequestId id{0};
  std::string reason;
  friend bool operator==(const RejectMessage&, const RejectMessage&) = default;
};

struct TearMessage {
  RequestId id{0};
  EgressId egress{};
  Bandwidth bw;
  friend bool operator==(const TearMessage&, const TearMessage&) = default;
};

using Message = std::variant<ResvMessage, GrantMessage, RejectMessage, TearMessage>;

/// Serializes a message to its one-line wire form (no trailing newline).
[[nodiscard]] std::string serialize(const Message& message);

/// Parses a wire line. Returns nullopt on any malformed input (unknown
/// kind, missing/duplicate/unknown fields, non-numeric values).
[[nodiscard]] std::optional<Message> parse_message(const std::string& line);

}  // namespace gridbw::control
