#include "control/messages.hpp"

#include <array>
#include <cstdio>
#include <map>
#include <sstream>

namespace gridbw::control {
namespace {

std::string num(double value) {
  std::array<char, 48> buf{};
  std::snprintf(buf.data(), buf.size(), "%.9g", value);
  return std::string{buf.data()};
}

/// Splits "KIND|k=v|k=v" into the kind and a field map; nullopt on
/// malformed or duplicate fields.
std::optional<std::pair<std::string, std::map<std::string, std::string>>> split(
    const std::string& line) {
  std::stringstream ss{line};
  std::string kind;
  if (!std::getline(ss, kind, '|') || kind.empty()) return std::nullopt;
  std::map<std::string, std::string> fields;
  std::string part;
  while (std::getline(ss, part, '|')) {
    const auto eq = part.find('=');
    if (eq == std::string::npos || eq == 0) return std::nullopt;
    const std::string key = part.substr(0, eq);
    if (!fields.emplace(key, part.substr(eq + 1)).second) return std::nullopt;
  }
  return std::make_pair(kind, std::move(fields));
}

class FieldReader {
 public:
  explicit FieldReader(const std::map<std::string, std::string>& fields)
      : fields_{fields} {}

  std::optional<double> number(const std::string& key) {
    const auto it = fields_.find(key);
    if (it == fields_.end()) return std::nullopt;
    ++consumed_;
    try {
      std::size_t used = 0;
      const double value = std::stod(it->second, &used);
      if (used != it->second.size()) return std::nullopt;
      return value;
    } catch (const std::exception&) {
      return std::nullopt;
    }
  }

  std::optional<std::string> text(const std::string& key) {
    const auto it = fields_.find(key);
    if (it == fields_.end()) return std::nullopt;
    ++consumed_;
    return it->second;
  }

  /// True when every present field was consumed (no unknown fields).
  [[nodiscard]] bool exhausted() const { return consumed_ == fields_.size(); }

 private:
  const std::map<std::string, std::string>& fields_;
  std::size_t consumed_{0};
};

}  // namespace

bool operator==(const ResvMessage& a, const ResvMessage& b) {
  return a.request.id == b.request.id && a.request.ingress == b.request.ingress &&
         a.request.egress == b.request.egress && a.request.release == b.request.release &&
         a.request.deadline == b.request.deadline &&
         approx_eq(a.request.volume.to_bytes(), b.request.volume.to_bytes()) &&
         approx_eq(a.request.max_rate.to_bytes_per_second(),
                   b.request.max_rate.to_bytes_per_second());
}

std::string serialize(const Message& message) {
  return std::visit(
      [](const auto& m) -> std::string {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, ResvMessage>) {
          const Request& r = m.request;
          return "RESV|id=" + std::to_string(r.id) +
                 "|in=" + std::to_string(r.ingress.value) +
                 "|out=" + std::to_string(r.egress.value) +
                 "|ts=" + num(r.release.to_seconds()) +
                 "|tf=" + num(r.deadline.to_seconds()) +
                 "|vol=" + num(r.volume.to_bytes()) +
                 "|max=" + num(r.max_rate.to_bytes_per_second());
        } else if constexpr (std::is_same_v<T, GrantMessage>) {
          return "GRANT|id=" + std::to_string(m.id) +
                 "|start=" + num(m.start.to_seconds()) +
                 "|bw=" + num(m.bw.to_bytes_per_second());
        } else if constexpr (std::is_same_v<T, RejectMessage>) {
          return "REJECT|id=" + std::to_string(m.id) + "|reason=" + m.reason;
        } else {
          return "TEAR|id=" + std::to_string(m.id) +
                 "|egress=" + std::to_string(m.egress.value) +
                 "|bw=" + num(m.bw.to_bytes_per_second());
        }
      },
      message);
}

std::optional<Message> parse_message(const std::string& line) {
  const auto parts = split(line);
  if (!parts.has_value()) return std::nullopt;
  const auto& [kind, fields] = *parts;
  FieldReader read{fields};

  if (kind == "RESV") {
    const auto id = read.number("id");
    const auto in = read.number("in");
    const auto out = read.number("out");
    const auto ts = read.number("ts");
    const auto tf = read.number("tf");
    const auto vol = read.number("vol");
    const auto max = read.number("max");
    if (!id || !in || !out || !ts || !tf || !vol || !max || !read.exhausted()) {
      return std::nullopt;
    }
    Request r;
    r.id = static_cast<RequestId>(*id);
    r.ingress = IngressId{static_cast<std::size_t>(*in)};
    r.egress = EgressId{static_cast<std::size_t>(*out)};
    r.release = TimePoint::at_seconds(*ts);
    r.deadline = TimePoint::at_seconds(*tf);
    r.volume = Volume::bytes(*vol);
    r.max_rate = Bandwidth::bytes_per_second(*max);
    if (!r.is_well_formed()) return std::nullopt;
    return Message{ResvMessage{r}};
  }
  if (kind == "GRANT") {
    const auto id = read.number("id");
    const auto start = read.number("start");
    const auto bw = read.number("bw");
    if (!id || !start || !bw || !read.exhausted()) return std::nullopt;
    return Message{GrantMessage{static_cast<RequestId>(*id),
                                TimePoint::at_seconds(*start),
                                Bandwidth::bytes_per_second(*bw)}};
  }
  if (kind == "REJECT") {
    const auto id = read.number("id");
    const auto reason = read.text("reason");
    if (!id || !reason || !read.exhausted()) return std::nullopt;
    return Message{RejectMessage{static_cast<RequestId>(*id), *reason}};
  }
  if (kind == "TEAR") {
    const auto id = read.number("id");
    const auto egress = read.number("egress");
    const auto bw = read.number("bw");
    if (!id || !egress || !bw || !read.exhausted()) return std::nullopt;
    return Message{TearMessage{static_cast<RequestId>(*id),
                               EgressId{static_cast<std::size_t>(*egress)},
                               Bandwidth::bytes_per_second(*bw)}};
  }
  return std::nullopt;
}

}  // namespace gridbw::control
