// gridbw/control/topology.hpp
//
// The grid overlay of the paper's Figure 1: M grid sites, each behind one
// overlay (edge) router with N host connections, fully meshed over a
// well-provisioned core. The overlay carries the *control* traffic
// (reservation requests); the data plane is abstracted by the core Network
// (one ingress + one egress port per router).

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/network.hpp"
#include "util/quantity.hpp"

namespace gridbw::control {

struct Site {
  std::string name;
  /// Host connections behind this site's router (N in the paper's model).
  std::size_t connections{0};
  /// Access-point capacity, both directions (ingress = egress in the
  /// symmetric overlay; the data model keeps them distinct).
  Bandwidth access_capacity;
  /// One-way control-message latency between a host at this site and its
  /// router, and between this router and any other router (full mesh).
  Duration local_latency{Duration::seconds(0.001)};
  Duration mesh_latency{Duration::seconds(0.01)};
};

class OverlayTopology {
 public:
  explicit OverlayTopology(std::vector<Site> sites);

  /// A Grid'5000-flavoured preset: `site_count` sites (the project federates
  /// eight sites across France), each with `connections` hosts and 1 GB/s
  /// access links; 10 ms inter-site control latency.
  [[nodiscard]] static OverlayTopology grid5000_like(std::size_t site_count = 8,
                                                     std::size_t connections = 64);

  [[nodiscard]] std::size_t site_count() const { return sites_.size(); }
  [[nodiscard]] const Site& site(std::size_t index) const { return sites_.at(index); }

  /// Total overlay links in the full mesh: M * (M - 1) directed pairs.
  [[nodiscard]] std::size_t mesh_link_count() const;

  /// Host attachment links: sum of per-site connections (the O(MN) term of
  /// the paper's §2).
  [[nodiscard]] std::size_t attachment_count() const;

  /// One-way control latency from a host at `from` to the router of `to`
  /// (local hop + mesh hop when the sites differ).
  [[nodiscard]] Duration control_latency(std::size_t from, std::size_t to) const;

  /// The data-plane Network: ingress port i / egress port i = site i's
  /// access point.
  [[nodiscard]] Network data_plane() const;

 private:
  std::vector<Site> sites_;
};

}  // namespace gridbw::control
