// gridbw/util/histogram.hpp
//
// Fixed-bin histogram for experiment reports (stretch, waiting-time, and
// rate distributions in the examples and benches). Values outside the
// configured range land in underflow/overflow counters so nothing is
// silently dropped.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace gridbw {

class Histogram {
 public:
  /// `bins` uniform bins over [lo, hi). Requires lo < hi and bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);

  [[nodiscard]] std::size_t total_count() const { return total_; }
  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t count_in_bin(std::size_t bin) const;
  [[nodiscard]] std::size_t underflow() const { return underflow_; }
  [[nodiscard]] std::size_t overflow() const { return overflow_; }

  /// [lo, hi) of a bin.
  [[nodiscard]] std::pair<double, double> bin_range(std::size_t bin) const;

  /// Fraction of all values (including under/overflow) at or below the
  /// upper edge of `bin`.
  [[nodiscard]] double cumulative_fraction(std::size_t bin) const;

  /// ASCII rendering: one line per bin, bar scaled to `width` characters.
  [[nodiscard]] std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_{0};
  std::size_t overflow_{0};
  std::size_t total_{0};
};

}  // namespace gridbw
