#include "util/histogram.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace gridbw {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_{lo}, hi_{hi}, counts_(bins, 0) {
  if (!(lo < hi)) throw std::invalid_argument{"Histogram: lo must be < hi"};
  if (bins == 0) throw std::invalid_argument{"Histogram: need at least one bin"};
}

void Histogram::add(double value) {
  ++total_;
  if (value < lo_) {
    ++underflow_;
    return;
  }
  if (value >= hi_) {
    ++overflow_;
    return;
  }
  const double position = (value - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size());
  const auto bin = std::min(static_cast<std::size_t>(position), counts_.size() - 1);
  ++counts_[bin];
}

std::size_t Histogram::count_in_bin(std::size_t bin) const { return counts_.at(bin); }

std::pair<double, double> Histogram::bin_range(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range{"Histogram::bin_range"};
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return {lo_ + width * static_cast<double>(bin),
          lo_ + width * static_cast<double>(bin + 1)};
}

double Histogram::cumulative_fraction(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range{"Histogram::cumulative_fraction"};
  if (total_ == 0) return 0.0;
  std::size_t below = underflow_;
  for (std::size_t b = 0; b <= bin; ++b) below += counts_[b];
  return static_cast<double>(below) / static_cast<double>(total_);
}

std::string Histogram::render(std::size_t width) const {
  const std::size_t peak = std::max<std::size_t>(
      1, *std::max_element(counts_.begin(), counts_.end()));
  std::ostringstream oss;
  std::array<char, 64> label{};
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto [bin_lo, bin_hi] = bin_range(b);
    std::snprintf(label.data(), label.size(), "[%8.2f, %8.2f) %6zu ", bin_lo, bin_hi,
                  counts_[b]);
    oss << label.data()
        << std::string(counts_[b] * width / peak, '#') << '\n';
  }
  if (underflow_ > 0) oss << "underflow: " << underflow_ << '\n';
  if (overflow_ > 0) oss << "overflow: " << overflow_ << '\n';
  return oss.str();
}

}  // namespace gridbw
