// gridbw/util/config.hpp
//
// Minimal INI-style configuration files for the CLI simulator and custom
// experiment definitions:
//
//   # comment
//   [workload]
//   interarrival = 2.5        ; inline comments too
//   horizon = 1200
//
//   [scheduler]
//   spec = window:step=400,f=0.8
//
// Keys are looked up as "section.key". Parsing is strict: malformed lines,
// duplicate keys, and values requested with the wrong type all throw.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace gridbw {

class Config {
 public:
  /// Parses INI text. Throws std::runtime_error naming the offending line.
  [[nodiscard]] static Config parse(std::istream& is);
  [[nodiscard]] static Config parse_string(const std::string& text);
  [[nodiscard]] static Config parse_file(const std::string& path);

  [[nodiscard]] bool has(const std::string& dotted_key) const;

  /// Raw string value; nullopt if absent.
  [[nodiscard]] std::optional<std::string> get(const std::string& dotted_key) const;

  [[nodiscard]] std::string get_string(const std::string& dotted_key,
                                       const std::string& fallback) const;
  /// Throws std::runtime_error if present but not numeric.
  [[nodiscard]] double get_double(const std::string& dotted_key, double fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& dotted_key,
                                     std::int64_t fallback) const;
  [[nodiscard]] bool get_bool(const std::string& dotted_key, bool fallback) const;

  /// All keys, in file order (for diagnostics / round-trip tests).
  [[nodiscard]] std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> order_;
};

}  // namespace gridbw
