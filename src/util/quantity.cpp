#include "util/quantity.hpp"

#include <array>
#include <cstdio>

namespace gridbw {
namespace {

std::string format(double value, const char* unit) {
  std::array<char, 64> buf{};
  if (value == 0.0) {
    std::snprintf(buf.data(), buf.size(), "0 %s", unit);
  } else if (value >= 100.0) {
    std::snprintf(buf.data(), buf.size(), "%.0f %s", value, unit);
  } else if (value >= 10.0) {
    std::snprintf(buf.data(), buf.size(), "%.1f %s", value, unit);
  } else {
    std::snprintf(buf.data(), buf.size(), "%.2f %s", value, unit);
  }
  return std::string{buf.data()};
}

}  // namespace

std::string to_string(Bandwidth b) {
  const double bps = b.to_bytes_per_second();
  if (!std::isfinite(bps)) return "inf B/s";
  if (bps >= 1e9) return format(bps / 1e9, "GB/s");
  if (bps >= 1e6) return format(bps / 1e6, "MB/s");
  if (bps >= 1e3) return format(bps / 1e3, "kB/s");
  return format(bps, "B/s");
}

std::string to_string(Volume v) {
  const double bytes = v.to_bytes();
  if (bytes >= 1e12) return format(bytes / 1e12, "TB");
  if (bytes >= 1e9) return format(bytes / 1e9, "GB");
  if (bytes >= 1e6) return format(bytes / 1e6, "MB");
  if (bytes >= 1e3) return format(bytes / 1e3, "kB");
  return format(bytes, "B");
}

std::string to_string(Duration d) {
  const double s = d.to_seconds();
  if (!std::isfinite(s)) return "inf";
  if (s >= 86400.0) return format(s / 86400.0, "d");
  if (s >= 3600.0) return format(s / 3600.0, "h");
  if (s >= 60.0) return format(s / 60.0, "min");
  return format(s, "s");
}

std::string to_string(TimePoint t) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "t=%.3fs", t.to_seconds());
  return std::string{buf.data()};
}

}  // namespace gridbw
