#include "util/table.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <ostream>
#include <span>
#include <sstream>
#include <stdexcept>

namespace gridbw {

std::string format_double(double value, int precision) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.*f", precision, value);
  return std::string{buf.data()};
}

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

Table::Table(std::vector<std::string> header) : header_{std::move(header)} {
  if (header_.empty()) throw std::invalid_argument{"Table: empty header"};
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument{"Table::add_row: cell count mismatch"};
  }
  rows_.push_back(std::move(cells));
}

void Table::add_row_numeric(std::span<const double> values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(format_double(v, precision));
  add_row(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  auto emit_rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << (c == 0 ? "+-" : "-+-") << std::string(widths[c], '-');
    }
    os << "-+\n";
  };
  emit_rule();
  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
}

std::string Table::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

std::string Table::to_csv() const {
  std::ostringstream oss;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) oss << ',';
      oss << csv_escape(row[c]);
    }
    oss << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return oss.str();
}

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : out_{path}, columns_{header.size()} {
  if (!out_) throw std::runtime_error{"CsvWriter: cannot open " + path};
  if (header.empty()) throw std::invalid_argument{"CsvWriter: empty header"};
  for (std::size_t c = 0; c < header.size(); ++c) {
    if (c) out_ << ',';
    out_ << csv_escape(header[c]);
  }
  out_ << '\n';
}

void CsvWriter::add_row(std::span<const std::string> cells) {
  if (cells.size() != columns_) {
    throw std::invalid_argument{"CsvWriter::add_row: cell count mismatch"};
  }
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (c) out_ << ',';
    out_ << csv_escape(cells[c]);
  }
  out_ << '\n';
}

void CsvWriter::add_row_numeric(std::span<const double> values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(format_double(v, precision));
  add_row(cells);
}

void CsvWriter::close() {
  if (out_.is_open()) {
    out_.flush();
    out_.close();
  }
}

}  // namespace gridbw
