#include "util/thread_pool.hpp"

#include <algorithm>

namespace gridbw {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  thread_count_ = threads;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  std::vector<std::thread> to_join;
  {
    std::lock_guard lock{mutex_};
    stopping_ = true;
    to_join.swap(workers_);  // exactly one caller wins the join
  }
  cv_.notify_all();
  for (auto& worker : to_join) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock{mutex_};
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void parallel_for_index(ThreadPool& pool, std::size_t count,
                        const std::function<void(std::size_t)>& body) {
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(pool.submit([&body, i] { body(i); }));
  }
  // Futures are collected in index order, so the first exception seen here
  // is the lowest failing index's — independent of thread scheduling. Every
  // future is drained before rethrowing so no iteration outlives the call.
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void serial_for_index(std::size_t count, const std::function<void(std::size_t)>& body) {
  for (std::size_t i = 0; i < count; ++i) body(i);
}

}  // namespace gridbw
