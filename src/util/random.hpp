// gridbw/util/random.hpp
//
// Deterministic pseudo-random generation for the simulation stack.
//
// All experiment randomness flows from a single 64-bit seed through
// SplitMix64 (for seeding / stream derivation) and xoshiro256** (the bulk
// generator). Replication k of an experiment derives its own independent
// stream as `derive_stream(seed, k)`, so parallel and serial execution of a
// Monte-Carlo sweep produce bit-identical results.

#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "util/quantity.hpp"

namespace gridbw {

/// SplitMix64: a tiny, high-quality 64-bit mixer. Used to expand one seed
/// into generator state and to derive per-replication streams.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_{seed} {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, well-tested 64-bit PRNG (Blackman & Vigna).
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed);

  [[nodiscard]] static constexpr result_type min() { return 0; }
  [[nodiscard]] static constexpr result_type max() { return ~0ULL; }

  result_type operator()();

  /// Advance the generator 2^128 steps; yields a disjoint sub-sequence.
  void jump();

 private:
  std::array<std::uint64_t, 4> s_{};
};

/// Derives an independent seed for replication / stream `index` of a parent
/// seed. Distinct indexes give statistically independent generators.
[[nodiscard]] std::uint64_t derive_stream(std::uint64_t seed, std::uint64_t index);

/// Convenience sampling facade over Xoshiro256. Each Rng owns its generator;
/// copying is forbidden (accidental stream duplication), moving is fine.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : gen_{seed} {}

  Rng(const Rng&) = delete;
  Rng& operator=(const Rng&) = delete;
  Rng(Rng&&) = default;
  Rng& operator=(Rng&&) = default;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  [[nodiscard]] double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential with the given mean (> 0); inter-arrival times of a
  /// Poisson process of rate 1/mean.
  [[nodiscard]] double exponential(double mean);

  /// Bernoulli trial with success probability p in [0, 1].
  [[nodiscard]] bool bernoulli(double p);

  /// Picks one element of a non-empty span, uniformly.
  template <typename T>
  [[nodiscard]] const T& pick(std::span<const T> items) {
    if (items.empty()) throw std::invalid_argument{"Rng::pick: empty span"};
    return items[static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(items.size()) - 1))];
  }

  /// Picks an index in [0, weights.size()) with probability proportional to
  /// weights[i]. Requires at least one strictly positive weight.
  [[nodiscard]] std::size_t pick_weighted(std::span<const double> weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Raw access for std distributions if ever needed.
  [[nodiscard]] Xoshiro256& generator() { return gen_; }

  // -- Quantity-typed helpers -------------------------------------------

  [[nodiscard]] Duration exponential_duration(Duration mean) {
    return Duration::seconds(exponential(mean.to_seconds()));
  }
  [[nodiscard]] Bandwidth uniform_bandwidth(Bandwidth lo, Bandwidth hi) {
    return Bandwidth::bytes_per_second(
        uniform(lo.to_bytes_per_second(), hi.to_bytes_per_second()));
  }
  [[nodiscard]] Duration uniform_duration(Duration lo, Duration hi) {
    return Duration::seconds(uniform(lo.to_seconds(), hi.to_seconds()));
  }

 private:
  Xoshiro256 gen_;
};

}  // namespace gridbw
