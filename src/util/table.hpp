// gridbw/util/table.hpp
//
// Console table and CSV emission for benchmark / experiment output. The
// bench binaries print the same rows the paper's figures plot; Table renders
// them aligned for the terminal and CsvWriter persists them for plotting.

#pragma once

#include <cstddef>
#include <fstream>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace gridbw {

/// A simple fixed-column text table. Add a header then rows; `print`
/// computes column widths and writes an aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  void add_row_numeric(std::span<const double> values, int precision = 4);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] std::size_t column_count() const { return header_.size(); }

  [[nodiscard]] const std::vector<std::string>& header() const { return header_; }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const {
    return rows_;
  }

  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

  /// Renders the table as CSV (header + rows, RFC-4180 quoting).
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Streams rows to a CSV file as they are produced (benches tee results to
/// disk so figures can be replotted without re-running).
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header. Throws on I/O failure.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  void add_row(std::span<const std::string> cells);
  void add_row_numeric(std::span<const double> values, int precision = 6);

  /// Flushes and closes; called by the destructor as well.
  void close();

 private:
  std::ofstream out_;
  std::size_t columns_;
};

/// Quotes a cell per RFC 4180 when needed.
[[nodiscard]] std::string csv_escape(const std::string& cell);

/// Fixed-precision double formatting ("0.5321").
[[nodiscard]] std::string format_double(double value, int precision = 4);

}  // namespace gridbw
