#include "util/config.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace gridbw {
namespace {

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

/// Strips a trailing comment that starts with '#' or ';' (no quoting
/// support — config values in this project never contain those characters).
std::string strip_comment(const std::string& s) {
  const auto pos = s.find_first_of("#;");
  return pos == std::string::npos ? s : s.substr(0, pos);
}

[[noreturn]] void fail(std::size_t line_no, const std::string& why) {
  throw std::runtime_error{"Config: line " + std::to_string(line_no) + ": " + why};
}

}  // namespace

Config Config::parse(std::istream& is) {
  Config config;
  std::string section;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string text = trim(strip_comment(line));
    if (text.empty()) continue;
    if (text.front() == '[') {
      if (text.back() != ']' || text.size() < 3) fail(line_no, "malformed section");
      section = trim(text.substr(1, text.size() - 2));
      if (section.empty()) fail(line_no, "empty section name");
      continue;
    }
    const auto eq = text.find('=');
    if (eq == std::string::npos) fail(line_no, "expected key = value");
    const std::string key = trim(text.substr(0, eq));
    const std::string value = trim(text.substr(eq + 1));
    if (key.empty()) fail(line_no, "empty key");
    const std::string dotted = section.empty() ? key : section + "." + key;
    if (!config.values_.emplace(dotted, value).second) {
      fail(line_no, "duplicate key '" + dotted + "'");
    }
    config.order_.push_back(dotted);
  }
  return config;
}

Config Config::parse_string(const std::string& text) {
  std::stringstream ss{text};
  return parse(ss);
}

Config Config::parse_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error{"Config: cannot open " + path};
  return parse(in);
}

bool Config::has(const std::string& dotted_key) const {
  return values_.count(dotted_key) > 0;
}

std::optional<std::string> Config::get(const std::string& dotted_key) const {
  const auto it = values_.find(dotted_key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& dotted_key,
                               const std::string& fallback) const {
  return get(dotted_key).value_or(fallback);
}

double Config::get_double(const std::string& dotted_key, double fallback) const {
  const auto value = get(dotted_key);
  if (!value.has_value()) return fallback;
  try {
    std::size_t used = 0;
    const double out = std::stod(*value, &used);
    if (used != value->size()) throw std::invalid_argument{"trailing junk"};
    return out;
  } catch (const std::exception&) {
    throw std::runtime_error{"Config: '" + dotted_key + "' is not a number: " + *value};
  }
}

std::int64_t Config::get_int(const std::string& dotted_key,
                             std::int64_t fallback) const {
  const auto value = get(dotted_key);
  if (!value.has_value()) return fallback;
  try {
    std::size_t used = 0;
    const std::int64_t out = std::stoll(*value, &used);
    if (used != value->size()) throw std::invalid_argument{"trailing junk"};
    return out;
  } catch (const std::exception&) {
    throw std::runtime_error{"Config: '" + dotted_key + "' is not an integer: " + *value};
  }
}

bool Config::get_bool(const std::string& dotted_key, bool fallback) const {
  const auto value = get(dotted_key);
  if (!value.has_value()) return fallback;
  std::string lowered = *value;
  std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lowered == "true" || lowered == "1" || lowered == "yes" || lowered == "on") {
    return true;
  }
  if (lowered == "false" || lowered == "0" || lowered == "no" || lowered == "off") {
    return false;
  }
  throw std::runtime_error{"Config: '" + dotted_key + "' is not a boolean: " + *value};
}

std::vector<std::string> Config::keys() const { return order_; }

}  // namespace gridbw
