#include "util/flags.hpp"

#include <sstream>
#include <stdexcept>

namespace gridbw {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg.substr(2)] = "true";
    } else {
      values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
}

bool Flags::has(const std::string& key) const { return values_.count(key) > 0; }

std::string Flags::get_string(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::get_int(const std::string& key, std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::stoll(it->second);
}

double Flags::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::stod(it->second);
}

bool Flags::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<double> Flags::get_double_list(const std::string& key,
                                           std::vector<double> fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::vector<double> out;
  std::stringstream ss{it->second};
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::stod(item));
  }
  if (out.empty()) throw std::invalid_argument{"Flags: empty list for --" + key};
  return out;
}

}  // namespace gridbw
