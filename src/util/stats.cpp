#include "util/stats.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace gridbw {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::mean() const { return mean_; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }
double RunningStats::min() const { return min_; }
double RunningStats::max() const { return max_; }

double RunningStats::stderr_mean() const {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

namespace {

/// Two-sided standard-normal quantile for common confidence levels; falls
/// back to a rational approximation (Acklam) for other levels.
double z_for_level(double level) {
  if (level <= 0.0 || level >= 1.0) {
    throw std::invalid_argument{"confidence level must be in (0,1)"};
  }
  const double p = 0.5 + level / 2.0;  // upper-tail point
  // Acklam's inverse-normal approximation (max rel. error ~1.15e-9).
  static constexpr std::array<double, 6> a{-3.969683028665376e+01, 2.209460984245205e+02,
                                           -2.759285104469687e+02, 1.383577518672690e+02,
                                           -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr std::array<double, 5> b{-5.447609879822406e+01, 1.615858368580409e+02,
                                           -1.556989798598866e+02, 6.680131188771972e+01,
                                           -1.328068155288572e+01};
  static constexpr std::array<double, 6> c{-7.784894002430293e-03, -3.223964580411365e-01,
                                           -2.400758277161838e+00, -2.549732539343734e+00,
                                           4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr std::array<double, 4> d{7.784695709041462e-03, 3.224671290700398e-01,
                                           2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double plow = 0.02425;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - plow) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

}  // namespace

ConfidenceInterval confidence_interval(const RunningStats& stats, double level) {
  const double z = z_for_level(level);
  const double half = z * stats.stderr_mean();
  return ConfidenceInterval{stats.mean() - half, stats.mean() + half};
}

double percentile(std::span<const double> samples, double q) {
  if (samples.empty()) throw std::invalid_argument{"percentile: empty samples"};
  if (q < 0.0 || q > 1.0) throw std::invalid_argument{"percentile: q outside [0,1]"};
  std::vector<double> sorted{samples.begin(), samples.end()};
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::span<const double> samples) {
  Summary s;
  if (samples.empty()) return s;
  RunningStats rs;
  for (double x : samples) rs.add(x);
  s.count = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  s.p50 = percentile(samples, 0.50);
  s.p95 = percentile(samples, 0.95);
  return s;
}

std::string format_mean_ci(const RunningStats& stats, double level) {
  const auto ci = confidence_interval(stats, level);
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.4f ± %.4f", stats.mean(), ci.half_width());
  return std::string{buf.data()};
}

}  // namespace gridbw
