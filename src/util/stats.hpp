// gridbw/util/stats.hpp
//
// Streaming and batch statistics used by the experiment harness to aggregate
// Monte-Carlo replications: Welford running moments, normal-approximation
// confidence intervals, and percentile extraction.

#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace gridbw {

/// Numerically stable running mean / variance (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  /// Merges another accumulator (parallel reduction), Chan et al. update.
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  /// Unbiased sample variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Standard error of the mean; 0 for fewer than two samples.
  [[nodiscard]] double stderr_mean() const;

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
};

/// Symmetric confidence interval around a mean.
struct ConfidenceInterval {
  double lo{0.0};
  double hi{0.0};
  [[nodiscard]] double half_width() const { return (hi - lo) / 2.0; }
  [[nodiscard]] bool contains(double x) const { return lo <= x && x <= hi; }
};

/// Normal-approximation CI at the given confidence level (default 95%).
/// For fewer than two samples, returns a degenerate interval at the mean.
[[nodiscard]] ConfidenceInterval confidence_interval(const RunningStats& stats,
                                                     double level = 0.95);

/// Quantile of a sample set by linear interpolation (q in [0, 1]).
/// The input span is copied; throws on empty input.
[[nodiscard]] double percentile(std::span<const double> samples, double q);

/// Batch summary of a sample vector.
struct Summary {
  std::size_t count{0};
  double mean{0.0};
  double stddev{0.0};
  double min{0.0};
  double p50{0.0};
  double p95{0.0};
  double max{0.0};
};

[[nodiscard]] Summary summarize(std::span<const double> samples);

/// "0.532 ± 0.011" rendering for tables.
[[nodiscard]] std::string format_mean_ci(const RunningStats& stats, double level = 0.95);

}  // namespace gridbw
