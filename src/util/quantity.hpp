// gridbw/util/quantity.hpp
//
// Strongly-typed physical quantities used throughout the library:
//
//   Duration   -- a span of simulated time, stored in seconds
//   TimePoint  -- an instant of simulated time (seconds from the origin)
//   Volume     -- an amount of data, stored in bytes
//   Bandwidth  -- a data rate, stored in bytes per second
//
// The types support exactly the dimensional arithmetic the bandwidth-sharing
// model needs (Volume / Duration = Bandwidth, Bandwidth * Duration = Volume,
// Volume / Bandwidth = Duration, ...) so that unit mistakes become compile
// errors instead of silently wrong simulations.
//
// All quantities are trivially copyable wrappers around a double; they are
// free abstractions.

#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace gridbw {

class Duration;
class TimePoint;
class Volume;
class Bandwidth;

/// A span of simulated time. Negative durations are representable (they
/// arise transiently in arithmetic) but most APIs require non-negative spans.
class Duration {
 public:
  constexpr Duration() = default;

  [[nodiscard]] static constexpr Duration seconds(double s) { return Duration{s}; }
  [[nodiscard]] static constexpr Duration minutes(double m) { return Duration{m * 60.0}; }
  [[nodiscard]] static constexpr Duration hours(double h) { return Duration{h * 3600.0}; }
  [[nodiscard]] static constexpr Duration days(double d) { return Duration{d * 86400.0}; }
  [[nodiscard]] static constexpr Duration zero() { return Duration{0.0}; }
  [[nodiscard]] static constexpr Duration infinity() {
    return Duration{std::numeric_limits<double>::infinity()};
  }

  [[nodiscard]] constexpr double to_seconds() const { return secs_; }
  [[nodiscard]] constexpr double to_minutes() const { return secs_ / 60.0; }
  [[nodiscard]] constexpr double to_hours() const { return secs_ / 3600.0; }

  [[nodiscard]] constexpr bool is_finite() const { return std::isfinite(secs_); }
  [[nodiscard]] constexpr bool is_positive() const { return secs_ > 0.0; }
  [[nodiscard]] constexpr bool is_negative() const { return secs_ < 0.0; }

  constexpr Duration& operator+=(Duration other) { secs_ += other.secs_; return *this; }
  constexpr Duration& operator-=(Duration other) { secs_ -= other.secs_; return *this; }
  constexpr Duration& operator*=(double k) { secs_ *= k; return *this; }
  constexpr Duration& operator/=(double k) { secs_ /= k; return *this; }

  friend constexpr Duration operator+(Duration a, Duration b) { return Duration{a.secs_ + b.secs_}; }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration{a.secs_ - b.secs_}; }
  friend constexpr Duration operator-(Duration a) { return Duration{-a.secs_}; }
  friend constexpr Duration operator*(Duration a, double k) { return Duration{a.secs_ * k}; }
  friend constexpr Duration operator*(double k, Duration a) { return Duration{k * a.secs_}; }
  friend constexpr Duration operator/(Duration a, double k) { return Duration{a.secs_ / k}; }
  /// Ratio of two durations is a dimensionless scalar.
  friend constexpr double operator/(Duration a, Duration b) { return a.secs_ / b.secs_; }

  friend constexpr auto operator<=>(Duration a, Duration b) = default;

 private:
  explicit constexpr Duration(double s) : secs_{s} {}
  double secs_{0.0};
};

/// An instant of simulated time, measured from an arbitrary origin (t = 0,
/// the beginning of the experiment).
class TimePoint {
 public:
  constexpr TimePoint() = default;

  [[nodiscard]] static constexpr TimePoint at_seconds(double s) { return TimePoint{s}; }
  [[nodiscard]] static constexpr TimePoint origin() { return TimePoint{0.0}; }
  [[nodiscard]] static constexpr TimePoint infinity() {
    return TimePoint{std::numeric_limits<double>::infinity()};
  }

  [[nodiscard]] constexpr double to_seconds() const { return secs_; }
  [[nodiscard]] constexpr bool is_finite() const { return std::isfinite(secs_); }

  constexpr TimePoint& operator+=(Duration d) { secs_ += d.to_seconds(); return *this; }
  constexpr TimePoint& operator-=(Duration d) { secs_ -= d.to_seconds(); return *this; }

  friend constexpr TimePoint operator+(TimePoint t, Duration d) {
    return TimePoint{t.secs_ + d.to_seconds()};
  }
  friend constexpr TimePoint operator+(Duration d, TimePoint t) { return t + d; }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) {
    return TimePoint{t.secs_ - d.to_seconds()};
  }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration::seconds(a.secs_ - b.secs_);
  }

  friend constexpr auto operator<=>(TimePoint a, TimePoint b) = default;

 private:
  explicit constexpr TimePoint(double s) : secs_{s} {}
  double secs_{0.0};
};

/// An amount of data. Stored in bytes; factories use decimal (SI) multiples,
/// matching the paper's GB/TB request volumes.
class Volume {
 public:
  constexpr Volume() = default;

  [[nodiscard]] static constexpr Volume bytes(double b) { return Volume{b}; }
  [[nodiscard]] static constexpr Volume kilobytes(double kb) { return Volume{kb * 1e3}; }
  [[nodiscard]] static constexpr Volume megabytes(double mb) { return Volume{mb * 1e6}; }
  [[nodiscard]] static constexpr Volume gigabytes(double gb) { return Volume{gb * 1e9}; }
  [[nodiscard]] static constexpr Volume terabytes(double tb) { return Volume{tb * 1e12}; }
  [[nodiscard]] static constexpr Volume zero() { return Volume{0.0}; }

  [[nodiscard]] constexpr double to_bytes() const { return bytes_; }
  [[nodiscard]] constexpr double to_gigabytes() const { return bytes_ / 1e9; }
  [[nodiscard]] constexpr double to_terabytes() const { return bytes_ / 1e12; }
  [[nodiscard]] constexpr bool is_positive() const { return bytes_ > 0.0; }

  constexpr Volume& operator+=(Volume other) { bytes_ += other.bytes_; return *this; }
  constexpr Volume& operator-=(Volume other) { bytes_ -= other.bytes_; return *this; }

  friend constexpr Volume operator+(Volume a, Volume b) { return Volume{a.bytes_ + b.bytes_}; }
  friend constexpr Volume operator-(Volume a, Volume b) { return Volume{a.bytes_ - b.bytes_}; }
  friend constexpr Volume operator*(Volume a, double k) { return Volume{a.bytes_ * k}; }
  friend constexpr Volume operator*(double k, Volume a) { return Volume{k * a.bytes_}; }
  friend constexpr Volume operator/(Volume a, double k) { return Volume{a.bytes_ / k}; }
  friend constexpr double operator/(Volume a, Volume b) { return a.bytes_ / b.bytes_; }

  friend constexpr auto operator<=>(Volume a, Volume b) = default;

 private:
  explicit constexpr Volume(double b) : bytes_{b} {}
  double bytes_{0.0};
};

/// A data rate. Stored in bytes per second; factories use decimal multiples
/// (the paper's ports are 1 GB/s, host limits 10 MB/s .. 1 GB/s).
class Bandwidth {
 public:
  constexpr Bandwidth() = default;

  [[nodiscard]] static constexpr Bandwidth bytes_per_second(double b) { return Bandwidth{b}; }
  [[nodiscard]] static constexpr Bandwidth kilobytes_per_second(double kb) { return Bandwidth{kb * 1e3}; }
  [[nodiscard]] static constexpr Bandwidth megabytes_per_second(double mb) { return Bandwidth{mb * 1e6}; }
  [[nodiscard]] static constexpr Bandwidth gigabytes_per_second(double gb) { return Bandwidth{gb * 1e9}; }
  [[nodiscard]] static constexpr Bandwidth zero() { return Bandwidth{0.0}; }
  [[nodiscard]] static constexpr Bandwidth infinity() {
    return Bandwidth{std::numeric_limits<double>::infinity()};
  }

  [[nodiscard]] constexpr double to_bytes_per_second() const { return bps_; }
  [[nodiscard]] constexpr double to_megabytes_per_second() const { return bps_ / 1e6; }
  [[nodiscard]] constexpr double to_gigabytes_per_second() const { return bps_ / 1e9; }
  [[nodiscard]] constexpr bool is_positive() const { return bps_ > 0.0; }
  [[nodiscard]] constexpr bool is_finite() const { return std::isfinite(bps_); }

  constexpr Bandwidth& operator+=(Bandwidth other) { bps_ += other.bps_; return *this; }
  constexpr Bandwidth& operator-=(Bandwidth other) { bps_ -= other.bps_; return *this; }

  friend constexpr Bandwidth operator+(Bandwidth a, Bandwidth b) { return Bandwidth{a.bps_ + b.bps_}; }
  friend constexpr Bandwidth operator-(Bandwidth a, Bandwidth b) { return Bandwidth{a.bps_ - b.bps_}; }
  friend constexpr Bandwidth operator*(Bandwidth a, double k) { return Bandwidth{a.bps_ * k}; }
  friend constexpr Bandwidth operator*(double k, Bandwidth a) { return Bandwidth{k * a.bps_}; }
  friend constexpr Bandwidth operator/(Bandwidth a, double k) { return Bandwidth{a.bps_ / k}; }
  friend constexpr double operator/(Bandwidth a, Bandwidth b) { return a.bps_ / b.bps_; }

  friend constexpr auto operator<=>(Bandwidth a, Bandwidth b) = default;

 private:
  explicit constexpr Bandwidth(double b) : bps_{b} {}
  double bps_{0.0};
};

// ---------------------------------------------------------------------------
// Dimensional cross-type arithmetic.
// ---------------------------------------------------------------------------

/// vol / dur = rate : the average rate needed to move `v` in `d`.
[[nodiscard]] constexpr Bandwidth operator/(Volume v, Duration d) {
  return Bandwidth::bytes_per_second(v.to_bytes() / d.to_seconds());
}

/// vol / rate = dur : the time to move `v` at constant rate `b`.
[[nodiscard]] constexpr Duration operator/(Volume v, Bandwidth b) {
  return Duration::seconds(v.to_bytes() / b.to_bytes_per_second());
}

/// rate * dur = vol : the data moved at constant rate `b` over `d`.
[[nodiscard]] constexpr Volume operator*(Bandwidth b, Duration d) {
  return Volume::bytes(b.to_bytes_per_second() * d.to_seconds());
}
[[nodiscard]] constexpr Volume operator*(Duration d, Bandwidth b) { return b * d; }

// ---------------------------------------------------------------------------
// Min / max / clamp helpers (std::min on wrapper types works, these read
// better at call sites that mix factory expressions).
// ---------------------------------------------------------------------------

[[nodiscard]] constexpr Duration min(Duration a, Duration b) { return a < b ? a : b; }
[[nodiscard]] constexpr Duration max(Duration a, Duration b) { return a < b ? b : a; }
[[nodiscard]] constexpr TimePoint min(TimePoint a, TimePoint b) { return a < b ? a : b; }
[[nodiscard]] constexpr TimePoint max(TimePoint a, TimePoint b) { return a < b ? b : a; }
[[nodiscard]] constexpr Volume min(Volume a, Volume b) { return a < b ? a : b; }
[[nodiscard]] constexpr Volume max(Volume a, Volume b) { return a < b ? b : a; }
[[nodiscard]] constexpr Bandwidth min(Bandwidth a, Bandwidth b) { return a < b ? a : b; }
[[nodiscard]] constexpr Bandwidth max(Bandwidth a, Bandwidth b) { return a < b ? b : a; }

[[nodiscard]] constexpr Bandwidth clamp(Bandwidth x, Bandwidth lo, Bandwidth hi) {
  return x < lo ? lo : (hi < x ? hi : x);
}

// ---------------------------------------------------------------------------
// Approximate comparison. The allocation ledgers accumulate double sums; all
// feasibility checks use a relative-plus-absolute tolerance so that an
// allocation filling a port to exactly its capacity is accepted.
// ---------------------------------------------------------------------------

/// Returns true when `a <= b` within tolerance `abs_eps + rel_eps * |b|`.
[[nodiscard]] constexpr bool approx_le(double a, double b, double abs_eps = 1e-6,
                                       double rel_eps = 1e-9) {
  return a <= b + abs_eps + rel_eps * std::fabs(b);
}

[[nodiscard]] constexpr bool approx_le(Bandwidth a, Bandwidth b) {
  // Tolerance of 1 byte/s absolute: vastly below the 10 MB/s minimum rates.
  return approx_le(a.to_bytes_per_second(), b.to_bytes_per_second(), 1.0);
}

[[nodiscard]] constexpr bool approx_le(TimePoint a, TimePoint b) {
  // Tolerance of 1 microsecond: far below second-scale scheduling decisions.
  return approx_le(a.to_seconds(), b.to_seconds(), 1e-6);
}

[[nodiscard]] constexpr bool approx_eq(double a, double b, double abs_eps = 1e-6,
                                       double rel_eps = 1e-9) {
  return approx_le(a, b, abs_eps, rel_eps) && approx_le(b, a, abs_eps, rel_eps);
}

// ---------------------------------------------------------------------------
// Human-readable formatting (used by tables / logs / examples).
// ---------------------------------------------------------------------------

/// "2.50 GB/s", "10.0 MB/s", ...
[[nodiscard]] std::string to_string(Bandwidth b);
/// "1.00 TB", "500 GB", ...
[[nodiscard]] std::string to_string(Volume v);
/// "90 s", "2.5 min", "3.1 h", "1.2 d"
[[nodiscard]] std::string to_string(Duration d);
/// "t=123.4s"
[[nodiscard]] std::string to_string(TimePoint t);

}  // namespace gridbw
