// gridbw/util/flags.hpp
//
// Minimal --key=value command-line parsing for the bench and example
// binaries (kept dependency-free; google-benchmark binaries use its own
// parser and only consult this for the flags it ignores).

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace gridbw {

/// Parses `--key=value` and bare `--key` (value "true") arguments. Unknown
/// positional arguments are collected separately.
class Flags {
 public:
  Flags(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;

  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// Comma-separated list of doubles, e.g. --f=0.2,0.5,0.8.
  [[nodiscard]] std::vector<double> get_double_list(const std::string& key,
                                                    std::vector<double> fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace gridbw
