// gridbw/util/thread_pool.hpp
//
// A fixed-size worker pool with a blocking task queue, plus a deterministic
// parallel_for_index used by the experiment harness to fan Monte-Carlo
// replications out across cores. The algorithms themselves stay sequential
// (they are online schedulers); parallelism lives at the replication level,
// where streams are pre-derived per index so that parallel and serial
// execution give identical results.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace gridbw {

/// Fixed pool of worker threads consuming a FIFO task queue.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a task; the returned future rethrows any task exception.
  template <typename F>
  [[nodiscard]] std::future<std::invoke_result_t<F>> submit(F&& fn) {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    auto future = task->get_future();
    {
      std::lock_guard lock{mutex_};
      if (stopping_) throw std::runtime_error{"ThreadPool: submit after shutdown"};
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_{false};
};

/// Runs body(i) for i in [0, count) on `pool`, blocking until all complete.
/// Exceptions from any iteration are rethrown (the first one encountered in
/// index order). Iterations must not depend on execution order.
void parallel_for_index(ThreadPool& pool, std::size_t count,
                        const std::function<void(std::size_t)>& body);

/// Serial fallback with the same signature, for --threads=1 paths and tests.
void serial_for_index(std::size_t count, const std::function<void(std::size_t)>& body);

}  // namespace gridbw
