// gridbw/util/thread_pool.hpp
//
// A fixed-size worker pool with a blocking task queue, plus a deterministic
// parallel_for_index used by the experiment harness to fan Monte-Carlo
// replications out across cores. The algorithms themselves stay sequential
// (they are online schedulers); parallelism lives at the replication level,
// where streams are pre-derived per index so that parallel and serial
// execution give identical results.
//
// Shutdown contract: `shutdown()` (or the destructor, which calls it) marks
// the pool stopping, drains every task already queued, and joins the
// workers. It is idempotent. Once a thread has observed the pool stopping,
// `submit` refuses new work by throwing std::runtime_error — the throw
// happens after the queue lock is released, so a racing worker can never
// block behind an unwinding submitter. Submitting concurrently with
// `shutdown()` either enqueues (and the task runs before join) or throws;
// no task is silently dropped.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <thread>
#include <vector>

namespace gridbw {

/// Fixed pool of worker threads consuming a FIFO task queue.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Equivalent to shutdown().
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of workers the pool was created with (stable across shutdown).
  [[nodiscard]] std::size_t thread_count() const { return thread_count_; }

  /// Drains outstanding tasks, joins the workers, and rejects subsequent
  /// submits. Idempotent and safe to race with other shutdown() calls;
  /// must not be called from a worker thread (it would self-join).
  void shutdown();

  /// True once shutdown has begun; submits are guaranteed to throw after
  /// this returns true.
  [[nodiscard]] bool stopping() const {
    std::lock_guard lock{mutex_};
    return stopping_;
  }

  /// Enqueues a task; the returned future rethrows any task exception.
  /// Throws std::runtime_error (outside the queue lock) after shutdown.
  template <typename F>
  [[nodiscard]] std::future<std::invoke_result_t<F>> submit(F&& fn) {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    auto future = task->get_future();
    bool rejected = false;
    {
      std::lock_guard lock{mutex_};
      if (stopping_) {
        rejected = true;  // throw below, after the lock is released
      } else {
        queue_.emplace([task] { (*task)(); });
      }
    }
    if (rejected) throw std::runtime_error{"ThreadPool: submit after shutdown"};
    cv_.notify_one();
    return future;
  }

 private:
  void worker_loop();

  std::size_t thread_count_{0};
  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;  // gridbw:guarded_by(mutex_)
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_{false};  // gridbw:guarded_by(mutex_)
};

/// Runs body(i) for i in [0, count) on `pool`, blocking until all complete.
/// Exception propagation is deterministic: every iteration runs to
/// completion (or failure), then the exception thrown by the *lowest*
/// failing index is rethrown regardless of thread scheduling; exceptions
/// from higher indices are discarded. Iterations must not depend on
/// execution order.
void parallel_for_index(ThreadPool& pool, std::size_t count,
                        const std::function<void(std::size_t)>& body);

/// Serial fallback with the same signature, for --threads=1 paths and tests.
/// Matches parallel_for_index's exception contract trivially (the lowest
/// failing index throws first and stops the loop).
void serial_for_index(std::size_t count, const std::function<void(std::size_t)>& body);

}  // namespace gridbw
