#include "util/random.hpp"

#include <cmath>

namespace gridbw {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 mix{seed};
  for (auto& word : s_) word = mix.next();
}

Xoshiro256::result_type Xoshiro256::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256::jump() {
  static constexpr std::array<std::uint64_t, 4> kJump{
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
      0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{};
  for (std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (1ULL << bit)) {
        for (std::size_t i = 0; i < 4; ++i) acc[i] ^= s_[i];
      }
      (void)(*this)();
    }
  }
  s_ = acc;
}

std::uint64_t derive_stream(std::uint64_t seed, std::uint64_t index) {
  // Mix the index through SplitMix64 twice, offset by the parent seed, so
  // that nearby (seed, index) pairs land far apart.
  SplitMix64 mix{seed ^ (0x632be59bd9b4e019ULL + index * 0x9e3779b97f4a7c15ULL)};
  (void)mix.next();
  return mix.next();
}

double Rng::uniform01() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  if (lo > hi) throw std::invalid_argument{"Rng::uniform: lo > hi"};
  return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument{"Rng::uniform_int: lo > hi"};
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(gen_());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~0ULL) - (~0ULL) % range;
  std::uint64_t draw = gen_();
  while (draw >= limit) draw = gen_();
  return lo + static_cast<std::int64_t>(draw % range);
}

double Rng::exponential(double mean) {
  if (!(mean > 0.0)) throw std::invalid_argument{"Rng::exponential: mean must be > 0"};
  // Inverse CDF; 1 - uniform01() is in (0, 1], so the log is finite.
  return -mean * std::log(1.0 - uniform01());
}

bool Rng::bernoulli(double p) {
  if (p < 0.0 || p > 1.0) throw std::invalid_argument{"Rng::bernoulli: p outside [0,1]"};
  return uniform01() < p;
}

std::size_t Rng::pick_weighted(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument{"Rng::pick_weighted: negative weight"};
    total += w;
  }
  if (!(total > 0.0)) throw std::invalid_argument{"Rng::pick_weighted: all weights zero"};
  double target = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge: fell off the end
}

}  // namespace gridbw
