// gridbw/sim/event_queue.hpp
//
// The time-ordered event queue at the heart of the discrete-event kernel.
// Events firing at equal times are delivered in insertion (FIFO) order so
// that simulations are fully deterministic. Cancellation is supported by
// lazy deletion: a cancelled entry stays in the heap and is skipped on pop.

#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/quantity.hpp"

namespace gridbw::sim {

/// Identifies a scheduled event; used to cancel it before it fires.
using EventId = std::uint64_t;

/// A scheduled callback.
struct Event {
  TimePoint time;
  EventId id{0};
  std::function<void()> action;
};

class EventQueue {
 public:
  /// Schedules `action` at `time`; returns an id usable with `cancel`.
  EventId push(TimePoint time, std::function<void()> action);

  /// Cancels a pending event. Returns false if it already fired, was
  /// already cancelled, or never existed.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const;
  [[nodiscard]] std::size_t pending_count() const;

  /// Earliest pending event time; queue must not be empty.
  [[nodiscard]] TimePoint next_time() const;

  /// Removes and returns the earliest pending event; queue must not be empty.
  [[nodiscard]] Event pop();

 private:
  struct Entry {
    TimePoint time;
    EventId id;
  };
  struct Later {
    [[nodiscard]] bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;  // FIFO among equal times (ids are monotonic)
    }
  };

  void drop_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_map<EventId, std::function<void()>> actions_;
  EventId next_id_{1};
};

}  // namespace gridbw::sim
