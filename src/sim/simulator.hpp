// gridbw/sim/simulator.hpp
//
// A minimal discrete-event simulator: a clock plus an EventQueue. Handlers
// scheduled with `at` / `after` run in time order (FIFO among ties) and may
// schedule further events. The online heuristics, the max-min fluid
// baseline, and the control-plane substrate all run on this kernel.

#pragma once

#include <cstddef>
#include <functional>

#include "sim/event_queue.hpp"
#include "util/quantity.hpp"

namespace gridbw::sim {

class Simulator {
 public:
  Simulator() = default;

  [[nodiscard]] TimePoint now() const { return now_; }
  [[nodiscard]] std::size_t executed_events() const { return executed_; }
  [[nodiscard]] bool has_pending() const { return !queue_.empty(); }

  /// Schedules `action` at absolute time `t`. Scheduling in the past (before
  /// `now()`) is an error.
  EventId at(TimePoint t, std::function<void()> action);

  /// Schedules `action` `delay` after the current time; delay must be >= 0.
  EventId after(Duration delay, std::function<void()> action);

  /// Cancels a pending event; returns false if it already fired.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs until the queue drains. Returns the number of events executed.
  std::size_t run();

  /// Runs events with time <= `horizon`, then stops; the clock is advanced
  /// to `horizon` if the queue drained earlier (or holds later events only).
  std::size_t run_until(TimePoint horizon);

  /// Executes exactly one event if any is pending; returns whether one ran.
  bool step();

 private:
  EventQueue queue_;
  TimePoint now_{TimePoint::origin()};
  std::size_t executed_{0};
};

}  // namespace gridbw::sim
