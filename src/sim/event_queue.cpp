#include "sim/event_queue.hpp"

#include <stdexcept>

namespace gridbw::sim {

EventId EventQueue::push(TimePoint time, std::function<void()> action) {
  const EventId id = next_id_++;
  heap_.push(Entry{time, id});
  actions_.emplace(id, std::move(action));
  return id;
}

bool EventQueue::cancel(EventId id) { return actions_.erase(id) > 0; }

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && actions_.find(heap_.top().id) == actions_.end()) {
    heap_.pop();
  }
}

bool EventQueue::empty() const {
  drop_cancelled();
  return heap_.empty();
}

std::size_t EventQueue::pending_count() const { return actions_.size(); }

TimePoint EventQueue::next_time() const {
  drop_cancelled();
  if (heap_.empty()) throw std::logic_error{"EventQueue::next_time: empty queue"};
  return heap_.top().time;
}

Event EventQueue::pop() {
  drop_cancelled();
  if (heap_.empty()) throw std::logic_error{"EventQueue::pop: empty queue"};
  const Entry entry = heap_.top();
  heap_.pop();
  auto it = actions_.find(entry.id);
  Event event{entry.time, entry.id, std::move(it->second)};
  actions_.erase(it);
  return event;
}

}  // namespace gridbw::sim
