#include "sim/simulator.hpp"

#include <stdexcept>

namespace gridbw::sim {

EventId Simulator::at(TimePoint t, std::function<void()> action) {
  if (t < now_) throw std::invalid_argument{"Simulator::at: scheduling in the past"};
  return queue_.push(t, std::move(action));
}

EventId Simulator::after(Duration delay, std::function<void()> action) {
  if (delay.is_negative()) {
    throw std::invalid_argument{"Simulator::after: negative delay"};
  }
  return queue_.push(now_ + delay, std::move(action));
}

std::size_t Simulator::run() {
  std::size_t ran = 0;
  while (step()) ++ran;
  return ran;
}

std::size_t Simulator::run_until(TimePoint horizon) {
  std::size_t ran = 0;
  while (!queue_.empty() && queue_.next_time() <= horizon) {
    (void)step();
    ++ran;
  }
  if (now_ < horizon) now_ = horizon;
  return ran;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  Event event = queue_.pop();
  now_ = event.time;
  ++executed_;
  event.action();
  return true;
}

}  // namespace gridbw::sim
