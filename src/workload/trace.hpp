// gridbw/workload/trace.hpp
//
// CSV persistence for request sets, so generated workloads can be archived,
// diffed, and replayed across heuristics (every algorithm sees the exact
// same trace).

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/request.hpp"

namespace gridbw::workload {

/// Writes requests as CSV with a fixed header:
/// id,ingress,egress,release_s,deadline_s,volume_bytes,max_rate_bps
void write_trace(std::ostream& os, std::span<const Request> requests);
void write_trace_file(const std::string& path, std::span<const Request> requests);

/// Reads a trace written by write_trace. Throws std::runtime_error on
/// malformed input (wrong header, bad field counts, non-numeric cells,
/// ill-formed requests).
[[nodiscard]] std::vector<Request> read_trace(std::istream& is);
[[nodiscard]] std::vector<Request> read_trace_file(const std::string& path);

}  // namespace gridbw::workload
