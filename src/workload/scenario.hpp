// gridbw/workload/scenario.hpp
//
// Named (network, workload) presets matching the paper's simulation
// settings. Every bench builds on one of these so that "the paper's
// platform" is defined in exactly one place.

#pragma once

#include "core/network.hpp"
#include "workload/spec.hpp"

namespace gridbw::workload {

struct Scenario {
  std::string name;
  Network network;
  WorkloadSpec spec;
};

/// §4.3 platform: 10 ingress + 10 egress points at 1 GB/s each, paper
/// volume law, rigid windows (slack = 1), host rates 10 MB/s .. 1 GB/s.
/// `mean_interarrival` controls load; `horizon` bounds the run.
[[nodiscard]] Scenario paper_rigid(Duration mean_interarrival, Duration horizon);

/// §5.3 platform: same ports, flexible windows. Transmission times range
/// from minutes to ~a day via the volume/rate laws; slack in [1, max_slack]
/// (default 4: deadlines up to 4x the fastest transfer).
[[nodiscard]] Scenario paper_flexible(Duration mean_interarrival, Duration horizon,
                                      double max_slack = 4.0);

/// Heavy-load preset of Fig. 5 (mean inter-arrival 0.1..5 s).
[[nodiscard]] Scenario paper_flexible_heavy(Duration mean_interarrival);

/// Under-loaded preset of Fig. 6 (mean inter-arrival 3..20 s).
[[nodiscard]] Scenario paper_flexible_light(Duration mean_interarrival);

}  // namespace gridbw::workload
