#include "workload/load.hpp"

#include <algorithm>
#include <stdexcept>

namespace gridbw::workload {

double demand_ratio(std::span<const Request> requests, const Network& network) {
  const Bandwidth demand = total_demand(requests);
  const Bandwidth capacity = network.total_capacity() / 2.0;
  return demand / capacity;
}

double offered_load(std::span<const Request> requests, const Network& network) {
  if (requests.empty()) return 0.0;
  Volume total = Volume::zero();
  TimePoint first = TimePoint::infinity();
  TimePoint last = TimePoint::origin();
  for (const Request& r : requests) {
    total += r.volume;
    first = min(first, r.release);
    last = max(last, r.deadline);
  }
  const Duration span = last - first;
  if (!span.is_positive()) return 0.0;
  const Bandwidth capacity = network.total_capacity() / 2.0;
  return (total / span) / capacity;
}

double expected_offered_load(const WorkloadSpec& spec, const Network& network) {
  const double lambda = 1.0 / spec.mean_interarrival.to_seconds();
  const Bandwidth capacity = network.total_capacity() / 2.0;
  return lambda * spec.volumes.mean().to_bytes() /
         capacity.to_bytes_per_second();
}

Duration interarrival_for_load(const WorkloadSpec& spec, const Network& network,
                               double target_load) {
  if (!(target_load > 0.0)) {
    throw std::invalid_argument{"interarrival_for_load: target must be positive"};
  }
  const Bandwidth capacity = network.total_capacity() / 2.0;
  const double lambda =
      target_load * capacity.to_bytes_per_second() / spec.volumes.mean().to_bytes();
  return Duration::seconds(1.0 / lambda);
}

}  // namespace gridbw::workload
