// gridbw/workload/volume_law.hpp
//
// The paper's request-volume distribution (§4.3): volumes drawn uniformly
// from the discrete set {10, 20, ..., 90 GB, 100, 200, ..., 900 GB, 1 TB}.

#pragma once

#include <span>
#include <vector>

#include "util/quantity.hpp"
#include "util/random.hpp"

namespace gridbw::workload {

/// A discrete volume distribution: uniform over an explicit support.
class VolumeLaw {
 public:
  /// Uniform over the given support (must be non-empty, all positive).
  explicit VolumeLaw(std::vector<Volume> support);

  /// The paper's set: {10..90 GB step 10, 100..900 GB step 100, 1 TB}.
  [[nodiscard]] static VolumeLaw paper();

  /// Degenerate law: always `v` (unit-request studies, tests).
  [[nodiscard]] static VolumeLaw constant(Volume v);

  [[nodiscard]] Volume sample(Rng& rng) const;

  [[nodiscard]] Volume mean() const;
  [[nodiscard]] std::span<const Volume> support() const { return support_; }

 private:
  std::vector<Volume> support_;
};

}  // namespace gridbw::workload
