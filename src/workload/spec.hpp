// gridbw/workload/spec.hpp
//
// Declarative description of a synthetic workload, mirroring the paper's
// simulation settings (§4.3, §5.3):
//
//  * Poisson arrivals (exponential inter-arrival with a given mean) over a
//    finite horizon;
//  * volumes from a discrete law (default: the paper's GB/TB set);
//  * per-request host limit MaxRate uniform in [10 MB/s, 1 GB/s];
//  * a window-slack law turning (volume, MaxRate) into the requested
//    window: window = slack * vol / MaxRate. slack == 1 gives rigid
//    requests (MinRate == MaxRate); slack > 1 gives flexible ones.

#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "core/ids.hpp"
#include "workload/volume_law.hpp"

namespace gridbw::workload {

/// How much longer the requested window is than the fastest possible
/// transfer. Sampled uniformly in [min_slack, max_slack].
struct SlackLaw {
  double min_slack{1.0};
  double max_slack{1.0};

  [[nodiscard]] static SlackLaw rigid() { return SlackLaw{1.0, 1.0}; }
  [[nodiscard]] static SlackLaw flexible(double min_s, double max_s) {
    return SlackLaw{min_s, max_s};
  }
  [[nodiscard]] double sample(Rng& rng) const {
    return min_slack == max_slack ? min_slack : rng.uniform(min_slack, max_slack);
  }
  [[nodiscard]] double mean() const { return (min_slack + max_slack) / 2.0; }
};

struct WorkloadSpec {
  /// Endpoint universe (requests pick ingress/egress uniformly).
  std::size_t ingress_count{10};
  std::size_t egress_count{10};

  /// Poisson arrival process: mean inter-arrival time, arrivals in
  /// [0, horizon).
  Duration mean_interarrival{Duration::seconds(1.0)};
  Duration horizon{Duration::seconds(1000.0)};

  VolumeLaw volumes{VolumeLaw::paper()};

  /// MaxRate(r) ~ Uniform[min_host_rate, max_host_rate] (paper §5.3:
  /// 10 MB/s .. 1 GB/s).
  Bandwidth min_host_rate{Bandwidth::megabytes_per_second(10)};
  Bandwidth max_host_rate{Bandwidth::gigabytes_per_second(1)};

  SlackLaw slack{SlackLaw::rigid()};

  /// Alternative window model for rigid studies (§4.3): when set, the
  /// window length is drawn uniformly in [first, second] *independently* of
  /// the volume, and the request is rigid with
  /// MaxRate = MinRate = vol / window. A draw whose implied rate exceeds
  /// max_host_rate is stretched to the host limit. Overrides `slack`.
  std::optional<std::pair<Duration, Duration>> independent_rigid_window;

  /// First request id to assign (requests are numbered consecutively).
  RequestId first_id{1};

  /// Expected number of arrivals.
  [[nodiscard]] double expected_count() const {
    return horizon / mean_interarrival;
  }
};

}  // namespace gridbw::workload
