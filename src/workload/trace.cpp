#include "workload/trace.hpp"

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace gridbw::workload {
namespace {

constexpr const char* kHeader =
    "id,ingress,egress,release_s,deadline_s,volume_bytes,max_rate_bps";

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::stringstream ss{line};
  std::string cell;
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  // A trailing comma means an empty last cell that getline drops; traces
  // never contain empty cells, so treat it as malformed via the count check.
  return cells;
}

}  // namespace

void write_trace(std::ostream& os, std::span<const Request> requests) {
  os << kHeader << '\n';
  std::array<char, 256> buf{};
  for (const Request& r : requests) {
    std::snprintf(buf.data(), buf.size(), "%llu,%zu,%zu,%.9f,%.9f,%.3f,%.3f",
                  static_cast<unsigned long long>(r.id), r.ingress.value,
                  r.egress.value, r.release.to_seconds(), r.deadline.to_seconds(),
                  r.volume.to_bytes(), r.max_rate.to_bytes_per_second());
    os << buf.data() << '\n';
  }
}

void write_trace_file(const std::string& path, std::span<const Request> requests) {
  std::ofstream out{path};
  if (!out) throw std::runtime_error{"write_trace_file: cannot open " + path};
  write_trace(out, requests);
}

std::vector<Request> read_trace(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kHeader) {
    throw std::runtime_error{"read_trace: missing or wrong header"};
  }
  std::vector<Request> requests;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto cells = split_csv_line(line);
    if (cells.size() != 7) {
      throw std::runtime_error{"read_trace: line " + std::to_string(line_no) +
                               ": expected 7 fields, got " + std::to_string(cells.size())};
    }
    try {
      Request r;
      r.id = static_cast<RequestId>(std::stoull(cells[0]));
      r.ingress = IngressId{static_cast<std::size_t>(std::stoull(cells[1]))};
      r.egress = EgressId{static_cast<std::size_t>(std::stoull(cells[2]))};
      r.release = TimePoint::at_seconds(std::stod(cells[3]));
      r.deadline = TimePoint::at_seconds(std::stod(cells[4]));
      r.volume = Volume::bytes(std::stod(cells[5]));
      r.max_rate = Bandwidth::bytes_per_second(std::stod(cells[6]));
      if (!r.is_well_formed()) {
        throw std::runtime_error{"ill-formed request " + r.describe()};
      }
      requests.push_back(r);
    } catch (const std::exception& e) {
      throw std::runtime_error{"read_trace: line " + std::to_string(line_no) + ": " +
                               e.what()};
    }
  }
  return requests;
}

std::vector<Request> read_trace_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error{"read_trace_file: cannot open " + path};
  return read_trace(in);
}

}  // namespace gridbw::workload
