// gridbw/workload/generator.hpp
//
// Samples a concrete request set from a WorkloadSpec. Generation is a pure
// function of (spec, rng): the same seed always produces the same workload.

#pragma once

#include <vector>

#include "core/request.hpp"
#include "workload/spec.hpp"

namespace gridbw::workload {

/// Draws all requests of one simulation run. Arrival times are a Poisson
/// process truncated at the horizon; requests are returned in arrival order
/// with consecutive ids starting at spec.first_id.
[[nodiscard]] std::vector<Request> generate(const WorkloadSpec& spec, Rng& rng);

/// Single-request draw at a given arrival time (used by the online control
/// plane substrate, which generates arrivals on the simulator clock).
[[nodiscard]] Request sample_request(const WorkloadSpec& spec, Rng& rng, RequestId id,
                                     TimePoint arrival);

}  // namespace gridbw::workload
