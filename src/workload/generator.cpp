#include "workload/generator.hpp"

#include <stdexcept>

namespace gridbw::workload {

Request sample_request(const WorkloadSpec& spec, Rng& rng, RequestId id,
                       TimePoint arrival) {
  Request r;
  r.id = id;
  r.ingress = IngressId{static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(spec.ingress_count) - 1))};
  r.egress = EgressId{static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(spec.egress_count) - 1))};
  r.volume = spec.volumes.sample(rng);
  r.release = arrival;
  if (spec.independent_rigid_window.has_value()) {
    const auto& [lo, hi] = *spec.independent_rigid_window;
    if (!lo.is_positive() || hi < lo) {
      throw std::invalid_argument{"sample_request: bad independent window range"};
    }
    Duration window = rng.uniform_duration(lo, hi);
    // Stretch windows whose implied rate the host cannot sustain.
    window = gridbw::max(window, r.volume / spec.max_host_rate);
    r.max_rate = r.volume / window;  // rigid: MinRate == MaxRate
    r.deadline = arrival + window;
    return r;
  }
  r.max_rate = rng.uniform_bandwidth(spec.min_host_rate, spec.max_host_rate);
  const double slack = spec.slack.sample(rng);
  if (slack < 1.0) {
    throw std::invalid_argument{"sample_request: slack < 1 gives an infeasible window"};
  }
  r.deadline = arrival + (r.volume / r.max_rate) * slack;
  return r;
}

std::vector<Request> generate(const WorkloadSpec& spec, Rng& rng) {
  if (spec.ingress_count == 0 || spec.egress_count == 0) {
    throw std::invalid_argument{"generate: empty endpoint universe"};
  }
  if (!spec.mean_interarrival.is_positive()) {
    throw std::invalid_argument{"generate: mean inter-arrival must be positive"};
  }
  std::vector<Request> requests;
  requests.reserve(static_cast<std::size_t>(spec.expected_count() * 1.2) + 8);
  RequestId id = spec.first_id;
  TimePoint t = TimePoint::origin() + rng.exponential_duration(spec.mean_interarrival);
  const TimePoint end = TimePoint::origin() + spec.horizon;
  while (t < end) {
    requests.push_back(sample_request(spec, rng, id++, t));
    t += rng.exponential_duration(spec.mean_interarrival);
  }
  return requests;
}

}  // namespace gridbw::workload
