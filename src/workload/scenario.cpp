#include "workload/scenario.hpp"

namespace gridbw::workload {
namespace {

constexpr std::size_t kPaperPorts = 10;
const Bandwidth kPaperPortCapacity = Bandwidth::gigabytes_per_second(1);

WorkloadSpec paper_spec(Duration mean_interarrival, Duration horizon, SlackLaw slack) {
  WorkloadSpec spec;
  spec.ingress_count = kPaperPorts;
  spec.egress_count = kPaperPorts;
  spec.mean_interarrival = mean_interarrival;
  spec.horizon = horizon;
  spec.volumes = VolumeLaw::paper();
  spec.min_host_rate = Bandwidth::megabytes_per_second(10);
  spec.max_host_rate = Bandwidth::gigabytes_per_second(1);
  spec.slack = slack;
  return spec;
}

}  // namespace

Scenario paper_rigid(Duration mean_interarrival, Duration horizon) {
  Scenario s{"paper-rigid",
             Network::uniform(kPaperPorts, kPaperPorts, kPaperPortCapacity),
             paper_spec(mean_interarrival, horizon, SlackLaw::rigid())};
  // §4.3 windows: drawn independently of the volume (5 min .. 2 h), so the
  // demanded rate vol/window spans tiny trickles to port-saturating hogs —
  // the regime where the *-SLOTS cost factors separate (Fig. 4).
  s.spec.independent_rigid_window =
      std::make_pair(Duration::minutes(5), Duration::hours(2));
  return s;
}

Scenario paper_flexible(Duration mean_interarrival, Duration horizon, double max_slack) {
  return Scenario{"paper-flexible",
                  Network::uniform(kPaperPorts, kPaperPorts, kPaperPortCapacity),
                  paper_spec(mean_interarrival, horizon,
                             SlackLaw::flexible(1.0, max_slack))};
}

Scenario paper_flexible_heavy(Duration mean_interarrival) {
  // Fig. 5: mean inter-arrival 0.1 .. 5 s, a massively overloaded network.
  // A 1000 s horizon keeps runs tractable while reaching steady overload.
  return paper_flexible(mean_interarrival, Duration::seconds(1000), 4.0);
}

Scenario paper_flexible_light(Duration mean_interarrival) {
  // Fig. 6 right: mean inter-arrival 3 .. 20 s.
  return paper_flexible(mean_interarrival, Duration::seconds(4000), 4.0);
}

}  // namespace gridbw::workload
