#include "workload/volume_law.hpp"

#include <stdexcept>

namespace gridbw::workload {

VolumeLaw::VolumeLaw(std::vector<Volume> support) : support_{std::move(support)} {
  if (support_.empty()) throw std::invalid_argument{"VolumeLaw: empty support"};
  for (Volume v : support_) {
    if (!v.is_positive()) throw std::invalid_argument{"VolumeLaw: non-positive volume"};
  }
}

VolumeLaw VolumeLaw::paper() {
  std::vector<Volume> support;
  support.reserve(19);
  for (int gb = 10; gb <= 90; gb += 10) support.push_back(Volume::gigabytes(gb));
  for (int gb = 100; gb <= 900; gb += 100) support.push_back(Volume::gigabytes(gb));
  support.push_back(Volume::terabytes(1));
  return VolumeLaw{std::move(support)};
}

VolumeLaw VolumeLaw::constant(Volume v) { return VolumeLaw{{v}}; }

Volume VolumeLaw::sample(Rng& rng) const {
  return rng.pick(std::span<const Volume>{support_});
}

Volume VolumeLaw::mean() const {
  Volume total = Volume::zero();
  for (Volume v : support_) total += v;
  return total / static_cast<double>(support_.size());
}

}  // namespace gridbw::workload
