// gridbw/workload/load.hpp
//
// Load accounting. The paper (§4.3) defines system load as
//
//     load = sum_r bw(r)  /  (1/2) (sum_i B_in(i) + sum_e B_out(e))
//
// i.e. total demanded bandwidth over scaled capacity. For a workload spread
// over a time horizon the steady-state analogue is the *offered load*: the
// expected aggregate bandwidth demanded at one instant,
//
//     offered = lambda * E[vol] / ((1/2) total capacity)
//
// because each arrival holds MinRate(r) for vol(r)/MinRate(r) seconds, so
// by Little's law the expected demand in flight is lambda * E[vol].
// Both quantities are provided, plus the inverse mapping used by the
// benches to hit a target load by choosing the arrival rate.

#pragma once

#include <span>

#include "core/network.hpp"
#include "core/request.hpp"
#include "workload/spec.hpp"

namespace gridbw::workload {

/// The paper's §4.3 ratio over a concrete request set (demand counted at
/// MinRate, the rate a rigid request actually asks for).
[[nodiscard]] double demand_ratio(std::span<const Request> requests,
                                  const Network& network);

/// Time-normalized offered load of a request set over the window that spans
/// all requests: sum_r vol(r) / (makespan * total_capacity / 2).
[[nodiscard]] double offered_load(std::span<const Request> requests,
                                  const Network& network);

/// Expected instantaneous offered load of a spec on a network
/// (lambda * E[vol] / (C/2)).
[[nodiscard]] double expected_offered_load(const WorkloadSpec& spec,
                                           const Network& network);

/// Mean inter-arrival time that makes `spec` offer `target_load` on
/// `network`. Throws if target_load <= 0.
[[nodiscard]] Duration interarrival_for_load(const WorkloadSpec& spec,
                                             const Network& network,
                                             double target_load);

}  // namespace gridbw::workload
