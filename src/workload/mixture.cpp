#include "workload/mixture.hpp"

#include <stdexcept>

#include "workload/generator.hpp"

namespace gridbw::workload {

std::vector<Request> MixtureTrace::of_class(std::size_t k) const {
  std::vector<Request> out;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (class_of[i] == k) out.push_back(requests[i]);
  }
  return out;
}

MixtureTrace generate_mixture(const MixtureSpec& spec, Rng& rng) {
  if (spec.classes.empty()) {
    throw std::invalid_argument{"generate_mixture: no traffic classes"};
  }
  if (!spec.mean_interarrival.is_positive()) {
    throw std::invalid_argument{"generate_mixture: mean inter-arrival must be positive"};
  }
  std::vector<double> weights;
  weights.reserve(spec.classes.size());
  for (const TrafficClass& c : spec.classes) {
    if (c.weight < 0.0) throw std::invalid_argument{"generate_mixture: negative weight"};
    weights.push_back(c.weight);
  }

  MixtureTrace trace;
  RequestId id = spec.first_id;
  TimePoint t = TimePoint::origin() + rng.exponential_duration(spec.mean_interarrival);
  const TimePoint end = TimePoint::origin() + spec.horizon;
  while (t < end) {
    const std::size_t k = rng.pick_weighted(weights);
    const TrafficClass& cls = spec.classes[k];
    // Reuse the single-class sampler through a per-class WorkloadSpec view.
    WorkloadSpec view;
    view.ingress_count = spec.ingress_count;
    view.egress_count = spec.egress_count;
    view.volumes = cls.volumes;
    view.min_host_rate = cls.min_host_rate;
    view.max_host_rate = cls.max_host_rate;
    view.slack = cls.slack;
    trace.requests.push_back(sample_request(view, rng, id++, t));
    trace.class_of.push_back(k);
    t += rng.exponential_duration(spec.mean_interarrival);
  }
  return trace;
}

MixtureSpec mice_and_elephants(Duration mean_interarrival, Duration horizon,
                               double mice_fraction) {
  if (mice_fraction < 0.0 || mice_fraction > 1.0) {
    throw std::invalid_argument{"mice_and_elephants: fraction outside [0,1]"};
  }
  TrafficClass mice;
  mice.name = "mice";
  mice.weight = mice_fraction;
  std::vector<Volume> small;
  for (int mb : {10, 20, 50, 100, 200, 500}) small.push_back(Volume::megabytes(mb));
  mice.volumes = VolumeLaw{std::move(small)};
  mice.min_host_rate = Bandwidth::megabytes_per_second(10);
  mice.max_host_rate = Bandwidth::megabytes_per_second(100);
  mice.slack = SlackLaw::flexible(1.0, 8.0);

  TrafficClass elephants;
  elephants.name = "elephants";
  elephants.weight = 1.0 - mice_fraction;
  elephants.volumes = VolumeLaw::paper();
  elephants.min_host_rate = Bandwidth::megabytes_per_second(10);
  elephants.max_host_rate = Bandwidth::gigabytes_per_second(1);
  elephants.slack = SlackLaw::flexible(1.0, 4.0);

  MixtureSpec spec;
  spec.mean_interarrival = mean_interarrival;
  spec.horizon = horizon;
  spec.classes = {std::move(mice), std::move(elephants)};
  return spec;
}

}  // namespace gridbw::workload
