// gridbw/workload/mixture.hpp
//
// Heterogeneous traffic mixtures. The paper's related-work section (§6)
// assumes "grid bulk data are separated from the rest of the traffic
// (mice)"; this module generates the mixed population — interactive mice
// (megabytes, tight windows) interleaved with bulk elephants (the paper's
// GB/TB law) — so that the separation assumption itself can be measured
// (bench/mice_elephants).

#pragma once

#include <string>
#include <vector>

#include "core/request.hpp"
#include "workload/spec.hpp"

namespace gridbw::workload {

/// One traffic class of a mixture.
struct TrafficClass {
  std::string name;
  /// Relative share of arrivals (normalized over the mixture).
  double weight{1.0};
  VolumeLaw volumes{VolumeLaw::paper()};
  Bandwidth min_host_rate{Bandwidth::megabytes_per_second(10)};
  Bandwidth max_host_rate{Bandwidth::gigabytes_per_second(1)};
  SlackLaw slack{SlackLaw::flexible(1.0, 4.0)};
};

struct MixtureSpec {
  std::size_t ingress_count{10};
  std::size_t egress_count{10};
  /// Poisson arrivals of the *combined* stream.
  Duration mean_interarrival{Duration::seconds(1)};
  Duration horizon{Duration::seconds(1000)};
  std::vector<TrafficClass> classes;
  RequestId first_id{1};
};

/// A generated mixture: the requests plus each request's class index.
struct MixtureTrace {
  std::vector<Request> requests;
  std::vector<std::size_t> class_of;  // parallel to requests

  /// Requests belonging to class `k` (copy).
  [[nodiscard]] std::vector<Request> of_class(std::size_t k) const;
};

[[nodiscard]] MixtureTrace generate_mixture(const MixtureSpec& spec, Rng& rng);

/// The §6 scenario: `mice_fraction` of arrivals are mice (10..500 MB,
/// host rates 10..100 MB/s, slack up to 8), the rest are the paper's bulk
/// elephants (slack up to 4). Class 0 = mice, class 1 = elephants.
[[nodiscard]] MixtureSpec mice_and_elephants(Duration mean_interarrival,
                                             Duration horizon,
                                             double mice_fraction = 0.8);

}  // namespace gridbw::workload
