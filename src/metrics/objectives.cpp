#include "metrics/objectives.hpp"

#include <algorithm>
#include <vector>

namespace gridbw::metrics {

double accept_rate(std::span<const Request> requests, const Schedule& schedule) {
  if (requests.empty()) return 0.0;
  std::size_t accepted = 0;
  for (const Request& r : requests) accepted += schedule.is_accepted(r.id) ? 1 : 0;
  return static_cast<double>(accepted) / static_cast<double>(requests.size());
}

double resource_util_paper(const Network& network, std::span<const Request> requests,
                           const Schedule& schedule) {
  // Demand per port, at the requested minimum rate.
  std::vector<Bandwidth> in_demand(network.ingress_count(), Bandwidth::zero());
  std::vector<Bandwidth> out_demand(network.egress_count(), Bandwidth::zero());
  Bandwidth granted = Bandwidth::zero();
  for (const Request& r : requests) {
    in_demand[r.ingress.value] += r.min_rate();
    out_demand[r.egress.value] += r.min_rate();
    const auto a = schedule.assignment(r.id);
    // Profiled allocations contribute their time-averaged rate (carried
    // volume over duration) — the constant form's bw, generalized; the peak
    // alone would overstate a mostly-slow profile.
    if (a.has_value()) {
      granted += a->is_profiled() ? a->profile.carried() / (a->profile.end() - a->start)
                                  : a->bw;
    }
  }

  Bandwidth scaled = Bandwidth::zero();
  for (std::size_t i = 0; i < in_demand.size(); ++i) {
    scaled += min(network.ingress_capacity(IngressId{i}), in_demand[i]);
  }
  for (std::size_t e = 0; e < out_demand.size(); ++e) {
    scaled += min(network.egress_capacity(EgressId{e}), out_demand[e]);
  }
  if (!scaled.is_positive()) return 0.0;
  return granted / (scaled / 2.0);
}

double utilization_time_averaged(const Network& network,
                                 std::span<const Request> requests,
                                 const Schedule& schedule) {
  if (requests.empty()) return 0.0;
  TimePoint first = TimePoint::infinity();
  TimePoint last = TimePoint::origin();
  Volume granted = Volume::zero();
  for (const Request& r : requests) {
    first = min(first, r.release);
    last = max(last, r.deadline);
    if (schedule.is_accepted(r.id)) granted += r.volume;
  }
  const Duration horizon = last - first;
  if (!horizon.is_positive()) return 0.0;
  const Bandwidth capacity = network.total_capacity() / 2.0;
  return (granted / horizon) / capacity;
}

double utilization_over(const Network& network, std::span<const Request> requests,
                        const Schedule& schedule, TimePoint t0, TimePoint t1) {
  const Duration window = t1 - t0;
  if (!window.is_positive()) return 0.0;
  Volume carried = Volume::zero();
  for (const Request& r : requests) {
    const auto a = schedule.assignment(r.id);
    if (!a.has_value()) continue;
    a->for_each_segment(r, [&](TimePoint s0, TimePoint s1, Bandwidth rate) {
      const TimePoint start = max(s0, t0);
      const TimePoint end = min(s1, t1);
      if (start < end) carried += rate * (end - start);
    });
  }
  const Bandwidth capacity = network.total_capacity() / 2.0;
  return (carried / window) / capacity;
}

std::size_t guaranteed_count(std::span<const Request> requests, const Schedule& schedule,
                             double f) {
  std::size_t count = 0;
  for (const Request& r : requests) {
    const auto a = schedule.assignment(r.id);
    if (!a.has_value()) continue;
    const Bandwidth floor = max(r.max_rate * f, r.min_rate());
    // A profiled flow sustains its guarantee iff its slowest step does.
    const Bandwidth sustained = a->is_profiled() ? a->profile.min_rate() : a->bw;
    if (approx_le(floor, sustained)) ++count;
  }
  return count;
}

RunningStats stretch_stats(std::span<const Request> requests, const Schedule& schedule) {
  RunningStats stats;
  for (const Request& r : requests) {
    const auto a = schedule.assignment(r.id);
    if (!a.has_value()) continue;
    const Duration achieved =
        a->is_profiled() ? a->profile.end() - a->start : r.volume / a->bw;
    const Duration ideal = r.volume / r.max_rate;
    stats.add(achieved / ideal);
  }
  return stats;
}

RunningStats start_delay_stats(std::span<const Request> requests,
                               const Schedule& schedule) {
  RunningStats stats;
  for (const Request& r : requests) {
    const auto a = schedule.assignment(r.id);
    if (!a.has_value()) continue;
    stats.add((a->start - r.release).to_seconds());
  }
  return stats;
}

double jain_fairness(std::span<const double> values) {
  // No shares at all is vacuous, not perfectly fair: report 0 so an empty
  // schedule cannot score better than a skewed one.
  if (values.empty()) return 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : values) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;  // all-zero shares are exactly equal
  return sum * sum / (static_cast<double>(values.size()) * sum_sq);
}

namespace {

std::vector<Volume> granted_per_port(std::size_t ports,
                                     std::span<const Request> requests,
                                     const Schedule& schedule, bool ingress_side) {
  std::vector<Volume> granted(ports, Volume::zero());
  for (const Request& r : requests) {
    if (!schedule.is_accepted(r.id)) continue;
    const std::size_t port = ingress_side ? r.ingress.value : r.egress.value;
    granted.at(port) += r.volume;
  }
  return granted;
}

}  // namespace

std::vector<Volume> granted_per_ingress(const Network& network,
                                        std::span<const Request> requests,
                                        const Schedule& schedule) {
  return granted_per_port(network.ingress_count(), requests, schedule, true);
}

std::vector<Volume> granted_per_egress(const Network& network,
                                       std::span<const Request> requests,
                                       const Schedule& schedule) {
  return granted_per_port(network.egress_count(), requests, schedule, false);
}

}  // namespace gridbw::metrics
