// gridbw/metrics/objectives.hpp
//
// The paper's optimization objectives as measurement functions over a
// finished schedule:
//
//   * accept rate           — MAX-REQUESTS, §2.2;
//   * resource utilization  — RESOURCE-UTIL with the B_scaled denominator
//                             that excludes ports nobody asked for, §2.2;
//   * time-averaged utilization — granted bytes over capacity x horizon
//                             (the physical ratio in [0, 1] plotted by our
//                             Fig. 4 bench alongside the paper's variant);
//   * #guaranteed           — accepted requests whose granted rate meets
//                             max(f * MaxRate, MinRate), §2.3;
//   * stretch               — achieved transfer time over the fastest
//                             possible (vol / MaxRate), a grid-application
//                             view of how much the tuning factor buys.

#pragma once

#include <span>
#include <vector>

#include "core/network.hpp"
#include "core/request.hpp"
#include "core/schedule.hpp"
#include "util/stats.hpp"

namespace gridbw::metrics {

/// accepted / total over the request set (0 when empty).
[[nodiscard]] double accept_rate(std::span<const Request> requests,
                                 const Schedule& schedule);

/// The paper's RESOURCE-UTIL: sum of granted bandwidth over half the
/// scaled capacities, where a port's scaled capacity is
/// min(capacity, total bandwidth requested at that port) — ports with no
/// demand contribute nothing.
[[nodiscard]] double resource_util_paper(const Network& network,
                                         std::span<const Request> requests,
                                         const Schedule& schedule);

/// Granted volume over (horizon x total capacity / 2), the physical
/// network-occupancy ratio in [0, 1]. The horizon is [first release,
/// last deadline] of the request set.
[[nodiscard]] double utilization_time_averaged(const Network& network,
                                               std::span<const Request> requests,
                                               const Schedule& schedule);

/// Same ratio restricted to the observation window [t0, t1): the bandwidth
/// each accepted transfer holds inside the window, over capacity. This is
/// the utilization the Fig. 4 bench plots — a handful of day-long transfer
/// tails would otherwise stretch the averaging span far beyond the arrival
/// horizon and dilute the ratio.
[[nodiscard]] double utilization_over(const Network& network,
                                      std::span<const Request> requests,
                                      const Schedule& schedule, TimePoint t0,
                                      TimePoint t1);

/// #guaranteed of §2.3: accepted requests with
/// bw(r) >= max(f * MaxRate(r), MinRate(r)) (within tolerance).
[[nodiscard]] std::size_t guaranteed_count(std::span<const Request> requests,
                                           const Schedule& schedule, double f);

/// Distribution of stretch = (tau - sigma) / (vol / MaxRate) over accepted
/// requests. 1 = served at full host rate.
[[nodiscard]] RunningStats stretch_stats(std::span<const Request> requests,
                                         const Schedule& schedule);

/// Distribution of (sigma - t_s): how long accepted requests waited beyond
/// their arrival (interval-based heuristics trade this for accept rate).
[[nodiscard]] RunningStats start_delay_stats(std::span<const Request> requests,
                                             const Schedule& schedule);

/// Jain's fairness index (sum x)^2 / (n * sum x^2) over non-negative
/// values: 1 = perfectly even, 1/n = one value holds everything. Returns 1
/// for all-zero input (exactly equal shares) and 0 for empty input (no
/// shares to be fair about).
[[nodiscard]] double jain_fairness(std::span<const double> values);

/// Granted bytes carried by each ingress / egress port under the schedule
/// (the hot-spot studies measure fairness over these).
[[nodiscard]] std::vector<Volume> granted_per_ingress(const Network& network,
                                                      std::span<const Request> requests,
                                                      const Schedule& schedule);
[[nodiscard]] std::vector<Volume> granted_per_egress(const Network& network,
                                                     std::span<const Request> requests,
                                                     const Schedule& schedule);

}  // namespace gridbw::metrics
