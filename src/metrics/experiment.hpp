// gridbw/metrics/experiment.hpp
//
// Replicated Monte-Carlo experiment harness. A run maps a replication index
// to a bag of named metric values; the harness derives an independent RNG
// stream per replication (bit-identical whether executed serially or on the
// thread pool) and aggregates each metric into RunningStats with confidence
// intervals. Every figure bench is a thin loop over sweep points calling
// `run_replicated`.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace gridbw::metrics {

/// One replication's output: metric name -> value.
using MetricBag = std::map<std::string, double>;

/// Body of one replication. The Rng is already seeded for this replication.
using ReplicationFn = std::function<MetricBag(Rng& rng, std::size_t replication)>;

struct ExperimentConfig {
  std::size_t replications{8};
  std::uint64_t base_seed{0x9E3779B97F4A7C15ULL};
  /// Worker threads: 0 = hardware concurrency; 1 = run serially in-place.
  std::size_t threads{0};
};

/// Aggregated per-metric statistics across replications.
using MetricStats = std::map<std::string, RunningStats>;

/// Runs `body` for each replication and merges the metric bags. Metric
/// names may differ between replications (missing values simply contribute
/// nothing to that metric's stats). Exceptions from any replication
/// propagate after all workers finish.
[[nodiscard]] MetricStats run_replicated(const ExperimentConfig& config,
                                         const ReplicationFn& body);

/// Body of one (replication, task) cell of a tasked experiment. The Rng is
/// seeded from the *replication* only, so every task of a replication sees
/// the identical stream (a bench comparing heuristics regenerates the same
/// workload in each task's cell).
using TaskFn =
    std::function<MetricBag(Rng& rng, std::size_t replication, std::size_t task)>;

/// Result of `run_replicated_tasks`: merged metric statistics plus the
/// wall-clock seconds each task's body took, aggregated across replications
/// (the timing columns of the bench tables and the BENCH_*.json files).
struct TaskedStats {
  MetricStats metrics;
  std::vector<RunningStats> task_wall_seconds;  // indexed by task
};

/// Fans the full (replication x task) grid out over the thread pool — one
/// cell per work item, so independent heuristics of the same replication run
/// concurrently — and merges results in (replication, task) order so the
/// aggregation is bit-identical to a serial run.
[[nodiscard]] TaskedStats run_replicated_tasks(const ExperimentConfig& config,
                                               std::size_t task_count,
                                               const TaskFn& body);

/// Convenience accessor that throws if `name` is absent (typo guard in
/// benches).
[[nodiscard]] const RunningStats& metric(const MetricStats& stats,
                                         const std::string& name);

}  // namespace gridbw::metrics
