#include "metrics/experiment.hpp"

#include <mutex>
#include <stdexcept>
#include <vector>

namespace gridbw::metrics {

MetricStats run_replicated(const ExperimentConfig& config, const ReplicationFn& body) {
  if (config.replications == 0) {
    throw std::invalid_argument{"run_replicated: need at least one replication"};
  }

  std::vector<MetricBag> bags(config.replications);
  auto one = [&](std::size_t rep) {
    Rng rng{derive_stream(config.base_seed, rep)};
    bags[rep] = body(rng, rep);
  };

  if (config.threads == 1 || config.replications == 1) {
    serial_for_index(config.replications, one);
  } else {
    ThreadPool pool{config.threads};
    parallel_for_index(pool, config.replications, one);
  }

  // Merge in replication order so the aggregation is deterministic.
  MetricStats stats;
  for (const MetricBag& bag : bags) {
    for (const auto& [name, value] : bag) stats[name].add(value);
  }
  return stats;
}

const RunningStats& metric(const MetricStats& stats, const std::string& name) {
  const auto it = stats.find(name);
  if (it == stats.end()) {
    throw std::out_of_range{"metric: no metric named '" + name + "'"};
  }
  return it->second;
}

}  // namespace gridbw::metrics
