#include "metrics/experiment.hpp"

#include <chrono>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace gridbw::metrics {

MetricStats run_replicated(const ExperimentConfig& config, const ReplicationFn& body) {
  if (config.replications == 0) {
    throw std::invalid_argument{"run_replicated: need at least one replication"};
  }

  std::vector<MetricBag> bags(config.replications);
  auto one = [&](std::size_t rep) {
    Rng rng{derive_stream(config.base_seed, rep)};
    bags[rep] = body(rng, rep);
  };

  if (config.threads == 1 || config.replications == 1) {
    serial_for_index(config.replications, one);
  } else {
    ThreadPool pool{config.threads};
    parallel_for_index(pool, config.replications, one);
  }

  // Merge in replication order so the aggregation is deterministic.
  MetricStats stats;
  for (const MetricBag& bag : bags) {
    for (const auto& [name, value] : bag) stats[name].add(value);
  }
  return stats;
}

TaskedStats run_replicated_tasks(const ExperimentConfig& config,
                                 std::size_t task_count, const TaskFn& body) {
  if (config.replications == 0) {
    throw std::invalid_argument{"run_replicated_tasks: need at least one replication"};
  }
  if (task_count == 0) {
    throw std::invalid_argument{"run_replicated_tasks: need at least one task"};
  }

  const std::size_t cells = config.replications * task_count;
  std::vector<MetricBag> bags(cells);
  std::vector<double> wall(cells, 0.0);
  auto one = [&](std::size_t cell) {
    const std::size_t rep = cell / task_count;
    const std::size_t task = cell % task_count;
    Rng rng{derive_stream(config.base_seed, rep)};
    // Wall-clock here measures the machine, not simulated time — the per-
    // heuristic timing tables. This file is the one wall-clock allowance
    // outside src/obs/ (tools/gridbw_analyze); results stay deterministic
    // because timing never feeds back into scheduling decisions.
    const auto t0 = std::chrono::steady_clock::now();
    bags[cell] = body(rng, rep, task);
    const auto t1 = std::chrono::steady_clock::now();
    wall[cell] = std::chrono::duration<double>(t1 - t0).count();
  };

  if (config.threads == 1 || cells == 1) {
    serial_for_index(cells, one);
  } else {
    ThreadPool pool{config.threads};
    parallel_for_index(pool, cells, one);
  }

  // Merge in (replication, task) order so the aggregation is deterministic.
  TaskedStats out;
  out.task_wall_seconds.resize(task_count);
  for (std::size_t cell = 0; cell < cells; ++cell) {
    for (const auto& [name, value] : bags[cell]) out.metrics[name].add(value);
    out.task_wall_seconds[cell % task_count].add(wall[cell]);
  }
  return out;
}

const RunningStats& metric(const MetricStats& stats, const std::string& name) {
  const auto it = stats.find(name);
  if (it == stats.end()) {
    throw std::out_of_range{"metric: no metric named '" + name + "'"};
  }
  return it->second;
}

}  // namespace gridbw::metrics
