#include "longlived/longlived.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "flow/maxflow.hpp"

namespace gridbw::longlived {

LongLivedResult schedule_uniform_optimal(const Network& network,
                                         std::span<const LongLivedRequest> requests,
                                         Bandwidth b) {
  if (!b.is_positive() || !b.is_finite()) {
    throw std::invalid_argument{"schedule_uniform_optimal: rate must be positive"};
  }
  for (const LongLivedRequest& r : requests) {
    if (!approx_eq(r.rate.to_bytes_per_second(), b.to_bytes_per_second())) {
      throw std::invalid_argument{
          "schedule_uniform_optimal: non-uniform request rate for " +
          std::to_string(r.id)};
    }
  }

  // Node layout: 0 = source, 1..M = ingress, M+1..M+N = egress, last = sink.
  const std::size_t m = network.ingress_count();
  const std::size_t n = network.egress_count();
  flow::MaxFlowGraph graph{m + n + 2};
  const flow::NodeId source = 0;
  const flow::NodeId sink = m + n + 1;
  auto ingress_node = [&](IngressId i) { return 1 + i.value; };
  auto egress_node = [&](EgressId e) { return 1 + m + e.value; };

  for (std::size_t i = 0; i < m; ++i) {
    const auto slots = static_cast<std::int64_t>(
        std::floor(network.ingress_capacity(IngressId{i}) / b + 1e-9));
    (void)graph.add_edge(source, ingress_node(IngressId{i}), slots);
  }
  for (std::size_t e = 0; e < n; ++e) {
    const auto slots = static_cast<std::int64_t>(
        std::floor(network.egress_capacity(EgressId{e}) / b + 1e-9));
    (void)graph.add_edge(egress_node(EgressId{e}), sink, slots);
  }
  std::vector<std::size_t> request_edges;
  request_edges.reserve(requests.size());
  for (const LongLivedRequest& r : requests) {
    request_edges.push_back(
        graph.add_edge(ingress_node(r.ingress), egress_node(r.egress), 1));
  }

  (void)graph.max_flow(source, sink);

  LongLivedResult result;
  for (std::size_t k = 0; k < requests.size(); ++k) {
    if (graph.flow_on(request_edges[k]) > 0) {
      result.accepted.push_back(requests[k].id);
    } else {
      result.rejected.push_back(requests[k].id);
    }
  }
  return result;
}

LongLivedResult schedule_greedy(const Network& network,
                                std::span<const LongLivedRequest> requests) {
  std::vector<Bandwidth> in_used(network.ingress_count(), Bandwidth::zero());
  std::vector<Bandwidth> out_used(network.egress_count(), Bandwidth::zero());
  LongLivedResult result;
  for (const LongLivedRequest& r : requests) {
    if (!r.rate.is_positive()) {
      throw std::invalid_argument{"schedule_greedy: non-positive rate"};
    }
    const bool fits =
        approx_le(in_used.at(r.ingress.value) + r.rate,
                  network.ingress_capacity(r.ingress)) &&
        approx_le(out_used.at(r.egress.value) + r.rate,
                  network.egress_capacity(r.egress));
    if (fits) {
      in_used[r.ingress.value] += r.rate;
      out_used[r.egress.value] += r.rate;
      result.accepted.push_back(r.id);
    } else {
      result.rejected.push_back(r.id);
    }
  }
  return result;
}

std::size_t optimal_bruteforce(const Network& network,
                               std::span<const LongLivedRequest> requests) {
  std::vector<double> in_used(network.ingress_count(), 0.0);
  std::vector<double> out_used(network.egress_count(), 0.0);
  std::size_t best = 0;

  auto dfs = [&](auto&& self, std::size_t k, std::size_t accepted) -> void {
    if (accepted + (requests.size() - k) <= best) return;
    if (k == requests.size()) {
      best = std::max(best, accepted);
      return;
    }
    const LongLivedRequest& r = requests[k];
    const double rate = r.rate.to_bytes_per_second();
    const double cap_in = network.ingress_capacity(r.ingress).to_bytes_per_second();
    const double cap_out = network.egress_capacity(r.egress).to_bytes_per_second();
    if (in_used[r.ingress.value] + rate <= cap_in + 1.0 &&
        out_used[r.egress.value] + rate <= cap_out + 1.0) {
      in_used[r.ingress.value] += rate;
      out_used[r.egress.value] += rate;
      self(self, k + 1, accepted + 1);
      in_used[r.ingress.value] -= rate;
      out_used[r.egress.value] -= rate;
    }
    self(self, k + 1, accepted);
  };
  dfs(dfs, 0, 0);
  return best;
}

bool is_feasible(const Network& network, std::span<const LongLivedRequest> requests,
                 std::span<const RequestId> accepted) {
  std::unordered_map<RequestId, const LongLivedRequest*> by_id;
  for (const LongLivedRequest& r : requests) by_id.emplace(r.id, &r);
  std::unordered_set<RequestId> seen;

  std::vector<Bandwidth> in_used(network.ingress_count(), Bandwidth::zero());
  std::vector<Bandwidth> out_used(network.egress_count(), Bandwidth::zero());
  for (const RequestId id : accepted) {
    const auto it = by_id.find(id);
    if (it == by_id.end()) return false;        // unknown request
    if (!seen.insert(id).second) return false;  // duplicate
    in_used.at(it->second->ingress.value) += it->second->rate;
    out_used.at(it->second->egress.value) += it->second->rate;
  }
  for (std::size_t i = 0; i < in_used.size(); ++i) {
    if (!approx_le(in_used[i], network.ingress_capacity(IngressId{i}))) return false;
  }
  for (std::size_t e = 0; e < out_used.size(); ++e) {
    if (!approx_le(out_used[e], network.egress_capacity(EgressId{e}))) return false;
  }
  return true;
}

}  // namespace gridbw::longlived
