// gridbw/longlived/longlived.hpp
//
// The companion problem of §2.1 and §3: *long-lived* requests — indefinite
// flows between grid users, each demanding a constant rate forever. The
// paper (citing its refs [13, 14]) notes that scheduling long-lived
// requests is NP-hard in general, but the *uniform* case (bw(r) = b for all
// r) is polynomial. This module implements:
//
//  * the uniform optimal scheduler — the problem reduces to a maximum
//    degree-constrained bipartite subgraph: ingress i can carry
//    floor(B_in(i)/b) uniform flows, egress e floor(B_out(e)/b); requests
//    are edges; maximize the number selected. Solved exactly by max-flow
//    (Dinic, src/flow);
//  * a FCFS greedy baseline for uniform and non-uniform rates (the online
//    strategy a deployment would run);
//  * an exhaustive optimum for tiny non-uniform instances (test anchor).

#pragma once

#include <span>
#include <vector>

#include "core/ids.hpp"
#include "core/network.hpp"
#include "util/quantity.hpp"

namespace gridbw::longlived {

/// An indefinite flow demand.
struct LongLivedRequest {
  RequestId id{0};
  IngressId ingress{};
  EgressId egress{};
  Bandwidth rate;
};

struct LongLivedResult {
  std::vector<RequestId> accepted;
  std::vector<RequestId> rejected;

  [[nodiscard]] std::size_t accepted_count() const { return accepted.size(); }
  [[nodiscard]] double accept_rate() const {
    const std::size_t total = accepted.size() + rejected.size();
    return total == 0 ? 0.0
                      : static_cast<double>(accepted.size()) /
                            static_cast<double>(total);
  }
};

/// Optimal MAX-REQUESTS for uniform long-lived requests: all requests must
/// share one common rate `b` (throws otherwise). Polynomial (max-flow).
[[nodiscard]] LongLivedResult schedule_uniform_optimal(
    const Network& network, std::span<const LongLivedRequest> requests, Bandwidth b);

/// FCFS greedy: accept each request (in the given order) iff both its ports
/// still have headroom. Works for arbitrary rates.
[[nodiscard]] LongLivedResult schedule_greedy(const Network& network,
                                              std::span<const LongLivedRequest> requests);

/// Exhaustive optimum for arbitrary rates (exponential; tests only).
[[nodiscard]] std::size_t optimal_bruteforce(const Network& network,
                                             std::span<const LongLivedRequest> requests);

/// Checks that `accepted` (ids into `requests`) respects both port
/// capacities. Used by tests as the independent validator.
[[nodiscard]] bool is_feasible(const Network& network,
                               std::span<const LongLivedRequest> requests,
                               std::span<const RequestId> accepted);

}  // namespace gridbw::longlived
