#include "exact/bnb.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <vector>

#include "core/ledger.hpp"

namespace gridbw::exact {
namespace {

/// Shared DFS driver: each request has a list of candidate (start, bw)
/// placements; branch over "reject" plus every feasible placement.
struct Placement {
  TimePoint start;
  Bandwidth bw;
};

struct SearchState {
  const Network* network;
  const std::vector<Request>* requests;
  const std::vector<std::vector<Placement>>* placements;
  std::size_t max_nodes;

  NetworkLedger ledger;
  std::vector<std::optional<Placement>> chosen;
  std::size_t accepted{0};

  std::size_t best_accepted{0};
  std::vector<std::optional<Placement>> best_chosen;
  std::size_t nodes{0};
  bool budget_exhausted{false};

  explicit SearchState(const Network& net) : network{&net}, ledger{net} {}

  void record_if_best() {
    if (accepted > best_accepted) {
      best_accepted = accepted;
      best_chosen = chosen;
    }
  }

  void dfs(std::size_t k) {
    if (budget_exhausted) return;
    if (++nodes > max_nodes) {
      budget_exhausted = true;
      return;
    }
    const std::size_t total = requests->size();
    if (k == total) {
      record_if_best();
      return;
    }
    // Bound: even accepting everything left cannot beat the incumbent.
    if (accepted + (total - k) <= best_accepted) return;

    const Request& r = (*requests)[k];

    // Branch 1..m: accept at each feasible placement (try acceptance first —
    // deeper accepted counts tighten the bound sooner).
    for (const Placement& p : (*placements)[k]) {
      const TimePoint end = p.start + r.volume / p.bw;
      if (!ledger.fits(r.ingress, r.egress, p.start, end, p.bw)) continue;
      ledger.reserve(r.ingress, r.egress, p.start, end, p.bw);
      chosen[k] = p;
      ++accepted;
      dfs(k + 1);
      --accepted;
      chosen[k] = std::nullopt;
      ledger.release(r.ingress, r.egress, p.start, end, p.bw);
      if (budget_exhausted) return;
    }

    // Branch 0: reject.
    dfs(k + 1);
  }
};

ExactResult run_search(const Network& network, std::vector<Request> requests,
                       std::vector<std::vector<Placement>> placements,
                       const ExactOptions& options) {
  SearchState state{network};
  state.requests = &requests;
  state.placements = &placements;
  state.max_nodes = options.max_nodes;
  state.chosen.assign(requests.size(), std::nullopt);
  state.best_chosen.assign(requests.size(), std::nullopt);

  state.dfs(0);
  state.record_if_best();

  ExactResult out;
  out.proven_optimal = !state.budget_exhausted;
  out.nodes_expanded = state.nodes;
  for (std::size_t k = 0; k < requests.size(); ++k) {
    if (state.best_chosen[k].has_value()) {
      out.result.schedule.accept(requests[k].id, state.best_chosen[k]->start,
                                 state.best_chosen[k]->bw);
    } else {
      out.result.rejected.push_back(requests[k].id);
    }
  }
  return out;
}

}  // namespace

ExactResult solve_rigid_optimal(const Network& network,
                                std::span<const Request> requests,
                                ExactOptions options) {
  std::vector<Request> order{requests.begin(), requests.end()};
  // Heuristic ordering: tight (high-rate) requests first makes conflicts
  // surface near the root, improving pruning.
  std::sort(order.begin(), order.end(), [](const Request& a, const Request& b) {
    if (a.min_rate() != b.min_rate()) return a.min_rate() > b.min_rate();
    return a.id < b.id;
  });
  std::vector<std::vector<Placement>> placements(order.size());
  for (std::size_t k = 0; k < order.size(); ++k) {
    const Request& r = order[k];
    if (approx_le(r.min_rate(), r.max_rate)) {
      placements[k].push_back(Placement{r.release, r.min_rate()});
    }
  }
  return run_search(network, std::move(order), std::move(placements), options);
}

ExactResult solve_flexible_optimal(const Network& network,
                                   std::span<const Request> requests, Duration step,
                                   ExactOptions options) {
  if (!step.is_positive()) {
    throw std::invalid_argument{"solve_flexible_optimal: step must be positive"};
  }
  std::vector<Request> order{requests.begin(), requests.end()};
  std::sort(order.begin(), order.end(), [](const Request& a, const Request& b) {
    if (a.window() != b.window()) return a.window() < b.window();  // tight first
    return a.id < b.id;
  });
  std::vector<std::vector<Placement>> placements(order.size());
  for (std::size_t k = 0; k < order.size(); ++k) {
    const Request& r = order[k];
    const Duration duration = r.volume / r.max_rate;
    for (TimePoint start = r.release; approx_le(start + duration, r.deadline);
         start += step) {
      placements[k].push_back(Placement{start, r.max_rate});
    }
  }
  return run_search(network, std::move(order), std::move(placements), options);
}

}  // namespace gridbw::exact
