// gridbw/exact/single_pair.hpp
//
// The polynomial special case noted under Theorem 1: "if the platform
// reduces to a single ingress-egress pair, the problem is polynomial (a
// greedy algorithm is optimal)."
//
// Setting: uniform unit requests (bw = MinRate = MaxRate = 1 unit) with
// unit transfer time on a single ingress-egress pair whose bottleneck
// admits `capacity` concurrent requests. Time is slotted; request r may run
// in any slot within [t_s, t_f). The EDF greedy — scan slots in order, fill
// each with the up-to-`capacity` available requests of earliest deadline —
// maximizes the number of accepted requests (exchange argument; tests
// verify against the exhaustive solver).

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/schedule.hpp"

namespace gridbw::exact {

/// A unit job: may be scheduled in exactly one integer slot s with
/// release <= s < deadline.
struct UnitJob {
  RequestId id{0};
  std::int64_t release{0};
  std::int64_t deadline{0};  // exclusive
};

struct SinglePairResult {
  /// job ids -> assigned slot, for accepted jobs.
  std::vector<std::pair<RequestId, std::int64_t>> assigned;
  std::vector<RequestId> rejected;

  [[nodiscard]] std::size_t accepted_count() const { return assigned.size(); }
};

/// EDF greedy over slots; optimal for this special case. `capacity` is the
/// number of unit requests the pair sustains concurrently (>= 1).
[[nodiscard]] SinglePairResult schedule_single_pair_edf(std::span<const UnitJob> jobs,
                                                        std::size_t capacity);

/// Exhaustive optimum (exponential) for cross-checking EDF in tests.
[[nodiscard]] std::size_t single_pair_optimal_bruteforce(std::span<const UnitJob> jobs,
                                                         std::size_t capacity);

}  // namespace gridbw::exact
