// gridbw/exact/bnb.hpp
//
// Exact MAX-REQUESTS solvers by branch-and-bound. Exponential — intended
// for the optimality-gap studies on small instances (tens of requests), as
// anchors for the polynomial heuristics. Both solvers report whether the
// search completed (proven optimal) or hit the node budget (best found so
// far, a valid lower bound).

#pragma once

#include <span>

#include "core/network.hpp"
#include "core/request.hpp"
#include "core/schedule.hpp"
#include "util/quantity.hpp"

namespace gridbw::exact {

struct ExactOptions {
  /// Search-node budget; the solver stops (without optimality proof) after
  /// expanding this many nodes.
  std::size_t max_nodes{5'000'000};
};

struct ExactResult {
  ScheduleResult result;
  bool proven_optimal{false};
  std::size_t nodes_expanded{0};
};

/// Optimal accept count for RIGID requests: every request either occupies
/// bw = MinRate over its full window [t_s, t_f], or is rejected.
[[nodiscard]] ExactResult solve_rigid_optimal(const Network& network,
                                              std::span<const Request> requests,
                                              ExactOptions options = {});

/// Optimal accept count for fixed-rate requests with FLEXIBLE start times:
/// each request transmits at MaxRate (duration vol/MaxRate) and may start at
/// t_s + k*step for any integer k >= 0 such that it still meets its
/// deadline. This is the setting of the paper's NP-completeness theorem
/// (uniform unit-rate requests, integer windows) generalized to arbitrary
/// rates. Throws if `step` is not positive.
[[nodiscard]] ExactResult solve_flexible_optimal(const Network& network,
                                                 std::span<const Request> requests,
                                                 Duration step,
                                                 ExactOptions options = {});

}  // namespace gridbw::exact
