// gridbw/exact/threedm.hpp
//
// Executable companion to Theorem 1 (MAX-REQUESTS-DEC is NP-complete by
// reduction from 3-Dimensional Matching). This module:
//
//  * represents 3-DM instances and solves small ones by brute force;
//  * builds the paper's reduction: a 3-DM instance over sets of size n with
//    triple set T becomes a platform with n+1 ingress / n+1 egress points
//    (regular ports of capacity 1 unit, special ports of capacity n-1) and
//    |T| regular + 2n(n-1) special unit requests, with bound
//    K = n + 2n(n-1);
//  * maps certificates both ways: a 3-DM matching to a schedule accepting K
//    requests, and any schedule accepting K requests back to a matching.
//
// Tests drive random instances through both directions and through the
// exact flexible solver, validating the construction on real inputs.

#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/network.hpp"
#include "core/request.hpp"
#include "core/schedule.hpp"

namespace gridbw::exact {

/// A triple (x_i, y_j, z_k), 0-based coordinates in [0, n).
struct Triple {
  std::size_t x{0};
  std::size_t y{0};
  std::size_t z{0};
  friend constexpr auto operator<=>(const Triple&, const Triple&) = default;
};

struct ThreeDMInstance {
  std::size_t n{0};
  std::vector<Triple> triples;

  [[nodiscard]] bool is_valid() const;
};

/// Exhaustive search for a perfect matching (n disjoint triples). Returns
/// the triple indices, or nullopt when none exists. Exponential; n <= ~6.
[[nodiscard]] std::optional<std::vector<std::size_t>> solve_3dm_bruteforce(
    const ThreeDMInstance& instance);

/// The MAX-REQUESTS-DEC instance produced by the reduction.
struct ReducedInstance {
  Network network;
  std::vector<Request> requests;
  /// Acceptance bound K = n + 2n(n-1): the 3-DM instance has a matching iff
  /// some feasible schedule accepts at least K requests.
  std::size_t k_bound{0};
  /// requests[regular_offset + t] is the regular request of triple t.
  std::size_t regular_offset{0};
  std::size_t regular_count{0};
};

/// Builds the reduction. One bandwidth "unit" is mapped to 1 MB/s and one
/// time unit to 1 s (the construction is scale-free). Requires n >= 2.
[[nodiscard]] ReducedInstance reduce_3dm(const ThreeDMInstance& instance);

/// Forward certificate: turns a perfect matching into a feasible schedule
/// accepting exactly K requests (Theorem 1, "only if" direction).
[[nodiscard]] Schedule schedule_from_matching(const ReducedInstance& reduced,
                                              const ThreeDMInstance& instance,
                                              std::span<const std::size_t> matching);

/// Backward certificate: extracts a perfect matching from any schedule that
/// accepts >= K requests (Theorem 1, "if" direction). Returns nullopt if
/// the schedule accepts fewer than K requests.
[[nodiscard]] std::optional<std::vector<std::size_t>> matching_from_schedule(
    const ReducedInstance& reduced, const ThreeDMInstance& instance,
    const Schedule& schedule);

}  // namespace gridbw::exact
