#include "exact/threedm.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace gridbw::exact {
namespace {

// One bandwidth unit and one time unit of the abstract construction.
const Bandwidth kUnit = Bandwidth::megabytes_per_second(1);
const Duration kStep = Duration::seconds(1);

}  // namespace

bool ThreeDMInstance::is_valid() const {
  for (const Triple& t : triples) {
    if (t.x >= n || t.y >= n || t.z >= n) return false;
  }
  return true;
}

std::optional<std::vector<std::size_t>> solve_3dm_bruteforce(
    const ThreeDMInstance& instance) {
  if (!instance.is_valid()) {
    throw std::invalid_argument{"solve_3dm_bruteforce: invalid instance"};
  }
  const std::size_t n = instance.n;
  std::vector<std::size_t> chosen;
  std::vector<char> used_x(n, 0), used_y(n, 0), used_z(n, 0);

  // DFS over triples in index order; prune when the remaining triples
  // cannot complete the matching.
  std::optional<std::vector<std::size_t>> found;
  auto dfs = [&](auto&& self, std::size_t from) -> bool {
    if (chosen.size() == n) {
      found = chosen;
      return true;
    }
    if (from >= instance.triples.size()) return false;
    if (chosen.size() + (instance.triples.size() - from) < n) return false;
    // Take triples[from] if disjoint from the current partial matching.
    const Triple& t = instance.triples[from];
    if (!used_x[t.x] && !used_y[t.y] && !used_z[t.z]) {
      used_x[t.x] = used_y[t.y] = used_z[t.z] = 1;
      chosen.push_back(from);
      if (self(self, from + 1)) return true;
      chosen.pop_back();
      used_x[t.x] = used_y[t.y] = used_z[t.z] = 0;
    }
    return self(self, from + 1);
  };
  (void)dfs(dfs, 0);
  return found;
}

ReducedInstance reduce_3dm(const ThreeDMInstance& instance) {
  if (!instance.is_valid()) throw std::invalid_argument{"reduce_3dm: invalid instance"};
  const std::size_t n = instance.n;
  if (n < 2) throw std::invalid_argument{"reduce_3dm: need n >= 2"};

  // Ports 0..n-1 are regular (capacity 1 unit); port n is special
  // (capacity n-1 units) on both sides.
  std::vector<Bandwidth> ingress(n + 1, kUnit);
  std::vector<Bandwidth> egress(n + 1, kUnit);
  ingress[n] = kUnit * static_cast<double>(n - 1);
  egress[n] = kUnit * static_cast<double>(n - 1);

  ReducedInstance out{Network{std::move(ingress), std::move(egress)}, {}, 0, 0, 0};

  const Volume unit_volume = kUnit * kStep;  // transfers take one time unit
  RequestId id = 1;

  // Special requests first: n-1 from each regular ingress to the special
  // egress, n-1 from the special ingress to each regular egress, all with
  // flexible window [1, n+1] (start anywhere in {1, ..., n}).
  const TimePoint window_lo = TimePoint::at_seconds(1);
  const TimePoint window_hi = TimePoint::at_seconds(static_cast<double>(n + 1));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c + 1 < n; ++c) {
      out.requests.push_back(Request{id++, IngressId{i}, EgressId{n}, window_lo,
                                     window_hi, unit_volume, kUnit});
    }
  }
  for (std::size_t e = 0; e < n; ++e) {
    for (std::size_t c = 0; c + 1 < n; ++c) {
      out.requests.push_back(Request{id++, IngressId{n}, EgressId{e}, window_lo,
                                     window_hi, unit_volume, kUnit});
    }
  }

  // Regular requests: one per triple (x_i, y_j, z_k), rigid window [k, k+1]
  // (k is 1-based in the paper; our z is 0-based, hence z + 1).
  out.regular_offset = out.requests.size();
  out.regular_count = instance.triples.size();
  for (const Triple& t : instance.triples) {
    const auto start = TimePoint::at_seconds(static_cast<double>(t.z + 1));
    out.requests.push_back(Request{id++, IngressId{t.x}, EgressId{t.y}, start,
                                   start + kStep, unit_volume, kUnit});
  }

  out.k_bound = n + 2 * n * (n - 1);
  return out;
}

Schedule schedule_from_matching(const ReducedInstance& reduced,
                                const ThreeDMInstance& instance,
                                std::span<const std::size_t> matching) {
  const std::size_t n = instance.n;
  if (matching.size() != n) {
    throw std::invalid_argument{"schedule_from_matching: matching size != n"};
  }
  Schedule schedule;

  // step_of_ingress[i] = the (1-based) step at which regular ingress i is
  // used by the matching; likewise for egress. A perfect matching touches
  // every coordinate exactly once.
  std::vector<std::size_t> step_of_ingress(n, 0), step_of_egress(n, 0);
  for (std::size_t idx : matching) {
    const Triple& t = instance.triples.at(idx);
    const Request& regular = reduced.requests.at(reduced.regular_offset + idx);
    schedule.accept(regular.id, regular.release, regular.max_rate);
    step_of_ingress.at(t.x) = t.z + 1;
    step_of_egress.at(t.y) = t.z + 1;
  }

  // Special requests of regular ingress i run at every step except
  // step_of_ingress[i]; mirrored on the egress side. Each port has exactly
  // n-1 identical special requests and n-1 free steps.
  std::size_t cursor = 0;  // index into reduced.requests (specials first)
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t step = 1;
    for (std::size_t c = 0; c + 1 < n; ++c, ++cursor) {
      while (step == step_of_ingress[i]) ++step;
      const Request& r = reduced.requests.at(cursor);
      schedule.accept(r.id, TimePoint::at_seconds(static_cast<double>(step)), r.max_rate);
      ++step;
    }
  }
  for (std::size_t e = 0; e < n; ++e) {
    std::size_t step = 1;
    for (std::size_t c = 0; c + 1 < n; ++c, ++cursor) {
      while (step == step_of_egress[e]) ++step;
      const Request& r = reduced.requests.at(cursor);
      schedule.accept(r.id, TimePoint::at_seconds(static_cast<double>(step)), r.max_rate);
      ++step;
    }
  }
  return schedule;
}

std::optional<std::vector<std::size_t>> matching_from_schedule(
    const ReducedInstance& reduced, const ThreeDMInstance& instance,
    const Schedule& schedule) {
  if (schedule.accepted_count() < reduced.k_bound) return std::nullopt;

  // Theorem 1's counting argument: a schedule accepting K requests must
  // accept exactly one regular request per step, and those form a matching.
  std::vector<std::size_t> matching;
  for (std::size_t t = 0; t < reduced.regular_count; ++t) {
    const Request& regular = reduced.requests.at(reduced.regular_offset + t);
    if (schedule.is_accepted(regular.id)) matching.push_back(t);
  }
  if (matching.size() != instance.n) return std::nullopt;

  // Verify disjointness (the schedule's feasibility guarantees it; check
  // anyway so a buggy schedule cannot forge a certificate).
  std::vector<char> used_x(instance.n, 0), used_y(instance.n, 0), used_z(instance.n, 0);
  for (std::size_t idx : matching) {
    const Triple& tr = instance.triples.at(idx);
    if (used_x[tr.x] || used_y[tr.y] || used_z[tr.z]) return std::nullopt;
    used_x[tr.x] = used_y[tr.y] = used_z[tr.z] = 1;
  }
  return matching;
}

}  // namespace gridbw::exact
