#include "exact/single_pair.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <queue>
#include <stdexcept>
#include <vector>

namespace gridbw::exact {

SinglePairResult schedule_single_pair_edf(std::span<const UnitJob> jobs,
                                          std::size_t capacity) {
  if (capacity == 0) {
    throw std::invalid_argument{"schedule_single_pair_edf: capacity must be >= 1"};
  }
  for (const UnitJob& j : jobs) {
    if (j.deadline <= j.release) {
      throw std::invalid_argument{"schedule_single_pair_edf: empty window"};
    }
  }

  std::vector<UnitJob> by_release{jobs.begin(), jobs.end()};
  std::sort(by_release.begin(), by_release.end(), [](const UnitJob& a, const UnitJob& b) {
    if (a.release != b.release) return a.release < b.release;
    return a.id < b.id;
  });

  // Min-heap of available jobs keyed by (deadline, id).
  using Entry = std::pair<std::pair<std::int64_t, RequestId>, std::size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> available;

  SinglePairResult result;
  std::size_t next = 0;
  std::optional<std::int64_t> slot;

  while (next < by_release.size() || !available.empty()) {
    // Pick the slot to fill: one past the previous slot, but never before
    // the earliest pending work (skip idle gaps).
    std::int64_t s = slot.has_value() ? *slot + 1
                                      : by_release[next].release;
    if (available.empty() && next < by_release.size()) {
      s = std::max(s, by_release[next].release);
    }
    slot = s;

    // Admit newly released jobs.
    while (next < by_release.size() && by_release[next].release <= s) {
      const std::size_t k = next++;
      available.push(Entry{{by_release[k].deadline, by_release[k].id}, k});
    }
    // Expire jobs whose window closed before this slot.
    while (!available.empty() && available.top().first.first <= s) {
      result.rejected.push_back(by_release[available.top().second].id);
      available.pop();
    }
    // Fill the slot with the earliest-deadline jobs.
    for (std::size_t c = 0; c < capacity && !available.empty(); ++c) {
      result.assigned.emplace_back(by_release[available.top().second].id, s);
      available.pop();
    }
  }
  return result;
}

std::size_t single_pair_optimal_bruteforce(std::span<const UnitJob> jobs,
                                           std::size_t capacity) {
  if (capacity == 0) {
    throw std::invalid_argument{"single_pair_optimal_bruteforce: capacity must be >= 1"};
  }
  // DFS over jobs: reject, or place in any slot of the window with spare
  // capacity. Slot usage lives in a node-stable map: recursive calls insert
  // entries, so a vector's references would dangle on reallocation.
  std::vector<UnitJob> all{jobs.begin(), jobs.end()};
  std::map<std::int64_t, std::size_t> usage;

  std::size_t best = 0;
  auto dfs = [&](auto&& self, std::size_t k, std::size_t accepted) -> void {
    if (accepted + (all.size() - k) <= best) return;  // bound
    if (k == all.size()) {
      best = std::max(best, accepted);
      return;
    }
    const UnitJob& j = all[k];
    for (std::int64_t s = j.release; s < j.deadline; ++s) {
      std::size_t& used = usage[s];
      if (used < capacity) {
        ++used;
        self(self, k + 1, accepted + 1);
        --usage[s];
      }
    }
    self(self, k + 1, accepted);
  };
  dfs(dfs, 0, 0);
  return best;
}

}  // namespace gridbw::exact
