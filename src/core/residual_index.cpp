#include "core/residual_index.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace gridbw {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

}  // namespace

void ResidualIndex::rebuild(const TimelineProfile& profile) {
  profile.ensure_merged();
  const std::span<const double> times = profile.merged_times_view();
  const std::span<const double> values = profile.merged_values_view();
  times_.assign(times.begin(), times.end());
  size_ = times_.size();
  patches_ = 0;
  stale_ = false;
  scale_ = 1.0;
  if (size_ == 0) {
    tree_.clear();
    added_.clear();
    return;
  }
  tree_.assign(4 * size_, kNegInf);
  added_.assign(4 * size_, 0.0);
  build(1, 0, size_ - 1, values);
  for (const double v : values) scale_ = std::max(scale_, std::fabs(v));
}

void ResidualIndex::build(std::size_t node, std::size_t lo, std::size_t hi,
                          std::span<const double> values) {
  if (lo == hi) {
    tree_[node] = values[lo];
    return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  build(2 * node, lo, mid, values);
  build(2 * node + 1, mid + 1, hi, values);
  tree_[node] = std::max(tree_[2 * node], tree_[2 * node + 1]);
}

bool ResidualIndex::apply(TimePoint t0, TimePoint t1, double delta) {
  if (!(t0 < t1) || delta == 0.0) return fresh();  // TimelineProfile::add no-op
  if (stale_) return false;
  const auto locate = [this](double t) -> std::size_t {
    const auto it = std::lower_bound(times_.begin(), times_.end(), t);
    if (it == times_.end() || *it != t) return size_;
    return static_cast<std::size_t>(it - times_.begin());
  };
  const std::size_t l = locate(t0.to_seconds());
  const std::size_t r = locate(t1.to_seconds());
  if (l >= size_ || r >= size_) {
    // The interval introduces a breakpoint the snapshot has never seen;
    // patching would need an O(n) reshuffle, so go stale instead (nothing
    // was modified — the owner falls back to the profile until a rebuild).
    stale_ = true;
    return false;
  }
  // values[k] holds on [times[k], times[k+1]); the add covers k in [l, r).
  range_add(1, 0, size_ - 1, l, r - 1, delta);
  ++patches_;
  scale_ += std::fabs(delta);
  return true;
}

void ResidualIndex::range_add(std::size_t node, std::size_t lo, std::size_t hi,
                              std::size_t l, std::size_t r, double delta) {
  if (r < lo || hi < l) return;
  if (l <= lo && hi <= r) {
    tree_[node] += delta;
    added_[node] += delta;
    return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  range_add(2 * node, lo, mid, l, r, delta);
  range_add(2 * node + 1, mid + 1, hi, l, r, delta);
  tree_[node] = std::max(tree_[2 * node], tree_[2 * node + 1]) + added_[node];
}

double ResidualIndex::range_max(std::size_t node, std::size_t lo, std::size_t hi,
                                std::size_t l, std::size_t r) const {
  if (r < lo || hi < l) return kNegInf;
  if (l <= lo && hi <= r) return tree_[node];
  const std::size_t mid = lo + (hi - lo) / 2;
  const double best = std::max(range_max(2 * node, lo, mid, l, r),
                               range_max(2 * node + 1, mid + 1, hi, l, r));
  return best + added_[node];
}

double ResidualIndex::peak_over(TimePoint t0, TimePoint t1) const {
  if (!(t0 < t1) || size_ == 0) return 0.0;
  const double lo = t0.to_seconds();
  const double hi = t1.to_seconds();
  // Same window semantics as TimelineProfile::max_over: breakpoints strictly
  // inside (lo, hi) are indices [first, last), and the value holding at the
  // left edge is values[first - 1]. Folding the edge into one range query is
  // exact: max over a fixed set of doubles is order-independent selection,
  // and the outer max(0.0, ...) normalizes -0.0 identically on both sides.
  const std::size_t first = static_cast<std::size_t>(
      std::upper_bound(times_.begin(), times_.end(), lo) - times_.begin());
  const std::size_t last = static_cast<std::size_t>(
      std::lower_bound(times_.begin(), times_.end(), hi) - times_.begin());
  const std::size_t from = first == 0 ? 0 : first - 1;
  if (from >= last) return 0.0;
  return std::max(0.0, range_max(1, 0, size_ - 1, from, last - 1));
}

double ResidualIndex::error_bound() const {
  if (patches_ == 0) return 0.0;
  // Every patch contributes at most a handful of reassociated additions to
  // a query result; each addition errs by at most eps * |running value| and
  // running values are bounded by scale_. 2^-48 (= 16 * DBL_EPSILON) absorbs
  // the per-patch fan-out with a wide margin.
  return static_cast<double>(patches_ + 1) * scale_ * 0x1p-48;
}

}  // namespace gridbw
