#include "core/timeline_profile.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace gridbw {

void TimelineProfile::add(TimePoint t0, TimePoint t1, double delta) {
  if (!(t0 < t1) || delta == 0.0) return;
  pending_.push_back(Event{t0.to_seconds(), delta});
  pending_.push_back(Event{t1.to_seconds(), -delta});
}

void TimelineProfile::reserve(std::size_t interval_count) {
  pending_.reserve(pending_.size() + 2 * interval_count);
}

void TimelineProfile::ensure_merged() const { merge_pending(); }

void TimelineProfile::merge_pending() const {
  if (pending_.empty()) return;
  // Stable by time so that deltas landing on the same instant accumulate in
  // call order — the exact floating-point sums the delta map would produce.
  std::stable_sort(pending_.begin(), pending_.end(),
                   [](const Event& a, const Event& b) { return a.time < b.time; });

  std::vector<double> merged_times;
  std::vector<double> merged_deltas;
  merged_times.reserve(times_.size() + pending_.size());
  merged_deltas.reserve(times_.size() + pending_.size());

  // Two-pointer merge; at equal instants the existing combined delta comes
  // first, then pending deltas fold onto it left-to-right.
  std::size_t i = 0;  // over times_/deltas_
  std::size_t j = 0;  // over pending_
  while (i < times_.size() || j < pending_.size()) {
    const bool take_existing =
        j == pending_.size() ||
        (i < times_.size() && times_[i] <= pending_[j].time);
    double time, delta;
    if (take_existing) {
      time = times_[i];
      delta = deltas_[i];
      ++i;
    } else {
      time = pending_[j].time;
      delta = pending_[j].delta;
      ++j;
    }
    if (!merged_times.empty() && merged_times.back() == time) {
      merged_deltas.back() += delta;
    } else {
      merged_times.push_back(time);
      merged_deltas.push_back(delta);
    }
  }

  times_ = std::move(merged_times);
  deltas_ = std::move(merged_deltas);
  pending_.clear();
  rebuild_caches();
}

void TimelineProfile::rebuild_caches() const {
  values_.resize(times_.size());
  prefix_max_.resize(times_.size());
  double acc = 0.0;
  double best = -std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < times_.size(); ++k) {
    acc += deltas_[k];
    values_[k] = acc;
    best = std::max(best, acc);
    prefix_max_[k] = best;
  }
}

std::size_t TimelineProfile::upper_index(double t) const {
  return static_cast<std::size_t>(
      std::upper_bound(times_.begin(), times_.end(), t) - times_.begin());
}

// gridbw:hot
double TimelineProfile::value_at(TimePoint t) const {
  merge_pending();
  const std::size_t idx = upper_index(t.to_seconds());
  return idx == 0 ? 0.0 : values_[idx - 1];
}

// gridbw:hot
double TimelineProfile::max_over(TimePoint t0, TimePoint t1) const {
  if (!(t0 < t1)) return 0.0;
  merge_pending();
  const double lo = t0.to_seconds();
  const double hi = t1.to_seconds();
  // Breakpoints strictly inside (lo, hi): indices [first, last).
  const std::size_t first = upper_index(lo);
  const std::size_t last =
      static_cast<std::size_t>(std::lower_bound(times_.begin(), times_.end(), hi) -
                               times_.begin());
  double best = 0.0;
  if (first < last) {
    if (first == 0) {
      best = std::max(best, prefix_max_[last - 1]);  // O(1) left-anchored window
    } else {
      for (std::size_t k = first; k < last; ++k) best = std::max(best, values_[k]);
    }
  }
  // The value holding at the window's left edge counts too.
  best = std::max(best, first == 0 ? 0.0 : values_[first - 1]);
  return best;
}

// gridbw:hot
double TimelineProfile::global_max() const {
  merge_pending();
  if (times_.empty()) return 0.0;
  return std::max(0.0, prefix_max_.back());
}

// gridbw:hot
double TimelineProfile::integral(TimePoint t0, TimePoint t1) const {
  if (!(t0 < t1)) return 0.0;
  merge_pending();
  const double lo = t0.to_seconds();
  const double hi = t1.to_seconds();
  const std::size_t first = upper_index(lo);
  double acc = first == 0 ? 0.0 : values_[first - 1];
  double result = 0.0;
  double prev = lo;
  for (std::size_t k = first; k < times_.size(); ++k) {
    const double upto = std::min(times_[k], hi);
    if (upto > prev) {
      result += acc * (upto - prev);
      prev = upto;
    }
    if (times_[k] >= hi) return result;
    acc = values_[k];
  }
  if (hi > prev) result += acc * (hi - prev);
  return result;
}

std::vector<TimePoint> TimelineProfile::breakpoints() const {
  merge_pending();
  std::vector<TimePoint> points;
  points.reserve(times_.size());
  for (std::size_t k = 0; k < times_.size(); ++k) {
    if (deltas_[k] != 0.0) points.push_back(TimePoint::at_seconds(times_[k]));
  }
  return points;
}

std::size_t TimelineProfile::breakpoint_count() const {
  merge_pending();
  return times_.size();
}

std::span<const double> TimelineProfile::merged_times_view() const {
  merge_pending();
  return {times_.data(), times_.size()};
}

std::span<const double> TimelineProfile::merged_values_view() const {
  merge_pending();
  return {values_.data(), values_.size()};
}

void TimelineProfile::compact(double tolerance) {
  merge_pending();
  std::size_t kept = 0;
  for (std::size_t k = 0; k < times_.size(); ++k) {
    if (std::fabs(deltas_[k]) <= tolerance) continue;
    times_[kept] = times_[k];
    deltas_[kept] = deltas_[k];
    ++kept;
  }
  times_.resize(kept);
  deltas_.resize(kept);
  rebuild_caches();
}

std::size_t TimelineProfile::retirable_before(TimePoint horizon) const {
  merge_pending();
  const std::size_t cut = static_cast<std::size_t>(
      std::lower_bound(times_.begin(), times_.end(), horizon.to_seconds()) -
      times_.begin());
  // Folding always keeps one standing breakpoint, so a prefix of one (or
  // zero) retires nothing.
  return cut > 1 ? cut - 1 : 0;
}

std::size_t TimelineProfile::retire_before(TimePoint horizon) {
  merge_pending();
  const std::size_t cut = static_cast<std::size_t>(
      std::lower_bound(times_.begin(), times_.end(), horizon.to_seconds()) -
      times_.begin());
  if (cut <= 1) return 0;
  // The standing breakpoint keeps the last retired instant and carries the
  // prefix sum accumulated there. rebuild_caches() then re-folds starting
  // from exactly that double (0.0 + values_[cut-1] == values_[cut-1]), so
  // every retained prefix sum is recomputed through the same operations it
  // was originally built from — bit-identical post-horizon queries.
  times_[0] = times_[cut - 1];
  deltas_[0] = values_[cut - 1];
  times_.erase(times_.begin() + 1, times_.begin() + static_cast<std::ptrdiff_t>(cut));
  deltas_.erase(deltas_.begin() + 1, deltas_.begin() + static_cast<std::ptrdiff_t>(cut));
  rebuild_caches();
  return cut - 1;
}

}  // namespace gridbw
