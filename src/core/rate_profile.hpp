// gridbw/core/rate_profile.hpp
//
// Piecewise-constant per-request rate profiles (ISSUE 9 tentpole): the
// allocation form the malleable scheduler family emits. Where the paper's
// engines grant one constant bw(r) for the whole transfer, a RateProfile is
// a step function over the transfer's lifetime — the rate holds steady
// between reshape instants and jumps when the scheduler reshapes the flow
// (a departure freed capacity, or a newcomer claimed its guarantee).
//
// Representation: a sorted vector of (from, rate) steps plus an explicit
// end instant. Step i is active over [steps[i].from, steps[i+1].from); the
// last step runs to end(). The carried volume is the exact step-function
// integral, accumulated left to right so two identical profiles always
// produce bit-identical sums.
//
// The constant allocation stays the specialized fast path everywhere: an
// Assignment with an *empty* profile means "constant bw over
// [start, start + vol/bw)" and takes exactly the pre-profile code paths
// (core/schedule.hpp). A well-formed RateProfile is never empty.

#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/quantity.hpp"

namespace gridbw {

/// One step of a piecewise-constant rate profile: `rate` holds from `from`
/// until the next step's `from` (or the profile's end).
struct RateStep {
  TimePoint from;
  Bandwidth rate;

  friend constexpr bool operator==(RateStep a, RateStep b) = default;
};

class RateProfile {
 public:
  RateProfile() = default;

  /// A single-step (constant) profile over [start, end).
  [[nodiscard]] static RateProfile constant(TimePoint start, TimePoint end,
                                            Bandwidth rate);

  /// Appends a step. Steps must be appended in strictly increasing `from`
  /// order; appending a step whose rate equals the previous step's rate is
  /// coalesced away (the function is unchanged). Appending at the current
  /// last step's exact `from` overwrites that step's rate instead (two
  /// reshapes at one instant collapse to the final rate).
  void append(TimePoint from, Bandwidth rate);

  /// Closes the profile: the last step runs to `end`.
  void set_end(TimePoint end) { end_ = end; }

  [[nodiscard]] bool empty() const { return steps_.empty(); }
  [[nodiscard]] std::size_t size() const { return steps_.size(); }
  [[nodiscard]] std::span<const RateStep> steps() const { return steps_; }
  [[nodiscard]] TimePoint start() const { return steps_.front().from; }
  [[nodiscard]] TimePoint end() const { return end_; }

  /// The rate active at `t` (zero outside [start, end)).
  [[nodiscard]] Bandwidth rate_at(TimePoint t) const;

  /// Largest step rate (the profile's bw ceiling) and smallest step rate
  /// (the malleability floor — must stay >= the admission guarantee).
  [[nodiscard]] Bandwidth peak_rate() const;
  [[nodiscard]] Bandwidth min_rate() const;

  /// Exact step-function integral: the volume the profile carries.
  [[nodiscard]] Volume carried() const;

  /// First well-formedness defect, or nullopt for a valid profile. Checks:
  /// at least one step, first step at `expected_start`, strictly increasing
  /// step instants, end after the last step, every rate positive and
  /// finite. Used by Schedule::accept_profile (throws) and the validator
  /// (flags kProfileMalformed).
  [[nodiscard]] std::optional<std::string> defect(TimePoint expected_start) const;

  friend bool operator==(const RateProfile& a, const RateProfile& b) = default;

 private:
  std::vector<RateStep> steps_;
  TimePoint end_;
};

}  // namespace gridbw
