// gridbw/core/timeline_profile.hpp
//
// Flat, cache-friendly drop-in for StepFunction: the same piecewise-constant
// right-continuous port-load profile, stored as sorted breakpoint/delta
// vectors (SoA) with lazily rebuilt prefix-sum and prefix-max caches instead
// of a std::map of deltas.
//
//  * `add` is O(1): it appends to a pending buffer. The buffer is merged
//    into the sorted arrays on the first query after a batch of adds
//    (stable sort of the pending events + one linear merge), so bulk
//    construction — the validator, dataplane replay, BOOK-AHEAD probes —
//    costs O(n log n) once instead of O(n log n) map-node allocations.
//  * `value_at` is O(log n): binary search into the prefix-sum cache.
//  * `global_max` is O(1) off the prefix-max cache.
//  * `max_over` / `integral` are O(log n + w) where w is the number of
//    breakpoints inside the queried window (contiguous scans, no pointer
//    chasing); left-anchored max windows resolve O(log n) off the cache.
//
// Numerical contract: every query returns the bit-identical double that
// StepFunction would return for the same sequence of `add` calls. Deltas
// landing on the same instant accumulate in call order (exactly like the
// map's `operator+=`), prefix sums run left-to-right over the merged
// deltas (exactly like the map scans), and `integral` accumulates the same
// per-segment products in the same order. tests/timeline_profile_test.cpp
// differential-tests this with EXPECT_EQ on raw doubles.
//
// Thread safety: queries may trigger the lazy merge and therefore mutate
// internal caches even though they are declared `const`. A profile is safe
// to share across threads for read-only queries only once `ensure_merged()`
// (alias: `compile()`) has run and no further `add`/`compact` happens; two
// threads racing the first query on an unmerged profile is a data race that
// ThreadSanitizer reports (tests/tsan_stress_test.cpp exercises the merged
// path). The parallel validator materializes every port profile in a
// dedicated pre-pass before its query sweep shares them; distinct profiles
// are always independent.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/quantity.hpp"

namespace gridbw {

class TimelineProfile {
 public:
  /// Adds `delta` to the function over [t0, t1). No-op when t0 >= t1.
  /// O(1): buffered until the next query.
  void add(TimePoint t0, TimePoint t1, double delta);

  /// Pre-sizes the pending buffer for `interval_count` upcoming `add`s.
  void reserve(std::size_t interval_count);

  /// Merges the pending buffer into the sorted arrays now. Queries do this
  /// implicitly; call it explicitly before concurrent read-only access —
  /// after this returns (and until the next `add`/`compact`), every query is
  /// a pure read and any number of threads may query concurrently.
  void ensure_merged() const;

  /// Back-compatible alias for `ensure_merged()`.
  void compile() const { ensure_merged(); }

  /// True when no pending adds are buffered, i.e. queries are pure reads.
  [[nodiscard]] bool merged() const { return pending_.empty(); }

  /// Value at time t (right-continuous: the value on [t, next breakpoint)).
  [[nodiscard]] double value_at(TimePoint t) const;

  /// Maximum over the half-open interval [t0, t1). Returns 0 for an empty
  /// function or an empty interval.
  [[nodiscard]] double max_over(TimePoint t0, TimePoint t1) const;

  /// Maximum over the whole time axis.
  [[nodiscard]] double global_max() const;

  /// Integral over [t0, t1) (value x seconds).
  [[nodiscard]] double integral(TimePoint t0, TimePoint t1) const;

  /// Times at which the function changes value, in increasing order.
  [[nodiscard]] std::vector<TimePoint> breakpoints() const;

  /// Zero-copy views of the merged SoA arrays: breakpoint instants and the
  /// prefix-sum value holding on [times[k], times[k+1]). Merges pending
  /// first; the views are invalidated by the next `add`/`compact`. These
  /// exist so ResidualIndex can snapshot the arrays without a per-element
  /// copy through TimePoint wrappers.
  [[nodiscard]] std::span<const double> merged_times_view() const;
  [[nodiscard]] std::span<const double> merged_values_view() const;

  [[nodiscard]] bool empty() const { return times_.empty() && pending_.empty(); }

  /// Number of stored breakpoints (including delta-cancelled ones that
  /// `compact` has not yet dropped). Merges pending first.
  [[nodiscard]] std::size_t breakpoint_count() const;

  /// Removes breakpoints whose accumulated delta has cancelled to ~0 (after
  /// many add/release pairs). Values within `tolerance` of zero are dropped
  /// and the caches are rebuilt.
  void compact(double tolerance = 1e-9);

  /// Retired-breakpoint garbage collector: folds every breakpoint strictly
  /// before `horizon` into one standing-load breakpoint (kept at the last
  /// retired instant, carrying the accumulated prefix value as its delta).
  /// Returns the number of breakpoints retired.
  ///
  /// Bit-identity contract: because `values_` is a left-to-right prefix sum,
  /// re-folding from the standing delta reproduces every retained prefix sum
  /// as the exact same double — so `value_at` / `max_over` / `integral` are
  /// bit-identical to the uncompacted profile for every window with
  /// t >= horizon, and stay so for any later `add` whose events all land at
  /// or after `horizon`. Callers must not add events strictly before a
  /// horizon they have retired (the churn layers enforce this by capping the
  /// watermark at the earliest live reservation start). Whole-axis queries
  /// (`global_max`, windows reaching before `horizon`) see the compacted
  /// standing load instead of the retired history.
  std::size_t retire_before(TimePoint horizon);

  /// Number of breakpoints `retire_before(horizon)` would retire, without
  /// mutating. O(log n); used by callers to amortize compaction.
  [[nodiscard]] std::size_t retirable_before(TimePoint horizon) const;

 private:
  struct Event {
    double time;
    double delta;
  };

  void merge_pending() const;
  void rebuild_caches() const;

  /// First index k with times_[k] > t, i.e. t's value is values_[k-1].
  [[nodiscard]] std::size_t upper_index(double t) const;

  // Unmerged add() events, in call order.
  mutable std::vector<Event> pending_;
  // SoA breakpoint storage, sorted by time, one entry per distinct instant.
  mutable std::vector<double> times_;
  mutable std::vector<double> deltas_;      // combined delta applied at times_[k]
  mutable std::vector<double> values_;      // prefix sum: value on [times_[k], times_[k+1])
  mutable std::vector<double> prefix_max_;  // running max of values_[0..k]
};

}  // namespace gridbw
