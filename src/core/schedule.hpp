// gridbw/core/schedule.hpp
//
// The output of every admission algorithm: which requests were accepted,
// and for each accepted request its assigned start time σ(r) and constant
// bandwidth bw(r). τ(r) = σ(r) + vol(r)/bw(r) is derived.

#pragma once

#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/ids.hpp"
#include "core/request.hpp"
#include "util/quantity.hpp"

namespace gridbw {

/// One accepted request's allocation.
struct Assignment {
  RequestId request{0};
  TimePoint start;  // σ(r)
  Bandwidth bw;     // bw(r)

  /// τ(r) given the request's volume.
  [[nodiscard]] TimePoint end(const Request& r) const { return start + r.volume / bw; }
};

class Schedule {
 public:
  Schedule() = default;

  /// Records an assignment. Throws if the request already has one.
  void accept(RequestId request, TimePoint start, Bandwidth bw);

  /// Withdraws an assignment (rigid *-SLOTS heuristics retro-remove
  /// requests that fail in a later interval). Returns false if absent.
  bool withdraw(RequestId request);

  [[nodiscard]] bool is_accepted(RequestId request) const;
  [[nodiscard]] std::optional<Assignment> assignment(RequestId request) const;

  [[nodiscard]] std::size_t accepted_count() const { return assignments_.size(); }
  [[nodiscard]] std::span<const Assignment> assignments() const { return assignments_; }

 private:
  std::vector<Assignment> assignments_;
  std::unordered_map<RequestId, std::size_t> index_;  // request -> position
};

/// The full outcome of a scheduling run over a request set.
struct ScheduleResult {
  Schedule schedule;
  std::vector<RequestId> rejected;

  [[nodiscard]] std::size_t accepted_count() const { return schedule.accepted_count(); }
  [[nodiscard]] std::size_t total_count() const {
    return schedule.accepted_count() + rejected.size();
  }
  [[nodiscard]] double accept_rate() const {
    const std::size_t total = total_count();
    return total == 0 ? 0.0 : static_cast<double>(accepted_count()) /
                                  static_cast<double>(total);
  }
};

}  // namespace gridbw
