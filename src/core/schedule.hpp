// gridbw/core/schedule.hpp
//
// The output of every admission algorithm: which requests were accepted,
// and for each accepted request its allocation. Two allocation forms:
//
//  * constant (the paper's model, and the fast path everywhere): a start
//    time σ(r) and one rate bw(r); τ(r) = σ(r) + vol(r)/bw(r) is derived.
//    `profile` is empty.
//  * profiled (ISSUE 9): a piecewise-constant RateProfile — the rate steps
//    at reshape instants. `bw` holds the profile's peak rate (the largest
//    instantaneous grant, checked against MaxRate), `start` its first step,
//    and τ(r) is the profile's explicit end. The profile's integral must
//    equal vol(r); the validator enforces this (kProfileVolumeMismatch).
//
// `for_each_segment` is the single charging helper every load-accounting
// layer (validator, gantt, utilization export, replay) funnels through: it
// emits exactly ONE segment for a constant assignment — the same (t0, t1,
// bw) the pre-profile code charged, so constant schedules stay bit-identical
// — and one segment per step for a profiled one.

#pragma once

#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/ids.hpp"
#include "core/rate_profile.hpp"
#include "core/request.hpp"
#include "util/quantity.hpp"

namespace gridbw {

/// One accepted request's allocation.
struct Assignment {
  RequestId request{0};
  TimePoint start;      // σ(r)
  Bandwidth bw;         // bw(r); peak step rate when profiled
  RateProfile profile;  // empty = constant bw over [start, end(r))

  Assignment() = default;
  /// Constant-rate allocation (the ubiquitous three-field form).
  Assignment(RequestId request_id, TimePoint sigma, Bandwidth rate)
      : request{request_id}, start{sigma}, bw{rate} {}

  [[nodiscard]] bool is_profiled() const { return !profile.empty(); }

  /// τ(r): derived from the volume for constant assignments, explicit for
  /// profiled ones (whose integral carries the volume instead).
  [[nodiscard]] TimePoint end(const Request& r) const {
    return is_profiled() ? profile.end() : start + r.volume / bw;
  }

  /// Invokes fn(t0, t1, rate) for every constant-rate span of the
  /// allocation, in time order. One call for a constant assignment (the
  /// exact pre-profile segment), one per step for a profiled one. This is
  /// the charging path every validator/ledger sweep runs per assignment.
  // gridbw:hot
  template <typename Fn>
  void for_each_segment(const Request& r, Fn&& fn) const {
    if (!is_profiled()) {
      fn(start, end(r), bw);
      return;
    }
    const std::span<const RateStep> steps = profile.steps();
    for (std::size_t i = 0; i < steps.size(); ++i) {
      const TimePoint until = i + 1 < steps.size() ? steps[i + 1].from : profile.end();
      fn(steps[i].from, until, steps[i].rate);
    }
  }
};

class Schedule {
 public:
  Schedule() = default;

  /// Records a constant-rate assignment. Throws if the request already has
  /// one.
  void accept(RequestId request, TimePoint start, Bandwidth bw);

  /// Records a profiled assignment. Throws if the request already has one
  /// or the profile is malformed (RateProfile::defect). A single-step
  /// profile is normalized to a plain constant assignment — the constant
  /// form is canonical, so "never reshaped" schedules compare byte-identical
  /// to constant-engine output.
  void accept_profile(RequestId request, RateProfile profile);

  /// Withdraws an assignment (rigid *-SLOTS heuristics retro-remove
  /// requests that fail in a later interval). Returns false if absent.
  bool withdraw(RequestId request);

  [[nodiscard]] bool is_accepted(RequestId request) const;
  [[nodiscard]] std::optional<Assignment> assignment(RequestId request) const;

  [[nodiscard]] std::size_t accepted_count() const { return assignments_.size(); }
  [[nodiscard]] std::span<const Assignment> assignments() const { return assignments_; }

 private:
  std::vector<Assignment> assignments_;
  std::unordered_map<RequestId, std::size_t> index_;  // request -> position
};

/// The full outcome of a scheduling run over a request set.
struct ScheduleResult {
  Schedule schedule;
  std::vector<RequestId> rejected;

  [[nodiscard]] std::size_t accepted_count() const { return schedule.accepted_count(); }
  [[nodiscard]] std::size_t total_count() const {
    return schedule.accepted_count() + rejected.size();
  }
  [[nodiscard]] double accept_rate() const {
    const std::size_t total = total_count();
    return total == 0 ? 0.0 : static_cast<double>(accepted_count()) /
                                  static_cast<double>(total);
  }
};

}  // namespace gridbw
