#include "core/schedule_io.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <system_error>
#include <unordered_map>

#include "core/timeline_profile.hpp"

namespace gridbw {
namespace {

constexpr const char* kHeader = "request,start_s,bw_bps";
constexpr const char* kHeaderProfiled = "request,start_s,bw_bps,profile";

/// Shortest round-trip decimal rendering: from_chars(to_chars(x)) == x
/// bit-for-bit, including subnormals and extremes — the contract the
/// schedule round-trip tests pin. (The previous fixed-precision snprintf
/// formatting lost bits on both.)
void append_double(std::string& out, double value) {
  std::array<char, 32> buf{};
  const auto res = std::to_chars(buf.data(), buf.data() + buf.size(), value);
  out.append(buf.data(), res.ptr);
}

/// Parses a complete cell as a double; rejects trailing garbage, empty
/// cells, and hex/inf/nan spellings to_chars never emits.
double parse_double(std::string_view cell, const char* what, std::size_t line_no) {
  double value = 0.0;
  const auto res = std::from_chars(cell.data(), cell.data() + cell.size(), value);
  if (res.ec != std::errc{} || res.ptr != cell.data() + cell.size()) {
    throw std::runtime_error{"read_schedule: line " + std::to_string(line_no) +
                             ": bad " + std::string{what} + " '" + std::string{cell} +
                             "'"};
  }
  return value;
}

/// Profile cell grammar: `from@rate` steps joined by ';', closed by `;$end`
/// (e.g. "0@5e+07;10@1e+08;$20"). An empty cell means a constant row.
void append_profile(std::string& out, const RateProfile& profile) {
  for (const RateStep& s : profile.steps()) {
    append_double(out, s.from.to_seconds());
    out.push_back('@');
    append_double(out, s.rate.to_bytes_per_second());
    out.push_back(';');
  }
  out.push_back('$');
  append_double(out, profile.end().to_seconds());
}

RateProfile parse_profile(std::string_view cell, std::size_t line_no) {
  RateProfile profile;
  bool closed = false;
  bool have_prev = false;
  double prev_from = 0.0;
  while (!cell.empty()) {
    const std::size_t semi = cell.find(';');
    const std::string_view token = cell.substr(0, semi);
    cell = semi == std::string_view::npos ? std::string_view{} : cell.substr(semi + 1);
    if (closed || token.empty()) {
      throw std::runtime_error{"read_schedule: line " + std::to_string(line_no) +
                               ": malformed profile cell"};
    }
    if (token.front() == '$') {
      profile.set_end(
          TimePoint::at_seconds(parse_double(token.substr(1), "profile end", line_no)));
      closed = true;
      continue;
    }
    const std::size_t at = token.find('@');
    if (at == std::string_view::npos) {
      throw std::runtime_error{"read_schedule: line " + std::to_string(line_no) +
                               ": profile step missing '@'"};
    }
    const double from = parse_double(token.substr(0, at), "step from", line_no);
    // RateProfile::append coalesces/overwrites in-process builders; at the
    // IO boundary a non-increasing step is corrupt input, not a rebuild
    // request — the writer only ever emits strictly increasing instants.
    if (have_prev && !(from > prev_from)) {
      throw std::runtime_error{"read_schedule: line " + std::to_string(line_no) +
                               ": profile steps not strictly increasing"};
    }
    have_prev = true;
    prev_from = from;
    profile.append(TimePoint::at_seconds(from),
                   Bandwidth::bytes_per_second(
                       parse_double(token.substr(at + 1), "step rate", line_no)));
  }
  if (!closed) {
    throw std::runtime_error{"read_schedule: line " + std::to_string(line_no) +
                             ": profile cell missing '$end'"};
  }
  return profile;
}

}  // namespace

void write_schedule(std::ostream& os, const Schedule& schedule) {
  std::vector<Assignment> rows{schedule.assignments().begin(),
                               schedule.assignments().end()};
  std::sort(rows.begin(), rows.end(), [](const Assignment& a, const Assignment& b) {
    if (a.start != b.start) return a.start < b.start;
    return a.request < b.request;
  });
  const bool any_profiled =
      std::any_of(rows.begin(), rows.end(),
                  [](const Assignment& a) { return a.is_profiled(); });
  os << (any_profiled ? kHeaderProfiled : kHeader) << '\n';
  std::string line;
  for (const Assignment& a : rows) {
    line.clear();
    line += std::to_string(static_cast<unsigned long long>(a.request));
    line.push_back(',');
    append_double(line, a.start.to_seconds());
    line.push_back(',');
    append_double(line, a.bw.to_bytes_per_second());
    if (any_profiled) {
      line.push_back(',');
      if (a.is_profiled()) append_profile(line, a.profile);
    }
    os << line << '\n';
  }
}

void write_schedule_file(const std::string& path, const Schedule& schedule) {
  std::ofstream out{path};
  if (!out) throw std::runtime_error{"write_schedule_file: cannot open " + path};
  write_schedule(out, schedule);
}

Schedule read_schedule(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || (line != kHeader && line != kHeaderProfiled)) {
    throw std::runtime_error{"read_schedule: missing or wrong header"};
  }
  const bool profiled_format = line == kHeaderProfiled;
  const std::size_t fields = profiled_format ? 4 : 3;
  Schedule schedule;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::array<std::string_view, 4> cell;
    std::string_view rest{line};
    for (std::size_t f = 0; f < fields; ++f) {
      const std::size_t comma = rest.find(',');
      const bool last = f + 1 == fields;
      if (last != (comma == std::string_view::npos)) {
        throw std::runtime_error{"read_schedule: line " + std::to_string(line_no) +
                                 ": expected " + std::to_string(fields) + " fields"};
      }
      cell[f] = last ? rest : rest.substr(0, comma);
      if (!last) rest = rest.substr(comma + 1);
    }
    unsigned long long id_value = 0;
    const auto id_res = std::from_chars(cell[0].data(), cell[0].data() + cell[0].size(),
                                        id_value);
    if (id_res.ec != std::errc{} || id_res.ptr != cell[0].data() + cell[0].size()) {
      throw std::runtime_error{"read_schedule: line " + std::to_string(line_no) +
                               ": bad request id '" + std::string{cell[0]} + "'"};
    }
    const auto id = static_cast<RequestId>(id_value);
    if (schedule.is_accepted(id)) {
      throw std::runtime_error{"read_schedule: line " + std::to_string(line_no) +
                               ": duplicate assignment for request " +
                               std::string{cell[0]}};
    }
    const TimePoint start = TimePoint::at_seconds(parse_double(cell[1], "start", line_no));
    const Bandwidth bw =
        Bandwidth::bytes_per_second(parse_double(cell[2], "bw", line_no));
    if (profiled_format && !cell[3].empty()) {
      RateProfile profile = parse_profile(cell[3], line_no);
      if (profile.empty() || profile.start() != start) {
        throw std::runtime_error{"read_schedule: line " + std::to_string(line_no) +
                                 ": profile start disagrees with start_s"};
      }
      try {
        schedule.accept_profile(id, std::move(profile));
      } catch (const std::exception& e) {
        throw std::runtime_error{"read_schedule: line " + std::to_string(line_no) +
                                 ": " + e.what()};
      }
    } else {
      schedule.accept(id, start, bw);
    }
  }
  return schedule;
}

Schedule read_schedule_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error{"read_schedule_file: cannot open " + path};
  return read_schedule(in);
}

std::string render_ingress_gantt(const Network& network,
                                 std::span<const Request> requests,
                                 const Schedule& schedule, TimePoint t0, TimePoint t1,
                                 std::size_t columns) {
  if (!(t0 < t1)) throw std::invalid_argument{"render_ingress_gantt: empty window"};
  if (columns == 0) throw std::invalid_argument{"render_ingress_gantt: zero columns"};

  std::vector<TimelineProfile> load(network.ingress_count());
  std::unordered_map<RequestId, const Request*> by_id;
  for (const Request& r : requests) by_id.emplace(r.id, &r);
  for (const Assignment& a : schedule.assignments()) {
    const auto it = by_id.find(a.request);
    if (it == by_id.end()) continue;
    TimelineProfile& port = load.at(it->second->ingress.value);
    a.for_each_segment(*it->second, [&](TimePoint s0, TimePoint s1, Bandwidth rate) {
      port.add(s0, s1, rate.to_bytes_per_second());
    });
  }

  const Duration bucket = (t1 - t0) / static_cast<double>(columns);
  std::ostringstream oss;
  std::array<char, 32> label{};
  for (std::size_t i = 0; i < load.size(); ++i) {
    std::snprintf(label.data(), label.size(), "in%-3zu |", i);
    oss << label.data();
    const double cap = network.ingress_capacity(IngressId{i}).to_bytes_per_second();
    for (std::size_t c = 0; c < columns; ++c) {
      const TimePoint lo = t0 + bucket * static_cast<double>(c);
      const double peak = load[i].max_over(lo, lo + bucket);
      const double util = peak / cap;
      const char glyph = util <= 1e-9   ? ' '
                         : util < 0.25  ? '.'
                         : util < 0.5   ? ':'
                         : util < 0.85  ? '+'
                                        : '#';
      oss << glyph;
    }
    oss << "|\n";
  }
  return oss.str();
}

}  // namespace gridbw
