#include "core/schedule_io.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "core/timeline_profile.hpp"

namespace gridbw {
namespace {

constexpr const char* kHeader = "request,start_s,bw_bps";

}  // namespace

void write_schedule(std::ostream& os, const Schedule& schedule) {
  std::vector<Assignment> rows{schedule.assignments().begin(),
                               schedule.assignments().end()};
  std::sort(rows.begin(), rows.end(), [](const Assignment& a, const Assignment& b) {
    if (a.start != b.start) return a.start < b.start;
    return a.request < b.request;
  });
  os << kHeader << '\n';
  std::array<char, 128> buf{};
  for (const Assignment& a : rows) {
    std::snprintf(buf.data(), buf.size(), "%llu,%.9f,%.3f",
                  static_cast<unsigned long long>(a.request), a.start.to_seconds(),
                  a.bw.to_bytes_per_second());
    os << buf.data() << '\n';
  }
}

void write_schedule_file(const std::string& path, const Schedule& schedule) {
  std::ofstream out{path};
  if (!out) throw std::runtime_error{"write_schedule_file: cannot open " + path};
  write_schedule(out, schedule);
}

Schedule read_schedule(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kHeader) {
    throw std::runtime_error{"read_schedule: missing or wrong header"};
  }
  Schedule schedule;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::stringstream ss{line};
    std::string id_cell, start_cell, bw_cell, extra;
    if (!std::getline(ss, id_cell, ',') || !std::getline(ss, start_cell, ',') ||
        !std::getline(ss, bw_cell, ',') || std::getline(ss, extra, ',')) {
      throw std::runtime_error{"read_schedule: line " + std::to_string(line_no) +
                               ": expected 3 fields"};
    }
    try {
      const auto id = static_cast<RequestId>(std::stoull(id_cell));
      if (schedule.is_accepted(id)) {
        throw std::runtime_error{"duplicate assignment for request " + id_cell};
      }
      schedule.accept(id, TimePoint::at_seconds(std::stod(start_cell)),
                      Bandwidth::bytes_per_second(std::stod(bw_cell)));
    } catch (const std::exception& e) {
      throw std::runtime_error{"read_schedule: line " + std::to_string(line_no) + ": " +
                               e.what()};
    }
  }
  return schedule;
}

Schedule read_schedule_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error{"read_schedule_file: cannot open " + path};
  return read_schedule(in);
}

std::string render_ingress_gantt(const Network& network,
                                 std::span<const Request> requests,
                                 const Schedule& schedule, TimePoint t0, TimePoint t1,
                                 std::size_t columns) {
  if (!(t0 < t1)) throw std::invalid_argument{"render_ingress_gantt: empty window"};
  if (columns == 0) throw std::invalid_argument{"render_ingress_gantt: zero columns"};

  std::vector<TimelineProfile> load(network.ingress_count());
  std::unordered_map<RequestId, const Request*> by_id;
  for (const Request& r : requests) by_id.emplace(r.id, &r);
  for (const Assignment& a : schedule.assignments()) {
    const auto it = by_id.find(a.request);
    if (it == by_id.end()) continue;
    load.at(it->second->ingress.value)
        .add(a.start, a.end(*it->second), a.bw.to_bytes_per_second());
  }

  const Duration bucket = (t1 - t0) / static_cast<double>(columns);
  std::ostringstream oss;
  std::array<char, 32> label{};
  for (std::size_t i = 0; i < load.size(); ++i) {
    std::snprintf(label.data(), label.size(), "in%-3zu |", i);
    oss << label.data();
    const double cap = network.ingress_capacity(IngressId{i}).to_bytes_per_second();
    for (std::size_t c = 0; c < columns; ++c) {
      const TimePoint lo = t0 + bucket * static_cast<double>(c);
      const double peak = load[i].max_over(lo, lo + bucket);
      const double util = peak / cap;
      const char glyph = util <= 1e-9   ? ' '
                         : util < 0.25  ? '.'
                         : util < 0.5   ? ':'
                         : util < 0.85  ? '+'
                                        : '#';
      oss << glyph;
    }
    oss << "|\n";
  }
  return oss.str();
}

}  // namespace gridbw
