#include "core/step_function.hpp"

#include <algorithm>
#include <cmath>

namespace gridbw {

void StepFunction::add(TimePoint t0, TimePoint t1, double delta) {
  if (!(t0 < t1) || delta == 0.0) return;
  deltas_[t0.to_seconds()] += delta;
  deltas_[t1.to_seconds()] -= delta;
}

double StepFunction::value_at(TimePoint t) const {
  double acc = 0.0;
  const double ts = t.to_seconds();
  for (const auto& [time, delta] : deltas_) {
    if (time > ts) break;
    acc += delta;
  }
  return acc;
}

double StepFunction::max_over(TimePoint t0, TimePoint t1) const {
  if (!(t0 < t1)) return 0.0;
  double acc = 0.0;
  double best = 0.0;
  const double lo = t0.to_seconds();
  const double hi = t1.to_seconds();
  for (const auto& [time, delta] : deltas_) {
    if (time >= hi) break;
    acc += delta;
    if (time <= lo) continue;  // still accumulating the value holding at t0
    best = std::max(best, acc);
  }
  // acc after processing all deltas <= lo is the value at t0; the loop above
  // does not capture it, so fold it in here.
  best = std::max(best, value_at(t0));
  return best;
}

double StepFunction::global_max() const {
  double acc = 0.0;
  double best = 0.0;
  for (const auto& [time, delta] : deltas_) {
    (void)time;
    acc += delta;
    best = std::max(best, acc);
  }
  return best;
}

double StepFunction::integral(TimePoint t0, TimePoint t1) const {
  if (!(t0 < t1)) return 0.0;
  const double lo = t0.to_seconds();
  const double hi = t1.to_seconds();
  double acc = 0.0;
  double result = 0.0;
  double prev = lo;
  for (const auto& [time, delta] : deltas_) {
    if (time <= lo) {
      acc += delta;
      continue;
    }
    const double upto = std::min(time, hi);
    if (upto > prev) {
      result += acc * (upto - prev);
      prev = upto;
    }
    if (time >= hi) return result;
    acc += delta;
  }
  if (hi > prev) result += acc * (hi - prev);
  return result;
}

std::vector<TimePoint> StepFunction::breakpoints() const {
  std::vector<TimePoint> points;
  points.reserve(deltas_.size());
  for (const auto& [time, delta] : deltas_) {
    if (delta != 0.0) points.push_back(TimePoint::at_seconds(time));
  }
  return points;
}

void StepFunction::compact(double tolerance) {
  for (auto it = deltas_.begin(); it != deltas_.end();) {
    if (std::fabs(it->second) <= tolerance) {
      it = deltas_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace gridbw
