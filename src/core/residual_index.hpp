// gridbw/core/residual_index.hpp
//
// O(log n) feasibility accelerator layered over a TimelineProfile: a lazy
// range-add / range-max segment tree built on a snapshot of the profile's
// merged breakpoint arrays. One tree probe answers "what is the peak load
// anywhere in [t0, t1)?" — and therefore "how much residual headroom does
// this port have?" — where the flat profile's `max_over` walks every
// breakpoint inside the window.
//
// Lifecycle (the invariants DESIGN.md §5g documents):
//
//  * `rebuild(profile)` merges the profile and snapshots its breakpoint
//    times and prefix-sum values. An unpatched ("exact") index answers
//    `peak_over` with the bit-identical double `profile.max_over` would
//    return: range-max is a selection over the very same values, folded
//    against the same 0.0 initial the profile uses.
//  * `apply(t0, t1, delta)` patches a reservation/release in O(log n)
//    when both endpoints already exist as snapshot breakpoints (the
//    common case for repeated probing of the same slice grid). A patch
//    that would need new breakpoints makes the index stale instead —
//    the owner falls back to the profile scan and eventually rebuilds.
//  * Patched values are FP-reassociated sums, so a patched index is only
//    `error_bound()`-accurate; callers that need exact decisions compare
//    against a guard band and fall back to the profile when the answer
//    lies inside it (NetworkLedger::fits does exactly this).
//
// Thread safety: `peak_over` on a built index is a pure read — any number
// of threads may probe one index concurrently (tests/tsan_stress_test.cpp
// hammers this). `rebuild`/`apply`/`invalidate` are writes and must not
// race queries, the same contract as TimelineProfile::ensure_merged.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/timeline_profile.hpp"
#include "util/quantity.hpp"

namespace gridbw {

class ResidualIndex {
 public:
  /// Snapshots `profile` (merging pending adds first) and builds the tree.
  /// After this the index is fresh and exact.
  void rebuild(const TimelineProfile& profile);

  /// Adds `delta` over [t0, t1) in O(log n). Returns true and stays fresh
  /// when both endpoints are existing snapshot breakpoints; otherwise the
  /// index goes stale and returns false. Mirrors TimelineProfile::add's
  /// no-op contract for empty intervals and zero deltas.
  bool apply(TimePoint t0, TimePoint t1, double delta);

  /// Peak load over [t0, t1). Bit-identical to the source profile's
  /// `max_over` while `exact()`; within `error_bound()` of it otherwise.
  /// Must not be called on a stale index.
  [[nodiscard]] double peak_over(TimePoint t0, TimePoint t1) const;

  /// Upper bound on |peak_over - profile.max_over| introduced by patches.
  /// Zero while `exact()`.
  [[nodiscard]] double error_bound() const;

  /// True when the snapshot still mirrors the profile (possibly patched).
  [[nodiscard]] bool fresh() const { return !stale_; }

  /// True when no patch has been applied since the last rebuild, i.e.
  /// `peak_over` is bit-identical to the profile.
  [[nodiscard]] bool exact() const { return !stale_ && patches_ == 0; }

  [[nodiscard]] std::size_t breakpoint_count() const { return size_; }
  [[nodiscard]] std::size_t patch_count() const { return patches_; }

  /// Forces staleness (e.g. after mutating the profile behind the index).
  void invalidate() { stale_ = true; }

 private:
  void build(std::size_t node, std::size_t lo, std::size_t hi,
             std::span<const double> values);
  void range_add(std::size_t node, std::size_t lo, std::size_t hi, std::size_t l,
                 std::size_t r, double delta);
  [[nodiscard]] double range_max(std::size_t node, std::size_t lo, std::size_t hi,
                                 std::size_t l, std::size_t r) const;

  // Snapshot of the profile's breakpoint instants, sorted.
  std::vector<double> times_;
  // Segment tree over the profile's prefix-sum values: tree_[k] is the true
  // max of its span (own pending add included), added_[k] the pending add
  // that applies to the whole span but is not yet pushed to descendants.
  std::vector<double> tree_;
  std::vector<double> added_;
  std::size_t size_{0};
  std::size_t patches_{0};
  bool stale_{true};
  // Error scale for `error_bound`: the rebuild-time magnitude plus every
  // patch magnitude since (reassociation error is relative to the terms).
  double scale_{1.0};
};

}  // namespace gridbw
