// gridbw/core/schedule_io.hpp
//
// Schedule persistence and inspection: CSV export/import of assignments
// (so a schedule computed offline can be handed to the enforcement layer),
// and a text Gantt rendering of per-port occupation for the examples.

#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "core/network.hpp"
#include "core/request.hpp"
#include "core/schedule.hpp"

namespace gridbw {

/// Writes "request,start_s,bw_bps" rows for every assignment, in
/// ascending start order (ties by request id). Doubles are rendered with
/// shortest-round-trip std::to_chars, so a read-back reparses every value
/// bit-identically (including subnormal and extreme magnitudes). When any
/// assignment carries a rate profile the header gains a fourth "profile"
/// column — `from@rate` steps joined by ';' and closed by `;$end`; the
/// cell stays empty for constant rows, and profile-free schedules keep the
/// original three-field format.
void write_schedule(std::ostream& os, const Schedule& schedule);
void write_schedule_file(const std::string& path, const Schedule& schedule);

/// Reads a schedule written by write_schedule (either header form). Throws
/// std::runtime_error on malformed input or duplicate assignments.
[[nodiscard]] Schedule read_schedule(std::istream& is);
[[nodiscard]] Schedule read_schedule_file(const std::string& path);

/// ASCII Gantt of ingress-port occupation over [t0, t1): one row per
/// ingress port, `columns` time buckets, each cell showing the port's peak
/// utilization in that bucket as ' ' (idle), '.', ':', '+', '#' (full).
[[nodiscard]] std::string render_ingress_gantt(const Network& network,
                                               std::span<const Request> requests,
                                               const Schedule& schedule, TimePoint t0,
                                               TimePoint t1, std::size_t columns = 72);

}  // namespace gridbw
