#include "core/ledger.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace gridbw {

namespace {

/// Ports with fewer breakpoints than this never build an index: the flat
/// scan over a handful of contiguous doubles beats any tree traversal.
constexpr std::size_t kMinIndexBreakpoints = 64;

/// Releases between GC retirement passes: each pass costs O(ports · log n)
/// in watermark binary searches even when nothing folds, so the release
/// path batches it rather than paying per departure.
constexpr std::size_t kGcReleaseBatch = 64;

/// A port folds its dead prefix only when at least this many breakpoints
/// retire at once — and only when they make up at least half the resident
/// set, so the O(n) fold is charged O(1) amortized per retired breakpoint.
constexpr std::size_t kMinRetireBatch = 64;

}  // namespace

NetworkLedger::NetworkLedger(const Network& network)
    : network_{&network},
      ingress_(network.ingress_count()),
      egress_(network.egress_count()),
      ingress_probe_(network.ingress_count()),
      egress_probe_(network.egress_count()) {}

// gridbw:hot
bool NetworkLedger::port_fits(const TimelineProfile& profile, PortProbe& probe,
                              TimePoint t0, TimePoint t1, Bandwidth add,
                              Bandwidth capacity) const {
  // Decision threshold spelled exactly like approx_le(Bandwidth, Bandwidth):
  // same terms, same evaluation order, so `lhs <= limit` is the identical
  // boolean whichever path computed `lhs`'s peak.
  const double cap_bps = capacity.to_bytes_per_second();
  const double add_bps = add.to_bytes_per_second();
  const double limit = cap_bps + 1.0 + 1e-9 * std::fabs(cap_bps);
  if (probe.index.fresh()) {
    const double lhs = probe.index.peak_over(t0, t1) + add_bps;
    const double guard = probe.index.error_bound();
    if (guard == 0.0 || std::fabs(lhs - limit) > guard) {
      if (observer_ != nullptr) observer_->count(obs::Counter::kResidualIndexProbes);
      return lhs <= limit;
    }
    // A patched tree's answer landed inside its FP guard band around the
    // threshold: only the exact scan below can decide bit-identically.
  }
  const double peak = profile.max_over(t0, t1);
  // Amortized index maintenance: charge this scan's window width as debt
  // and (re)build once the accumulated debt matches a build's O(n) cost.
  const std::span<const double> times = profile.merged_times_view();
  const auto first = std::upper_bound(times.begin(), times.end(), t0.to_seconds());
  const auto last = std::lower_bound(times.begin(), times.end(), t1.to_seconds());
  probe.scan_debt += static_cast<double>(last - first) + 1.0;
  if (observer_ != nullptr) observer_->count(obs::Counter::kResidualIndexFallbacks);
  if (times.size() >= kMinIndexBreakpoints &&
      probe.scan_debt >= static_cast<double>(times.size())) {
    probe.index.rebuild(profile);
    probe.scan_debt = 0.0;
    if (observer_ != nullptr) observer_->count(obs::Counter::kResidualIndexRebuilds);
  }
  return peak + add_bps <= limit;
}

// gridbw:hot
bool NetworkLedger::fits(IngressId i, EgressId e, TimePoint t0, TimePoint t1,
                         Bandwidth bw) const {
  // The per-port half carries the index-vs-scan machinery; this body only
  // fans out. fits_ingress/fits_egress remain the pure (counter-free,
  // index-free) variants for rejection-reason classification on the cold
  // rejection path.
  const bool ok =
      port_fits(ingress_[i.value], ingress_probe_[i.value], t0, t1, bw,
                network_->ingress_capacity(i)) &&
      port_fits(egress_[e.value], egress_probe_[e.value], t0, t1, bw,
                network_->egress_capacity(e));
  if (observer_ != nullptr) {
    observer_->count(obs::Counter::kLedgerFitsChecks);
    if (!ok) observer_->count(obs::Counter::kLedgerFitsRejected);
  }
  return ok;
}

bool NetworkLedger::fits_ingress(IngressId i, TimePoint t0, TimePoint t1,
                                 Bandwidth bw) const {
  const double peak = ingress_.at(i.value).max_over(t0, t1);
  return approx_le(Bandwidth::bytes_per_second(peak + bw.to_bytes_per_second()),
                   network_->ingress_capacity(i));
}

bool NetworkLedger::fits_egress(EgressId e, TimePoint t0, TimePoint t1,
                                Bandwidth bw) const {
  const double peak = egress_.at(e.value).max_over(t0, t1);
  return approx_le(Bandwidth::bytes_per_second(peak + bw.to_bytes_per_second()),
                   network_->egress_capacity(e));
}

// gridbw:hot
void NetworkLedger::reserve(IngressId i, EgressId e, TimePoint t0, TimePoint t1,
                            Bandwidth bw) {
  const double add = bw.to_bytes_per_second();
  ingress_.at(i.value).add(t0, t1, add);
  egress_.at(e.value).add(t0, t1, add);
  // Keep fresh indexes in step with the profiles; an endpoint the snapshot
  // has never seen makes the patch fail and the index go stale (apply's
  // contract), after which `fits` falls back to scans until it re-amortizes.
  (void)ingress_probe_[i.value].index.apply(t0, t1, add);
  (void)egress_probe_[e.value].index.apply(t0, t1, add);
  if (observer_ != nullptr) observer_->count(obs::Counter::kLedgerReservations);
}

// gridbw:hot
void NetworkLedger::release(IngressId i, EgressId e, TimePoint t0, TimePoint t1,
                            Bandwidth bw) {
  const double sub = -bw.to_bytes_per_second();
  ingress_.at(i.value).add(t0, t1, sub);
  egress_.at(e.value).add(t0, t1, sub);
  (void)ingress_probe_[i.value].index.apply(t0, t1, sub);
  (void)egress_probe_[e.value].index.apply(t0, t1, sub);
  if (observer_ != nullptr) observer_->count(obs::Counter::kLedgerReleases);
  // Departures drive the breakpoint GC once advance_horizon has armed it.
  if (gc_armed_ && ++gc_release_debt_ >= kGcReleaseBatch) (void)collect_retired();
}

std::size_t NetworkLedger::advance_horizon(TimePoint horizon) {
  if (!gc_armed_ || gc_horizon_ < horizon) gc_horizon_ = horizon;
  gc_armed_ = true;
  if (gc_release_debt_ < kGcReleaseBatch) return 0;
  return collect_retired();
}

std::size_t NetworkLedger::collect_retired() {
  if (!gc_armed_) return 0;
  gc_release_debt_ = 0;
  std::size_t retired = 0;
  for (std::size_t p = 0; p < ingress_.size(); ++p) {
    retired += maybe_retire_port(ingress_[p], ingress_probe_[p]);
  }
  for (std::size_t p = 0; p < egress_.size(); ++p) {
    retired += maybe_retire_port(egress_[p], egress_probe_[p]);
  }
  return retired;
}

std::size_t NetworkLedger::maybe_retire_port(TimelineProfile& profile,
                                             PortProbe& probe) {
  const std::size_t retirable = profile.retirable_before(gc_horizon_);
  if (retirable < kMinRetireBatch || retirable * 2 < profile.breakpoint_count()) {
    return 0;
  }
  const std::size_t retired = profile.retire_before(gc_horizon_);
  // The index snapshot no longer matches the compacted arrays; fits() falls
  // back to exact scans until the debt pays for a rebuild over the (now much
  // smaller) resident set.
  probe.index.invalidate();
  probe.scan_debt = 0.0;
  if (observer_ != nullptr && retired > 0) {
    observer_->count(obs::Counter::kProfileCompactions);
    observer_->count(obs::Counter::kBreakpointsRetired, retired);
  }
  return retired;
}

std::size_t NetworkLedger::resident_breakpoints() const {
  std::size_t total = 0;
  for (const TimelineProfile& p : ingress_) total += p.breakpoint_count();
  for (const TimelineProfile& p : egress_) total += p.breakpoint_count();
  return total;
}

Bandwidth NetworkLedger::headroom(IngressId i, EgressId e, TimePoint t0,
                                  TimePoint t1) const {
  // `exact()` indexes return the bit-identical peak, so headroom may use
  // them directly; patched ones only bound the peak and are skipped (the
  // callers compare headroom against request rates, where a guard-band
  // dance is not worth the branch).
  const ResidualIndex& in_idx = ingress_probe_[i.value].index;
  const ResidualIndex& out_idx = egress_probe_[e.value].index;
  const double in_peak = in_idx.exact() ? in_idx.peak_over(t0, t1)
                                        : ingress_.at(i.value).max_over(t0, t1);
  const double out_peak = out_idx.exact() ? out_idx.peak_over(t0, t1)
                                          : egress_.at(e.value).max_over(t0, t1);
  const double in_room =
      network_->ingress_capacity(i).to_bytes_per_second() - in_peak;
  const double out_room =
      network_->egress_capacity(e).to_bytes_per_second() - out_peak;
  return Bandwidth::bytes_per_second(std::max(0.0, std::min(in_room, out_room)));
}

CounterLedger::CounterLedger(const Network& network)
    : network_{&network},
      ingress_(network.ingress_count(), Bandwidth::zero()),
      egress_(network.egress_count(), Bandwidth::zero()) {}

// gridbw:hot
bool CounterLedger::fits(IngressId i, EgressId e, Bandwidth bw) const {
  // Deliberately uninstrumented: each call is a handful of instructions and
  // the slice sweeps issue millions of them, so even a disabled-observer
  // pointer test shows up in unoptimized builds. Engine-level note_* events
  // carry the admission story for CounterLedger users.
  return approx_le(ingress_.at(i.value) + bw, network_->ingress_capacity(i)) &&
         approx_le(egress_.at(e.value) + bw, network_->egress_capacity(e));
}

// gridbw:hot
void CounterLedger::allocate(IngressId i, EgressId e, Bandwidth bw) {
  ingress_.at(i.value) += bw;
  egress_.at(e.value) += bw;
}

// gridbw:hot
void CounterLedger::reclaim(IngressId i, EgressId e, Bandwidth bw) {
  ingress_.at(i.value) -= bw;
  egress_.at(e.value) -= bw;
  // FP noise on long allocate/reclaim chains legitimately dips a hair below
  // zero — clamp it. Drift past the admission tolerance is a mismatched
  // allocate/reclaim pair; note_negative_drift asserts (debug) / counts it
  // so the accounting bug surfaces instead of biasing fits() optimistically.
  if (ingress_.at(i.value) < Bandwidth::zero()) {
    note_negative_drift(ingress_.at(i.value));
    ingress_.at(i.value) = Bandwidth::zero();
  }
  if (egress_.at(e.value) < Bandwidth::zero()) {
    note_negative_drift(egress_.at(e.value));
    egress_.at(e.value) = Bandwidth::zero();
  }
}

void CounterLedger::note_negative_drift(Bandwidth value) const {
  // Same 1 byte/s absolute tolerance as approx_le(Bandwidth, Bandwidth):
  // anything within it is expected rounding noise, not an accounting bug.
  if (value.to_bytes_per_second() >= -1.0) return;
  assert(false &&
         "CounterLedger::reclaim: counter drift beyond tolerance "
         "(mismatched allocate/reclaim pair)");
  if (observer_ != nullptr) observer_->count(obs::Counter::kLedgerDriftClamped);
}

void CounterLedger::reset() {
  std::fill(ingress_.begin(), ingress_.end(), Bandwidth::zero());
  std::fill(egress_.begin(), egress_.end(), Bandwidth::zero());
}

double CounterLedger::ingress_util_with(IngressId i, Bandwidth bw) const {
  return (ingress_.at(i.value) + bw) / network_->ingress_capacity(i);
}

double CounterLedger::egress_util_with(EgressId e, Bandwidth bw) const {
  return (egress_.at(e.value) + bw) / network_->egress_capacity(e);
}

AdmissionLedger::AdmissionLedger(const Network& network, std::size_t request_count)
    : counters_{network}, admitted_(request_count, Bandwidth::zero()) {}

// gridbw:hot
bool AdmissionLedger::try_admit(std::size_t k, IngressId i, EgressId e, Bandwidth bw) {
  if (!counters_.fits(i, e, bw)) return false;
  counters_.allocate(i, e, bw);
  admitted_.at(k) = bw;
  return true;
}

void AdmissionLedger::drop(std::size_t k, IngressId i, EgressId e) {
  Bandwidth& held = admitted_.at(k);
  if (!held.is_positive()) return;
  counters_.reclaim(i, e, held);
  held = Bandwidth::zero();
}

void AdmissionLedger::reset() {
  counters_.reset();
  std::fill(admitted_.begin(), admitted_.end(), Bandwidth::zero());
}

}  // namespace gridbw
