#include "core/ledger.hpp"

#include <algorithm>
#include <stdexcept>

namespace gridbw {

NetworkLedger::NetworkLedger(const Network& network)
    : network_{&network},
      ingress_(network.ingress_count()),
      egress_(network.egress_count()) {}

// gridbw:hot
bool NetworkLedger::fits(IngressId i, EgressId e, TimePoint t0, TimePoint t1,
                         Bandwidth bw) const {
  // Body kept flat (not delegated to the per-port halves): this is the
  // hottest admission query, and the extra calls cost real time in
  // unoptimized builds. fits_ingress/fits_egress exist for rejection-reason
  // classification on the (cold, observer-only) rejection path.
  const double in_peak = ingress_.at(i.value).max_over(t0, t1);
  const double out_peak = egress_.at(e.value).max_over(t0, t1);
  const double add = bw.to_bytes_per_second();
  const bool ok = approx_le(Bandwidth::bytes_per_second(in_peak + add),
                            network_->ingress_capacity(i)) &&
                  approx_le(Bandwidth::bytes_per_second(out_peak + add),
                            network_->egress_capacity(e));
  if (observer_ != nullptr) {
    observer_->count(obs::Counter::kLedgerFitsChecks);
    if (!ok) observer_->count(obs::Counter::kLedgerFitsRejected);
  }
  return ok;
}

bool NetworkLedger::fits_ingress(IngressId i, TimePoint t0, TimePoint t1,
                                 Bandwidth bw) const {
  const double peak = ingress_.at(i.value).max_over(t0, t1);
  return approx_le(Bandwidth::bytes_per_second(peak + bw.to_bytes_per_second()),
                   network_->ingress_capacity(i));
}

bool NetworkLedger::fits_egress(EgressId e, TimePoint t0, TimePoint t1,
                                Bandwidth bw) const {
  const double peak = egress_.at(e.value).max_over(t0, t1);
  return approx_le(Bandwidth::bytes_per_second(peak + bw.to_bytes_per_second()),
                   network_->egress_capacity(e));
}

// gridbw:hot
void NetworkLedger::reserve(IngressId i, EgressId e, TimePoint t0, TimePoint t1,
                            Bandwidth bw) {
  ingress_.at(i.value).add(t0, t1, bw.to_bytes_per_second());
  egress_.at(e.value).add(t0, t1, bw.to_bytes_per_second());
  if (observer_ != nullptr) observer_->count(obs::Counter::kLedgerReservations);
}

// gridbw:hot
void NetworkLedger::release(IngressId i, EgressId e, TimePoint t0, TimePoint t1,
                            Bandwidth bw) {
  ingress_.at(i.value).add(t0, t1, -bw.to_bytes_per_second());
  egress_.at(e.value).add(t0, t1, -bw.to_bytes_per_second());
  if (observer_ != nullptr) observer_->count(obs::Counter::kLedgerReleases);
}

Bandwidth NetworkLedger::headroom(IngressId i, EgressId e, TimePoint t0,
                                  TimePoint t1) const {
  const double in_room = network_->ingress_capacity(i).to_bytes_per_second() -
                         ingress_.at(i.value).max_over(t0, t1);
  const double out_room = network_->egress_capacity(e).to_bytes_per_second() -
                          egress_.at(e.value).max_over(t0, t1);
  return Bandwidth::bytes_per_second(std::max(0.0, std::min(in_room, out_room)));
}

CounterLedger::CounterLedger(const Network& network)
    : network_{&network},
      ingress_(network.ingress_count(), Bandwidth::zero()),
      egress_(network.egress_count(), Bandwidth::zero()) {}

// gridbw:hot
bool CounterLedger::fits(IngressId i, EgressId e, Bandwidth bw) const {
  // Deliberately uninstrumented: each call is a handful of instructions and
  // the slice sweeps issue millions of them, so even a disabled-observer
  // pointer test shows up in unoptimized builds. Engine-level note_* events
  // carry the admission story for CounterLedger users.
  return approx_le(ingress_.at(i.value) + bw, network_->ingress_capacity(i)) &&
         approx_le(egress_.at(e.value) + bw, network_->egress_capacity(e));
}

// gridbw:hot
void CounterLedger::allocate(IngressId i, EgressId e, Bandwidth bw) {
  ingress_.at(i.value) += bw;
  egress_.at(e.value) += bw;
}

// gridbw:hot
void CounterLedger::reclaim(IngressId i, EgressId e, Bandwidth bw) {
  ingress_.at(i.value) -= bw;
  egress_.at(e.value) -= bw;
  // Guard against drift below zero after many allocate/reclaim pairs.
  if (ingress_.at(i.value) < Bandwidth::zero()) ingress_.at(i.value) = Bandwidth::zero();
  if (egress_.at(e.value) < Bandwidth::zero()) egress_.at(e.value) = Bandwidth::zero();
}

void CounterLedger::reset() {
  std::fill(ingress_.begin(), ingress_.end(), Bandwidth::zero());
  std::fill(egress_.begin(), egress_.end(), Bandwidth::zero());
}

double CounterLedger::ingress_util_with(IngressId i, Bandwidth bw) const {
  return (ingress_.at(i.value) + bw) / network_->ingress_capacity(i);
}

double CounterLedger::egress_util_with(EgressId e, Bandwidth bw) const {
  return (egress_.at(e.value) + bw) / network_->egress_capacity(e);
}

AdmissionLedger::AdmissionLedger(const Network& network, std::size_t request_count)
    : counters_{network}, admitted_(request_count, Bandwidth::zero()) {}

// gridbw:hot
bool AdmissionLedger::try_admit(std::size_t k, IngressId i, EgressId e, Bandwidth bw) {
  if (!counters_.fits(i, e, bw)) return false;
  counters_.allocate(i, e, bw);
  admitted_.at(k) = bw;
  return true;
}

void AdmissionLedger::drop(std::size_t k, IngressId i, EgressId e) {
  Bandwidth& held = admitted_.at(k);
  if (!held.is_positive()) return;
  counters_.reclaim(i, e, held);
  held = Bandwidth::zero();
}

void AdmissionLedger::reset() {
  counters_.reset();
  std::fill(admitted_.begin(), admitted_.end(), Bandwidth::zero());
}

}  // namespace gridbw
