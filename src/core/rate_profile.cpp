#include "core/rate_profile.hpp"

#include <array>
#include <cstdio>

namespace gridbw {

RateProfile RateProfile::constant(TimePoint start, TimePoint end, Bandwidth rate) {
  RateProfile p;
  p.append(start, rate);
  p.set_end(end);
  return p;
}

void RateProfile::append(TimePoint from, Bandwidth rate) {
  if (!steps_.empty()) {
    if (steps_.back().from == from) {
      steps_.back().rate = rate;
      // Collapsing at one instant may leave the rewritten step equal to its
      // predecessor; coalesce that too so profiles stay canonical.
      if (steps_.size() > 1 && steps_[steps_.size() - 2].rate == rate) {
        steps_.pop_back();
      }
      return;
    }
    if (steps_.back().rate == rate) return;  // no change: coalesce
  }
  steps_.push_back(RateStep{from, rate});
}

// gridbw:hot
Bandwidth RateProfile::rate_at(TimePoint t) const {
  if (steps_.empty() || t < steps_.front().from || !(t < end_)) {
    return Bandwidth::zero();
  }
  // Profiles are short (one step per reshape); a linear scan beats a binary
  // search at the sizes the malleable engines produce.
  Bandwidth rate = steps_.front().rate;
  for (const RateStep& s : steps_) {
    if (s.from <= t) rate = s.rate;
    else break;
  }
  return rate;
}

Bandwidth RateProfile::peak_rate() const {
  Bandwidth peak = Bandwidth::zero();
  for (const RateStep& s : steps_) peak = max(peak, s.rate);
  return peak;
}

// gridbw:hot
Bandwidth RateProfile::min_rate() const {
  if (steps_.empty()) return Bandwidth::zero();
  Bandwidth lo = steps_.front().rate;
  for (const RateStep& s : steps_) lo = min(lo, s.rate);
  return lo;
}

// gridbw:hot
Volume RateProfile::carried() const {
  Volume total = Volume::zero();
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    const TimePoint until = i + 1 < steps_.size() ? steps_[i + 1].from : end_;
    total += steps_[i].rate * (until - steps_[i].from);
  }
  return total;
}

std::optional<std::string> RateProfile::defect(TimePoint expected_start) const {
  if (steps_.empty()) return "profile has no steps";
  std::array<char, 128> buf{};
  if (steps_.front().from != expected_start) {
    std::snprintf(buf.data(), buf.size(),
                  "profile starts at %.9fs, assignment starts at %.9fs",
                  steps_.front().from.to_seconds(), expected_start.to_seconds());
    return std::string{buf.data()};
  }
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    const Bandwidth rate = steps_[i].rate;
    if (!rate.is_positive() || !rate.is_finite()) {
      std::snprintf(buf.data(), buf.size(), "step %zu rate %.6g B/s not positive finite",
                    i, rate.to_bytes_per_second());
      return std::string{buf.data()};
    }
    if (i > 0 && !(steps_[i - 1].from < steps_[i].from)) {
      std::snprintf(buf.data(), buf.size(), "step %zu at %.9fs not after step %zu at %.9fs",
                    i, steps_[i].from.to_seconds(), i - 1,
                    steps_[i - 1].from.to_seconds());
      return std::string{buf.data()};
    }
  }
  if (!(steps_.back().from < end_)) {
    std::snprintf(buf.data(), buf.size(), "profile end %.9fs not after last step %.9fs",
                  end_.to_seconds(), steps_.back().from.to_seconds());
    return std::string{buf.data()};
  }
  return std::nullopt;
}

}  // namespace gridbw
