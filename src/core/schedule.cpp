#include "core/schedule.hpp"

#include <stdexcept>

namespace gridbw {

void Schedule::accept(RequestId request, TimePoint start, Bandwidth bw) {
  if (index_.count(request) > 0) {
    // The sweep assembly paths that reach this from hot kernels admit each
    // request at most once, so this defensive guard is never taken there.
    // GRIDBW-ALLOW(hot-propagation): duplicate-accept guard, unreachable hot
    throw std::logic_error{"Schedule::accept: request already accepted"};
  }
  index_.emplace(request, assignments_.size());
  assignments_.push_back(Assignment{request, start, bw});
}

void Schedule::accept_profile(RequestId request, RateProfile profile) {
  if (const auto why = profile.defect(profile.empty() ? TimePoint::origin()
                                                      : profile.start())) {
    throw std::logic_error{"Schedule::accept_profile: " + *why};
  }
  if (profile.size() == 1) {
    accept(request, profile.start(), profile.steps().front().rate);
    return;
  }
  if (index_.count(request) > 0) {
    throw std::logic_error{"Schedule::accept_profile: request already accepted"};
  }
  index_.emplace(request, assignments_.size());
  Assignment a;
  a.request = request;
  a.start = profile.start();
  a.bw = profile.peak_rate();
  a.profile = std::move(profile);
  assignments_.push_back(std::move(a));
}

bool Schedule::withdraw(RequestId request) {
  const auto it = index_.find(request);
  if (it == index_.end()) return false;
  const std::size_t pos = it->second;
  const std::size_t last = assignments_.size() - 1;
  if (pos != last) {
    assignments_[pos] = assignments_[last];
    index_[assignments_[pos].request] = pos;
  }
  assignments_.pop_back();
  index_.erase(it);
  return true;
}

bool Schedule::is_accepted(RequestId request) const { return index_.count(request) > 0; }

std::optional<Assignment> Schedule::assignment(RequestId request) const {
  const auto it = index_.find(request);
  if (it == index_.end()) return std::nullopt;
  return assignments_[it->second];
}

}  // namespace gridbw
