#include "core/schedule.hpp"

#include <stdexcept>

namespace gridbw {

void Schedule::accept(RequestId request, TimePoint start, Bandwidth bw) {
  if (index_.count(request) > 0) {
    throw std::logic_error{"Schedule::accept: request already accepted"};
  }
  index_.emplace(request, assignments_.size());
  assignments_.push_back(Assignment{request, start, bw});
}

bool Schedule::withdraw(RequestId request) {
  const auto it = index_.find(request);
  if (it == index_.end()) return false;
  const std::size_t pos = it->second;
  const std::size_t last = assignments_.size() - 1;
  if (pos != last) {
    assignments_[pos] = assignments_[last];
    index_[assignments_[pos].request] = pos;
  }
  assignments_.pop_back();
  index_.erase(it);
  return true;
}

bool Schedule::is_accepted(RequestId request) const { return index_.count(request) > 0; }

std::optional<Assignment> Schedule::assignment(RequestId request) const {
  const auto it = index_.find(request);
  if (it == index_.end()) return std::nullopt;
  return assignments_[it->second];
}

}  // namespace gridbw
