#include "core/validate.hpp"

#include <array>
#include <cstdio>
#include <sstream>
#include <unordered_map>

#include "core/step_function.hpp"

namespace gridbw {

std::string to_string(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kUnknownRequest: return "unknown-request";
    case ViolationKind::kStartBeforeRelease: return "start-before-release";
    case ViolationKind::kEndAfterDeadline: return "end-after-deadline";
    case ViolationKind::kRateAboveMax: return "rate-above-max";
    case ViolationKind::kRateNotPositive: return "rate-not-positive";
    case ViolationKind::kIngressOverCapacity: return "ingress-over-capacity";
    case ViolationKind::kEgressOverCapacity: return "egress-over-capacity";
  }
  return "unknown";
}

std::string ValidationReport::to_string() const {
  if (ok()) return "valid";
  std::ostringstream oss;
  oss << violations.size() << " violation(s):\n";
  for (const Violation& v : violations) {
    oss << "  [" << gridbw::to_string(v.kind) << "] r" << v.request << " port "
        << v.port << ": " << v.detail << '\n';
  }
  return oss.str();
}

ValidationReport validate_schedule(const Network& network,
                                   std::span<const Request> requests,
                                   const Schedule& schedule,
                                   double min_rate_guarantee) {
  ValidationReport report;
  auto flag = [&](ViolationKind kind, RequestId id, std::size_t port,
                  std::string detail) {
    report.violations.push_back(Violation{kind, id, port, std::move(detail)});
  };

  std::unordered_map<RequestId, const Request*> by_id;
  by_id.reserve(requests.size());
  for (const Request& r : requests) by_id.emplace(r.id, &r);

  std::vector<StepFunction> ingress_load(network.ingress_count());
  std::vector<StepFunction> egress_load(network.egress_count());

  for (const Assignment& a : schedule.assignments()) {
    const auto it = by_id.find(a.request);
    if (it == by_id.end()) {
      flag(ViolationKind::kUnknownRequest, a.request, 0, "no such request in the set");
      continue;
    }
    const Request& r = *it->second;

    if (!a.bw.is_positive()) {
      flag(ViolationKind::kRateNotPositive, r.id, 0,
           "assigned rate " + gridbw::to_string(a.bw));
      continue;  // end time undefined; skip further checks for this one
    }
    if (!approx_le(r.release, a.start)) {
      std::array<char, 96> buf{};
      std::snprintf(buf.data(), buf.size(), "sigma=%.6fs < ts=%.6fs",
                    a.start.to_seconds(), r.release.to_seconds());
      flag(ViolationKind::kStartBeforeRelease, r.id, 0, buf.data());
    }
    const TimePoint end = a.end(r);
    if (!approx_le(end, r.deadline)) {
      std::array<char, 96> buf{};
      std::snprintf(buf.data(), buf.size(), "tau=%.6fs > tf=%.6fs", end.to_seconds(),
                    r.deadline.to_seconds());
      flag(ViolationKind::kEndAfterDeadline, r.id, 0, buf.data());
    }
    Bandwidth required_floor = Bandwidth::zero();
    if (min_rate_guarantee > 0.0) {
      required_floor = max(r.max_rate * min_rate_guarantee, r.min_rate_from(a.start));
      if (!approx_le(required_floor, a.bw)) {
        flag(ViolationKind::kRateNotPositive, r.id, 0,
             "guaranteed floor " + gridbw::to_string(required_floor) + " not met by " +
                 gridbw::to_string(a.bw));
      }
    }
    if (!approx_le(a.bw, r.max_rate)) {
      flag(ViolationKind::kRateAboveMax, r.id, 0,
           gridbw::to_string(a.bw) + " > MaxRate " + gridbw::to_string(r.max_rate));
    }

    ingress_load.at(r.ingress.value).add(a.start, end, a.bw.to_bytes_per_second());
    egress_load.at(r.egress.value).add(a.start, end, a.bw.to_bytes_per_second());
  }

  for (std::size_t i = 0; i < ingress_load.size(); ++i) {
    const double peak = ingress_load[i].global_max();
    const Bandwidth cap = network.ingress_capacity(IngressId{i});
    if (!approx_le(Bandwidth::bytes_per_second(peak), cap)) {
      flag(ViolationKind::kIngressOverCapacity, 0, i,
           "peak " + gridbw::to_string(Bandwidth::bytes_per_second(peak)) +
               " > capacity " + gridbw::to_string(cap));
    }
  }
  for (std::size_t e = 0; e < egress_load.size(); ++e) {
    const double peak = egress_load[e].global_max();
    const Bandwidth cap = network.egress_capacity(EgressId{e});
    if (!approx_le(Bandwidth::bytes_per_second(peak), cap)) {
      flag(ViolationKind::kEgressOverCapacity, 0, e,
           "peak " + gridbw::to_string(Bandwidth::bytes_per_second(peak)) +
               " > capacity " + gridbw::to_string(cap));
    }
  }

  return report;
}

}  // namespace gridbw
