#include "core/validate.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <optional>
#include <sstream>
#include <thread>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>

#include "core/step_function.hpp"
#include "core/timeline_profile.hpp"
#include "util/thread_pool.hpp"

namespace gridbw {

std::string to_string(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kUnknownRequest: return "unknown-request";
    case ViolationKind::kDuplicateAssignment: return "duplicate-assignment";
    case ViolationKind::kStartBeforeRelease: return "start-before-release";
    case ViolationKind::kEndAfterDeadline: return "end-after-deadline";
    case ViolationKind::kRateAboveMax: return "rate-above-max";
    case ViolationKind::kRateNotPositive: return "rate-not-positive";
    case ViolationKind::kIngressOverCapacity: return "ingress-over-capacity";
    case ViolationKind::kEgressOverCapacity: return "egress-over-capacity";
  }
  return "unknown";
}

std::string ValidationReport::to_string() const {
  if (ok()) return "valid";
  std::ostringstream oss;
  oss << violations.size() << " violation(s):\n";
  for (const Violation& v : violations) {
    oss << "  [" << gridbw::to_string(v.kind) << "] r" << v.request << " port "
        << v.port << ": " << v.detail << '\n';
  }
  return oss.str();
}

namespace {

/// One accepted request's load contribution on a single port.
struct LoadSegment {
  TimePoint start;
  TimePoint end;
  double bw;
};

/// Capacity check for one port's segment list; every engine funnels through
/// this so the violation text (and the peak double) is engine-independent.
/// `Profile` is StepFunction (reference) or TimelineProfile (flat).
template <typename Profile>
std::optional<Violation> check_port(std::span<const LoadSegment> segments,
                                    Bandwidth capacity, ViolationKind kind,
                                    std::size_t port) {
  Profile load;
  if constexpr (std::is_same_v<Profile, TimelineProfile>) {
    load.reserve(segments.size());
  }
  for (const LoadSegment& s : segments) load.add(s.start, s.end, s.bw);
  const double peak = load.global_max();
  if (approx_le(Bandwidth::bytes_per_second(peak), capacity)) return std::nullopt;
  return Violation{kind, 0, port,
                   "peak " + to_string(Bandwidth::bytes_per_second(peak)) +
                       " > capacity " + to_string(capacity)};
}

}  // namespace

ValidationReport validate_assignments(const Network& network,
                                      std::span<const Request> requests,
                                      std::span<const Assignment> assignments,
                                      const ValidateOptions& options) {
  ValidationReport report;
  auto flag = [&](ViolationKind kind, RequestId id, std::size_t port,
                  std::string detail) {
    report.violations.push_back(Violation{kind, id, port, std::move(detail)});
  };

  std::unordered_map<RequestId, const Request*> by_id;
  by_id.reserve(requests.size());
  for (const Request& r : requests) by_id.emplace(r.id, &r);

  // Pass 1 (serial): per-request checks, plus bucketing every accepted
  // load segment by port so the capacity sweeps touch contiguous data.
  std::vector<std::vector<LoadSegment>> ingress_segs(network.ingress_count());
  std::vector<std::vector<LoadSegment>> egress_segs(network.egress_count());
  std::unordered_set<RequestId> seen;
  seen.reserve(assignments.size());

  for (const Assignment& a : assignments) {
    const auto it = by_id.find(a.request);
    if (it == by_id.end()) {
      flag(ViolationKind::kUnknownRequest, a.request, 0, "no such request in the set");
      continue;
    }
    const Request& r = *it->second;

    if (!seen.insert(r.id).second) {
      // The first copy already contributed its load; counting the duplicate
      // too would double-book the port without naming the culprit.
      flag(ViolationKind::kDuplicateAssignment, r.id, 0,
           "request assigned more than once");
      continue;
    }
    if (!a.bw.is_positive()) {
      flag(ViolationKind::kRateNotPositive, r.id, 0,
           "assigned rate " + gridbw::to_string(a.bw));
      continue;  // end time undefined; skip further checks for this one
    }
    if (!approx_le(r.release, a.start)) {
      std::array<char, 96> buf{};
      std::snprintf(buf.data(), buf.size(), "sigma=%.6fs < ts=%.6fs",
                    a.start.to_seconds(), r.release.to_seconds());
      flag(ViolationKind::kStartBeforeRelease, r.id, 0, buf.data());
    }
    const TimePoint end = a.end(r);
    if (!approx_le(end, r.deadline)) {
      std::array<char, 96> buf{};
      std::snprintf(buf.data(), buf.size(), "tau=%.6fs > tf=%.6fs", end.to_seconds(),
                    r.deadline.to_seconds());
      flag(ViolationKind::kEndAfterDeadline, r.id, 0, buf.data());
    }
    Bandwidth required_floor = Bandwidth::zero();
    if (options.min_rate_guarantee > 0.0) {
      required_floor =
          max(r.max_rate * options.min_rate_guarantee, r.min_rate_from(a.start));
      if (!approx_le(required_floor, a.bw)) {
        flag(ViolationKind::kRateNotPositive, r.id, 0,
             "guaranteed floor " + gridbw::to_string(required_floor) + " not met by " +
                 gridbw::to_string(a.bw));
      }
    }
    if (!approx_le(a.bw, r.max_rate)) {
      flag(ViolationKind::kRateAboveMax, r.id, 0,
           gridbw::to_string(a.bw) + " > MaxRate " + gridbw::to_string(r.max_rate));
    }

    const LoadSegment seg{a.start, end, a.bw.to_bytes_per_second()};
    ingress_segs[r.ingress.value].push_back(seg);
    egress_segs[r.egress.value].push_back(seg);
  }

  // Pass 2: per-port capacity checks. Ports are independent; the report
  // always lists ingress ports in ascending order, then egress ports.
  ValidateEngine engine = options.engine;
  if (engine == ValidateEngine::kAuto) {
    engine = assignments.size() >= options.parallel_threshold
                 ? ValidateEngine::kParallel
                 : ValidateEngine::kSerial;
  }

  const std::size_t in_count = ingress_segs.size();
  const std::size_t port_count = in_count + egress_segs.size();
  auto check_one = [&](std::size_t p) -> std::optional<Violation> {
    const bool is_ingress = p < in_count;
    const std::size_t port = is_ingress ? p : p - in_count;
    const auto& segs = is_ingress ? ingress_segs[port] : egress_segs[port];
    const Bandwidth cap = is_ingress ? network.ingress_capacity(IngressId{port})
                                     : network.egress_capacity(EgressId{port});
    const ViolationKind kind = is_ingress ? ViolationKind::kIngressOverCapacity
                                          : ViolationKind::kEgressOverCapacity;
    if (engine == ValidateEngine::kReference) {
      return check_port<StepFunction>(segs, cap, kind, port);
    }
    return check_port<TimelineProfile>(segs, cap, kind, port);
  };

  std::vector<std::optional<Violation>> port_violations(port_count);
  if (engine == ValidateEngine::kParallel && port_count > 1) {
    std::size_t threads = options.threads != 0
                              ? options.threads
                              : std::max<std::size_t>(
                                    1, std::thread::hardware_concurrency());
    threads = std::min(threads, port_count);
    ThreadPool pool{threads};
    parallel_for_index(pool, port_count,
                       [&](std::size_t p) { port_violations[p] = check_one(p); });
  } else {
    for (std::size_t p = 0; p < port_count; ++p) port_violations[p] = check_one(p);
  }
  for (auto& v : port_violations) {
    if (v.has_value()) report.violations.push_back(std::move(*v));
  }

  return report;
}

ValidationReport validate_schedule(const Network& network,
                                   std::span<const Request> requests,
                                   const Schedule& schedule,
                                   const ValidateOptions& options) {
  return validate_assignments(network, requests, schedule.assignments(), options);
}

ValidationReport validate_schedule(const Network& network,
                                   std::span<const Request> requests,
                                   const Schedule& schedule,
                                   double min_rate_guarantee) {
  ValidateOptions options;
  options.min_rate_guarantee = min_rate_guarantee;
  return validate_schedule(network, requests, schedule, options);
}

}  // namespace gridbw
