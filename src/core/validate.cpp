#include "core/validate.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <optional>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "core/step_function.hpp"
#include "core/timeline_profile.hpp"
#include "util/thread_pool.hpp"

namespace gridbw {

std::string to_string(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kUnknownRequest: return "unknown-request";
    case ViolationKind::kDuplicateAssignment: return "duplicate-assignment";
    case ViolationKind::kStartBeforeRelease: return "start-before-release";
    case ViolationKind::kEndAfterDeadline: return "end-after-deadline";
    case ViolationKind::kRateAboveMax: return "rate-above-max";
    case ViolationKind::kRateNotPositive: return "rate-not-positive";
    case ViolationKind::kIngressOverCapacity: return "ingress-over-capacity";
    case ViolationKind::kEgressOverCapacity: return "egress-over-capacity";
    case ViolationKind::kProfileMalformed: return "profile-malformed";
    case ViolationKind::kProfileVolumeMismatch: return "profile-volume-mismatch";
  }
  return "unknown";
}

std::string ValidationReport::to_string() const {
  if (ok()) return "valid";
  std::ostringstream oss;
  oss << violations.size() << " violation(s):\n";
  for (const Violation& v : violations) {
    oss << "  [" << gridbw::to_string(v.kind) << "] r" << v.request << " port "
        << v.port << ": " << v.detail << '\n';
  }
  return oss.str();
}

namespace {

/// One accepted request's load contribution on a single port (reference
/// engine only; the flat engines build their port profiles during pass 1).
struct LoadSegment {
  TimePoint start;
  TimePoint end;
  double bw;
};

/// Capacity verdict from a port's peak load; every engine funnels through
/// this so the violation text (and the peak double) is engine-independent.
std::optional<Violation> peak_violation(double peak, Bandwidth capacity,
                                        ViolationKind kind, std::size_t port) {
  if (approx_le(Bandwidth::bytes_per_second(peak), capacity)) return std::nullopt;
  return Violation{kind, 0, port,
                   "peak " + to_string(Bandwidth::bytes_per_second(peak)) +
                       " > capacity " + to_string(capacity)};
}

}  // namespace

ValidationReport validate_assignments(const Network& network,
                                      std::span<const Request> requests,
                                      std::span<const Assignment> assignments,
                                      const ValidateOptions& options) {
  ValidationReport report;
  auto flag = [&](ViolationKind kind, RequestId id, std::size_t port,
                  std::string detail) {
    report.violations.push_back(Violation{kind, id, port, std::move(detail)});
  };

  std::unordered_map<RequestId, const Request*> by_id;
  by_id.reserve(requests.size());
  for (const Request& r : requests) by_id.emplace(r.id, &r);

  ValidateEngine engine = options.engine;
  if (engine == ValidateEngine::kAuto) {
    engine = assignments.size() >= options.parallel_threshold
                 ? ValidateEngine::kParallel
                 : ValidateEngine::kSerial;
  }

  const std::size_t in_count = network.ingress_count();
  const std::size_t port_count = in_count + network.egress_count();

  // Pass 1 (serial): per-request checks, plus accumulating every accepted
  // load by port. The reference engine keeps raw segment lists (it rebuilds
  // a StepFunction per port); the flat engines add straight into per-port
  // TimelineProfiles, ingress ports first then egress ports, in assignment
  // order — the same add sequence as before, so peaks stay bit-identical.
  std::vector<std::vector<LoadSegment>> ingress_segs;
  std::vector<std::vector<LoadSegment>> egress_segs;
  std::vector<TimelineProfile> profiles;
  if (engine == ValidateEngine::kReference) {
    ingress_segs.resize(in_count);
    egress_segs.resize(port_count - in_count);
  } else {
    profiles.resize(port_count);
  }
  std::unordered_set<RequestId> seen;
  seen.reserve(assignments.size());

  for (const Assignment& a : assignments) {
    const auto it = by_id.find(a.request);
    if (it == by_id.end()) {
      flag(ViolationKind::kUnknownRequest, a.request, 0, "no such request in the set");
      continue;
    }
    const Request& r = *it->second;

    if (!seen.insert(r.id).second) {
      // The first copy already contributed its load; counting the duplicate
      // too would double-book the port without naming the culprit.
      flag(ViolationKind::kDuplicateAssignment, r.id, 0,
           "request assigned more than once");
      continue;
    }
    if (!a.bw.is_positive()) {
      flag(ViolationKind::kRateNotPositive, r.id, 0,
           "assigned rate " + gridbw::to_string(a.bw));
      continue;  // end time undefined; skip further checks for this one
    }
    if (a.is_profiled()) {
      // A malformed profile has no well-defined load; don't charge it.
      if (const auto why = a.profile.defect(a.start)) {
        flag(ViolationKind::kProfileMalformed, r.id, 0, *why);
        continue;
      }
      // The profile's integral IS the transferred volume; a mismatch means
      // the engine either starved or over-served the request.
      const double carried = a.profile.carried().to_bytes();
      const double vol = r.volume.to_bytes();
      if (!approx_eq(carried, vol, 64.0, 1e-9)) {
        std::array<char, 96> buf{};
        std::snprintf(buf.data(), buf.size(), "carried %.3f B != vol %.3f B", carried,
                      vol);
        flag(ViolationKind::kProfileVolumeMismatch, r.id, 0, buf.data());
      }
    }
    if (!approx_le(r.release, a.start)) {
      std::array<char, 96> buf{};
      std::snprintf(buf.data(), buf.size(), "sigma=%.6fs < ts=%.6fs",
                    a.start.to_seconds(), r.release.to_seconds());
      flag(ViolationKind::kStartBeforeRelease, r.id, 0, buf.data());
    }
    const TimePoint end = a.end(r);
    if (!approx_le(end, r.deadline)) {
      std::array<char, 96> buf{};
      std::snprintf(buf.data(), buf.size(), "tau=%.6fs > tf=%.6fs", end.to_seconds(),
                    r.deadline.to_seconds());
      flag(ViolationKind::kEndAfterDeadline, r.id, 0, buf.data());
    }
    // Profiled assignments: the floor binds every step (the malleability
    // contract — reshapes never drop a flow below its guarantee) and the
    // MaxRate cap binds the peak step.
    const Bandwidth floor_rate = a.is_profiled() ? a.profile.min_rate() : a.bw;
    const Bandwidth peak_rate = a.is_profiled() ? a.profile.peak_rate() : a.bw;
    if (options.min_rate_guarantee > 0.0) {
      const Bandwidth required_floor =
          max(r.max_rate * options.min_rate_guarantee, r.min_rate_from(a.start));
      if (!approx_le(required_floor, floor_rate)) {
        flag(ViolationKind::kRateNotPositive, r.id, 0,
             "guaranteed floor " + gridbw::to_string(required_floor) + " not met by " +
                 gridbw::to_string(floor_rate));
      }
    }
    if (!approx_le(peak_rate, r.max_rate)) {
      flag(ViolationKind::kRateAboveMax, r.id, 0,
           gridbw::to_string(peak_rate) + " > MaxRate " + gridbw::to_string(r.max_rate));
    }

    // Charge the load one constant-rate segment at a time. Constant
    // assignments emit the exact single segment the pre-profile code added,
    // so constant-only schedules keep bit-identical port peaks.
    a.for_each_segment(r, [&](TimePoint t0, TimePoint t1, Bandwidth rate) {
      if (engine == ValidateEngine::kReference) {
        const LoadSegment seg{t0, t1, rate.to_bytes_per_second()};
        ingress_segs[r.ingress.value].push_back(seg);
        egress_segs[r.egress.value].push_back(seg);
      } else {
        const double bw = rate.to_bytes_per_second();
        profiles[r.ingress.value].add(t0, t1, bw);
        profiles[in_count + r.egress.value].add(t0, t1, bw);
      }
    });
  }

  // Pass 2: per-port capacity checks. Ports are independent; the report
  // always lists ingress ports in ascending order, then egress ports.
  auto port_capacity = [&](std::size_t p) {
    return p < in_count ? network.ingress_capacity(IngressId{p})
                        : network.egress_capacity(EgressId{p - in_count});
  };
  auto port_kind = [&](std::size_t p) {
    return p < in_count ? ViolationKind::kIngressOverCapacity
                        : ViolationKind::kEgressOverCapacity;
  };
  auto port_index = [&](std::size_t p) { return p < in_count ? p : p - in_count; };

  std::vector<std::optional<Violation>> port_violations(port_count);
  if (engine == ValidateEngine::kReference) {
    for (std::size_t p = 0; p < port_count; ++p) {
      const auto& segs = p < in_count ? ingress_segs[p] : egress_segs[p - in_count];
      StepFunction load;
      for (const LoadSegment& s : segs) load.add(s.start, s.end, s.bw);
      port_violations[p] =
          peak_violation(load.global_max(), port_capacity(p), port_kind(p), port_index(p));
    }
  } else if (engine == ValidateEngine::kParallel && port_count > 1) {
    std::size_t threads = options.threads != 0
                              ? options.threads
                              : std::max<std::size_t>(
                                    1, std::thread::hardware_concurrency());
    threads = std::min(threads, port_count);
    ThreadPool pool{threads};
    // Materialization pre-pass: merging the pending buffer mutates the lazy
    // `mutable` caches, so each profile is merged by exactly one task. After
    // this barrier every query below is a pure read, and the sweep may share
    // profiles across threads freely (tests/tsan_stress_test.cpp runs this
    // path under TSan; dropping the pre-pass makes the first queries race).
    parallel_for_index(pool, port_count,
                       [&](std::size_t p) { profiles[p].ensure_merged(); });
    parallel_for_index(pool, port_count, [&](std::size_t p) {
      const TimelineProfile& load = profiles[p];
      port_violations[p] =
          peak_violation(load.global_max(), port_capacity(p), port_kind(p), port_index(p));
    });
  } else {
    for (std::size_t p = 0; p < port_count; ++p) {
      port_violations[p] = peak_violation(profiles[p].global_max(), port_capacity(p),
                                          port_kind(p), port_index(p));
    }
  }
  for (auto& v : port_violations) {
    if (v.has_value()) report.violations.push_back(std::move(*v));
  }

  if (options.observer != nullptr) {
    options.observer->count(obs::Counter::kValidatorRuns);
    options.observer->count(obs::Counter::kValidatorAssignments, assignments.size());
    options.observer->count(obs::Counter::kValidatorViolations,
                            report.violations.size());
  }
  return report;
}

ValidationReport validate_schedule(const Network& network,
                                   std::span<const Request> requests,
                                   const Schedule& schedule,
                                   const ValidateOptions& options) {
  return validate_assignments(network, requests, schedule.assignments(), options);
}

ValidationReport validate_schedule(const Network& network,
                                   std::span<const Request> requests,
                                   const Schedule& schedule,
                                   double min_rate_guarantee) {
  ValidateOptions options;
  options.min_rate_guarantee = min_rate_guarantee;
  return validate_schedule(network, requests, schedule, options);
}

}  // namespace gridbw
