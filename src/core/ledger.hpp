// gridbw/core/ledger.hpp
//
// Two bandwidth-accounting books:
//
//  * NetworkLedger — the exact, time-aware book. Each port owns a
//    StepFunction allocation profile; `fits` asks whether an extra `bw`
//    over [t0, t1) would exceed the port capacity anywhere. Used by the
//    rigid heuristics (whose reservations span arbitrary future windows)
//    and by the optimality solvers.
//
//  * CounterLedger — the paper's O(1) online book (`ali`/`ale` in
//    Algorithms 2 and 3): one running counter per port, increased on accept
//    and reclaimed when a transfer finishes. Valid only for *online* use
//    where all active allocations share the current instant.

#pragma once

#include <span>
#include <vector>

#include "core/ids.hpp"
#include "core/network.hpp"
#include "core/step_function.hpp"
#include "util/quantity.hpp"

namespace gridbw {

/// Exact time-aware allocation book over all ports of a network.
class NetworkLedger {
 public:
  explicit NetworkLedger(const Network& network);

  /// Would adding `bw` on ports (i, e) over [t0, t1) keep both within
  /// capacity everywhere? (Uses the approx_le tolerance.)
  [[nodiscard]] bool fits(IngressId i, EgressId e, TimePoint t0, TimePoint t1,
                          Bandwidth bw) const;

  /// Commits `bw` on (i, e) over [t0, t1). Does not re-check `fits`.
  void reserve(IngressId i, EgressId e, TimePoint t0, TimePoint t1, Bandwidth bw);

  /// Reverses a previous `reserve` with identical arguments.
  void release(IngressId i, EgressId e, TimePoint t0, TimePoint t1, Bandwidth bw);

  /// Remaining headroom min over [t0, t1) across the two ports.
  [[nodiscard]] Bandwidth headroom(IngressId i, EgressId e, TimePoint t0,
                                   TimePoint t1) const;

  [[nodiscard]] const StepFunction& ingress_profile(IngressId i) const {
    return ingress_.at(i.value);
  }
  [[nodiscard]] const StepFunction& egress_profile(EgressId e) const {
    return egress_.at(e.value);
  }
  [[nodiscard]] const Network& network() const { return *network_; }

 private:
  const Network* network_;
  std::vector<StepFunction> ingress_;
  std::vector<StepFunction> egress_;
};

/// The paper's online counters: ali(i), ale(e).
class CounterLedger {
 public:
  explicit CounterLedger(const Network& network);

  /// ali(i) + bw <= B_in(i) and ale(e) + bw <= B_out(e)?
  [[nodiscard]] bool fits(IngressId i, EgressId e, Bandwidth bw) const;

  /// ali(i) += bw; ale(e) += bw. Does not re-check `fits`.
  void allocate(IngressId i, EgressId e, Bandwidth bw);

  /// Reclaims a finished transfer's bandwidth.
  void reclaim(IngressId i, EgressId e, Bandwidth bw);

  [[nodiscard]] Bandwidth allocated_ingress(IngressId i) const {
    return ingress_.at(i.value);
  }
  [[nodiscard]] Bandwidth allocated_egress(EgressId e) const { return egress_.at(e.value); }

  /// Utilization ratios used by the WINDOW heuristic's cost function:
  /// (ali(i) + bw) / B_in(i) and (ale(e) + bw) / B_out(e).
  [[nodiscard]] double ingress_util_with(IngressId i, Bandwidth bw) const;
  [[nodiscard]] double egress_util_with(EgressId e, Bandwidth bw) const;

  [[nodiscard]] const Network& network() const { return *network_; }

 private:
  const Network* network_;
  std::vector<Bandwidth> ingress_;
  std::vector<Bandwidth> egress_;
};

}  // namespace gridbw
