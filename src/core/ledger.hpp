// gridbw/core/ledger.hpp
//
// Two bandwidth-accounting books:
//
//  * NetworkLedger — the exact, time-aware book. Each port owns a flat
//    TimelineProfile allocation profile; `fits` asks whether an extra `bw`
//    over [t0, t1) would exceed the port capacity anywhere. Used by the
//    rigid heuristics (whose reservations span arbitrary future windows),
//    the BOOK-AHEAD feasibility probes, and the optimality solvers.
//    Probe-heavy callers are served by a per-port ResidualIndex (segment
//    tree over the profile's breakpoints, DESIGN.md §5g): once a port has
//    absorbed enough fallback-scan work to pay for a build, `fits` answers
//    from one O(log n) tree query instead of the O(window) profile scan.
//    Decisions stay bit-identical: an unpatched index returns the exact
//    peak, and a patched one is trusted only outside its FP guard band
//    (inside it, the exact profile scan decides).
//
//  * CounterLedger — the paper's O(1) online book (`ali`/`ale` in
//    Algorithms 2 and 3): one running counter per port, increased on accept
//    and reclaimed when a transfer finishes. Valid only for *online* use
//    where all active allocations share the current instant.
//
//  * AdmissionLedger — the incremental slice-sweep book used by the
//    *-SLOTS heuristics: CounterLedger counters that survive across time
//    slices, plus the per-request admitted bandwidth so that a departure
//    (finish delta) or retro-removal (release delta) subtracts exactly what
//    the request contributed instead of reconstructing the counters from
//    scratch each slice.

#pragma once

#include <span>
#include <vector>

#include "core/ids.hpp"
#include "core/network.hpp"
#include "core/residual_index.hpp"
#include "core/timeline_profile.hpp"
#include "obs/observer.hpp"
#include "util/quantity.hpp"

namespace gridbw {

/// Exact time-aware allocation book over all ports of a network.
///
/// Thread safety: like TimelineProfile queries, `fits` and `headroom` may
/// mutate mutable acceleration state (lazy merges, residual-index upkeep)
/// even though they are const. A NetworkLedger must not be shared across
/// threads; every scheduling engine owns its own instance.
class NetworkLedger {
 public:
  explicit NetworkLedger(const Network& network);

  /// Would adding `bw` on ports (i, e) over [t0, t1) keep both within
  /// capacity everywhere? (Uses the approx_le tolerance.)
  [[nodiscard]] bool fits(IngressId i, EgressId e, TimePoint t0, TimePoint t1,
                          Bandwidth bw) const;

  /// Per-port halves of `fits`, for rejection-reason classification. Pure
  /// queries: they bump no observer counters.
  [[nodiscard]] bool fits_ingress(IngressId i, TimePoint t0, TimePoint t1,
                                  Bandwidth bw) const;
  [[nodiscard]] bool fits_egress(EgressId e, TimePoint t0, TimePoint t1,
                                 Bandwidth bw) const;

  /// Commits `bw` on (i, e) over [t0, t1). Does not re-check `fits`.
  void reserve(IngressId i, EgressId e, TimePoint t0, TimePoint t1, Bandwidth bw);

  /// Reverses a previous `reserve` with identical arguments.
  void release(IngressId i, EgressId e, TimePoint t0, TimePoint t1, Bandwidth bw);

  /// Remaining headroom min over [t0, t1) across the two ports.
  [[nodiscard]] Bandwidth headroom(IngressId i, EgressId e, TimePoint t0,
                                   TimePoint t1) const;

  [[nodiscard]] const TimelineProfile& ingress_profile(IngressId i) const {
    return ingress_.at(i.value);
  }
  [[nodiscard]] const TimelineProfile& egress_profile(EgressId e) const {
    return egress_.at(e.value);
  }
  [[nodiscard]] const Network& network() const { return *network_; }

  /// Mirrors fits/reserve/release into the observer's ledger counters
  /// (kLedgerFitsChecks, ...). Null detaches; the disabled path is one
  /// branch per call.
  void attach_observer(obs::Observer* observer) { observer_ = observer; }

  /// Steady-state churn GC (ISSUE 7): moves the retirement watermark forward
  /// (monotonic max) and arms the release path to drive per-port breakpoint
  /// compaction. Safe-horizon contract: the caller guarantees that no future
  /// reserve/release touches an instant strictly before `horizon` — i.e.
  /// horizon <= min(start of every still-live reservation) and <= now. Under
  /// that contract every decision the ledger makes after compaction is
  /// bit-identical to the uncompacted ledger's (TimelineProfile::
  /// retire_before). Returns the breakpoints retired by the pass this call
  /// ran, 0 when release-debt batching deferred it.
  std::size_t advance_horizon(TimePoint horizon);

  /// Runs the retirement pass now, regardless of accumulated release debt.
  /// Per-port policy unchanged: a port compacts only when the retirable
  /// prefix is both >= kMinRetireBatch and at least half its resident
  /// breakpoints, so fold cost stays O(1) amortized per retired breakpoint.
  std::size_t collect_retired();

  /// Last watermark handed to advance_horizon (zero before the GC is armed).
  [[nodiscard]] TimePoint gc_horizon() const { return gc_horizon_; }

  /// Total resident (merged) breakpoints across every port profile — the
  /// figure the churn bench asserts stays O(live requests) under GC.
  [[nodiscard]] std::size_t resident_breakpoints() const;

 private:
  /// Per-port probe accelerator (ISSUE 6 tentpole). The index starts stale
  /// (zero cost for reserve-only workloads); every fallback scan in `fits`
  /// charges its window width as debt, and the index is (re)built once the
  /// debt matches a build's O(n) cost — keeping probes amortized O(log n)
  /// without ever losing to the flat scan by more than 2x.
  struct PortProbe {
    ResidualIndex index;
    double scan_debt{0.0};
  };

  /// One port's half of `fits`: index probe when trustworthy, exact profile
  /// scan (plus debt accounting / amortized rebuild) otherwise. The decision
  /// is bit-identical to `approx_le(Bandwidth(peak) + add, capacity)`.
  [[nodiscard]] bool port_fits(const TimelineProfile& profile, PortProbe& probe,
                               TimePoint t0, TimePoint t1, Bandwidth add,
                               Bandwidth capacity) const;

  /// One port's share of `collect_retired`: folds the dead prefix when the
  /// amortization policy says it pays, and invalidates the port's residual
  /// index (its snapshot no longer matches the compacted arrays).
  std::size_t maybe_retire_port(TimelineProfile& profile, PortProbe& probe);

  const Network* network_;
  std::vector<TimelineProfile> ingress_;
  std::vector<TimelineProfile> egress_;
  mutable std::vector<PortProbe> ingress_probe_;
  mutable std::vector<PortProbe> egress_probe_;
  obs::Observer* observer_{nullptr};
  // GC state: watermark, whether advance_horizon armed the release path, and
  // releases accumulated since the last retirement pass (scan-debt-style
  // batching — the pass itself is O(ports · log n) even when nothing folds).
  TimePoint gc_horizon_{};
  bool gc_armed_{false};
  std::size_t gc_release_debt_{0};
};

/// The paper's online counters: ali(i), ale(e).
///
/// Unlike NetworkLedger, this book is uninstrumented on its hot paths: the
/// methods are O(1) and sit inside slice-sweep loops that call them millions
/// of times, where even a disabled-observer branch is measurable in
/// unoptimized builds. Engines narrate admissions via the note_* helpers.
/// The one exception is the anomaly hook: `reclaim` driving a counter below
/// zero by more than the admission tolerance is a mismatched
/// allocate/reclaim pair, asserted in debug builds and counted
/// (kLedgerDriftClamped) when an observer is attached — that branch is only
/// ever reached on the clamp path, so healthy runs pay nothing.
class CounterLedger {
 public:
  explicit CounterLedger(const Network& network);

  /// ali(i) + bw <= B_in(i) and ale(e) + bw <= B_out(e)?
  [[nodiscard]] bool fits(IngressId i, EgressId e, Bandwidth bw) const;

  /// ali(i) += bw; ale(e) += bw. Does not re-check `fits`.
  void allocate(IngressId i, EgressId e, Bandwidth bw);

  /// Reclaims a finished transfer's bandwidth. Counters dipping a hair
  /// below zero (FP noise on long allocate/reclaim chains) are clamped
  /// silently; drift beyond the 1 byte/s admission tolerance trips a debug
  /// assertion and bumps kLedgerDriftClamped on the attached observer.
  void reclaim(IngressId i, EgressId e, Bandwidth bw);

  /// Attaches the drift-anomaly observer (see class comment). Null detaches.
  void attach_observer(obs::Observer* observer) { observer_ = observer; }

  /// Zeroes every counter in place (no reallocation) — the cheap
  /// alternative to constructing a fresh ledger per time slice.
  void reset();

  [[nodiscard]] Bandwidth allocated_ingress(IngressId i) const {
    return ingress_.at(i.value);
  }
  [[nodiscard]] Bandwidth allocated_egress(EgressId e) const { return egress_.at(e.value); }

  /// Utilization ratios used by the WINDOW heuristic's cost function:
  /// (ali(i) + bw) / B_in(i) and (ale(e) + bw) / B_out(e).
  [[nodiscard]] double ingress_util_with(IngressId i, Bandwidth bw) const;
  [[nodiscard]] double egress_util_with(EgressId e, Bandwidth bw) const;

  /// Per-port halves of `fits`, for rejection-reason classification.
  [[nodiscard]] bool fits_ingress(IngressId i, Bandwidth bw) const {
    return approx_le(ingress_.at(i.value) + bw, network_->ingress_capacity(i));
  }
  [[nodiscard]] bool fits_egress(EgressId e, Bandwidth bw) const {
    return approx_le(egress_.at(e.value) + bw, network_->egress_capacity(e));
  }

  [[nodiscard]] const Network& network() const { return *network_; }

 private:
  /// Cold half of the reclaim clamp: asserts/counts when `value` is below
  /// -1 byte/s. Out of line so the hot loop only pays a call on the
  /// (already rare) negative branch.
  void note_negative_drift(Bandwidth value) const;

  const Network* network_;
  std::vector<Bandwidth> ingress_;
  std::vector<Bandwidth> egress_;
  obs::Observer* observer_{nullptr};
};

/// Incremental admission book for slice sweeps over a fixed request set.
///
/// Requests are addressed by their dense index k in [0, request_count).
/// The book remembers, for every admitted request, the bandwidth it holds on
/// its two ports, so the sweep can apply *deltas* at slice boundaries:
/// `drop` subtracts a departing or retro-removed request's contribution, and
/// `try_admit` re-runs the greedy fit-then-allocate step for exactly the
/// suffix of the per-slice order whose decisions can have changed. Port
/// counters are never rebuilt from scratch.
class AdmissionLedger {
 public:
  AdmissionLedger(const Network& network, std::size_t request_count);

  /// Greedy admission step: if `bw` fits on (i, e) given all currently
  /// admitted allocations, records it for request `k` and returns true.
  /// `k` must not already be admitted.
  bool try_admit(std::size_t k, IngressId i, EgressId e, Bandwidth bw);

  /// Subtracts request `k`'s admitted bandwidth from its ports (finish or
  /// retro-removal delta). No-op if `k` is not admitted.
  void drop(std::size_t k, IngressId i, EgressId e);

  [[nodiscard]] bool is_admitted(std::size_t k) const {
    return admitted_.at(k).is_positive();
  }
  [[nodiscard]] Bandwidth admitted_bw(std::size_t k) const { return admitted_.at(k); }

  /// Forgets every admission and zeroes the counters in place.
  void reset();

  /// Forwards the drift-anomaly observer to the underlying counters.
  void attach_observer(obs::Observer* observer) { counters_.attach_observer(observer); }

  [[nodiscard]] const CounterLedger& counters() const { return counters_; }

 private:
  CounterLedger counters_;
  std::vector<Bandwidth> admitted_;  // zero = not admitted
};

}  // namespace gridbw
