// gridbw/core/request.hpp
//
// A short-lived bulk-transfer request (paper §2.1):
//
//   r = (ingress, egress, [t_s, t_f], vol, MaxRate)
//
// MinRate(r) = vol / (t_f - t_s) is derived: the slowest constant rate that
// still finishes inside the requested window. A request is *rigid* when
// MinRate == MaxRate (no bandwidth choice) and *flexible* otherwise.

#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/ids.hpp"
#include "util/quantity.hpp"

namespace gridbw {

struct Request {
  RequestId id{0};
  IngressId ingress{};
  EgressId egress{};
  /// Requested transmission window [t_s, t_f].
  TimePoint release;   // t_s(r): earliest start (also the arrival time)
  TimePoint deadline;  // t_f(r): latest completion
  Volume volume;
  /// Transmission limit of the attached host.
  Bandwidth max_rate;

  /// vol(r) / (t_f - t_s): minimum feasible constant rate.
  [[nodiscard]] Bandwidth min_rate() const { return volume / (deadline - release); }

  /// Requested window length.
  [[nodiscard]] Duration window() const { return deadline - release; }

  /// Minimum feasible rate when the transfer only starts at `start`
  /// (>= release): vol / (t_f - start). Infinite if start >= deadline.
  [[nodiscard]] Bandwidth min_rate_from(TimePoint start) const {
    const Duration remaining = deadline - start;
    if (!remaining.is_positive()) return Bandwidth::infinity();
    return volume / remaining;
  }

  /// Transfer time at rate `bw`.
  [[nodiscard]] Duration transfer_time(Bandwidth bw) const { return volume / bw; }

  /// MinRate == MaxRate within tolerance: the request admits exactly one
  /// bandwidth and must occupy its whole window.
  [[nodiscard]] bool is_rigid() const {
    return approx_le(max_rate, min_rate());  // min_rate <= max_rate always holds
  }

  /// A request is well-formed when the window is positive, the volume is
  /// positive, and MaxRate is high enough to finish inside the window.
  [[nodiscard]] bool is_well_formed() const;

  /// Diagnostic rendering ("r42: in3->out7 [10s,110s] 500 GB <= 1.0 GB/s").
  [[nodiscard]] std::string describe() const;
};

/// Fluent builder, mainly for tests and examples. Throws on an ill-formed
/// request at `build()` time.
class RequestBuilder {
 public:
  explicit RequestBuilder(RequestId id) { request_.id = id; }

  RequestBuilder& from(IngressId i) { request_.ingress = i; return *this; }
  RequestBuilder& to(EgressId e) { request_.egress = e; return *this; }
  RequestBuilder& window(TimePoint release, TimePoint deadline) {
    request_.release = release;
    request_.deadline = deadline;
    return *this;
  }
  RequestBuilder& volume(Volume v) { request_.volume = v; return *this; }
  RequestBuilder& max_rate(Bandwidth b) { request_.max_rate = b; return *this; }

  /// Convenience: rigid request transmitting at exactly `rate` for the whole
  /// window [release, release + length] (volume = rate * length).
  RequestBuilder& rigid(TimePoint release, Duration length, Bandwidth rate) {
    request_.release = release;
    request_.deadline = release + length;
    request_.volume = rate * length;
    request_.max_rate = rate;
    return *this;
  }

  [[nodiscard]] Request build() const;

 private:
  Request request_;
};

/// Sorts requests by release time, breaking ties by ascending MinRate and
/// then id (the FCFS service order of §4.1 / §5.1). Stable and total.
void sort_fcfs(std::vector<Request>& requests);

/// Total demanded bandwidth sum_{r} MinRate(r) — numerator of the paper's
/// §4.3 load definition.
[[nodiscard]] Bandwidth total_demand(std::span<const Request> requests);

}  // namespace gridbw
