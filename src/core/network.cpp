#include "core/network.hpp"

namespace gridbw {

Network::Network(std::vector<Bandwidth> ingress_capacities,
                 std::vector<Bandwidth> egress_capacities)
    : ingress_{std::move(ingress_capacities)}, egress_{std::move(egress_capacities)} {
  if (ingress_.empty() || egress_.empty()) {
    throw std::invalid_argument{"Network: need at least one ingress and one egress"};
  }
  for (Bandwidth b : ingress_) {
    if (!b.is_positive() || !b.is_finite()) {
      throw std::invalid_argument{"Network: ingress capacities must be positive and finite"};
    }
  }
  for (Bandwidth b : egress_) {
    if (!b.is_positive() || !b.is_finite()) {
      throw std::invalid_argument{"Network: egress capacities must be positive and finite"};
    }
  }
}

Network Network::uniform(std::size_t ingress_count, std::size_t egress_count,
                         Bandwidth capacity) {
  return Network{std::vector<Bandwidth>(ingress_count, capacity),
                 std::vector<Bandwidth>(egress_count, capacity)};
}

Bandwidth Network::total_capacity() const {
  Bandwidth total = Bandwidth::zero();
  for (Bandwidth b : ingress_) total += b;
  for (Bandwidth b : egress_) total += b;
  return total;
}

}  // namespace gridbw
