// gridbw/core/step_function.hpp
//
// A piecewise-constant, right-continuous function of time, represented as a
// sorted map of deltas. Used as the exact allocation profile of a port: each
// accepted request adds `bw` over [start, end), and feasibility means the
// running sum never exceeds the port capacity.
//
// Complexity: add is O(log n); queries are O(n) scans over breakpoints.
// This is the *reference* implementation: obviously correct, kept for
// differential-testing the flat, cache-friendly TimelineProfile
// (core/timeline_profile.hpp) that the hot paths — validator, ledgers,
// dataplane replay, BOOK-AHEAD probes — now use.

#pragma once

#include <map>
#include <vector>

#include "util/quantity.hpp"

namespace gridbw {

class StepFunction {
 public:
  /// Adds `delta` to the function over [t0, t1). No-op when t0 >= t1.
  void add(TimePoint t0, TimePoint t1, double delta);

  /// Value at time t (right-continuous: the value on [t, next breakpoint)).
  [[nodiscard]] double value_at(TimePoint t) const;

  /// Maximum over the half-open interval [t0, t1). Returns 0 for an empty
  /// function or an empty interval.
  [[nodiscard]] double max_over(TimePoint t0, TimePoint t1) const;

  /// Maximum over the whole time axis.
  [[nodiscard]] double global_max() const;

  /// Integral over [t0, t1) (value x seconds).
  [[nodiscard]] double integral(TimePoint t0, TimePoint t1) const;

  /// Times at which the function changes value, in increasing order.
  [[nodiscard]] std::vector<TimePoint> breakpoints() const;

  [[nodiscard]] bool empty() const { return deltas_.empty(); }

  /// Removes breakpoints whose accumulated delta has cancelled to ~0 (after
  /// many add/release pairs); keeps query scans short. Values within
  /// `tolerance` of zero are dropped.
  void compact(double tolerance = 1e-9);

 private:
  // time (seconds) -> delta applied from that instant onwards
  std::map<double, double> deltas_;
};

}  // namespace gridbw
