#include "core/request.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <stdexcept>

namespace gridbw {

bool Request::is_well_formed() const {
  if (!(deadline > release)) return false;
  if (!volume.is_positive()) return false;
  if (!max_rate.is_positive() || !max_rate.is_finite()) return false;
  // MaxRate must allow completion within the window (MinRate <= MaxRate).
  return approx_le(min_rate(), max_rate);
}

std::string Request::describe() const {
  std::array<char, 160> buf{};
  std::snprintf(buf.data(), buf.size(), "r%llu: in%zu->out%zu [%.1fs,%.1fs] %s <= %s",
                static_cast<unsigned long long>(id), ingress.value, egress.value,
                release.to_seconds(), deadline.to_seconds(),
                to_string(volume).c_str(), to_string(max_rate).c_str());
  return std::string{buf.data()};
}

Request RequestBuilder::build() const {
  if (!request_.is_well_formed()) {
    throw std::invalid_argument{"RequestBuilder: ill-formed request " + request_.describe()};
  }
  return request_;
}

void sort_fcfs(std::vector<Request>& requests) {
  // Stable with an id tie-break: colliding release times (batch arrivals,
  // trace replays) must order identically regardless of input permutation.
  std::stable_sort(requests.begin(), requests.end(),
                   [](const Request& a, const Request& b) {
                     if (a.release != b.release) return a.release < b.release;
                     if (a.min_rate() != b.min_rate()) return a.min_rate() < b.min_rate();
                     return a.id < b.id;
                   });
}

Bandwidth total_demand(std::span<const Request> requests) {
  Bandwidth total = Bandwidth::zero();
  for (const Request& r : requests) total += r.min_rate();
  return total;
}

}  // namespace gridbw
