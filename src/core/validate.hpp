// gridbw/core/validate.hpp
//
// Independent feasibility checking. Every heuristic maintains its own
// running book while scheduling; the validator ignores those books and
// replays the finished schedule against the constraint set (1) of the paper
// using exact port-load profiles. Tests validate every schedule any
// algorithm produces, so allocation bugs cannot hide behind agreeing
// bookkeeping.
//
// Three interchangeable engines produce identical ValidationReports:
//
//  * kReference — the original serial StepFunction (std::map) path, kept as
//    the obviously-correct baseline the others are differential-tested
//    against.
//  * kSerial    — flat TimelineProfile port profiles, serial port sweep.
//  * kParallel  — flat profiles with the per-port capacity checks fanned out
//    across a thread pool (ports are independent); violations are merged in
//    deterministic port order, so the report is byte-identical to kSerial.
//  * kAuto (default) — kSerial below `parallel_threshold` assignments,
//    kParallel at or above it.

#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/ids.hpp"
#include "core/network.hpp"
#include "core/request.hpp"
#include "core/schedule.hpp"
#include "obs/observer.hpp"

namespace gridbw {

enum class ViolationKind {
  kUnknownRequest,        // assignment references an id not in the request set
  kDuplicateAssignment,   // a request id appears in more than one assignment
  kStartBeforeRelease,    // σ(r) < t_s(r)
  kEndAfterDeadline,      // τ(r) > t_f(r)
  kRateAboveMax,          // bw(r) > MaxRate(r) (peak step rate when profiled)
  kRateNotPositive,       // bw(r) <= 0
  kIngressOverCapacity,   // sum of bw at an ingress exceeds B_in(i)
  kEgressOverCapacity,    // sum of bw at an egress exceeds B_out(e)
  kProfileMalformed,      // rate profile fails RateProfile::defect
  kProfileVolumeMismatch, // profile integral != vol(r)
};

[[nodiscard]] std::string to_string(ViolationKind kind);

struct Violation {
  ViolationKind kind;
  /// Offending request (0 for port-level violations).
  RequestId request{0};
  /// Offending port index (request's port for per-request checks).
  std::size_t port{0};
  std::string detail;
};

struct ValidationReport {
  std::vector<Violation> violations;
  [[nodiscard]] bool ok() const { return violations.empty(); }
  [[nodiscard]] std::string to_string() const;
};

enum class ValidateEngine { kAuto, kReference, kSerial, kParallel };

struct ValidateOptions {
  /// The tuning factor f of §2.3: also check
  /// bw(r) >= max(f * MaxRate(r), MinRate-from-start); 0 disables.
  double min_rate_guarantee{0.0};
  ValidateEngine engine{ValidateEngine::kAuto};
  /// kAuto switches to the parallel port sweep at this many assignments.
  std::size_t parallel_threshold{8192};
  /// Worker threads for kParallel; 0 = hardware concurrency.
  std::size_t threads{0};
  /// Optional observability hook: bumps kValidatorRuns / kValidatorAssignments
  /// / kValidatorViolations. Counters only — no events are emitted, so serial
  /// and parallel engines stay byte-identical in any attached trace.
  obs::Observer* observer{nullptr};
};

/// Checks a schedule against the request set and network capacities.
[[nodiscard]] ValidationReport validate_schedule(const Network& network,
                                                 std::span<const Request> requests,
                                                 const Schedule& schedule,
                                                 const ValidateOptions& options);

/// Back-compatible form: `min_rate_guarantee` only, default engine.
[[nodiscard]] ValidationReport validate_schedule(const Network& network,
                                                 std::span<const Request> requests,
                                                 const Schedule& schedule,
                                                 double min_rate_guarantee = 0.0);

/// Validates a raw assignment list that need not satisfy the Schedule
/// class's uniqueness invariant — duplicate request ids are reported as
/// kDuplicateAssignment (the duplicate's load is not double-counted).
[[nodiscard]] ValidationReport validate_assignments(const Network& network,
                                                    std::span<const Request> requests,
                                                    std::span<const Assignment> assignments,
                                                    const ValidateOptions& options = {});

}  // namespace gridbw
