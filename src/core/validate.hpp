// gridbw/core/validate.hpp
//
// Independent feasibility checking. Every heuristic maintains its own
// running book while scheduling; the validator ignores those books and
// replays the finished schedule against the constraint set (1) of the paper
// using exact StepFunction port profiles. Tests validate every schedule any
// algorithm produces, so allocation bugs cannot hide behind agreeing
// bookkeeping.

#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/ids.hpp"
#include "core/network.hpp"
#include "core/request.hpp"
#include "core/schedule.hpp"

namespace gridbw {

enum class ViolationKind {
  kUnknownRequest,       // assignment references an id not in the request set
  kStartBeforeRelease,   // σ(r) < t_s(r)
  kEndAfterDeadline,     // τ(r) > t_f(r)
  kRateAboveMax,         // bw(r) > MaxRate(r)
  kRateNotPositive,      // bw(r) <= 0
  kIngressOverCapacity,  // sum of bw at an ingress exceeds B_in(i)
  kEgressOverCapacity,   // sum of bw at an egress exceeds B_out(e)
};

[[nodiscard]] std::string to_string(ViolationKind kind);

struct Violation {
  ViolationKind kind;
  /// Offending request (0 for port-level violations).
  RequestId request{0};
  /// Offending port index (request's port for per-request checks).
  std::size_t port{0};
  std::string detail;
};

struct ValidationReport {
  std::vector<Violation> violations;
  [[nodiscard]] bool ok() const { return violations.empty(); }
  [[nodiscard]] std::string to_string() const;
};

/// Checks a schedule against the request set and network capacities.
/// `min_rate_guarantee` (the tuning factor f of §2.3) optionally also checks
/// bw(r) >= max(f * MaxRate(r), MinRate-from-start); pass 0 to disable.
[[nodiscard]] ValidationReport validate_schedule(const Network& network,
                                                 std::span<const Request> requests,
                                                 const Schedule& schedule,
                                                 double min_rate_guarantee = 0.0);

}  // namespace gridbw
