// gridbw/core/ids.hpp
//
// Strongly-typed identifiers. Ingress and egress ports are both small
// indices; distinct types prevent the classic swapped-argument bug when a
// request's two endpoints travel through the scheduling stack together.

#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>

namespace gridbw {

/// Index of an ingress port within a Network (0-based, dense).
struct IngressId {
  std::size_t value{0};
  friend constexpr auto operator<=>(IngressId, IngressId) = default;
};

/// Index of an egress port within a Network (0-based, dense).
struct EgressId {
  std::size_t value{0};
  friend constexpr auto operator<=>(EgressId, EgressId) = default;
};

/// Identifier of a request, unique within one workload / experiment run.
using RequestId = std::uint64_t;

}  // namespace gridbw

template <>
struct std::hash<gridbw::IngressId> {
  [[nodiscard]] std::size_t operator()(gridbw::IngressId id) const noexcept {
    return std::hash<std::size_t>{}(id.value);
  }
};

template <>
struct std::hash<gridbw::EgressId> {
  [[nodiscard]] std::size_t operator()(gridbw::EgressId id) const noexcept {
    return std::hash<std::size_t>{}(id.value);
  }
};
