// gridbw/core/network.hpp
//
// The platform (I, E) of the paper's system model: M ingress points and N
// egress points with per-port capacities B_in(i) / B_out(e). The network
// core is assumed lossless and over-provisioned (paper §2), so only the
// access ports constrain scheduling.

#pragma once

#include <span>
#include <stdexcept>
#include <vector>

#include "core/ids.hpp"
#include "util/quantity.hpp"

namespace gridbw {

class Network {
 public:
  /// Builds a network from explicit per-port capacities. All capacities must
  /// be strictly positive.
  Network(std::vector<Bandwidth> ingress_capacities,
          std::vector<Bandwidth> egress_capacities);

  /// Builds the paper's uniform platform: `ingress_count` x `egress_count`
  /// ports, all with capacity `capacity` (§4.3 uses 10 x 10 at 1 GB/s).
  [[nodiscard]] static Network uniform(std::size_t ingress_count, std::size_t egress_count,
                                       Bandwidth capacity);

  [[nodiscard]] std::size_t ingress_count() const { return ingress_.size(); }
  [[nodiscard]] std::size_t egress_count() const { return egress_.size(); }

  [[nodiscard]] Bandwidth ingress_capacity(IngressId i) const {
    return ingress_.at(i.value);
  }
  [[nodiscard]] Bandwidth egress_capacity(EgressId e) const { return egress_.at(e.value); }

  [[nodiscard]] std::span<const Bandwidth> ingress_capacities() const { return ingress_; }
  [[nodiscard]] std::span<const Bandwidth> egress_capacities() const { return egress_; }

  /// Sum of all ingress plus all egress capacities. The paper's load and
  /// RESOURCE-UTIL denominators use half of this (each request is counted
  /// at both its ingress and its egress).
  [[nodiscard]] Bandwidth total_capacity() const;

  /// min(B_in(ingress(r)), B_out(egress(r))) — the `b_min` of the
  /// CUMULATED-SLOTS cost factor.
  [[nodiscard]] Bandwidth bottleneck(IngressId i, EgressId e) const {
    return min(ingress_capacity(i), egress_capacity(e));
  }

 private:
  std::vector<Bandwidth> ingress_;
  std::vector<Bandwidth> egress_;
};

}  // namespace gridbw
