#include "service/admission_service.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>

#include "core/timeline_profile.hpp"
#include "obs/counters.hpp"
#include "obs/event.hpp"

namespace gridbw::service {
namespace {

// FNV-1a, the same construction the validator uses for schedule digests.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffULL;
    h *= kFnvPrime;
  }
  return h;
}

// Min-heap of reservation start instants with lazy deletion: departures
// push the matching start onto `dead` and the purge cancels equal tops.
// After a purge, live.top() is a lower bound on the earliest live start —
// exact once every older departure has been applied, conservative (never
// too high) in between, which is the safe direction for a GC watermark.
struct StartHeap {
  std::priority_queue<double, std::vector<double>, std::greater<>> live;
  std::priority_queue<double, std::vector<double>, std::greater<>> dead;

  void admit(double start) { live.push(start); }
  void expire(double start) {
    dead.push(start);
    while (!dead.empty() && !live.empty() && dead.top() == live.top()) {
      dead.pop();
      live.pop();
    }
  }
  [[nodiscard]] bool any_live() const { return !live.empty(); }
  [[nodiscard]] double min_live_start() const { return live.top(); }
};

}  // namespace

struct AdmissionService::Impl {
  // One shard per port. `applied` counts executed events on this port; a
  // worker may touch anything else in the cell only while holding `mu` AND
  // having observed `applied` equal to its event's per-port sequence number
  // — that pair of conditions is what serializes the whole execution into
  // the global event order.
  struct PortCell {
    std::mutex mu;
    std::condition_variable cv;
    std::uint64_t applied{0};  // gridbw:guarded_by(mu)
    std::uint64_t next_seq{0};  // drain-time sequencing cursor (no lock needed)
    TimelineProfile profile;  // gridbw:guarded_by(mu)
    double capacity{0.0};  // immutable after construction
    StartHeap starts;  // gridbw:guarded_by(mu)
    std::size_t departures_since_gc{0};  // gridbw:guarded_by(mu)
  };

  // One arrival or departure, fully sequenced before execution starts. The
  // departure of a request that ends up rejected still occupies its slots in
  // both ports' sequences (as a no-op), so the sequence numbers — and with
  // them the execution order — never depend on admission outcomes.
  struct Event {
    double t{0.0};
    std::uint32_t req{0};
    bool departure{false};
    std::uint32_t cell_lo{0}, cell_hi{0};  // global port cells, lo < hi
    std::uint64_t seq_lo{0}, seq_hi{0};
  };

  const Network* network;
  ServiceOptions options;
  // deque, not vector: PortCell holds a mutex (immovable) and workers keep
  // raw references into the container, so elements must never relocate.
  std::deque<PortCell> cells;

  std::mutex ingest_mu;
  std::vector<Request> inbox;  // gridbw:guarded_by(ingest_mu)

  // Batch-persistent request state, indexed by accepted order across drains.
  std::vector<Request> requests;
  std::vector<double> rate;               // granted bandwidth (min_rate), bytes/s
  std::vector<std::uint8_t> admitted;     // written once by the home worker
  std::vector<std::uint8_t> reason;       // RejectReason when not admitted
  std::vector<double> latency;            // clock units; NaN-free, arrivals only
  std::size_t drained{0};                 // requests already executed
  double last_event_t{0.0};
  std::size_t live{0};

  // Workers reach the GC tallies from collect_cell with a port-cell `mu`
  // already held, never the other way around.
  // gridbw:lock-order(mu < gc_mu)
  std::mutex gc_mu;  // serializes GC counter accumulation across workers
  std::size_t compactions{0};  // gridbw:guarded_by(gc_mu)
  std::size_t retired{0};  // gridbw:guarded_by(gc_mu)

  explicit Impl(const Network& net, ServiceOptions opts)
      : network(&net), options(std::move(opts)) {
    if (options.shards == 0) options.shards = 1;
    if (options.gc_batch == 0) options.gc_batch = 1;
    cells.resize(net.ingress_count() + net.egress_count());
    for (std::size_t p = 0; p < net.ingress_count(); ++p) {
      cells[p].capacity = net.ingress_capacity(IngressId{p}).to_bytes_per_second();
    }
    for (std::size_t p = 0; p < net.egress_count(); ++p) {
      cells[net.ingress_count() + p].capacity =
          net.egress_capacity(EgressId{p}).to_bytes_per_second();
    }
  }

  [[nodiscard]] std::size_t cell_of_ingress(IngressId i) const { return i.value; }
  [[nodiscard]] std::size_t cell_of_egress(EgressId e) const {
    return network->ingress_count() + e.value;
  }
  [[nodiscard]] std::size_t home_worker(std::uint32_t req) const {
    return requests[req].ingress.value % options.shards;
  }

  // ---- batch construction -------------------------------------------------

  std::vector<Event> sequence_batch() {
    {
      std::scoped_lock lk{ingest_mu};
      // Sort the new batch by id so the event order is independent of the
      // (possibly concurrent) submission interleaving.
      std::sort(inbox.begin(), inbox.end(),
                [](const Request& a, const Request& b) { return a.id < b.id; });
      requests.insert(requests.end(), inbox.begin(), inbox.end());
      inbox.clear();
    }
    const std::size_t first = drained;
    const std::size_t total = requests.size();
    rate.resize(total, 0.0);
    admitted.resize(total, 0);
    reason.resize(total, static_cast<std::uint8_t>(obs::RejectReason::kNone));
    latency.resize(total, 0.0);

    std::vector<Event> events;
    events.reserve(2 * (total - first));
    for (std::size_t k = first; k < total; ++k) {
      const Request& r = requests[k];
      Event ev;
      ev.req = static_cast<std::uint32_t>(k);
      const std::size_t ci = cell_of_ingress(r.ingress);
      const std::size_t ce = cell_of_egress(r.egress);
      ev.cell_lo = static_cast<std::uint32_t>(std::min(ci, ce));
      ev.cell_hi = static_cast<std::uint32_t>(std::max(ci, ce));
      ev.t = r.release.to_seconds();
      ev.departure = false;
      events.push_back(ev);
      if (r.deadline > r.release) {
        rate[k] = r.min_rate().to_bytes_per_second();
        ev.t = r.deadline.to_seconds();
        ev.departure = true;
        events.push_back(ev);
      } else {
        reason[k] = static_cast<std::uint8_t>(obs::RejectReason::kDegenerateWindow);
      }
    }
    // Global deterministic order: time, then departures before arrivals at
    // equal instants (reservations are half-open, so bandwidth ending at t
    // is available to work released at t), then request id.
    std::stable_sort(events.begin(), events.end(),
                     [](const Event& a, const Event& b) {
                       if (a.t != b.t) return a.t < b.t;
                       if (a.departure != b.departure) return a.departure;
                       return a.req < b.req;
                     });
    for (Event& ev : events) {
      ev.seq_lo = cells[ev.cell_lo].next_seq++;
      ev.seq_hi = cells[ev.cell_hi].next_seq++;
    }
    return events;
  }

  // ---- execution ----------------------------------------------------------

  // gridbw:hot
  // gridbw:requires(mu)
  void execute_arrival(const Event& ev) {
    const Request& r = requests[ev.req];
    if (reason[ev.req] !=
        static_cast<std::uint8_t>(obs::RejectReason::kNone)) {
      return;  // degenerate window, rejected at sequencing time
    }
    if (!approx_le(r.min_rate(), r.max_rate)) {
      reason[ev.req] = static_cast<std::uint8_t>(obs::RejectReason::kInfeasibleRate);
      return;
    }
    PortCell& in = cells[cell_of_ingress(r.ingress)];
    PortCell& eg = cells[cell_of_egress(r.egress)];
    const double bw = rate[ev.req];
    // Decision threshold spelled exactly like NetworkLedger::port_fits so
    // the service and the batch engines agree on borderline loads.
    const bool in_fits =
        approx_le(Bandwidth::bytes_per_second(in.profile.max_over(r.release, r.deadline) + bw),
                  Bandwidth::bytes_per_second(in.capacity));
    const bool eg_fits =
        approx_le(Bandwidth::bytes_per_second(eg.profile.max_over(r.release, r.deadline) + bw),
                  Bandwidth::bytes_per_second(eg.capacity));
    if (!in_fits || !eg_fits) {
      reason[ev.req] =
          static_cast<std::uint8_t>(obs::classify_saturation(in_fits, eg_fits));
      return;
    }
    in.profile.add(r.release, r.deadline, bw);
    eg.profile.add(r.release, r.deadline, bw);
    in.starts.admit(r.release.to_seconds());
    eg.starts.admit(r.release.to_seconds());
    admitted[ev.req] = 1;
  }

  // gridbw:hot
  // gridbw:requires(mu)
  void execute_departure(const Event& ev) {
    if (admitted[ev.req] == 0) return;  // rejected: sequence no-op
    const Request& r = requests[ev.req];
    const double bw = rate[ev.req];
    for (PortCell* cell : {&cells[cell_of_ingress(r.ingress)],
                           &cells[cell_of_egress(r.egress)]}) {
      cell->profile.add(r.release, r.deadline, -bw);
      cell->starts.expire(r.release.to_seconds());
      if (options.gc && ++cell->departures_since_gc >= options.gc_batch) {
        cell->departures_since_gc = 0;
        collect_cell(*cell, ev.t);
      }
    }
  }

  // Retire the dead breakpoint prefix of one port, guarded by the safe
  // watermark: never past the earliest live reservation start (future
  // departures re-touch their start instant) and never past the current
  // event time (future arrivals release at or after it). Same amortization
  // policy as NetworkLedger::maybe_retire_port: fold only when at least a
  // batch of breakpoints retires AND they are at least half the residents,
  // so the erase/shift cost stays O(1) amortized per retired breakpoint.
  // gridbw:requires(mu)
  // GRIDBW-ALLOW(hot-propagation): amortized GC tail, off the per-event path
  void collect_cell(PortCell& cell, double now) {
    constexpr std::size_t kMinRetireBatch = 64;
    double horizon = now;
    if (cell.starts.any_live()) {
      horizon = std::min(horizon, cell.starts.min_live_start());
    }
    const std::size_t retirable =
        cell.profile.retirable_before(TimePoint::at_seconds(horizon));
    if (retirable < kMinRetireBatch || retirable * 2 < cell.profile.breakpoint_count()) {
      return;
    }
    const std::size_t n = cell.profile.retire_before(TimePoint::at_seconds(horizon));
    if (n == 0) return;
    {
      std::scoped_lock lk{gc_mu};
      compactions += 1;
      retired += n;
    }
    if (options.observer != nullptr) {
      options.observer->count(obs::Counter::kProfileCompactions);
      options.observer->count(obs::Counter::kBreakpointsRetired, n);
    }
  }

  // Worker loop: execute `mine` (this worker's slice of the global event
  // order) one event at a time. For each event, lock the lower-id port and
  // wait until it has applied exactly the events sequenced before ours,
  // then do the same on the higher-id port. Deadlock-free: a worker blocked
  // on a port is waiting for an event strictly earlier in the global order,
  // and the earliest unexecuted event's waits are always satisfiable, so
  // every blocking chain terminates. With both counts matched the two-port
  // state equals the serial replay's, which is what makes decisions
  // independent of shard count and scheduling.
  //
  // gridbw:lock-order(lo.mu < hi.mu)
  void run_worker(const std::vector<Event>& events, const std::vector<std::uint32_t>& mine) {
    const bool timed = static_cast<bool>(options.clock);
    for (const std::uint32_t idx : mine) {
      const Event& ev = events[idx];
      // Caller-injected latency clock: decisions never read it, so
      // determinism is unaffected (see the header contract).
      // GRIDBW-ALLOW(wall-clock): injected latency clock, never drives decisions
      const double t0 = timed && !ev.departure ? options.clock() : 0.0;
      PortCell& lo = cells[ev.cell_lo];
      PortCell& hi = cells[ev.cell_hi];
      std::unique_lock llo{lo.mu};
      lo.cv.wait(llo, [&] { return lo.applied == ev.seq_lo; });
      std::unique_lock lhi{hi.mu};
      hi.cv.wait(lhi, [&] { return hi.applied == ev.seq_hi; });
      if (ev.departure) {
        execute_departure(ev);
      } else {
        execute_arrival(ev);
        // GRIDBW-ALLOW(wall-clock): same injected latency clock as above.
        if (timed) latency[ev.req] = options.clock() - t0;
      }
      lo.applied += 1;
      hi.applied += 1;
      lhi.unlock();
      llo.unlock();
      lo.cv.notify_all();
      hi.cv.notify_all();
    }
  }

  ServiceReport drain() {
    const std::vector<Event> events = sequence_batch();
    const std::size_t first = drained;
    drained = requests.size();

    const std::size_t workers =
        std::min<std::size_t>(options.shards, std::max<std::size_t>(events.size(), 1));
    std::vector<std::vector<std::uint32_t>> slices(workers);
    for (std::uint32_t k = 0; k < events.size(); ++k) {
      slices[home_worker(events[k].req) % workers].push_back(k);
    }
    if (workers == 1) {
      if (!slices.empty()) run_worker(events, slices[0]);
    } else {
      std::vector<std::thread> pool;
      std::vector<std::exception_ptr> failures(workers);
      pool.reserve(workers);
      for (std::size_t w = 0; w < workers; ++w) {
        pool.emplace_back([this, &events, &slices, &failures, w] {
          try {
            run_worker(events, slices[w]);
          } catch (...) {
            failures[w] = std::current_exception();
          }
        });
      }
      for (std::thread& t : pool) t.join();
      for (const std::exception_ptr& e : failures) {
        if (e) std::rethrow_exception(e);
      }
    }

    // Single-threaded post-pass in event order: the trace, the lifecycle
    // counters, and the report are all derived here, so they are
    // byte-identical across shard counts and repeated same-seed runs.
    ServiceReport report;
    report.submitted = requests.size() - first;
    report.decision_fingerprint = kFnvOffset;
    obs::Observer* observer = options.observer;
    const std::size_t egress_base = network->ingress_count();
    for (const Event& ev : events) {
      const Request& r = requests[ev.req];
      last_event_t = ev.t;
      if (ev.departure) {
        if (admitted[ev.req] != 0) {
          obs::note_expired(observer, r.id, r.deadline,
                            Bandwidth::bytes_per_second(rate[ev.req]));
          report.expired += 1;
          live -= 1;
        }
        continue;
      }
      obs::note_submitted(observer, r.id, r.release);
      if (admitted[ev.req] != 0) {
        obs::note_accepted(observer, r.id, r.release, r.release,
                           Bandwidth::bytes_per_second(rate[ev.req]));
        report.admitted += 1;
        live += 1;
        report.live_peak = std::max(report.live_peak, live);
      } else {
        obs::note_rejected(observer, r.id, r.release,
                           static_cast<obs::RejectReason>(reason[ev.req]));
        report.rejected += 1;
      }
      report.decision_fingerprint =
          fnv_mix(report.decision_fingerprint,
                  fnv_mix(kFnvOffset, r.id) * 2 + admitted[ev.req]);
      // A request whose egress port lives outside its executing worker's
      // shard set crossed a shard boundary — a deterministic, static
      // property of the port pair (counted once per arrival).
      if ((egress_base + r.egress.value) % options.shards != home_worker(ev.req) &&
          observer != nullptr) {
        observer->count(obs::Counter::kShardHandoffs);
      }
    }
    {
      std::scoped_lock lk{gc_mu};
      report.compactions = compactions;
      report.breakpoints_retired = retired;
    }
    for (const PortCell& cell : cells) {
      // GRIDBW-ALLOW(guarded-by): workers joined — single-threaded post-pass
      report.resident_breakpoints += cell.profile.breakpoint_count();
    }
    if (options.clock) {
      report.latency.reserve(report.submitted);
      for (const Event& ev : events) {
        if (!ev.departure) report.latency.push_back(latency[ev.req]);
      }
    }
    return report;
  }

  [[nodiscard]] ServiceSnapshot snapshot() const {
    ServiceSnapshot snap;
    snap.ports = cells.size();
    snap.live = live;
    const TimePoint t = TimePoint::at_seconds(last_event_t);
    for (const PortCell& cell : cells) {
      // GRIDBW-ALLOW(guarded-by): snapshot is documented single-threaded
      snap.resident_breakpoints += cell.profile.breakpoint_count();
      // GRIDBW-ALLOW(guarded-by): snapshot is documented single-threaded
      snap.peak_standing_load = std::max(snap.peak_standing_load, cell.profile.value_at(t));
    }
    return snap;
  }
};

AdmissionService::AdmissionService(const Network& network, ServiceOptions options)
    : impl_(std::make_unique<Impl>(network, std::move(options))) {}

AdmissionService::~AdmissionService() = default;

void AdmissionService::submit(const Request& request) {
  std::scoped_lock lk{impl_->ingest_mu};
  impl_->inbox.push_back(request);
}

ServiceReport AdmissionService::drain() { return impl_->drain(); }

ServiceSnapshot AdmissionService::snapshot() const { return impl_->snapshot(); }

bool AdmissionService::was_admitted(RequestId id) const {
  for (std::size_t k = 0; k < impl_->drained; ++k) {
    if (impl_->requests[k].id == id) return impl_->admitted[k] != 0;
  }
  return false;
}

}  // namespace gridbw::service
