// gridbw/service/admission_service.hpp
//
// Steady-state churn engine (ISSUE 7 tentpole, ROADMAP direction #1): the
// long-running counterpart to the closed-batch schedulers. Requests are
// ingested into a queue, sequenced into a single deterministic event order
// (arrivals at release, departures at deadline), and executed by worker
// threads over per-port ledger shards.
//
// Architecture (DESIGN.md §5h):
//
//  * One shard per port (ingress and egress ports share a global id space).
//    A shard owns its port's TimelineProfile, a mutex + condition variable,
//    an applied-event counter, and the GC bookkeeping (live-reservation
//    start heaps, departures since the last retirement scan).
//  * drain() seals the ingest queue, sorts the batch's events by
//    (time, departure-before-arrival, request id), and assigns every event a
//    per-port sequence number on its two ports. Workers claim the requests
//    whose ingress port maps to their shard set (ingress id mod workers) and
//    execute their subsequence in order.
//  * An event executes only when BOTH its ports have applied exactly the
//    events sequenced before it: the worker locks the lower-id port shard,
//    waits for its count, then locks the higher-id shard and waits for its
//    count (two-shard lock ordering by port id). Decisions therefore see
//    exactly the serial-order state, so the outcome is byte-identical to a
//    serial replay — independent of worker count and thread scheduling.
//  * Departures release the reservation's exact interval and drive the
//    breakpoint GC: every `gc_batch` departures a shard computes its safe
//    watermark (min of the current event time and its earliest live
//    reservation start) and retires the dead prefix via
//    TimelineProfile::retire_before once the amortization policy says the
//    fold pays. GC on/off decisions are bit-identical (see retire_before's
//    contract); only resident breakpoint counts differ.
//  * Traces are emitted in a single-threaded post-pass in event order, so
//    same-seed runs produce byte-identical JSONL regardless of shard count.
//
// Wall clocks never appear in this module (gridbw-wall-clock): admission
// latency capture is injected by the caller as an opaque `clock` callback
// (the churn bench passes a steady-clock lambda; the library never reads
// real time itself).

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/network.hpp"
#include "core/request.hpp"
#include "obs/observer.hpp"
#include "util/quantity.hpp"

namespace gridbw::service {

struct ServiceOptions {
  /// Worker threads; each owns the requests whose ingress port id is
  /// congruent to its index (mod shards). 1 = serial execution. The
  /// admission decisions do not depend on this value.
  std::size_t shards{1};
  /// Retired-breakpoint GC on departures. Off = profiles only grow (the
  /// pre-ISSUE-7 behavior); decisions are bit-identical either way.
  bool gc{true};
  /// Departures a shard absorbs between GC watermark scans.
  std::size_t gc_batch{64};
  /// Optional (nullable) observability: counters + trace, emitted in
  /// deterministic event order after the workers join.
  obs::Observer* observer{nullptr};
  /// Optional monotonic clock (seconds, arbitrary epoch) for per-admission
  /// latency capture. Null = no latency capture. Injected so the service
  /// itself never reads wall clocks.
  std::function<double()> clock{};
};

/// What drain() hands back for the batch it executed.
struct ServiceReport {
  std::size_t submitted{0};
  std::size_t admitted{0};
  std::size_t rejected{0};
  std::size_t expired{0};
  /// Peak simultaneously-live admitted reservations (event-order replay).
  std::size_t live_peak{0};
  /// Sum of resident (merged) breakpoints across all port shards after the
  /// batch — the figure the GC keeps O(live) instead of O(history).
  std::size_t resident_breakpoints{0};
  /// GC activity over the batch.
  std::size_t compactions{0};
  std::size_t breakpoints_retired{0};
  /// FNV-1a over (request id, admitted) in event order: two runs (any shard
  /// count, GC on or off) must agree byte-for-byte.
  std::uint64_t decision_fingerprint{0};
  /// Per-admission decision latency in `clock` units, indexed by arrival
  /// order. Empty when no clock was injected. Values are timing (not
  /// deterministic); everything else in this struct is.
  std::vector<double> latency;
};

/// Post-drain control-surface snapshot of the shard state.
struct ServiceSnapshot {
  std::size_t ports{0};
  std::size_t resident_breakpoints{0};
  /// Admitted reservations that have not yet expired.
  std::size_t live{0};
  /// Largest standing load (bytes/s) any port carries at the last executed
  /// event time — ~0 once every reservation has expired.
  double peak_standing_load{0.0};
};

/// Sharded online admission loop. Lifecycle: construct, submit() any number
/// of requests (thread-safe), drain() to execute the batch and collect the
/// report; repeat submit/drain for later batches (port state persists, so
/// later batches must not release work before already-drained instants).
/// snapshot() reads the shard state between batches.
class AdmissionService {
 public:
  AdmissionService(const Network& network, ServiceOptions options);
  ~AdmissionService();

  AdmissionService(const AdmissionService&) = delete;
  AdmissionService& operator=(const AdmissionService&) = delete;

  /// Queues a request for the next drain(). Thread-safe; the batch's event
  /// order is independent of submission interleaving (ids break ties).
  void submit(const Request& request);

  /// Seals the ingest queue, executes every queued event across the shard
  /// workers, joins them, and emits the batch's trace in event order.
  ServiceReport drain();

  [[nodiscard]] ServiceSnapshot snapshot() const;

  /// Admission outcome of an already-drained request id; false for unknown
  /// ids. Exposed for differential tests against batch engines.
  [[nodiscard]] bool was_admitted(RequestId id) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace gridbw::service
