// gridbw/baseline/maxmin.hpp
//
// The "Internet way" the paper argues against: no admission control — every
// transfer starts immediately and the network shares bandwidth max-min
// fairly among active flows (progressive filling, Bertsekas & Gallager),
// constrained by each flow's host MaxRate and its ingress/egress port
// capacities. This is a fluid-level stand-in for a population of well-tuned
// TCP flows: identical steady-state allocation, none of the packet dynamics
// (which the paper's session-level model abstracts away too).
//
// A flow that has not moved its full volume by its deadline *fails*: the
// bytes it transferred are wasted (the grid job misses its data), which is
// exactly the failure mode §5.3 describes for concurrent high-speed TCP
// flows in overloaded networks — large flows suffer and transfers die
// before ending.

#pragma once

#include <span>
#include <vector>

#include "core/network.hpp"
#include "core/request.hpp"

namespace gridbw::baseline {

/// Per-flow outcome of the fluid simulation.
struct FlowOutcome {
  RequestId id{0};
  bool completed{false};
  /// Completion instant (or the deadline at which the flow was killed).
  TimePoint finish;
  /// Bytes moved by `finish` (== volume when completed).
  Volume transferred;
};

struct MaxMinResult {
  std::vector<FlowOutcome> flows;

  [[nodiscard]] std::size_t completed_count() const;
  /// completed / total, the analogue of the accept rate (a transfer "fails"
  /// instead of being rejected up front).
  [[nodiscard]] double success_rate() const;
  /// Bytes transferred by flows that then missed their deadline — network
  /// work that bought nothing.
  [[nodiscard]] Volume wasted_bytes() const;
  /// Bytes delivered by completed flows.
  [[nodiscard]] Volume useful_bytes() const;
};

/// Runs the max-min fluid sharing simulation over the request set. Rates
/// are recomputed at every arrival, completion, and deadline event.
[[nodiscard]] MaxMinResult simulate_maxmin(const Network& network,
                                           std::span<const Request> requests);

/// The instantaneous max-min fair allocation for a set of active flows:
/// returns per-flow rates. Exposed for unit tests (progressive filling has
/// crisp hand-checkable cases). `ingress`/`egress`/`cap` describe each
/// flow; rates are capped by `max_rate`.
struct ActiveFlow {
  IngressId ingress;
  EgressId egress;
  Bandwidth max_rate;
};

[[nodiscard]] std::vector<Bandwidth> maxmin_allocation(const Network& network,
                                                       std::span<const ActiveFlow> flows);

}  // namespace gridbw::baseline
