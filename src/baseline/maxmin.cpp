#include "baseline/maxmin.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

namespace gridbw::baseline {

std::size_t MaxMinResult::completed_count() const {
  std::size_t count = 0;
  for (const FlowOutcome& f : flows) count += f.completed ? 1 : 0;
  return count;
}

double MaxMinResult::success_rate() const {
  if (flows.empty()) return 0.0;
  return static_cast<double>(completed_count()) / static_cast<double>(flows.size());
}

Volume MaxMinResult::wasted_bytes() const {
  Volume total = Volume::zero();
  for (const FlowOutcome& f : flows) {
    if (!f.completed) total += f.transferred;
  }
  return total;
}

Volume MaxMinResult::useful_bytes() const {
  Volume total = Volume::zero();
  for (const FlowOutcome& f : flows) {
    if (f.completed) total += f.transferred;
  }
  return total;
}

std::vector<Bandwidth> maxmin_allocation(const Network& network,
                                         std::span<const ActiveFlow> flows) {
  const std::size_t count = flows.size();
  std::vector<double> rate(count, 0.0);
  std::vector<char> frozen(count, 0);

  std::vector<double> rem_in(network.ingress_count());
  std::vector<double> rem_out(network.egress_count());
  for (std::size_t i = 0; i < rem_in.size(); ++i) {
    rem_in[i] = network.ingress_capacity(IngressId{i}).to_bytes_per_second();
  }
  for (std::size_t e = 0; e < rem_out.size(); ++e) {
    rem_out[e] = network.egress_capacity(EgressId{e}).to_bytes_per_second();
  }

  // Progressive filling: raise all unfrozen flows equally until a port
  // saturates or a flow reaches its host limit; freeze and repeat.
  std::size_t unfrozen = count;
  while (unfrozen > 0) {
    std::vector<std::size_t> users_in(rem_in.size(), 0), users_out(rem_out.size(), 0);
    for (std::size_t f = 0; f < count; ++f) {
      if (frozen[f]) continue;
      ++users_in[flows[f].ingress.value];
      ++users_out[flows[f].egress.value];
    }

    double delta = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < rem_in.size(); ++i) {
      if (users_in[i] > 0) delta = std::min(delta, rem_in[i] / static_cast<double>(users_in[i]));
    }
    for (std::size_t e = 0; e < rem_out.size(); ++e) {
      if (users_out[e] > 0) delta = std::min(delta, rem_out[e] / static_cast<double>(users_out[e]));
    }
    for (std::size_t f = 0; f < count; ++f) {
      if (frozen[f]) continue;
      delta = std::min(delta, flows[f].max_rate.to_bytes_per_second() - rate[f]);
    }
    delta = std::max(delta, 0.0);

    for (std::size_t f = 0; f < count; ++f) {
      if (frozen[f]) continue;
      rate[f] += delta;
      rem_in[flows[f].ingress.value] -= delta;
      rem_out[flows[f].egress.value] -= delta;
    }

    // Freeze flows that hit their host limit or sit on a saturated port.
    bool froze_any = false;
    for (std::size_t f = 0; f < count; ++f) {
      if (frozen[f]) continue;
      const double cap_in = network.ingress_capacity(flows[f].ingress).to_bytes_per_second();
      const double cap_out = network.egress_capacity(flows[f].egress).to_bytes_per_second();
      const bool at_host_limit =
          rate[f] >= flows[f].max_rate.to_bytes_per_second() - 1e-6;
      const bool in_saturated = rem_in[flows[f].ingress.value] <= 1e-9 * cap_in + 1e-6;
      const bool out_saturated = rem_out[flows[f].egress.value] <= 1e-9 * cap_out + 1e-6;
      if (at_host_limit || in_saturated || out_saturated) {
        frozen[f] = 1;
        froze_any = true;
        --unfrozen;
      }
    }
    if (!froze_any) {
      // delta == 0 with nothing newly frozen would loop forever; freeze
      // everything (numerical corner).
      for (std::size_t f = 0; f < count; ++f) {
        if (!frozen[f]) {
          frozen[f] = 1;
          --unfrozen;
        }
      }
    }
  }

  std::vector<Bandwidth> out(count);
  for (std::size_t f = 0; f < count; ++f) out[f] = Bandwidth::bytes_per_second(rate[f]);
  return out;
}

namespace {

struct LiveFlow {
  std::size_t index;  // into the original request span / result vector
  IngressId ingress;
  EgressId egress;
  Bandwidth max_rate;
  TimePoint deadline;
  double remaining_bytes;
};

}  // namespace

MaxMinResult simulate_maxmin(const Network& network, std::span<const Request> requests) {
  std::vector<std::size_t> arrival_order(requests.size());
  for (std::size_t k = 0; k < requests.size(); ++k) arrival_order[k] = k;
  std::sort(arrival_order.begin(), arrival_order.end(), [&](std::size_t a, std::size_t b) {
    if (requests[a].release != requests[b].release) {
      return requests[a].release < requests[b].release;
    }
    return requests[a].id < requests[b].id;
  });

  MaxMinResult result;
  result.flows.resize(requests.size());
  for (std::size_t k = 0; k < requests.size(); ++k) {
    result.flows[k] = FlowOutcome{requests[k].id, false, requests[k].deadline,
                                  Volume::zero()};
  }

  std::vector<LiveFlow> live;
  std::size_t next_arrival = 0;
  TimePoint now = requests.empty() ? TimePoint::origin()
                                   : requests[arrival_order[0]].release;

  while (next_arrival < arrival_order.size() || !live.empty()) {
    if (live.empty()) {
      now = requests[arrival_order[next_arrival]].release;
    }
    // Admit arrivals at the current instant.
    while (next_arrival < arrival_order.size() &&
           requests[arrival_order[next_arrival]].release <= now) {
      const std::size_t k = arrival_order[next_arrival++];
      const Request& r = requests[k];
      live.push_back(LiveFlow{k, r.ingress, r.egress, r.max_rate, r.deadline,
                              r.volume.to_bytes()});
    }

    // Current max-min rates.
    std::vector<ActiveFlow> active;
    active.reserve(live.size());
    for (const LiveFlow& f : live) {
      active.push_back(ActiveFlow{f.ingress, f.egress, f.max_rate});
    }
    const std::vector<Bandwidth> rates = maxmin_allocation(network, active);

    // Next event: arrival, earliest completion, or earliest deadline.
    double dt = std::numeric_limits<double>::infinity();
    if (next_arrival < arrival_order.size()) {
      dt = requests[arrival_order[next_arrival]].release.to_seconds() - now.to_seconds();
    }
    for (std::size_t f = 0; f < live.size(); ++f) {
      const double rate = rates[f].to_bytes_per_second();
      if (rate > 0.0) dt = std::min(dt, live[f].remaining_bytes / rate);
      dt = std::min(dt, live[f].deadline.to_seconds() - now.to_seconds());
    }
    dt = std::max(dt, 0.0);

    // Advance the fluid by dt.
    now += Duration::seconds(dt);
    for (std::size_t f = 0; f < live.size(); ++f) {
      const double moved = rates[f].to_bytes_per_second() * dt;
      live[f].remaining_bytes = std::max(0.0, live[f].remaining_bytes - moved);
      result.flows[live[f].index].transferred += Volume::bytes(moved);
    }

    // Retire completed and expired flows.
    std::erase_if(live, [&](const LiveFlow& f) {
      if (f.remaining_bytes <= 1e-3) {  // < a millibyte of fluid left
        result.flows[f.index].completed = true;
        result.flows[f.index].finish = now;
        result.flows[f.index].transferred = requests[f.index].volume;
        return true;
      }
      if (now.to_seconds() >= f.deadline.to_seconds() - 1e-9) {
        result.flows[f.index].completed = false;
        result.flows[f.index].finish = f.deadline;
        return true;
      }
      return false;
    });
  }
  return result;
}

}  // namespace gridbw::baseline
