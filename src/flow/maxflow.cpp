#include "flow/maxflow.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace gridbw::flow {

MaxFlowGraph::MaxFlowGraph(std::size_t nodes) : adjacency_(nodes) {
  if (nodes < 2) throw std::invalid_argument{"MaxFlowGraph: need at least two nodes"};
}

std::size_t MaxFlowGraph::add_edge(NodeId from, NodeId to, std::int64_t capacity) {
  if (from >= adjacency_.size() || to >= adjacency_.size()) {
    throw std::out_of_range{"MaxFlowGraph::add_edge: node id out of range"};
  }
  if (capacity < 0) {
    throw std::invalid_argument{"MaxFlowGraph::add_edge: negative capacity"};
  }
  const std::size_t forward = edges_.size();
  edges_.push_back(Edge{to, capacity, forward + 1, capacity});
  edges_.push_back(Edge{from, 0, forward, 0});
  adjacency_[from].push_back(forward);
  adjacency_[to].push_back(forward + 1);
  return forward;
}

bool MaxFlowGraph::build_levels(NodeId source, NodeId sink) {
  level_.assign(adjacency_.size(), -1);
  std::queue<NodeId> frontier;
  level_[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId node = frontier.front();
    frontier.pop();
    for (const std::size_t edge_id : adjacency_[node]) {
      const Edge& edge = edges_[edge_id];
      if (edge.capacity > 0 && level_[edge.to] < 0) {
        level_[edge.to] = level_[node] + 1;
        frontier.push(edge.to);
      }
    }
  }
  return level_[sink] >= 0;
}

std::int64_t MaxFlowGraph::push(NodeId node, NodeId sink, std::int64_t limit) {
  if (node == sink) return limit;
  for (std::size_t& cursor = next_edge_[node]; cursor < adjacency_[node].size();
       ++cursor) {
    const std::size_t edge_id = adjacency_[node][cursor];
    Edge& edge = edges_[edge_id];
    if (edge.capacity <= 0 || level_[edge.to] != level_[node] + 1) continue;
    const std::int64_t pushed =
        push(edge.to, sink, std::min(limit, edge.capacity));
    if (pushed > 0) {
      edge.capacity -= pushed;
      edges_[edge.reverse].capacity += pushed;
      return pushed;
    }
  }
  return 0;
}

std::int64_t MaxFlowGraph::max_flow(NodeId source, NodeId sink) {
  if (source >= adjacency_.size() || sink >= adjacency_.size()) {
    throw std::out_of_range{"MaxFlowGraph::max_flow: node id out of range"};
  }
  if (source == sink) {
    throw std::invalid_argument{"MaxFlowGraph::max_flow: source == sink"};
  }
  std::int64_t total = 0;
  while (build_levels(source, sink)) {
    next_edge_.assign(adjacency_.size(), 0);
    for (;;) {
      const std::int64_t pushed =
          push(source, sink, std::numeric_limits<std::int64_t>::max());
      if (pushed == 0) break;
      total += pushed;
    }
  }
  return total;
}

std::int64_t MaxFlowGraph::flow_on(std::size_t edge_id) const {
  if (edge_id >= edges_.size()) {
    throw std::out_of_range{"MaxFlowGraph::flow_on: edge id out of range"};
  }
  const Edge& edge = edges_[edge_id];
  return edge.original - edge.capacity;
}

}  // namespace gridbw::flow
