// gridbw/flow/maxflow.hpp
//
// Dinic's maximum-flow algorithm on integer capacities. Substrate for the
// long-lived request scheduler: the optimal uniform long-lived assignment
// (paper §3, citing [14]) is a bipartite degree-constrained subgraph
// problem, i.e. a max-flow instance.
//
// The implementation is self-contained and deliberately classic: level
// graph BFS + blocking-flow DFS with iterator memoization, O(V^2 E), far
// more than enough for port-count-sized graphs.

#pragma once

#include <cstdint>
#include <vector>

namespace gridbw::flow {

using NodeId = std::size_t;

class MaxFlowGraph {
 public:
  /// Creates a graph with `nodes` vertices (0-based ids) and no edges.
  explicit MaxFlowGraph(std::size_t nodes);

  /// Adds a directed edge with the given capacity (>= 0); returns an edge
  /// id usable with `flow_on` after solving. A reverse edge of capacity 0
  /// is created internally.
  std::size_t add_edge(NodeId from, NodeId to, std::int64_t capacity);

  /// Computes the maximum flow from `source` to `sink`. May be called once
  /// per graph (capacities are consumed).
  std::int64_t max_flow(NodeId source, NodeId sink);

  /// Flow routed through edge `edge_id` by the last `max_flow` call.
  [[nodiscard]] std::int64_t flow_on(std::size_t edge_id) const;

  [[nodiscard]] std::size_t node_count() const { return adjacency_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size() / 2; }

 private:
  struct Edge {
    NodeId to;
    std::int64_t capacity;  // residual capacity
    std::size_t reverse;    // index of the reverse edge in edges_
    std::int64_t original;  // initial capacity (for flow_on)
  };

  bool build_levels(NodeId source, NodeId sink);
  std::int64_t push(NodeId node, NodeId sink, std::int64_t limit);

  std::vector<Edge> edges_;
  std::vector<std::vector<std::size_t>> adjacency_;
  std::vector<int> level_;
  std::vector<std::size_t> next_edge_;
};

}  // namespace gridbw::flow
