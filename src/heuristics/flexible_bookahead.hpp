// gridbw/heuristics/flexible_bookahead.hpp
//
// Book-ahead admission: the WINDOW heuristic extended with advance
// reservations (the GARA-style mechanism of the paper's related work [6],
// and the natural next step after §7's future work). Where Algorithm 3
// either starts an accepted request at the decision instant or drops it,
// the book-ahead scheduler may reserve port bandwidth for a *future*
// interval boundary — a request that does not fit now is placed at the
// earliest boundary where it fits, up to `max_book_ahead` intervals out,
// as long as it still meets its deadline.
//
// This requires the exact time-aware ledger (TimelineProfile port loads)
// instead of the paper's O(1) counters, since reservations now live in the
// future; the flat profile keeps the repeated feasibility probes cheap.

#pragma once

#include <span>

#include "core/network.hpp"
#include "core/request.hpp"
#include "core/schedule.hpp"
#include "heuristics/bandwidth_policy.hpp"
#include "obs/observer.hpp"

namespace gridbw::heuristics {

struct BookAheadOptions {
  /// Decision interval, as in WindowOptions.
  Duration step{Duration::seconds(400)};
  BandwidthPolicy policy{BandwidthPolicy::min_rate()};
  /// How many interval boundaries into the future a reservation may start
  /// (0 = degenerate to "start now or reject", the Algorithm 3 behaviour).
  std::size_t max_book_ahead{4};
};

[[nodiscard]] ScheduleResult schedule_flexible_bookahead(
    const Network& network, std::span<const Request> requests,
    const BookAheadOptions& options, obs::Observer* observer = nullptr);

}  // namespace gridbw::heuristics
