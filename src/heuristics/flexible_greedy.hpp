// gridbw/heuristics/flexible_greedy.hpp
//
// GREEDY / FCFS heuristic for short-lived *flexible* requests (§5.1,
// Algorithm 2). Requests are examined online, at their arrival time
// t_s(r), in arrival order (ties: smallest MinRate first). The bandwidth
// granted to an accepted request comes from a BandwidthPolicy (MinRate, or
// f x MaxRate). Port bookkeeping is the paper's counter ledger: bandwidth
// is allocated at acceptance and reclaimed when the transfer finishes.

#pragma once

#include <span>

#include "core/network.hpp"
#include "core/request.hpp"
#include "core/schedule.hpp"
#include "heuristics/bandwidth_policy.hpp"
#include "obs/observer.hpp"

namespace gridbw::heuristics {

[[nodiscard]] ScheduleResult schedule_flexible_greedy(const Network& network,
                                                      std::span<const Request> requests,
                                                      BandwidthPolicy policy,
                                                      obs::Observer* observer = nullptr);

}  // namespace gridbw::heuristics
