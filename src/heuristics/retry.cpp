#include "heuristics/retry.hpp"

#include <cmath>
#include <queue>
#include <stdexcept>
#include <vector>

#include "core/ledger.hpp"

namespace gridbw::heuristics {
namespace {

struct Submission {
  TimePoint when;
  Request request;     // window shifted to the submission time
  std::size_t attempt;  // 1-based
};

struct LaterSubmission {
  bool operator()(const Submission& a, const Submission& b) const {
    if (a.when != b.when) return a.when > b.when;
    if (a.request.id != b.request.id) return a.request.id > b.request.id;
    return a.attempt > b.attempt;
  }
};

struct Completion {
  TimePoint finish;
  IngressId ingress;
  EgressId egress;
  Bandwidth bw;
};

struct LaterFinish {
  bool operator()(const Completion& a, const Completion& b) const {
    return a.finish > b.finish;
  }
};

}  // namespace

RetryResult schedule_greedy_with_retries(const Network& network,
                                         std::span<const Request> requests,
                                         BandwidthPolicy policy,
                                         const RetryPolicy& retry) {
  if (retry.max_attempts == 0) {
    throw std::invalid_argument{"schedule_greedy_with_retries: need >= 1 attempt"};
  }
  if (retry.backoff_factor < 1.0) {
    throw std::invalid_argument{"schedule_greedy_with_retries: backoff factor < 1"};
  }
  if (retry.initial_backoff.is_negative()) {
    throw std::invalid_argument{"schedule_greedy_with_retries: negative backoff"};
  }

  std::priority_queue<Submission, std::vector<Submission>, LaterSubmission> queue;
  for (const Request& r : requests) queue.push(Submission{r.release, r, 1});

  RetryResult out;
  CounterLedger counters{network};
  std::priority_queue<Completion, std::vector<Completion>, LaterFinish> completions;

  while (!queue.empty()) {
    const Submission sub = queue.top();
    queue.pop();
    while (!completions.empty() && completions.top().finish <= sub.when) {
      const Completion done = completions.top();
      completions.pop();
      counters.reclaim(done.ingress, done.egress, done.bw);
    }

    const Request& r = sub.request;
    const auto bw = policy.assign(r, sub.when);
    if (bw.has_value() && counters.fits(r.ingress, r.egress, *bw)) {
      counters.allocate(r.ingress, r.egress, *bw);
      out.result.schedule.accept(r.id, sub.when, *bw);
      completions.push(Completion{sub.when + r.volume / *bw, r.ingress, r.egress, *bw});
      if (sub.attempt > 1) ++out.accepted_on_retry;
      out.effective_requests.push_back(r);
      continue;
    }

    if (sub.attempt < retry.max_attempts) {
      // Resubmit later with the window shifted whole: same length, same
      // volume, so MinRate and MaxRate are unchanged.
      const double scale =
          std::pow(retry.backoff_factor, static_cast<double>(sub.attempt - 1));
      const Duration backoff = retry.initial_backoff * scale;
      Request shifted = r;
      const Duration window = r.deadline - r.release;
      shifted.release = sub.when + backoff;
      shifted.deadline = shifted.release + window;
      queue.push(Submission{shifted.release, shifted, sub.attempt + 1});
      ++out.retries_issued;
    } else {
      out.result.rejected.push_back(r.id);
      out.effective_requests.push_back(r);
    }
  }
  return out;
}

}  // namespace gridbw::heuristics
