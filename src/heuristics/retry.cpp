#include "heuristics/retry.hpp"

#include <cmath>
#include <queue>
#include <stdexcept>
#include <vector>

#include "core/ledger.hpp"

namespace gridbw::heuristics {
namespace {

struct Submission {
  TimePoint when;
  Request request;     // window shifted to the submission time
  std::size_t attempt;  // 1-based
};

struct LaterSubmission {
  bool operator()(const Submission& a, const Submission& b) const {
    if (a.when != b.when) return a.when > b.when;
    if (a.request.id != b.request.id) return a.request.id > b.request.id;
    return a.attempt > b.attempt;
  }
};

struct Completion {
  TimePoint finish;
  RequestId request;
  IngressId ingress;
  EgressId egress;
  Bandwidth bw;
};

struct LaterFinish {
  bool operator()(const Completion& a, const Completion& b) const {
    return a.finish > b.finish;
  }
};

}  // namespace

RetryResult schedule_greedy_with_retries(const Network& network,
                                         std::span<const Request> requests,
                                         BandwidthPolicy policy,
                                         const RetryPolicy& retry,
                                         obs::Observer* observer) {
  if (retry.max_attempts == 0) {
    throw std::invalid_argument{"schedule_greedy_with_retries: need >= 1 attempt"};
  }
  // Negated >= so NaN fails the gate (`x < 1.0` is false for NaN and used to
  // wave NaN factors straight into the pow() below).
  if (!(retry.backoff_factor >= 1.0) || !std::isfinite(retry.backoff_factor)) {
    throw std::invalid_argument{
        "schedule_greedy_with_retries: backoff factor must be finite and >= 1"};
  }
  if (!(retry.initial_backoff.to_seconds() >= 0.0) ||
      !std::isfinite(retry.initial_backoff.to_seconds())) {
    throw std::invalid_argument{
        "schedule_greedy_with_retries: initial backoff must be finite and >= 0"};
  }

  std::priority_queue<Submission, std::vector<Submission>, LaterSubmission> queue;
  for (const Request& r : requests) queue.push(Submission{r.release, r, 1});

  RetryResult out;
  CounterLedger counters{network};
  std::priority_queue<Completion, std::vector<Completion>, LaterFinish> completions;

  while (!queue.empty()) {
    const Submission sub = queue.top();
    queue.pop();
    while (!completions.empty() && completions.top().finish <= sub.when) {
      const Completion done = completions.top();
      completions.pop();
      counters.reclaim(done.ingress, done.egress, done.bw);
      obs::note_reclaimed(observer, done.request, done.finish, done.bw);
    }

    const Request& r = sub.request;
    if (sub.attempt == 1) obs::note_submitted(observer, r.id, sub.when);
    const auto bw = policy.assign(r, sub.when);
    if (bw.has_value() && counters.fits(r.ingress, r.egress, *bw)) {
      counters.allocate(r.ingress, r.egress, *bw);
      out.result.schedule.accept(r.id, sub.when, *bw);
      obs::note_accepted(observer, r.id, sub.when, sub.when, *bw, sub.attempt);
      completions.push(
          Completion{sub.when + r.volume / *bw, r.id, r.ingress, r.egress, *bw});
      if (sub.attempt > 1) ++out.accepted_on_retry;
      out.effective_requests.push_back(r);
      continue;
    }

    if (sub.attempt < retry.max_attempts) {
      // Resubmit later with the window shifted whole: same length, same
      // volume, so MinRate and MaxRate are unchanged.
      const double scale =
          std::pow(retry.backoff_factor, static_cast<double>(sub.attempt - 1));
      const Duration backoff = retry.initial_backoff * scale;
      Request shifted = r;
      const Duration window = r.deadline - r.release;
      shifted.release = sub.when + backoff;
      shifted.deadline = shifted.release + window;
      queue.push(Submission{shifted.release, shifted, sub.attempt + 1});
      ++out.retries_issued;
      obs::note_retried(observer, r.id, sub.when, sub.attempt + 1, backoff);
    } else {
      out.result.rejected.push_back(r.id);
      out.effective_requests.push_back(r);
      if (observer != nullptr) {
        obs::RejectReason reason = obs::RejectReason::kRetriesExhausted;
        if (retry.max_attempts == 1) {
          reason = bw.has_value()
                       ? obs::classify_saturation(counters.fits_ingress(r.ingress, *bw),
                                                  counters.fits_egress(r.egress, *bw))
                       : obs::RejectReason::kInfeasibleRate;
        }
        obs::note_rejected(observer, r.id, sub.when, reason, sub.attempt);
      }
    }
  }

  // Drain the completions left after the last submission: the transfers
  // still in flight return their bandwidth, so the ledger ends empty. The
  // residual gauge records whatever occupancy survives the drain — zero by
  // construction, and asserted by the regression tests (the drain used to be
  // skipped entirely, leaving the final occupancy stuck at its peak).
  while (!completions.empty()) {
    const Completion done = completions.top();
    completions.pop();
    counters.reclaim(done.ingress, done.egress, done.bw);
    obs::note_reclaimed(observer, done.request, done.finish, done.bw);
  }
  if (observer != nullptr) {
    double residual = 0.0;
    for (std::size_t p = 0; p < network.ingress_count(); ++p) {
      residual += counters.allocated_ingress(IngressId{p}).to_bytes_per_second();
    }
    for (std::size_t p = 0; p < network.egress_count(); ++p) {
      residual += counters.allocated_egress(EgressId{p}).to_bytes_per_second();
    }
    observer->gauge(obs::Counter::kRetryResidualBps,
                    static_cast<std::uint64_t>(residual));
  }
  return out;
}

}  // namespace gridbw::heuristics
