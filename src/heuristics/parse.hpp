// gridbw/heuristics/parse.hpp
//
// Textual scheduler specs, so CLI tools and config files can select any
// admission algorithm in the library:
//
//   "fcfs"                       rigid FCFS/FIFO (§4.1)
//   "cumulated" | "minbw" | "minvol"
//                                the *-SLOTS family (§4.2)
//   "greedy:minrate"             Algorithm 2, MinRate policy
//   "greedy:f=0.8"               Algorithm 2, f x MaxRate policy
//   "window:step=400,f=1"        Algorithm 3 (step in seconds)
//   "window:step=400,minrate,hotspot=0.5"
//                                hot-spot-aware cost (§7 extension)
//   "bookahead:step=400,f=0.8,ahead=4"
//                                advance reservations up to 4 intervals out
//
// parse_scheduler throws std::invalid_argument with a message naming the
// offending token; scheduler_grammar() returns a usage string for --help.

#pragma once

#include <string>

#include "heuristics/registry.hpp"

namespace gridbw::heuristics {

[[nodiscard]] NamedScheduler parse_scheduler(const std::string& spec);

[[nodiscard]] std::string scheduler_grammar();

}  // namespace gridbw::heuristics
