#include "heuristics/distributed.hpp"

#include <queue>
#include <vector>

#include "core/ledger.hpp"

namespace gridbw::heuristics {
namespace {

struct Completion {
  TimePoint finish;
  IngressId ingress;
  EgressId egress;
  Bandwidth bw;
};

struct LaterFinish {
  bool operator()(const Completion& a, const Completion& b) const {
    return a.finish > b.finish;
  }
};

}  // namespace

DistributedResult schedule_flexible_distributed(const Network& network,
                                                std::span<const Request> requests,
                                                const DistributedOptions& options) {
  if (options.sync_period.is_negative()) {
    throw std::invalid_argument{"schedule_flexible_distributed: negative sync period"};
  }
  DistributedResult out;
  std::vector<Request> order;
  order.reserve(requests.size());
  for (const Request& r : requests) {
    // A non-positive window has an infinite MinRate; reject it up front.
    if (!(r.deadline > r.release)) {
      out.result.rejected.push_back(r.id);
      continue;
    }
    order.push_back(r);
  }
  sort_fcfs(order);

  CounterLedger truth{network};  // ground-truth counters (ingress exact + egress exact)
  std::priority_queue<Completion, std::vector<Completion>, LaterFinish> completions;

  // Stale egress view shared by all ingress routers, refreshed every
  // sync_period from the ground truth.
  std::vector<Bandwidth> egress_view(network.egress_count(), Bandwidth::zero());
  TimePoint last_sync = TimePoint::origin() - Duration::seconds(1);

  auto refresh_view = [&](TimePoint now) {
    if (options.sync_period == Duration::zero() ||
        now - last_sync >= options.sync_period) {
      for (std::size_t e = 0; e < egress_view.size(); ++e) {
        egress_view[e] = truth.allocated_egress(EgressId{e});
      }
      last_sync = now;
    }
  };

  for (const Request& r : order) {
    while (!completions.empty() && completions.top().finish <= r.release) {
      const Completion done = completions.top();
      completions.pop();
      truth.reclaim(done.ingress, done.egress, done.bw);
    }
    refresh_view(r.release);

    const auto bw = options.policy.assign(r, r.release);
    if (!bw.has_value()) {
      out.result.rejected.push_back(r.id);
      continue;
    }

    // Ingress-local decision: exact own counter, stale egress view.
    const bool ingress_ok =
        approx_le(truth.allocated_ingress(r.ingress) + *bw,
                  network.ingress_capacity(r.ingress));
    const bool egress_view_ok = approx_le(egress_view[r.egress.value] + *bw,
                                          network.egress_capacity(r.egress));
    if (!ingress_ok || !egress_view_ok) {
      out.result.rejected.push_back(r.id);
      continue;
    }

    // The data plane enforces the true egress capacity: an optimistic
    // admission that would overflow it is NACKed.
    const bool egress_truth_ok = approx_le(truth.allocated_egress(r.egress) + *bw,
                                           network.egress_capacity(r.egress));
    if (!egress_truth_ok) {
      ++out.egress_conflicts;
      out.result.rejected.push_back(r.id);
      continue;
    }

    truth.allocate(r.ingress, r.egress, *bw);
    out.result.schedule.accept(r.id, r.release, *bw);
    completions.push(Completion{r.release + r.volume / *bw, r.ingress, r.egress, *bw});
  }
  return out;
}

}  // namespace gridbw::heuristics
