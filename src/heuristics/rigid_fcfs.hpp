// gridbw/heuristics/rigid_fcfs.hpp
//
// The FCFS/FIFO heuristic for short-lived *rigid* requests (§4.1): requests
// are served in order of their starting times (ties: smallest bandwidth
// first). A rigid request occupies bw(r) = MinRate(r) = MaxRate(r) over its
// entire window [t_s, t_f]; it is accepted iff that reservation fits at both
// its ingress and egress port for the whole window, otherwise rejected
// outright.

#pragma once

#include <span>

#include "core/network.hpp"
#include "core/request.hpp"
#include "core/schedule.hpp"
#include "obs/observer.hpp"

namespace gridbw::heuristics {

[[nodiscard]] ScheduleResult schedule_rigid_fcfs(const Network& network,
                                                 std::span<const Request> requests,
                                                 obs::Observer* observer = nullptr);

}  // namespace gridbw::heuristics
