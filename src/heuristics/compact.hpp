// gridbw/heuristics/compact.hpp
//
// Post-pass schedule compaction. Interval-based admission (Algorithm 3,
// book-ahead) starts transfers at decision boundaries, leaving idle port
// time between a request's release and its assigned start. Compaction
// re-times accepted requests as early as feasibility allows — acceptance
// and rates are untouched, every start can only move earlier, so transfers
// complete sooner and grid jobs release their CPU/storage co-allocations
// earlier (the paper's §2.3 motivation for faster service).
//
// The pass processes assignments in start order against the exact
// time-aware ledger; for each request it probes candidate starts from the
// release time forward on a fixed grid, keeping the earliest that fits.

#pragma once

#include <span>

#include "core/network.hpp"
#include "core/request.hpp"
#include "core/schedule.hpp"

namespace gridbw::heuristics {

struct CompactOptions {
  /// Candidate-start grid. Finer grids compact more but probe more.
  Duration grid{Duration::seconds(10)};
};

struct CompactResult {
  Schedule schedule;
  /// Requests whose start moved earlier.
  std::size_t moved{0};
  /// Total start-time reduction across moved requests.
  Duration total_advance{Duration::zero()};
};

/// Returns a compacted copy of `schedule`. The accepted set and every
/// assignment's bandwidth are preserved; starts only move earlier (never
/// before the request's release). The result is feasible whenever the
/// input was.
[[nodiscard]] CompactResult compact_schedule(const Network& network,
                                             std::span<const Request> requests,
                                             const Schedule& schedule,
                                             const CompactOptions& options = {});

}  // namespace gridbw::heuristics
