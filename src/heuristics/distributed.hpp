// gridbw/heuristics/distributed.hpp
//
// Fully distributed admission (paper §7 future work: "fully distributed
// allocation algorithms to study the scalability of the approach").
//
// Each ingress router admits its own arrivals immediately (no central
// scheduler). It knows its *own* ingress counter exactly, but sees only a
// periodically synchronized snapshot of the egress counters (staleness up
// to `sync_period`). When an optimistic admission turns out to overflow the
// true egress port, the egress NACKs and the request is rejected after the
// fact — the measurable price of decentralization.
//
// With sync_period = 0 every decision sees fresh egress state and the
// algorithm degenerates to the centralized GREEDY of Algorithm 2.

#pragma once

#include <span>

#include "core/network.hpp"
#include "core/request.hpp"
#include "core/schedule.hpp"
#include "heuristics/bandwidth_policy.hpp"

namespace gridbw::heuristics {

struct DistributedOptions {
  BandwidthPolicy policy{BandwidthPolicy::min_rate()};
  /// Egress-view refresh period. 0 = always fresh (centralized behaviour).
  Duration sync_period{Duration::seconds(10)};
};

struct DistributedResult {
  ScheduleResult result;
  /// Requests optimistically admitted by their ingress but NACKed by the
  /// true egress check (already counted in result.rejected).
  std::size_t egress_conflicts{0};
};

[[nodiscard]] DistributedResult schedule_flexible_distributed(
    const Network& network, std::span<const Request> requests,
    const DistributedOptions& options);

}  // namespace gridbw::heuristics
