// gridbw/heuristics/bandwidth_policy.hpp
//
// BANDWIDTHASSIGNALG of the paper's Algorithms 2 and 3 as a value type.
// Two built-in strategies:
//
//   * MinRate      — grant exactly the minimum rate the request needs from
//                    its (remaining) window ("MIN BW" in Figs. 6-7);
//   * FractionOfMax(f) — grant max(f * MaxRate(r), MinRate-from-start),
//                    the tuning-factor policy of §2.3 (f = 1 grants the
//                    full host rate).
//
// Both clamp to MaxRate and account for a delayed start: when the WINDOW
// heuristic admits a request at decision time T > t_s(r), the minimum
// feasible rate is vol / (t_f - T), not the original MinRate.

#pragma once

#include <optional>
#include <string>

#include "core/request.hpp"

namespace gridbw::heuristics {

class BandwidthPolicy {
 public:
  /// Grant the minimum feasible rate (finish exactly at the deadline).
  [[nodiscard]] static BandwidthPolicy min_rate();

  /// Grant f * MaxRate (raised to the minimum feasible rate if necessary).
  /// Requires f in (0, 1].
  [[nodiscard]] static BandwidthPolicy fraction_of_max(double f);

  /// The rate to grant request `r` when its transfer would start at
  /// `start`. Returns nullopt when no feasible rate exists (the remaining
  /// window is too short even at MaxRate).
  [[nodiscard]] std::optional<Bandwidth> assign(const Request& r, TimePoint start) const;

  /// The f of §2.3 (0 for the MinRate policy) — used by the #guaranteed
  /// metric and the validator's floor check.
  [[nodiscard]] double guarantee_fraction() const { return fraction_; }

  [[nodiscard]] std::string name() const;

 private:
  explicit BandwidthPolicy(double fraction) : fraction_{fraction} {}
  double fraction_;  // 0 = MinRate policy, else f in (0, 1]
};

}  // namespace gridbw::heuristics
