#include "heuristics/parse.hpp"

#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>

#include "heuristics/flexible_bookahead.hpp"
#include "heuristics/flexible_greedy.hpp"
#include "heuristics/rigid_fcfs.hpp"

namespace gridbw::heuristics {
namespace {

[[noreturn]] void fail(const std::string& spec, const std::string& why) {
  throw std::invalid_argument{"parse_scheduler: '" + spec + "': " + why};
}

struct Options {
  std::map<std::string, std::string> values;  // key -> value ("" for bare flags)

  static Options parse(const std::string& spec, const std::string& text) {
    Options out;
    std::stringstream ss{text};
    std::string token;
    while (std::getline(ss, token, ',')) {
      if (token.empty()) fail(spec, "empty option");
      const auto eq = token.find('=');
      const std::string key = eq == std::string::npos ? token : token.substr(0, eq);
      const std::string value = eq == std::string::npos ? "" : token.substr(eq + 1);
      if (!out.values.emplace(key, value).second) {
        fail(spec, "duplicate option '" + key + "'");
      }
    }
    return out;
  }

  double number(const std::string& spec, const std::string& key, double fallback) {
    const auto it = values.find(key);
    if (it == values.end()) return fallback;
    try {
      std::size_t used = 0;
      const double v = std::stod(it->second, &used);
      if (used != it->second.size()) throw std::invalid_argument{"trailing junk"};
      values.erase(it);
      return v;
    } catch (const std::exception&) {
      fail(spec, "bad numeric value for '" + key + "'");
    }
  }

  bool flag(const std::string& key) {
    const auto it = values.find(key);
    if (it == values.end() || !it->second.empty()) return false;
    values.erase(it);
    return true;
  }

  void expect_empty(const std::string& spec) {
    if (!values.empty()) fail(spec, "unknown option '" + values.begin()->first + "'");
  }
};

/// Extracts the policy from `opts`: `minrate` or `f=<x>` (default MinRate).
BandwidthPolicy take_policy(const std::string& spec, Options& opts) {
  const bool minrate = opts.flag("minrate");
  const double f = opts.number(spec, "f", 0.0);
  if (minrate && f != 0.0) fail(spec, "give either 'minrate' or 'f=', not both");
  if (f == 0.0) return BandwidthPolicy::min_rate();
  if (f < 0.0 || f > 1.0) fail(spec, "f must be in (0, 1]");
  return BandwidthPolicy::fraction_of_max(f);
}

}  // namespace

NamedScheduler parse_scheduler(const std::string& spec) {
  const auto colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  const std::string rest = colon == std::string::npos ? "" : spec.substr(colon + 1);

  if (kind == "fcfs") {
    if (!rest.empty()) fail(spec, "fcfs takes no options");
    return NamedScheduler{
        "FCFS",
        [](const Network& n, std::span<const Request> r, obs::Observer* observer) {
          return schedule_rigid_fcfs(n, r, observer);
        }};
  }
  if (kind == "cumulated" || kind == "minbw" || kind == "minvol") {
    if (!rest.empty()) fail(spec, kind + " takes no options");
    const SlotCost cost = kind == "cumulated" ? SlotCost::kCumulated
                          : kind == "minbw"   ? SlotCost::kMinBandwidth
                                              : SlotCost::kMinVolume;
    return NamedScheduler{
        to_string(cost),
        [cost](const Network& n, std::span<const Request> r, obs::Observer* observer) {
          return schedule_rigid_slots(n, r, cost, observer);
        }};
  }
  if (kind == "greedy") {
    Options opts = Options::parse(spec, rest);
    const BandwidthPolicy policy = take_policy(spec, opts);
    opts.expect_empty(spec);
    return make_greedy(policy);
  }
  if (kind == "window") {
    Options opts = Options::parse(spec, rest);
    WindowOptions w;
    w.policy = take_policy(spec, opts);
    const double step = opts.number(spec, "step", 400.0);
    if (!(step > 0.0) || !std::isfinite(step)) fail(spec, "step must be positive");
    w.step = Duration::seconds(step);
    w.hotspot_weight = opts.number(spec, "hotspot", 0.0);
    if (!(w.hotspot_weight >= 0.0) || !std::isfinite(w.hotspot_weight)) {
      fail(spec, "hotspot weight must be >= 0");
    }
    opts.expect_empty(spec);
    return make_window(w);
  }
  if (kind == "mgreedy" || kind == "mwindow") {
    Options opts = Options::parse(spec, rest);
    MalleableOptions m;
    m.policy = take_policy(spec, opts);
    m.reshape = !opts.flag("rigid");
    if (kind == "mwindow") {
      const double step = opts.number(spec, "step", 400.0);
      if (!(step > 0.0) || !std::isfinite(step)) fail(spec, "step must be positive");
      m.step = Duration::seconds(step);
    }
    opts.expect_empty(spec);
    return kind == "mgreedy" ? make_malleable_greedy(m) : make_malleable_window(m);
  }
  if (kind == "bookahead") {
    Options opts = Options::parse(spec, rest);
    BookAheadOptions b;
    b.policy = take_policy(spec, opts);
    const double step = opts.number(spec, "step", 400.0);
    if (!(step > 0.0) || !std::isfinite(step)) fail(spec, "step must be positive");
    b.step = Duration::seconds(step);
    const double ahead = opts.number(spec, "ahead", 4.0);
    if (!(ahead >= 0.0) || !std::isfinite(ahead)) fail(spec, "ahead must be >= 0");
    b.max_book_ahead = static_cast<std::size_t>(ahead);
    opts.expect_empty(spec);
    std::string name = "bookahead" + std::to_string(static_cast<int>(step)) + "x" +
                       std::to_string(b.max_book_ahead) + "/" + b.policy.name();
    return NamedScheduler{
        std::move(name),
        [b](const Network& n, std::span<const Request> r, obs::Observer* observer) {
          return schedule_flexible_bookahead(n, r, b, observer);
        }};
  }
  fail(spec, "unknown scheduler kind '" + kind + "'");
}

std::string scheduler_grammar() {
  return "scheduler spec:\n"
         "  fcfs | cumulated | minbw | minvol          (rigid, §4)\n"
         "  greedy:[minrate|f=<0..1>]                  (Algorithm 2)\n"
         "  window:step=<s>[,minrate|f=<x>][,hotspot=<w>]   (Algorithm 3)\n"
         "  mgreedy:[minrate|f=<x>][,rigid]            (malleable, reshapes on departures)\n"
         "  mwindow:step=<s>[,minrate|f=<x>][,rigid]   (malleable WINDOW)\n"
         "  bookahead:step=<s>,ahead=<k>[,minrate|f=<x>]    (advance reservations)\n";
}

}  // namespace gridbw::heuristics
