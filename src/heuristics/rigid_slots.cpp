#include "heuristics/rigid_slots.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "core/ledger.hpp"

namespace gridbw::heuristics {

std::string to_string(SlotCost cost) {
  switch (cost) {
    case SlotCost::kCumulated: return "CUMULATED-SLOTS";
    case SlotCost::kMinBandwidth: return "MINBW-SLOTS";
    case SlotCost::kMinVolume: return "MINVOL-SLOTS";
  }
  return "unknown";
}

double slot_cost(const Network& network, const Request& r, SlotCost cost, TimePoint t1,
                 TimePoint t2) {
  (void)t1;  // the priority factor only involves the slice's upper bound
  switch (cost) {
    case SlotCost::kCumulated: {
      // priority in (0, 1]: the fraction of the request's window that will
      // have been covered once this slice completes. Longer-served (and
      // shorter) requests get smaller cost, hence higher priority.
      const double priority = (t2 - r.release) / (r.deadline - r.release);
      const Bandwidth b_min = network.bottleneck(r.ingress, r.egress);
      return (r.min_rate() / b_min) / priority;
    }
    case SlotCost::kMinBandwidth:
      return r.min_rate().to_bytes_per_second();
    case SlotCost::kMinVolume:
      return r.volume.to_bytes();
  }
  throw std::logic_error{"slot_cost: bad cost kind"};
}

ScheduleResult schedule_rigid_slots(const Network& network,
                                    std::span<const Request> requests, SlotCost cost) {
  // Slice boundaries: every distinct start or finish time.
  std::vector<TimePoint> boundaries;
  boundaries.reserve(requests.size() * 2);
  for (const Request& r : requests) {
    boundaries.push_back(r.release);
    boundaries.push_back(r.deadline);
  }
  std::sort(boundaries.begin(), boundaries.end());
  boundaries.erase(std::unique(boundaries.begin(), boundaries.end()), boundaries.end());

  // alive[k]: request k not yet rejected; admitted[k]: allocated in every
  // slice of its window processed so far.
  std::vector<char> alive(requests.size(), 1);

  // Requests sorted by release to sweep the active set cheaply.
  std::vector<std::size_t> by_release(requests.size());
  for (std::size_t k = 0; k < requests.size(); ++k) by_release[k] = k;
  std::sort(by_release.begin(), by_release.end(), [&](std::size_t a, std::size_t b) {
    return requests[a].release < requests[b].release;
  });

  std::size_t next_release = 0;                 // cursor into by_release
  std::vector<std::size_t> running;             // indices active in the current slice

  CounterLedger counters{network};
  for (std::size_t b = 0; b + 1 < boundaries.size(); ++b) {
    const TimePoint t1 = boundaries[b];
    const TimePoint t2 = boundaries[b + 1];

    // Update the running set: drop finished/rejected, add newly released.
    std::erase_if(running, [&](std::size_t k) {
      return !alive[k] || !(requests[k].deadline >= t2);
    });
    while (next_release < by_release.size() &&
           requests[by_release[next_release]].release <= t1) {
      const std::size_t k = by_release[next_release++];
      if (alive[k] && requests[k].deadline >= t2) running.push_back(k);
    }
    if (running.empty()) continue;

    // Sort the slice's active requests by non-decreasing cost.
    std::vector<std::size_t> order = running;
    std::vector<double> costs(requests.size());
    for (std::size_t k : order) costs[k] = slot_cost(network, requests[k], cost, t1, t2);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b2) {
      if (costs[a] != costs[b2]) return costs[a] < costs[b2];
      return requests[a].id < requests[b2].id;
    });

    // Fresh per-slice counters (no request starts or stops inside a slice,
    // so per-slice admission is exact).
    counters = CounterLedger{network};
    for (std::size_t k : order) {
      const Request& r = requests[k];
      const Bandwidth bw = r.min_rate();
      if (approx_le(bw, r.max_rate) && counters.fits(r.ingress, r.egress, bw)) {
        counters.allocate(r.ingress, r.egress, bw);
      } else {
        // Retro-removal: the request is discarded permanently. Earlier
        // slices already processed keep their decisions (the paper frees
        // the bookkeeping but does not revisit them).
        alive[k] = 0;
      }
    }
  }

  ScheduleResult result;
  for (std::size_t k = 0; k < requests.size(); ++k) {
    const Request& r = requests[k];
    if (alive[k] && approx_le(r.min_rate(), r.max_rate)) {
      result.schedule.accept(r.id, r.release, r.min_rate());
    } else {
      result.rejected.push_back(r.id);
    }
  }
  return result;
}

}  // namespace gridbw::heuristics
