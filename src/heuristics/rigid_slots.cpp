#include "heuristics/rigid_slots.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/ledger.hpp"

namespace gridbw::heuristics {
namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

/// State shared by both sweep engines: validity flags, slice boundaries,
/// and the release-order cursor. Requests with a non-positive window are
/// rejected up front — their cost factor would be NaN/inf and poison the
/// per-slice sort — and contribute no slice boundaries.
struct SweepSetup {
  std::vector<char> alive;
  std::vector<TimePoint> boundaries;
  std::vector<std::size_t> by_release;
};

SweepSetup prepare_sweep(std::span<const Request> requests) {
  SweepSetup s;
  s.alive.assign(requests.size(), 1);
  s.boundaries.reserve(requests.size() * 2);
  for (std::size_t k = 0; k < requests.size(); ++k) {
    const Request& r = requests[k];
    if (!(r.deadline > r.release)) {
      s.alive[k] = 0;
      continue;
    }
    s.boundaries.push_back(r.release);
    s.boundaries.push_back(r.deadline);
  }
  std::sort(s.boundaries.begin(), s.boundaries.end());
  s.boundaries.erase(std::unique(s.boundaries.begin(), s.boundaries.end()),
                     s.boundaries.end());

  s.by_release.reserve(requests.size());
  for (std::size_t k = 0; k < requests.size(); ++k) {
    if (s.alive[k]) s.by_release.push_back(k);
  }
  std::sort(s.by_release.begin(), s.by_release.end(),
            [&](std::size_t a, std::size_t b) {
              if (requests[a].release != requests[b].release) {
                return requests[a].release < requests[b].release;
              }
              return requests[a].id < requests[b].id;
            });
  return s;
}

/// Final accept/reject assembly, identical for both engines.
ScheduleResult assemble(std::span<const Request> requests,
                        const std::vector<char>& alive, obs::Observer* observer) {
  ScheduleResult result;
  for (std::size_t k = 0; k < requests.size(); ++k) {
    const Request& r = requests[k];
    if (alive[k] && approx_le(r.min_rate(), r.max_rate)) {
      result.schedule.accept(r.id, r.release, r.min_rate());
      obs::note_accepted(observer, r.id, r.release, r.release, r.min_rate());
    } else {
      result.rejected.push_back(r.id);
      if (observer != nullptr) {
        obs::RejectReason reason = obs::RejectReason::kRetroRemoved;
        if (!(r.deadline > r.release)) {
          reason = obs::RejectReason::kDegenerateWindow;
        } else if (!approx_le(r.min_rate(), r.max_rate)) {
          reason = obs::RejectReason::kInfeasibleRate;
        }
        obs::note_rejected(observer, r.id, r.release, reason);
      }
    }
  }
  return result;
}

/// Returns a per-request retro-removal timestamp buffer, pre-filled with
/// each request's release so "never removed" compares as "not preempted".
/// Empty (no allocation) when there is no observer.
std::vector<TimePoint> make_removal_clock(std::span<const Request> requests,
                                          obs::Observer* observer) {
  std::vector<TimePoint> removed_at;
  if (observer != nullptr) {
    removed_at.reserve(requests.size());
    for (const Request& r : requests) removed_at.push_back(r.release);
  }
  return removed_at;
}

/// Emits a preempted event for every retro-removed request that had held
/// bandwidth in an earlier slice (dropped strictly after its release).
/// Kept out of the sweep loops: even a never-taken out-of-line call on the
/// removal path bloats the admission loop measurably, so the sweeps record
/// plain timestamp stores and the narration happens once, here.
void narrate_preemptions(std::span<const Request> requests,
                         const std::vector<char>& alive,
                         const std::vector<TimePoint>& removed_at,
                         obs::Observer* observer) {
  if (observer == nullptr) return;
  for (std::size_t k = 0; k < requests.size(); ++k) {
    if (!alive[k] && requests[k].release < removed_at[k]) {
      obs::note_preempted(observer, requests[k].id, removed_at[k]);
    }
  }
}

/// Paper-literal reference: every slice re-sorts the active set and rebuilds
/// a fresh CounterLedger. Kept as the differential-test oracle.
ScheduleResult sweep_rebuild(const Network& network, std::span<const Request> requests,
                             SlotCost cost, SweepSetup& s, SlotsTelemetry* telemetry,
                             obs::Observer* observer) {
  std::size_t next_release = 0;
  std::vector<std::size_t> running;
  std::vector<TimePoint> removed_at = make_removal_clock(requests, observer);

  CounterLedger counters{network};
  counters.attach_observer(observer);  // drift-anomaly hook only
  for (std::size_t b = 0; b + 1 < s.boundaries.size(); ++b) {
    const TimePoint t1 = s.boundaries[b];
    const TimePoint t2 = s.boundaries[b + 1];
    if (telemetry != nullptr) ++telemetry->slices;

    // Update the running set: drop finished/rejected, add newly released.
    std::erase_if(running, [&](std::size_t k) {
      return !s.alive[k] || !(requests[k].deadline >= t2);
    });
    while (next_release < s.by_release.size() &&
           requests[s.by_release[next_release]].release <= t1) {
      const std::size_t k = s.by_release[next_release++];
      if (s.alive[k] && requests[k].deadline >= t2) running.push_back(k);
    }
    if (running.empty()) continue;

    // Sort the slice's active requests by non-decreasing cost.
    std::vector<std::size_t> order = running;
    std::vector<double> costs(requests.size());
    for (std::size_t k : order) costs[k] = slot_cost(network, requests[k], cost, t1, t2);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b2) {
      if (costs[a] != costs[b2]) return costs[a] < costs[b2];
      return requests[a].id < requests[b2].id;
    });

    // Fresh per-slice counters (no request starts or stops inside a slice,
    // so per-slice admission is exact).
    counters.reset();
    for (std::size_t k : order) {
      const Request& r = requests[k];
      const Bandwidth bw = r.min_rate();
      const bool rate_ok = approx_le(bw, r.max_rate);
      // admission_checks counts ledger probes only — a request whose min
      // rate exceeds its own cap never reaches the ledger, in either
      // engine (the incremental sweeps precompute this as feasible[]).
      if (rate_ok && telemetry != nullptr) ++telemetry->admission_checks;
      if (rate_ok && counters.fits(r.ingress, r.egress, bw)) {
        counters.allocate(r.ingress, r.egress, bw);
      } else {
        // Retro-removal: the request is discarded permanently. Earlier
        // slices already processed keep their decisions (the paper frees
        // the bookkeeping but does not revisit them).
        s.alive[k] = 0;
        if (observer != nullptr) removed_at[k] = t1;
      }
    }
  }
  narrate_preemptions(requests, s.alive, removed_at, observer);
  return assemble(requests, s.alive, observer);
}

/// Incremental engine for the static-cost kernels (MINBW/MINVOL — any cost
/// whose factor does not depend on the slice). The sorted active set and the
/// AdmissionLedger survive across slices; boundaries apply finish and
/// retro-removal deltas, and greedy admission is replayed only from the
/// first position whose decision inputs changed. Two invariants carry the
/// engine (shared with sweep_cumulated below):
///
///  * after compaction, every member of `order` is currently admitted (a
///    member that failed admission was retro-removed on the spot), so the
///    active set is jointly feasible;
///  * a jointly feasible set re-admits fully under ANY greedy order, so
///    pure departures never need a replay — dropping a member only frees
///    capacity — and a newcomer slice replays only from the first
///    newcomer's position (the prefix is all-admitted and stands).
ScheduleResult sweep_incremental(const Network& network,
                                 std::span<const Request> requests, SlotCost cost,
                                 SweepSetup& s, SlotsTelemetry* telemetry,
                                 obs::Observer* observer) {
  const std::size_t n = requests.size();

  // Per-request constants (static cost: computed once, any slice bounds do).
  std::vector<Bandwidth> rates(n, Bandwidth::zero());
  std::vector<char> feasible(n, 0);
  std::vector<double> costs(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    if (!s.alive[k]) continue;
    const Request& r = requests[k];
    rates[k] = r.min_rate();
    feasible[k] = approx_le(rates[k], r.max_rate) ? 1 : 0;
    costs[k] = slot_cost(network, r, cost, r.release, r.deadline);
  }
  const auto by_cost = [&](std::size_t a, std::size_t b) {
    if (costs[a] != costs[b]) return costs[a] < costs[b];
    return requests[a].id < requests[b].id;
  };

  AdmissionLedger book{network, n};
  book.attach_observer(observer);  // drift-anomaly hook only
  std::vector<TimePoint> removed_at = make_removal_clock(requests, observer);
  std::vector<std::size_t> order;  // active set, sorted by (cost, id)
  order.reserve(n);
  std::vector<std::size_t> newcomers;  // reusable per-slice scratch
  // Earliest active deadline, to detect departures in O(1). Entries are
  // lazy: a dead member's entry only forces a (correct) non-skipped slice.
  std::priority_queue<std::pair<double, std::size_t>,
                      std::vector<std::pair<double, std::size_t>>, std::greater<>>
      departures;

  std::size_t next_release = 0;
  bool dirty = false;  // a request was retro-removed during the last replay

  for (std::size_t b = 0; b + 1 < s.boundaries.size(); ++b) {
    const TimePoint t1 = s.boundaries[b];
    const TimePoint t2 = s.boundaries[b + 1];
    if (telemetry != nullptr) ++telemetry->slices;

    // Consume arrivals due by t1.
    newcomers.clear();
    while (next_release < s.by_release.size() &&
           requests[s.by_release[next_release]].release <= t1) {
      const std::size_t k = s.by_release[next_release++];
      if (s.alive[k] && requests[k].deadline >= t2) newcomers.push_back(k);
    }

    const bool departures_due =
        !departures.empty() && departures.top().first < t2.to_seconds();
    if (newcomers.empty() && !departures_due && !dirty) {
      // No membership change: the previous slice's decisions stand.
      if (telemetry != nullptr) ++telemetry->skipped_slices;
      continue;
    }
    dirty = false;
    while (!departures.empty() && departures.top().first < t2.to_seconds()) {
      departures.pop();
    }

    // Compact the active set in place, applying departure/retro-removal
    // deltas. Dropping a member only frees capacity, and every surviving
    // member is currently admitted (jointly feasible), so compaction alone
    // never forces a replay — only newcomers can change later decisions.
    std::size_t write = 0;
    for (std::size_t read = 0; read < order.size(); ++read) {
      const std::size_t k = order[read];
      if (!s.alive[k] || !(requests[k].deadline >= t2)) {
        book.drop(k, requests[k].ingress, requests[k].egress);
        continue;
      }
      order[write++] = k;
    }
    order.resize(write);

    if (newcomers.empty()) continue;  // pure departures: decisions stand

    for (std::size_t k : newcomers) {
      departures.emplace(requests[k].deadline.to_seconds(), k);
    }
    std::sort(newcomers.begin(), newcomers.end(), by_cost);
    const std::size_t merged_from = order.size();
    order.insert(order.end(), newcomers.begin(), newcomers.end());
    std::inplace_merge(order.begin(),
                       order.begin() + static_cast<std::ptrdiff_t>(merged_from),
                       order.end(), by_cost);

    // Static-cost fast path (ISSUE 7 satellite, DESIGN.md §5h). Every order
    // member is currently admitted, so the active set is jointly feasible.
    // Probe each newcomer, cheapest first, against the *total* current load:
    //
    //  * fits the total → {members} ∪ {newcomer} is jointly feasible, and a
    //    jointly feasible set re-admits fully under any greedy order — the
    //    canonical suffix replay would admit the newcomer and re-admit every
    //    old member unchanged. One ledger probe replaces the O(suffix)
    //    drop-and-replay.
    //  * fails the total → the canonical decision is made against the order
    //    *prefix* (members cheaper than the newcomer). Reconstruct the
    //    prefix load on the newcomer's two ports by subtracting the suffix
    //    members' holdings (the replay's drop loop, restricted to two ports,
    //    clamp included). Fails the prefix too → retro-removed on the spot;
    //    it never allocates, so every other decision stands and no ledger
    //    probe is spent. Fits the prefix but not the total → admitting it
    //    must displace someone: fall back to the full suffix replay below.
    std::size_t replay_from = kNone;
    for (const std::size_t k : newcomers) {
      const Request& r = requests[k];
      if (!feasible[k]) {
        s.alive[k] = 0;  // never allocates: no other decision can change
        dirty = true;
        if (observer != nullptr) removed_at[k] = t1;
        continue;
      }
      // admission_checks counts ledger probes only (same contract as the
      // rebuild engine): infeasible-rate requests never reach the book.
      if (telemetry != nullptr) ++telemetry->admission_checks;
      if (book.try_admit(k, r.ingress, r.egress, rates[k])) continue;
      const auto pos = static_cast<std::size_t>(
          std::lower_bound(order.begin(), order.end(), k, by_cost) -
          order.begin());
      double in_load =
          book.counters().allocated_ingress(r.ingress).to_bytes_per_second();
      double out_load =
          book.counters().allocated_egress(r.egress).to_bytes_per_second();
      for (std::size_t idx = pos + 1; idx < order.size(); ++idx) {
        const std::size_t m = order[idx];
        const Bandwidth held = book.admitted_bw(m);
        if (!held.is_positive()) continue;
        if (requests[m].ingress == r.ingress) {
          in_load -= held.to_bytes_per_second();
          if (in_load < 0.0) in_load = 0.0;  // mirrors reclaim's clamp
        }
        if (requests[m].egress == r.egress) {
          out_load -= held.to_bytes_per_second();
          if (out_load < 0.0) out_load = 0.0;
        }
      }
      const bool prefix_fits =
          approx_le(Bandwidth::bytes_per_second(in_load) + rates[k],
                    network.ingress_capacity(r.ingress)) &&
          approx_le(Bandwidth::bytes_per_second(out_load) + rates[k],
                    network.egress_capacity(r.egress));
      if (prefix_fits) {
        replay_from = pos;  // true displacement: replay the suffix
        break;
      }
      s.alive[k] = 0;  // retro-removal, permanent
      dirty = true;
      if (observer != nullptr) removed_at[k] = t1;
    }
    if (replay_from == kNone) continue;

    // Displacement replay: release the suffix's held allocations, then
    // re-run greedy admission in cost order. The prefix's decisions are
    // untouched (greedy admission depends only on the order prefix); the
    // newcomers the fast path already settled all sit strictly before
    // `replay_from` (they are cheaper than the displacing newcomer).
    for (std::size_t idx = replay_from; idx < order.size(); ++idx) {
      const std::size_t k = order[idx];
      book.drop(k, requests[k].ingress, requests[k].egress);
    }
    for (std::size_t idx = replay_from; idx < order.size(); ++idx) {
      const std::size_t k = order[idx];
      const Request& r = requests[k];
      if (feasible[k]) {
        if (telemetry != nullptr) ++telemetry->admission_checks;
        if (book.try_admit(k, r.ingress, r.egress, rates[k])) continue;
      }
      s.alive[k] = 0;  // retro-removal, permanent
      dirty = true;
      if (observer != nullptr) removed_at[k] = t1;
    }
  }
  narrate_preemptions(requests, s.alive, removed_at, observer);
  return assemble(requests, s.alive, observer);
}

/// Per-sweep scratch for the CUMULATED kernel, sized once before the sweep
/// loop and reused every slice — the sweep body is `gridbw:hot`, which bans
/// stray allocation, and all the per-slice buffers below have capacity for
/// the full request set so refills never grow them.
///
/// Request-indexed arrays are SoA mirrors of the fields the inner loops
/// touch; the g_* arrays are gather buffers laid out in active-set order so
/// the per-slice cost refresh runs over contiguous doubles and
/// auto-vectorizes instead of chasing Request structs.
struct CumulatedArena {
  // Indexed by request k. rate/ratio/rel/win reproduce slot_cost's inputs
  // bit-for-bit: cost = ratio / ((t2 - rel) / win), the exact operation
  // sequence slot_cost performs, so the sort order matches the oracle's.
  std::vector<double> rate;      // min_rate, bytes/s
  std::vector<double> ratio;     // min_rate / bottleneck (cost numerator)
  std::vector<double> rel;       // release, seconds
  std::vector<double> win;       // deadline - release, seconds
  std::vector<double> cost;      // current-slice cost (comparator input)
  std::vector<char> feasible;    // min_rate <= max_rate (approx_le)
  std::vector<std::uint32_t> iport;
  std::vector<std::uint32_t> eport;
  std::vector<double> held;      // admitted bandwidth, 0 = not admitted
  // Indexed by port: raw-double CounterLedger with the approx_le threshold
  // precomputed (cap + 1.0 + 1e-9*|cap|, the exact approx_le expression).
  std::vector<double> load_in, load_out;
  std::vector<double> limit_in, limit_out;
  // Active-set-order gather buffers for the vectorized cost refresh.
  std::vector<double> g_rel, g_win, g_ratio, g_cost;
};

/// CUMULATED-SLOTS incremental kernel (the ISSUE 6 tentpole). The cost
/// factor is slice-dependent, so a newcomer slice must refresh every active
/// cost and re-sort — but the two sweep invariants (see sweep_incremental)
/// still hold, and they carry all the savings:
///
///  * pure-departure slices apply their drops and stop: the surviving set
///    is jointly feasible and re-admits fully under any order, so the
///    replay would be a no-op — skip it entirely;
///  * newcomer slices replay only from the first newcomer's position in
///    the freshly sorted order: the prefix holds only currently-admitted
///    members (in some permutation of the old order, which cannot change a
///    jointly feasible set's decisions), so its admissions stand;
///  * the cost refresh gathers into contiguous arrays and runs one
///    division loop the compiler vectorizes, and admission runs on raw
///    double port loads against precomputed approx_le thresholds.
// gridbw:hot
ScheduleResult sweep_cumulated(const Network& network,
                               std::span<const Request> requests, SweepSetup& s,
                               SlotsTelemetry* telemetry, obs::Observer* observer) {
  const std::size_t n = requests.size();

  CumulatedArena a;
  a.rate.assign(n, 0.0);
  a.ratio.assign(n, 0.0);
  a.rel.assign(n, 0.0);
  a.win.assign(n, 0.0);
  a.cost.assign(n, 0.0);
  a.feasible.assign(n, 0);
  a.iport.assign(n, 0);
  a.eport.assign(n, 0);
  a.held.assign(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    if (!s.alive[k]) continue;
    const Request& r = requests[k];
    a.rate[k] = r.min_rate().to_bytes_per_second();
    a.ratio[k] = r.min_rate() / network.bottleneck(r.ingress, r.egress);
    a.rel[k] = r.release.to_seconds();
    a.win[k] = (r.deadline - r.release).to_seconds();
    a.feasible[k] = approx_le(r.min_rate(), r.max_rate) ? 1 : 0;
    a.iport[k] = static_cast<std::uint32_t>(r.ingress.value);
    a.eport[k] = static_cast<std::uint32_t>(r.egress.value);
  }
  a.load_in.assign(network.ingress_count(), 0.0);
  a.load_out.assign(network.egress_count(), 0.0);
  a.limit_in.resize(network.ingress_count());
  a.limit_out.resize(network.egress_count());
  for (std::size_t p = 0; p < network.ingress_count(); ++p) {
    const double cap = network.ingress_capacity(IngressId{p}).to_bytes_per_second();
    a.limit_in[p] = cap + 1.0 + 1e-9 * std::fabs(cap);
  }
  for (std::size_t p = 0; p < network.egress_count(); ++p) {
    const double cap = network.egress_capacity(EgressId{p}).to_bytes_per_second();
    a.limit_out[p] = cap + 1.0 + 1e-9 * std::fabs(cap);
  }
  a.g_rel.reserve(n);
  a.g_win.reserve(n);
  a.g_ratio.reserve(n);
  a.g_cost.reserve(n);

  // Mirrors CounterLedger::reclaim's clamp: FP noise may dip a counter a
  // hair below zero; anything past the admission tolerance is a bug.
  const auto drop_held = [&a](std::size_t k) {
    const double held = a.held[k];
    if (held == 0.0) return;
    a.held[k] = 0.0;
    const std::uint32_t ip = a.iport[k];
    const std::uint32_t ep = a.eport[k];
    a.load_in[ip] -= held;
    a.load_out[ep] -= held;
    assert(a.load_in[ip] >= -1.0 && a.load_out[ep] >= -1.0);
    if (a.load_in[ip] < 0.0) a.load_in[ip] = 0.0;
    if (a.load_out[ep] < 0.0) a.load_out[ep] = 0.0;
  };
  const auto by_cost = [&](std::size_t x, std::size_t y) {
    if (a.cost[x] != a.cost[y]) return a.cost[x] < a.cost[y];
    return requests[x].id < requests[y].id;
  };

  std::vector<TimePoint> removed_at = make_removal_clock(requests, observer);
  std::vector<std::size_t> order;  // active set, sorted by (cost, id)
  order.reserve(n);
  std::vector<std::size_t> newcomers;
  newcomers.reserve(n);
  std::priority_queue<std::pair<double, std::size_t>,
                      std::vector<std::pair<double, std::size_t>>, std::greater<>>
      departures;

  std::size_t next_release = 0;
  bool dirty = false;  // a request was retro-removed during the last replay

  for (std::size_t b = 0; b + 1 < s.boundaries.size(); ++b) {
    const TimePoint t1 = s.boundaries[b];
    const TimePoint t2 = s.boundaries[b + 1];
    if (telemetry != nullptr) ++telemetry->slices;

    newcomers.clear();
    while (next_release < s.by_release.size() &&
           requests[s.by_release[next_release]].release <= t1) {
      const std::size_t k = s.by_release[next_release++];
      if (s.alive[k] && requests[k].deadline >= t2) newcomers.push_back(k);
    }

    const bool departures_due =
        !departures.empty() && departures.top().first < t2.to_seconds();
    if (newcomers.empty() && !departures_due && !dirty) {
      if (telemetry != nullptr) ++telemetry->skipped_slices;
      continue;
    }
    dirty = false;
    while (!departures.empty() && departures.top().first < t2.to_seconds()) {
      departures.pop();
    }

    // Apply departure/retro-removal deltas and compact the active set.
    std::size_t write = 0;
    for (std::size_t read = 0; read < order.size(); ++read) {
      const std::size_t k = order[read];
      if (!s.alive[k] || !(requests[k].deadline >= t2)) {
        drop_held(k);
        continue;
      }
      order[write++] = k;
    }
    order.resize(write);

    if (newcomers.empty()) continue;  // pure departures: decisions stand

    for (std::size_t k : newcomers) {
      departures.emplace(requests[k].deadline.to_seconds(), k);
    }
    order.insert(order.end(), newcomers.begin(), newcomers.end());

    // Vectorized cost refresh: gather the slice-invariant factors into
    // contiguous buffers, run one division loop over them, scatter back for
    // the comparator. Bit-identical to calling slot_cost per request.
    const std::size_t m = order.size();
    a.g_rel.resize(m);
    a.g_win.resize(m);
    a.g_ratio.resize(m);
    a.g_cost.resize(m);
    for (std::size_t idx = 0; idx < m; ++idx) {
      const std::size_t k = order[idx];
      a.g_rel[idx] = a.rel[k];
      a.g_win[idx] = a.win[k];
      a.g_ratio[idx] = a.ratio[k];
    }
    const double t2s = t2.to_seconds();
    for (std::size_t idx = 0; idx < m; ++idx) {
      a.g_cost[idx] = a.g_ratio[idx] / ((t2s - a.g_rel[idx]) / a.g_win[idx]);
    }
    for (std::size_t idx = 0; idx < m; ++idx) a.cost[order[idx]] = a.g_cost[idx];

    // Replay starts at the cheapest newcomer (`lead`). Everything cheaper
    // than it is an already-admitted old member whose admission stands, and
    // whose internal order is irrelevant (it is never replayed) — so an
    // O(m) partition replaces the full sort, and only the replayed suffix
    // is sorted. Identical decisions to sorting everything: the suffix is
    // exactly the tail a full sort would put at and after lead's position.
    std::size_t lead = newcomers.front();
    for (std::size_t idx = 1; idx < newcomers.size(); ++idx) {
      if (by_cost(newcomers[idx], lead)) lead = newcomers[idx];
    }
    const auto suffix_begin =
        std::partition(order.begin(), order.end(),
                       [&](std::size_t k) { return by_cost(k, lead); });
    std::sort(suffix_begin, order.end(), by_cost);
    const auto first_change =
        static_cast<std::size_t>(suffix_begin - order.begin());

    for (std::size_t idx = first_change; idx < m; ++idx) drop_held(order[idx]);
    for (std::size_t idx = first_change; idx < m; ++idx) {
      const std::size_t k = order[idx];
      if (a.feasible[k]) {
        // admission_checks counts ledger probes only (same contract as the
        // other engines).
        if (telemetry != nullptr) ++telemetry->admission_checks;
        const double bw = a.rate[k];
        const std::uint32_t ip = a.iport[k];
        const std::uint32_t ep = a.eport[k];
        if (a.load_in[ip] + bw <= a.limit_in[ip] &&
            a.load_out[ep] + bw <= a.limit_out[ep]) {
          a.load_in[ip] += bw;
          a.load_out[ep] += bw;
          a.held[k] = bw;
          continue;
        }
      }
      s.alive[k] = 0;  // retro-removal, permanent
      dirty = true;
      if (observer != nullptr) removed_at[k] = t1;
    }
  }
  narrate_preemptions(requests, s.alive, removed_at, observer);
  return assemble(requests, s.alive, observer);
}

}  // namespace

std::string to_string(SlotCost cost) {
  switch (cost) {
    case SlotCost::kCumulated: return "CUMULATED-SLOTS";
    case SlotCost::kMinBandwidth: return "MINBW-SLOTS";
    case SlotCost::kMinVolume: return "MINVOL-SLOTS";
  }
  return "unknown";
}

std::string to_string(SlotsEngine engine) {
  switch (engine) {
    case SlotsEngine::kRebuild: return "rebuild";
    case SlotsEngine::kIncremental: return "incremental";
  }
  return "unknown";
}

double slot_cost(const Network& network, const Request& r, SlotCost cost, TimePoint t1,
                 TimePoint t2) {
  (void)t1;  // the priority factor only involves the slice's upper bound
  switch (cost) {
    case SlotCost::kCumulated: {
      // priority in (0, 1]: the fraction of the request's window that will
      // have been covered once this slice completes. Longer-served (and
      // shorter) requests get smaller cost, hence higher priority.
      const double priority = (t2 - r.release) / (r.deadline - r.release);
      const Bandwidth b_min = network.bottleneck(r.ingress, r.egress);
      return (r.min_rate() / b_min) / priority;
    }
    case SlotCost::kMinBandwidth:
      return r.min_rate().to_bytes_per_second();
    case SlotCost::kMinVolume:
      return r.volume.to_bytes();
  }
  throw std::logic_error{"slot_cost: bad cost kind"};
}

ScheduleResult schedule_rigid_slots(const Network& network,
                                    std::span<const Request> requests, SlotCost cost,
                                    obs::Observer* observer) {
  return schedule_rigid_slots(network, requests, cost, SlotsEngine::kIncremental,
                              nullptr, observer);
}

ScheduleResult schedule_rigid_slots(const Network& network,
                                    std::span<const Request> requests, SlotCost cost,
                                    SlotsEngine engine, SlotsTelemetry* telemetry,
                                    obs::Observer* observer) {
  if (observer != nullptr) {
    for (const Request& r : requests) obs::note_submitted(observer, r.id, r.release);
  }
  SweepSetup setup = prepare_sweep(requests);
  switch (engine) {
    case SlotsEngine::kRebuild:
      return sweep_rebuild(network, requests, cost, setup, telemetry, observer);
    case SlotsEngine::kIncremental:
      // CUMULATED's slice-dependent cost gets its own batched kernel; the
      // static-cost kernels share the ordered-merge engine.
      if (cost == SlotCost::kCumulated) {
        return sweep_cumulated(network, requests, setup, telemetry, observer);
      }
      return sweep_incremental(network, requests, cost, setup, telemetry, observer);
  }
  throw std::logic_error{"schedule_rigid_slots: bad engine"};
}

}  // namespace gridbw::heuristics
