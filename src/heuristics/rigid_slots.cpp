#include "heuristics/rigid_slots.hpp"

#include <algorithm>
#include <functional>
#include <queue>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/ledger.hpp"

namespace gridbw::heuristics {
namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

/// State shared by both sweep engines: validity flags, slice boundaries,
/// and the release-order cursor. Requests with a non-positive window are
/// rejected up front — their cost factor would be NaN/inf and poison the
/// per-slice sort — and contribute no slice boundaries.
struct SweepSetup {
  std::vector<char> alive;
  std::vector<TimePoint> boundaries;
  std::vector<std::size_t> by_release;
};

SweepSetup prepare_sweep(std::span<const Request> requests) {
  SweepSetup s;
  s.alive.assign(requests.size(), 1);
  s.boundaries.reserve(requests.size() * 2);
  for (std::size_t k = 0; k < requests.size(); ++k) {
    const Request& r = requests[k];
    if (!(r.deadline > r.release)) {
      s.alive[k] = 0;
      continue;
    }
    s.boundaries.push_back(r.release);
    s.boundaries.push_back(r.deadline);
  }
  std::sort(s.boundaries.begin(), s.boundaries.end());
  s.boundaries.erase(std::unique(s.boundaries.begin(), s.boundaries.end()),
                     s.boundaries.end());

  s.by_release.reserve(requests.size());
  for (std::size_t k = 0; k < requests.size(); ++k) {
    if (s.alive[k]) s.by_release.push_back(k);
  }
  std::sort(s.by_release.begin(), s.by_release.end(),
            [&](std::size_t a, std::size_t b) {
              if (requests[a].release != requests[b].release) {
                return requests[a].release < requests[b].release;
              }
              return requests[a].id < requests[b].id;
            });
  return s;
}

/// Final accept/reject assembly, identical for both engines.
ScheduleResult assemble(std::span<const Request> requests,
                        const std::vector<char>& alive, obs::Observer* observer) {
  ScheduleResult result;
  for (std::size_t k = 0; k < requests.size(); ++k) {
    const Request& r = requests[k];
    if (alive[k] && approx_le(r.min_rate(), r.max_rate)) {
      result.schedule.accept(r.id, r.release, r.min_rate());
      obs::note_accepted(observer, r.id, r.release, r.release, r.min_rate());
    } else {
      result.rejected.push_back(r.id);
      if (observer != nullptr) {
        obs::RejectReason reason = obs::RejectReason::kRetroRemoved;
        if (!(r.deadline > r.release)) {
          reason = obs::RejectReason::kDegenerateWindow;
        } else if (!approx_le(r.min_rate(), r.max_rate)) {
          reason = obs::RejectReason::kInfeasibleRate;
        }
        obs::note_rejected(observer, r.id, r.release, reason);
      }
    }
  }
  return result;
}

/// Returns a per-request retro-removal timestamp buffer, pre-filled with
/// each request's release so "never removed" compares as "not preempted".
/// Empty (no allocation) when there is no observer.
std::vector<TimePoint> make_removal_clock(std::span<const Request> requests,
                                          obs::Observer* observer) {
  std::vector<TimePoint> removed_at;
  if (observer != nullptr) {
    removed_at.reserve(requests.size());
    for (const Request& r : requests) removed_at.push_back(r.release);
  }
  return removed_at;
}

/// Emits a preempted event for every retro-removed request that had held
/// bandwidth in an earlier slice (dropped strictly after its release).
/// Kept out of the sweep loops: even a never-taken out-of-line call on the
/// removal path bloats the admission loop measurably, so the sweeps record
/// plain timestamp stores and the narration happens once, here.
void narrate_preemptions(std::span<const Request> requests,
                         const std::vector<char>& alive,
                         const std::vector<TimePoint>& removed_at,
                         obs::Observer* observer) {
  if (observer == nullptr) return;
  for (std::size_t k = 0; k < requests.size(); ++k) {
    if (!alive[k] && requests[k].release < removed_at[k]) {
      obs::note_preempted(observer, requests[k].id, removed_at[k]);
    }
  }
}

/// Paper-literal reference: every slice re-sorts the active set and rebuilds
/// a fresh CounterLedger. Kept as the differential-test oracle.
ScheduleResult sweep_rebuild(const Network& network, std::span<const Request> requests,
                             SlotCost cost, SweepSetup& s, SlotsTelemetry* telemetry,
                             obs::Observer* observer) {
  std::size_t next_release = 0;
  std::vector<std::size_t> running;
  std::vector<TimePoint> removed_at = make_removal_clock(requests, observer);

  CounterLedger counters{network};
  for (std::size_t b = 0; b + 1 < s.boundaries.size(); ++b) {
    const TimePoint t1 = s.boundaries[b];
    const TimePoint t2 = s.boundaries[b + 1];
    if (telemetry != nullptr) ++telemetry->slices;

    // Update the running set: drop finished/rejected, add newly released.
    std::erase_if(running, [&](std::size_t k) {
      return !s.alive[k] || !(requests[k].deadline >= t2);
    });
    while (next_release < s.by_release.size() &&
           requests[s.by_release[next_release]].release <= t1) {
      const std::size_t k = s.by_release[next_release++];
      if (s.alive[k] && requests[k].deadline >= t2) running.push_back(k);
    }
    if (running.empty()) continue;

    // Sort the slice's active requests by non-decreasing cost.
    std::vector<std::size_t> order = running;
    std::vector<double> costs(requests.size());
    for (std::size_t k : order) costs[k] = slot_cost(network, requests[k], cost, t1, t2);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b2) {
      if (costs[a] != costs[b2]) return costs[a] < costs[b2];
      return requests[a].id < requests[b2].id;
    });

    // Fresh per-slice counters (no request starts or stops inside a slice,
    // so per-slice admission is exact).
    counters = CounterLedger{network};
    for (std::size_t k : order) {
      const Request& r = requests[k];
      const Bandwidth bw = r.min_rate();
      if (telemetry != nullptr) ++telemetry->admission_checks;
      if (approx_le(bw, r.max_rate) && counters.fits(r.ingress, r.egress, bw)) {
        counters.allocate(r.ingress, r.egress, bw);
      } else {
        // Retro-removal: the request is discarded permanently. Earlier
        // slices already processed keep their decisions (the paper frees
        // the bookkeeping but does not revisit them).
        s.alive[k] = 0;
        if (observer != nullptr) removed_at[k] = t1;
      }
    }
  }
  narrate_preemptions(requests, s.alive, removed_at, observer);
  return assemble(requests, s.alive, observer);
}

/// Incremental engine. The sorted active set and the AdmissionLedger
/// survive across slices; boundaries apply finish/retro-removal deltas and
/// greedy admission is replayed only from the first position whose decision
/// inputs changed. For CUMULATED-SLOTS the cost factor is slice-dependent,
/// so any membership change forces a full re-sort and replay — but a slice
/// whose membership is unchanged is provably identical to its predecessor
/// (an unchanged set means the previous slice admitted everyone, and a set
/// that fits in one greedy order fits in all of them) and is skipped.
ScheduleResult sweep_incremental(const Network& network,
                                 std::span<const Request> requests, SlotCost cost,
                                 SweepSetup& s, SlotsTelemetry* telemetry,
                                 obs::Observer* observer) {
  const bool cost_is_static = cost != SlotCost::kCumulated;
  const std::size_t n = requests.size();

  // Per-request constants; CUMULATED costs are refreshed per slice.
  std::vector<Bandwidth> rates(n, Bandwidth::zero());
  std::vector<char> feasible(n, 0);
  std::vector<double> costs(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    if (!s.alive[k]) continue;
    const Request& r = requests[k];
    rates[k] = r.min_rate();
    feasible[k] = approx_le(rates[k], r.max_rate) ? 1 : 0;
    if (cost_is_static) {
      costs[k] = slot_cost(network, r, cost, r.release, r.deadline);
    }
  }
  const auto by_cost = [&](std::size_t a, std::size_t b) {
    if (costs[a] != costs[b]) return costs[a] < costs[b];
    return requests[a].id < requests[b].id;
  };

  AdmissionLedger book{network, n};
  std::vector<TimePoint> removed_at = make_removal_clock(requests, observer);
  std::vector<std::size_t> order;  // active set, sorted by (cost, id)
  order.reserve(n);
  std::vector<std::size_t> newcomers;  // reusable per-slice scratch
  // Earliest active deadline, to detect departures in O(1). Entries are
  // lazy: a dead member's entry only forces a (correct) non-skipped slice.
  std::priority_queue<std::pair<double, std::size_t>,
                      std::vector<std::pair<double, std::size_t>>, std::greater<>>
      departures;

  std::size_t next_release = 0;
  bool dirty = false;  // a request was retro-removed during the last replay

  for (std::size_t b = 0; b + 1 < s.boundaries.size(); ++b) {
    const TimePoint t1 = s.boundaries[b];
    const TimePoint t2 = s.boundaries[b + 1];
    if (telemetry != nullptr) ++telemetry->slices;

    // Consume arrivals due by t1.
    newcomers.clear();
    while (next_release < s.by_release.size() &&
           requests[s.by_release[next_release]].release <= t1) {
      const std::size_t k = s.by_release[next_release++];
      if (s.alive[k] && requests[k].deadline >= t2) newcomers.push_back(k);
    }

    const bool departures_due =
        !departures.empty() && departures.top().first < t2.to_seconds();
    if (newcomers.empty() && !departures_due && !dirty) {
      // No membership change: the previous slice's decisions stand.
      if (telemetry != nullptr) ++telemetry->skipped_slices;
      continue;
    }
    dirty = false;
    while (!departures.empty() && departures.top().first < t2.to_seconds()) {
      departures.pop();
    }

    // Compact the active set in place. Only the removal of a member that
    // holds bandwidth can change later decisions; rejected (dead) members
    // never allocated anything, so sweeping them out is free.
    std::size_t first_change = kNone;
    std::size_t write = 0;
    for (std::size_t read = 0; read < order.size(); ++read) {
      const std::size_t k = order[read];
      if (!s.alive[k] || !(requests[k].deadline >= t2)) {
        if (book.is_admitted(k)) {
          book.drop(k, requests[k].ingress, requests[k].egress);
          if (first_change == kNone) first_change = write;
        }
        continue;
      }
      order[write++] = k;
    }
    order.resize(write);

    if (!newcomers.empty()) {
      for (std::size_t k : newcomers) {
        departures.emplace(requests[k].deadline.to_seconds(), k);
      }
      if (cost_is_static) {
        std::sort(newcomers.begin(), newcomers.end(), by_cost);
        const auto insert_at = static_cast<std::size_t>(
            std::lower_bound(order.begin(), order.end(), newcomers.front(), by_cost) -
            order.begin());
        first_change = std::min(first_change, insert_at);
        const std::size_t merged_from = order.size();
        order.insert(order.end(), newcomers.begin(), newcomers.end());
        std::inplace_merge(order.begin(),
                           order.begin() + static_cast<std::ptrdiff_t>(merged_from),
                           order.end(), by_cost);
      } else {
        order.insert(order.end(), newcomers.begin(), newcomers.end());
        first_change = 0;
      }
    }

    if (!cost_is_static && first_change != kNone) {
      // Slice-dependent cost: refresh and re-sort the whole active set.
      for (std::size_t k : order) {
        costs[k] = slot_cost(network, requests[k], cost, t1, t2);
      }
      std::sort(order.begin(), order.end(), by_cost);
      first_change = 0;
    }
    if (first_change == kNone || first_change >= order.size()) continue;

    // Replay the affected suffix: release its held allocations, then re-run
    // greedy admission in cost order. The prefix's decisions are untouched
    // (greedy admission depends only on the order prefix).
    for (std::size_t idx = first_change; idx < order.size(); ++idx) {
      const std::size_t k = order[idx];
      book.drop(k, requests[k].ingress, requests[k].egress);
    }
    for (std::size_t idx = first_change; idx < order.size(); ++idx) {
      const std::size_t k = order[idx];
      const Request& r = requests[k];
      if (telemetry != nullptr) ++telemetry->admission_checks;
      if (feasible[k] && book.try_admit(k, r.ingress, r.egress, rates[k])) continue;
      s.alive[k] = 0;  // retro-removal, permanent
      dirty = true;
      if (observer != nullptr) removed_at[k] = t1;
    }
  }
  narrate_preemptions(requests, s.alive, removed_at, observer);
  return assemble(requests, s.alive, observer);
}

}  // namespace

std::string to_string(SlotCost cost) {
  switch (cost) {
    case SlotCost::kCumulated: return "CUMULATED-SLOTS";
    case SlotCost::kMinBandwidth: return "MINBW-SLOTS";
    case SlotCost::kMinVolume: return "MINVOL-SLOTS";
  }
  return "unknown";
}

std::string to_string(SlotsEngine engine) {
  switch (engine) {
    case SlotsEngine::kRebuild: return "rebuild";
    case SlotsEngine::kIncremental: return "incremental";
  }
  return "unknown";
}

double slot_cost(const Network& network, const Request& r, SlotCost cost, TimePoint t1,
                 TimePoint t2) {
  (void)t1;  // the priority factor only involves the slice's upper bound
  switch (cost) {
    case SlotCost::kCumulated: {
      // priority in (0, 1]: the fraction of the request's window that will
      // have been covered once this slice completes. Longer-served (and
      // shorter) requests get smaller cost, hence higher priority.
      const double priority = (t2 - r.release) / (r.deadline - r.release);
      const Bandwidth b_min = network.bottleneck(r.ingress, r.egress);
      return (r.min_rate() / b_min) / priority;
    }
    case SlotCost::kMinBandwidth:
      return r.min_rate().to_bytes_per_second();
    case SlotCost::kMinVolume:
      return r.volume.to_bytes();
  }
  throw std::logic_error{"slot_cost: bad cost kind"};
}

ScheduleResult schedule_rigid_slots(const Network& network,
                                    std::span<const Request> requests, SlotCost cost,
                                    obs::Observer* observer) {
  return schedule_rigid_slots(network, requests, cost, SlotsEngine::kIncremental,
                              nullptr, observer);
}

ScheduleResult schedule_rigid_slots(const Network& network,
                                    std::span<const Request> requests, SlotCost cost,
                                    SlotsEngine engine, SlotsTelemetry* telemetry,
                                    obs::Observer* observer) {
  if (observer != nullptr) {
    for (const Request& r : requests) obs::note_submitted(observer, r.id, r.release);
  }
  SweepSetup setup = prepare_sweep(requests);
  switch (engine) {
    case SlotsEngine::kRebuild:
      return sweep_rebuild(network, requests, cost, setup, telemetry, observer);
    case SlotsEngine::kIncremental:
      return sweep_incremental(network, requests, cost, setup, telemetry, observer);
  }
  throw std::logic_error{"schedule_rigid_slots: bad engine"};
}

}  // namespace gridbw::heuristics
