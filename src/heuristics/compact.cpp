#include "heuristics/compact.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "core/ledger.hpp"

namespace gridbw::heuristics {

CompactResult compact_schedule(const Network& network,
                               std::span<const Request> requests,
                               const Schedule& schedule,
                               const CompactOptions& options) {
  if (!options.grid.is_positive()) {
    throw std::invalid_argument{"compact_schedule: grid must be positive"};
  }
  std::unordered_map<RequestId, const Request*> by_id;
  for (const Request& r : requests) by_id.emplace(r.id, &r);

  // Earliest-start-first: a request can only be pulled into gaps left of
  // it, so processing in start order lets earlier pulls open room for
  // later ones.
  std::vector<Assignment> order{schedule.assignments().begin(),
                                schedule.assignments().end()};
  std::sort(order.begin(), order.end(), [](const Assignment& a, const Assignment& b) {
    if (a.start != b.start) return a.start < b.start;
    return a.request < b.request;
  });

  CompactResult out;
  NetworkLedger ledger{network};
  for (const Assignment& a : order) {
    const auto it = by_id.find(a.request);
    if (it == by_id.end()) {
      throw std::invalid_argument{"compact_schedule: unknown request " +
                                  std::to_string(a.request)};
    }
    const Request& r = *it->second;
    const Duration transfer = r.volume / a.bw;

    TimePoint chosen = a.start;
    // Probe from the release forward on the grid; stop at the original
    // start (never move later).
    for (TimePoint candidate = r.release; candidate < a.start;
         candidate += options.grid) {
      if (ledger.fits(r.ingress, r.egress, candidate, candidate + transfer, a.bw)) {
        chosen = candidate;
        break;
      }
    }

    ledger.reserve(r.ingress, r.egress, chosen, chosen + transfer, a.bw);
    out.schedule.accept(r.id, chosen, a.bw);
    if (chosen < a.start) {
      ++out.moved;
      out.total_advance += a.start - chosen;
    }
  }
  return out;
}

}  // namespace gridbw::heuristics
