#include "heuristics/registry.hpp"

#include <array>
#include <cstdio>

#include "heuristics/flexible_greedy.hpp"
#include "heuristics/rigid_fcfs.hpp"

namespace gridbw::heuristics {

std::vector<NamedScheduler> rigid_schedulers() {
  std::vector<NamedScheduler> all;
  all.push_back(NamedScheduler{
      "FCFS",
      [](const Network& n, std::span<const Request> r, obs::Observer* observer) {
        return schedule_rigid_fcfs(n, r, observer);
      }});
  for (SlotCost cost :
       {SlotCost::kCumulated, SlotCost::kMinBandwidth, SlotCost::kMinVolume}) {
    all.push_back(NamedScheduler{
        to_string(cost),
        [cost](const Network& n, std::span<const Request> r, obs::Observer* observer) {
          return schedule_rigid_slots(n, r, cost, observer);
        }});
  }
  return all;
}

NamedScheduler make_greedy(BandwidthPolicy policy) {
  return NamedScheduler{
      "greedy/" + policy.name(),
      [policy](const Network& n, std::span<const Request> r, obs::Observer* observer) {
        return schedule_flexible_greedy(n, r, policy, observer);
      }};
}

NamedScheduler make_window(WindowOptions options) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "window%.0f/", options.step.to_seconds());
  return NamedScheduler{
      std::string{buf.data()} + options.policy.name(),
      [options](const Network& n, std::span<const Request> r, obs::Observer* observer) {
        return schedule_flexible_window(n, r, options, observer);
      }};
}

NamedScheduler make_malleable_greedy(MalleableOptions options) {
  return NamedScheduler{
      "mgreedy/" + options.policy.name() + (options.reshape ? "" : "-rigid"),
      [options](const Network& n, std::span<const Request> r, obs::Observer* observer) {
        return schedule_malleable_greedy(n, r, options, observer);
      }};
}

NamedScheduler make_malleable_window(MalleableOptions options) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "mwindow%.0f/", options.step.to_seconds());
  return NamedScheduler{
      std::string{buf.data()} + options.policy.name() +
          (options.reshape ? "" : "-rigid"),
      [options](const Network& n, std::span<const Request> r, obs::Observer* observer) {
        return schedule_malleable_window(n, r, options, observer);
      }};
}

}  // namespace gridbw::heuristics
