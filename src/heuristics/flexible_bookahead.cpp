#include "heuristics/flexible_bookahead.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/ledger.hpp"

namespace gridbw::heuristics {

ScheduleResult schedule_flexible_bookahead(const Network& network,
                                           std::span<const Request> requests,
                                           const BookAheadOptions& options,
                                           obs::Observer* observer) {
  // Negated form so a NaN step fails the gate too.
  if (!options.step.is_positive() || !std::isfinite(options.step.to_seconds())) {
    throw std::invalid_argument{
        "schedule_flexible_bookahead: step must be positive and finite"};
  }

  ScheduleResult result;
  std::vector<Request> order;
  order.reserve(requests.size());
  for (const Request& r : requests) {
    obs::note_submitted(observer, r.id, r.release);
    // A non-positive window has an infinite MinRate; reject it up front.
    if (!(r.deadline > r.release)) {
      result.rejected.push_back(r.id);
      obs::note_rejected(observer, r.id, r.release,
                         obs::RejectReason::kDegenerateWindow);
      continue;
    }
    order.push_back(r);
  }
  sort_fcfs(order);
  if (order.empty()) return result;

  NetworkLedger ledger{network};
  ledger.attach_observer(observer);
  std::size_t next_arrival = 0;
  TimePoint interval_start = order.front().release;

  while (next_arrival < order.size()) {
    const TimePoint decision = interval_start + options.step;

    // Candidates of this interval, cheapest feasible placement first. We
    // sort by MinRate (small demands first) — a simple stand-in for the
    // WINDOW cost that keeps the per-candidate placement scan independent.
    std::vector<const Request*> candidates;
    while (next_arrival < order.size() && order[next_arrival].release < decision) {
      candidates.push_back(&order[next_arrival++]);
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Request* a, const Request* b) {
                if (a->min_rate() != b->min_rate()) return a->min_rate() < b->min_rate();
                return a->id < b->id;
              });

    for (const Request* rp : candidates) {
      const Request& r = *rp;
      bool placed = false;
      bool any_rate = false;  // some start in the horizon had a feasible rate
      for (std::size_t k = 0; k <= options.max_book_ahead && !placed; ++k) {
        const TimePoint start = decision + options.step * static_cast<double>(k);
        const auto bw = options.policy.assign(r, start);
        if (!bw.has_value()) break;  // later starts are only worse
        any_rate = true;
        const TimePoint end = start + r.volume / *bw;
        if (ledger.fits(r.ingress, r.egress, start, end, *bw)) {
          ledger.reserve(r.ingress, r.egress, start, end, *bw);
          result.schedule.accept(r.id, start, *bw);
          obs::note_accepted(observer, r.id, decision, start, *bw);
          placed = true;
        }
      }
      if (!placed) {
        result.rejected.push_back(r.id);
        obs::note_rejected(observer, r.id, decision,
                           any_rate ? obs::RejectReason::kNoFeasibleStart
                                    : obs::RejectReason::kInfeasibleRate);
      }
    }

    if (next_arrival < order.size()) {
      interval_start = gridbw::max(decision, order[next_arrival].release);
    }
  }
  return result;
}

}  // namespace gridbw::heuristics
