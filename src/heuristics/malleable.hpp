// gridbw/heuristics/malleable.hpp
//
// Malleable GREEDY / WINDOW scheduler family (ISSUE 9 tentpole): the
// Chen & Primet flexible-reservation idea grafted onto the paper's
// admission engines. Admission is UNCHANGED — a request is accepted iff its
// policy rate g(r) fits the guarantee book (the paper's ali/ale counters),
// so every admitted flow keeps a hard constant-rate guarantee. What changes
// is execution: between admission events the engine water-fills the ports'
// residual capacity across the live flows, so each flow actually runs at
//
//     g(r) <= rate(t) <= MaxRate(r)
//
// with the surplus shared max-min fairly. Rates step at event instants
// (a departure frees capacity -> survivors reshape upward; a newcomer
// claims its guarantee -> survivors fall back toward g(r), never below),
// producing the piecewise-constant RateProfiles of core/rate_profile.hpp.
// Because flows run at or above their guarantee they finish at or before
// their constant-rate promise — reshaping is revocation-safe, and the
// accept-rate gain comes entirely from guarantees being reclaimed earlier.
//
// With `reshape` disabled the fluid machinery degenerates to constant
// rates and the engines reproduce schedule_flexible_greedy /
// schedule_flexible_window byte-for-byte (traces included) — the
// differential contract tests/malleable_test.cpp pins.

#pragma once

#include <span>

#include "core/network.hpp"
#include "core/request.hpp"
#include "core/schedule.hpp"
#include "heuristics/bandwidth_policy.hpp"
#include "heuristics/flexible_window.hpp"
#include "obs/observer.hpp"

namespace gridbw::heuristics {

struct MalleableOptions {
  /// The guarantee each admitted flow holds (the admission rate).
  BandwidthPolicy policy{BandwidthPolicy::min_rate()};

  /// Water-fill surplus capacity across live flows. false = every flow runs
  /// at exactly its guarantee: constant rates, byte-identical to the
  /// constant-rate engines.
  bool reshape{true};

  /// WINDOW variant only: interval length and candidate order (the same
  /// knobs as WindowOptions; the malleable drain is the scan engine).
  Duration step{Duration::seconds(400)};
  CandidateOrder order{CandidateOrder::kMinCost};
  double hotspot_weight{0.0};
};

/// Malleable GREEDY: arrival-ordered online admission (Algorithm 2) over
/// the guarantee book, with water-filled execution rates.
[[nodiscard]] ScheduleResult schedule_malleable_greedy(
    const Network& network, std::span<const Request> requests,
    const MalleableOptions& options, obs::Observer* observer = nullptr);

/// Malleable WINDOW: interval-batched admission (Algorithm 3) over the
/// guarantee book, with water-filled execution rates.
[[nodiscard]] ScheduleResult schedule_malleable_window(
    const Network& network, std::span<const Request> requests,
    const MalleableOptions& options, obs::Observer* observer = nullptr);

}  // namespace gridbw::heuristics
