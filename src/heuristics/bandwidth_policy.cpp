#include "heuristics/bandwidth_policy.hpp"

#include <array>
#include <cstdio>
#include <stdexcept>

namespace gridbw::heuristics {

BandwidthPolicy BandwidthPolicy::min_rate() { return BandwidthPolicy{0.0}; }

BandwidthPolicy BandwidthPolicy::fraction_of_max(double f) {
  if (!(f > 0.0) || f > 1.0) {
    throw std::invalid_argument{"BandwidthPolicy: f must be in (0, 1]"};
  }
  return BandwidthPolicy{f};
}

std::optional<Bandwidth> BandwidthPolicy::assign(const Request& r, TimePoint start) const {
  const Bandwidth floor = r.min_rate_from(start);
  if (!approx_le(floor, r.max_rate)) return std::nullopt;  // cannot finish in time
  const Bandwidth wanted =
      fraction_ == 0.0 ? floor : gridbw::max(r.max_rate * fraction_, floor);
  return gridbw::min(wanted, r.max_rate);
}

std::string BandwidthPolicy::name() const {
  if (fraction_ == 0.0) return "minrate";
  std::array<char, 32> buf{};
  std::snprintf(buf.data(), buf.size(), "f=%.2f", fraction_);
  return std::string{buf.data()};
}

}  // namespace gridbw::heuristics
