#include "heuristics/malleable.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "core/ledger.hpp"

namespace gridbw::heuristics {
namespace {

constexpr std::size_t kInvalid = static_cast<std::size_t>(-1);

/// Same layout and comparator as the constant engines' completion queue —
/// with reshaping off the push sequence is identical too, so the pop order
/// (ties included) reproduces flexible_greedy/flexible_window exactly.
/// `bw` is the admission guarantee: what the ledger reclaims at completion.
struct Completion {
  TimePoint finish;
  RequestId request;
  IngressId ingress;
  EgressId egress;
  Bandwidth bw;
};

struct LaterFinish {
  bool operator()(const Completion& a, const Completion& b) const {
    return a.finish > b.finish;
  }
};

/// One admitted transfer in flight. The fluid state (remaining volume,
/// current rate) is rebased lazily: `remaining_bytes` is exact as of
/// `updated`, and `finish` is the cached completion prediction at the
/// current rate. A flow whose rate never changes keeps the finish computed
/// at admission (`when + vol/g`, the constant engines' expression), so the
/// reshape-off mode is FP-identical to them.
struct Flow {
  const Request* request{nullptr};
  Bandwidth guarantee;
  double rate_bps{0.0};
  double remaining_bytes{0.0};
  TimePoint updated;
  TimePoint finish;
  RateProfile profile;
  bool live{false};
};

/// The execution half of the malleable engines: runs admitted flows as a
/// fluid system, water-filling residual port capacity across them between
/// admission events. Owns completion sequencing and profile finalization;
/// admission itself stays in the caller's CounterLedger (the guarantee
/// book), which this class only touches to reclaim a finished guarantee.
class FluidBook {
 public:
  FluidBook(const Network& network, bool reshape, obs::Observer* observer,
            ScheduleResult& result)
      : network_{&network}, reshape_{reshape}, observer_{observer}, result_{&result} {}

  /// Starts an admitted flow at its guarantee rate. The caller has already
  /// allocated the guarantee in its ledger and emitted note_accepted.
  void admit(const Request& r, TimePoint when, Bandwidth guarantee) {
    Flow f;
    f.request = &r;
    f.guarantee = guarantee;
    f.rate_bps = guarantee.to_bytes_per_second();
    f.remaining_bytes = r.volume.to_bytes();
    f.updated = when;
    f.finish = when + r.volume / guarantee;
    f.profile.append(when, guarantee);
    f.live = true;
    index_.emplace(r.id, flows_.size());
    flows_.push_back(std::move(f));
    ++live_count_;
    completions_.push(
        Completion{flows_.back().finish, r.id, r.ingress, r.egress, guarantee});
    if (reshape_) refill(when);
  }

  /// Processes every completion predicted at or before `t` (and the upward
  /// reshapes each departure triggers, which may pull further completions
  /// under `t`). Reclaims each finished guarantee from `counters`.
  void run_until(TimePoint t, CounterLedger& counters) {
    while (!completions_.empty() && completions_.top().finish <= t) {
      step_one(counters);
    }
  }

  /// Finalizes every outstanding flow (end-of-run drain).
  void drain_all(CounterLedger& counters) {
    while (!completions_.empty()) step_one(counters);
  }

 private:
  void step_one(CounterLedger& counters) {
    const Completion done = completions_.top();
    completions_.pop();
    Flow& f = flows_[index_.at(done.request)];
    // A reshape superseded this prediction; the flow's live entry carries
    // its current finish. (With reshaping off every entry is current.)
    if (!f.live || f.finish != done.finish) return;
    f.live = false;
    --live_count_;
    f.profile.set_end(done.finish);
    result_->schedule.accept_profile(f.request->id, std::move(f.profile));
    counters.reclaim(done.ingress, done.egress, done.bw);
    obs::note_reclaimed(observer_, done.request, done.finish, done.bw);
    if (reshape_ && live_count_ > 0) refill(done.finish);
  }

  /// Rebases every live flow's remaining volume to `t`, recomputes the
  /// water-fill, and turns rate changes into profile steps + reshaped
  /// events + fresh completion predictions.
  void refill(TimePoint t) {
    live_scratch_.clear();
    for (std::size_t i = 0; i < flows_.size(); ++i) {
      if (flows_[i].live) live_scratch_.push_back(i);
    }
    if (live_scratch_.empty()) return;
    for (const std::size_t i : live_scratch_) {
      Flow& f = flows_[i];
      if (f.updated < t) {
        f.remaining_bytes = std::max(
            0.0, f.remaining_bytes - f.rate_bps * (t - f.updated).to_seconds());
        f.updated = t;
      }
    }
    water_fill();
    // Sub-millibyte/s rate moves are FP wobble from recomputing the fill,
    // not decisions — suppress them so profiles stay meaningful. The
    // threshold must stay far below the validator's 1 B/s port tolerance:
    // every suppressed *decrease* leaves the flow marginally above its
    // water-fill share, and those slivers sum across flows.
    constexpr double kStepEps = 1e-3;
    for (std::size_t k = 0; k < live_scratch_.size(); ++k) {
      Flow& f = flows_[live_scratch_[k]];
      const double next = rates_[k];
      if (std::fabs(next - f.rate_bps) <= kStepEps) continue;
      f.rate_bps = next;
      f.finish = t + Duration::seconds(f.remaining_bytes / next);
      const Bandwidth rate = Bandwidth::bytes_per_second(next);
      f.profile.append(t, rate);
      completions_.push(Completion{f.finish, f.request->id, f.request->ingress,
                                   f.request->egress, f.guarantee});
      obs::note_reshaped(observer_, f.request->id, t, rate);
    }
  }

  /// Progressive filling above the guarantees: every unfrozen flow's rate
  /// rises at the same speed until its MaxRate or one of its ports binds —
  /// max-min fairness over the residual capacity, computed in admission
  /// order so reruns are bit-identical.
  // gridbw:hot
  void water_fill() {
    const std::size_t n = live_scratch_.size();
    rates_.resize(n);
    frozen_.assign(n, false);
    in_load_.assign(network_->ingress_count(), 0.0);
    out_load_.assign(network_->egress_count(), 0.0);
    for (std::size_t k = 0; k < n; ++k) {
      const Flow& f = flows_[live_scratch_[k]];
      const double g = f.guarantee.to_bytes_per_second();
      rates_[k] = g;
      in_load_[f.request->ingress.value] += g;
      out_load_[f.request->egress.value] += g;
    }
    in_count_.resize(in_load_.size());
    out_count_.resize(out_load_.size());
    constexpr double kEps = 1e-6;  // bytes/s; far below any real rate
    for (std::size_t round = 0; round < 2 * n + 2; ++round) {
      std::fill(in_count_.begin(), in_count_.end(), 0.0);
      std::fill(out_count_.begin(), out_count_.end(), 0.0);
      double inc = std::numeric_limits<double>::infinity();
      std::size_t active = 0;
      for (std::size_t k = 0; k < n; ++k) {
        if (frozen_[k]) continue;
        const Flow& f = flows_[live_scratch_[k]];
        const double max_bps = f.request->max_rate.to_bytes_per_second();
        const std::size_t in = f.request->ingress.value;
        const std::size_t out = f.request->egress.value;
        const double head_in =
            network_->ingress_capacity(IngressId{in}).to_bytes_per_second() -
            in_load_[in];
        const double head_out =
            network_->egress_capacity(EgressId{out}).to_bytes_per_second() -
            out_load_[out];
        if (rates_[k] >= max_bps - kEps || head_in <= kEps || head_out <= kEps) {
          frozen_[k] = true;
          continue;
        }
        ++active;
        in_count_[in] += 1.0;
        out_count_[out] += 1.0;
        inc = std::min(inc, max_bps - rates_[k]);
      }
      if (active == 0) break;
      for (std::size_t p = 0; p < in_load_.size(); ++p) {
        if (in_count_[p] > 0.0) {
          inc = std::min(
              inc, (network_->ingress_capacity(IngressId{p}).to_bytes_per_second() -
                    in_load_[p]) /
                       in_count_[p]);
        }
      }
      for (std::size_t p = 0; p < out_load_.size(); ++p) {
        if (out_count_[p] > 0.0) {
          inc = std::min(
              inc, (network_->egress_capacity(EgressId{p}).to_bytes_per_second() -
                    out_load_[p]) /
                       out_count_[p]);
        }
      }
      if (!(inc > 0.0)) break;
      for (std::size_t k = 0; k < n; ++k) {
        if (frozen_[k]) continue;
        const Flow& f = flows_[live_scratch_[k]];
        rates_[k] += inc;
        in_load_[f.request->ingress.value] += inc;
        out_load_[f.request->egress.value] += inc;
      }
    }
  }

  const Network* network_;
  bool reshape_;
  obs::Observer* observer_;
  ScheduleResult* result_;
  std::vector<Flow> flows_;
  std::unordered_map<RequestId, std::size_t> index_;
  std::priority_queue<Completion, std::vector<Completion>, LaterFinish> completions_;
  std::size_t live_count_{0};
  // Scratch (refill/water_fill working state; member-owned to avoid
  // per-event allocation).
  std::vector<std::size_t> live_scratch_;
  std::vector<double> rates_;
  std::vector<bool> frozen_;
  std::vector<double> in_load_;
  std::vector<double> out_load_;
  std::vector<double> in_count_;
  std::vector<double> out_count_;
};

// --- WINDOW candidate selection (mirrors flexible_window.cpp's scan
// engine expression-for-expression; the differential suite pins the two) ---

struct Candidate {
  const Request* request;
  Bandwidth bw;  // the guarantee the policy would grant at the decision instant
};

double candidate_cost(const CounterLedger& counters, const Candidate& c,
                      double hotspot_weight) {
  const Request& r = *c.request;
  double cost = std::max(counters.ingress_util_with(r.ingress, c.bw),
                         counters.egress_util_with(r.egress, c.bw));
  if (hotspot_weight > 0.0) {
    const double standing =
        (counters.ingress_util_with(r.ingress, Bandwidth::zero()) +
         counters.egress_util_with(r.egress, Bandwidth::zero())) /
        2.0;
    cost += hotspot_weight * standing;
  }
  return cost;
}

double selection_cost(const CounterLedger& counters, const Candidate& c,
                      const MalleableOptions& options) {
  switch (options.order) {
    case CandidateOrder::kMinCost:
      return candidate_cost(counters, c, options.hotspot_weight);
    case CandidateOrder::kEarliestDeadline:
      return c.request->deadline.to_seconds();
    case CandidateOrder::kShortestJob:
      return (c.request->volume / c.bw).to_seconds();
  }
  throw std::logic_error{"selection_cost: bad candidate order"};
}

bool cost_tied(double cost, double min_cost) { return approx_le(cost, min_cost); }

}  // namespace

ScheduleResult schedule_malleable_greedy(const Network& network,
                                         std::span<const Request> requests,
                                         const MalleableOptions& options,
                                         obs::Observer* observer) {
  ScheduleResult result;
  std::vector<Request> order;
  order.reserve(requests.size());
  for (const Request& r : requests) {
    obs::note_submitted(observer, r.id, r.release);
    if (!(r.deadline > r.release)) {
      result.rejected.push_back(r.id);
      obs::note_rejected(observer, r.id, r.release,
                         obs::RejectReason::kDegenerateWindow);
      continue;
    }
    order.push_back(r);
  }
  sort_fcfs(order);

  CounterLedger counters{network};
  FluidBook book{network, options.reshape, observer, result};

  for (const Request& r : order) {
    book.run_until(r.release, counters);
    const auto g = options.policy.assign(r, r.release);
    if (g.has_value() && counters.fits(r.ingress, r.egress, *g)) {
      counters.allocate(r.ingress, r.egress, *g);
      obs::note_accepted(observer, r.id, r.release, r.release, *g);
      book.admit(r, r.release, *g);
    } else {
      result.rejected.push_back(r.id);
      if (observer != nullptr) {
        const obs::RejectReason reason =
            g.has_value() ? obs::classify_saturation(
                                counters.fits_ingress(r.ingress, *g),
                                counters.fits_egress(r.egress, *g))
                          : obs::RejectReason::kInfeasibleRate;
        obs::note_rejected(observer, r.id, r.release, reason);
      }
    }
  }
  book.drain_all(counters);
  return result;
}

ScheduleResult schedule_malleable_window(const Network& network,
                                         std::span<const Request> requests,
                                         const MalleableOptions& options,
                                         obs::Observer* observer) {
  if (!options.step.is_positive() || !std::isfinite(options.step.to_seconds())) {
    throw std::invalid_argument{
        "schedule_malleable_window: step must be positive and finite"};
  }
  if (!(options.hotspot_weight >= 0.0) || !std::isfinite(options.hotspot_weight)) {
    throw std::invalid_argument{
        "schedule_malleable_window: hotspot_weight must be finite and >= 0"};
  }

  ScheduleResult result;
  std::vector<Request> order;
  order.reserve(requests.size());
  for (const Request& r : requests) {
    obs::note_submitted(observer, r.id, r.release);
    if (!(r.deadline > r.release)) {
      result.rejected.push_back(r.id);
      obs::note_rejected(observer, r.id, r.release,
                         obs::RejectReason::kDegenerateWindow);
      continue;
    }
    order.push_back(r);
  }
  sort_fcfs(order);
  if (order.empty()) return result;

  CounterLedger counters{network};
  FluidBook book{network, options.reshape, observer, result};
  std::vector<Candidate> candidates;
  std::vector<double> cost_scratch;

  std::size_t next_arrival = 0;
  TimePoint interval_start = order.front().release;

  while (next_arrival < order.size()) {
    const TimePoint decision = interval_start + options.step;

    candidates.clear();
    while (next_arrival < order.size() && order[next_arrival].release < decision) {
      const Request& r = order[next_arrival++];
      const auto g = options.policy.assign(r, decision);
      if (g.has_value()) {
        candidates.push_back(Candidate{&r, *g});
      } else {
        result.rejected.push_back(r.id);
        obs::note_rejected(observer, r.id, decision,
                           obs::RejectReason::kInfeasibleRate);
      }
    }

    // Fluid events (completions + the reshapes they trigger) up to the
    // decision instant — the counter state every admission below sees is
    // exactly what the constant WINDOW's lazy reclaim produces.
    book.run_until(decision, counters);

    // Scan-engine drain (the reference selection; flexible_window's heap
    // makes identical decisions, so one engine suffices here).
    while (!candidates.empty()) {
      cost_scratch.resize(candidates.size());
      double min_cost = std::numeric_limits<double>::infinity();
      for (std::size_t k = 0; k < candidates.size(); ++k) {
        cost_scratch[k] = selection_cost(counters, candidates[k], options);
        min_cost = std::min(min_cost, cost_scratch[k]);
      }
      std::size_t best = kInvalid;
      for (std::size_t k = 0; k < candidates.size(); ++k) {
        if (!cost_tied(cost_scratch[k], min_cost)) continue;
        if (best == kInvalid ||
            candidates[k].request->id < candidates[best].request->id) {
          best = k;
        }
      }
      const Candidate chosen = candidates[best];
      candidates[best] = candidates.back();
      candidates.pop_back();

      const Request& r = *chosen.request;
      if (candidate_cost(counters, chosen, 0.0) > 1.0 + 1e-12) {
        result.rejected.push_back(r.id);
        if (observer != nullptr) {
          obs::note_rejected(
              observer, r.id, decision,
              obs::classify_saturation(
                  counters.ingress_util_with(r.ingress, chosen.bw) <= 1.0 + 1e-12,
                  counters.egress_util_with(r.egress, chosen.bw) <= 1.0 + 1e-12));
        }
        continue;
      }
      counters.allocate(r.ingress, r.egress, chosen.bw);
      obs::note_accepted(observer, r.id, decision, decision, chosen.bw);
      book.admit(r, decision, chosen.bw);
    }

    if (next_arrival < order.size()) {
      interval_start = gridbw::max(decision, order[next_arrival].release);
    }
  }
  book.drain_all(counters);
  return result;
}

}  // namespace gridbw::heuristics
