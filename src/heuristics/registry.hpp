// gridbw/heuristics/registry.hpp
//
// Uniform, named handles on every admission algorithm in the library, so
// benches, examples, and comparison tests can iterate "all heuristics"
// without knowing each one's options struct.

#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/network.hpp"
#include "core/request.hpp"
#include "core/schedule.hpp"
#include "heuristics/bandwidth_policy.hpp"
#include "heuristics/flexible_window.hpp"
#include "heuristics/rigid_slots.hpp"

namespace gridbw::heuristics {

struct NamedScheduler {
  std::string name;
  std::function<ScheduleResult(const Network&, std::span<const Request>)> run;
};

/// FCFS + the three *-SLOTS variants (the Fig. 4 line-up).
[[nodiscard]] std::vector<NamedScheduler> rigid_schedulers();

/// GREEDY with the given bandwidth policy ("greedy/minrate", "greedy/f=0.80").
[[nodiscard]] NamedScheduler make_greedy(BandwidthPolicy policy);

/// WINDOW with the given options ("window400/f=1.00", ...).
[[nodiscard]] NamedScheduler make_window(WindowOptions options);

}  // namespace gridbw::heuristics
