// gridbw/heuristics/registry.hpp
//
// Uniform, named handles on every admission algorithm in the library, so
// benches, examples, and comparison tests can iterate "all heuristics"
// without knowing each one's options struct.

#pragma once

#include <functional>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/network.hpp"
#include "core/request.hpp"
#include "core/schedule.hpp"
#include "heuristics/bandwidth_policy.hpp"
#include "heuristics/flexible_window.hpp"
#include "heuristics/malleable.hpp"
#include "heuristics/rigid_slots.hpp"
#include "obs/observer.hpp"

namespace gridbw::heuristics {

struct NamedScheduler {
  using Run = std::function<ScheduleResult(const Network&, std::span<const Request>,
                                           obs::Observer*)>;

  NamedScheduler() = default;

  /// Accepts both observer-aware callables (3 args) and legacy 2-arg ones;
  /// the latter are adapted by dropping the observer, so pre-observability
  /// construction sites keep compiling unchanged.
  template <typename F>
  NamedScheduler(std::string scheduler_name, F fn) : name{std::move(scheduler_name)} {
    if constexpr (std::is_invocable_r_v<ScheduleResult, F&, const Network&,
                                        std::span<const Request>, obs::Observer*>) {
      run_fn = std::move(fn);
    } else {
      run_fn = [f = std::move(fn)](const Network& n, std::span<const Request> r,
                                   obs::Observer*) { return f(n, r); };
    }
  }

  [[nodiscard]] ScheduleResult run(const Network& network,
                                   std::span<const Request> requests,
                                   obs::Observer* observer = nullptr) const {
    return run_fn(network, requests, observer);
  }

  std::string name;
  Run run_fn;
};

/// FCFS + the three *-SLOTS variants (the Fig. 4 line-up).
[[nodiscard]] std::vector<NamedScheduler> rigid_schedulers();

/// GREEDY with the given bandwidth policy ("greedy/minrate", "greedy/f=0.80").
[[nodiscard]] NamedScheduler make_greedy(BandwidthPolicy policy);

/// WINDOW with the given options ("window400/f=1.00", ...).
[[nodiscard]] NamedScheduler make_window(WindowOptions options);

/// Malleable GREEDY ("mgreedy/minrate", ...); reshape off appends "-rigid".
[[nodiscard]] NamedScheduler make_malleable_greedy(MalleableOptions options);

/// Malleable WINDOW ("mwindow400/minrate", ...); reshape off appends "-rigid".
[[nodiscard]] NamedScheduler make_malleable_window(MalleableOptions options);

}  // namespace gridbw::heuristics
