#include "heuristics/flexible_greedy.hpp"

#include <queue>
#include <vector>

#include "core/ledger.hpp"

namespace gridbw::heuristics {
namespace {

/// A committed transfer awaiting completion (for bandwidth reclaim).
struct Completion {
  TimePoint finish;
  RequestId request;
  IngressId ingress;
  EgressId egress;
  Bandwidth bw;
};

struct LaterFinish {
  bool operator()(const Completion& a, const Completion& b) const {
    return a.finish > b.finish;
  }
};

}  // namespace

ScheduleResult schedule_flexible_greedy(const Network& network,
                                        std::span<const Request> requests,
                                        BandwidthPolicy policy,
                                        obs::Observer* observer) {
  ScheduleResult result;
  std::vector<Request> order;
  order.reserve(requests.size());
  for (const Request& r : requests) {
    obs::note_submitted(observer, r.id, r.release);
    // A non-positive window has an infinite MinRate; reject it up front.
    if (!(r.deadline > r.release)) {
      result.rejected.push_back(r.id);
      obs::note_rejected(observer, r.id, r.release,
                         obs::RejectReason::kDegenerateWindow);
      continue;
    }
    order.push_back(r);
  }
  sort_fcfs(order);

  CounterLedger counters{network};
  std::priority_queue<Completion, std::vector<Completion>, LaterFinish> completions;

  for (const Request& r : order) {
    // Reclaim every transfer finished by this arrival instant.
    while (!completions.empty() && completions.top().finish <= r.release) {
      const Completion done = completions.top();
      completions.pop();
      counters.reclaim(done.ingress, done.egress, done.bw);
      obs::note_reclaimed(observer, done.request, done.finish, done.bw);
    }

    const auto bw = policy.assign(r, r.release);
    if (bw.has_value() && counters.fits(r.ingress, r.egress, *bw)) {
      counters.allocate(r.ingress, r.egress, *bw);
      result.schedule.accept(r.id, r.release, *bw);
      obs::note_accepted(observer, r.id, r.release, r.release, *bw);
      completions.push(
          Completion{r.release + r.volume / *bw, r.id, r.ingress, r.egress, *bw});
    } else {
      result.rejected.push_back(r.id);
      if (observer != nullptr) {
        const obs::RejectReason reason =
            bw.has_value() ? obs::classify_saturation(
                                 counters.fits_ingress(r.ingress, *bw),
                                 counters.fits_egress(r.egress, *bw))
                           : obs::RejectReason::kInfeasibleRate;
        obs::note_rejected(observer, r.id, r.release, reason);
      }
    }
  }

  // Drain the outstanding completions so the trace closes every accepted
  // transfer's lifecycle. Observability only: without an observer the ledger
  // is torn down with the function and the drain would be dead work.
  if (observer != nullptr) {
    while (!completions.empty()) {
      const Completion done = completions.top();
      completions.pop();
      counters.reclaim(done.ingress, done.egress, done.bw);
      obs::note_reclaimed(observer, done.request, done.finish, done.bw);
    }
  }
  return result;
}

}  // namespace gridbw::heuristics
