#include "heuristics/flexible_greedy.hpp"

#include <queue>
#include <vector>

#include "core/ledger.hpp"

namespace gridbw::heuristics {
namespace {

/// A committed transfer awaiting completion (for bandwidth reclaim).
struct Completion {
  TimePoint finish;
  IngressId ingress;
  EgressId egress;
  Bandwidth bw;
};

struct LaterFinish {
  bool operator()(const Completion& a, const Completion& b) const {
    return a.finish > b.finish;
  }
};

}  // namespace

ScheduleResult schedule_flexible_greedy(const Network& network,
                                        std::span<const Request> requests,
                                        BandwidthPolicy policy) {
  ScheduleResult result;
  std::vector<Request> order;
  order.reserve(requests.size());
  for (const Request& r : requests) {
    // A non-positive window has an infinite MinRate; reject it up front.
    if (!(r.deadline > r.release)) {
      result.rejected.push_back(r.id);
      continue;
    }
    order.push_back(r);
  }
  sort_fcfs(order);

  CounterLedger counters{network};
  std::priority_queue<Completion, std::vector<Completion>, LaterFinish> completions;

  for (const Request& r : order) {
    // Reclaim every transfer finished by this arrival instant.
    while (!completions.empty() && completions.top().finish <= r.release) {
      const Completion done = completions.top();
      completions.pop();
      counters.reclaim(done.ingress, done.egress, done.bw);
    }

    const auto bw = policy.assign(r, r.release);
    if (bw.has_value() && counters.fits(r.ingress, r.egress, *bw)) {
      counters.allocate(r.ingress, r.egress, *bw);
      result.schedule.accept(r.id, r.release, *bw);
      completions.push(Completion{r.release + r.volume / *bw, r.ingress, r.egress, *bw});
    } else {
      result.rejected.push_back(r.id);
    }
  }
  return result;
}

}  // namespace gridbw::heuristics
