#include "heuristics/flexible_window.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>
#include <vector>

#include "core/ledger.hpp"

namespace gridbw::heuristics {
namespace {

constexpr std::size_t kInvalid = static_cast<std::size_t>(-1);

/// Measured scan/heap break-even batch size (release build, 10x10 uniform
/// network, paper_flexible workload, best-of-N wall clock per drain):
/// at 8 candidates the heap is ~1.12x slower than the scan, at 16 it is
/// already ~0.91x, and from 64 up it wins by 2.3x and more. kAuto switches
/// engines at this batch size; anywhere in [12, 16] the two are within
/// noise of each other, so the exact constant is uncritical.
constexpr std::size_t kHeapBreakEvenBatch = 16;

struct Completion {
  TimePoint finish;
  RequestId request;
  IngressId ingress;
  EgressId egress;
  Bandwidth bw;
};

struct LaterFinish {
  bool operator()(const Completion& a, const Completion& b) const {
    return a.finish > b.finish;
  }
};

struct Candidate {
  const Request* request;
  Bandwidth bw;  // rate the policy would grant at the decision instant
};

double candidate_cost(const CounterLedger& counters, const Candidate& c,
                      double hotspot_weight) {
  const Request& r = *c.request;
  double cost = std::max(counters.ingress_util_with(r.ingress, c.bw),
                         counters.egress_util_with(r.egress, c.bw));
  if (hotspot_weight > 0.0) {
    const double standing =
        (counters.ingress_util_with(r.ingress, Bandwidth::zero()) +
         counters.egress_util_with(r.egress, Bandwidth::zero())) /
        2.0;
    cost += hotspot_weight * standing;
  }
  return cost;
}

double selection_cost(const CounterLedger& counters, const Candidate& c,
                      const WindowOptions& options) {
  switch (options.order) {
    case CandidateOrder::kMinCost:
      return candidate_cost(counters, c, options.hotspot_weight);
    case CandidateOrder::kEarliestDeadline:
      return c.request->deadline.to_seconds();
    case CandidateOrder::kShortestJob:
      return (c.request->volume / c.bw).to_seconds();
  }
  throw std::logic_error{"selection_cost: bad candidate order"};
}

/// Costs within the approx_le tolerance of the minimum are treated as equal
/// and broken by request id: exact float equality would make the candidate
/// order depend on platform rounding (libm, FMA contraction, ...).
bool cost_tied(double cost, double min_cost) { return approx_le(cost, min_cost); }

/// Admits/rejects the chosen candidate; shared by both selection engines.
void decide(const Candidate& chosen, TimePoint decision, CounterLedger& counters,
            std::priority_queue<Completion, std::vector<Completion>, LaterFinish>&
                completions,
            ScheduleResult& result, obs::Observer* observer) {
  // The admission test is the pure capacity ratio even when the hot-spot
  // penalty inflates the selection cost. With the penalty disabled the two
  // coincide, and "minimum cost > 1" means no candidate fits — matching the
  // paper's stopping rule exactly.
  const Request& r = *chosen.request;
  if (candidate_cost(counters, chosen, 0.0) > 1.0 + 1e-12) {
    result.rejected.push_back(r.id);
    if (observer != nullptr) {
      obs::note_rejected(
          observer, r.id, decision,
          obs::classify_saturation(
              counters.ingress_util_with(r.ingress, chosen.bw) <= 1.0 + 1e-12,
              counters.egress_util_with(r.egress, chosen.bw) <= 1.0 + 1e-12));
    }
    return;
  }
  counters.allocate(r.ingress, r.egress, chosen.bw);
  result.schedule.accept(r.id, decision, chosen.bw);
  obs::note_accepted(observer, r.id, decision, decision, chosen.bw);
  completions.push(Completion{decision + r.volume / chosen.bw, r.id, r.ingress,
                              r.egress, chosen.bw});
}

/// Reference engine: re-evaluate every remaining candidate per admission.
void drain_by_scan(std::vector<Candidate>& candidates, const WindowOptions& options,
                   TimePoint decision, CounterLedger& counters,
                   std::priority_queue<Completion, std::vector<Completion>, LaterFinish>&
                       completions,
                   ScheduleResult& result, std::vector<double>& cost_scratch,
                   obs::Observer* observer) {
  while (!candidates.empty()) {
    cost_scratch.resize(candidates.size());
    double min_cost = std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < candidates.size(); ++k) {
      cost_scratch[k] = selection_cost(counters, candidates[k], options);
      min_cost = std::min(min_cost, cost_scratch[k]);
    }
    std::size_t best = kInvalid;
    for (std::size_t k = 0; k < candidates.size(); ++k) {
      if (!cost_tied(cost_scratch[k], min_cost)) continue;
      if (best == kInvalid || candidates[k].request->id < candidates[best].request->id) {
        best = k;
      }
    }
    const Candidate chosen = candidates[best];
    candidates[best] = candidates.back();
    candidates.pop_back();
    decide(chosen, decision, counters, completions, result, observer);
  }
}

/// Heap entry: `cost` is a lower bound of the candidate's current cost
/// (counters only fill up while draining, so costs never decrease).
struct HeapEntry {
  double cost;
  RequestId id;
  std::size_t slot;  // index into the interval's candidate array
};

struct WorseEntry {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (a.cost != b.cost) return a.cost > b.cost;
    return a.id > b.id;
  }
};

/// Heap engine: pop-and-refresh until the top is current, then gather the
/// epsilon tie band and break it by id, exactly like the scan.
void drain_by_heap(std::vector<Candidate>& candidates, const WindowOptions& options,
                   TimePoint decision, CounterLedger& counters,
                   std::priority_queue<Completion, std::vector<Completion>, LaterFinish>&
                       completions,
                   ScheduleResult& result, std::vector<HeapEntry>& tie_scratch,
                   obs::Observer* observer) {
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, WorseEntry> heap;
  for (std::size_t k = 0; k < candidates.size(); ++k) {
    heap.push(HeapEntry{selection_cost(counters, candidates[k], options),
                        candidates[k].request->id, k});
  }
  while (!heap.empty()) {
    HeapEntry top = heap.top();
    heap.pop();
    const double current = selection_cost(counters, candidates[top.slot], options);
    if (current > top.cost) {
      top.cost = current;  // stale lower bound: refresh and retry
      heap.push(top);
      continue;
    }
    // `top` holds the true numeric minimum. Gather every candidate whose
    // *current* cost ties it within tolerance; stale keys are lower bounds,
    // so any tied candidate's key is <= the tie threshold and gets popped.
    tie_scratch.clear();
    tie_scratch.push_back(top);
    while (!heap.empty() && cost_tied(heap.top().cost, top.cost)) {
      HeapEntry e = heap.top();
      heap.pop();
      e.cost = selection_cost(counters, candidates[e.slot], options);
      if (cost_tied(e.cost, top.cost)) {
        tie_scratch.push_back(e);
      } else {
        heap.push(e);
      }
    }
    std::size_t chosen_at = 0;
    for (std::size_t k = 1; k < tie_scratch.size(); ++k) {
      if (tie_scratch[k].id < tie_scratch[chosen_at].id) chosen_at = k;
    }
    const std::size_t slot = tie_scratch[chosen_at].slot;
    for (std::size_t k = 0; k < tie_scratch.size(); ++k) {
      if (k != chosen_at) heap.push(tie_scratch[k]);
    }
    decide(candidates[slot], decision, counters, completions, result, observer);
  }
  candidates.clear();
}

}  // namespace

std::string to_string(CandidateOrder order) {
  switch (order) {
    case CandidateOrder::kMinCost: return "mincost";
    case CandidateOrder::kEarliestDeadline: return "edf";
    case CandidateOrder::kShortestJob: return "sjf";
  }
  return "unknown";
}

std::string to_string(WindowEngine engine) {
  switch (engine) {
    case WindowEngine::kScan: return "scan";
    case WindowEngine::kHeap: return "heap";
    case WindowEngine::kAuto: return "auto";
  }
  return "unknown";
}

ScheduleResult schedule_flexible_window(const Network& network,
                                        std::span<const Request> requests,
                                        const WindowOptions& options,
                                        obs::Observer* observer) {
  // Written as negated >= / <= so NaN fails every gate (NaN comparisons are
  // false, so `step < x` style checks would wave NaN straight through).
  if (!options.step.is_positive() || !std::isfinite(options.step.to_seconds())) {
    throw std::invalid_argument{
        "schedule_flexible_window: step must be positive and finite"};
  }
  if (!(options.hotspot_weight >= 0.0) || !std::isfinite(options.hotspot_weight)) {
    throw std::invalid_argument{
        "schedule_flexible_window: hotspot_weight must be finite and >= 0"};
  }

  ScheduleResult result;
  std::vector<Request> order;
  order.reserve(requests.size());
  for (const Request& r : requests) {
    obs::note_submitted(observer, r.id, r.release);
    // Degenerate windows cannot carry any volume; reject them up front so
    // their infinite MinRate never reaches the cost computations.
    if (!(r.deadline > r.release)) {
      result.rejected.push_back(r.id);
      obs::note_rejected(observer, r.id, r.release,
                         obs::RejectReason::kDegenerateWindow);
      continue;
    }
    order.push_back(r);
  }
  sort_fcfs(order);
  if (order.empty()) return result;

  CounterLedger counters{network};
  std::priority_queue<Completion, std::vector<Completion>, LaterFinish> completions;
  std::vector<Candidate> candidates;
  std::vector<double> cost_scratch;
  std::vector<HeapEntry> tie_scratch;

  std::size_t next_arrival = 0;
  TimePoint interval_start = order.front().release;

  while (next_arrival < order.size()) {
    const TimePoint decision = interval_start + options.step;

    // Candidates: requests whose arrival lies inside [interval_start, decision).
    candidates.clear();
    while (next_arrival < order.size() && order[next_arrival].release < decision) {
      const Request& r = order[next_arrival++];
      const auto bw = options.policy.assign(r, decision);
      if (bw.has_value()) {
        candidates.push_back(Candidate{&r, *bw});
      } else {
        // Even MaxRate cannot finish the transfer from the decision instant.
        result.rejected.push_back(r.id);
        obs::note_rejected(observer, r.id, decision,
                           obs::RejectReason::kInfeasibleRate);
      }
    }

    // Reclaim transfers finished by the decision instant.
    while (!completions.empty() && completions.top().finish <= decision) {
      const Completion done = completions.top();
      completions.pop();
      counters.reclaim(done.ingress, done.egress, done.bw);
      obs::note_reclaimed(observer, done.request, done.finish, done.bw);
    }

    // Repeatedly admit the best candidate (by the configured order) while
    // it fits (capacity-ratio cost <= 1).
    // kAuto resolves per interval: both engines make identical decisions,
    // so the batch size alone picks the cheaper one.
    WindowEngine engine = options.engine;
    if (engine == WindowEngine::kAuto) {
      engine = candidates.size() < kHeapBreakEvenBatch ? WindowEngine::kScan
                                                       : WindowEngine::kHeap;
    }
    // Pin which engine actually drained the batch (the kAuto tie test
    // asserts a batch of exactly kHeapBreakEvenBatch lands on the heap).
    if (observer != nullptr && !candidates.empty()) {
      observer->count(engine == WindowEngine::kScan ? obs::Counter::kWindowScanDrains
                                                    : obs::Counter::kWindowHeapDrains);
    }
    switch (engine) {
      case WindowEngine::kScan:
        drain_by_scan(candidates, options, decision, counters, completions, result,
                      cost_scratch, observer);
        break;
      case WindowEngine::kHeap:
        drain_by_heap(candidates, options, decision, counters, completions, result,
                      tie_scratch, observer);
        break;
      case WindowEngine::kAuto:
        break;  // unreachable: resolved above
    }

    // Next interval: contiguous tiling, but skip idle gaps so sparse
    // workloads do not spin through empty intervals.
    if (next_arrival < order.size()) {
      interval_start = gridbw::max(decision, order[next_arrival].release);
    }
  }

  // Close every accepted transfer's lifecycle in the trace (observability
  // only; without an observer the ledger dies with the function).
  if (observer != nullptr) {
    while (!completions.empty()) {
      const Completion done = completions.top();
      completions.pop();
      counters.reclaim(done.ingress, done.egress, done.bw);
      obs::note_reclaimed(observer, done.request, done.finish, done.bw);
    }
  }
  return result;
}

}  // namespace gridbw::heuristics
