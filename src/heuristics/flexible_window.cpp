#include "heuristics/flexible_window.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>
#include <vector>

#include "core/ledger.hpp"

namespace gridbw::heuristics {
namespace {

struct Completion {
  TimePoint finish;
  IngressId ingress;
  EgressId egress;
  Bandwidth bw;
};

struct LaterFinish {
  bool operator()(const Completion& a, const Completion& b) const {
    return a.finish > b.finish;
  }
};

struct Candidate {
  const Request* request;
  Bandwidth bw;  // rate the policy would grant at the decision instant
};

double candidate_cost(const CounterLedger& counters, const Candidate& c,
                      double hotspot_weight) {
  const Request& r = *c.request;
  double cost = std::max(counters.ingress_util_with(r.ingress, c.bw),
                         counters.egress_util_with(r.egress, c.bw));
  if (hotspot_weight > 0.0) {
    const double standing =
        (counters.ingress_util_with(r.ingress, Bandwidth::zero()) +
         counters.egress_util_with(r.egress, Bandwidth::zero())) /
        2.0;
    cost += hotspot_weight * standing;
  }
  return cost;
}

}  // namespace

std::string to_string(CandidateOrder order) {
  switch (order) {
    case CandidateOrder::kMinCost: return "mincost";
    case CandidateOrder::kEarliestDeadline: return "edf";
    case CandidateOrder::kShortestJob: return "sjf";
  }
  return "unknown";
}

ScheduleResult schedule_flexible_window(const Network& network,
                                        std::span<const Request> requests,
                                        const WindowOptions& options) {
  if (!options.step.is_positive()) {
    throw std::invalid_argument{"schedule_flexible_window: step must be positive"};
  }

  std::vector<Request> order{requests.begin(), requests.end()};
  sort_fcfs(order);

  ScheduleResult result;
  if (order.empty()) return result;

  CounterLedger counters{network};
  std::priority_queue<Completion, std::vector<Completion>, LaterFinish> completions;

  std::size_t next_arrival = 0;
  TimePoint interval_start = order.front().release;

  while (next_arrival < order.size()) {
    const TimePoint decision = interval_start + options.step;

    // Candidates: requests whose arrival lies inside [interval_start, decision).
    std::vector<Candidate> candidates;
    while (next_arrival < order.size() && order[next_arrival].release < decision) {
      const Request& r = order[next_arrival++];
      const auto bw = options.policy.assign(r, decision);
      if (bw.has_value()) {
        candidates.push_back(Candidate{&r, *bw});
      } else {
        // Even MaxRate cannot finish the transfer from the decision instant.
        result.rejected.push_back(r.id);
      }
    }

    // Reclaim transfers finished by the decision instant.
    while (!completions.empty() && completions.top().finish <= decision) {
      const Completion done = completions.top();
      completions.pop();
      counters.reclaim(done.ingress, done.egress, done.bw);
    }

    // Repeatedly admit the best candidate (by the configured order) while
    // it fits (capacity-ratio cost <= 1).
    while (!candidates.empty()) {
      std::size_t best = 0;
      double best_cost = std::numeric_limits<double>::infinity();
      for (std::size_t k = 0; k < candidates.size(); ++k) {
        double cost = 0.0;
        switch (options.order) {
          case CandidateOrder::kMinCost:
            cost = candidate_cost(counters, candidates[k], options.hotspot_weight);
            break;
          case CandidateOrder::kEarliestDeadline:
            cost = candidates[k].request->deadline.to_seconds();
            break;
          case CandidateOrder::kShortestJob:
            cost = (candidates[k].request->volume / candidates[k].bw).to_seconds();
            break;
        }
        if (cost < best_cost ||
            (cost == best_cost &&
             candidates[k].request->id < candidates[best].request->id)) {
          best = k;
          best_cost = cost;
        }
      }
      // The admission test is the pure capacity ratio even when the
      // hot-spot penalty inflates the selection cost. With the penalty
      // disabled the two coincide, and "minimum cost > 1" means no
      // candidate fits — matching the paper's stopping rule exactly.
      const Candidate chosen = candidates[best];
      candidates[best] = candidates.back();
      candidates.pop_back();
      const Request& r = *chosen.request;
      if (candidate_cost(counters, chosen, 0.0) > 1.0 + 1e-12) {
        result.rejected.push_back(r.id);
        continue;
      }
      counters.allocate(r.ingress, r.egress, chosen.bw);
      result.schedule.accept(r.id, decision, chosen.bw);
      completions.push(
          Completion{decision + r.volume / chosen.bw, r.ingress, r.egress, chosen.bw});
    }

    // Next interval: contiguous tiling, but skip idle gaps so sparse
    // workloads do not spin through empty intervals.
    if (next_arrival < order.size()) {
      interval_start = gridbw::max(decision, order[next_arrival].release);
    }
  }
  return result;
}

}  // namespace gridbw::heuristics
