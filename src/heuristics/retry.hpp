// gridbw/heuristics/retry.hpp
//
// Client resubmission (§2.3: rejected customers "can also stand the risk of
// being rejected and try later"). A rejected request is resubmitted after a
// backoff with its window shifted intact (same length, same volume, same
// host limit — the user asks again for the same relative deadline). The
// admission engine is the online GREEDY of Algorithm 2 with a pluggable
// bandwidth policy.
//
// The simulation is event-driven on submissions and completions; the
// returned schedule contains each accepted request exactly once, under its
// original id, with the start time of the successful attempt.

#pragma once

#include <span>

#include "core/network.hpp"
#include "core/request.hpp"
#include "core/schedule.hpp"
#include "heuristics/bandwidth_policy.hpp"
#include "obs/observer.hpp"

namespace gridbw::heuristics {

struct RetryPolicy {
  /// Total submission attempts per request (1 = no retries).
  std::size_t max_attempts{3};
  /// Delay before the first retry. Must be finite and non-negative.
  Duration initial_backoff{Duration::seconds(60)};
  /// Each further retry multiplies the backoff by this factor. Must be
  /// finite and >= 1.
  double backoff_factor{2.0};
};

struct RetryResult {
  ScheduleResult result;
  /// Retries actually issued (excludes first attempts).
  std::size_t retries_issued{0};
  /// Requests accepted on a retry (not on their first attempt).
  std::size_t accepted_on_retry{0};
  /// The request set with each request's *final* window (shifted for
  /// requests accepted or exhausted on a retry). Validate the schedule
  /// against this set — a retried acceptance renegotiated its deadline.
  std::vector<Request> effective_requests;
};

[[nodiscard]] RetryResult schedule_greedy_with_retries(const Network& network,
                                                       std::span<const Request> requests,
                                                       BandwidthPolicy policy,
                                                       const RetryPolicy& retry,
                                                       obs::Observer* observer = nullptr);

}  // namespace gridbw::heuristics
