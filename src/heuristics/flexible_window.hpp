// gridbw/heuristics/flexible_window.hpp
//
// Interval-based WINDOW heuristic for flexible requests (§5.2,
// Algorithm 3). Time is divided into intervals of fixed length t_step.
// Requests arriving during an interval are batched; at the interval's end
// the scheduler (1) reclaims bandwidth of transfers that finished, then
// (2) repeatedly admits the candidate of minimum cost
//
//     cost(r) = max( (ali(i) + bw(r)) / B_in(i),
//                    (ale(e) + bw(r)) / B_out(e) )
//
// while that minimum stays <= 1; the remaining candidates are rejected.
// Admitted transfers start at the decision instant, so their feasible
// minimum rate is vol / (t_f - decision_time).
//
// The optional hot-spot-aware cost (paper §7 future work: "relieving
// tentative hot spots") adds a penalty proportional to the ports' standing
// utilization, steering load away from busy access points.

#pragma once

#include <span>
#include <string>

#include "core/network.hpp"
#include "core/request.hpp"
#include "core/schedule.hpp"
#include "heuristics/bandwidth_policy.hpp"
#include "obs/observer.hpp"

namespace gridbw::heuristics {

/// Which candidate the per-interval loop admits next. kMinCost is the
/// paper's rule; the alternatives are classic scheduling orders used as
/// ablation baselines (see bench/order_ablation).
enum class CandidateOrder {
  kMinCost,           // paper: smallest max-port-utilization first
  kEarliestDeadline,  // EDF: most urgent first
  kShortestJob,       // SJF: shortest transfer time first
};

[[nodiscard]] std::string to_string(CandidateOrder order);

/// How the per-interval loop finds the next-best candidate. All engines
/// produce identical schedules (enforced by the differential tests):
/// kScan is the literal O(C²) reference — re-evaluate every remaining
/// candidate per admission; kHeap keeps candidates in a lazily-refreshed
/// min-heap (costs only grow as admissions consume capacity, so a stale key
/// is always a lower bound and a refreshed top is the true minimum).
///
/// Small batches favour the scan: below ~16 candidates the heap's push/pop
/// and double cost evaluation (build + refresh) cost more than the brute
/// quadratic re-scan, which is exactly why the heap engine used to lose to
/// the reference on arrival-paced workloads whose intervals batch only a
/// handful of requests. kAuto picks per interval: scan below the measured
/// break-even batch size, heap at or above it.
enum class WindowEngine {
  kScan,  // reference: linear re-scan per admission
  kHeap,  // lazy min-heap selection (wins on large batches)
  kAuto,  // default: per-interval crossover between the two
};

[[nodiscard]] std::string to_string(WindowEngine engine);

struct WindowOptions {
  /// Interval length t_step. Longer intervals batch more candidates and
  /// schedule better, at the price of request response latency (§5.2).
  Duration step{Duration::seconds(400)};

  BandwidthPolicy policy{BandwidthPolicy::min_rate()};

  /// 0 disables; > 0 adds hotspot_weight * mean standing utilization of the
  /// request's two ports to its cost (kMinCost order only).
  double hotspot_weight{0.0};

  CandidateOrder order{CandidateOrder::kMinCost};

  WindowEngine engine{WindowEngine::kAuto};
};

[[nodiscard]] ScheduleResult schedule_flexible_window(const Network& network,
                                                      std::span<const Request> requests,
                                                      const WindowOptions& options,
                                                      obs::Observer* observer = nullptr);

}  // namespace gridbw::heuristics
