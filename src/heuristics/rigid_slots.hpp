// gridbw/heuristics/rigid_slots.hpp
//
// Time-window decomposition heuristics for rigid requests (§4.2,
// Algorithm 1). The timeline is sliced at every request start/finish time so
// that no request starts or stops inside a slice. Slices are processed in
// order; within each slice the active requests are sorted by a *cost*
// factor and admitted greedily against per-slice port counters. A request
// that fails in any slice of its window is retro-removed from all earlier
// slices and permanently discarded.
//
// Three cost factors from the paper:
//
//   CUMULATED-SLOTS:  cost = bw(r) / (b_min * priority(r, slice))
//                     priority(r, [t_i, t_{i+1}]) = (t_{i+1} - t_s) / (t_f - t_s)
//                     b_min = min(B_in(ingress(r)), B_out(egress(r)))
//   MINBW-SLOTS:      cost = bw(r)
//   MINVOL-SLOTS:     cost = vol(r)

#pragma once

#include <span>
#include <string>

#include "core/network.hpp"
#include "core/request.hpp"
#include "core/schedule.hpp"
#include "obs/observer.hpp"

namespace gridbw::heuristics {

enum class SlotCost {
  kCumulated,     // CUMULATED-SLOTS
  kMinBandwidth,  // MINBW-SLOTS
  kMinVolume,     // MINVOL-SLOTS
};

[[nodiscard]] std::string to_string(SlotCost cost);

/// Which admission engine drives the slice sweep. Both produce identical
/// schedules (enforced by the differential tests in
/// incremental_engine_test.cpp): kRebuild is the paper-literal reference
/// that re-sorts the active set and rebuilds fresh counters every slice;
/// kIncremental keeps the sorted active set and the per-port counters alive
/// across slices, applies release/finish deltas at boundaries, and replays
/// only the suffix of the order whose decisions can have changed.
enum class SlotsEngine {
  kRebuild,      // reference: fresh CounterLedger + full sort per slice
  kIncremental,  // default: delta-maintained counters + suffix replay
};

[[nodiscard]] std::string to_string(SlotsEngine engine);

/// Lightweight instrumentation of one sweep, surfaced by the benches'
/// timing tables (slices/sec).
struct SlotsTelemetry {
  std::size_t slices{0};            ///< slice boundaries visited
  std::size_t skipped_slices{0};    ///< slices with no admission-relevant change
  std::size_t admission_checks{0};  ///< fits/allocate decisions evaluated
};

/// The cost factor of request `r` on slice [t1, t2] under `cost`.
/// Exposed for tests and the microbenchmarks.
[[nodiscard]] double slot_cost(const Network& network, const Request& r, SlotCost cost,
                               TimePoint t1, TimePoint t2);

/// Runs the slice sweep with the default (incremental) engine.
[[nodiscard]] ScheduleResult schedule_rigid_slots(const Network& network,
                                                  std::span<const Request> requests,
                                                  SlotCost cost,
                                                  obs::Observer* observer = nullptr);

[[nodiscard]] ScheduleResult schedule_rigid_slots(const Network& network,
                                                  std::span<const Request> requests,
                                                  SlotCost cost, SlotsEngine engine,
                                                  SlotsTelemetry* telemetry = nullptr,
                                                  obs::Observer* observer = nullptr);

}  // namespace gridbw::heuristics
