// gridbw/heuristics/rigid_slots.hpp
//
// Time-window decomposition heuristics for rigid requests (§4.2,
// Algorithm 1). The timeline is sliced at every request start/finish time so
// that no request starts or stops inside a slice. Slices are processed in
// order; within each slice the active requests are sorted by a *cost*
// factor and admitted greedily against per-slice port counters. A request
// that fails in any slice of its window is retro-removed from all earlier
// slices and permanently discarded.
//
// Three cost factors from the paper:
//
//   CUMULATED-SLOTS:  cost = bw(r) / (b_min * priority(r, slice))
//                     priority(r, [t_i, t_{i+1}]) = (t_{i+1} - t_s) / (t_f - t_s)
//                     b_min = min(B_in(ingress(r)), B_out(egress(r)))
//   MINBW-SLOTS:      cost = bw(r)
//   MINVOL-SLOTS:     cost = vol(r)

#pragma once

#include <span>
#include <string>

#include "core/network.hpp"
#include "core/request.hpp"
#include "core/schedule.hpp"

namespace gridbw::heuristics {

enum class SlotCost {
  kCumulated,     // CUMULATED-SLOTS
  kMinBandwidth,  // MINBW-SLOTS
  kMinVolume,     // MINVOL-SLOTS
};

[[nodiscard]] std::string to_string(SlotCost cost);

/// The cost factor of request `r` on slice [t1, t2] under `cost`.
/// Exposed for tests and the microbenchmarks.
[[nodiscard]] double slot_cost(const Network& network, const Request& r, SlotCost cost,
                               TimePoint t1, TimePoint t2);

[[nodiscard]] ScheduleResult schedule_rigid_slots(const Network& network,
                                                  std::span<const Request> requests,
                                                  SlotCost cost);

}  // namespace gridbw::heuristics
