#include "heuristics/rigid_fcfs.hpp"

#include <vector>

#include "core/ledger.hpp"

namespace gridbw::heuristics {

ScheduleResult schedule_rigid_fcfs(const Network& network,
                                   std::span<const Request> requests) {
  ScheduleResult result;
  std::vector<Request> order;
  order.reserve(requests.size());
  for (const Request& r : requests) {
    // A non-positive window has an infinite MinRate; reject it up front.
    if (!(r.deadline > r.release)) {
      result.rejected.push_back(r.id);
      continue;
    }
    order.push_back(r);
  }
  sort_fcfs(order);

  NetworkLedger ledger{network};
  for (const Request& r : order) {
    const Bandwidth bw = r.min_rate();  // rigid: the one admissible rate
    if (approx_le(bw, r.max_rate) &&
        ledger.fits(r.ingress, r.egress, r.release, r.deadline, bw)) {
      ledger.reserve(r.ingress, r.egress, r.release, r.deadline, bw);
      result.schedule.accept(r.id, r.release, bw);
    } else {
      result.rejected.push_back(r.id);
    }
  }
  return result;
}

}  // namespace gridbw::heuristics
