#include "heuristics/rigid_fcfs.hpp"

#include <vector>

#include "core/ledger.hpp"

namespace gridbw::heuristics {

ScheduleResult schedule_rigid_fcfs(const Network& network,
                                   std::span<const Request> requests,
                                   obs::Observer* observer) {
  ScheduleResult result;
  std::vector<Request> order;
  order.reserve(requests.size());
  for (const Request& r : requests) {
    obs::note_submitted(observer, r.id, r.release);
    // A non-positive window has an infinite MinRate; reject it up front.
    if (!(r.deadline > r.release)) {
      result.rejected.push_back(r.id);
      obs::note_rejected(observer, r.id, r.release,
                         obs::RejectReason::kDegenerateWindow);
      continue;
    }
    order.push_back(r);
  }
  sort_fcfs(order);

  NetworkLedger ledger{network};
  ledger.attach_observer(observer);
  for (const Request& r : order) {
    const Bandwidth bw = r.min_rate();  // rigid: the one admissible rate
    if (approx_le(bw, r.max_rate) &&
        ledger.fits(r.ingress, r.egress, r.release, r.deadline, bw)) {
      ledger.reserve(r.ingress, r.egress, r.release, r.deadline, bw);
      result.schedule.accept(r.id, r.release, bw);
      obs::note_accepted(observer, r.id, r.release, r.release, bw);
    } else {
      result.rejected.push_back(r.id);
      if (observer != nullptr) {
        obs::RejectReason reason = obs::RejectReason::kInfeasibleRate;
        if (approx_le(bw, r.max_rate)) {
          reason = obs::classify_saturation(
              ledger.fits_ingress(r.ingress, r.release, r.deadline, bw),
              ledger.fits_egress(r.egress, r.release, r.deadline, bw));
        }
        obs::note_rejected(observer, r.id, r.release, reason);
      }
    }
  }
  return result;
}

}  // namespace gridbw::heuristics
