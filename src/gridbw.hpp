// gridbw.hpp — umbrella header for the gridbw library.
//
// gridbw reproduces "Optimal Bandwidth Sharing in Grid Environments"
// (Marchal, Vicat-Blanc Primet, Robert, Zeng — HPDC 2006): admission
// control and bandwidth assignment for short-lived bulk-transfer requests
// at the access points of a grid overlay network.
//
// Typical use:
//
//   #include "gridbw.hpp"
//   using namespace gridbw;
//
//   Network net = Network::uniform(10, 10, Bandwidth::gigabytes_per_second(1));
//   Rng rng{42};
//   workload::WorkloadSpec spec;                       // paper defaults
//   auto requests = workload::generate(spec, rng);
//   auto result = heuristics::schedule_flexible_window(
//       net, requests, {.step = Duration::seconds(400),
//                       .policy = heuristics::BandwidthPolicy::fraction_of_max(0.8)});
//   double rate = metrics::accept_rate(requests, result.schedule);

#pragma once

#include "util/config.hpp"
#include "util/flags.hpp"
#include "util/histogram.hpp"
#include "util/quantity.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

#include "core/ids.hpp"
#include "core/ledger.hpp"
#include "core/network.hpp"
#include "core/request.hpp"
#include "core/schedule.hpp"
#include "core/schedule_io.hpp"
#include "core/step_function.hpp"
#include "core/timeline_profile.hpp"
#include "core/validate.hpp"

#include "dataplane/replay.hpp"
#include "flow/maxflow.hpp"
#include "longlived/longlived.hpp"

#include "workload/generator.hpp"
#include "workload/load.hpp"
#include "workload/mixture.hpp"
#include "workload/scenario.hpp"
#include "workload/spec.hpp"
#include "workload/trace.hpp"
#include "workload/volume_law.hpp"

#include "heuristics/bandwidth_policy.hpp"
#include "heuristics/compact.hpp"
#include "heuristics/distributed.hpp"
#include "heuristics/flexible_bookahead.hpp"
#include "heuristics/flexible_greedy.hpp"
#include "heuristics/flexible_window.hpp"
#include "heuristics/parse.hpp"
#include "heuristics/registry.hpp"
#include "heuristics/retry.hpp"
#include "heuristics/rigid_fcfs.hpp"
#include "heuristics/rigid_slots.hpp"

#include "exact/bnb.hpp"
#include "exact/single_pair.hpp"
#include "exact/threedm.hpp"

#include "baseline/maxmin.hpp"

#include "control/control_plane.hpp"
#include "control/messages.hpp"
#include "control/policer.hpp"
#include "control/token_bucket.hpp"
#include "control/topology.hpp"

#include "metrics/experiment.hpp"
#include "metrics/objectives.hpp"
