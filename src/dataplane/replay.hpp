// gridbw/dataplane/replay.hpp
//
// Data-plane replay: executes a finished schedule as actual traffic and
// checks that the control plane's promises survive contact with senders.
//
// Two replay modes:
//
//  * replay_policed — every flow is policed by a token bucket sized from
//    its reservation (§5.4). Conforming senders deliver exactly their
//    volume by the promised completion time; misbehaving senders (offering
//    `misbehave_factor` times their reservation) have the excess dropped at
//    the access point and still finish on the reserved schedule. Port
//    aggregates can never exceed what admission granted.
//
//  * replay_unpoliced — no enforcement: all senders' *offered* rates enter
//    a max-min fair fluid sharing of the ports (the §5.4 failure scenario).
//    Misbehaving senders steal bandwidth, so conforming flows finish late —
//    the report counts broken promises and measures the worst port
//    overrun relative to the admitted allocation.
//
// Together with the validator this closes the loop: validate_schedule
// proves the *plan* feasible; replay shows the *execution* holds iff the
// §5.4 enforcement mechanisms are in place.

#pragma once

#include <span>
#include <vector>

#include "core/network.hpp"
#include "core/request.hpp"
#include "core/schedule.hpp"

namespace gridbw::dataplane {

struct ReplayOptions {
  /// Requests whose senders offer misbehave_factor x their reservation.
  std::vector<RequestId> misbehaving;
  /// Offered-rate multiplier for misbehaving senders (> 1).
  double misbehave_factor{2.0};
};

struct TransferRecord {
  RequestId id{0};
  /// The completion instant the admission decision promised (tau(r)).
  TimePoint promised_finish;
  /// When the transfer actually delivered its full volume.
  TimePoint actual_finish;
  /// Bytes discarded by the policer (0 when unpoliced or conforming).
  Volume dropped;
  bool misbehaving{false};

  /// Finished later than promised (beyond tolerance)?
  [[nodiscard]] bool late() const {
    return actual_finish.to_seconds() > promised_finish.to_seconds() + 1e-6;
  }
};

struct ReplayReport {
  std::vector<TransferRecord> transfers;
  /// Worst observed port load relative to its capacity (<= ~1 when the
  /// promises hold; > 1 means the port was overrun).
  double peak_port_utilization{0.0};

  [[nodiscard]] std::size_t late_count() const;
  [[nodiscard]] Volume total_dropped() const;
};

[[nodiscard]] ReplayReport replay_policed(const Network& network,
                                          std::span<const Request> requests,
                                          const Schedule& schedule,
                                          const ReplayOptions& options = {});

[[nodiscard]] ReplayReport replay_unpoliced(const Network& network,
                                            std::span<const Request> requests,
                                            const Schedule& schedule,
                                            const ReplayOptions& options = {});

}  // namespace gridbw::dataplane
