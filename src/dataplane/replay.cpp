#include "dataplane/replay.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "baseline/maxmin.hpp"
#include "core/timeline_profile.hpp"

namespace gridbw::dataplane {
namespace {

struct Flow {
  const Request* request;
  Assignment assignment;
  bool misbehaving;
};

std::vector<Flow> collect_flows(std::span<const Request> requests,
                                const Schedule& schedule,
                                const ReplayOptions& options) {
  if (options.misbehave_factor <= 1.0 && !options.misbehaving.empty()) {
    throw std::invalid_argument{"replay: misbehave_factor must be > 1"};
  }
  std::unordered_map<RequestId, const Request*> by_id;
  for (const Request& r : requests) by_id.emplace(r.id, &r);
  const std::unordered_set<RequestId> bad{options.misbehaving.begin(),
                                          options.misbehaving.end()};
  std::vector<Flow> flows;
  flows.reserve(schedule.accepted_count());
  for (const Assignment& a : schedule.assignments()) {
    const auto it = by_id.find(a.request);
    if (it == by_id.end()) {
      throw std::invalid_argument{"replay: schedule references unknown request " +
                                  std::to_string(a.request)};
    }
    flows.push_back(Flow{it->second, a, bad.count(a.request) > 0});
  }
  return flows;
}

}  // namespace

std::size_t ReplayReport::late_count() const {
  std::size_t count = 0;
  for (const TransferRecord& t : transfers) count += t.late() ? 1 : 0;
  return count;
}

Volume ReplayReport::total_dropped() const {
  Volume total = Volume::zero();
  for (const TransferRecord& t : transfers) total += t.dropped;
  return total;
}

ReplayReport replay_policed(const Network& network, std::span<const Request> requests,
                            const Schedule& schedule, const ReplayOptions& options) {
  const auto flows = collect_flows(requests, schedule, options);

  ReplayReport report;
  std::vector<TimelineProfile> in_load(network.ingress_count());
  std::vector<TimelineProfile> out_load(network.egress_count());

  for (const Flow& flow : flows) {
    const Request& r = *flow.request;
    const Assignment& a = flow.assignment;
    const TimePoint promised = a.end(r);
    // The policer clips delivery to the reserved rate: the transfer holds
    // its promised schedule regardless of the sender's offered rate, and
    // everything offered beyond the reservation is dropped at the access
    // point.
    TransferRecord record;
    record.id = r.id;
    record.promised_finish = promised;
    record.actual_finish = promised;
    record.misbehaving = flow.misbehaving;
    record.dropped = flow.misbehaving
                         ? r.volume * (options.misbehave_factor - 1.0)
                         : Volume::zero();
    report.transfers.push_back(record);

    // The policer enforces the reserved shape — for a profiled reservation
    // that is the step function itself, not its peak.
    a.for_each_segment(r, [&](TimePoint t0, TimePoint t1, Bandwidth rate) {
      in_load[r.ingress.value].add(t0, t1, rate.to_bytes_per_second());
      out_load[r.egress.value].add(t0, t1, rate.to_bytes_per_second());
    });
  }

  for (std::size_t i = 0; i < in_load.size(); ++i) {
    report.peak_port_utilization =
        std::max(report.peak_port_utilization,
                 in_load[i].global_max() /
                     network.ingress_capacity(IngressId{i}).to_bytes_per_second());
  }
  for (std::size_t e = 0; e < out_load.size(); ++e) {
    report.peak_port_utilization =
        std::max(report.peak_port_utilization,
                 out_load[e].global_max() /
                     network.egress_capacity(EgressId{e}).to_bytes_per_second());
  }
  return report;
}

ReplayReport replay_unpoliced(const Network& network, std::span<const Request> requests,
                              const Schedule& schedule, const ReplayOptions& options) {
  std::vector<Flow> flows = collect_flows(requests, schedule, options);
  std::sort(flows.begin(), flows.end(), [](const Flow& a, const Flow& b) {
    if (a.assignment.start != b.assignment.start) {
      return a.assignment.start < b.assignment.start;
    }
    return a.assignment.request < b.assignment.request;
  });

  ReplayReport report;
  report.transfers.resize(flows.size());
  for (std::size_t k = 0; k < flows.size(); ++k) {
    report.transfers[k].id = flows[k].request->id;
    report.transfers[k].promised_finish = flows[k].assignment.end(*flows[k].request);
    report.transfers[k].misbehaving = flows[k].misbehaving;
    report.transfers[k].dropped = Volume::zero();  // nothing polices, nothing drops
  }

  struct Live {
    std::size_t index;
    baseline::ActiveFlow active;
    double remaining_bytes;
  };
  std::vector<Live> live;
  std::size_t next_start = 0;
  TimePoint now =
      flows.empty() ? TimePoint::origin() : flows.front().assignment.start;

  while (next_start < flows.size() || !live.empty()) {
    if (live.empty()) now = flows[next_start].assignment.start;
    while (next_start < flows.size() && flows[next_start].assignment.start <= now) {
      const Flow& f = flows[next_start];
      const Bandwidth offered = f.misbehaving
                                    ? f.assignment.bw * options.misbehave_factor
                                    : f.assignment.bw;
      live.push_back(Live{next_start,
                          baseline::ActiveFlow{f.request->ingress, f.request->egress,
                                               offered},
                          f.request->volume.to_bytes()});
      ++next_start;
    }

    std::vector<baseline::ActiveFlow> active;
    active.reserve(live.size());
    for (const Live& f : live) active.push_back(f.active);
    const auto rates = baseline::maxmin_allocation(network, active);

    // Track the worst instantaneous port load (physically <= 1; reported
    // for symmetry with replay_policed).
    std::vector<double> in_sum(network.ingress_count(), 0.0);
    std::vector<double> out_sum(network.egress_count(), 0.0);
    for (std::size_t f = 0; f < live.size(); ++f) {
      in_sum[live[f].active.ingress.value] += rates[f].to_bytes_per_second();
      out_sum[live[f].active.egress.value] += rates[f].to_bytes_per_second();
    }
    for (std::size_t i = 0; i < in_sum.size(); ++i) {
      report.peak_port_utilization = std::max(
          report.peak_port_utilization,
          in_sum[i] / network.ingress_capacity(IngressId{i}).to_bytes_per_second());
    }
    for (std::size_t e = 0; e < out_sum.size(); ++e) {
      report.peak_port_utilization = std::max(
          report.peak_port_utilization,
          out_sum[e] / network.egress_capacity(EgressId{e}).to_bytes_per_second());
    }

    double dt = std::numeric_limits<double>::infinity();
    if (next_start < flows.size()) {
      dt = flows[next_start].assignment.start.to_seconds() - now.to_seconds();
    }
    for (std::size_t f = 0; f < live.size(); ++f) {
      const double rate = rates[f].to_bytes_per_second();
      if (rate > 0.0) dt = std::min(dt, live[f].remaining_bytes / rate);
    }
    dt = std::max(dt, 0.0);

    now += Duration::seconds(dt);
    for (std::size_t f = 0; f < live.size(); ++f) {
      live[f].remaining_bytes =
          std::max(0.0, live[f].remaining_bytes - rates[f].to_bytes_per_second() * dt);
    }
    std::erase_if(live, [&](const Live& f) {
      if (f.remaining_bytes <= 1e-3) {
        report.transfers[f.index].actual_finish = now;
        return true;
      }
      return false;
    });
  }
  return report;
}

}  // namespace gridbw::dataplane
