#!/usr/bin/env bash
# clang-tidy over the whole library, driven by the compile database.
#
#   scripts/tidy.sh [--build-dir DIR] [--jobs N] [paths...]
#
# Uses the repo .clang-tidy profile with WarningsAsErrors='*', so any
# finding fails the run (CI treats this as a gate). With no paths given,
# checks every .cpp under src/. Configures a compile database on the fly
# when the build dir has none.
#
# Degrades gracefully: when no clang-tidy binary exists on PATH (this
# container ships GCC + LLVM libs but not the clang tools), prints a notice
# and exits 0 so the wall doesn't hard-fail on machines without the tool;
# CI installs clang-tidy explicitly and does enforce it.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build
JOBS="$(nproc 2> /dev/null || echo 4)"
PATHS=()
while [ $# -gt 0 ]; do
  case "$1" in
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --jobs) JOBS="$2"; shift 2 ;;
    -h|--help) sed -n '2,15p' "$0"; exit 0 ;;
    *) PATHS+=("$1"); shift ;;
  esac
done

TIDY=""
for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
                 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
  if command -v "$candidate" > /dev/null 2>&1; then
    TIDY="$candidate"
    break
  fi
done
if [ -z "$TIDY" ]; then
  echo "tidy.sh: clang-tidy not found on PATH; skipping (install clang-tidy to enforce locally)" >&2
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "tidy.sh: generating compile database in $BUILD_DIR"
  cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
fi

if [ ${#PATHS[@]} -eq 0 ]; then
  mapfile -t PATHS < <(find src -name '*.cpp' | sort)
fi

echo "tidy.sh: $TIDY ($("$TIDY" --version | grep -o 'version [0-9.]*')) over ${#PATHS[@]} file(s), $JOBS job(s)"
printf '%s\n' "${PATHS[@]}" \
  | xargs -P "$JOBS" -n 1 "$TIDY" -p "$BUILD_DIR" --quiet
echo "tidy.sh: clean"
