#!/usr/bin/env python3
"""gridbw-lint: repository hygiene for non-C++ assets.

The C++ domain rules that used to live here (quantity-api, rng-locality,
stepfunction-hot-path, wall-clock) are owned by the in-tree static analyzer
now — `tools/gridbw_analyze` (ctest `gridbw_analyze`), which also enforces
layering, unordered-iteration determinism, float formatting, and hot-path
hygiene with proper lexing and a committed baseline. This script keeps the
checks that are not about C++ sources at all.

Run as a ctest (`ctest -R gridbw_lint`) or directly:

    python3 scripts/gridbw_lint.py --root .

Rules:

  gridbw-shell-strict
      Every shell script under scripts/ runs under `set -euo pipefail` so a
      failing build/test step can never be masked by a later command.

  gridbw-json-parse
      Every committed .json file (bench summaries, fixtures) parses. A
      malformed summary would silently break the plotting/replication flow.

  gridbw-cmake-warnings
      Every gridbw_* library target declared in src/*/CMakeLists.txt links
      the `gridbw_warnings` interface target, so no module can drop out of
      the -Wall/-Wextra/-Wconversion wall unnoticed.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path, self.line, self.rule, self.message = path, line, rule, message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


SET_STRICT = re.compile(r"^\s*set\s+-[a-z]*e[a-z]*u[a-z]*o?\s+pipefail\s*$")


def check_shell(root: pathlib.Path) -> list[Finding]:
    findings: list[Finding] = []
    for path in sorted((root / "scripts").glob("*.sh")):
        rel = path.relative_to(root).as_posix()
        lines = path.read_text(encoding="utf-8", errors="replace").splitlines()
        if not any(SET_STRICT.match(line) for line in lines):
            findings.append(
                Finding(
                    rel,
                    1,
                    "gridbw-shell-strict",
                    "missing `set -euo pipefail` — failures later in the "
                    "script must not be masked",
                )
            )
    return findings


def check_json(root: pathlib.Path) -> list[Finding]:
    findings: list[Finding] = []
    skip = {"build", ".git", ".cache"}
    for path in sorted(root.rglob("*.json")):
        rel_parts = path.relative_to(root).parts
        if rel_parts and (rel_parts[0] in skip or rel_parts[0].startswith("build")):
            continue
        rel = path.relative_to(root).as_posix()
        try:
            json.loads(path.read_text(encoding="utf-8"))
        except (ValueError, OSError) as err:
            findings.append(
                Finding(rel, 1, "gridbw-json-parse", f"invalid JSON: {err}")
            )
    return findings


ADD_LIBRARY = re.compile(r"^\s*add_library\(\s*(gridbw_\w+)", re.MULTILINE)
LINK_BLOCK = re.compile(r"target_link_libraries\(\s*(gridbw_\w+)([^)]*)\)")


def check_cmake(root: pathlib.Path) -> list[Finding]:
    findings: list[Finding] = []
    for path in sorted((root / "src").glob("*/CMakeLists.txt")):
        rel = path.relative_to(root).as_posix()
        text = "\n".join(
            line.split("#", 1)[0]
            for line in path.read_text(encoding="utf-8").splitlines()
        )
        linked = {
            match.group(1)
            for match in LINK_BLOCK.finditer(text)
            if "gridbw_warnings" in match.group(2)
        }
        for match in ADD_LIBRARY.finditer(text):
            target = match.group(1)
            if target == "gridbw_warnings" or target in linked:
                continue
            line = text.count("\n", 0, match.start()) + 1
            findings.append(
                Finding(
                    rel,
                    line,
                    "gridbw-cmake-warnings",
                    f"target '{target}' does not link gridbw_warnings — every "
                    "module stays inside the warning wall",
                )
            )
    return findings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".", help="repository root")
    args = parser.parse_args()
    root = pathlib.Path(args.root).resolve()

    if not (root / "src").is_dir():
        print(f"gridbw-lint: no src/ under {root}", file=sys.stderr)
        return 2

    findings = check_shell(root) + check_json(root) + check_cmake(root)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))

    for finding in findings:
        print(finding)
    if findings:
        print(f"gridbw-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("gridbw-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
