#!/usr/bin/env python3
"""gridbw-lint: domain rules the C++ compiler cannot enforce.

Run as a ctest (`ctest -R gridbw_lint`) or directly:

    python3 scripts/gridbw_lint.py --root .

Rules (suppress a single line with a trailing `NOLINT(gridbw-<rule>)`):

  gridbw-quantity-api
      Public APIs under src/ must not take raw `double` parameters (or
      declare struct members) whose names denote a dimensioned quantity —
      bandwidth/rate, volume, capacity. Use the strong types from
      util/quantity.hpp (Bandwidth, Volume, Duration, TimePoint) so unit
      mistakes stay compile errors. Dimensionless scalars (fractions,
      weights, factors, utilizations, tolerances) are fine as double.

  gridbw-rng-locality
      Random engines are constructed only inside src/util/random.* so every
      stream is seeded and derived through the one deterministic facility.
      No std::mt19937 / std::random_device / rand() elsewhere in src/.

  gridbw-stepfunction-hot-path
      The std::map-backed StepFunction is the reference implementation kept
      for differential testing. Hot paths use the flat TimelineProfile;
      StepFunction may appear only in src/core/step_function.* and the
      reference validator engine (src/core/validate.cpp).

  gridbw-wall-clock
      Deterministic code (everything under src/ except the experiment
      harness's wall-clock timing tables) must not read real time:
      no std::chrono::{system,steady,high_resolution}_clock, ::time,
      clock(), or gettimeofday. Simulated time flows through TimePoint.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

# ---------------------------------------------------------------------------
# Rule tables
# ---------------------------------------------------------------------------

# Parameter / member names that denote a dimensioned quantity when typed as
# raw double. Word-boundary match on identifier fragments.
DIMENSIONED_NAME = re.compile(
    r"(?:^|_)(?:bw|bandwidth|rate|vol|volume|bytes|bps|capacity|cap)(?:_|$)",
    re.IGNORECASE,
)
# Names that look dimensioned but are genuinely scalar ratios/knobs.
DIMENSIONLESS_NAME = re.compile(
    r"(?:^|_)(?:fraction|factor|weight|cost|util|ratio|eps|epsilon|tol|"
    r"tolerance|share|scale|f|accept|success|guarantee|prob)(?:_|$)",
    re.IGNORECASE,
)
# `double <name>` in a declaration context (parameter list or member).
DOUBLE_DECL = re.compile(r"\bdouble\s+(?:&\s*)?([A-Za-z_]\w*)")

RNG_TOKEN = re.compile(
    r"std::mt19937|std::minstd_rand|std::random_device|\bs?rand\s*\("
)

STEPFN_TOKEN = re.compile(r"\bStepFunction\b")

WALLCLOCK_TOKEN = re.compile(
    r"std::chrono::(?:system_clock|steady_clock|high_resolution_clock)"
    r"|\bgettimeofday\s*\(|\bclock\s*\(\s*\)|std::time\s*\(|\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"
)

# Files allowed to break a given rule. Entries ending in "/" are directory
# prefixes; anything else must match the relative path exactly.
ALLOW = {
    "gridbw-rng-locality": ("src/util/random.hpp", "src/util/random.cpp"),
    "gridbw-stepfunction-hot-path": (
        "src/core/step_function.hpp",
        "src/core/step_function.cpp",
        "src/core/validate.cpp",  # kReference differential engine
    ),
    # The replication harness reports wall-clock per-heuristic tables, and
    # the observability sinks may stamp an opt-in wall-clock meta line
    # (JsonlSinkOptions::stamp_wallclock) — both are measurement of the
    # machine, not simulated time. src/obs/ is the only *module* allowed to
    # format wall-clock timestamps; event payloads stay on TimePoint.
    "gridbw-wall-clock": ("src/metrics/experiment.cpp", "src/obs/"),
    # The quantity header defines the strong types and their double escape
    # hatches (to_bytes() etc.) — it is the one place raw doubles belong.
    "gridbw-quantity-api": ("src/util/quantity.hpp",),
}


def allowed(rel: str, rule: str) -> bool:
    """True when `rel` is allowlisted for `rule` (exact path or dir prefix)."""
    for entry in ALLOW.get(rule, ()):
        if entry.endswith("/"):
            if rel.startswith(entry):
                return True
        elif rel == entry:
            return True
    return False

NOLINT = re.compile(r"NOLINT\((gridbw-[a-z-]+)\)")


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line count."""
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        two = text[i : i + 2]
        if two == "//":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif two == "/*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote, j = c, i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(c + " " * (j - i - 2) + (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path, self.line, self.rule, self.message = path, line, rule, message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def check_file(root: pathlib.Path, path: pathlib.Path) -> list[Finding]:
    rel = path.relative_to(root).as_posix()
    raw = path.read_text(encoding="utf-8", errors="replace")
    raw_lines = raw.splitlines()
    code_lines = strip_comments_and_strings(raw).splitlines()
    findings: list[Finding] = []

    def suppressed(lineno: int, rule: str) -> bool:
        if lineno - 1 >= len(raw_lines):
            return False
        return rule in NOLINT.findall(raw_lines[lineno - 1])

    def scan(rule: str, token: re.Pattern, message: str) -> None:
        if allowed(rel, rule):
            return
        for lineno, line in enumerate(code_lines, 1):
            if token.search(line) and not suppressed(lineno, rule):
                findings.append(Finding(rel, lineno, rule, message))

    scan(
        "gridbw-rng-locality",
        RNG_TOKEN,
        "random engine constructed outside util/random — derive a stream "
        "from gridbw::Rng instead",
    )
    scan(
        "gridbw-stepfunction-hot-path",
        STEPFN_TOKEN,
        "std::map-backed StepFunction outside the reference implementation — "
        "hot paths use core/timeline_profile.hpp",
    )
    scan(
        "gridbw-wall-clock",
        WALLCLOCK_TOKEN,
        "wall-clock read in deterministic code — simulated time flows "
        "through TimePoint",
    )

    # gridbw-quantity-api applies to public headers only: a raw double in a
    # .cpp is an implementation detail (often a profile-internal bps value).
    if path.suffix == ".hpp" and not allowed(rel, "gridbw-quantity-api"):
        for lineno, line in enumerate(code_lines, 1):
            for match in DOUBLE_DECL.finditer(line):
                name = match.group(1)
                if DIMENSIONED_NAME.search(name) and not DIMENSIONLESS_NAME.search(name):
                    if not suppressed(lineno, "gridbw-quantity-api"):
                        findings.append(
                            Finding(
                                rel,
                                lineno,
                                "gridbw-quantity-api",
                                f"raw double '{name}' denotes a dimensioned "
                                "quantity — use Bandwidth/Volume/Duration/"
                                "TimePoint from util/quantity.hpp",
                            )
                        )
    return findings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".", help="repository root")
    args = parser.parse_args()
    root = pathlib.Path(args.root).resolve()

    src = root / "src"
    if not src.is_dir():
        print(f"gridbw-lint: no src/ under {root}", file=sys.stderr)
        return 2

    findings: list[Finding] = []
    for path in sorted(src.rglob("*")):
        if path.suffix in (".hpp", ".cpp"):
            findings.extend(check_file(root, path))

    for finding in findings:
        print(finding)
    if findings:
        print(f"gridbw-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("gridbw-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
