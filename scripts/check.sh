#!/usr/bin/env bash
# Full verification pass: configure, build, run the test suite, and smoke
# every bench in --quick mode. Exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

# Respect an already-configured build tree (whatever its generator);
# otherwise prefer Ninja when available.
if [ -f build/CMakeCache.txt ]; then
  cmake -B build
elif command -v ninja > /dev/null; then
  cmake -B build -G Ninja
else
  cmake -B build
fi
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure

for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "== $(basename "$b") =="
  if [[ "$(basename "$b")" == micro_* ]]; then
    # benchmark >= 1.8 wants a "0.01s" suffix, older versions a bare double.
    "$b" --benchmark_min_time=0.01s > /dev/null 2>&1 \
      || "$b" --benchmark_min_time=0.01 > /dev/null
  else
    "$b" --quick > /dev/null
  fi
done
echo "all checks passed"
