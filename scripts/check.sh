#!/usr/bin/env bash
# Full verification pass: configure, build, run the test suite, and smoke
# every bench in --quick mode. Exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "== $(basename "$b") =="
  if [[ "$(basename "$b")" == micro_* ]]; then
    "$b" --benchmark_min_time=0.01s > /dev/null
  else
    "$b" --quick > /dev/null
  fi
done
echo "all checks passed"
