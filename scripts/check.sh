#!/usr/bin/env bash
# Verification passes. Default: configure, build, run the test suite, and
# smoke every bench in --quick mode. Exits non-zero on the first failure.
#
#   scripts/check.sh            full pass (build + ctest + bench smoke)
#   scripts/check.sh --quick    same as the default pass
#   scripts/check.sh --tidy     clang-tidy wall (scripts/tidy.sh, compile-db)
#   scripts/check.sh --tsan     build with GRIDBW_SANITIZE=thread and run the
#                               whole suite + TSan stress tests under
#                               TSAN_OPTIONS=halt_on_error=1
#   scripts/check.sh --asan     build with GRIDBW_SANITIZE=address, run suite
#   scripts/check.sh --analyze  build tools/gridbw_analyze and run the
#                               whole-tree scan against the committed baseline
#                               (fails over a 2000 ms latency budget; verifies
#                               --threads 1 vs 4 reports are byte-identical)
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-full}"

configure_build() {
  # Respect an already-configured build tree (whatever its generator);
  # otherwise prefer Ninja when available.
  local dir="$1"; shift
  if [ -f "$dir/CMakeCache.txt" ]; then
    cmake -B "$dir" "$@"
  elif command -v ninja > /dev/null; then
    cmake -B "$dir" -G Ninja "$@"
  else
    cmake -B "$dir" "$@"
  fi
  cmake --build "$dir" -j "$(nproc)"
}

case "$MODE" in
  --tidy)
    exec scripts/tidy.sh
    ;;
  --tsan)
    configure_build build-tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DGRIDBW_SANITIZE=thread
    TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1" \
      ctest --test-dir build-tsan --output-on-failure -j "$(nproc)"
    echo "tsan pass clean"
    exit 0
    ;;
  --asan)
    configure_build build-asan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DGRIDBW_SANITIZE=address
    ASAN_OPTIONS="detect_leaks=1" UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
      ctest --test-dir build-asan --output-on-failure -j "$(nproc)"
    echo "asan pass clean"
    exit 0
    ;;
  --analyze)
    # Build only the analyzer CLI (standalone: no gtest/benchmark needed),
    # then scan the tree with the committed baseline.
    if [ -f build/CMakeCache.txt ]; then
      DIR=build
    else
      DIR=build-analyze
      cmake -B "$DIR" -DCMAKE_BUILD_TYPE=Release
    fi
    cmake --build "$DIR" -j "$(nproc)" --target gridbw_analyze
    ANALYZER="$DIR/tools/gridbw_analyze/gridbw_analyze"
    # Grouped per-check summary on stdout; the full machine-readable report
    # (findings + scan metadata) lands next to the build for CI to upload.
    "$ANALYZER" --root . --baseline tools/gridbw_analyze/baseline.txt \
      --summary --json-out "$DIR/analyze_report.json"
    FILES_SCANNED=$(sed -n 's/^  "files_scanned": \([0-9]*\),$/\1/p' "$DIR/analyze_report.json")
    SCAN_MS=$(sed -n 's/^  "scan_ms": \([0-9]*\),$/\1/p' "$DIR/analyze_report.json")
    echo "analyze: files_scanned=${FILES_SCANNED} scan_ms=${SCAN_MS}"
    if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
      {
        echo "### gridbw-analyze"
        echo ""
        echo "| files_scanned | scan_ms |"
        echo "| ---: | ---: |"
        echo "| ${FILES_SCANNED} | ${SCAN_MS} |"
      } >> "$GITHUB_STEP_SUMMARY"
    fi
    # Latency budget: the interprocedural graph passes must not silently
    # regress analyzer turnaround.
    if [ "${SCAN_MS:-0}" -gt 2000 ]; then
      echo "analyze: whole-tree scan took ${SCAN_MS} ms (budget: 2000 ms)" >&2
      exit 1
    fi
    # Determinism: the two-phase scan (parallel tables, serial graph,
    # parallel checks) must produce byte-identical reports for any thread
    # count. scan_ms is wall time, so strip it before diffing.
    "$ANALYZER" --root . --baseline tools/gridbw_analyze/baseline.txt \
      --threads 1 --json-out "$DIR/analyze_t1.json" > /dev/null
    "$ANALYZER" --root . --baseline tools/gridbw_analyze/baseline.txt \
      --threads 4 --json-out "$DIR/analyze_t4.json" > /dev/null
    if ! diff <(grep -v '"scan_ms"' "$DIR/analyze_t1.json") \
              <(grep -v '"scan_ms"' "$DIR/analyze_t4.json"); then
      echo "analyze: --threads 1 and --threads 4 reports differ" >&2
      exit 1
    fi
    echo "analyze pass clean"
    exit 0
    ;;
  full|--quick)
    ;;
  *)
    echo "check.sh: unknown mode '$MODE' (expected --quick, --tidy, --tsan, --asan, or --analyze)" >&2
    exit 2
    ;;
esac

configure_build build
ctest --test-dir build --output-on-failure

for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "== $(basename "$b") =="
  if [[ "$(basename "$b")" == micro_* ]]; then
    # benchmark >= 1.8 wants a "0.01s" suffix, older versions a bare double.
    "$b" --benchmark_min_time=0.01s > /dev/null 2>&1 \
      || "$b" --benchmark_min_time=0.01 > /dev/null
  else
    "$b" --quick > /dev/null
  fi
done
echo "all checks passed"
