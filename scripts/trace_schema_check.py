#!/usr/bin/env python3
"""trace_schema_check: validate the JSONL admission-trace schema.

Validates trace files emitted by the `--trace` flag of the fig benches
(src/obs/trace_sink.cpp, DESIGN.md §5e):

  * every line is a standalone JSON object with an `event` field,
  * each event kind carries exactly its documented key set, with the
    documented types (ints for req/attempt, finite numbers for t/sigma/
    bw/backoff, taxonomy strings for reason),
  * each scheduler block's `accepted`/`rejected` meta totals reconcile
    exactly with the accepted/rejected events recorded inside the block.

Run against existing files:

    python3 scripts/trace_schema_check.py trace.jsonl ...

or hand it a bench binary to drive end to end (the ctest mode): the bench
is run twice with the same seed into a temp directory, both traces are
validated, and the two runs must be byte-identical:

    python3 scripts/trace_schema_check.py --bench build/bench/fig4_rigid_heuristics
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import subprocess
import sys
import tempfile

EVENT_KEYS = {
    "submitted": {"event", "req", "t", "attempt"},
    "accepted": {"event", "req", "t", "attempt", "sigma", "bw"},
    "rejected": {"event", "req", "t", "attempt", "reason"},
    "retried": {"event", "req", "t", "attempt", "backoff"},
    "preempted": {"event", "req", "t"},
    "reclaimed": {"event", "req", "t", "bw"},
    "expired": {"event", "req", "t", "bw"},
    "revoked": {"event", "req", "t", "reason", "bw"},
    "reshaped": {"event", "req", "t", "bw"},
    "meta": {"event", "key", "value"},
}

REASONS = {
    "degenerate_window",
    "infeasible_rate",
    "ingress_saturated",
    "egress_saturated",
    "both_ports_saturated",
    "no_feasible_start",
    "retro_removed",
    "retries_exhausted",
}


def is_finite_number(v: object) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool) and math.isfinite(v)


def is_count(v: object) -> bool:
    return isinstance(v, int) and not isinstance(v, bool) and v >= 0


class Checker:
    def __init__(self, path: str):
        self.path = path
        self.errors: list[str] = []
        # Per-scheduler-block reconciliation state.
        self.scheduler: str | None = None
        self.counts = {"accepted": 0, "rejected": 0}

    def error(self, lineno: int, message: str) -> None:
        self.errors.append(f"{self.path}:{lineno}: {message}")

    def check_line(self, lineno: int, line: str) -> None:
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            self.error(lineno, f"not valid JSON: {e}")
            return
        if not isinstance(obj, dict):
            self.error(lineno, "line is not a JSON object")
            return
        kind = obj.get("event")
        if kind not in EVENT_KEYS:
            self.error(lineno, f"unknown event kind {kind!r}")
            return
        keys = set(obj)
        if keys != EVENT_KEYS[kind]:
            self.error(
                lineno,
                f"{kind}: key set {sorted(keys)} != expected "
                f"{sorted(EVENT_KEYS[kind])}",
            )
            return

        if kind == "meta":
            if not isinstance(obj["key"], str) or not isinstance(obj["value"], str):
                self.error(lineno, "meta: key/value must be strings")
                return
            self.reconcile_meta(lineno, obj["key"], obj["value"])
            return

        if not is_count(obj["req"]) or obj["req"] < 1:
            self.error(lineno, f"{kind}: req must be a positive integer")
        if not is_finite_number(obj["t"]):
            self.error(lineno, f"{kind}: t must be a finite number")
        if "attempt" in obj and (not is_count(obj["attempt"]) or obj["attempt"] < 1):
            self.error(lineno, f"{kind}: attempt must be an integer >= 1")
        if kind == "retried" and isinstance(obj.get("attempt"), int):
            if obj["attempt"] < 2:
                self.error(lineno, "retried: attempt must be >= 2")
        if "sigma" in obj and not is_finite_number(obj["sigma"]):
            self.error(lineno, f"{kind}: sigma must be a finite number")
        if "bw" in obj and (not is_finite_number(obj["bw"]) or obj["bw"] <= 0):
            self.error(lineno, f"{kind}: bw must be a finite number > 0")
        if "backoff" in obj and (
            not is_finite_number(obj["backoff"]) or obj["backoff"] < 0
        ):
            self.error(lineno, f"{kind}: backoff must be a finite number >= 0")
        if kind == "rejected" and obj["reason"] not in REASONS:
            self.error(lineno, f"rejected: unknown reason {obj['reason']!r}")
        if kind == "revoked" and obj["reason"] not in REASONS:
            self.error(lineno, f"revoked: unknown reason {obj['reason']!r}")

        if kind in self.counts:
            self.counts[kind] += 1

    def reconcile_meta(self, lineno: int, key: str, value: str) -> None:
        if key == "scheduler":
            self.scheduler = value
            self.counts = {"accepted": 0, "rejected": 0}
        elif key in self.counts:
            if self.scheduler is None:
                self.error(lineno, f"meta {key!r} outside a scheduler block")
                return
            try:
                claimed = int(value)
            except ValueError:
                self.error(lineno, f"meta {key!r}: value {value!r} is not an integer")
                return
            seen = self.counts[key]
            if claimed != seen:
                self.error(
                    lineno,
                    f"scheduler {self.scheduler!r}: meta claims {claimed} "
                    f"{key} but the block recorded {seen} events",
                )

    def run(self) -> int:
        text = pathlib.Path(self.path).read_text(encoding="utf-8")
        lines = text.splitlines()
        if not lines:
            self.errors.append(f"{self.path}: trace is empty")
        for lineno, line in enumerate(lines, 1):
            self.check_line(lineno, line)
        return len(lines)


def check_file(path: str) -> list[str]:
    checker = Checker(path)
    count = checker.run()
    if not checker.errors:
        print(f"{path}: {count} lines OK")
    return checker.errors


def run_bench_twice(bench: str) -> list[str]:
    errors: list[str] = []
    with tempfile.TemporaryDirectory(prefix="gridbw_trace_") as tmp:
        traces = [str(pathlib.Path(tmp) / f"run{i}.jsonl") for i in (1, 2)]
        for trace in traces:
            cmd = [bench, "--quick", "--reps=1", f"--trace={trace}"]
            proc = subprocess.run(
                cmd, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True
            )
            if proc.returncode != 0:
                return [f"{' '.join(cmd)} exited {proc.returncode}: {proc.stderr}"]
        for trace in traces:
            errors.extend(check_file(trace))
        a, b = (pathlib.Path(t).read_bytes() for t in traces)
        if a != b:
            errors.append(f"{bench}: two same-seed runs are not byte-identical")
        else:
            print(f"{bench}: same-seed runs byte-identical ({len(a)} bytes)")
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("traces", nargs="*", help="JSONL trace files to validate")
    parser.add_argument(
        "--bench",
        help="fig bench binary: run twice with --trace, validate both, "
        "require byte-identity",
    )
    args = parser.parse_args()
    if not args.traces and not args.bench:
        parser.error("give trace files and/or --bench")

    errors: list[str] = []
    if args.bench:
        errors.extend(run_bench_twice(args.bench))
    for path in args.traces:
        errors.extend(check_file(path))

    for e in errors:
        print(e, file=sys.stderr)
    if errors:
        print(f"trace_schema_check: {len(errors)} error(s)", file=sys.stderr)
        return 1
    print("trace_schema_check: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
