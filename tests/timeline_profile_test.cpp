// TimelineProfile: unit tests for the flat port-load profile, plus the
// differential proof that it is bit-identical to the StepFunction reference
// (same breakpoints, value_at, max_over, global_max, integral) across
// randomized interval stacks, interleaved add/query patterns, and compact.
// Comparisons use EXPECT_EQ on raw doubles on purpose: the flat profile
// reproduces the exact floating-point operation order of the map scans.

#include "core/timeline_profile.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/step_function.hpp"
#include "util/random.hpp"

namespace gridbw {
namespace {

TimePoint at(double s) { return TimePoint::at_seconds(s); }

TEST(TimelineProfile, EmptyIsZeroEverywhere) {
  TimelineProfile f;
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.value_at(at(0)), 0.0);
  EXPECT_EQ(f.max_over(at(0), at(100)), 0.0);
  EXPECT_EQ(f.global_max(), 0.0);
  EXPECT_EQ(f.integral(at(0), at(100)), 0.0);
  EXPECT_TRUE(f.breakpoints().empty());
}

TEST(TimelineProfile, SingleInterval) {
  TimelineProfile f;
  f.add(at(10), at(20), 5.0);
  EXPECT_FALSE(f.empty());
  EXPECT_EQ(f.value_at(at(9.99)), 0.0);
  EXPECT_EQ(f.value_at(at(10)), 5.0);  // right-continuous
  EXPECT_EQ(f.value_at(at(15)), 5.0);
  EXPECT_EQ(f.value_at(at(20)), 0.0);  // half-open
}

TEST(TimelineProfile, OverlappingIntervalsStack) {
  TimelineProfile f;
  f.add(at(0), at(10), 1.0);
  f.add(at(5), at(15), 2.0);
  EXPECT_EQ(f.value_at(at(2)), 1.0);
  EXPECT_EQ(f.value_at(at(7)), 3.0);
  EXPECT_EQ(f.value_at(at(12)), 2.0);
  EXPECT_EQ(f.global_max(), 3.0);
}

TEST(TimelineProfile, EmptyOrInvertedIntervalIsNoop) {
  TimelineProfile f;
  f.add(at(5), at(5), 3.0);
  f.add(at(6), at(2), 3.0);
  f.add(at(1), at(9), 0.0);
  EXPECT_TRUE(f.empty());
}

TEST(TimelineProfile, MaxOverWindows) {
  TimelineProfile f;
  f.add(at(0), at(10), 1.0);
  f.add(at(4), at(6), 2.0);
  EXPECT_EQ(f.max_over(at(0), at(4)), 1.0);
  EXPECT_EQ(f.max_over(at(0), at(10)), 3.0);
  EXPECT_EQ(f.max_over(at(6), at(10)), 1.0);
  EXPECT_EQ(f.max_over(at(10), at(20)), 0.0);
  // Value holding at the window's left edge counts.
  EXPECT_EQ(f.max_over(at(5), at(5.5)), 3.0);
  // Empty window.
  EXPECT_EQ(f.max_over(at(5), at(5)), 0.0);
}

TEST(TimelineProfile, IntegralOfRectangles) {
  TimelineProfile f;
  f.add(at(0), at(10), 2.0);
  f.add(at(5), at(10), 3.0);
  EXPECT_EQ(f.integral(at(0), at(10)), 35.0);
  EXPECT_EQ(f.integral(at(0), at(5)), 10.0);
  EXPECT_EQ(f.integral(at(-10), at(0)), 0.0);
  EXPECT_EQ(f.integral(at(20), at(30)), 0.0);
}

TEST(TimelineProfile, PendingBufferMergesAcrossBatches) {
  // Query between batches of adds: each query must see everything added so
  // far, and later batches must merge into the already-compiled arrays.
  TimelineProfile f;
  f.add(at(0), at(10), 1.0);
  EXPECT_EQ(f.value_at(at(5)), 1.0);  // forces the first merge
  f.add(at(5), at(15), 2.0);          // lands inside existing breakpoints
  f.add(at(0), at(10), 4.0);          // duplicates existing instants
  EXPECT_EQ(f.value_at(at(7)), 7.0);
  EXPECT_EQ(f.value_at(at(12)), 2.0);
  EXPECT_EQ(f.global_max(), 7.0);
  EXPECT_EQ(f.breakpoint_count(), 4u);  // 0, 5, 10, 15
}

TEST(TimelineProfile, CompileAllowsConstSharedQueries) {
  TimelineProfile f;
  f.add(at(1), at(9), 2.5);
  f.compile();
  const TimelineProfile& view = f;
  EXPECT_EQ(view.value_at(at(4)), 2.5);
}

TEST(TimelineProfile, MergedReflectsPendingStateAcrossTheLifecycle) {
  // The sharing contract of the parallel validator: a profile may only be
  // handed to concurrent readers while merged() holds; any add() revokes it
  // until the next ensure_merged()/query. (tests/tsan_stress_test.cpp
  // exercises the actual concurrent reads under ThreadSanitizer.)
  TimelineProfile f;
  EXPECT_TRUE(f.merged());  // empty profile has nothing pending
  f.add(at(0), at(4), 1.0);
  EXPECT_FALSE(f.merged());
  f.ensure_merged();
  EXPECT_TRUE(f.merged());
  EXPECT_EQ(f.value_at(at(2)), 1.0);
  EXPECT_TRUE(f.merged()) << "queries on a merged profile are pure reads";
  f.add(at(2), at(6), 1.0);
  EXPECT_FALSE(f.merged()) << "new adds revoke shared-read safety";
  EXPECT_EQ(f.global_max(), 2.0);  // implicit merge via query
  EXPECT_TRUE(f.merged());
  f.compact();
  EXPECT_TRUE(f.merged());
}

TEST(TimelineProfile, CompactRemovesCancelledBreakpoints) {
  TimelineProfile f;
  f.add(at(1), at(2), 3.0);
  f.add(at(1), at(2), -3.0);
  f.add(at(5), at(6), 1.0);
  f.compact();
  const auto pts = f.breakpoints();
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[0], at(5));
  EXPECT_EQ(f.breakpoint_count(), 2u);
}

// ---------------------------------------------------------------------------
// Differential property: bit-identical to the StepFunction reference.
// ---------------------------------------------------------------------------

/// Applies the same randomized add/query interleaving to both structures and
/// asserts raw-double equality on every query kind.
void expect_identical(const StepFunction& ref, const TimelineProfile& flat,
                      const std::vector<double>& probes, std::uint64_t seed) {
  const auto ref_bp = ref.breakpoints();
  const auto flat_bp = flat.breakpoints();
  ASSERT_EQ(ref_bp.size(), flat_bp.size()) << "seed=" << seed;
  for (std::size_t k = 0; k < ref_bp.size(); ++k) {
    EXPECT_EQ(ref_bp[k].to_seconds(), flat_bp[k].to_seconds()) << "seed=" << seed;
  }
  EXPECT_EQ(ref.global_max(), flat.global_max()) << "seed=" << seed;
  for (const double t : probes) {
    EXPECT_EQ(ref.value_at(at(t)), flat.value_at(at(t))) << "t=" << t << " seed=" << seed;
  }
  for (std::size_t k = 0; k + 1 < probes.size(); ++k) {
    const double lo = std::min(probes[k], probes[k + 1]);
    const double hi = std::max(probes[k], probes[k + 1]);
    EXPECT_EQ(ref.max_over(at(lo), at(hi)), flat.max_over(at(lo), at(hi)))
        << "[" << lo << "," << hi << ") seed=" << seed;
    EXPECT_EQ(ref.integral(at(lo), at(hi)), flat.integral(at(lo), at(hi)))
        << "[" << lo << "," << hi << ") seed=" << seed;
  }
}

class TimelineProfileDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TimelineProfileDifferential, BitIdenticalToStepFunctionOnRandomStacks) {
  const std::uint64_t seed = GetParam();
  Rng rng{seed};
  StepFunction ref;
  TimelineProfile flat;
  std::vector<double> probes;
  // Several batches with queries in between, so the pending-buffer merge
  // path (not just the build-once path) is exercised; include negative
  // deltas (releases) and exact duplicates of earlier instants.
  for (int batch = 0; batch < 5; ++batch) {
    for (int k = 0; k < 60; ++k) {
      const double lo = rng.uniform(0, 900);
      const double hi = lo + rng.uniform(0.25, 80);
      const double delta =
          rng.uniform01() < 0.2 ? -rng.uniform(0.1, 2.0) : rng.uniform(0.1, 4.0);
      ref.add(at(lo), at(hi), delta);
      flat.add(at(lo), at(hi), delta);
    }
    // Mid-stream probe forces a merge of this batch before the next one.
    const double t = rng.uniform(-10, 1010);
    probes.push_back(t);
    EXPECT_EQ(ref.value_at(at(t)), flat.value_at(at(t))) << "seed=" << seed;
  }
  for (int k = 0; k < 50; ++k) probes.push_back(rng.uniform(-20, 1020));
  expect_identical(ref, flat, probes, seed);
}

TEST_P(TimelineProfileDifferential, CompactMatchesStepFunctionCompact) {
  const std::uint64_t seed = GetParam();
  Rng rng{seed};
  StepFunction ref;
  TimelineProfile flat;
  // Add/cancel pairs so that compaction has real work to do.
  for (int k = 0; k < 80; ++k) {
    const double lo = rng.uniform(0, 400);
    const double hi = lo + rng.uniform(1, 40);
    const double delta = rng.uniform(0.5, 3.0);
    ref.add(at(lo), at(hi), delta);
    flat.add(at(lo), at(hi), delta);
    if (rng.uniform01() < 0.6) {
      ref.add(at(lo), at(hi), -delta);
      flat.add(at(lo), at(hi), -delta);
    }
  }
  ref.compact();
  flat.compact();
  std::vector<double> probes;
  for (int k = 0; k < 40; ++k) probes.push_back(rng.uniform(-10, 460));
  expect_identical(ref, flat, probes, seed);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, TimelineProfileDifferential,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 42, 1234));

// ---------------------------------------------------------------------------
// Satellite: cache-rebuild property — recompiling (merging more batches,
// compacting) never changes observable values beyond the compact tolerance,
// and compact is idempotent.
// ---------------------------------------------------------------------------

class TimelineProfileRebuild : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TimelineProfileRebuild, CompactPreservesValuesAndIsIdempotent) {
  Rng rng{GetParam()};
  TimelineProfile f;
  std::vector<std::pair<double, double>> windows;
  for (int k = 0; k < 100; ++k) {
    const double lo = rng.uniform(0, 500);
    const double hi = lo + rng.uniform(0.5, 50);
    const double delta = rng.uniform(0.1, 5.0);
    f.add(at(lo), at(hi), delta);
    if (rng.uniform01() < 0.5) f.add(at(lo), at(hi), -delta);
    windows.emplace_back(lo, hi);
  }
  std::vector<double> before_values;
  std::vector<double> before_integrals;
  for (const auto& [lo, hi] : windows) {
    before_values.push_back(f.value_at(at(lo)));
    before_integrals.push_back(f.integral(at(lo), at(hi)));
  }
  const double before_max = f.global_max();

  f.compact(1e-9);
  for (std::size_t k = 0; k < windows.size(); ++k) {
    const auto& [lo, hi] = windows[k];
    EXPECT_NEAR(f.value_at(at(lo)), before_values[k], 1e-6);
    EXPECT_NEAR(f.integral(at(lo), at(hi)), before_integrals[k], 1e-4);
  }
  EXPECT_NEAR(f.global_max(), before_max, 1e-6);

  // Idempotent: a second compact changes nothing at all.
  const auto bp_once = f.breakpoints();
  const double max_once = f.global_max();
  f.compact(1e-9);
  const auto bp_twice = f.breakpoints();
  ASSERT_EQ(bp_once.size(), bp_twice.size());
  for (std::size_t k = 0; k < bp_once.size(); ++k) EXPECT_EQ(bp_once[k], bp_twice[k]);
  EXPECT_EQ(f.global_max(), max_once);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, TimelineProfileRebuild,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace gridbw
