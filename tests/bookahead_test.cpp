// Tests for the book-ahead (advance reservation) scheduler.

#include <gtest/gtest.h>

#include <vector>

#include "core/validate.hpp"
#include "heuristics/flexible_bookahead.hpp"
#include "heuristics/flexible_window.hpp"
#include "workload/generator.hpp"
#include "workload/scenario.hpp"

namespace gridbw::heuristics {
namespace {

TimePoint at(double s) { return TimePoint::at_seconds(s); }
Bandwidth mbps(double m) { return Bandwidth::megabytes_per_second(m); }

Request flexible(RequestId id, double ts, double fastest, double max_mbps, double slack,
                 std::size_t in = 0, std::size_t out = 0) {
  const Volume vol = mbps(max_mbps) * Duration::seconds(fastest);
  return RequestBuilder{id}
      .from(IngressId{in})
      .to(EgressId{out})
      .window(at(ts), at(ts + fastest * slack))
      .volume(vol)
      .max_rate(mbps(max_mbps))
      .build();
}

TEST(BookAhead, PlacesConflictingRequestInAFutureInterval) {
  const Network net = Network::uniform(1, 1, mbps(100));
  // Two full-port transfers arriving together, each 10 s long at MaxRate,
  // with deadlines far out. Plain WINDOW rejects the second; book-ahead
  // schedules it one interval later.
  const std::vector<Request> rs{flexible(1, 0, 10, 100, 20.0),
                                flexible(2, 1, 10, 100, 20.0)};
  BookAheadOptions opt;
  opt.step = Duration::seconds(10);
  opt.policy = BandwidthPolicy::fraction_of_max(1.0);
  opt.max_book_ahead = 3;
  const auto result = schedule_flexible_bookahead(net, rs, opt);
  EXPECT_EQ(result.accepted_count(), 2u);
  const auto a1 = result.schedule.assignment(1);
  const auto a2 = result.schedule.assignment(2);
  ASSERT_TRUE(a1.has_value() && a2.has_value());
  EXPECT_NE(a1->start, a2->start);

  WindowOptions plain;
  plain.step = opt.step;
  plain.policy = opt.policy;
  const auto window = schedule_flexible_window(net, rs, plain);
  EXPECT_EQ(window.accepted_count(), 1u);
}

TEST(BookAhead, ZeroAheadBehavesLikeStartNowOrReject) {
  const Network net = Network::uniform(1, 1, mbps(100));
  const std::vector<Request> rs{flexible(1, 0, 10, 100, 20.0),
                                flexible(2, 1, 10, 100, 20.0)};
  BookAheadOptions opt;
  opt.step = Duration::seconds(10);
  opt.policy = BandwidthPolicy::fraction_of_max(1.0);
  opt.max_book_ahead = 0;
  const auto result = schedule_flexible_bookahead(net, rs, opt);
  EXPECT_EQ(result.accepted_count(), 1u);
}

TEST(BookAhead, RespectsDeadlinesWhenDeferring) {
  const Network net = Network::uniform(1, 1, mbps(100));
  // The second request's deadline cannot survive a one-interval deferral.
  const std::vector<Request> rs{flexible(1, 0, 10, 100, 20.0),
                                flexible(2, 1, 10, 100, 1.5)};
  BookAheadOptions opt;
  opt.step = Duration::seconds(10);
  opt.policy = BandwidthPolicy::fraction_of_max(1.0);
  opt.max_book_ahead = 5;
  const auto result = schedule_flexible_bookahead(net, rs, opt);
  const auto report = validate_schedule(net, rs, result.schedule);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_TRUE(result.schedule.is_accepted(1));
  EXPECT_FALSE(result.schedule.is_accepted(2));
}

TEST(BookAhead, MoreAheadNeverHurtsOnSaturatedPort) {
  const Network net = Network::uniform(1, 1, mbps(100));
  std::vector<Request> rs;
  for (RequestId id = 1; id <= 6; ++id) {
    rs.push_back(flexible(id, static_cast<double>(id) * 0.5, 10, 100, 40.0));
  }
  std::size_t previous = 0;
  for (const std::size_t ahead : {0u, 2u, 5u}) {
    BookAheadOptions opt;
    opt.step = Duration::seconds(10);
    opt.policy = BandwidthPolicy::fraction_of_max(1.0);
    opt.max_book_ahead = ahead;
    const auto result = schedule_flexible_bookahead(net, rs, opt);
    EXPECT_GE(result.accepted_count(), previous) << "ahead=" << ahead;
    previous = result.accepted_count();
    EXPECT_TRUE(validate_schedule(net, rs, result.schedule).ok());
  }
  EXPECT_EQ(previous, 6u);  // with ahead=5 everything fits back-to-back
}

TEST(BookAhead, SchedulesAreAlwaysFeasible) {
  const workload::Scenario scenario =
      workload::paper_flexible(Duration::seconds(1), Duration::seconds(400), 4.0);
  for (const std::uint64_t seed : {401u, 402u, 403u}) {
    Rng rng{seed};
    const auto requests = workload::generate(scenario.spec, rng);
    BookAheadOptions opt;
    opt.step = Duration::seconds(100);
    opt.policy = BandwidthPolicy::fraction_of_max(0.8);
    opt.max_book_ahead = 6;
    const auto result =
        schedule_flexible_bookahead(scenario.network, requests, opt);
    EXPECT_EQ(result.accepted_count() + result.rejected.size(), requests.size());
    const auto report = validate_schedule(scenario.network, requests, result.schedule);
    EXPECT_TRUE(report.ok()) << report.to_string();
  }
}

TEST(BookAhead, RejectsNonPositiveStep) {
  const Network net = Network::uniform(1, 1, mbps(100));
  BookAheadOptions opt;
  opt.step = Duration::zero();
  EXPECT_THROW((void)schedule_flexible_bookahead(net, std::vector<Request>{}, opt),
               std::invalid_argument);
}

}  // namespace
}  // namespace gridbw::heuristics
