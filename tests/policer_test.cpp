// Tests for access-point flow policing (§5.4): conforming flows pass
// untouched, misbehaving flows are clipped to their reservation.

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "control/policer.hpp"

namespace gridbw::control {
namespace {

Bandwidth mbps(double m) { return Bandwidth::megabytes_per_second(m); }

TEST(Policer, ConformingFlowDeliversEverything) {
  const std::vector<PolicedFlow> flows{{1, mbps(50), mbps(50)}};
  const auto report = police_flows(flows, Duration::seconds(10));
  ASSERT_EQ(report.flows.size(), 1u);
  EXPECT_NEAR(report.flows[0].delivery_ratio(), 1.0, 1e-9);
  EXPECT_EQ(report.flows[0].dropped, Volume::zero());
}

TEST(Policer, MisbehavingFlowClippedToReservation) {
  const std::vector<PolicedFlow> flows{{1, mbps(50), mbps(150)}};  // 3x over
  const auto report = police_flows(flows, Duration::seconds(10));
  // Delivered ~ reserved * duration (+ small initial burst allowance).
  EXPECT_NEAR(report.flows[0].delivered.to_bytes(), 50e6 * 10, 50e6 * 0.05);
  EXPECT_NEAR(report.flows[0].delivery_ratio(), 1.0 / 3.0, 0.02);
  EXPECT_GT(report.flows[0].dropped.to_bytes(), 0.0);
}

TEST(Policer, MisbehaverDoesNotHurtConformers) {
  const std::vector<PolicedFlow> flows{{1, mbps(40), mbps(40)},
                                       {2, mbps(40), mbps(400)}};
  const auto report = police_flows(flows, Duration::seconds(5));
  EXPECT_NEAR(report.flows[0].delivery_ratio(), 1.0, 1e-9);
  // The aggregate the port carries stays within the sum of reservations
  // (plus burst slack), protecting other traffic.
  EXPECT_LE(report.peak_aggregate.to_bytes_per_second(),
            (40e6 + 40e6) * (1.0 + 4.0) + 1.0);
}

TEST(Policer, AggregateWithinReservationsLongRun) {
  std::vector<PolicedFlow> flows;
  for (RequestId id = 1; id <= 5; ++id) {
    flows.push_back(PolicedFlow{id, mbps(20), mbps(100)});
  }
  const auto report = police_flows(flows, Duration::seconds(20));
  // Total delivered over 20 s must stay near 5 * 20 MB/s * 20 s.
  EXPECT_NEAR(report.total_delivered().to_bytes(), 5 * 20e6 * 20, 5 * 20e6 * 0.1);
  EXPECT_NEAR(report.total_dropped().to_bytes(), 5 * 80e6 * 20, 5 * 80e6 * 20 * 0.02);
}

TEST(Policer, OfferedAccountingConsistent) {
  const std::vector<PolicedFlow> flows{{1, mbps(30), mbps(60)}};
  const auto report = police_flows(flows, Duration::seconds(3));
  const auto& f = report.flows[0];
  EXPECT_NEAR(f.offered.to_bytes(), (f.delivered + f.dropped).to_bytes(), 1.0);
  EXPECT_NEAR(f.offered.to_bytes(), 60e6 * 3, 60e6 * 0.011);
}

TEST(Policer, RejectsBadOptions) {
  const std::vector<PolicedFlow> flows{{1, mbps(10), mbps(10)}};
  PolicerOptions opt;
  opt.quantum = Duration::zero();
  EXPECT_THROW((void)police_flows(flows, Duration::seconds(1), opt),
               std::invalid_argument);
  PolicerOptions opt2;
  opt2.burst_quanta = 0.5;
  EXPECT_THROW((void)police_flows(flows, Duration::seconds(1), opt2),
               std::invalid_argument);
}

TEST(Policer, RejectsNonPositiveRates) {
  const std::vector<PolicedFlow> flows{{1, Bandwidth::zero(), mbps(10)}};
  EXPECT_THROW((void)police_flows(flows, Duration::seconds(1)), std::invalid_argument);
}

TEST(Policer, DurationShorterThanQuantumStillPolices) {
  // Regression: duration < quantum used to truncate to zero steps and
  // return an all-zero report. The tail is now simulated as one shortened
  // final tick covering the whole duration.
  const std::vector<PolicedFlow> flows{{1, mbps(50), mbps(50)}};
  const auto report = police_flows(flows, Duration::seconds(0.4));
  ASSERT_EQ(report.flows.size(), 1u);
  EXPECT_NEAR(report.flows[0].offered.to_bytes(), 50e6 * 0.4, 1.0);
  EXPECT_NEAR(report.flows[0].delivery_ratio(), 1.0, 1e-9);
  EXPECT_GT(report.peak_aggregate.to_bytes_per_second(), 0.0);
}

TEST(Policer, PartialFinalQuantumIsNotDropped) {
  // Regression: a 2.5 s horizon with a 1 s quantum used to account only
  // 2 s of traffic. The 0.5 s remainder is a genuine tick.
  const std::vector<PolicedFlow> flows{{1, mbps(40), mbps(40)}};
  const auto report = police_flows(flows, Duration::seconds(2.5));
  EXPECT_NEAR(report.flows[0].offered.to_bytes(), 40e6 * 2.5, 1.0);
  EXPECT_NEAR(report.flows[0].delivered.to_bytes(), 40e6 * 2.5, 40e6 * 0.01);
}

TEST(Policer, ExactMultipleOfQuantumAddsNoExtraTick) {
  const std::vector<PolicedFlow> flows{{1, mbps(30), mbps(30)}};
  const auto report = police_flows(flows, Duration::seconds(3));
  EXPECT_NEAR(report.flows[0].offered.to_bytes(), 30e6 * 3, 1.0);
}

TEST(Policer, RejectsNonFiniteOptions) {
  // `x < 1.0` is false for NaN — the gates must reject non-finite values
  // rather than let them through a naive comparison.
  const std::vector<PolicedFlow> flows{{1, mbps(10), mbps(10)}};
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();

  PolicerOptions nan_burst;
  nan_burst.burst_quanta = nan;
  EXPECT_THROW((void)police_flows(flows, Duration::seconds(1), nan_burst),
               std::invalid_argument);
  PolicerOptions inf_burst;
  inf_burst.burst_quanta = inf;
  EXPECT_THROW((void)police_flows(flows, Duration::seconds(1), inf_burst),
               std::invalid_argument);
  PolicerOptions nan_quantum;
  nan_quantum.quantum = Duration::seconds(nan);
  EXPECT_THROW((void)police_flows(flows, Duration::seconds(1), nan_quantum),
               std::invalid_argument);
  EXPECT_THROW((void)police_flows(flows, Duration::seconds(nan)),
               std::invalid_argument);
  EXPECT_THROW((void)police_flows(flows, Duration::seconds(inf)),
               std::invalid_argument);
}

TEST(Policer, EmptyFlowSet) {
  const auto report = police_flows(std::vector<PolicedFlow>{}, Duration::seconds(1));
  EXPECT_TRUE(report.flows.empty());
  EXPECT_EQ(report.total_delivered(), Volume::zero());
}

}  // namespace
}  // namespace gridbw::control
