// Tests for client resubmission (§2.3 "try later").

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "core/validate.hpp"
#include "heuristics/flexible_greedy.hpp"
#include "heuristics/retry.hpp"
#include "workload/generator.hpp"
#include "workload/scenario.hpp"

namespace gridbw::heuristics {
namespace {

TimePoint at(double s) { return TimePoint::at_seconds(s); }
Bandwidth mbps(double m) { return Bandwidth::megabytes_per_second(m); }

Request flexible(RequestId id, double ts, double fastest, double max_mbps,
                 double slack, std::size_t in = 0, std::size_t out = 0) {
  const Volume vol = mbps(max_mbps) * Duration::seconds(fastest);
  return RequestBuilder{id}
      .from(IngressId{in})
      .to(EgressId{out})
      .window(at(ts), at(ts + fastest * slack))
      .volume(vol)
      .max_rate(mbps(max_mbps))
      .build();
}

TEST(Retry, SingleAttemptMatchesPlainGreedy) {
  const workload::Scenario scenario =
      workload::paper_flexible(Duration::seconds(1), Duration::seconds(300), 4.0);
  Rng rng{701};
  const auto requests = workload::generate(scenario.spec, rng);
  const BandwidthPolicy policy = BandwidthPolicy::fraction_of_max(1.0);
  RetryPolicy retry;
  retry.max_attempts = 1;
  const auto with_retries =
      schedule_greedy_with_retries(scenario.network, requests, policy, retry);
  const auto plain = schedule_flexible_greedy(scenario.network, requests, policy);
  EXPECT_EQ(with_retries.result.accepted_count(), plain.accepted_count());
  EXPECT_EQ(with_retries.retries_issued, 0u);
  EXPECT_EQ(with_retries.accepted_on_retry, 0u);
}

TEST(Retry, RejectedRequestSucceedsAfterBackoff) {
  const Network net = Network::uniform(1, 1, mbps(100));
  // r1 fills the port for 10 s; r2 arrives during it, fails, retries 15 s
  // later when the port is free.
  const std::vector<Request> rs{flexible(1, 0, 10, 100, 4.0),
                                flexible(2, 5, 10, 100, 4.0)};
  RetryPolicy retry;
  retry.max_attempts = 2;
  retry.initial_backoff = Duration::seconds(15);
  const auto out = schedule_greedy_with_retries(
      net, rs, BandwidthPolicy::fraction_of_max(1.0), retry);
  EXPECT_EQ(out.result.accepted_count(), 2u);
  EXPECT_EQ(out.retries_issued, 1u);
  EXPECT_EQ(out.accepted_on_retry, 1u);
  const auto a2 = out.result.schedule.assignment(2);
  ASSERT_TRUE(a2.has_value());
  EXPECT_NEAR(a2->start.to_seconds(), 20.0, 1e-9);  // 5 + 15
}

TEST(Retry, GivesUpAfterMaxAttempts) {
  const Network net = Network::uniform(1, 1, mbps(100));
  // r1 occupies the port for 1000 s; r2's three attempts all collide.
  const std::vector<Request> rs{flexible(1, 0, 1000, 100, 4.0),
                                flexible(2, 5, 10, 100, 4.0)};
  RetryPolicy retry;
  retry.max_attempts = 3;
  retry.initial_backoff = Duration::seconds(10);
  retry.backoff_factor = 2.0;
  const auto out = schedule_greedy_with_retries(
      net, rs, BandwidthPolicy::fraction_of_max(1.0), retry);
  EXPECT_FALSE(out.result.schedule.is_accepted(2));
  EXPECT_EQ(out.retries_issued, 2u);
  ASSERT_EQ(out.result.rejected.size(), 1u);
  EXPECT_EQ(out.result.rejected.front(), 2u);
}

TEST(Retry, BackoffGrowsGeometrically) {
  const Network net = Network::uniform(1, 1, mbps(100));
  const std::vector<Request> rs{flexible(1, 0, 100, 100, 4.0),
                                flexible(2, 0.5, 10, 100, 4.0)};
  // Attempts of r2 at: 0.5, +10 -> 10.5, +20 -> 30.5, +40 -> 70.5; the port
  // frees at 100 s, so a 5-attempt budget (+80 -> 150.5) succeeds there.
  RetryPolicy retry;
  retry.max_attempts = 5;
  retry.initial_backoff = Duration::seconds(10);
  retry.backoff_factor = 2.0;
  const auto out = schedule_greedy_with_retries(
      net, rs, BandwidthPolicy::fraction_of_max(1.0), retry);
  const auto a2 = out.result.schedule.assignment(2);
  ASSERT_TRUE(a2.has_value());
  EXPECT_NEAR(a2->start.to_seconds(), 150.5, 1e-9);
  EXPECT_EQ(out.retries_issued, 4u);
}

TEST(Retry, EffectiveRequestsValidateTheSchedule) {
  const workload::Scenario scenario =
      workload::paper_flexible(Duration::seconds(0.5), Duration::seconds(300), 4.0);
  Rng rng{702};
  const auto requests = workload::generate(scenario.spec, rng);
  RetryPolicy retry;
  retry.max_attempts = 3;
  retry.initial_backoff = Duration::seconds(30);
  const auto out = schedule_greedy_with_retries(
      scenario.network, requests, BandwidthPolicy::fraction_of_max(0.8), retry);
  EXPECT_EQ(out.effective_requests.size(), requests.size());
  const auto report = validate_schedule(scenario.network, out.effective_requests,
                                        out.result.schedule);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(out.result.accepted_count() + out.result.rejected.size(), requests.size());
}

TEST(Retry, RetriesImproveAcceptanceUnderTransientOverload) {
  const workload::Scenario scenario =
      workload::paper_flexible(Duration::seconds(1), Duration::seconds(200), 4.0);
  Rng rng{703};
  const auto requests = workload::generate(scenario.spec, rng);
  const BandwidthPolicy policy = BandwidthPolicy::fraction_of_max(1.0);
  RetryPolicy none;
  none.max_attempts = 1;
  RetryPolicy three;
  three.max_attempts = 3;
  three.initial_backoff = Duration::minutes(5);
  const auto base =
      schedule_greedy_with_retries(scenario.network, requests, policy, none);
  const auto retried =
      schedule_greedy_with_retries(scenario.network, requests, policy, three);
  EXPECT_GE(retried.result.accepted_count(), base.result.accepted_count());
}

TEST(Retry, Validation) {
  const Network net = Network::uniform(1, 1, mbps(100));
  RetryPolicy bad;
  bad.max_attempts = 0;
  EXPECT_THROW((void)schedule_greedy_with_retries(net, std::vector<Request>{},
                                                  BandwidthPolicy::min_rate(), bad),
               std::invalid_argument);
  RetryPolicy bad2;
  bad2.backoff_factor = 0.5;
  EXPECT_THROW((void)schedule_greedy_with_retries(net, std::vector<Request>{},
                                                  BandwidthPolicy::min_rate(), bad2),
               std::invalid_argument);
}

TEST(Retry, RejectsNonFinitePolicy) {
  // Regression: `backoff_factor < 1.0` is false for NaN, so a NaN policy
  // used to slip past validation and poison every backoff computation.
  const Network net = Network::uniform(1, 1, mbps(100));
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();

  RetryPolicy nan_factor;
  nan_factor.backoff_factor = nan;
  EXPECT_THROW((void)schedule_greedy_with_retries(net, std::vector<Request>{},
                                                  BandwidthPolicy::min_rate(), nan_factor),
               std::invalid_argument);
  RetryPolicy inf_factor;
  inf_factor.backoff_factor = inf;
  EXPECT_THROW((void)schedule_greedy_with_retries(net, std::vector<Request>{},
                                                  BandwidthPolicy::min_rate(), inf_factor),
               std::invalid_argument);
  RetryPolicy nan_backoff;
  nan_backoff.initial_backoff = Duration::seconds(nan);
  EXPECT_THROW((void)schedule_greedy_with_retries(net, std::vector<Request>{},
                                                  BandwidthPolicy::min_rate(), nan_backoff),
               std::invalid_argument);
  RetryPolicy negative_backoff;
  negative_backoff.initial_backoff = Duration::seconds(-1);
  EXPECT_THROW((void)schedule_greedy_with_retries(net, std::vector<Request>{},
                                                  BandwidthPolicy::min_rate(),
                                                  negative_backoff),
               std::invalid_argument);
}

}  // namespace
}  // namespace gridbw::heuristics
