// Tests for the fixed-bin histogram.

#include <gtest/gtest.h>

#include "util/histogram.hpp"

namespace gridbw {
namespace {

TEST(Histogram, BinsValuesUniformly) {
  Histogram h{0.0, 10.0, 5};
  for (double v : {0.5, 2.5, 4.5, 6.5, 8.5}) h.add(v);
  for (std::size_t b = 0; b < 5; ++b) EXPECT_EQ(h.count_in_bin(b), 1u);
  EXPECT_EQ(h.total_count(), 5u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, EdgesBelongToTheRightBin) {
  Histogram h{0.0, 10.0, 5};
  h.add(0.0);   // first bin, inclusive lower edge
  h.add(2.0);   // second bin's lower edge
  h.add(10.0);  // hi is exclusive -> overflow
  EXPECT_EQ(h.count_in_bin(0), 1u);
  EXPECT_EQ(h.count_in_bin(1), 1u);
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, UnderOverflowCounted) {
  Histogram h{0.0, 1.0, 2};
  h.add(-5.0);
  h.add(99.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total_count(), 2u);
  EXPECT_EQ(h.count_in_bin(0), 0u);
}

TEST(Histogram, BinRange) {
  Histogram h{10.0, 20.0, 4};
  EXPECT_EQ(h.bin_range(0), (std::pair{10.0, 12.5}));
  EXPECT_EQ(h.bin_range(3), (std::pair{17.5, 20.0}));
  EXPECT_THROW((void)h.bin_range(4), std::out_of_range);
}

TEST(Histogram, CumulativeFractionIncludesUnderflow) {
  Histogram h{0.0, 10.0, 2};
  h.add(-1.0);  // underflow
  h.add(1.0);   // bin 0
  h.add(6.0);   // bin 1
  h.add(20.0);  // overflow
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(0), 0.5);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(1), 0.75);
}

TEST(Histogram, CumulativeFractionEmpty) {
  Histogram h{0.0, 1.0, 2};
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(0), 0.0);
}

TEST(Histogram, RenderShowsBarsAndOverflow) {
  Histogram h{0.0, 2.0, 2};
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  h.add(9.0);
  const std::string text = h.render(10);
  EXPECT_NE(text.find("##########"), std::string::npos);  // peak bin, full width
  EXPECT_NE(text.find("#####"), std::string::npos);
  EXPECT_NE(text.find("overflow: 1"), std::string::npos);
}

TEST(Histogram, Validation) {
  EXPECT_THROW((Histogram{1.0, 1.0, 3}), std::invalid_argument);
  EXPECT_THROW((Histogram{2.0, 1.0, 3}), std::invalid_argument);
  EXPECT_THROW((Histogram{0.0, 1.0, 0}), std::invalid_argument);
  Histogram h{0.0, 1.0, 2};
  EXPECT_THROW((void)h.count_in_bin(2), std::out_of_range);
  EXPECT_THROW((void)h.cumulative_fraction(5), std::out_of_range);
}

}  // namespace
}  // namespace gridbw
