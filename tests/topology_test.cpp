// Tests for the overlay topology substrate.

#include <gtest/gtest.h>

#include "control/topology.hpp"

namespace gridbw::control {
namespace {

TEST(OverlayTopology, Grid5000PresetShape) {
  const auto topo = OverlayTopology::grid5000_like();
  EXPECT_EQ(topo.site_count(), 8u);
  EXPECT_EQ(topo.site(0).connections, 64u);
  EXPECT_EQ(topo.site(0).access_capacity, Bandwidth::gigabytes_per_second(1));
}

TEST(OverlayTopology, FullMeshLinkCount) {
  const auto topo = OverlayTopology::grid5000_like(8);
  EXPECT_EQ(topo.mesh_link_count(), 8u * 7u);
}

TEST(OverlayTopology, AttachmentCountIsOrderMN) {
  const auto topo = OverlayTopology::grid5000_like(5, 32);
  EXPECT_EQ(topo.attachment_count(), 5u * 32u);
}

TEST(OverlayTopology, ControlLatencyLocalVsRemote) {
  const auto topo = OverlayTopology::grid5000_like(4);
  const Duration local = topo.control_latency(1, 1);
  const Duration remote = topo.control_latency(1, 2);
  EXPECT_LT(local, remote);
  EXPECT_NEAR(remote.to_seconds(), local.to_seconds() + 0.010, 1e-9);
}

TEST(OverlayTopology, DataPlaneMirrorsSites) {
  const auto topo = OverlayTopology::grid5000_like(6);
  const Network net = topo.data_plane();
  EXPECT_EQ(net.ingress_count(), 6u);
  EXPECT_EQ(net.egress_count(), 6u);
  EXPECT_EQ(net.ingress_capacity(IngressId{3}), topo.site(3).access_capacity);
}

TEST(OverlayTopology, ValidatesSites) {
  EXPECT_THROW(OverlayTopology{std::vector<Site>{}}, std::invalid_argument);
  Site one;
  one.connections = 4;
  one.access_capacity = Bandwidth::gigabytes_per_second(1);
  EXPECT_THROW(OverlayTopology{std::vector<Site>{one}}, std::invalid_argument);

  Site bad = one;
  bad.access_capacity = Bandwidth::zero();
  EXPECT_THROW((OverlayTopology{std::vector<Site>{one, bad}}), std::invalid_argument);

  Site no_hosts = one;
  no_hosts.connections = 0;
  EXPECT_THROW((OverlayTopology{std::vector<Site>{one, no_hosts}}),
               std::invalid_argument);
}

TEST(OverlayTopology, OutOfRangeSiteThrows) {
  const auto topo = OverlayTopology::grid5000_like(3);
  EXPECT_THROW((void)topo.site(3), std::out_of_range);
  EXPECT_THROW((void)topo.control_latency(0, 9), std::out_of_range);
}

}  // namespace
}  // namespace gridbw::control
