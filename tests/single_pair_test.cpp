// Tests for the single ingress-egress pair polynomial case: EDF greedy is
// optimal (verified against brute force on random instances).

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "exact/single_pair.hpp"
#include "util/random.hpp"

namespace gridbw::exact {
namespace {

TEST(SinglePairEdf, EmptyInput) {
  const auto out = schedule_single_pair_edf(std::vector<UnitJob>{}, 1);
  EXPECT_EQ(out.accepted_count(), 0u);
  EXPECT_TRUE(out.rejected.empty());
}

TEST(SinglePairEdf, SingleJobRunsInItsWindow) {
  const std::vector<UnitJob> jobs{{1, 5, 8}};
  const auto out = schedule_single_pair_edf(jobs, 1);
  ASSERT_EQ(out.accepted_count(), 1u);
  EXPECT_EQ(out.assigned[0].first, 1u);
  EXPECT_GE(out.assigned[0].second, 5);
  EXPECT_LT(out.assigned[0].second, 8);
}

TEST(SinglePairEdf, CapacityLimitsConcurrency) {
  // Three jobs, all with window [0, 1): capacity 2 accepts exactly two.
  const std::vector<UnitJob> jobs{{1, 0, 1}, {2, 0, 1}, {3, 0, 1}};
  const auto out = schedule_single_pair_edf(jobs, 2);
  EXPECT_EQ(out.accepted_count(), 2u);
  EXPECT_EQ(out.rejected.size(), 1u);
}

TEST(SinglePairEdf, EarliestDeadlineWinsContention) {
  // Two jobs available at slot 0; only one fits per slot. The tight one
  // (deadline 1) must run first, the loose one at slot 1.
  const std::vector<UnitJob> jobs{{1, 0, 3}, {2, 0, 1}};
  const auto out = schedule_single_pair_edf(jobs, 1);
  ASSERT_EQ(out.accepted_count(), 2u);
  for (const auto& [id, slot] : out.assigned) {
    if (id == 2) {
      EXPECT_EQ(slot, 0);
    }
    if (id == 1) {
      EXPECT_EQ(slot, 1);
    }
  }
}

TEST(SinglePairEdf, ExpiredJobsAreRejected) {
  // Three same-window jobs on capacity 1: one must expire.
  const std::vector<UnitJob> jobs{{1, 0, 2}, {2, 0, 2}, {3, 0, 2}};
  const auto out = schedule_single_pair_edf(jobs, 1);
  EXPECT_EQ(out.accepted_count(), 2u);
  EXPECT_EQ(out.rejected.size(), 1u);
}

TEST(SinglePairEdf, SkipsIdleGaps) {
  const std::vector<UnitJob> jobs{{1, 0, 1}, {2, 1000, 1001}};
  const auto out = schedule_single_pair_edf(jobs, 1);
  EXPECT_EQ(out.accepted_count(), 2u);
}

TEST(SinglePairEdf, NoSlotUsedTwiceBeyondCapacity) {
  Rng rng{51};
  std::vector<UnitJob> jobs;
  for (RequestId id = 1; id <= 40; ++id) {
    const auto r = rng.uniform_int(0, 10);
    jobs.push_back(UnitJob{id, r, r + rng.uniform_int(1, 6)});
  }
  const std::size_t capacity = 3;
  const auto out = schedule_single_pair_edf(jobs, capacity);
  std::map<std::int64_t, std::size_t> used;
  for (const auto& [id, slot] : out.assigned) ++used[slot];
  for (const auto& [slot, count] : used) {
    EXPECT_LE(count, capacity) << "slot " << slot;
  }
  // Every assignment sits inside its job's window.
  for (const auto& [id, slot] : out.assigned) {
    const auto& job = jobs[id - 1];
    EXPECT_GE(slot, job.release);
    EXPECT_LT(slot, job.deadline);
  }
  EXPECT_EQ(out.accepted_count() + out.rejected.size(), jobs.size());
}

TEST(SinglePairEdf, Validation) {
  EXPECT_THROW((void)schedule_single_pair_edf(std::vector<UnitJob>{{1, 0, 2}}, 0),
               std::invalid_argument);
  EXPECT_THROW((void)schedule_single_pair_edf(std::vector<UnitJob>{{1, 2, 2}}, 1),
               std::invalid_argument);
}

TEST(SinglePairBruteForce, HandCases) {
  EXPECT_EQ(single_pair_optimal_bruteforce(std::vector<UnitJob>{{1, 0, 1}, {2, 0, 1}}, 1),
            1u);
  EXPECT_EQ(single_pair_optimal_bruteforce(std::vector<UnitJob>{{1, 0, 2}, {2, 0, 2}}, 1),
            2u);
  EXPECT_EQ(single_pair_optimal_bruteforce(std::vector<UnitJob>{}, 2), 0u);
}

// ---------------------------------------------------------------------------
// The optimality claim of Theorem 1's footnote: EDF greedy == brute force on
// the single pair, across random instances and capacities.
// ---------------------------------------------------------------------------

class EdfOptimality
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {};

TEST_P(EdfOptimality, GreedyMatchesBruteForce) {
  const auto [capacity, seed] = GetParam();
  Rng rng{seed};
  std::vector<UnitJob> jobs;
  const auto count = static_cast<RequestId>(rng.uniform_int(4, 9));
  for (RequestId id = 1; id <= count; ++id) {
    const auto r = rng.uniform_int(0, 6);
    jobs.push_back(UnitJob{id, r, r + rng.uniform_int(1, 4)});
  }
  const auto greedy = schedule_single_pair_edf(jobs, capacity);
  const auto optimal = single_pair_optimal_bruteforce(jobs, capacity);
  EXPECT_EQ(greedy.accepted_count(), optimal);
}

INSTANTIATE_TEST_SUITE_P(CapacitiesAndSeeds, EdfOptimality,
                         ::testing::Combine(::testing::Values(1u, 2u, 3u),
                                            ::testing::Values(61u, 62u, 63u, 64u, 65u,
                                                              66u, 67u, 68u)));

}  // namespace
}  // namespace gridbw::exact
