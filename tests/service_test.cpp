// AdmissionService (ISSUE 7 tentpole): the sharded steady-state churn
// engine. The load-bearing properties pinned here:
//
//  * determinism — same submissions give byte-identical decision
//    fingerprints and JSONL traces for any shard count, repeated runs, and
//    GC on vs off (DESIGN.md §5h);
//  * serial equivalence — the 1-shard service IS a serial replay, so every
//    multi-shard configuration is differentially checked against it;
//  * lifecycle accounting — admitted == expired once every reservation's
//    deadline has passed, and the port load returns to zero;
//  * GC — resident breakpoints stay O(live) under churn while decisions
//    match the GC-off run exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "obs/counters.hpp"
#include "obs/trace_sink.hpp"
#include "service/admission_service.hpp"
#include "workload/generator.hpp"
#include "workload/load.hpp"
#include "workload/scenario.hpp"

namespace gridbw {
namespace {

constexpr std::uint64_t kSeeds[] = {7, 1234, 99999};

std::vector<Request> churn_workload(std::uint64_t seed, std::size_t count) {
  workload::Scenario scenario =
      workload::paper_rigid(Duration::seconds(1), Duration::seconds(1));
  scenario.spec.mean_interarrival =
      workload::interarrival_for_load(scenario.spec, scenario.network, 3.0);
  scenario.spec.horizon =
      scenario.spec.mean_interarrival * static_cast<double>(count);
  Rng rng{seed};
  auto requests = workload::generate(scenario.spec, rng);
  if (requests.size() > count) requests.resize(count);
  return requests;
}

const Network& churn_network() {
  static const Network net = workload::paper_rigid(Duration::seconds(1),
                                                   Duration::seconds(1))
                                 .network;
  return net;
}

service::ServiceReport run_service(const std::vector<Request>& requests,
                                   service::ServiceOptions options) {
  service::AdmissionService svc{churn_network(), std::move(options)};
  for (const Request& r : requests) svc.submit(r);
  return svc.drain();
}

TEST(Service, LifecycleAccountingAndZeroResidualLoad) {
  const auto requests = churn_workload(7, 800);
  service::AdmissionService svc{churn_network(), {}};
  for (const Request& r : requests) svc.submit(r);
  const service::ServiceReport report = svc.drain();

  EXPECT_EQ(report.submitted, requests.size());
  EXPECT_EQ(report.admitted + report.rejected, report.submitted);
  // Every admitted reservation's deadline lies inside the batch, so all of
  // them expired by the time the drain finished.
  EXPECT_EQ(report.expired, report.admitted);
  EXPECT_GT(report.admitted, 0u);
  EXPECT_GT(report.rejected, 0u);
  EXPECT_GT(report.live_peak, 1u);

  const service::ServiceSnapshot snap = svc.snapshot();
  EXPECT_EQ(snap.live, 0u);
  EXPECT_EQ(snap.ports, churn_network().ingress_count() + churn_network().egress_count());
  // All load released: the standing level at the last event is exactly 0
  // (adds and releases fold through identical doubles).
  EXPECT_EQ(snap.peak_standing_load, 0.0);
}

TEST(Service, DeterministicAcrossRunsShardsAndGc) {
  for (const std::uint64_t seed : kSeeds) {
    const auto requests = churn_workload(seed, 600);
    const service::ServiceReport base =
        run_service(requests, {.shards = 1, .gc = true});
    ASSERT_GT(base.admitted, 0u);
    for (const std::size_t shards : {1u, 2u, 4u, 7u}) {
      for (const bool gc : {true, false}) {
        const service::ServiceReport other =
            run_service(requests, {.shards = shards, .gc = gc});
        EXPECT_EQ(other.decision_fingerprint, base.decision_fingerprint)
            << "seed " << seed << " shards " << shards << " gc " << gc;
        EXPECT_EQ(other.admitted, base.admitted);
        EXPECT_EQ(other.rejected, base.rejected);
        EXPECT_EQ(other.live_peak, base.live_peak);
      }
    }
  }
}

TEST(Service, TraceByteIdenticalAcrossShardCounts) {
  const auto requests = churn_workload(1234, 400);
  std::vector<std::string> traces;
  for (const std::size_t shards : {1u, 4u}) {
    std::ostringstream out;
    {
      obs::JsonlSink sink{out};
      obs::CounterRegistry counters;
      obs::Observer observer{&sink, &counters};
      service::ServiceOptions options;
      options.shards = shards;
      options.observer = &observer;
      service::AdmissionService svc{churn_network(), std::move(options)};
      for (const Request& r : requests) svc.submit(r);
      const service::ServiceReport report = svc.drain();
      sink.flush();
      EXPECT_EQ(counters.value(obs::Counter::kSubmitted), report.submitted);
      EXPECT_EQ(counters.value(obs::Counter::kAccepted), report.admitted);
      EXPECT_EQ(counters.value(obs::Counter::kExpired), report.expired);
      if (shards == 1) {
        EXPECT_EQ(counters.value(obs::Counter::kShardHandoffs), 0u);
      }
    }
    traces.push_back(out.str());
  }
  ASSERT_FALSE(traces[0].empty());
  EXPECT_EQ(traces[0], traces[1]);
}

TEST(Service, GcBoundsResidentBreakpointsWithoutChangingDecisions) {
  const auto requests = churn_workload(99999, 2000);
  const service::ServiceReport on =
      run_service(requests, {.shards = 2, .gc = true, .gc_batch = 32});
  const service::ServiceReport off =
      run_service(requests, {.shards = 2, .gc = false});
  EXPECT_EQ(on.decision_fingerprint, off.decision_fingerprint);
  EXPECT_GT(on.breakpoints_retired, 0u);
  EXPECT_GT(on.compactions, 0u);
  EXPECT_LT(on.resident_breakpoints, off.resident_breakpoints);
}

TEST(Service, MultiBatchDrainKeepsPortStateAndSequencing) {
  auto requests = churn_workload(7, 400);
  std::sort(requests.begin(), requests.end(),
            [](const Request& a, const Request& b) { return a.release < b.release; });
  const std::size_t half = requests.size() / 2;

  // GC off: the two batches overlap in time, so there is no safe
  // retirement horizon between them (see the class contract).
  service::AdmissionService svc{churn_network(), {.shards = 3, .gc = false}};
  for (std::size_t k = 0; k < half; ++k) svc.submit(requests[k]);
  const service::ServiceReport first = svc.drain();
  for (std::size_t k = half; k < requests.size(); ++k) svc.submit(requests[k]);
  const service::ServiceReport second = svc.drain();
  EXPECT_EQ(first.submitted + second.submitted, requests.size());

  // The split replay must agree with the single-batch run wherever windows
  // don't straddle the batch boundary; at minimum, totals reconcile and the
  // port state fully drains.
  EXPECT_EQ(first.admitted + second.admitted, first.expired + second.expired);
  EXPECT_EQ(svc.snapshot().live, 0u);
  EXPECT_TRUE(svc.was_admitted(requests[0].id) ||
              !svc.was_admitted(requests[0].id));  // id lookup stays valid
}

TEST(Service, RejectsDegenerateAndInfeasibleUpFront) {
  service::AdmissionService svc{churn_network(), {}};
  Request degenerate;
  degenerate.id = 1;
  degenerate.ingress = IngressId{0};
  degenerate.egress = EgressId{0};
  degenerate.release = TimePoint::at_seconds(5.0);
  degenerate.deadline = TimePoint::at_seconds(5.0);
  degenerate.volume = Volume::gigabytes(1);
  degenerate.max_rate = Bandwidth::gigabytes_per_second(1);
  svc.submit(degenerate);

  Request infeasible;
  infeasible.id = 2;
  infeasible.ingress = IngressId{1};
  infeasible.egress = EgressId{1};
  infeasible.release = TimePoint::at_seconds(0.0);
  infeasible.deadline = TimePoint::at_seconds(1.0);
  infeasible.volume = Volume::gigabytes(100);  // min_rate >> max_rate
  infeasible.max_rate = Bandwidth::megabytes_per_second(1);
  svc.submit(infeasible);

  const service::ServiceReport report = svc.drain();
  EXPECT_EQ(report.submitted, 2u);
  EXPECT_EQ(report.rejected, 2u);
  EXPECT_EQ(report.admitted, 0u);
  EXPECT_FALSE(svc.was_admitted(1));
  EXPECT_FALSE(svc.was_admitted(2));
}

}  // namespace
}  // namespace gridbw
