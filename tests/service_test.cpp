// AdmissionService (ISSUE 7 tentpole): the sharded steady-state churn
// engine. The load-bearing properties pinned here:
//
//  * determinism — same submissions give byte-identical decision
//    fingerprints and JSONL traces for any shard count, repeated runs, and
//    GC on vs off (DESIGN.md §5h);
//  * serial equivalence — the 1-shard service IS a serial replay, so every
//    multi-shard configuration is differentially checked against it;
//  * lifecycle accounting — admitted == expired once every reservation's
//    deadline has passed, and the port load returns to zero;
//  * GC — resident breakpoints stay O(live) under churn while decisions
//    match the GC-off run exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/counters.hpp"
#include "obs/trace_sink.hpp"
#include "service/admission_service.hpp"
#include "workload/generator.hpp"
#include "workload/load.hpp"
#include "workload/scenario.hpp"

namespace gridbw {
namespace {

constexpr std::uint64_t kSeeds[] = {7, 1234, 99999};

std::vector<Request> churn_workload(std::uint64_t seed, std::size_t count) {
  workload::Scenario scenario =
      workload::paper_rigid(Duration::seconds(1), Duration::seconds(1));
  scenario.spec.mean_interarrival =
      workload::interarrival_for_load(scenario.spec, scenario.network, 3.0);
  scenario.spec.horizon =
      scenario.spec.mean_interarrival * static_cast<double>(count);
  Rng rng{seed};
  auto requests = workload::generate(scenario.spec, rng);
  if (requests.size() > count) requests.resize(count);
  return requests;
}

const Network& churn_network() {
  static const Network net = workload::paper_rigid(Duration::seconds(1),
                                                   Duration::seconds(1))
                                 .network;
  return net;
}

service::ServiceReport run_service(const std::vector<Request>& requests,
                                   service::ServiceOptions options) {
  service::AdmissionService svc{churn_network(), std::move(options)};
  for (const Request& r : requests) svc.submit(r);
  return svc.drain();
}

TEST(Service, LifecycleAccountingAndZeroResidualLoad) {
  const auto requests = churn_workload(7, 800);
  service::AdmissionService svc{churn_network(), {}};
  for (const Request& r : requests) svc.submit(r);
  const service::ServiceReport report = svc.drain();

  EXPECT_EQ(report.submitted, requests.size());
  EXPECT_EQ(report.admitted + report.rejected, report.submitted);
  // Every admitted reservation's deadline lies inside the batch, so all of
  // them expired by the time the drain finished.
  EXPECT_EQ(report.expired, report.admitted);
  EXPECT_GT(report.admitted, 0u);
  EXPECT_GT(report.rejected, 0u);
  EXPECT_GT(report.live_peak, 1u);

  const service::ServiceSnapshot snap = svc.snapshot();
  EXPECT_EQ(snap.live, 0u);
  EXPECT_EQ(snap.ports, churn_network().ingress_count() + churn_network().egress_count());
  // All load released: the standing level at the last event is exactly 0
  // (adds and releases fold through identical doubles).
  EXPECT_EQ(snap.peak_standing_load, 0.0);
}

TEST(Service, DeterministicAcrossRunsShardsAndGc) {
  for (const std::uint64_t seed : kSeeds) {
    const auto requests = churn_workload(seed, 600);
    const service::ServiceReport base =
        run_service(requests, {.shards = 1, .gc = true});
    ASSERT_GT(base.admitted, 0u);
    for (const std::size_t shards : {1u, 2u, 4u, 7u}) {
      for (const bool gc : {true, false}) {
        const service::ServiceReport other =
            run_service(requests, {.shards = shards, .gc = gc});
        EXPECT_EQ(other.decision_fingerprint, base.decision_fingerprint)
            << "seed " << seed << " shards " << shards << " gc " << gc;
        EXPECT_EQ(other.admitted, base.admitted);
        EXPECT_EQ(other.rejected, base.rejected);
        EXPECT_EQ(other.live_peak, base.live_peak);
      }
    }
  }
}

TEST(Service, TraceByteIdenticalAcrossShardCounts) {
  const auto requests = churn_workload(1234, 400);
  std::vector<std::string> traces;
  for (const std::size_t shards : {1u, 4u}) {
    std::ostringstream out;
    {
      obs::JsonlSink sink{out};
      obs::CounterRegistry counters;
      obs::Observer observer{&sink, &counters};
      service::ServiceOptions options;
      options.shards = shards;
      options.observer = &observer;
      service::AdmissionService svc{churn_network(), std::move(options)};
      for (const Request& r : requests) svc.submit(r);
      const service::ServiceReport report = svc.drain();
      sink.flush();
      EXPECT_EQ(counters.value(obs::Counter::kSubmitted), report.submitted);
      EXPECT_EQ(counters.value(obs::Counter::kAccepted), report.admitted);
      EXPECT_EQ(counters.value(obs::Counter::kExpired), report.expired);
      if (shards == 1) {
        EXPECT_EQ(counters.value(obs::Counter::kShardHandoffs), 0u);
      }
    }
    traces.push_back(out.str());
  }
  ASSERT_FALSE(traces[0].empty());
  EXPECT_EQ(traces[0], traces[1]);
}

TEST(Service, GcBoundsResidentBreakpointsWithoutChangingDecisions) {
  const auto requests = churn_workload(99999, 2000);
  const service::ServiceReport on =
      run_service(requests, {.shards = 2, .gc = true, .gc_batch = 32});
  const service::ServiceReport off =
      run_service(requests, {.shards = 2, .gc = false});
  EXPECT_EQ(on.decision_fingerprint, off.decision_fingerprint);
  EXPECT_GT(on.breakpoints_retired, 0u);
  EXPECT_GT(on.compactions, 0u);
  EXPECT_LT(on.resident_breakpoints, off.resident_breakpoints);
}

TEST(Service, MultiBatchDrainKeepsPortStateAndSequencing) {
  auto requests = churn_workload(7, 400);
  std::sort(requests.begin(), requests.end(),
            [](const Request& a, const Request& b) { return a.release < b.release; });
  const std::size_t half = requests.size() / 2;

  // GC off: the two batches overlap in time, so there is no safe
  // retirement horizon between them (see the class contract).
  service::AdmissionService svc{churn_network(), {.shards = 3, .gc = false}};
  for (std::size_t k = 0; k < half; ++k) svc.submit(requests[k]);
  const service::ServiceReport first = svc.drain();
  for (std::size_t k = half; k < requests.size(); ++k) svc.submit(requests[k]);
  const service::ServiceReport second = svc.drain();
  EXPECT_EQ(first.submitted + second.submitted, requests.size());

  // The split replay must agree with the single-batch run wherever windows
  // don't straddle the batch boundary; at minimum, totals reconcile and the
  // port state fully drains.
  EXPECT_EQ(first.admitted + second.admitted, first.expired + second.expired);
  EXPECT_EQ(svc.snapshot().live, 0u);
  EXPECT_TRUE(svc.was_admitted(requests[0].id) ||
              !svc.was_admitted(requests[0].id));  // id lookup stays valid
}

TEST(Service, DrainRacingInFlightSubmitMatchesQuiescedDecisions) {
  // ISSUE 9 satellite: submit() is documented thread-safe against drain()
  // (the seal under ingest_mu decides which batch a request lands in). A
  // submitter thread feeds requests in increasing release order while the
  // main thread drains continuously, so seal points fall at arbitrary
  // prefixes. The workload is order-robust — windows are pairwise disjoint
  // (deadline_k == release_{k+1}, half-open reservations) and every 5th
  // request is infeasible on its own (min rate above its cap), so the
  // admit/reject outcome of each id is independent of how the batch
  // boundaries land. The racing run must therefore reproduce the quiesced
  // single-drain decisions byte-for-byte, and TSan must stay silent on the
  // ingest queue.
  const Network& net = churn_network();
  std::vector<Request> requests;
  constexpr std::size_t kCount = 600;
  for (std::size_t k = 0; k < kCount; ++k) {
    Request r;
    r.id = static_cast<RequestId>(k + 1);
    r.ingress = IngressId{k % net.ingress_count()};
    r.egress = EgressId{k % net.egress_count()};
    r.release = TimePoint::at_seconds(static_cast<double>(k));
    r.deadline = TimePoint::at_seconds(static_cast<double>(k) + 1.0);
    if (k % 5 == 4) {
      // Needs 100 GB/s from a 1 MB/s cap: rejected regardless of port state.
      r.volume = Volume::gigabytes(100);
      r.max_rate = Bandwidth::megabytes_per_second(1);
    } else {
      r.volume = Volume::megabytes(10);
      r.max_rate = Bandwidth::megabytes_per_second(50);
    }
    requests.push_back(r);
  }

  // Quiesced reference: everything in one sealed batch.
  service::AdmissionService reference{net, {.shards = 2, .gc = true, .gc_batch = 8}};
  for (const Request& r : requests) reference.submit(r);
  const service::ServiceReport quiesced = reference.drain();
  EXPECT_EQ(quiesced.submitted, kCount);
  EXPECT_EQ(quiesced.rejected, kCount / 5);
  EXPECT_EQ(quiesced.admitted, kCount - kCount / 5);

  // Racing run: drains seal whatever prefix the submitter has managed.
  service::AdmissionService svc{net, {.shards = 3, .gc = true, .gc_batch = 8}};
  std::atomic<std::size_t> submitted{0};
  std::thread submitter{[&] {
    for (std::size_t k = 0; k < kCount; ++k) {
      svc.submit(requests[k]);
      submitted.fetch_add(1, std::memory_order_release);
      if (k % 64 == 63) std::this_thread::sleep_for(std::chrono::milliseconds(1));
      else if (k % 16 == 15) std::this_thread::yield();
    }
  }};
  std::size_t total = 0, batches_with_work = 0;
  std::size_t total_admitted = 0, total_rejected = 0, total_expired = 0;
  while (total < kCount) {
    const service::ServiceReport report = svc.drain();
    total += report.submitted;
    total_admitted += report.admitted;
    total_rejected += report.rejected;
    total_expired += report.expired;
    if (report.submitted > 0) ++batches_with_work;
    if (total < kCount) std::this_thread::yield();
  }
  submitter.join();
  // Flush any straggler sealed after the last counted drain (none expected,
  // but drain() on an empty queue is a cheap no-op).
  const service::ServiceReport tail = svc.drain();
  EXPECT_EQ(tail.submitted, 0u);

  EXPECT_EQ(total, kCount);
  EXPECT_GE(batches_with_work, 2u) << "race degenerated into a single batch";
  EXPECT_EQ(total_admitted, quiesced.admitted);
  EXPECT_EQ(total_rejected, quiesced.rejected);
  EXPECT_EQ(total_expired, quiesced.expired);
  for (const Request& r : requests) {
    EXPECT_EQ(svc.was_admitted(r.id), reference.was_admitted(r.id))
        << "request " << r.id << " decided differently under racing drains";
  }
  const service::ServiceSnapshot snap = svc.snapshot();
  EXPECT_EQ(snap.live, 0u);
  EXPECT_EQ(snap.peak_standing_load, 0.0);
}

TEST(Service, RejectsDegenerateAndInfeasibleUpFront) {
  service::AdmissionService svc{churn_network(), {}};
  Request degenerate;
  degenerate.id = 1;
  degenerate.ingress = IngressId{0};
  degenerate.egress = EgressId{0};
  degenerate.release = TimePoint::at_seconds(5.0);
  degenerate.deadline = TimePoint::at_seconds(5.0);
  degenerate.volume = Volume::gigabytes(1);
  degenerate.max_rate = Bandwidth::gigabytes_per_second(1);
  svc.submit(degenerate);

  Request infeasible;
  infeasible.id = 2;
  infeasible.ingress = IngressId{1};
  infeasible.egress = EgressId{1};
  infeasible.release = TimePoint::at_seconds(0.0);
  infeasible.deadline = TimePoint::at_seconds(1.0);
  infeasible.volume = Volume::gigabytes(100);  // min_rate >> max_rate
  infeasible.max_rate = Bandwidth::megabytes_per_second(1);
  svc.submit(infeasible);

  const service::ServiceReport report = svc.drain();
  EXPECT_EQ(report.submitted, 2u);
  EXPECT_EQ(report.rejected, 2u);
  EXPECT_EQ(report.admitted, 0u);
  EXPECT_FALSE(svc.was_admitted(1));
  EXPECT_FALSE(svc.was_admitted(2));
}

}  // namespace
}  // namespace gridbw
