// Unit tests for the independent schedule validator: every violation kind
// must be detectable, and feasible schedules must pass.

#include "core/validate.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gridbw {
namespace {

TimePoint at(double s) { return TimePoint::at_seconds(s); }
Bandwidth mbps(double m) { return Bandwidth::megabytes_per_second(m); }

class ValidateTest : public ::testing::Test {
 protected:
  Network net_ = Network::uniform(2, 2, mbps(100));

  Request make(RequestId id, double ts, double tf, double gb, double max_mbps,
               std::size_t in = 0, std::size_t out = 0) {
    return RequestBuilder{id}
        .from(IngressId{in})
        .to(EgressId{out})
        .window(at(ts), at(tf))
        .volume(Volume::gigabytes(gb))
        .max_rate(mbps(max_mbps))
        .build();
  }

  bool has_violation(const ValidationReport& report, ViolationKind kind) {
    for (const auto& v : report.violations) {
      if (v.kind == kind) return true;
    }
    return false;
  }
};

TEST_F(ValidateTest, EmptyScheduleIsValid) {
  const std::vector<Request> rs{make(1, 0, 100, 1, 100)};
  const Schedule s;
  EXPECT_TRUE(validate_schedule(net_, rs, s).ok());
}

TEST_F(ValidateTest, FeasibleScheduleIsValid) {
  const std::vector<Request> rs{make(1, 0, 100, 1, 100), make(2, 0, 100, 1, 100, 1, 1)};
  Schedule s;
  s.accept(1, at(0), mbps(10));   // finishes exactly at the deadline
  s.accept(2, at(50), mbps(50));  // delayed start, faster rate
  const auto report = validate_schedule(net_, rs, s);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST_F(ValidateTest, UnknownRequestFlagged) {
  const std::vector<Request> rs{make(1, 0, 100, 1, 100)};
  Schedule s;
  s.accept(99, at(0), mbps(10));
  const auto report = validate_schedule(net_, rs, s);
  EXPECT_TRUE(has_violation(report, ViolationKind::kUnknownRequest));
}

TEST_F(ValidateTest, StartBeforeReleaseFlagged) {
  const std::vector<Request> rs{make(1, 10, 100, 1, 100)};
  Schedule s;
  s.accept(1, at(5), mbps(50));
  EXPECT_TRUE(has_violation(validate_schedule(net_, rs, s),
                            ViolationKind::kStartBeforeRelease));
}

TEST_F(ValidateTest, EndAfterDeadlineFlagged) {
  const std::vector<Request> rs{make(1, 0, 100, 1, 100)};
  Schedule s;
  s.accept(1, at(0), mbps(5));  // 1 GB at 5 MB/s = 200 s > 100 s window
  EXPECT_TRUE(
      has_violation(validate_schedule(net_, rs, s), ViolationKind::kEndAfterDeadline));
}

TEST_F(ValidateTest, RateAboveMaxFlagged) {
  const std::vector<Request> rs{make(1, 0, 100, 1, 50)};
  Schedule s;
  s.accept(1, at(0), mbps(80));
  EXPECT_TRUE(
      has_violation(validate_schedule(net_, rs, s), ViolationKind::kRateAboveMax));
}

TEST_F(ValidateTest, NonPositiveRateFlagged) {
  const std::vector<Request> rs{make(1, 0, 100, 1, 100)};
  Schedule s;
  s.accept(1, at(0), Bandwidth::zero());
  EXPECT_TRUE(
      has_violation(validate_schedule(net_, rs, s), ViolationKind::kRateNotPositive));
}

TEST_F(ValidateTest, IngressOverCapacityFlagged) {
  // Two 60 MB/s flows on the same 100 MB/s ingress, different egress.
  const std::vector<Request> rs{make(1, 0, 100, 6, 100, 0, 0),
                                make(2, 0, 100, 6, 100, 0, 1)};
  Schedule s;
  s.accept(1, at(0), mbps(60));
  s.accept(2, at(0), mbps(60));
  const auto report = validate_schedule(net_, rs, s);
  EXPECT_TRUE(has_violation(report, ViolationKind::kIngressOverCapacity));
  EXPECT_FALSE(has_violation(report, ViolationKind::kEgressOverCapacity));
}

TEST_F(ValidateTest, EgressOverCapacityFlagged) {
  const std::vector<Request> rs{make(1, 0, 100, 6, 100, 0, 0),
                                make(2, 0, 100, 6, 100, 1, 0)};
  Schedule s;
  s.accept(1, at(0), mbps(60));
  s.accept(2, at(0), mbps(60));
  const auto report = validate_schedule(net_, rs, s);
  EXPECT_TRUE(has_violation(report, ViolationKind::kEgressOverCapacity));
}

TEST_F(ValidateTest, SequentialFullCapacityIsValid) {
  // Back-to-back 100 MB/s reservations on the same port never coexist.
  const std::vector<Request> rs{make(1, 0, 10, 1, 100), make(2, 10, 20, 1, 100)};
  Schedule s;
  s.accept(1, at(0), mbps(100));
  s.accept(2, at(10), mbps(100));
  const auto report = validate_schedule(net_, rs, s);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST_F(ValidateTest, GuaranteeFloorChecked) {
  const std::vector<Request> rs{make(1, 0, 1000, 1, 100)};
  Schedule s;
  s.accept(1, at(0), mbps(10));  // well above MinRate (1 MB/s) but below 0.8*Max
  EXPECT_TRUE(validate_schedule(net_, rs, s, 0.0).ok());
  const auto report = validate_schedule(net_, rs, s, 0.8);
  EXPECT_FALSE(report.ok());
}

TEST_F(ValidateTest, GuaranteeFloorSatisfied) {
  const std::vector<Request> rs{make(1, 0, 1000, 1, 100)};
  Schedule s;
  s.accept(1, at(0), mbps(80));
  EXPECT_TRUE(validate_schedule(net_, rs, s, 0.8).ok());
}

TEST_F(ValidateTest, DuplicateAssignmentFlagged) {
  // Schedule's accept() forbids duplicates, so feed a raw assignment list:
  // the validator must not trust the container's invariant. Without the
  // check, both copies double-count port load while no per-request
  // violation names the culprit.
  const std::vector<Request> rs{make(1, 0, 100, 1, 100)};
  const std::vector<Assignment> as{
      Assignment{1, at(0), mbps(20)},
      Assignment{1, at(10), mbps(20)},
      Assignment{1, at(20), mbps(20)},
  };
  const auto report = validate_assignments(net_, rs, as);
  std::size_t duplicates = 0;
  for (const auto& v : report.violations) {
    if (v.kind == ViolationKind::kDuplicateAssignment) {
      ++duplicates;
      EXPECT_EQ(v.request, 1u);
    }
  }
  EXPECT_EQ(duplicates, 2u);  // first copy is legitimate, the other two flagged
  EXPECT_NE(report.to_string().find("duplicate-assignment"), std::string::npos);
}

TEST_F(ValidateTest, DuplicateLoadIsNotDoubleCounted) {
  // Two copies of a 60 MB/s assignment on a 100 MB/s port: the duplicate is
  // flagged but its load is ignored, so no phantom capacity violation.
  const std::vector<Request> rs{make(1, 0, 100, 6, 100)};
  const std::vector<Assignment> as{Assignment{1, at(0), mbps(60)},
                                   Assignment{1, at(0), mbps(60)}};
  const auto report = validate_assignments(net_, rs, as);
  EXPECT_TRUE(has_violation(report, ViolationKind::kDuplicateAssignment));
  EXPECT_FALSE(has_violation(report, ViolationKind::kIngressOverCapacity));
}

TEST_F(ValidateTest, EngineOptionsAgreeOnSmallSchedules) {
  const std::vector<Request> rs{make(1, 0, 100, 6, 100, 0, 0),
                                make(2, 0, 100, 6, 100, 0, 1)};
  Schedule s;
  s.accept(1, at(0), mbps(60));
  s.accept(2, at(0), mbps(60));
  for (const auto engine : {ValidateEngine::kReference, ValidateEngine::kSerial,
                            ValidateEngine::kParallel}) {
    ValidateOptions options;
    options.engine = engine;
    const auto report = validate_schedule(net_, rs, s, options);
    EXPECT_TRUE(has_violation(report, ViolationKind::kIngressOverCapacity));
    EXPECT_FALSE(has_violation(report, ViolationKind::kEgressOverCapacity));
  }
}

TEST_F(ValidateTest, ReportRendering) {
  const std::vector<Request> rs{make(1, 10, 100, 1, 100)};
  Schedule s;
  s.accept(1, at(5), mbps(50));
  const auto report = validate_schedule(net_, rs, s);
  EXPECT_NE(report.to_string().find("start-before-release"), std::string::npos);
  Schedule ok;
  EXPECT_EQ(validate_schedule(net_, rs, ok).to_string(), "valid");
}

}  // namespace
}  // namespace gridbw
