// Tests for the INI-style config parser.

#include <gtest/gtest.h>

#include "util/config.hpp"

namespace gridbw {
namespace {

TEST(Config, ParsesSectionsAndKeys) {
  const auto cfg = Config::parse_string(
      "[workload]\n"
      "interarrival = 2.5\n"
      "horizon=1200\n"
      "\n"
      "[scheduler]\n"
      "spec = window:step=400,f=0.8\n");
  EXPECT_TRUE(cfg.has("workload.interarrival"));
  EXPECT_DOUBLE_EQ(cfg.get_double("workload.interarrival", 0.0), 2.5);
  EXPECT_EQ(cfg.get_int("workload.horizon", 0), 1200);
  EXPECT_EQ(cfg.get_string("scheduler.spec", ""), "window:step=400,f=0.8");
}

TEST(Config, KeysOutsideSectionsAreBare) {
  const auto cfg = Config::parse_string("top = 1\n[s]\ninner = 2\n");
  EXPECT_EQ(cfg.get_int("top", 0), 1);
  EXPECT_EQ(cfg.get_int("s.inner", 0), 2);
}

TEST(Config, CommentsAndWhitespace) {
  const auto cfg = Config::parse_string(
      "# full-line comment\n"
      "  [  main ]  \n"
      "key = value   ; trailing comment\n"
      "   spaced   =   out   \n");
  EXPECT_EQ(cfg.get_string("main.key", ""), "value");
  EXPECT_EQ(cfg.get_string("main.spaced", ""), "out");
}

TEST(Config, FallbacksWhenAbsent) {
  const auto cfg = Config::parse_string("");
  EXPECT_FALSE(cfg.has("nope"));
  EXPECT_FALSE(cfg.get("nope").has_value());
  EXPECT_EQ(cfg.get_string("nope", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(cfg.get_double("nope", 1.5), 1.5);
  EXPECT_EQ(cfg.get_int("nope", -3), -3);
  EXPECT_TRUE(cfg.get_bool("nope", true));
}

TEST(Config, BooleanSpellings) {
  const auto cfg = Config::parse_string(
      "a=true\nb=YES\nc=on\nd=1\ne=false\nf=No\ng=off\nh=0\n");
  for (const char* key : {"a", "b", "c", "d"}) EXPECT_TRUE(cfg.get_bool(key, false));
  for (const char* key : {"e", "f", "g", "h"}) EXPECT_FALSE(cfg.get_bool(key, true));
}

TEST(Config, TypeErrorsThrow) {
  const auto cfg = Config::parse_string("x = abc\ny = 1.5z\nz = maybe\n");
  EXPECT_THROW((void)cfg.get_double("x", 0.0), std::runtime_error);
  EXPECT_THROW((void)cfg.get_int("y", 0), std::runtime_error);
  EXPECT_THROW((void)cfg.get_bool("z", false), std::runtime_error);
}

TEST(Config, MalformedLinesThrowWithLineNumber) {
  try {
    (void)Config::parse_string("ok = 1\nnot a key value\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("line 2"), std::string::npos);
  }
  EXPECT_THROW((void)Config::parse_string("[unclosed\n"), std::runtime_error);
  EXPECT_THROW((void)Config::parse_string("[]\n"), std::runtime_error);
  EXPECT_THROW((void)Config::parse_string("= value\n"), std::runtime_error);
}

TEST(Config, DuplicateKeysRejected) {
  EXPECT_THROW((void)Config::parse_string("[s]\na=1\na=2\n"), std::runtime_error);
  // Same key in different sections is fine.
  EXPECT_NO_THROW((void)Config::parse_string("[s]\na=1\n[t]\na=2\n"));
}

TEST(Config, KeysPreserveFileOrder) {
  const auto cfg = Config::parse_string("[b]\nz=1\n[a]\ny=2\nx=3\n");
  EXPECT_EQ(cfg.keys(), (std::vector<std::string>{"b.z", "a.y", "a.x"}));
}

TEST(Config, MissingFileThrows) {
  EXPECT_THROW((void)Config::parse_file("/nonexistent/gridbw.ini"), std::runtime_error);
}

}  // namespace
}  // namespace gridbw
