// Tests for the observability layer (DESIGN.md §5e): counter registry,
// trace sinks, the JSONL schema, per-port utilization export, and — per
// admission engine — that the emitted event stream reconciles exactly with
// the ScheduleResult it narrates.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/network.hpp"
#include "core/request.hpp"
#include "core/validate.hpp"
#include "heuristics/flexible_bookahead.hpp"
#include "heuristics/flexible_greedy.hpp"
#include "heuristics/flexible_window.hpp"
#include "heuristics/registry.hpp"
#include "heuristics/retry.hpp"
#include "heuristics/rigid_fcfs.hpp"
#include "heuristics/rigid_slots.hpp"
#include "obs/counters.hpp"
#include "obs/event.hpp"
#include "obs/observer.hpp"
#include "obs/trace_sink.hpp"
#include "obs/utilization.hpp"
#include "workload/generator.hpp"
#include "workload/load.hpp"
#include "workload/scenario.hpp"

namespace gridbw {
namespace {

using obs::AdmissionEvent;
using obs::Counter;
using obs::CounterRegistry;
using obs::EventKind;
using obs::JsonlSink;
using obs::MemorySink;
using obs::Observer;
using obs::RejectReason;

TimePoint at(double s) { return TimePoint::at_seconds(s); }
Bandwidth mbps(double m) { return Bandwidth::megabytes_per_second(m); }

Request flexible(RequestId id, double ts, double fastest, double max_mbps,
                 double slack, std::size_t in = 0, std::size_t out = 0) {
  const Volume vol = mbps(max_mbps) * Duration::seconds(fastest);
  return RequestBuilder{id}
      .from(IngressId{in})
      .to(EgressId{out})
      .window(at(ts), at(ts + fastest * slack))
      .volume(vol)
      .max_rate(mbps(max_mbps))
      .build();
}

std::vector<Request> seeded_workload(std::uint64_t seed, double load = 4.0) {
  workload::Scenario scenario =
      workload::paper_rigid(Duration::seconds(1), Duration::seconds(600));
  scenario.spec.mean_interarrival =
      workload::interarrival_for_load(scenario.spec, scenario.network, load);
  Rng rng{seed};
  return workload::generate(scenario.spec, rng);
}

Network paper_network() {
  return workload::paper_rigid(Duration::seconds(1), Duration::seconds(1)).network;
}

// -- CounterRegistry --------------------------------------------------------

TEST(Counters, AddAccumulatesAndSnapshotMatches) {
  CounterRegistry reg;
  reg.add(Counter::kSubmitted);
  reg.add(Counter::kSubmitted, 4);
  reg.add(Counter::kAccepted, 2);
  EXPECT_EQ(reg.value(Counter::kSubmitted), 5u);
  EXPECT_EQ(reg.value(Counter::kAccepted), 2u);
  EXPECT_EQ(reg.value(Counter::kRejected), 0u);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap[static_cast<std::size_t>(Counter::kSubmitted)], 5u);
  EXPECT_EQ(snap[static_cast<std::size_t>(Counter::kAccepted)], 2u);
}

TEST(Counters, SetOverwritesGaugeStyle) {
  CounterRegistry reg;
  reg.set(Counter::kRetryResidualBps, 123);
  EXPECT_EQ(reg.value(Counter::kRetryResidualBps), 123u);
  reg.set(Counter::kRetryResidualBps, 0);
  EXPECT_EQ(reg.value(Counter::kRetryResidualBps), 0u);
}

TEST(Counters, ResetZeroesEverything) {
  CounterRegistry reg;
  reg.add(Counter::kRejected, 7);
  reg.reset();
  EXPECT_EQ(reg.value(Counter::kRejected), 0u);
}

TEST(Counters, DistinctRegistriesDoNotCrossTalk) {
  CounterRegistry a;
  CounterRegistry b;
  a.add(Counter::kSubmitted, 3);
  b.add(Counter::kSubmitted, 11);
  EXPECT_EQ(a.value(Counter::kSubmitted), 3u);
  EXPECT_EQ(b.value(Counter::kSubmitted), 11u);
}

TEST(Counters, EveryCounterHasAUniqueName) {
  std::vector<std::string> names;
  for (std::size_t c = 0; c < obs::kCounterCount; ++c) {
    names.push_back(obs::to_string(static_cast<Counter>(c)));
  }
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_FALSE(names[i].empty());
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(names[i], names[j]);
    }
  }
}

// -- Sinks ------------------------------------------------------------------

TEST(MemorySinkTest, RecordsEventsAndAnnotationsInOrder) {
  MemorySink sink;
  sink.annotate("scheduler", "FCFS");
  AdmissionEvent e;
  e.kind = EventKind::kAccepted;
  e.request = 7;
  sink.record(e);
  e.kind = EventKind::kRejected;
  e.request = 8;
  e.reason = RejectReason::kIngressSaturated;
  sink.record(e);

  ASSERT_EQ(sink.events().size(), 2u);
  EXPECT_EQ(sink.events()[0].request, 7u);
  EXPECT_EQ(sink.count(EventKind::kAccepted), 1u);
  EXPECT_EQ(sink.count(EventKind::kRejected), 1u);
  EXPECT_EQ(sink.count(RejectReason::kIngressSaturated), 1u);
  EXPECT_EQ(sink.count(RejectReason::kEgressSaturated), 0u);
  ASSERT_EQ(sink.annotations().size(), 1u);
  EXPECT_EQ(sink.annotations()[0].first, "scheduler");

  sink.clear();
  EXPECT_TRUE(sink.events().empty());
  EXPECT_TRUE(sink.annotations().empty());
}

TEST(JsonlSinkTest, FormatMatchesDocumentedSchema) {
  AdmissionEvent e;
  e.kind = EventKind::kSubmitted;
  e.request = 7;
  e.when = at(12.5);
  EXPECT_EQ(JsonlSink::format(e), R"({"event":"submitted","req":7,"t":12.5,"attempt":1})");

  e.kind = EventKind::kAccepted;
  e.sigma = at(12.5);
  e.bw = Bandwidth::bytes_per_second(1e8);
  EXPECT_EQ(JsonlSink::format(e),
            R"({"event":"accepted","req":7,"t":12.5,"attempt":1,"sigma":12.5,"bw":1e+08})");

  AdmissionEvent r;
  r.kind = EventKind::kRejected;
  r.request = 9;
  r.when = at(13.0);
  r.reason = RejectReason::kEgressSaturated;
  EXPECT_EQ(JsonlSink::format(r),
            R"({"event":"rejected","req":9,"t":13,"attempt":1,"reason":"egress_saturated"})");

  AdmissionEvent t;
  t.kind = EventKind::kRetried;
  t.request = 9;
  t.when = at(13.0);
  t.attempt = 2;
  t.backoff = Duration::seconds(60);
  EXPECT_EQ(JsonlSink::format(t),
            R"({"event":"retried","req":9,"t":13,"attempt":2,"backoff":60})");
}

TEST(JsonlSinkTest, StreamsLinesAndMetaAnnotations) {
  std::ostringstream out;
  {
    JsonlSink sink{out};
    sink.annotate("scheduler", "greedy/minrate");
    AdmissionEvent e;
    e.kind = EventKind::kSubmitted;
    e.request = 1;
    sink.record(e);
  }
  const std::string text = out.str();
  EXPECT_NE(text.find(R"({"event":"meta","key":"scheduler","value":"greedy/minrate"})"),
            std::string::npos);
  EXPECT_NE(text.find(R"({"event":"submitted","req":1,"t":0,"attempt":1})"),
            std::string::npos);
  // One '\n'-terminated object per line.
  EXPECT_EQ(text.back(), '\n');
}

TEST(ObserverTest, NullObserverHelpersAreNoOps) {
  obs::note_submitted(nullptr, 1, at(0));
  obs::note_accepted(nullptr, 1, at(0), at(0), mbps(1));
  obs::note_rejected(nullptr, 1, at(0), RejectReason::kInfeasibleRate);
  obs::note_retried(nullptr, 1, at(0), 2, Duration::seconds(1));
  obs::note_preempted(nullptr, 1, at(0));
  obs::note_reclaimed(nullptr, 1, at(0), mbps(1));
  SUCCEED();
}

TEST(ObserverTest, SinkOnlyAndCountersOnlyBothWork) {
  MemorySink sink;
  Observer sink_only{&sink, nullptr};
  obs::note_submitted(&sink_only, 1, at(0));
  EXPECT_EQ(sink.count(EventKind::kSubmitted), 1u);

  CounterRegistry counters;
  Observer counters_only{nullptr, &counters};
  obs::note_accepted(&counters_only, 1, at(0), at(0), mbps(1));
  EXPECT_EQ(counters.value(Counter::kAccepted), 1u);
  EXPECT_EQ(sink.count(EventKind::kAccepted), 0u);
}

// -- Per-engine reconciliation ---------------------------------------------
//
// For every admission engine: attach a MemorySink + counters, run a seeded
// workload, and check that the event stream tells the same story as the
// ScheduleResult — accepted events == accepted_count(), rejected events ==
// rejected.size(), every rejection carries a non-kNone taxonomy entry, and
// the per-reason totals sum back to the rejection count.

void expect_reconciles(const MemorySink& sink, const CounterRegistry& counters,
                       const ScheduleResult& result, std::size_t submitted) {
  EXPECT_EQ(sink.count(EventKind::kSubmitted), submitted);
  EXPECT_EQ(sink.count(EventKind::kAccepted), result.accepted_count());
  EXPECT_EQ(sink.count(EventKind::kRejected), result.rejected.size());
  EXPECT_EQ(counters.value(Counter::kAccepted), result.accepted_count());
  EXPECT_EQ(counters.value(Counter::kRejected), result.rejected.size());

  std::size_t by_reason = 0;
  constexpr std::array kReasons{
      RejectReason::kDegenerateWindow,  RejectReason::kInfeasibleRate,
      RejectReason::kIngressSaturated,  RejectReason::kEgressSaturated,
      RejectReason::kBothPortsSaturated, RejectReason::kNoFeasibleStart,
      RejectReason::kRetroRemoved,      RejectReason::kRetriesExhausted};
  for (const RejectReason reason : kReasons) by_reason += sink.count(reason);
  EXPECT_EQ(by_reason, result.rejected.size());
  EXPECT_EQ(sink.count(RejectReason::kNone), 0u);
}

TEST(Reconciliation, RigidFcfs) {
  const auto requests = seeded_workload(901);
  MemorySink sink;
  CounterRegistry counters;
  Observer observer{&sink, &counters};
  const auto result =
      heuristics::schedule_rigid_fcfs(paper_network(), requests, &observer);
  ASSERT_GT(result.rejected.size(), 0u);
  expect_reconciles(sink, counters, result, requests.size());
}

TEST(Reconciliation, RigidSlotsAllCosts) {
  const auto requests = seeded_workload(902);
  for (const heuristics::SlotCost cost :
       {heuristics::SlotCost::kCumulated, heuristics::SlotCost::kMinBandwidth,
        heuristics::SlotCost::kMinVolume}) {
    MemorySink sink;
    CounterRegistry counters;
    Observer observer{&sink, &counters};
    const auto result =
        heuristics::schedule_rigid_slots(paper_network(), requests, cost, &observer);
    expect_reconciles(sink, counters, result, requests.size());
  }
}

TEST(Reconciliation, FlexibleGreedy) {
  const workload::Scenario scenario = workload::paper_flexible(
      Duration::seconds(0.5), Duration::seconds(600), 4.0);
  Rng rng{903};
  const auto requests = workload::generate(scenario.spec, rng);
  MemorySink sink;
  CounterRegistry counters;
  Observer observer{&sink, &counters};
  const auto result = heuristics::schedule_flexible_greedy(
      scenario.network, requests, heuristics::BandwidthPolicy::fraction_of_max(1.0),
      &observer);
  ASSERT_GT(result.rejected.size(), 0u);
  expect_reconciles(sink, counters, result, requests.size());
  // Every accepted transfer eventually returns its bandwidth.
  EXPECT_EQ(sink.count(EventKind::kReclaimed), result.accepted_count());
}

TEST(Reconciliation, FlexibleWindowBothEngines) {
  const workload::Scenario scenario = workload::paper_flexible(
      Duration::seconds(0.5), Duration::seconds(600), 4.0);
  Rng rng{904};
  const auto requests = workload::generate(scenario.spec, rng);
  for (const heuristics::WindowEngine engine :
       {heuristics::WindowEngine::kScan, heuristics::WindowEngine::kHeap}) {
    heuristics::WindowOptions options;
    options.step = Duration::seconds(100);
    options.engine = engine;
    MemorySink sink;
    CounterRegistry counters;
    Observer observer{&sink, &counters};
    const auto result = heuristics::schedule_flexible_window(scenario.network, requests,
                                                             options, &observer);
    expect_reconciles(sink, counters, result, requests.size());
    EXPECT_EQ(sink.count(EventKind::kReclaimed), result.accepted_count());
  }
}

TEST(Reconciliation, FlexibleBookahead) {
  const workload::Scenario scenario = workload::paper_flexible(
      Duration::seconds(0.5), Duration::seconds(600), 4.0);
  Rng rng{905};
  const auto requests = workload::generate(scenario.spec, rng);
  heuristics::BookAheadOptions options;
  options.step = Duration::seconds(100);
  MemorySink sink;
  CounterRegistry counters;
  Observer observer{&sink, &counters};
  const auto result = heuristics::schedule_flexible_bookahead(scenario.network, requests,
                                                              options, &observer);
  expect_reconciles(sink, counters, result, requests.size());
}

TEST(Reconciliation, RigidSlotsPreemptionsAreNarrated) {
  // A *-SLOTS sweep retro-removes requests that fail a later slice; every
  // final rejection of a request that was preempted mid-sweep must carry
  // the kRetroRemoved reason, and preempted events may only name requests
  // that do not appear in the final schedule.
  const auto requests = seeded_workload(906, 6.0);
  MemorySink sink;
  CounterRegistry counters;
  Observer observer{&sink, &counters};
  const auto result = heuristics::schedule_rigid_slots(
      paper_network(), requests, heuristics::SlotCost::kCumulated, &observer);
  for (const AdmissionEvent& e : sink.events()) {
    if (e.kind == EventKind::kPreempted) {
      EXPECT_FALSE(result.schedule.is_accepted(e.request));
    }
  }
  // Preempted events fire only for drops that had held bandwidth in an
  // earlier slice; every such drop is rejected as retro-removed (drops
  // that never started are retro-removed without a preemption event).
  EXPECT_GT(sink.count(RejectReason::kRetroRemoved), 0u);
  EXPECT_LE(sink.count(EventKind::kPreempted),
            sink.count(RejectReason::kRetroRemoved));
}

// -- Ledger + validator counters -------------------------------------------

TEST(LedgerCounters, FitsChecksAndReservationsFlow) {
  const auto requests = seeded_workload(907);
  MemorySink sink;
  CounterRegistry counters;
  Observer observer{&sink, &counters};
  const auto result =
      heuristics::schedule_rigid_fcfs(paper_network(), requests, &observer);
  // FCFS probes the ledger once per non-degenerate request; every accepted
  // request reserved both its ports.
  EXPECT_GE(counters.value(Counter::kLedgerFitsChecks), result.accepted_count());
  EXPECT_EQ(counters.value(Counter::kLedgerReservations), result.accepted_count());
  EXPECT_GE(counters.value(Counter::kLedgerFitsRejected), 1u);
}

TEST(ValidatorCounters, RunsAndAssignmentsCounted) {
  const auto requests = seeded_workload(908);
  const auto result = heuristics::schedule_rigid_fcfs(paper_network(), requests);
  CounterRegistry counters;
  Observer observer{nullptr, &counters};
  ValidateOptions options;
  options.observer = &observer;
  const auto report =
      validate_assignments(paper_network(), requests,
                           result.schedule.assignments(), options);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(counters.value(Counter::kValidatorRuns), 1u);
  EXPECT_EQ(counters.value(Counter::kValidatorAssignments),
            result.accepted_count());
  EXPECT_EQ(counters.value(Counter::kValidatorViolations), 0u);
}

// -- Utilization export -----------------------------------------------------

TEST(Utilization, SingleTransferSummaryIsExact) {
  const Network net = Network::uniform(1, 1, mbps(100));
  const std::vector<Request> rs{flexible(1, 0, 10, 100, 2.0)};
  Schedule schedule;
  schedule.accept(1, at(0), mbps(100));  // 1 GB over [0, 10)

  const auto report =
      obs::utilization_report(net, rs, schedule, TimePoint::origin(), at(20));
  ASSERT_EQ(report.ingress.size(), 1u);
  ASSERT_EQ(report.egress.size(), 1u);

  const auto& in = report.ingress[0];
  EXPECT_NEAR(in.peak.to_megabytes_per_second(), 100.0, 1e-9);
  EXPECT_NEAR(in.peak_ratio, 1.0, 1e-12);
  EXPECT_NEAR(in.carried.to_bytes(), 100e6 * 10, 1.0);
  // 10 busy seconds out of a 20 s window at full rate.
  EXPECT_NEAR(in.mean_ratio, 0.5, 1e-12);
  EXPECT_NEAR(report.total_carried().to_bytes(), 100e6 * 10, 1.0);

  // Series: load 100 MB/s at t=0, back to zero at t=10.
  ASSERT_GE(in.series.size(), 2u);
  EXPECT_NEAR(in.series.front().load.to_megabytes_per_second(), 100.0, 1e-9);
  EXPECT_NEAR(in.series.back().load.to_megabytes_per_second(), 0.0, 1e-9);
  EXPECT_NEAR(in.series.back().at.to_seconds(), 10.0, 1e-9);
}

TEST(Utilization, OverlappingTransfersStack) {
  const Network net = Network::uniform(1, 1, mbps(100));
  const std::vector<Request> rs{flexible(1, 0, 10, 50, 4.0),
                                flexible(2, 0, 10, 50, 4.0)};
  Schedule schedule;
  schedule.accept(1, at(0), mbps(50));   // [0, 10)
  schedule.accept(2, at(5), mbps(50));   // [5, 15)

  const auto report =
      obs::utilization_report(net, rs, schedule, TimePoint::origin(), at(20));
  EXPECT_NEAR(report.ingress[0].peak.to_megabytes_per_second(), 100.0, 1e-9);
  EXPECT_NEAR(report.ingress[0].carried.to_bytes(), 2 * 50e6 * 10, 1.0);
}

TEST(Utilization, WindowClampsTheIntegral) {
  const Network net = Network::uniform(1, 1, mbps(100));
  const std::vector<Request> rs{flexible(1, 0, 10, 100, 2.0)};
  Schedule schedule;
  schedule.accept(1, at(0), mbps(100));  // busy [0, 10)
  const auto report =
      obs::utilization_report(net, rs, schedule, TimePoint::origin(), at(5));
  EXPECT_NEAR(report.ingress[0].carried.to_bytes(), 100e6 * 5, 1.0);
  EXPECT_NEAR(report.ingress[0].mean_ratio, 1.0, 1e-12);
}

TEST(Utilization, WritersEmitStableShapes) {
  const Network net = Network::uniform(2, 2, mbps(100));
  const std::vector<Request> rs{flexible(1, 0, 10, 100, 2.0, 1, 0)};
  Schedule schedule;
  schedule.accept(1, at(0), mbps(100));
  const auto report =
      obs::utilization_report(net, rs, schedule, TimePoint::origin(), at(20));

  std::ostringstream csv;
  obs::UtilizationReport::write_csv_header(csv);
  report.write_csv(csv, "FCFS");
  const std::string csv_text = csv.str();
  EXPECT_NE(csv_text.find("scheduler,row,kind,port"), std::string::npos);
  EXPECT_NE(csv_text.find("FCFS,summary,ingress,1"), std::string::npos);
  EXPECT_NE(csv_text.find("FCFS,summary,egress,0"), std::string::npos);

  std::ostringstream json;
  report.write_json(json, "FCFS");
  const std::string json_text = json.str();
  EXPECT_EQ(json_text.front(), '{');
  EXPECT_NE(json_text.find(R"("scheduler":"FCFS")"), std::string::npos);
  EXPECT_NE(json_text.find(R"("ingress":[)"), std::string::npos);

  // Byte-stable across repeat exports (shortest-round-trip doubles).
  std::ostringstream json2;
  report.write_json(json2, "FCFS");
  EXPECT_EQ(json_text, json2.str());
}

// -- Retry engine -----------------------------------------------------------

TEST(RetryObservability, ResidualOccupancyDrainsToZero) {
  const workload::Scenario scenario = workload::paper_flexible(
      Duration::seconds(0.5), Duration::seconds(600), 4.0);
  Rng rng{909};
  const auto requests = workload::generate(scenario.spec, rng);
  heuristics::RetryPolicy retry;
  retry.max_attempts = 3;
  retry.initial_backoff = Duration::seconds(30);
  MemorySink sink;
  CounterRegistry counters;
  Observer observer{&sink, &counters};
  const auto out = heuristics::schedule_greedy_with_retries(
      scenario.network, requests, heuristics::BandwidthPolicy::fraction_of_max(1.0),
      retry, &observer);
  // The final completion drain must return every reserved byte/s: the
  // residual gauge is the regression for the never-drained-after-last-pop
  // bug.
  EXPECT_EQ(counters.value(Counter::kRetryResidualBps), 0u);
  // Every acceptance is eventually reclaimed.
  EXPECT_EQ(sink.count(EventKind::kReclaimed), out.result.accepted_count());
  // Retried events match the engine's own accounting.
  EXPECT_EQ(sink.count(EventKind::kRetried), out.retries_issued);
  // First submissions only: attempts are narrated via retried events.
  EXPECT_EQ(sink.count(EventKind::kSubmitted), requests.size());
}

TEST(RetryObservability, ExhaustedRetriesUseTheTerminalReason) {
  const Network net = Network::uniform(1, 1, mbps(100));
  const std::vector<Request> rs{flexible(1, 0, 1000, 100, 4.0),
                                flexible(2, 5, 10, 100, 4.0)};
  heuristics::RetryPolicy retry;
  retry.max_attempts = 3;
  retry.initial_backoff = Duration::seconds(10);
  MemorySink sink;
  CounterRegistry counters;
  Observer observer{&sink, &counters};
  const auto out = heuristics::schedule_greedy_with_retries(
      net, rs, heuristics::BandwidthPolicy::fraction_of_max(1.0), retry, &observer);
  ASSERT_EQ(out.result.rejected.size(), 1u);
  EXPECT_EQ(sink.count(RejectReason::kRetriesExhausted), 1u);
  EXPECT_EQ(sink.count(EventKind::kRetried), 2u);
  EXPECT_EQ(counters.value(Counter::kRetryResidualBps), 0u);
}

}  // namespace
}  // namespace gridbw
