// Unit tests for the statistics helpers.

#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/random.hpp"

namespace gridbw {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stderr_mean(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, MatchesHandComputedMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, WelfordIsNumericallyStable) {
  // Large offset + small variance: the naive sum-of-squares formula loses
  // all precision here.
  RunningStats s;
  const double offset = 1e9;
  for (double x : {offset + 1, offset + 2, offset + 3}) s.add(x);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng{21};
  RunningStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3, 9);
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  b.merge(a);  // empty.merge(full)
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
  RunningStats empty;
  b.merge(empty);  // full.merge(empty)
  EXPECT_EQ(b.count(), 2u);
}

TEST(ConfidenceInterval, CoversTheMeanSymmetrically) {
  RunningStats s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  const auto ci = confidence_interval(s, 0.95);
  EXPECT_TRUE(ci.contains(s.mean()));
  EXPECT_NEAR((ci.lo + ci.hi) / 2.0, s.mean(), 1e-9);
  // z(95%) = 1.96; half-width = z * stderr.
  EXPECT_NEAR(ci.half_width(), 1.959964 * s.stderr_mean(), 1e-4);
}

TEST(ConfidenceInterval, WiderLevelsGiveWiderIntervals) {
  RunningStats s;
  for (int i = 0; i < 50; ++i) s.add(i % 7);
  EXPECT_LT(confidence_interval(s, 0.90).half_width(),
            confidence_interval(s, 0.99).half_width());
}

TEST(ConfidenceInterval, RejectsBadLevels) {
  RunningStats s;
  s.add(1);
  s.add(2);
  EXPECT_THROW((void)confidence_interval(s, 0.0), std::invalid_argument);
  EXPECT_THROW((void)confidence_interval(s, 1.0), std::invalid_argument);
}

TEST(Percentile, ExactOnSmallSets) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 2.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  const std::vector<double> xs{0, 10};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.9), 9.0);
}

TEST(Percentile, InputOrderIrrelevant) {
  const std::vector<double> xs{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 3.0);
}

TEST(Percentile, Errors) {
  EXPECT_THROW((void)percentile(std::vector<double>{}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)percentile(std::vector<double>{1.0}, 1.5), std::invalid_argument);
}

TEST(Summarize, FullSummary) {
  const std::vector<double> xs{1, 2, 3, 4, 100};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 22.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
}

TEST(Summarize, EmptyGivesZeros) {
  const Summary s = summarize(std::vector<double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(FormatMeanCi, RendersPlusMinus) {
  RunningStats s;
  for (int i = 0; i < 16; ++i) s.add(0.5);
  EXPECT_EQ(format_mean_ci(s), "0.5000 ± 0.0000");
}

}  // namespace
}  // namespace gridbw
