// Differential proof that the three validator engines — kReference
// (StepFunction, serial), kSerial (flat TimelineProfile), and kParallel
// (flat profiles, per-port thread-pool sweep) — emit identical
// ValidationReports, on randomized 10k-request workloads across several
// seeds, both for clean schedules and for schedules with injected
// violations of every kind (ISSUE acceptance criterion).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/validate.hpp"
#include "workload/generator.hpp"
#include "workload/load.hpp"
#include "workload/scenario.hpp"

namespace gridbw {
namespace {

constexpr std::uint64_t kSeeds[] = {11, 4242, 987654321};

struct BigWorkload {
  workload::Scenario scenario;
  std::vector<Request> requests;
};

BigWorkload big_workload(std::uint64_t seed, std::size_t count) {
  workload::Scenario scenario =
      workload::paper_flexible(Duration::seconds(1), Duration::seconds(1), 4.0);
  scenario.spec.mean_interarrival =
      workload::interarrival_for_load(scenario.spec, scenario.network, 3.0);
  scenario.spec.horizon =
      scenario.spec.mean_interarrival * static_cast<double>(count);
  Rng rng{seed};
  auto requests = workload::generate(scenario.spec, rng);
  if (requests.size() > count) requests.resize(count);
  return BigWorkload{std::move(scenario), std::move(requests)};
}

/// Accept-all schedule at MinRate, with a sprinkling of deliberate
/// per-request violations so the reports are non-trivial.
std::vector<Assignment> assignments_with_faults(std::span<const Request> requests) {
  std::vector<Assignment> assignments;
  assignments.reserve(requests.size());
  for (std::size_t k = 0; k < requests.size(); ++k) {
    const Request& r = requests[k];
    Assignment a{r.id, r.release, r.min_rate()};
    if (k % 97 == 13) a.start = r.release - Duration::seconds(5);   // too early
    if (k % 131 == 7) a.bw = r.max_rate * 1.5;                      // above MaxRate
    if (k % 173 == 11) a.bw = Bandwidth::zero();                    // non-positive
    assignments.push_back(a);
  }
  return assignments;
}

void expect_same_report(const ValidationReport& a, const ValidationReport& b,
                        const std::string& label) {
  ASSERT_EQ(a.violations.size(), b.violations.size()) << label;
  for (std::size_t k = 0; k < a.violations.size(); ++k) {
    EXPECT_EQ(a.violations[k].kind, b.violations[k].kind) << label << " #" << k;
    EXPECT_EQ(a.violations[k].request, b.violations[k].request) << label << " #" << k;
    EXPECT_EQ(a.violations[k].port, b.violations[k].port) << label << " #" << k;
    EXPECT_EQ(a.violations[k].detail, b.violations[k].detail) << label << " #" << k;
  }
}

ValidateOptions with_engine(ValidateEngine engine, double f = 0.0) {
  ValidateOptions options;
  options.min_rate_guarantee = f;
  options.engine = engine;
  options.threads = 4;
  return options;
}

TEST(ValidateEngines, IdenticalReportsOnRandomized10kWorkloads) {
  for (const std::uint64_t seed : kSeeds) {
    const auto [scenario, requests] = big_workload(seed, 10000);
    ASSERT_GT(requests.size(), 5000u);
    const auto assignments = assignments_with_faults(requests);

    const auto reference = validate_assignments(
        scenario.network, requests, assignments, with_engine(ValidateEngine::kReference));
    const auto serial = validate_assignments(
        scenario.network, requests, assignments, with_engine(ValidateEngine::kSerial));
    const auto parallel = validate_assignments(
        scenario.network, requests, assignments, with_engine(ValidateEngine::kParallel));

    // The overloaded accept-all schedule must actually trip port capacity.
    EXPECT_FALSE(reference.ok()) << "seed=" << seed;
    expect_same_report(reference, serial, "serial seed=" + std::to_string(seed));
    expect_same_report(reference, parallel, "parallel seed=" + std::to_string(seed));
  }
}

TEST(ValidateEngines, IdenticalReportsWithGuaranteeFloor) {
  const auto [scenario, requests] = big_workload(kSeeds[0], 10000);
  const auto assignments = assignments_with_faults(requests);
  const auto reference =
      validate_assignments(scenario.network, requests, assignments,
                           with_engine(ValidateEngine::kReference, 0.5));
  const auto parallel =
      validate_assignments(scenario.network, requests, assignments,
                           with_engine(ValidateEngine::kParallel, 0.5));
  expect_same_report(reference, parallel, "guarantee-floor");
}

TEST(ValidateEngines, AutoMatchesForcedEnginesEitherSideOfThreshold) {
  const auto [scenario, requests] = big_workload(kSeeds[1], 10000);
  const auto assignments = assignments_with_faults(requests);
  for (const std::size_t threshold : {std::size_t{0}, std::size_t{1u << 20}}) {
    ValidateOptions options;
    options.engine = ValidateEngine::kAuto;
    options.parallel_threshold = threshold;  // force parallel / force serial
    options.threads = 4;
    const auto auto_report =
        validate_assignments(scenario.network, requests, assignments, options);
    const auto reference = validate_assignments(
        scenario.network, requests, assignments, with_engine(ValidateEngine::kReference));
    expect_same_report(reference, auto_report,
                       "auto threshold=" + std::to_string(threshold));
  }
}

TEST(ValidateEngines, ScheduleOverloadAgreesWithAssignmentSpan) {
  const auto [scenario, requests] = big_workload(kSeeds[2], 2000);
  Schedule schedule;
  for (const Request& r : requests) schedule.accept(r.id, r.release, r.min_rate());
  const auto via_schedule =
      validate_schedule(scenario.network, requests, schedule, ValidateOptions{});
  const auto via_span = validate_assignments(scenario.network, requests,
                                             schedule.assignments(), ValidateOptions{});
  expect_same_report(via_schedule, via_span, "schedule-vs-span");
}

TEST(ValidateEngines, DuplicateAssignmentsFlaggedIdenticallyByAllEngines) {
  const auto [scenario, requests] = big_workload(kSeeds[0], 2000);
  auto assignments = assignments_with_faults(requests);
  // Duplicate every 211th assignment (same id, different placement).
  const std::size_t original = assignments.size();
  for (std::size_t k = 0; k < original; k += 211) {
    Assignment copy = assignments[k];
    copy.start += Duration::seconds(1);
    assignments.push_back(copy);
  }
  const auto reference = validate_assignments(
      scenario.network, requests, assignments, with_engine(ValidateEngine::kReference));
  const auto parallel = validate_assignments(
      scenario.network, requests, assignments, with_engine(ValidateEngine::kParallel));
  std::size_t duplicates = 0;
  for (const auto& v : reference.violations) {
    duplicates += v.kind == ViolationKind::kDuplicateAssignment ? 1 : 0;
  }
  EXPECT_EQ(duplicates, (original + 210) / 211);
  expect_same_report(reference, parallel, "duplicates");
}

}  // namespace
}  // namespace gridbw
