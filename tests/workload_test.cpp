// Unit tests for workload generation, load accounting, traces, scenarios.

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "workload/generator.hpp"
#include "workload/load.hpp"
#include "workload/scenario.hpp"
#include "workload/trace.hpp"
#include "workload/volume_law.hpp"

namespace gridbw::workload {
namespace {

TEST(VolumeLaw, PaperSupportHas19Values) {
  const VolumeLaw law = VolumeLaw::paper();
  ASSERT_EQ(law.support().size(), 19u);
  EXPECT_EQ(law.support().front(), Volume::gigabytes(10));
  EXPECT_EQ(law.support().back(), Volume::terabytes(1));
}

TEST(VolumeLaw, PaperMean) {
  // (10+...+90) + (100+...+900) + 1000 = 450 + 4500 + 1000 = 5950 GB over 19.
  EXPECT_NEAR(VolumeLaw::paper().mean().to_gigabytes(), 5950.0 / 19.0, 1e-9);
}

TEST(VolumeLaw, SamplesStayInSupport) {
  const VolumeLaw law = VolumeLaw::paper();
  std::set<double> support;
  for (Volume v : law.support()) support.insert(v.to_bytes());
  Rng rng{1};
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(support.count(law.sample(rng).to_bytes()), 1u);
  }
}

TEST(VolumeLaw, ConstantLaw) {
  const VolumeLaw law = VolumeLaw::constant(Volume::gigabytes(5));
  Rng rng{2};
  EXPECT_EQ(law.sample(rng), Volume::gigabytes(5));
  EXPECT_EQ(law.mean(), Volume::gigabytes(5));
}

TEST(VolumeLaw, RejectsBadSupport) {
  EXPECT_THROW(VolumeLaw{std::vector<Volume>{}}, std::invalid_argument);
  EXPECT_THROW(VolumeLaw{std::vector<Volume>{Volume::zero()}}, std::invalid_argument);
}

TEST(SlackLaw, RigidAlwaysOne) {
  Rng rng{3};
  const SlackLaw law = SlackLaw::rigid();
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(law.sample(rng), 1.0);
}

TEST(SlackLaw, FlexibleStaysInRange) {
  Rng rng{4};
  const SlackLaw law = SlackLaw::flexible(1.5, 4.0);
  for (int i = 0; i < 500; ++i) {
    const double s = law.sample(rng);
    EXPECT_GE(s, 1.5);
    EXPECT_LT(s, 4.0);
  }
  EXPECT_DOUBLE_EQ(law.mean(), 2.75);
}

WorkloadSpec small_spec() {
  WorkloadSpec spec;
  spec.ingress_count = 4;
  spec.egress_count = 3;
  spec.mean_interarrival = Duration::seconds(2);
  spec.horizon = Duration::seconds(500);
  return spec;
}

TEST(Generator, DeterministicForSameSeed) {
  const WorkloadSpec spec = small_spec();
  Rng a{99}, b{99};
  const auto ra = generate(spec, a);
  const auto rb = generate(spec, b);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t k = 0; k < ra.size(); ++k) {
    EXPECT_EQ(ra[k].id, rb[k].id);
    EXPECT_EQ(ra[k].release, rb[k].release);
    EXPECT_EQ(ra[k].volume, rb[k].volume);
    EXPECT_EQ(ra[k].max_rate, rb[k].max_rate);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  const WorkloadSpec spec = small_spec();
  Rng a{1}, b{2};
  const auto ra = generate(spec, a);
  const auto rb = generate(spec, b);
  // With hundreds of requests the traces cannot coincide.
  bool any_diff = ra.size() != rb.size();
  for (std::size_t k = 0; !any_diff && k < ra.size(); ++k) {
    any_diff = ra[k].volume != rb[k].volume || ra[k].release != rb[k].release;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Generator, ArrivalsOrderedWithinHorizon) {
  const WorkloadSpec spec = small_spec();
  Rng rng{7};
  const auto rs = generate(spec, rng);
  ASSERT_GT(rs.size(), 50u);
  for (std::size_t k = 0; k < rs.size(); ++k) {
    EXPECT_GE(rs[k].release.to_seconds(), 0.0);
    EXPECT_LT(rs[k].release.to_seconds(), spec.horizon.to_seconds());
    if (k > 0) {
      EXPECT_GE(rs[k].release, rs[k - 1].release);
    }
    EXPECT_EQ(rs[k].id, spec.first_id + k);
  }
}

TEST(Generator, RequestsAreWellFormed) {
  WorkloadSpec spec = small_spec();
  spec.slack = SlackLaw::flexible(1.0, 4.0);
  Rng rng{8};
  for (const Request& r : generate(spec, rng)) {
    EXPECT_TRUE(r.is_well_formed()) << r.describe();
    EXPECT_LT(r.ingress.value, spec.ingress_count);
    EXPECT_LT(r.egress.value, spec.egress_count);
    EXPECT_GE(r.max_rate, spec.min_host_rate);
    EXPECT_LE(r.max_rate, spec.max_host_rate);
  }
}

TEST(Generator, RigidSlackMakesRigidRequests) {
  const WorkloadSpec spec = small_spec();  // slack = rigid by default
  Rng rng{9};
  for (const Request& r : generate(spec, rng)) {
    EXPECT_TRUE(r.is_rigid()) << r.describe();
  }
}

TEST(Generator, PoissonCountNearExpectation) {
  WorkloadSpec spec = small_spec();
  spec.mean_interarrival = Duration::seconds(1);
  spec.horizon = Duration::seconds(10000);
  Rng rng{10};
  const auto rs = generate(spec, rng);
  EXPECT_NEAR(static_cast<double>(rs.size()), 10000.0, 400.0);  // ~4 sigma
}

TEST(Generator, RejectsBadSpecs) {
  WorkloadSpec spec = small_spec();
  spec.ingress_count = 0;
  Rng rng{11};
  EXPECT_THROW((void)generate(spec, rng), std::invalid_argument);
  WorkloadSpec spec2 = small_spec();
  spec2.mean_interarrival = Duration::zero();
  EXPECT_THROW((void)generate(spec2, rng), std::invalid_argument);
}

TEST(Load, ExpectedOfferedLoadMatchesFormula) {
  const WorkloadSpec spec = small_spec();
  const Network net = Network::uniform(4, 3, Bandwidth::gigabytes_per_second(1));
  // lambda = 0.5/s, E[vol] = 5950/19 GB, C/2 = 3.5 GB/s.
  const double expected = 0.5 * (5950.0 / 19.0) / 3.5;
  EXPECT_NEAR(expected_offered_load(spec, net), expected, 1e-9);
}

TEST(Load, InterarrivalForLoadInvertsExpectedLoad) {
  WorkloadSpec spec = small_spec();
  const Network net = Network::uniform(4, 3, Bandwidth::gigabytes_per_second(1));
  for (double target : {0.25, 1.0, 4.0}) {
    spec.mean_interarrival = interarrival_for_load(spec, net, target);
    EXPECT_NEAR(expected_offered_load(spec, net), target, 1e-9);
  }
  EXPECT_THROW((void)interarrival_for_load(spec, net, 0.0), std::invalid_argument);
}

TEST(Load, DemandRatioCountsMinRates) {
  const Network net = Network::uniform(1, 1, Bandwidth::megabytes_per_second(100));
  std::vector<Request> rs;
  rs.push_back(RequestBuilder{1}
                   .from(IngressId{0})
                   .to(EgressId{0})
                   .rigid(TimePoint::at_seconds(0), Duration::seconds(10),
                          Bandwidth::megabytes_per_second(50))
                   .build());
  // 50 MB/s demand over (100+100)/2 = 100 MB/s capacity.
  EXPECT_NEAR(demand_ratio(rs, net), 0.5, 1e-12);
}

TEST(Load, OfferedLoadIsTimeNormalized) {
  const Network net = Network::uniform(1, 1, Bandwidth::megabytes_per_second(100));
  std::vector<Request> rs;
  // 1 GB over a 100 s span on a 100 MB/s network -> 10 MB/s / 100 MB/s = 0.1.
  rs.push_back(RequestBuilder{1}
                   .from(IngressId{0})
                   .to(EgressId{0})
                   .window(TimePoint::at_seconds(0), TimePoint::at_seconds(100))
                   .volume(Volume::gigabytes(1))
                   .max_rate(Bandwidth::megabytes_per_second(100))
                   .build());
  EXPECT_NEAR(offered_load(rs, net), 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(offered_load(std::vector<Request>{}, net), 0.0);
}

TEST(Trace, RoundTripsExactly) {
  WorkloadSpec spec = small_spec();
  spec.slack = SlackLaw::flexible(1.0, 3.0);
  Rng rng{12};
  const auto original = generate(spec, rng);
  std::stringstream ss;
  write_trace(ss, original);
  const auto loaded = read_trace(ss);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t k = 0; k < loaded.size(); ++k) {
    EXPECT_EQ(loaded[k].id, original[k].id);
    EXPECT_EQ(loaded[k].ingress, original[k].ingress);
    EXPECT_EQ(loaded[k].egress, original[k].egress);
    EXPECT_NEAR(loaded[k].release.to_seconds(), original[k].release.to_seconds(), 1e-6);
    EXPECT_NEAR(loaded[k].deadline.to_seconds(), original[k].deadline.to_seconds(), 1e-6);
    EXPECT_NEAR(loaded[k].volume.to_bytes(), original[k].volume.to_bytes(), 1.0);
    EXPECT_NEAR(loaded[k].max_rate.to_bytes_per_second(),
                original[k].max_rate.to_bytes_per_second(), 1.0);
  }
}

TEST(Trace, RejectsWrongHeader) {
  std::stringstream ss{"not,a,trace\n"};
  EXPECT_THROW((void)read_trace(ss), std::runtime_error);
}

TEST(Trace, RejectsWrongFieldCount) {
  std::stringstream ss;
  ss << "id,ingress,egress,release_s,deadline_s,volume_bytes,max_rate_bps\n";
  ss << "1,0,0,0.0\n";
  EXPECT_THROW((void)read_trace(ss), std::runtime_error);
}

TEST(Trace, RejectsIllFormedRequest) {
  std::stringstream ss;
  ss << "id,ingress,egress,release_s,deadline_s,volume_bytes,max_rate_bps\n";
  ss << "1,0,0,10.0,5.0,1000,1000\n";  // deadline before release
  EXPECT_THROW((void)read_trace(ss), std::runtime_error);
}

TEST(Scenario, PaperRigidMatchesSection43) {
  const Scenario s = paper_rigid(Duration::seconds(5), Duration::seconds(100));
  EXPECT_EQ(s.network.ingress_count(), 10u);
  EXPECT_EQ(s.network.egress_count(), 10u);
  EXPECT_EQ(s.network.ingress_capacity(IngressId{0}),
            Bandwidth::gigabytes_per_second(1));
  EXPECT_DOUBLE_EQ(s.spec.slack.max_slack, 1.0);
  EXPECT_EQ(s.spec.volumes.support().size(), 19u);
}

TEST(Scenario, FlexiblePresetsHaveSlack) {
  const Scenario heavy = paper_flexible_heavy(Duration::seconds(1));
  EXPECT_GT(heavy.spec.slack.max_slack, 1.0);
  const Scenario light = paper_flexible_light(Duration::seconds(10));
  EXPECT_EQ(light.spec.mean_interarrival, Duration::seconds(10));
}

}  // namespace
}  // namespace gridbw::workload
