// Unit tests for the request model and builder.

#include "core/request.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/random.hpp"

namespace gridbw {
namespace {

Request sample() {
  return RequestBuilder{7}
      .from(IngressId{2})
      .to(EgressId{5})
      .window(TimePoint::at_seconds(10), TimePoint::at_seconds(110))
      .volume(Volume::gigabytes(50))
      .max_rate(Bandwidth::gigabytes_per_second(1))
      .build();
}

TEST(Request, MinRateIsVolumeOverWindow) {
  const Request r = sample();
  EXPECT_DOUBLE_EQ(r.min_rate().to_megabytes_per_second(), 500.0);
  EXPECT_EQ(r.window(), Duration::seconds(100));
}

TEST(Request, MinRateFromDelayedStart) {
  const Request r = sample();
  // Starting at t=60 leaves 50 s for 50 GB -> 1 GB/s.
  EXPECT_DOUBLE_EQ(r.min_rate_from(TimePoint::at_seconds(60)).to_gigabytes_per_second(),
                   1.0);
  // Starting at/after the deadline is impossible.
  EXPECT_FALSE(r.min_rate_from(TimePoint::at_seconds(110)).is_finite());
  EXPECT_FALSE(r.min_rate_from(TimePoint::at_seconds(200)).is_finite());
}

TEST(Request, TransferTime) {
  const Request r = sample();
  EXPECT_DOUBLE_EQ(r.transfer_time(Bandwidth::gigabytes_per_second(1)).to_seconds(),
                   50.0);
}

TEST(Request, RigidDetection) {
  Request r = sample();
  EXPECT_FALSE(r.is_rigid());  // MinRate 0.5 GB/s < MaxRate 1 GB/s
  r.max_rate = r.min_rate();
  EXPECT_TRUE(r.is_rigid());
}

TEST(Request, WellFormedness) {
  Request r = sample();
  EXPECT_TRUE(r.is_well_formed());

  Request empty_window = r;
  empty_window.deadline = empty_window.release;
  EXPECT_FALSE(empty_window.is_well_formed());

  Request zero_volume = r;
  zero_volume.volume = Volume::zero();
  EXPECT_FALSE(zero_volume.is_well_formed());

  Request too_slow = r;
  too_slow.max_rate = Bandwidth::megabytes_per_second(1);  // < MinRate
  EXPECT_FALSE(too_slow.is_well_formed());

  Request inf_rate = r;
  inf_rate.max_rate = Bandwidth::infinity();
  EXPECT_FALSE(inf_rate.is_well_formed());
}

TEST(RequestBuilder, ThrowsOnIllFormed) {
  EXPECT_THROW((void)RequestBuilder{1}
                   .from(IngressId{0})
                   .to(EgressId{0})
                   .window(TimePoint::at_seconds(5), TimePoint::at_seconds(5))
                   .volume(Volume::gigabytes(1))
                   .max_rate(Bandwidth::gigabytes_per_second(1))
                   .build(),
               std::invalid_argument);
}

TEST(RequestBuilder, RigidConvenience) {
  const Request r = RequestBuilder{3}
                        .from(IngressId{1})
                        .to(EgressId{2})
                        .rigid(TimePoint::at_seconds(0), Duration::seconds(10),
                               Bandwidth::megabytes_per_second(100))
                        .build();
  EXPECT_TRUE(r.is_rigid());
  EXPECT_EQ(r.volume, Volume::gigabytes(1));
  EXPECT_EQ(r.deadline, TimePoint::at_seconds(10));
  EXPECT_EQ(r.min_rate(), Bandwidth::megabytes_per_second(100));
}

TEST(Request, DescribeMentionsEndpointsAndWindow) {
  const std::string s = sample().describe();
  EXPECT_NE(s.find("r7"), std::string::npos);
  EXPECT_NE(s.find("in2->out5"), std::string::npos);
  EXPECT_NE(s.find("50.0 GB"), std::string::npos);
}

TEST(SortFcfs, OrdersByReleaseThenRate) {
  std::vector<Request> rs;
  rs.push_back(RequestBuilder{1}
                   .from(IngressId{0})
                   .to(EgressId{0})
                   .rigid(TimePoint::at_seconds(5), Duration::seconds(10),
                          Bandwidth::megabytes_per_second(100))
                   .build());
  rs.push_back(RequestBuilder{2}
                   .from(IngressId{0})
                   .to(EgressId{0})
                   .rigid(TimePoint::at_seconds(1), Duration::seconds(10),
                          Bandwidth::megabytes_per_second(500))
                   .build());
  rs.push_back(RequestBuilder{3}
                   .from(IngressId{0})
                   .to(EgressId{0})
                   .rigid(TimePoint::at_seconds(1), Duration::seconds(10),
                          Bandwidth::megabytes_per_second(100))
                   .build());
  sort_fcfs(rs);
  // t=1 first; among them the smaller rate (id 3) precedes.
  EXPECT_EQ(rs[0].id, 3u);
  EXPECT_EQ(rs[1].id, 2u);
  EXPECT_EQ(rs[2].id, 1u);
}

TEST(SortFcfs, TieBreaksById) {
  std::vector<Request> rs;
  for (RequestId id : {9u, 4u, 6u}) {
    rs.push_back(RequestBuilder{id}
                     .from(IngressId{0})
                     .to(EgressId{0})
                     .rigid(TimePoint::at_seconds(1), Duration::seconds(10),
                            Bandwidth::megabytes_per_second(100))
                     .build());
  }
  sort_fcfs(rs);
  EXPECT_EQ(rs[0].id, 4u);
  EXPECT_EQ(rs[1].id, 6u);
  EXPECT_EQ(rs[2].id, 9u);
}

TEST(SortFcfs, CollidingArrivalsAreDeterministicAcrossInputPermutations) {
  // Regression: a whole batch arriving at the same instant with identical
  // MinRates must sort into the same (id-ascending) order no matter how the
  // input was permuted — trace replays and batch arrivals depend on it.
  auto make = [](RequestId id) {
    return RequestBuilder{id}
        .from(IngressId{0})
        .to(EgressId{0})
        .rigid(TimePoint::at_seconds(42), Duration::seconds(10),
               Bandwidth::megabytes_per_second(100))
        .build();
  };
  std::vector<Request> forward, backward, shuffled;
  for (RequestId id = 1; id <= 32; ++id) forward.push_back(make(id));
  for (RequestId id = 32; id >= 1; --id) backward.push_back(make(id));
  Rng rng{7};
  shuffled = forward;
  rng.shuffle(shuffled);

  sort_fcfs(forward);
  sort_fcfs(backward);
  sort_fcfs(shuffled);
  for (std::size_t k = 0; k < forward.size(); ++k) {
    EXPECT_EQ(forward[k].id, k + 1);
    EXPECT_EQ(backward[k].id, forward[k].id);
    EXPECT_EQ(shuffled[k].id, forward[k].id);
  }
}

TEST(SortFcfs, CollidingArrivalsStillOrderByMinRateFirst) {
  // Same release, different MinRates: the §4.1 small-demands-first order
  // must win over the id tie-break.
  std::vector<Request> rs;
  rs.push_back(RequestBuilder{1}
                   .from(IngressId{0})
                   .to(EgressId{0})
                   .rigid(TimePoint::at_seconds(5), Duration::seconds(10),
                          Bandwidth::megabytes_per_second(300))
                   .build());
  rs.push_back(RequestBuilder{2}
                   .from(IngressId{0})
                   .to(EgressId{0})
                   .rigid(TimePoint::at_seconds(5), Duration::seconds(10),
                          Bandwidth::megabytes_per_second(100))
                   .build());
  sort_fcfs(rs);
  EXPECT_EQ(rs[0].id, 2u);
  EXPECT_EQ(rs[1].id, 1u);
}

TEST(TotalDemand, SumsMinRates) {
  std::vector<Request> rs;
  rs.push_back(RequestBuilder{1}
                   .from(IngressId{0})
                   .to(EgressId{0})
                   .rigid(TimePoint::at_seconds(0), Duration::seconds(10),
                          Bandwidth::megabytes_per_second(100))
                   .build());
  rs.push_back(RequestBuilder{2}
                   .from(IngressId{0})
                   .to(EgressId{0})
                   .rigid(TimePoint::at_seconds(0), Duration::seconds(10),
                          Bandwidth::megabytes_per_second(300))
                   .build());
  EXPECT_EQ(total_demand(rs), Bandwidth::megabytes_per_second(400));
  EXPECT_EQ(total_demand(std::vector<Request>{}), Bandwidth::zero());
}

}  // namespace
}  // namespace gridbw
