// Tests for the malleable (piecewise-constant rate) scheduler family.
//
// The two contracts under test:
//  * reshape=false is a drop-in for the constant engines: over seeded
//    paper workloads the schedule CSV, the JSONL trace, and the rejected
//    list are byte/element-identical to schedule_flexible_greedy /
//    schedule_flexible_window (the differential suite ISSUE 9 pins);
//  * reshape=true only moves execution, never admission safety: schedules
//    validate cleanly (floors, port capacity, deadlines), profiles carry
//    exactly vol(r), and constructed workloads show the accept-rate gain
//    that earlier guarantee reclaim buys.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/schedule_io.hpp"
#include "core/validate.hpp"
#include "heuristics/flexible_greedy.hpp"
#include "heuristics/flexible_window.hpp"
#include "heuristics/malleable.hpp"
#include "heuristics/registry.hpp"
#include "obs/counters.hpp"
#include "obs/observer.hpp"
#include "obs/trace_sink.hpp"
#include "workload/generator.hpp"
#include "workload/scenario.hpp"

namespace gridbw::heuristics {
namespace {

TimePoint at(double s) { return TimePoint::at_seconds(s); }
Bandwidth mbps(double m) { return Bandwidth::megabytes_per_second(m); }

Request transfer(RequestId id, double release, double deadline, double vol_mb,
                 double max_mbps, std::size_t in = 0, std::size_t out = 0) {
  return RequestBuilder{id}
      .from(IngressId{in})
      .to(EgressId{out})
      .window(at(release), at(deadline))
      .volume(Volume::megabytes(vol_mb))
      .max_rate(mbps(max_mbps))
      .build();
}

struct TracedRun {
  std::string csv;
  std::string trace;
  std::vector<RequestId> rejected;
};

TracedRun traced(const Network& network, std::span<const Request> requests,
                 const NamedScheduler& scheduler) {
  std::ostringstream trace_out;
  obs::JsonlSink sink{trace_out};
  obs::CounterRegistry counters;
  obs::Observer observer{&sink, &counters};
  const ScheduleResult result = scheduler.run(network, requests, &observer);
  sink.flush();
  std::ostringstream csv_out;
  write_schedule(csv_out, result.schedule);
  return TracedRun{csv_out.str(), trace_out.str(), result.rejected};
}

std::vector<Request> seeded_workload(std::uint64_t seed, double interarrival) {
  const workload::Scenario scenario = workload::paper_flexible(
      Duration::seconds(interarrival), Duration::seconds(400), 4.0);
  Rng rng{seed};
  return workload::generate(scenario.spec, rng);
}

Network seeded_network() {
  return workload::paper_flexible(Duration::seconds(1), Duration::seconds(400), 4.0)
      .network;
}

// -- reshape=false: byte-identical to the constant engines ------------------

TEST(MalleableDifferential, RigidGreedyMatchesFlexibleGreedyByteForByte) {
  const Network net = seeded_network();
  for (const std::uint64_t seed : {42u, 7u, 1234u}) {
    for (const double ia : {0.3, 1.0, 3.0}) {
      const auto requests = seeded_workload(seed, ia);
      for (const auto& policy :
           {BandwidthPolicy::min_rate(), BandwidthPolicy::fraction_of_max(1.0),
            BandwidthPolicy::fraction_of_max(0.5)}) {
        MalleableOptions opt;
        opt.policy = policy;
        opt.reshape = false;
        const TracedRun rigid = traced(net, requests, make_malleable_greedy(opt));
        const TracedRun constant = traced(net, requests, make_greedy(policy));
        // Traces interleave submitted/accepted/rejected/reclaimed in decision
        // order, so equality here pins the full event sequence, not just the
        // outcome sets.
        EXPECT_EQ(rigid.trace, constant.trace) << "seed=" << seed << " ia=" << ia;
        EXPECT_EQ(rigid.csv, constant.csv) << "seed=" << seed << " ia=" << ia;
        EXPECT_EQ(rigid.rejected, constant.rejected);
      }
    }
  }
}

TEST(MalleableDifferential, RigidWindowMatchesFlexibleWindowByteForByte) {
  const Network net = seeded_network();
  for (const std::uint64_t seed : {42u, 99u}) {
    for (const double step : {50.0, 400.0}) {
      const auto requests = seeded_workload(seed, 0.5);
      MalleableOptions mopt;
      mopt.policy = BandwidthPolicy::min_rate();
      mopt.reshape = false;
      mopt.step = Duration::seconds(step);
      WindowOptions wopt;
      wopt.policy = BandwidthPolicy::min_rate();
      wopt.step = Duration::seconds(step);
      wopt.engine = WindowEngine::kScan;  // the malleable drain is the scan
      const TracedRun rigid = traced(net, requests, make_malleable_window(mopt));
      const TracedRun constant = traced(net, requests, make_window(wopt));
      EXPECT_EQ(rigid.trace, constant.trace) << "seed=" << seed << " step=" << step;
      EXPECT_EQ(rigid.csv, constant.csv) << "seed=" << seed << " step=" << step;
      EXPECT_EQ(rigid.rejected, constant.rejected);
    }
  }
}

TEST(MalleableDifferential, WindowHeapAndScanStillAgreeWithRigidMalleable) {
  // The heap engine makes identical decisions to the scan; the malleable
  // differential must therefore hold against it too (trace modulo nothing:
  // drain engines do not emit events, only counters).
  const Network net = seeded_network();
  const auto requests = seeded_workload(42, 0.5);
  MalleableOptions mopt;
  mopt.policy = BandwidthPolicy::min_rate();
  mopt.reshape = false;
  WindowOptions wopt;
  wopt.policy = BandwidthPolicy::min_rate();
  wopt.engine = WindowEngine::kHeap;
  const TracedRun rigid = traced(net, requests, make_malleable_window(mopt));
  const TracedRun heap = traced(net, requests, make_window(wopt));
  EXPECT_EQ(rigid.trace, heap.trace);
  EXPECT_EQ(rigid.csv, heap.csv);
}

// -- reshape=true: safety ----------------------------------------------------

TEST(Malleable, ReshapedSchedulesValidateCleanly) {
  const Network net = seeded_network();
  for (const std::uint64_t seed : {42u, 7u}) {
    const auto requests = seeded_workload(seed, 0.5);
    MalleableOptions opt;
    opt.policy = BandwidthPolicy::min_rate();
    const auto greedy = schedule_malleable_greedy(net, requests, opt);
    const auto report =
        validate_assignments(net, requests, greedy.schedule.assignments());
    EXPECT_TRUE(report.ok()) << report.to_string();

    const auto window = schedule_malleable_window(net, requests, opt);
    const auto wreport =
        validate_assignments(net, requests, window.schedule.assignments());
    EXPECT_TRUE(wreport.ok()) << wreport.to_string();
  }
}

TEST(Malleable, ProfilesFinishNoLaterThanTheConstantPromise) {
  const Network net = seeded_network();
  const auto requests = seeded_workload(42, 0.5);
  MalleableOptions opt;
  opt.policy = BandwidthPolicy::min_rate();
  const auto result = schedule_malleable_greedy(net, requests, opt);
  std::size_t profiled = 0;
  for (const Request& r : requests) {
    const auto a = result.schedule.assignment(r.id);
    if (!a.has_value() || !a->is_profiled()) continue;
    ++profiled;
    // GREEDY admits at the release instant, so the MinRate guarantee is
    // exactly r.min_rate(); execution never drops below it, hence the flow
    // finishes by start + vol/MinRate — the deadline.
    EXPECT_TRUE(approx_le(r.min_rate(), a->profile.min_rate()))
        << "flow " << r.id << " dipped below its guarantee";
    EXPECT_TRUE(approx_le(a->profile.end(), r.deadline));
    // The profile carries the request's volume exactly (within FP noise).
    EXPECT_NEAR(a->profile.carried().to_bytes(), r.volume.to_bytes(),
                1.0 + 1e-9 * r.volume.to_bytes());
  }
  EXPECT_GT(profiled, 0u) << "workload never triggered a reshape";
}

// -- reshape=true: the gain --------------------------------------------------

TEST(Malleable, GreedyReclaimsEarlyAndAdmitsWhatConstantRejects) {
  const Network net = Network::uniform(1, 1, mbps(100));
  // A: 1000 MB over [0,100] -> guarantee 10 MB/s, constant finish t=100;
  //    water-filled alone on the port it runs at MaxRate 100 -> finish t=10.
  // B: 2000 MB over [20,40] -> needs 100 MB/s. Constant: A still holds
  //    10 MB/s at t=20 -> reject. Malleable: A's guarantee came back at
  //    t=10 -> accept.
  const std::vector<Request> rs{transfer(1, 0, 100, 1000, 100),
                                transfer(2, 20, 40, 2000, 100)};
  const auto constant =
      schedule_flexible_greedy(net, rs, BandwidthPolicy::min_rate());
  EXPECT_TRUE(constant.schedule.is_accepted(1));
  EXPECT_FALSE(constant.schedule.is_accepted(2));

  MalleableOptions opt;
  opt.policy = BandwidthPolicy::min_rate();
  const auto malleable = schedule_malleable_greedy(net, rs, opt);
  EXPECT_TRUE(malleable.schedule.is_accepted(1));
  EXPECT_TRUE(malleable.schedule.is_accepted(2));

  // A ran alone: the admission-instant refill overwrote the guarantee step
  // with MaxRate, leaving a one-step profile that normalizes back to the
  // constant form — at 100 MB/s, finishing at t=10.
  const auto a = malleable.schedule.assignment(1);
  ASSERT_TRUE(a.has_value());
  EXPECT_FALSE(a->is_profiled());
  EXPECT_EQ(a->bw, mbps(100));
  EXPECT_EQ(a->start, at(0));
}

TEST(Malleable, WindowReclaimsEarlyAndAdmitsWhatConstantRejects) {
  const Network net = Network::uniform(1, 1, mbps(100));
  // Interval length 10. A lands in [0,10), admitted at decision t=10 with
  // g = 1000/(100-10) = 11.1 MB/s; water-filled it finishes at t=20.
  // B lands in [20,30), decided at t=30 with g = 2000/22 = 90.9 MB/s:
  // constant still carries A's 11.1 -> 90.9 does not fit; malleable
  // reclaimed A at t=20 -> the port is empty and B fits.
  const std::vector<Request> rs{transfer(1, 0, 100, 1000, 100),
                                transfer(2, 20, 52, 2000, 100)};
  WindowOptions wopt;
  wopt.policy = BandwidthPolicy::min_rate();
  wopt.step = Duration::seconds(10);
  const auto constant = schedule_flexible_window(net, rs, wopt);
  EXPECT_TRUE(constant.schedule.is_accepted(1));
  EXPECT_FALSE(constant.schedule.is_accepted(2));

  MalleableOptions mopt;
  mopt.policy = BandwidthPolicy::min_rate();
  mopt.step = Duration::seconds(10);
  const auto malleable = schedule_malleable_window(net, rs, mopt);
  EXPECT_TRUE(malleable.schedule.is_accepted(1));
  EXPECT_TRUE(malleable.schedule.is_accepted(2));
}

TEST(Malleable, NewcomerPushesIncumbentBackTowardGuarantee) {
  const Network net = Network::uniform(1, 1, mbps(100));
  // A runs alone water-filled to 100 MB/s; B's admission at t=5 claims
  // 60 MB/s of guarantee, so A falls back to the 40 left — above its own
  // guarantee of 10 — and the two finish sharing the port exactly.
  const std::vector<Request> rs{transfer(1, 0, 100, 1000, 100),
                                transfer(2, 5, 15, 600, 60)};
  MalleableOptions opt;
  opt.policy = BandwidthPolicy::min_rate();
  const auto result = schedule_malleable_greedy(net, rs, opt);
  ASSERT_TRUE(result.schedule.is_accepted(1));
  ASSERT_TRUE(result.schedule.is_accepted(2));
  const auto a = result.schedule.assignment(1);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(a->is_profiled());
  // Steps: 100 from t=0 (alone, the admission-instant refill overwrites the
  // 10 MB/s guarantee step), down to 40 at t=5 (B claims its 60 MB/s
  // guarantee), back to 100 at t=15 once B departs.
  EXPECT_EQ(a->profile.rate_at(at(0)), mbps(100));
  EXPECT_EQ(a->profile.rate_at(at(4)), mbps(100));
  EXPECT_EQ(a->profile.rate_at(at(6)), mbps(40));
  EXPECT_EQ(a->profile.rate_at(at(15.5)), mbps(100));
  EXPECT_NEAR(a->profile.end().to_seconds(), 16.0, 1e-9);
  const auto report = validate_assignments(net, rs, result.schedule.assignments());
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// -- narration + determinism -------------------------------------------------

TEST(Malleable, ReshapesAreNarratedAndCounted) {
  const Network net = seeded_network();
  const auto requests = seeded_workload(42, 0.5);
  std::ostringstream out;
  obs::JsonlSink sink{out};
  obs::CounterRegistry counters;
  obs::Observer observer{&sink, &counters};
  MalleableOptions opt;
  opt.policy = BandwidthPolicy::min_rate();
  (void)schedule_malleable_greedy(net, requests, opt, &observer);
  sink.flush();
  EXPECT_GT(counters.value(obs::Counter::kReshaped), 0u);
  EXPECT_NE(out.str().find("\"event\":\"reshaped\""), std::string::npos);

  // reshape=false must stay silent on that channel.
  obs::CounterRegistry quiet;
  obs::Observer rigid_observer{nullptr, &quiet};
  opt.reshape = false;
  (void)schedule_malleable_greedy(net, requests, opt, &rigid_observer);
  EXPECT_EQ(quiet.value(obs::Counter::kReshaped), 0u);
}

TEST(Malleable, RepeatRunsAreByteIdentical) {
  const Network net = seeded_network();
  const auto requests = seeded_workload(42, 0.5);
  MalleableOptions opt;
  opt.policy = BandwidthPolicy::min_rate();
  const TracedRun a = traced(net, requests, make_malleable_greedy(opt));
  const TracedRun b = traced(net, requests, make_malleable_greedy(opt));
  ASSERT_FALSE(a.trace.empty());
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.csv, b.csv);
}

TEST(Malleable, RegistryNames) {
  MalleableOptions opt;
  opt.policy = BandwidthPolicy::min_rate();
  EXPECT_EQ(make_malleable_greedy(opt).name, "mgreedy/minrate");
  EXPECT_EQ(make_malleable_window(opt).name, "mwindow400/minrate");
  opt.reshape = false;
  EXPECT_EQ(make_malleable_greedy(opt).name, "mgreedy/minrate-rigid");
}

}  // namespace
}  // namespace gridbw::heuristics
