// Determinism: every scheduler is a pure function of (network, requests,
// options) — two runs over the same inputs produce byte-identical
// schedules. This is a load-bearing property for the experiment harness
// (replications must be reproducible) and for debugging.

#include <gtest/gtest.h>

#include <vector>

#include "heuristics/distributed.hpp"
#include "heuristics/flexible_window.hpp"
#include "heuristics/flexible_bookahead.hpp"
#include "heuristics/parse.hpp"
#include "heuristics/retry.hpp"
#include "workload/generator.hpp"
#include "workload/scenario.hpp"

namespace gridbw {
namespace {

/// Canonical fingerprint of a schedule result.
std::vector<std::tuple<RequestId, double, double>> fingerprint(
    const ScheduleResult& result) {
  std::vector<std::tuple<RequestId, double, double>> out;
  for (const Assignment& a : result.schedule.assignments()) {
    out.emplace_back(a.request, a.start.to_seconds(), a.bw.to_bytes_per_second());
  }
  std::sort(out.begin(), out.end());
  auto rejected = result.rejected;
  std::sort(rejected.begin(), rejected.end());
  for (RequestId id : rejected) out.emplace_back(id, -1.0, -1.0);
  return out;
}

class SchedulerDeterminism : public ::testing::TestWithParam<const char*> {};

TEST_P(SchedulerDeterminism, TwoRunsAreByteIdentical) {
  const workload::Scenario scenario =
      workload::paper_flexible(Duration::seconds(1), Duration::seconds(300), 4.0);
  Rng rng{801};
  const auto requests = workload::generate(scenario.spec, rng);

  const auto scheduler = heuristics::parse_scheduler(GetParam());
  const auto first = scheduler.run(scenario.network, requests);
  const auto second = scheduler.run(scenario.network, requests);
  EXPECT_EQ(fingerprint(first), fingerprint(second)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllSpecs, SchedulerDeterminism,
                         ::testing::Values("fcfs", "cumulated", "minbw", "minvol",
                                           "greedy:f=1", "greedy:minrate",
                                           "window:step=100,f=0.8",
                                           "window:step=100,minrate,hotspot=1",
                                           "bookahead:step=100,ahead=4,f=1"));

TEST(SchedulerDeterminism, InputOrderDoesNotMatter) {
  // Heuristics sort internally (FCFS order with full tie-breaking), so a
  // shuffled request vector must give the same outcome.
  const workload::Scenario scenario =
      workload::paper_flexible(Duration::seconds(1), Duration::seconds(300), 4.0);
  Rng rng{802};
  auto requests = workload::generate(scenario.spec, rng);
  auto shuffled = requests;
  rng.shuffle(shuffled);

  for (const char* spec : {"greedy:f=1", "window:step=100,f=0.8", "minbw"}) {
    const auto scheduler = heuristics::parse_scheduler(spec);
    const auto a = scheduler.run(scenario.network, requests);
    const auto b = scheduler.run(scenario.network, shuffled);
    EXPECT_EQ(fingerprint(a), fingerprint(b)) << spec;
  }
}

TEST(SchedulerDeterminism, RetryAndDistributedAreDeterministic) {
  const workload::Scenario scenario =
      workload::paper_flexible(Duration::seconds(1), Duration::seconds(300), 4.0);
  Rng rng{803};
  const auto requests = workload::generate(scenario.spec, rng);

  heuristics::RetryPolicy retry;
  retry.max_attempts = 3;
  const auto r1 = heuristics::schedule_greedy_with_retries(
      scenario.network, requests, heuristics::BandwidthPolicy::fraction_of_max(1.0),
      retry);
  const auto r2 = heuristics::schedule_greedy_with_retries(
      scenario.network, requests, heuristics::BandwidthPolicy::fraction_of_max(1.0),
      retry);
  EXPECT_EQ(fingerprint(r1.result), fingerprint(r2.result));

  heuristics::DistributedOptions dist;
  dist.sync_period = Duration::seconds(30);
  const auto d1 =
      heuristics::schedule_flexible_distributed(scenario.network, requests, dist);
  const auto d2 =
      heuristics::schedule_flexible_distributed(scenario.network, requests, dist);
  EXPECT_EQ(fingerprint(d1.result), fingerprint(d2.result));
  EXPECT_EQ(d1.egress_conflicts, d2.egress_conflicts);
}

TEST(WindowTieBreak, NearEqualCostsBreakTiesByRequestId) {
  // Two candidates whose costs differ only at the 1e-12 relative level
  // contend for an egress that fits one of them. An exact `<` comparison
  // would let the infinitesimally cheaper (higher-id) candidate win or lose
  // depending on rounding; the epsilon-aware tie-break must deterministically
  // pick the smaller request id — in both selection engines.
  const Bandwidth out_cap = Bandwidth::megabytes_per_second(100);
  const Bandwidth in_cap = Bandwidth::megabytes_per_second(99);
  // Request 2's ingress is a hair *larger*, so its cost is a hair *smaller*:
  // exact comparison would prefer id 2; the tie-break must prefer id 1.
  const Bandwidth in_cap_eps =
      Bandwidth::bytes_per_second(in_cap.to_bytes_per_second() * (1.0 + 1e-12));
  const Network net{{in_cap, in_cap_eps}, {out_cap}};

  std::vector<Request> rs;
  for (RequestId id : {RequestId{1}, RequestId{2}}) {
    rs.push_back(RequestBuilder{id}
                     .from(IngressId{id - 1})
                     .to(EgressId{0})
                     .window(TimePoint::at_seconds(0), TimePoint::at_seconds(1000))
                     .volume(Volume::megabytes(60))
                     .max_rate(Bandwidth::megabytes_per_second(60))
                     .build());
  }

  heuristics::WindowOptions opt;
  opt.step = Duration::seconds(10);
  opt.policy = heuristics::BandwidthPolicy::fraction_of_max(1.0);
  for (const auto engine :
       {heuristics::WindowEngine::kScan, heuristics::WindowEngine::kHeap}) {
    opt.engine = engine;
    const auto result = heuristics::schedule_flexible_window(net, rs, opt);
    EXPECT_TRUE(result.schedule.is_accepted(1)) << to_string(engine);
    EXPECT_FALSE(result.schedule.is_accepted(2)) << to_string(engine);
  }
}

TEST(WindowOrders, AllOrdersProduceValidDistinctNames) {
  using heuristics::CandidateOrder;
  EXPECT_EQ(to_string(CandidateOrder::kMinCost), "mincost");
  EXPECT_EQ(to_string(CandidateOrder::kEarliestDeadline), "edf");
  EXPECT_EQ(to_string(CandidateOrder::kShortestJob), "sjf");
}

TEST(WindowOrders, EdfSavesTheUrgentRequest) {
  // Two candidates, one port slot: EDF must pick the tight deadline even
  // though the loose one has lower utilization cost.
  const Network net = Network::uniform(2, 1, Bandwidth::megabytes_per_second(100));
  std::vector<Request> rs;
  // Tight: large bw (cost higher), deadline soon after the decision time.
  rs.push_back(RequestBuilder{1}
                   .from(IngressId{0})
                   .to(EgressId{0})
                   .window(TimePoint::at_seconds(0), TimePoint::at_seconds(25))
                   .volume(Volume::megabytes(100) * 10.0)
                   .max_rate(Bandwidth::megabytes_per_second(100))
                   .build());
  // Loose: small bw, deadline far away.
  rs.push_back(RequestBuilder{2}
                   .from(IngressId{1})
                   .to(EgressId{0})
                   .window(TimePoint::at_seconds(0), TimePoint::at_seconds(1000))
                   .volume(Volume::megabytes(60) * 10.0)
                   .max_rate(Bandwidth::megabytes_per_second(60))
                   .build());
  heuristics::WindowOptions opt;
  opt.step = Duration::seconds(5);
  opt.policy = heuristics::BandwidthPolicy::fraction_of_max(1.0);

  opt.order = heuristics::CandidateOrder::kMinCost;
  const auto mincost = heuristics::schedule_flexible_window(net, rs, opt);
  EXPECT_TRUE(mincost.schedule.is_accepted(2));   // cheaper candidate
  EXPECT_FALSE(mincost.schedule.is_accepted(1));  // 100+60 > 100 on egress

  opt.order = heuristics::CandidateOrder::kEarliestDeadline;
  const auto edf = heuristics::schedule_flexible_window(net, rs, opt);
  EXPECT_TRUE(edf.schedule.is_accepted(1));
  EXPECT_FALSE(edf.schedule.is_accepted(2));
}

}  // namespace
}  // namespace gridbw
