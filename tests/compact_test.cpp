// Tests for the schedule-compaction pass.

#include <gtest/gtest.h>

#include <vector>

#include "core/validate.hpp"
#include "heuristics/compact.hpp"
#include "heuristics/flexible_window.hpp"
#include "metrics/objectives.hpp"
#include "workload/generator.hpp"
#include "workload/scenario.hpp"

namespace gridbw::heuristics {
namespace {

TimePoint at(double s) { return TimePoint::at_seconds(s); }
Bandwidth mbps(double m) { return Bandwidth::megabytes_per_second(m); }

Request flexible(RequestId id, double ts, double fastest, double max_mbps,
                 double slack, std::size_t in = 0, std::size_t out = 0) {
  const Volume vol = mbps(max_mbps) * Duration::seconds(fastest);
  return RequestBuilder{id}
      .from(IngressId{in})
      .to(EgressId{out})
      .window(at(ts), at(ts + fastest * slack))
      .volume(vol)
      .max_rate(mbps(max_mbps))
      .build();
}

TEST(Compact, PullsDelayedStartBackToRelease) {
  const Network net = Network::uniform(1, 1, mbps(100));
  const std::vector<Request> rs{flexible(1, 3, 10, 100, 8.0)};
  Schedule s;
  s.accept(1, at(40), mbps(100));  // WINDOW-style delayed start
  const auto out = compact_schedule(net, rs, s, {Duration::seconds(1)});
  const auto a = out.schedule.assignment(1);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->start, at(3));  // back to the release time
  EXPECT_EQ(out.moved, 1u);
  EXPECT_EQ(out.total_advance, Duration::seconds(37));
}

TEST(Compact, NeverMovesBeforeRelease) {
  const Network net = Network::uniform(1, 1, mbps(100));
  const std::vector<Request> rs{flexible(1, 10, 10, 100, 8.0)};
  Schedule s;
  s.accept(1, at(10), mbps(100));  // already at release
  const auto out = compact_schedule(net, rs, s, {Duration::seconds(1)});
  EXPECT_EQ(out.schedule.assignment(1)->start, at(10));
  EXPECT_EQ(out.moved, 0u);
}

TEST(Compact, RespectsPortContention) {
  const Network net = Network::uniform(1, 1, mbps(100));
  // Two full-rate transfers, the second deliberately delayed behind the
  // first; it can only come back to the first one's end, not to release.
  const std::vector<Request> rs{flexible(1, 0, 10, 100, 8.0),
                                flexible(2, 0, 10, 100, 8.0)};
  Schedule s;
  s.accept(1, at(0), mbps(100));   // [0, 10)
  s.accept(2, at(50), mbps(100));  // delayed far out
  const auto out = compact_schedule(net, rs, s, {Duration::seconds(1)});
  EXPECT_EQ(out.schedule.assignment(2)->start, at(10));
}

TEST(Compact, PreservesAcceptanceRatesAndFeasibility) {
  const workload::Scenario scenario =
      workload::paper_flexible(Duration::seconds(1), Duration::seconds(400), 4.0);
  Rng rng{901};
  const auto requests = workload::generate(scenario.spec, rng);
  WindowOptions opt;
  opt.step = Duration::seconds(100);
  opt.policy = BandwidthPolicy::fraction_of_max(0.8);
  const auto result = schedule_flexible_window(scenario.network, requests, opt);

  const auto compacted =
      compact_schedule(scenario.network, requests, result.schedule,
                       {Duration::seconds(10)});
  EXPECT_EQ(compacted.schedule.accepted_count(), result.schedule.accepted_count());
  for (const Assignment& a : result.schedule.assignments()) {
    const auto c = compacted.schedule.assignment(a.request);
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->bw, a.bw);                  // rates untouched
    EXPECT_LE(c->start.to_seconds(), a.start.to_seconds());  // only earlier
  }
  const auto report =
      validate_schedule(scenario.network, requests, compacted.schedule);
  EXPECT_TRUE(report.ok()) << report.to_string();
  // WINDOW delays everything by up to one interval; compaction must find
  // real room on a non-saturated workload.
  EXPECT_GT(compacted.moved, 0u);
  // Mean waiting time cannot get worse.
  EXPECT_LE(metrics::start_delay_stats(requests, compacted.schedule).mean(),
            metrics::start_delay_stats(requests, result.schedule).mean() + 1e-9);
}

TEST(Compact, ChainReactionOpensRoomForLaterRequests) {
  const Network net = Network::uniform(1, 1, mbps(100));
  // r1 delayed to [20, 30); r2 delayed to [40, 50). Pulling r1 to [0, 10)
  // lets r2 reach [10, 20) — earlier than r1's vacated original slot.
  const std::vector<Request> rs{flexible(1, 0, 10, 100, 8.0),
                                flexible(2, 10, 10, 100, 8.0)};
  Schedule s;
  s.accept(1, at(20), mbps(100));
  s.accept(2, at(40), mbps(100));
  const auto out = compact_schedule(net, rs, s, {Duration::seconds(1)});
  EXPECT_EQ(out.schedule.assignment(1)->start, at(0));
  EXPECT_EQ(out.schedule.assignment(2)->start, at(10));
  EXPECT_EQ(out.moved, 2u);
}

TEST(Compact, Validation) {
  const Network net = Network::uniform(1, 1, mbps(100));
  Schedule alien;
  alien.accept(99, at(0), mbps(10));
  EXPECT_THROW((void)compact_schedule(net, std::vector<Request>{}, alien, {}),
               std::invalid_argument);
  EXPECT_THROW((void)compact_schedule(net, std::vector<Request>{}, Schedule{},
                                      {Duration::zero()}),
               std::invalid_argument);
}

}  // namespace
}  // namespace gridbw::heuristics
