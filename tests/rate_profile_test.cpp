// Tests for core/rate_profile.hpp: the piecewise-constant per-request rate
// profiles the malleable engines emit. Pins the step algebra (append /
// coalesce / same-instant overwrite), the exact integral, and the defect
// taxonomy Schedule::accept_profile and the validator rely on.

#include <gtest/gtest.h>

#include <limits>

#include "core/rate_profile.hpp"
#include "core/schedule.hpp"

namespace gridbw {
namespace {

TimePoint at(double s) { return TimePoint::at_seconds(s); }
Bandwidth mbps(double m) { return Bandwidth::megabytes_per_second(m); }

TEST(RateProfile, ConstantFactoryIsOneStep) {
  const RateProfile p = RateProfile::constant(at(10), at(30), mbps(5));
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p.start(), at(10));
  EXPECT_EQ(p.end(), at(30));
  EXPECT_EQ(p.rate_at(at(10)), mbps(5));
  EXPECT_EQ(p.rate_at(at(29.999)), mbps(5));
  EXPECT_EQ(p.rate_at(at(30)), Bandwidth::zero());  // end is exclusive
  EXPECT_EQ(p.rate_at(at(9)), Bandwidth::zero());
  EXPECT_EQ(p.carried(), mbps(5) * Duration::seconds(20));
}

TEST(RateProfile, AppendBuildsStepsAndIntegrates) {
  RateProfile p;
  p.append(at(0), mbps(10));
  p.append(at(5), mbps(20));
  p.append(at(8), mbps(4));
  p.set_end(at(10));
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p.rate_at(at(4.5)), mbps(10));
  EXPECT_EQ(p.rate_at(at(5)), mbps(20));
  EXPECT_EQ(p.rate_at(at(8)), mbps(4));
  EXPECT_EQ(p.peak_rate(), mbps(20));
  EXPECT_EQ(p.min_rate(), mbps(4));
  // 10*5 + 20*3 + 4*2 = 118 MB
  EXPECT_DOUBLE_EQ(p.carried().to_bytes(), 118e6);
  EXPECT_FALSE(p.defect(at(0)).has_value());
}

TEST(RateProfile, AppendCoalescesEqualRates) {
  RateProfile p;
  p.append(at(0), mbps(10));
  p.append(at(5), mbps(10));  // no-op: the function is unchanged
  p.set_end(at(10));
  ASSERT_EQ(p.size(), 1u);
  EXPECT_DOUBLE_EQ(p.carried().to_bytes(), 100e6);
}

TEST(RateProfile, SameInstantAppendOverwritesLastStep) {
  RateProfile p;
  p.append(at(0), mbps(10));
  p.append(at(5), mbps(20));
  p.append(at(5), mbps(30));  // two reshapes at one instant: last wins
  p.set_end(at(10));
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p.rate_at(at(5)), mbps(30));
  // ...and the overwrite re-coalesces when it lands back on the previous rate.
  RateProfile q;
  q.append(at(0), mbps(10));
  q.append(at(5), mbps(20));
  q.append(at(5), mbps(10));
  q.set_end(at(10));
  ASSERT_EQ(q.size(), 1u);
  EXPECT_EQ(q.rate_at(at(7)), mbps(10));
}

TEST(RateProfile, DefectTaxonomy) {
  RateProfile empty;
  EXPECT_TRUE(empty.defect(at(0)).has_value());

  RateProfile wrong_start;
  wrong_start.append(at(1), mbps(10));
  wrong_start.set_end(at(5));
  EXPECT_TRUE(wrong_start.defect(at(0)).has_value());
  EXPECT_FALSE(wrong_start.defect(at(1)).has_value());

  RateProfile open;  // end never set -> end() does not lie after the last step
  open.append(at(0), mbps(10));
  EXPECT_TRUE(open.defect(at(0)).has_value());

  RateProfile bad_rate;
  bad_rate.append(at(0), Bandwidth::bytes_per_second(
                             std::numeric_limits<double>::infinity()));
  bad_rate.set_end(at(5));
  EXPECT_TRUE(bad_rate.defect(at(0)).has_value());
}

TEST(RateProfile, ScheduleAcceptProfileNormalizesSingleStepToConstant) {
  Schedule s;
  RateProfile p = RateProfile::constant(at(0), at(10), mbps(10));
  s.accept_profile(7, std::move(p));
  const auto a = s.assignment(7);
  ASSERT_TRUE(a.has_value());
  // Canonical form: a one-step profile IS the constant allocation and takes
  // the pre-profile fast paths everywhere.
  EXPECT_FALSE(a->is_profiled());
  EXPECT_EQ(a->start, at(0));
  EXPECT_EQ(a->bw, mbps(10));
}

TEST(RateProfile, ScheduleAcceptProfileKeepsMultiStepAndPinsPeak) {
  Schedule s;
  RateProfile p;
  p.append(at(0), mbps(10));
  p.append(at(5), mbps(20));
  p.set_end(at(10));
  s.accept_profile(7, std::move(p));
  const auto a = s.assignment(7);
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(a->is_profiled());
  EXPECT_EQ(a->bw, mbps(20));  // bw mirrors the peak step rate
  EXPECT_EQ(a->start, at(0));
  ASSERT_EQ(a->profile.size(), 2u);
}

TEST(RateProfile, ScheduleAcceptProfileRejectsMalformed) {
  Schedule s;
  RateProfile open;
  open.append(at(0), mbps(10));  // end never set
  EXPECT_THROW(s.accept_profile(1, std::move(open)), std::logic_error);
}

TEST(RateProfile, AssignmentSegmentsVisitConstantOnce) {
  const Request r = RequestBuilder{1}
                        .from(IngressId{0})
                        .to(EgressId{0})
                        .window(at(0), at(100))
                        .volume(mbps(10) * Duration::seconds(10))
                        .max_rate(mbps(50))
                        .build();
  const Assignment a{1, at(0), mbps(10)};
  std::size_t calls = 0;
  a.for_each_segment(r, [&](TimePoint t0, TimePoint t1, Bandwidth rate) {
    ++calls;
    EXPECT_EQ(t0, at(0));
    EXPECT_EQ(t1, at(10));
    EXPECT_EQ(rate, mbps(10));
  });
  EXPECT_EQ(calls, 1u);
}

TEST(RateProfile, AssignmentSegmentsVisitEachStep) {
  const Request r = RequestBuilder{1}
                        .from(IngressId{0})
                        .to(EgressId{0})
                        .window(at(0), at(100))
                        .volume(Volume::bytes(1))
                        .max_rate(mbps(50))
                        .build();
  Schedule s;
  RateProfile p;
  p.append(at(0), mbps(10));
  p.append(at(5), mbps(20));
  p.set_end(at(10));
  s.accept_profile(1, std::move(p));
  const auto a = s.assignment(1);
  ASSERT_TRUE(a.has_value());
  std::size_t calls = 0;
  a->for_each_segment(r, [&](TimePoint t0, TimePoint t1, Bandwidth rate) {
    if (calls == 0) {
      EXPECT_EQ(t0, at(0));
      EXPECT_EQ(t1, at(5));
      EXPECT_EQ(rate, mbps(10));
    } else {
      EXPECT_EQ(t0, at(5));
      EXPECT_EQ(t1, at(10));
      EXPECT_EQ(rate, mbps(20));
    }
    ++calls;
  });
  EXPECT_EQ(calls, 2u);
}

}  // namespace
}  // namespace gridbw
