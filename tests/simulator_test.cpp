// Unit tests for the discrete-event simulator kernel.

#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gridbw::sim {
namespace {

TimePoint at(double s) { return TimePoint::at_seconds(s); }

TEST(Simulator, ClockStartsAtOrigin) {
  Simulator s;
  EXPECT_EQ(s.now(), TimePoint::origin());
  EXPECT_FALSE(s.has_pending());
}

TEST(Simulator, RunExecutesAllEventsInOrder) {
  Simulator s;
  std::vector<double> times;
  (void)s.at(at(2), [&] { times.push_back(s.now().to_seconds()); });
  (void)s.at(at(1), [&] { times.push_back(s.now().to_seconds()); });
  EXPECT_EQ(s.run(), 2u);
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(s.now(), at(2));
}

TEST(Simulator, HandlersCanScheduleMoreEvents) {
  Simulator s;
  std::vector<double> times;
  (void)s.at(at(1), [&] {
    times.push_back(s.now().to_seconds());
    (void)s.after(Duration::seconds(5), [&] { times.push_back(s.now().to_seconds()); });
  });
  (void)s.run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 6.0}));
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator s;
  (void)s.at(at(10), [] {});
  (void)s.run();
  EXPECT_THROW((void)s.at(at(5), [] {}), std::invalid_argument);
  EXPECT_THROW((void)s.after(Duration::seconds(-1), [] {}), std::invalid_argument);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator s;
  std::vector<double> times;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    (void)s.at(at(t), [&s, &times] { times.push_back(s.now().to_seconds()); });
  }
  EXPECT_EQ(s.run_until(at(2.5)), 2u);
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(s.now(), at(2.5));
  EXPECT_TRUE(s.has_pending());
}

TEST(Simulator, RunUntilAdvancesClockWhenQueueDrains) {
  Simulator s;
  (void)s.at(at(1), [] {});
  (void)s.run_until(at(100));
  EXPECT_EQ(s.now(), at(100));
}

TEST(Simulator, RunUntilIncludesEventsExactlyAtHorizon) {
  Simulator s;
  bool fired = false;
  (void)s.at(at(5), [&] { fired = true; });
  (void)s.run_until(at(5));
  EXPECT_TRUE(fired);
}

TEST(Simulator, CancelledEventsDoNotRun) {
  Simulator s;
  bool fired = false;
  const EventId id = s.at(at(1), [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  (void)s.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.executed_events(), 0u);
}

TEST(Simulator, StepRunsOneEvent) {
  Simulator s;
  int count = 0;
  (void)s.at(at(1), [&] { ++count; });
  (void)s.at(at(2), [&] { ++count; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
  EXPECT_EQ(count, 2);
}

TEST(Simulator, ExecutedEventsCounts) {
  Simulator s;
  for (int i = 0; i < 7; ++i) (void)s.at(at(i + 1.0), [] {});
  (void)s.run();
  EXPECT_EQ(s.executed_events(), 7u);
}

}  // namespace
}  // namespace gridbw::sim
