// Tests for the max-min fair-share fluid baseline.

#include <gtest/gtest.h>

#include <vector>

#include "baseline/maxmin.hpp"
#include "workload/generator.hpp"
#include "workload/scenario.hpp"

namespace gridbw::baseline {
namespace {

TimePoint at(double s) { return TimePoint::at_seconds(s); }
Bandwidth mbps(double m) { return Bandwidth::megabytes_per_second(m); }

TEST(MaxMinAllocation, SingleFlowGetsItsHostRate) {
  const Network net = Network::uniform(1, 1, mbps(100));
  const std::vector<ActiveFlow> flows{{IngressId{0}, EgressId{0}, mbps(40)}};
  const auto rates = maxmin_allocation(net, flows);
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_NEAR(rates[0].to_megabytes_per_second(), 40.0, 1e-6);
}

TEST(MaxMinAllocation, EqualFlowsShareEqually) {
  const Network net = Network::uniform(1, 1, mbps(100));
  const std::vector<ActiveFlow> flows{{IngressId{0}, EgressId{0}, mbps(1000)},
                                      {IngressId{0}, EgressId{0}, mbps(1000)}};
  const auto rates = maxmin_allocation(net, flows);
  EXPECT_NEAR(rates[0].to_megabytes_per_second(), 50.0, 1e-6);
  EXPECT_NEAR(rates[1].to_megabytes_per_second(), 50.0, 1e-6);
}

TEST(MaxMinAllocation, HostLimitedFlowReleasesShareToOthers) {
  const Network net = Network::uniform(1, 1, mbps(100));
  // Flow 0 capped at 20; flow 1 takes the remaining 80.
  const std::vector<ActiveFlow> flows{{IngressId{0}, EgressId{0}, mbps(20)},
                                      {IngressId{0}, EgressId{0}, mbps(1000)}};
  const auto rates = maxmin_allocation(net, flows);
  EXPECT_NEAR(rates[0].to_megabytes_per_second(), 20.0, 1e-6);
  EXPECT_NEAR(rates[1].to_megabytes_per_second(), 80.0, 1e-6);
}

TEST(MaxMinAllocation, CrossBottlenecks) {
  // Classic max-min: flows A(in0->out0), B(in0->out1), C(in1->out1).
  // in0 splits A,B at 50; out1 then offers C 100-50=50... but C is also
  // unconstrained elsewhere, so progressive filling: all rise to 50
  // (in0 saturates), then C continues to 50 only if out1 allows: out1
  // carries B+C = 100 -> saturated at 50 each.
  const Network net = Network::uniform(2, 2, mbps(100));
  const std::vector<ActiveFlow> flows{{IngressId{0}, EgressId{0}, mbps(1000)},
                                      {IngressId{0}, EgressId{1}, mbps(1000)},
                                      {IngressId{1}, EgressId{1}, mbps(1000)}};
  const auto rates = maxmin_allocation(net, flows);
  EXPECT_NEAR(rates[0].to_megabytes_per_second(), 50.0, 1e-6);
  EXPECT_NEAR(rates[1].to_megabytes_per_second(), 50.0, 1e-6);
  EXPECT_NEAR(rates[2].to_megabytes_per_second(), 50.0, 1e-6);
}

TEST(MaxMinAllocation, UnbalancedBottleneckGivesLexicographicMax) {
  // in0 carries 3 flows, in1 carries 1; all to distinct egresses of 100.
  // The in0 flows get 100/3 each; the lone flow gets its full egress 100.
  const Network net = Network::uniform(2, 4, mbps(100));
  const std::vector<ActiveFlow> flows{{IngressId{0}, EgressId{0}, mbps(1000)},
                                      {IngressId{0}, EgressId{1}, mbps(1000)},
                                      {IngressId{0}, EgressId{2}, mbps(1000)},
                                      {IngressId{1}, EgressId{3}, mbps(1000)}};
  const auto rates = maxmin_allocation(net, flows);
  EXPECT_NEAR(rates[0].to_megabytes_per_second(), 100.0 / 3.0, 1e-6);
  EXPECT_NEAR(rates[3].to_megabytes_per_second(), 100.0, 1e-6);
}

TEST(MaxMinAllocation, EmptyFlowSet) {
  const Network net = Network::uniform(1, 1, mbps(100));
  EXPECT_TRUE(maxmin_allocation(net, std::vector<ActiveFlow>{}).empty());
}

TEST(MaxMinAllocation, NeverExceedsPortCapacity) {
  Rng rng{71};
  const Network net = Network::uniform(3, 3, mbps(100));
  std::vector<ActiveFlow> flows;
  for (int k = 0; k < 20; ++k) {
    flows.push_back(ActiveFlow{IngressId{static_cast<std::size_t>(rng.uniform_int(0, 2))},
                               EgressId{static_cast<std::size_t>(rng.uniform_int(0, 2))},
                               mbps(rng.uniform(10, 200))});
  }
  const auto rates = maxmin_allocation(net, flows);
  std::vector<double> in_sum(3, 0.0), out_sum(3, 0.0);
  for (std::size_t f = 0; f < flows.size(); ++f) {
    EXPECT_LE(rates[f].to_bytes_per_second(),
              flows[f].max_rate.to_bytes_per_second() + 1.0);
    in_sum[flows[f].ingress.value] += rates[f].to_bytes_per_second();
    out_sum[flows[f].egress.value] += rates[f].to_bytes_per_second();
  }
  for (int p = 0; p < 3; ++p) {
    EXPECT_LE(in_sum[p], 1e8 + 10.0);
    EXPECT_LE(out_sum[p], 1e8 + 10.0);
  }
}

Request transfer(RequestId id, double ts, double gb, double max_mbps, double slack,
                 std::size_t in = 0, std::size_t out = 0) {
  const Volume vol = Volume::gigabytes(gb);
  const Duration fastest = vol / mbps(max_mbps);
  return RequestBuilder{id}
      .from(IngressId{in})
      .to(EgressId{out})
      .window(at(ts), at(ts) + fastest * slack)
      .volume(vol)
      .max_rate(mbps(max_mbps))
      .build();
}

TEST(MaxMinSimulation, LoneTransferCompletesAtFullRate) {
  const Network net = Network::uniform(1, 1, mbps(100));
  const std::vector<Request> rs{transfer(1, 0, 1, 100, 4.0)};  // 1 GB at 100 MB/s
  const auto out = simulate_maxmin(net, rs);
  ASSERT_EQ(out.flows.size(), 1u);
  EXPECT_TRUE(out.flows[0].completed);
  EXPECT_NEAR(out.flows[0].finish.to_seconds(), 10.0, 1e-6);
  EXPECT_NEAR(out.success_rate(), 1.0, 1e-12);
  EXPECT_EQ(out.wasted_bytes(), Volume::zero());
}

TEST(MaxMinSimulation, TwoFlowsSlowEachOtherDown) {
  const Network net = Network::uniform(1, 1, mbps(100));
  // Each alone would take 10 s; sharing makes both take ~15 s (10 s at 50
  // then... actually both at 50 for 20 s).
  const std::vector<Request> rs{transfer(1, 0, 1, 100, 4.0),
                                transfer(2, 0, 1, 100, 4.0)};
  const auto out = simulate_maxmin(net, rs);
  EXPECT_TRUE(out.flows[0].completed);
  EXPECT_TRUE(out.flows[1].completed);
  EXPECT_NEAR(out.flows[0].finish.to_seconds(), 20.0, 1e-3);
}

TEST(MaxMinSimulation, FinishedFlowReleasesBandwidth) {
  const Network net = Network::uniform(1, 1, mbps(100));
  // Flow 1: 0.5 GB; flow 2: 1 GB. Both share 50/50 until flow 1 finishes at
  // 10 s (0.5 GB at 50), then flow 2 runs at 100: 0.5 GB done at 10 s,
  // remaining 0.5 GB in 5 s -> finish at 15 s.
  const std::vector<Request> rs{transfer(1, 0, 0.5, 100, 8.0),
                                transfer(2, 0, 1, 100, 8.0)};
  const auto out = simulate_maxmin(net, rs);
  EXPECT_NEAR(out.flows[0].finish.to_seconds(), 10.0, 1e-3);
  EXPECT_NEAR(out.flows[1].finish.to_seconds(), 15.0, 1e-3);
}

TEST(MaxMinSimulation, DeadlineMissKillsFlowAndWastesBytes) {
  const Network net = Network::uniform(1, 1, mbps(100));
  // Two rigid-deadline (slack 1) transfers sharing one port: both progress
  // at 50 MB/s and neither finishes its 1 GB by t=10 -> both fail with
  // 0.5 GB wasted each.
  const std::vector<Request> rs{transfer(1, 0, 1, 100, 1.0),
                                transfer(2, 0, 1, 100, 1.0)};
  const auto out = simulate_maxmin(net, rs);
  EXPECT_FALSE(out.flows[0].completed);
  EXPECT_FALSE(out.flows[1].completed);
  EXPECT_NEAR(out.wasted_bytes().to_gigabytes(), 1.0, 1e-3);
  EXPECT_DOUBLE_EQ(out.success_rate(), 0.0);
}

TEST(MaxMinSimulation, LateArrivalSeesLeftoverCapacity) {
  const Network net = Network::uniform(1, 1, mbps(100));
  const std::vector<Request> rs{transfer(1, 0, 1, 100, 4.0),
                                transfer(2, 100, 1, 100, 4.0)};
  const auto out = simulate_maxmin(net, rs);
  EXPECT_TRUE(out.flows[1].completed);
  EXPECT_NEAR(out.flows[1].finish.to_seconds(), 110.0, 1e-3);
}

TEST(MaxMinSimulation, ByteConservation) {
  workload::Scenario scenario =
      workload::paper_flexible(Duration::seconds(2), Duration::seconds(200), 3.0);
  Rng rng{72};
  const auto requests = workload::generate(scenario.spec, rng);
  const auto out = simulate_maxmin(scenario.network, requests);
  ASSERT_EQ(out.flows.size(), requests.size());
  Volume total_offered = Volume::zero();
  for (const Request& r : requests) total_offered += r.volume;
  const Volume moved = out.useful_bytes() + out.wasted_bytes();
  EXPECT_LE(moved.to_bytes(), total_offered.to_bytes() * (1 + 1e-9));
  for (std::size_t k = 0; k < out.flows.size(); ++k) {
    EXPECT_LE(out.flows[k].transferred.to_bytes(),
              requests[k].volume.to_bytes() * (1 + 1e-9));
    if (out.flows[k].completed) {
      EXPECT_NEAR(out.flows[k].transferred.to_bytes(), requests[k].volume.to_bytes(),
                  1e3);
      EXPECT_LE(out.flows[k].finish.to_seconds(),
                requests[k].deadline.to_seconds() + 1e-6);
    }
  }
}

}  // namespace
}  // namespace gridbw::baseline
