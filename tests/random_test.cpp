// Unit tests for the PRNG stack: determinism, stream independence, and
// distribution sanity.

#include "util/random.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace gridbw {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a{42};
  SplitMix64 b{42};
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a{1};
  SplitMix64 b{2};
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, SameSeedSameSequence) {
  Xoshiro256 a{123};
  Xoshiro256 b{123};
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, JumpYieldsDisjointStream) {
  Xoshiro256 a{123};
  Xoshiro256 b{123};
  b.jump();
  std::set<std::uint64_t> head;
  for (int i = 0; i < 256; ++i) head.insert(a());
  for (int i = 0; i < 256; ++i) EXPECT_EQ(head.count(b()), 0u);
}

TEST(DeriveStream, DistinctIndexesGiveDistinctSeeds) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t k = 0; k < 1000; ++k) seeds.insert(derive_stream(7, k));
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(DeriveStream, DependsOnParentSeed) {
  EXPECT_NE(derive_stream(1, 0), derive_stream(2, 0));
}

TEST(Rng, Uniform01InRange) {
  Rng rng{1};
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng{2};
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng{3};
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(-5.0, 7.0);
    EXPECT_GE(x, -5.0);
    EXPECT_LT(x, 7.0);
  }
}

TEST(Rng, UniformRejectsInvertedBounds) {
  Rng rng{4};
  EXPECT_THROW((void)rng.uniform(1.0, 0.0), std::invalid_argument);
}

TEST(Rng, UniformIntCoversRangeInclusively) {
  Rng rng{5};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(3, 7));
  EXPECT_EQ(seen, (std::set<std::int64_t>{3, 4, 5, 6, 7}));
}

TEST(Rng, UniformIntSinglePoint) {
  Rng rng{6};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(9, 9), 9);
}

TEST(Rng, UniformIntRejectsInvertedBounds) {
  Rng rng{7};
  EXPECT_THROW((void)rng.uniform_int(2, 1), std::invalid_argument);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng{8};
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / kN, 3.0, 0.05);
}

TEST(Rng, ExponentialIsPositive) {
  Rng rng{9};
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.exponential(0.5), 0.0);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng rng{10};
  EXPECT_THROW((void)rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW((void)rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng{11};
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng{12};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
  EXPECT_THROW((void)rng.bernoulli(1.5), std::invalid_argument);
}

TEST(Rng, PickReturnsMembers) {
  Rng rng{13};
  const std::vector<int> items{10, 20, 30};
  std::set<int> seen;
  for (int i = 0; i < 300; ++i) {
    seen.insert(rng.pick(std::span<const int>{items}));
  }
  EXPECT_EQ(seen, (std::set<int>{10, 20, 30}));
}

TEST(Rng, PickEmptyThrows) {
  Rng rng{14};
  const std::vector<int> empty;
  EXPECT_THROW((void)rng.pick(std::span<const int>{empty}), std::invalid_argument);
}

TEST(Rng, PickWeightedHonorsWeights) {
  Rng rng{15};
  const std::vector<double> weights{0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) ++counts[rng.pick_weighted(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.15);
}

TEST(Rng, PickWeightedRejectsBadWeights) {
  Rng rng{16};
  EXPECT_THROW((void)rng.pick_weighted(std::vector<double>{0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW((void)rng.pick_weighted(std::vector<double>{1.0, -1.0}),
               std::invalid_argument);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng{17};
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = items;
  rng.shuffle(items);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, sorted);
}

TEST(Rng, QuantityHelpersStayInRange) {
  Rng rng{18};
  for (int i = 0; i < 1000; ++i) {
    const Bandwidth b = rng.uniform_bandwidth(Bandwidth::megabytes_per_second(10),
                                              Bandwidth::gigabytes_per_second(1));
    EXPECT_GE(b.to_bytes_per_second(), 1e7);
    EXPECT_LT(b.to_bytes_per_second(), 1e9);
    const Duration d = rng.exponential_duration(Duration::seconds(2));
    EXPECT_GE(d.to_seconds(), 0.0);
  }
}

}  // namespace
}  // namespace gridbw
