// Unit tests for the dimensional quantity types.

#include "util/quantity.hpp"

#include <gtest/gtest.h>

namespace gridbw {
namespace {

TEST(Duration, FactoriesAgree) {
  EXPECT_DOUBLE_EQ(Duration::seconds(90).to_seconds(), 90.0);
  EXPECT_DOUBLE_EQ(Duration::minutes(1.5).to_seconds(), 90.0);
  EXPECT_DOUBLE_EQ(Duration::hours(2).to_seconds(), 7200.0);
  EXPECT_DOUBLE_EQ(Duration::days(1).to_hours(), 24.0);
  EXPECT_DOUBLE_EQ(Duration::zero().to_seconds(), 0.0);
}

TEST(Duration, Arithmetic) {
  const Duration a = Duration::seconds(10);
  const Duration b = Duration::seconds(4);
  EXPECT_EQ(a + b, Duration::seconds(14));
  EXPECT_EQ(a - b, Duration::seconds(6));
  EXPECT_EQ(a * 2.0, Duration::seconds(20));
  EXPECT_EQ(3.0 * b, Duration::seconds(12));
  EXPECT_EQ(a / 2.0, Duration::seconds(5));
  EXPECT_DOUBLE_EQ(a / b, 2.5);
  EXPECT_EQ(-a, Duration::seconds(-10));
}

TEST(Duration, CompoundAssignment) {
  Duration d = Duration::seconds(1);
  d += Duration::seconds(2);
  EXPECT_EQ(d, Duration::seconds(3));
  d -= Duration::seconds(1);
  EXPECT_EQ(d, Duration::seconds(2));
  d *= 4.0;
  EXPECT_EQ(d, Duration::seconds(8));
  d /= 2.0;
  EXPECT_EQ(d, Duration::seconds(4));
}

TEST(Duration, PredicatesAndInfinity) {
  EXPECT_TRUE(Duration::seconds(1).is_positive());
  EXPECT_FALSE(Duration::zero().is_positive());
  EXPECT_TRUE(Duration::seconds(-1).is_negative());
  EXPECT_TRUE(Duration::seconds(5).is_finite());
  EXPECT_FALSE(Duration::infinity().is_finite());
  EXPECT_LT(Duration::days(400), Duration::infinity());
}

TEST(TimePoint, ArithmeticWithDurations) {
  const TimePoint t = TimePoint::at_seconds(100);
  EXPECT_EQ(t + Duration::seconds(10), TimePoint::at_seconds(110));
  EXPECT_EQ(Duration::seconds(10) + t, TimePoint::at_seconds(110));
  EXPECT_EQ(t - Duration::seconds(30), TimePoint::at_seconds(70));
  EXPECT_EQ(TimePoint::at_seconds(110) - t, Duration::seconds(10));
  EXPECT_EQ(TimePoint::origin().to_seconds(), 0.0);
}

TEST(TimePoint, Ordering) {
  EXPECT_LT(TimePoint::at_seconds(1), TimePoint::at_seconds(2));
  EXPECT_LE(TimePoint::at_seconds(2), TimePoint::at_seconds(2));
  EXPECT_LT(TimePoint::at_seconds(1e18), TimePoint::infinity());
}

TEST(Volume, FactoriesUseDecimalMultiples) {
  EXPECT_DOUBLE_EQ(Volume::kilobytes(1).to_bytes(), 1e3);
  EXPECT_DOUBLE_EQ(Volume::megabytes(1).to_bytes(), 1e6);
  EXPECT_DOUBLE_EQ(Volume::gigabytes(1).to_bytes(), 1e9);
  EXPECT_DOUBLE_EQ(Volume::terabytes(1).to_bytes(), 1e12);
  EXPECT_DOUBLE_EQ(Volume::terabytes(1).to_gigabytes(), 1000.0);
}

TEST(Volume, Arithmetic) {
  const Volume a = Volume::gigabytes(10);
  const Volume b = Volume::gigabytes(4);
  EXPECT_EQ(a + b, Volume::gigabytes(14));
  EXPECT_EQ(a - b, Volume::gigabytes(6));
  EXPECT_EQ(a * 0.5, Volume::gigabytes(5));
  EXPECT_DOUBLE_EQ(a / b, 2.5);
}

TEST(Bandwidth, FactoriesAndAccessors) {
  EXPECT_DOUBLE_EQ(Bandwidth::megabytes_per_second(10).to_bytes_per_second(), 1e7);
  EXPECT_DOUBLE_EQ(Bandwidth::gigabytes_per_second(1).to_megabytes_per_second(), 1000.0);
  EXPECT_TRUE(Bandwidth::bytes_per_second(1).is_positive());
  EXPECT_FALSE(Bandwidth::zero().is_positive());
  EXPECT_FALSE(Bandwidth::infinity().is_finite());
}

TEST(Quantity, VolumeOverDurationIsBandwidth) {
  const Bandwidth bw = Volume::gigabytes(100) / Duration::seconds(100);
  EXPECT_DOUBLE_EQ(bw.to_gigabytes_per_second(), 1.0);
}

TEST(Quantity, VolumeOverBandwidthIsDuration) {
  const Duration d = Volume::terabytes(1) / Bandwidth::megabytes_per_second(10);
  EXPECT_DOUBLE_EQ(d.to_seconds(), 1e5);
}

TEST(Quantity, BandwidthTimesDurationIsVolume) {
  const Volume v = Bandwidth::gigabytes_per_second(2) * Duration::seconds(30);
  EXPECT_EQ(v, Volume::gigabytes(60));
  EXPECT_EQ(Duration::seconds(30) * Bandwidth::gigabytes_per_second(2), v);
}

TEST(Quantity, RoundTripIdentity) {
  // (vol / bw) * bw == vol, the invariant the schedulers rely on.
  const Volume vol = Volume::gigabytes(123);
  const Bandwidth bw = Bandwidth::megabytes_per_second(321);
  const Volume back = bw * (vol / bw);
  EXPECT_NEAR(back.to_bytes(), vol.to_bytes(), 1.0);
}

TEST(Quantity, MinMaxClamp) {
  EXPECT_EQ(min(Duration::seconds(1), Duration::seconds(2)), Duration::seconds(1));
  EXPECT_EQ(max(Volume::gigabytes(1), Volume::gigabytes(2)), Volume::gigabytes(2));
  EXPECT_EQ(min(TimePoint::at_seconds(5), TimePoint::at_seconds(3)),
            TimePoint::at_seconds(3));
  const Bandwidth lo = Bandwidth::megabytes_per_second(10);
  const Bandwidth hi = Bandwidth::megabytes_per_second(100);
  EXPECT_EQ(clamp(Bandwidth::megabytes_per_second(50), lo, hi),
            Bandwidth::megabytes_per_second(50));
  EXPECT_EQ(clamp(Bandwidth::megabytes_per_second(5), lo, hi), lo);
  EXPECT_EQ(clamp(Bandwidth::megabytes_per_second(500), lo, hi), hi);
}

TEST(Quantity, ApproxLeToleratesRoundoff) {
  const double x = 0.1 + 0.2;  // 0.30000000000000004
  EXPECT_TRUE(approx_eq(x, 0.3));
  EXPECT_TRUE(approx_le(Bandwidth::gigabytes_per_second(1),
                        Bandwidth::bytes_per_second(1e9 - 0.5)));
  EXPECT_FALSE(approx_le(Bandwidth::bytes_per_second(1e9 + 1e3),
                         Bandwidth::gigabytes_per_second(1)));
  EXPECT_TRUE(approx_le(TimePoint::at_seconds(10.0000001), TimePoint::at_seconds(10)));
  EXPECT_FALSE(approx_le(TimePoint::at_seconds(10.1), TimePoint::at_seconds(10)));
}

TEST(Quantity, FormattingPicksScaledUnits) {
  EXPECT_EQ(to_string(Bandwidth::gigabytes_per_second(2.5)), "2.50 GB/s");
  EXPECT_EQ(to_string(Bandwidth::megabytes_per_second(10)), "10.0 MB/s");
  EXPECT_EQ(to_string(Volume::terabytes(1)), "1.00 TB");
  EXPECT_EQ(to_string(Volume::gigabytes(500)), "500 GB");
  EXPECT_EQ(to_string(Duration::seconds(90)), "1.50 min");
  EXPECT_EQ(to_string(Duration::hours(3.1)), "3.10 h");
  EXPECT_EQ(to_string(Duration::days(1.2)), "1.20 d");
  EXPECT_EQ(to_string(Duration::seconds(12)), "12.0 s");
}

TEST(Quantity, FormattingEdgeCases) {
  EXPECT_EQ(to_string(Volume::zero()), "0 B");
  EXPECT_EQ(to_string(Bandwidth::zero()), "0 B/s");
  EXPECT_EQ(to_string(Duration::infinity()), "inf");
  EXPECT_EQ(to_string(Bandwidth::infinity()), "inf B/s");
}

}  // namespace
}  // namespace gridbw
