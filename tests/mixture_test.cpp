// Tests for heterogeneous traffic mixtures.

#include <gtest/gtest.h>

#include "workload/mixture.hpp"

namespace gridbw::workload {
namespace {

TEST(Mixture, GeneratesBothClasses) {
  const auto spec =
      mice_and_elephants(Duration::seconds(0.5), Duration::seconds(400), 0.8);
  Rng rng{31};
  const auto trace = generate_mixture(spec, rng);
  ASSERT_EQ(trace.requests.size(), trace.class_of.size());
  ASSERT_GT(trace.requests.size(), 100u);
  const auto mice = trace.of_class(0);
  const auto elephants = trace.of_class(1);
  EXPECT_EQ(mice.size() + elephants.size(), trace.requests.size());
  EXPECT_GT(mice.size(), elephants.size());  // 80 % mice
}

TEST(Mixture, WeightsControlClassShares) {
  const auto spec =
      mice_and_elephants(Duration::seconds(0.2), Duration::seconds(2000), 0.8);
  Rng rng{32};
  const auto trace = generate_mixture(spec, rng);
  const double mice_share = static_cast<double>(trace.of_class(0).size()) /
                            static_cast<double>(trace.requests.size());
  EXPECT_NEAR(mice_share, 0.8, 0.02);
}

TEST(Mixture, ClassesUseTheirOwnLaws) {
  const auto spec =
      mice_and_elephants(Duration::seconds(0.5), Duration::seconds(500), 0.5);
  Rng rng{33};
  const auto trace = generate_mixture(spec, rng);
  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    const Request& r = trace.requests[i];
    EXPECT_TRUE(r.is_well_formed()) << r.describe();
    if (trace.class_of[i] == 0) {
      EXPECT_LE(r.volume.to_bytes(), 500e6);  // mice <= 500 MB
      EXPECT_LE(r.max_rate.to_bytes_per_second(), 100e6 + 1);
    } else {
      EXPECT_GE(r.volume.to_bytes(), 10e9);  // elephants >= 10 GB
    }
  }
}

TEST(Mixture, ArrivalsFormOneOrderedStream) {
  const auto spec =
      mice_and_elephants(Duration::seconds(1), Duration::seconds(300), 0.5);
  Rng rng{34};
  const auto trace = generate_mixture(spec, rng);
  for (std::size_t i = 1; i < trace.requests.size(); ++i) {
    EXPECT_GE(trace.requests[i].release, trace.requests[i - 1].release);
    EXPECT_EQ(trace.requests[i].id, trace.requests[i - 1].id + 1);
  }
}

TEST(Mixture, DeterministicForSameSeed) {
  const auto spec =
      mice_and_elephants(Duration::seconds(1), Duration::seconds(300), 0.7);
  Rng a{35}, b{35};
  const auto ta = generate_mixture(spec, a);
  const auto tb = generate_mixture(spec, b);
  ASSERT_EQ(ta.requests.size(), tb.requests.size());
  EXPECT_EQ(ta.class_of, tb.class_of);
  for (std::size_t i = 0; i < ta.requests.size(); ++i) {
    EXPECT_EQ(ta.requests[i].volume, tb.requests[i].volume);
  }
}

TEST(Mixture, Validation) {
  Rng rng{36};
  MixtureSpec empty;
  EXPECT_THROW((void)generate_mixture(empty, rng), std::invalid_argument);
  EXPECT_THROW((void)mice_and_elephants(Duration::seconds(1), Duration::seconds(10),
                                        1.5),
               std::invalid_argument);
  MixtureSpec bad = mice_and_elephants(Duration::seconds(1), Duration::seconds(10));
  bad.classes[0].weight = -1.0;
  EXPECT_THROW((void)generate_mixture(bad, rng), std::invalid_argument);
  bad = mice_and_elephants(Duration::seconds(1), Duration::seconds(10));
  bad.mean_interarrival = Duration::zero();
  EXPECT_THROW((void)generate_mixture(bad, rng), std::invalid_argument);
}

TEST(Mixture, OfClassOutOfRangeIsEmpty) {
  const auto spec =
      mice_and_elephants(Duration::seconds(1), Duration::seconds(100), 0.5);
  Rng rng{37};
  const auto trace = generate_mixture(spec, rng);
  EXPECT_TRUE(trace.of_class(7).empty());
}

}  // namespace
}  // namespace gridbw::workload
