// Differential proof that the fast admission engines are byte-identical to
// their paper-literal references, on randomized workloads:
//
//   rigid *-SLOTS:  SlotsEngine::kIncremental vs kRebuild, all 3 SlotCosts
//   WINDOW:         WindowEngine::kHeap vs kScan, all orders + hotspot
//
// (ISSUE acceptance criterion: schedules must match exactly, several seeds.)

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "heuristics/flexible_window.hpp"
#include "heuristics/rigid_slots.hpp"
#include "obs/counters.hpp"
#include "obs/observer.hpp"
#include "obs/trace_sink.hpp"
#include "workload/generator.hpp"
#include "workload/scenario.hpp"

namespace gridbw {
namespace {

/// Canonical fingerprint of a schedule result (same shape as
/// determinism_test.cpp): accepted (id, start, bw) triples plus rejections.
std::vector<std::tuple<RequestId, double, double>> fingerprint(
    const ScheduleResult& result) {
  std::vector<std::tuple<RequestId, double, double>> out;
  for (const Assignment& a : result.schedule.assignments()) {
    out.emplace_back(a.request, a.start.to_seconds(), a.bw.to_bytes_per_second());
  }
  std::sort(out.begin(), out.end());
  auto rejected = result.rejected;
  std::sort(rejected.begin(), rejected.end());
  for (RequestId id : rejected) out.emplace_back(id, -1.0, -1.0);
  return out;
}

constexpr std::uint64_t kSeeds[] = {11, 4242, 987654321};

class SlotsEngineDifferential
    : public ::testing::TestWithParam<heuristics::SlotCost> {};

TEST_P(SlotsEngineDifferential, IncrementalMatchesRebuildOnRandomWorkloads) {
  const auto cost = GetParam();
  for (const std::uint64_t seed : kSeeds) {
    const workload::Scenario scenario =
        workload::paper_rigid(Duration::seconds(1), Duration::seconds(800));
    Rng rng{seed};
    const auto requests = workload::generate(scenario.spec, rng);
    ASSERT_GT(requests.size(), 50u);

    heuristics::SlotsTelemetry rebuild_tm, incremental_tm;
    const auto reference = heuristics::schedule_rigid_slots(
        scenario.network, requests, cost, heuristics::SlotsEngine::kRebuild,
        &rebuild_tm);
    const auto fast = heuristics::schedule_rigid_slots(
        scenario.network, requests, cost, heuristics::SlotsEngine::kIncremental,
        &incremental_tm);

    EXPECT_EQ(fingerprint(reference), fingerprint(fast))
        << to_string(cost) << " seed=" << seed;
    // Same slice structure, strictly less admission work.
    EXPECT_EQ(rebuild_tm.slices, incremental_tm.slices);
    EXPECT_EQ(rebuild_tm.skipped_slices, 0u);
    EXPECT_LE(incremental_tm.admission_checks, rebuild_tm.admission_checks);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSlotCosts, SlotsEngineDifferential,
                         ::testing::Values(heuristics::SlotCost::kCumulated,
                                           heuristics::SlotCost::kMinBandwidth,
                                           heuristics::SlotCost::kMinVolume));

TEST(SlotsEngineDifferential, DefaultOverloadIsTheIncrementalEngine) {
  const workload::Scenario scenario =
      workload::paper_rigid(Duration::seconds(1), Duration::seconds(400));
  Rng rng{5};
  const auto requests = workload::generate(scenario.spec, rng);
  const auto a = heuristics::schedule_rigid_slots(
      scenario.network, requests, heuristics::SlotCost::kMinBandwidth);
  const auto b = heuristics::schedule_rigid_slots(
      scenario.network, requests, heuristics::SlotCost::kMinBandwidth,
      heuristics::SlotsEngine::kIncremental);
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

TEST(SlotsEngineDifferential, IncrementalSkipsQuietSlices) {
  // A sparse workload has long stretches with no arrivals/departures; the
  // incremental engine must skip those slices entirely.
  const workload::Scenario scenario =
      workload::paper_rigid(Duration::seconds(20), Duration::seconds(4000));
  Rng rng{77};
  const auto requests = workload::generate(scenario.spec, rng);
  heuristics::SlotsTelemetry tm;
  (void)heuristics::schedule_rigid_slots(scenario.network, requests,
                                         heuristics::SlotCost::kMinBandwidth,
                                         heuristics::SlotsEngine::kIncremental, &tm);
  EXPECT_GT(tm.slices, 0u);
  EXPECT_LT(tm.admission_checks,
            tm.slices * std::max<std::size_t>(requests.size(), 1));
}

// Pins the telemetry contract (ISSUE 6 satellite): admission_checks counts
// ledger probes ONLY, in every engine. A request whose min rate exceeds its
// own max_rate is short-circuited before the ledger in the rebuild sweep and
// precomputed as infeasible in the incremental sweeps — it must not be
// counted by either. On a single-slice workload (all requests share one
// window) every engine probes each rate-feasible request exactly once, so
// the counts are exactly predictable AND equal across engines.
TEST(AdmissionChecksContract, CountsLedgerProbesOnlyInEveryEngine) {
  const Network net = Network::uniform(2, 2, Bandwidth::megabytes_per_second(100));
  const auto shared_window = [](RequestId id, double mb_volume, double mb_cap) {
    Request r;
    r.id = id;
    r.ingress = IngressId{0};
    r.egress = EgressId{0};
    r.release = TimePoint::origin();
    r.deadline = TimePoint::at_seconds(10);
    r.volume = Volume::megabytes(mb_volume);
    r.max_rate = Bandwidth::megabytes_per_second(mb_cap);
    return r;
  };
  const std::vector<Request> requests = {
      shared_window(RequestId{1}, 300.0, 40.0),  // min rate 30 <= cap 40
      shared_window(RequestId{2}, 200.0, 30.0),  // min rate 20 <= cap 30
      // Infeasible rate: needs 50 MB/s but its own cap is 10. Never probed.
      shared_window(RequestId{3}, 500.0, 10.0),
      shared_window(RequestId{4}, 100.0, 20.0),  // min rate 10 <= cap 20
  };

  for (const auto cost : {heuristics::SlotCost::kCumulated,
                          heuristics::SlotCost::kMinBandwidth,
                          heuristics::SlotCost::kMinVolume}) {
    for (const auto engine :
         {heuristics::SlotsEngine::kRebuild, heuristics::SlotsEngine::kIncremental}) {
      heuristics::SlotsTelemetry tm;
      const auto result =
          heuristics::schedule_rigid_slots(net, requests, cost, engine, &tm);
      EXPECT_EQ(tm.admission_checks, 3u)
          << to_string(cost) << "/" << to_string(engine);
      // The infeasible-rate request is rejected, the three feasible ones
      // (60 MB/s total on port 0) are admitted.
      EXPECT_EQ(result.rejected.size(), 1u);
      EXPECT_EQ(result.schedule.assignments().size(), 3u);
    }
  }
}

struct WindowCase {
  heuristics::CandidateOrder order;
  double hotspot;
};

class WindowEngineDifferential : public ::testing::TestWithParam<WindowCase> {};

TEST_P(WindowEngineDifferential, HeapMatchesScanOnRandomWorkloads) {
  const auto param = GetParam();
  for (const std::uint64_t seed : kSeeds) {
    const workload::Scenario scenario = workload::paper_flexible(
        Duration::seconds(0.5), Duration::seconds(600), 4.0);
    Rng rng{seed};
    const auto requests = workload::generate(scenario.spec, rng);
    ASSERT_GT(requests.size(), 50u);

    heuristics::WindowOptions opt;
    opt.step = Duration::seconds(50);
    opt.policy = heuristics::BandwidthPolicy::fraction_of_max(0.8);
    opt.order = param.order;
    opt.hotspot_weight = param.hotspot;

    opt.engine = heuristics::WindowEngine::kScan;
    const auto reference =
        heuristics::schedule_flexible_window(scenario.network, requests, opt);
    opt.engine = heuristics::WindowEngine::kHeap;
    const auto fast =
        heuristics::schedule_flexible_window(scenario.network, requests, opt);
    EXPECT_EQ(fingerprint(reference), fingerprint(fast))
        << to_string(param.order) << " hotspot=" << param.hotspot
        << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOrders, WindowEngineDifferential,
    ::testing::Values(WindowCase{heuristics::CandidateOrder::kMinCost, 0.0},
                      WindowCase{heuristics::CandidateOrder::kMinCost, 0.5},
                      WindowCase{heuristics::CandidateOrder::kEarliestDeadline, 0.0},
                      WindowCase{heuristics::CandidateOrder::kShortestJob, 0.0}));

TEST_P(WindowEngineDifferential, AutoMatchesScanOnRandomWorkloads) {
  // kAuto flips between scan and heap per interval at the break-even batch
  // size; both legs are decision-identical, so the crossover must be
  // invisible in the schedule. The dense scenario pushes batches above the
  // threshold, the sparse one keeps them below, so both legs execute.
  const auto param = GetParam();
  for (const std::uint64_t seed : kSeeds) {
    for (const double interarrival : {0.1, 2.0}) {
      const workload::Scenario scenario = workload::paper_flexible(
          Duration::seconds(interarrival), Duration::seconds(600), 4.0);
      Rng rng{seed};
      const auto requests = workload::generate(scenario.spec, rng);

      heuristics::WindowOptions opt;
      opt.step = Duration::seconds(50);
      opt.policy = heuristics::BandwidthPolicy::fraction_of_max(0.8);
      opt.order = param.order;
      opt.hotspot_weight = param.hotspot;

      opt.engine = heuristics::WindowEngine::kScan;
      const auto reference =
          heuristics::schedule_flexible_window(scenario.network, requests, opt);
      opt.engine = heuristics::WindowEngine::kAuto;
      const auto fast =
          heuristics::schedule_flexible_window(scenario.network, requests, opt);
      EXPECT_EQ(fingerprint(reference), fingerprint(fast))
          << to_string(param.order) << " hotspot=" << param.hotspot
          << " seed=" << seed << " interarrival=" << interarrival;
    }
  }
}

TEST(WindowEngineDifferential, AutoTieAtBreakEvenBatchPicksTheHeap) {
  // kAuto resolves `candidates.size() < kHeapBreakEvenBatch(16) ? scan : heap`
  // per interval. The tie at exactly 16 candidates must land on the heap, and
  // 15 on the scan — pinned through the per-drain engine counters so a future
  // `<=` / off-by-one edit trips this test rather than silently flipping the
  // engine at the break-even point.
  const Network net = Network::uniform(2, 2, Bandwidth::megabytes_per_second(1000));
  const auto flow = [](RequestId id) {
    Request r;
    r.id = id;
    r.ingress = IngressId{static_cast<std::size_t>(id % 2)};
    r.egress = EgressId{static_cast<std::size_t>(id % 2)};
    r.release = TimePoint::origin();
    r.deadline = TimePoint::at_seconds(100);
    r.volume = Volume::megabytes(10);
    r.max_rate = Bandwidth::megabytes_per_second(10);
    return r;
  };
  for (const std::size_t batch : {std::size_t{15}, std::size_t{16}}) {
    std::vector<Request> requests;
    for (std::size_t k = 1; k <= batch; ++k) requests.push_back(flow(RequestId{k}));

    heuristics::WindowOptions opt;
    opt.step = Duration::seconds(50);
    opt.engine = heuristics::WindowEngine::kAuto;
    obs::MemorySink sink;
    obs::CounterRegistry counters;
    obs::Observer observer{&sink, &counters};
    const auto result =
        heuristics::schedule_flexible_window(net, requests, opt, &observer);

    // Every request fits comfortably, so the whole batch drains in the first
    // (and only) non-empty interval.
    EXPECT_EQ(result.schedule.assignments().size(), batch);
    const std::uint64_t scans = counters.value(obs::Counter::kWindowScanDrains);
    const std::uint64_t heaps = counters.value(obs::Counter::kWindowHeapDrains);
    if (batch == 16) {
      EXPECT_EQ(scans, 0u) << "tie at break-even must not pick the scan";
      EXPECT_EQ(heaps, 1u);
    } else {
      EXPECT_EQ(scans, 1u);
      EXPECT_EQ(heaps, 0u) << "below break-even must stay on the scan";
    }
  }
}

TEST(WindowEngineDifferential, MinRatePolicyAlsoMatches) {
  const workload::Scenario scenario =
      workload::paper_flexible(Duration::seconds(1), Duration::seconds(400), 4.0);
  Rng rng{31};
  const auto requests = workload::generate(scenario.spec, rng);
  heuristics::WindowOptions opt;
  opt.step = Duration::seconds(100);
  opt.policy = heuristics::BandwidthPolicy::min_rate();
  opt.engine = heuristics::WindowEngine::kScan;
  const auto reference =
      heuristics::schedule_flexible_window(scenario.network, requests, opt);
  opt.engine = heuristics::WindowEngine::kHeap;
  const auto fast =
      heuristics::schedule_flexible_window(scenario.network, requests, opt);
  EXPECT_EQ(fingerprint(reference), fingerprint(fast));
}

}  // namespace
}  // namespace gridbw
