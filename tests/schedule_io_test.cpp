// Tests for schedule CSV persistence and the Gantt rendering.

#include <gtest/gtest.h>

#include <sstream>

#include "core/schedule_io.hpp"

namespace gridbw {
namespace {

TimePoint at(double s) { return TimePoint::at_seconds(s); }
Bandwidth mbps(double m) { return Bandwidth::megabytes_per_second(m); }

TEST(ScheduleIo, RoundTrip) {
  Schedule original;
  original.accept(3, at(5.25), mbps(40));
  original.accept(1, at(0), mbps(100));
  original.accept(2, at(5.25), mbps(60));

  std::stringstream ss;
  write_schedule(ss, original);
  const Schedule loaded = read_schedule(ss);
  EXPECT_EQ(loaded.accepted_count(), 3u);
  for (RequestId id : {1u, 2u, 3u}) {
    const auto a = loaded.assignment(id);
    const auto b = original.assignment(id);
    ASSERT_TRUE(a.has_value());
    EXPECT_NEAR(a->start.to_seconds(), b->start.to_seconds(), 1e-6);
    EXPECT_NEAR(a->bw.to_bytes_per_second(), b->bw.to_bytes_per_second(), 1.0);
  }
}

TEST(ScheduleIo, RowsSortedByStartThenId) {
  Schedule s;
  s.accept(9, at(10), mbps(1));
  s.accept(2, at(5), mbps(1));
  s.accept(1, at(10), mbps(1));
  std::stringstream ss;
  write_schedule(ss, s);
  std::string line;
  std::getline(ss, line);  // header
  std::getline(ss, line);
  EXPECT_EQ(line.substr(0, 2), "2,");
  std::getline(ss, line);
  EXPECT_EQ(line.substr(0, 2), "1,");
  std::getline(ss, line);
  EXPECT_EQ(line.substr(0, 2), "9,");
}

TEST(ScheduleIo, EmptySchedule) {
  std::stringstream ss;
  write_schedule(ss, Schedule{});
  const Schedule loaded = read_schedule(ss);
  EXPECT_EQ(loaded.accepted_count(), 0u);
}

TEST(ScheduleIo, RejectsWrongHeader) {
  std::stringstream ss{"nope\n"};
  EXPECT_THROW((void)read_schedule(ss), std::runtime_error);
}

TEST(ScheduleIo, RejectsBadRows) {
  std::stringstream missing{"request,start_s,bw_bps\n1,2.0\n"};
  EXPECT_THROW((void)read_schedule(missing), std::runtime_error);
  std::stringstream extra{"request,start_s,bw_bps\n1,2.0,3.0,4.0\n"};
  EXPECT_THROW((void)read_schedule(extra), std::runtime_error);
  std::stringstream dup{"request,start_s,bw_bps\n1,2.0,3.0\n1,4.0,5.0\n"};
  EXPECT_THROW((void)read_schedule(dup), std::runtime_error);
}

TEST(Gantt, RendersOccupationGlyphs) {
  const Network net = Network::uniform(2, 1, mbps(100));
  std::vector<Request> rs;
  rs.push_back(RequestBuilder{1}
                   .from(IngressId{0})
                   .to(EgressId{0})
                   .rigid(at(0), Duration::seconds(50), mbps(100))
                   .build());
  rs.push_back(RequestBuilder{2}
                   .from(IngressId{1})
                   .to(EgressId{0})
                   .window(at(50), at(150))
                   .volume(Volume::gigabytes(1))
                   .max_rate(mbps(100))
                   .build());
  Schedule s;
  s.accept(1, at(0), mbps(100));  // in0 fully busy over [0, 50)
  s.accept(2, at(50), mbps(10));  // in1 lightly busy over [50, 150)
  const std::string gantt =
      render_ingress_gantt(net, rs, s, at(0), at(100), 10);
  // Two rows, one per ingress port.
  EXPECT_NE(gantt.find("in0"), std::string::npos);
  EXPECT_NE(gantt.find("in1"), std::string::npos);
  // in0: first half '#' (full), second half idle.
  const auto in0_line = gantt.substr(0, gantt.find('\n'));
  EXPECT_NE(in0_line.find("#####"), std::string::npos);
  // in1: '.' glyphs (10% utilization) in the second half.
  const auto in1_line = gantt.substr(gantt.find('\n') + 1);
  EXPECT_NE(in1_line.find("....."), std::string::npos);
}

TEST(Gantt, Validation) {
  const Network net = Network::uniform(1, 1, mbps(100));
  EXPECT_THROW((void)render_ingress_gantt(net, std::vector<Request>{}, Schedule{},
                                          at(5), at(5), 10),
               std::invalid_argument);
  EXPECT_THROW((void)render_ingress_gantt(net, std::vector<Request>{}, Schedule{},
                                          at(0), at(5), 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace gridbw
