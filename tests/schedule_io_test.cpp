// Tests for schedule CSV persistence and the Gantt rendering, including the
// bit-exact double round-trip contract (ISSUE 9 satellite): the writer
// renders every start/bw with shortest-round-trip std::to_chars, and the
// reader reparses the identical bit pattern — fuzzed over extreme and
// subnormal magnitudes, and over profiled assignments.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <sstream>

#include "core/rate_profile.hpp"
#include "core/schedule_io.hpp"
#include "util/random.hpp"

namespace gridbw {
namespace {

TimePoint at(double s) { return TimePoint::at_seconds(s); }
Bandwidth mbps(double m) { return Bandwidth::megabytes_per_second(m); }

TEST(ScheduleIo, RoundTrip) {
  Schedule original;
  original.accept(3, at(5.25), mbps(40));
  original.accept(1, at(0), mbps(100));
  original.accept(2, at(5.25), mbps(60));

  std::stringstream ss;
  write_schedule(ss, original);
  const Schedule loaded = read_schedule(ss);
  EXPECT_EQ(loaded.accepted_count(), 3u);
  for (RequestId id : {1u, 2u, 3u}) {
    const auto a = loaded.assignment(id);
    const auto b = original.assignment(id);
    ASSERT_TRUE(a.has_value());
    EXPECT_NEAR(a->start.to_seconds(), b->start.to_seconds(), 1e-6);
    EXPECT_NEAR(a->bw.to_bytes_per_second(), b->bw.to_bytes_per_second(), 1.0);
  }
}

TEST(ScheduleIo, RowsSortedByStartThenId) {
  Schedule s;
  s.accept(9, at(10), mbps(1));
  s.accept(2, at(5), mbps(1));
  s.accept(1, at(10), mbps(1));
  std::stringstream ss;
  write_schedule(ss, s);
  std::string line;
  std::getline(ss, line);  // header
  std::getline(ss, line);
  EXPECT_EQ(line.substr(0, 2), "2,");
  std::getline(ss, line);
  EXPECT_EQ(line.substr(0, 2), "1,");
  std::getline(ss, line);
  EXPECT_EQ(line.substr(0, 2), "9,");
}

TEST(ScheduleIo, EmptySchedule) {
  std::stringstream ss;
  write_schedule(ss, Schedule{});
  const Schedule loaded = read_schedule(ss);
  EXPECT_EQ(loaded.accepted_count(), 0u);
}

TEST(ScheduleIo, RejectsWrongHeader) {
  std::stringstream ss{"nope\n"};
  EXPECT_THROW((void)read_schedule(ss), std::runtime_error);
}

TEST(ScheduleIo, RejectsBadRows) {
  std::stringstream missing{"request,start_s,bw_bps\n1,2.0\n"};
  EXPECT_THROW((void)read_schedule(missing), std::runtime_error);
  std::stringstream extra{"request,start_s,bw_bps\n1,2.0,3.0,4.0\n"};
  EXPECT_THROW((void)read_schedule(extra), std::runtime_error);
  std::stringstream dup{"request,start_s,bw_bps\n1,2.0,3.0\n1,4.0,5.0\n"};
  EXPECT_THROW((void)read_schedule(dup), std::runtime_error);
}

// -- bit-exact round-trip ----------------------------------------------------

bool bit_equal(double a, double b) {
  std::uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof ba);
  std::memcpy(&bb, &b, sizeof bb);
  return ba == bb;
}

TEST(ScheduleIo, RoundTripIsBitExactForExtremeDoubles) {
  // Hand-picked magnitudes the old fixed-precision writer mangled: values
  // needing all 17 significant digits, subnormals, huge exponents, and
  // awkward fractions that %.9f/%.3f rounded away.
  const double starts[] = {0.0,
                           0.1,
                           1.0 / 3.0,
                           123456.78912345678,
                           5e-324,               // smallest subnormal
                           2.2250738585072014e-308,  // smallest normal
                           1e300,
                           9007199254740993.0,   // 2^53 + 1 (rounds to 2^53)
                           0.30000000000000004};
  const double bws[] = {1.0,
                        1e-300,
                        4.9e-324,
                        1.7976931348623157e308,  // largest finite
                        100000000.00000001,
                        3.141592653589793,
                        2.5e8};
  Schedule original;
  RequestId id = 1;
  for (const double s : starts) {
    for (const double b : bws) {
      original.accept(id++, TimePoint::at_seconds(s),
                      Bandwidth::bytes_per_second(b));
    }
  }
  std::stringstream ss;
  write_schedule(ss, original);
  const Schedule loaded = read_schedule(ss);
  ASSERT_EQ(loaded.accepted_count(), original.accepted_count());
  for (RequestId k = 1; k < id; ++k) {
    const auto a = loaded.assignment(k);
    const auto b = original.assignment(k);
    ASSERT_TRUE(a.has_value());
    EXPECT_TRUE(bit_equal(a->start.to_seconds(), b->start.to_seconds()))
        << "id " << k << ": start " << b->start.to_seconds();
    EXPECT_TRUE(bit_equal(a->bw.to_bytes_per_second(), b->bw.to_bytes_per_second()))
        << "id " << k << ": bw " << b->bw.to_bytes_per_second();
  }
}

TEST(ScheduleIo, FuzzRoundTripBitExactAcrossTheDoubleRange) {
  // Uniform over the entire positive-finite bit pattern range: every draw
  // is a valid double (no NaN/inf bit patterns below the max-finite bound),
  // hammering the shortest-round-trip grammar far beyond realistic values.
  Rng rng{20260809};
  std::uint64_t max_finite;
  const double largest = 1.7976931348623157e308;
  std::memcpy(&max_finite, &largest, sizeof max_finite);
  const auto bits = [&rng, max_finite] {
    return static_cast<std::uint64_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(max_finite)));
  };

  Schedule original;
  for (RequestId id = 1; id <= 500; ++id) {
    double start, bw;
    const std::uint64_t bs = bits();
    const std::uint64_t bb = bits();
    std::memcpy(&start, &bs, sizeof start);
    std::memcpy(&bw, &bb, sizeof bw);
    original.accept(id, TimePoint::at_seconds(start), Bandwidth::bytes_per_second(bw));
  }
  std::stringstream ss;
  write_schedule(ss, original);
  const Schedule loaded = read_schedule(ss);
  ASSERT_EQ(loaded.accepted_count(), 500u);
  for (RequestId id = 1; id <= 500; ++id) {
    const auto a = loaded.assignment(id);
    ASSERT_TRUE(a.has_value());
    const auto b = original.assignment(id);
    EXPECT_TRUE(bit_equal(a->start.to_seconds(), b->start.to_seconds()));
    EXPECT_TRUE(bit_equal(a->bw.to_bytes_per_second(), b->bw.to_bytes_per_second()));
  }
  // And the write->read->write fixpoint: the reloaded schedule serializes to
  // the byte-identical CSV.
  std::stringstream again;
  write_schedule(again, loaded);
  EXPECT_EQ(ss.str(), again.str());
}

TEST(ScheduleIo, ProfiledRoundTripPreservesStepsBitExactly) {
  Schedule original;
  original.accept(1, at(0), mbps(100));  // constant row: empty profile cell
  RateProfile p;
  p.append(TimePoint::at_seconds(2.5), Bandwidth::bytes_per_second(1.0 / 3.0));
  p.append(TimePoint::at_seconds(7.125), Bandwidth::bytes_per_second(987654321.123456));
  p.append(TimePoint::at_seconds(11.0), Bandwidth::bytes_per_second(5e-324));
  p.set_end(TimePoint::at_seconds(20.0));
  original.accept_profile(2, std::move(p));

  std::stringstream ss;
  write_schedule(ss, original);
  // Mixed schedule: four-field header, constant rows keep an empty cell.
  std::string header;
  std::getline(ss, header);
  EXPECT_EQ(header, "request,start_s,bw_bps,profile");
  ss.seekg(0);

  const Schedule loaded = read_schedule(ss);
  const auto a = loaded.assignment(2);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(a->is_profiled());
  const auto b = original.assignment(2);
  ASSERT_EQ(a->profile.size(), b->profile.size());
  for (std::size_t k = 0; k < a->profile.size(); ++k) {
    EXPECT_TRUE(bit_equal(a->profile.steps()[k].from.to_seconds(),
                          b->profile.steps()[k].from.to_seconds()));
    EXPECT_TRUE(bit_equal(a->profile.steps()[k].rate.to_bytes_per_second(),
                          b->profile.steps()[k].rate.to_bytes_per_second()));
  }
  EXPECT_TRUE(bit_equal(a->profile.end().to_seconds(), b->profile.end().to_seconds()));
  // The constant row stays constant (no profile materialized on read).
  const auto c = loaded.assignment(1);
  ASSERT_TRUE(c.has_value());
  EXPECT_FALSE(c->is_profiled());

  std::stringstream again;
  write_schedule(again, loaded);
  EXPECT_EQ(ss.str(), again.str());
}

TEST(ScheduleIo, RejectsMalformedProfileCells) {
  const std::string h = "request,start_s,bw_bps,profile\n";
  // Truncated terminator.
  std::stringstream bad1{h + "1,0,10,0@10;5@20\n"};
  EXPECT_THROW((void)read_schedule(bad1), std::runtime_error);
  // Profile start disagrees with the start_s column.
  std::stringstream bad2{h + "1,0,20,1@10;5@20;$30\n"};
  EXPECT_THROW((void)read_schedule(bad2), std::runtime_error);
  // Garbage rate.
  std::stringstream bad3{h + "1,0,10,0@x;$30\n"};
  EXPECT_THROW((void)read_schedule(bad3), std::runtime_error);
  // Non-increasing steps.
  std::stringstream bad4{h + "1,0,20,0@10;0@20;$30\n"};
  EXPECT_THROW((void)read_schedule(bad4), std::runtime_error);
}

TEST(Gantt, RendersOccupationGlyphs) {
  const Network net = Network::uniform(2, 1, mbps(100));
  std::vector<Request> rs;
  rs.push_back(RequestBuilder{1}
                   .from(IngressId{0})
                   .to(EgressId{0})
                   .rigid(at(0), Duration::seconds(50), mbps(100))
                   .build());
  rs.push_back(RequestBuilder{2}
                   .from(IngressId{1})
                   .to(EgressId{0})
                   .window(at(50), at(150))
                   .volume(Volume::gigabytes(1))
                   .max_rate(mbps(100))
                   .build());
  Schedule s;
  s.accept(1, at(0), mbps(100));  // in0 fully busy over [0, 50)
  s.accept(2, at(50), mbps(10));  // in1 lightly busy over [50, 150)
  const std::string gantt =
      render_ingress_gantt(net, rs, s, at(0), at(100), 10);
  // Two rows, one per ingress port.
  EXPECT_NE(gantt.find("in0"), std::string::npos);
  EXPECT_NE(gantt.find("in1"), std::string::npos);
  // in0: first half '#' (full), second half idle.
  const auto in0_line = gantt.substr(0, gantt.find('\n'));
  EXPECT_NE(in0_line.find("#####"), std::string::npos);
  // in1: '.' glyphs (10% utilization) in the second half.
  const auto in1_line = gantt.substr(gantt.find('\n') + 1);
  EXPECT_NE(in1_line.find("....."), std::string::npos);
}

TEST(Gantt, Validation) {
  const Network net = Network::uniform(1, 1, mbps(100));
  EXPECT_THROW((void)render_ingress_gantt(net, std::vector<Request>{}, Schedule{},
                                          at(5), at(5), 10),
               std::invalid_argument);
  EXPECT_THROW((void)render_ingress_gantt(net, std::vector<Request>{}, Schedule{},
                                          at(0), at(5), 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace gridbw
