// Unit tests for the two allocation books.

#include "core/ledger.hpp"

#include <gtest/gtest.h>

namespace gridbw {
namespace {

TimePoint at(double s) { return TimePoint::at_seconds(s); }
Bandwidth mbps(double m) { return Bandwidth::megabytes_per_second(m); }

class NetworkLedgerTest : public ::testing::Test {
 protected:
  Network net_ = Network::uniform(2, 2, mbps(100));
  NetworkLedger ledger_{net_};
};

TEST_F(NetworkLedgerTest, FreshLedgerFitsUpToCapacity) {
  EXPECT_TRUE(ledger_.fits(IngressId{0}, EgressId{0}, at(0), at(10), mbps(100)));
  EXPECT_FALSE(ledger_.fits(IngressId{0}, EgressId{0}, at(0), at(10), mbps(101)));
}

TEST_F(NetworkLedgerTest, ReserveConsumesBothPorts) {
  ledger_.reserve(IngressId{0}, EgressId{1}, at(0), at(10), mbps(60));
  EXPECT_FALSE(ledger_.fits(IngressId{0}, EgressId{0}, at(5), at(8), mbps(50)));
  EXPECT_FALSE(ledger_.fits(IngressId{1}, EgressId{1}, at(5), at(8), mbps(50)));
  EXPECT_TRUE(ledger_.fits(IngressId{1}, EgressId{0}, at(5), at(8), mbps(100)));
  EXPECT_TRUE(ledger_.fits(IngressId{0}, EgressId{0}, at(5), at(8), mbps(40)));
}

TEST_F(NetworkLedgerTest, DisjointTimesDoNotConflict) {
  ledger_.reserve(IngressId{0}, EgressId{0}, at(0), at(10), mbps(100));
  EXPECT_TRUE(ledger_.fits(IngressId{0}, EgressId{0}, at(10), at(20), mbps(100)));
}

TEST_F(NetworkLedgerTest, ReleaseRestoresHeadroom) {
  ledger_.reserve(IngressId{0}, EgressId{0}, at(0), at(10), mbps(80));
  EXPECT_FALSE(ledger_.fits(IngressId{0}, EgressId{0}, at(0), at(10), mbps(30)));
  ledger_.release(IngressId{0}, EgressId{0}, at(0), at(10), mbps(80));
  EXPECT_TRUE(ledger_.fits(IngressId{0}, EgressId{0}, at(0), at(10), mbps(100)));
}

TEST_F(NetworkLedgerTest, HeadroomIsMinAcrossPortsAndTime) {
  ledger_.reserve(IngressId{0}, EgressId{0}, at(0), at(10), mbps(30));
  ledger_.reserve(IngressId{1}, EgressId{0}, at(5), at(15), mbps(20));
  // Ingress 0 has 70 free; egress 0 has 50 free on [5,10).
  EXPECT_DOUBLE_EQ(
      ledger_.headroom(IngressId{0}, EgressId{0}, at(5), at(10)).to_megabytes_per_second(),
      50.0);
  EXPECT_DOUBLE_EQ(
      ledger_.headroom(IngressId{0}, EgressId{0}, at(0), at(5)).to_megabytes_per_second(),
      70.0);
}

TEST_F(NetworkLedgerTest, ExactFillAcceptedWithinTolerance) {
  ledger_.reserve(IngressId{0}, EgressId{0}, at(0), at(10), mbps(60));
  ledger_.reserve(IngressId{0}, EgressId{0}, at(0), at(10), mbps(40));
  // Sum is exactly the capacity; one more byte/s must fail, zero must fit.
  EXPECT_TRUE(ledger_.fits(IngressId{0}, EgressId{0}, at(0), at(10), Bandwidth::zero()));
  EXPECT_FALSE(ledger_.fits(IngressId{0}, EgressId{0}, at(0), at(10), mbps(1)));
}

TEST_F(NetworkLedgerTest, ProfilesAreExposedForInspection) {
  ledger_.reserve(IngressId{1}, EgressId{0}, at(2), at(4), mbps(10));
  EXPECT_DOUBLE_EQ(ledger_.ingress_profile(IngressId{1}).value_at(at(3)), 1e7);
  EXPECT_DOUBLE_EQ(ledger_.egress_profile(EgressId{0}).value_at(at(3)), 1e7);
  EXPECT_DOUBLE_EQ(ledger_.ingress_profile(IngressId{0}).value_at(at(3)), 0.0);
}

class CounterLedgerTest : public ::testing::Test {
 protected:
  Network net_ = Network::uniform(2, 2, mbps(100));
  CounterLedger counters_{net_};
};

TEST_F(CounterLedgerTest, StartsEmpty) {
  EXPECT_EQ(counters_.allocated_ingress(IngressId{0}), Bandwidth::zero());
  EXPECT_EQ(counters_.allocated_egress(EgressId{1}), Bandwidth::zero());
  EXPECT_TRUE(counters_.fits(IngressId{0}, EgressId{0}, mbps(100)));
}

TEST_F(CounterLedgerTest, AllocateAndReclaim) {
  counters_.allocate(IngressId{0}, EgressId{1}, mbps(70));
  EXPECT_EQ(counters_.allocated_ingress(IngressId{0}), mbps(70));
  EXPECT_EQ(counters_.allocated_egress(EgressId{1}), mbps(70));
  EXPECT_FALSE(counters_.fits(IngressId{0}, EgressId{0}, mbps(40)));
  EXPECT_TRUE(counters_.fits(IngressId{0}, EgressId{0}, mbps(30)));
  counters_.reclaim(IngressId{0}, EgressId{1}, mbps(70));
  EXPECT_TRUE(counters_.fits(IngressId{0}, EgressId{1}, mbps(100)));
}

TEST_F(CounterLedgerTest, FitsChecksBothPorts) {
  counters_.allocate(IngressId{0}, EgressId{0}, mbps(90));
  EXPECT_FALSE(counters_.fits(IngressId{0}, EgressId{1}, mbps(20)));  // ingress full
  EXPECT_FALSE(counters_.fits(IngressId{1}, EgressId{0}, mbps(20)));  // egress full
  EXPECT_TRUE(counters_.fits(IngressId{1}, EgressId{1}, mbps(100)));
}

TEST_F(CounterLedgerTest, UtilizationWithHypotheticalRequest) {
  counters_.allocate(IngressId{0}, EgressId{0}, mbps(50));
  EXPECT_DOUBLE_EQ(counters_.ingress_util_with(IngressId{0}, mbps(25)), 0.75);
  EXPECT_DOUBLE_EQ(counters_.egress_util_with(EgressId{0}, mbps(50)), 1.0);
  EXPECT_DOUBLE_EQ(counters_.ingress_util_with(IngressId{1}, Bandwidth::zero()), 0.0);
}

TEST_F(CounterLedgerTest, ReclaimClampsDriftBelowZero) {
  counters_.allocate(IngressId{0}, EgressId{0}, mbps(10));
  counters_.reclaim(IngressId{0}, EgressId{0},
                    mbps(10) + Bandwidth::bytes_per_second(1e-4));
  EXPECT_GE(counters_.allocated_ingress(IngressId{0}).to_bytes_per_second(), 0.0);
  EXPECT_GE(counters_.allocated_egress(EgressId{0}).to_bytes_per_second(), 0.0);
}

TEST_F(CounterLedgerTest, DriftWithinToleranceStaysSilent) {
  // FP noise (sub-byte/s undershoot) is clamped without waking the anomaly
  // hook: no assertion, no kLedgerDriftClamped bump.
  obs::CounterRegistry registry;
  obs::Observer observer{nullptr, &registry};
  counters_.attach_observer(&observer);
  counters_.allocate(IngressId{0}, EgressId{0}, mbps(10));
  counters_.reclaim(IngressId{0}, EgressId{0},
                    mbps(10) + Bandwidth::bytes_per_second(0.5));
  EXPECT_EQ(registry.value(obs::Counter::kLedgerDriftClamped), 0u);
  EXPECT_EQ(counters_.allocated_ingress(IngressId{0}), Bandwidth::zero());
}

// Regression (ISSUE 6 satellite): reclaiming more than was allocated — a
// mismatched allocate/reclaim pair — used to be clamped to zero silently,
// hiding the accounting bug while leaving fits() optimistically biased for
// the rest of the run. It now trips a debug assertion; in assertion-free
// builds it bumps kLedgerDriftClamped on the attached observer instead.
TEST_F(CounterLedgerTest, ReclaimDriftBeyondToleranceIsLoud) {
  obs::CounterRegistry registry;
  obs::Observer observer{nullptr, &registry};
  counters_.attach_observer(&observer);
  counters_.allocate(IngressId{0}, EgressId{0}, mbps(10));
#ifndef NDEBUG
  EXPECT_DEATH(counters_.reclaim(IngressId{0}, EgressId{0}, mbps(20)),
               "drift beyond tolerance");
#else
  counters_.reclaim(IngressId{0}, EgressId{0}, mbps(20));
  // Both the ingress and the egress counter went 10 MB/s negative.
  EXPECT_EQ(registry.value(obs::Counter::kLedgerDriftClamped), 2u);
  // The clamp itself still holds: counters never stay negative.
  EXPECT_EQ(counters_.allocated_ingress(IngressId{0}), Bandwidth::zero());
  EXPECT_EQ(counters_.allocated_egress(EgressId{0}), Bandwidth::zero());
#endif
}

TEST_F(CounterLedgerTest, DriftHookDetachesWithNull) {
  obs::CounterRegistry registry;
  obs::Observer observer{nullptr, &registry};
  counters_.attach_observer(&observer);
  counters_.attach_observer(nullptr);
  counters_.allocate(IngressId{0}, EgressId{0}, mbps(10));
#ifdef NDEBUG
  counters_.reclaim(IngressId{0}, EgressId{0}, mbps(20));
  EXPECT_EQ(registry.value(obs::Counter::kLedgerDriftClamped), 0u);
#endif
}

TEST_F(CounterLedgerTest, ManyAllocReclaimCyclesStayExact) {
  for (int k = 0; k < 10000; ++k) {
    counters_.allocate(IngressId{0}, EgressId{0}, mbps(33.3));
    counters_.reclaim(IngressId{0}, EgressId{0}, mbps(33.3));
  }
  EXPECT_NEAR(counters_.allocated_ingress(IngressId{0}).to_bytes_per_second(), 0.0, 1.0);
  EXPECT_TRUE(counters_.fits(IngressId{0}, EgressId{0}, mbps(100)));
}

TEST_F(CounterLedgerTest, ResetZeroesInPlace) {
  counters_.allocate(IngressId{0}, EgressId{1}, mbps(70));
  counters_.allocate(IngressId{1}, EgressId{0}, mbps(40));
  counters_.reset();
  EXPECT_EQ(counters_.allocated_ingress(IngressId{0}), Bandwidth::zero());
  EXPECT_EQ(counters_.allocated_ingress(IngressId{1}), Bandwidth::zero());
  EXPECT_EQ(counters_.allocated_egress(EgressId{0}), Bandwidth::zero());
  EXPECT_EQ(counters_.allocated_egress(EgressId{1}), Bandwidth::zero());
}

class AdmissionLedgerTest : public ::testing::Test {
 protected:
  Network net_ = Network::uniform(2, 2, mbps(100));
  AdmissionLedger book_{net_, 4};
};

TEST_F(AdmissionLedgerTest, TryAdmitAllocatesAndRecords) {
  EXPECT_TRUE(book_.try_admit(0, IngressId{0}, EgressId{0}, mbps(60)));
  EXPECT_TRUE(book_.is_admitted(0));
  EXPECT_EQ(book_.admitted_bw(0), mbps(60));
  EXPECT_EQ(book_.counters().allocated_ingress(IngressId{0}), mbps(60));
}

TEST_F(AdmissionLedgerTest, TryAdmitRejectsWithoutSideEffects) {
  EXPECT_TRUE(book_.try_admit(0, IngressId{0}, EgressId{0}, mbps(80)));
  EXPECT_FALSE(book_.try_admit(1, IngressId{0}, EgressId{1}, mbps(30)));
  EXPECT_FALSE(book_.is_admitted(1));
  EXPECT_EQ(book_.counters().allocated_ingress(IngressId{0}), mbps(80));
  EXPECT_EQ(book_.counters().allocated_egress(EgressId{1}), Bandwidth::zero());
}

TEST_F(AdmissionLedgerTest, DropReclaimsExactlyOnce) {
  ASSERT_TRUE(book_.try_admit(0, IngressId{0}, EgressId{0}, mbps(80)));
  book_.drop(0, IngressId{0}, EgressId{0});
  EXPECT_FALSE(book_.is_admitted(0));
  EXPECT_EQ(book_.counters().allocated_ingress(IngressId{0}), Bandwidth::zero());
  // A second drop of the same member must be a no-op.
  book_.drop(0, IngressId{0}, EgressId{0});
  EXPECT_EQ(book_.counters().allocated_ingress(IngressId{0}), Bandwidth::zero());
  EXPECT_TRUE(book_.try_admit(1, IngressId{0}, EgressId{0}, mbps(100)));
}

TEST_F(AdmissionLedgerTest, DropOfNeverAdmittedIsNoOp) {
  book_.drop(3, IngressId{1}, EgressId{1});
  EXPECT_EQ(book_.counters().allocated_ingress(IngressId{1}), Bandwidth::zero());
}

TEST_F(AdmissionLedgerTest, ResetClearsEverything) {
  ASSERT_TRUE(book_.try_admit(0, IngressId{0}, EgressId{0}, mbps(50)));
  ASSERT_TRUE(book_.try_admit(1, IngressId{1}, EgressId{1}, mbps(50)));
  book_.reset();
  EXPECT_FALSE(book_.is_admitted(0));
  EXPECT_FALSE(book_.is_admitted(1));
  EXPECT_TRUE(book_.try_admit(2, IngressId{0}, EgressId{0}, mbps(100)));
}

}  // namespace
}  // namespace gridbw
