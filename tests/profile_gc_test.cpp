// Retired-breakpoint GC (ISSUE 7 tentpole): differential proof that
// TimelineProfile::retire_before keeps post-horizon query semantics
// bit-identical, plus the NetworkLedger release -> GC -> re-admit round
// trip and the resident-breakpoint bound the churn engine relies on.
//
// The EXPECT_EQ assertions below compare raw doubles on purpose: the GC
// contract is exact equality (the compacted standing breakpoint folds to
// the same prefix sums bit for bit), not approximate agreement.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/ledger.hpp"
#include "core/timeline_profile.hpp"
#include "workload/generator.hpp"
#include "workload/load.hpp"
#include "workload/scenario.hpp"

namespace gridbw {
namespace {

constexpr std::uint64_t kSeeds[] = {7, 1234, 99999};

/// Fig-4-shaped rigid workload (the paper's §4.3 arrival mix).
std::vector<Request> fig4_workload(std::uint64_t seed, std::size_t count) {
  workload::Scenario scenario =
      workload::paper_rigid(Duration::seconds(1), Duration::seconds(1));
  scenario.spec.mean_interarrival =
      workload::interarrival_for_load(scenario.spec, scenario.network, 3.0);
  scenario.spec.horizon =
      scenario.spec.mean_interarrival * static_cast<double>(count);
  Rng rng{seed};
  auto requests = workload::generate(scenario.spec, rng);
  if (requests.size() > count) requests.resize(count);
  return requests;
}

/// Loads every request's [release, deadline) @ min_rate into one profile.
TimelineProfile profile_of(const std::vector<Request>& requests) {
  TimelineProfile profile;
  for (const Request& r : requests) {
    if (!(r.deadline > r.release)) continue;
    profile.add(r.release, r.deadline, r.min_rate().to_bytes_per_second());
  }
  profile.ensure_merged();
  return profile;
}

// --- retire_before differential -------------------------------------------

TEST(ProfileGc, PostHorizonQueriesBitIdenticalAcrossSeeds) {
  for (const std::uint64_t seed : kSeeds) {
    const auto requests = fig4_workload(seed, 600);
    ASSERT_GT(requests.size(), 100u);
    const TimelineProfile reference = profile_of(requests);

    // Retire at several horizons spread over the busy span.
    TimePoint last;
    for (const Request& r : requests) last = max(last, r.deadline);
    for (const double frac : {0.25, 0.5, 0.9}) {
      TimelineProfile gc = profile_of(requests);
      const TimePoint horizon = TimePoint::at_seconds(last.to_seconds() * frac);
      const std::size_t planned = gc.retirable_before(horizon);
      const std::size_t retired = gc.retire_before(horizon);
      EXPECT_EQ(planned, retired);
      EXPECT_EQ(gc.breakpoint_count() + retired, reference.breakpoint_count());

      // Dense query sweep at and after the horizon: values, window maxima,
      // and integrals must be the exact same doubles.
      const double h = horizon.to_seconds();
      const double span = last.to_seconds() - h;
      for (int k = 0; k <= 200; ++k) {
        const TimePoint t =
            TimePoint::at_seconds(h + span * static_cast<double>(k) / 200.0);
        EXPECT_EQ(gc.value_at(t), reference.value_at(t)) << "seed " << seed;
        const TimePoint t1 = TimePoint::at_seconds(t.to_seconds() + span / 7.0);
        EXPECT_EQ(gc.max_over(t, t1), reference.max_over(t, t1));
        EXPECT_EQ(gc.integral(t, t1), reference.integral(t, t1));
      }
      // A second retirement at the same horizon is a no-op.
      EXPECT_EQ(gc.retire_before(horizon), 0u);
    }
  }
}

TEST(ProfileGc, StandingLoadVisibleBeforeHorizon) {
  TimelineProfile profile;
  profile.add(TimePoint::at_seconds(1.0), TimePoint::at_seconds(5.0), 100.0);
  profile.add(TimePoint::at_seconds(2.0), TimePoint::at_seconds(8.0), 50.0);
  profile.ensure_merged();
  const double at_6 = profile.value_at(TimePoint::at_seconds(6.0));

  ASSERT_GT(profile.retire_before(TimePoint::at_seconds(6.0)), 0u);
  // Post-horizon: exact.
  EXPECT_EQ(profile.value_at(TimePoint::at_seconds(6.0)), at_6);
  EXPECT_EQ(profile.value_at(TimePoint::at_seconds(9.0)), 0.0);
  // Pre-horizon queries see the folded standing load (documented loss of
  // pre-horizon resolution), never a negative or larger-than-peak value.
  EXPECT_EQ(profile.value_at(TimePoint::at_seconds(5.5)), at_6);
}

// --- boundary semantics at the retire_before horizon (ISSUE 9 satellite) --

TEST(ProfileGc, RetireAtExactBreakpointInstantKeepsTheAtHorizonBreakpoint) {
  // Horizon landing exactly ON a breakpoint: only instants strictly before
  // it fold; the at-horizon breakpoint (and every query from it on) is
  // bit-identical history, not standing load.
  TimelineProfile profile;
  profile.add(TimePoint::at_seconds(0.0), TimePoint::at_seconds(10.0), 5.0);
  profile.add(TimePoint::at_seconds(10.0), TimePoint::at_seconds(20.0), 3.0);
  profile.add(TimePoint::at_seconds(20.0), TimePoint::at_seconds(30.0), 7.0);
  profile.ensure_merged();
  TimelineProfile gc = profile;

  const TimePoint h = TimePoint::at_seconds(20.0);  // exact breakpoint
  EXPECT_EQ(gc.retirable_before(h), 1u);  // 0 folds into 10; 20 survives
  EXPECT_EQ(gc.retire_before(h), 1u);
  for (const double t : {20.0, 20.0 + 1e-9, 25.0, 30.0, 31.0}) {
    const TimePoint tp = TimePoint::at_seconds(t);
    EXPECT_EQ(gc.value_at(tp), profile.value_at(tp)) << "t=" << t;
  }
  EXPECT_EQ(gc.integral(h, TimePoint::at_seconds(30.0)),
            profile.integral(h, TimePoint::at_seconds(30.0)));
  EXPECT_EQ(gc.max_over(h, TimePoint::at_seconds(30.0)),
            profile.max_over(h, TimePoint::at_seconds(30.0)));
}

TEST(ProfileGc, WindowStraddlingTheFoldedBreakpointUsesStandingLoadOnly) {
  // [0,10)@5 + [10,20)@3, retired at 15: the standing breakpoint sits at 10
  // carrying load 3. A window straddling it must integrate 0 before the
  // standing instant and 3 after — never resurrect the retired 5 — and
  // max_over must report the standing load, not the retired peak.
  TimelineProfile profile;
  profile.add(TimePoint::at_seconds(0.0), TimePoint::at_seconds(10.0), 5.0);
  profile.add(TimePoint::at_seconds(10.0), TimePoint::at_seconds(20.0), 3.0);
  profile.ensure_merged();
  ASSERT_EQ(profile.retire_before(TimePoint::at_seconds(15.0)), 1u);

  // [5, 15): zero over [5,10) + 3 over [10,15).
  EXPECT_EQ(profile.integral(TimePoint::at_seconds(5.0), TimePoint::at_seconds(15.0)),
            15.0);
  EXPECT_EQ(profile.max_over(TimePoint::at_seconds(5.0), TimePoint::at_seconds(15.0)),
            3.0);
  // Entirely before the standing instant: nothing left there.
  EXPECT_EQ(profile.integral(TimePoint::at_seconds(2.0), TimePoint::at_seconds(8.0)),
            0.0);
  EXPECT_EQ(profile.max_over(TimePoint::at_seconds(2.0), TimePoint::at_seconds(8.0)),
            0.0);
  // Post-horizon window stays exact.
  EXPECT_EQ(profile.integral(TimePoint::at_seconds(15.0), TimePoint::at_seconds(20.0)),
            15.0);
}

TEST(ProfileGc, HorizonQueriesAtTheExactHorizonInstantAreBitIdentical) {
  // Minimal deterministic pin of the sweep invariant: the query anchored
  // exactly at the horizon (the first post-GC instant callers probe, e.g.
  // the churn service's watermark) returns the same doubles pre/post GC,
  // for a horizon strictly between breakpoints.
  TimelineProfile profile;
  profile.add(TimePoint::at_seconds(1.0), TimePoint::at_seconds(4.0), 0.1);
  profile.add(TimePoint::at_seconds(2.0), TimePoint::at_seconds(7.0), 0.2);
  profile.add(TimePoint::at_seconds(3.0), TimePoint::at_seconds(9.0), 0.3);
  profile.ensure_merged();
  TimelineProfile gc = profile;
  const TimePoint h = TimePoint::at_seconds(5.5);  // between breakpoints 4 and 7

  const double v = profile.value_at(h);
  const double m = profile.max_over(h, TimePoint::at_seconds(10.0));
  const double i = profile.integral(h, TimePoint::at_seconds(10.0));
  ASSERT_GT(gc.retire_before(h), 0u);
  EXPECT_EQ(gc.value_at(h), v);
  EXPECT_EQ(gc.max_over(h, TimePoint::at_seconds(10.0)), m);
  EXPECT_EQ(gc.integral(h, TimePoint::at_seconds(10.0)), i);
  // Degenerate windows at the horizon are 0 on both sides, not NaN or the
  // standing load.
  EXPECT_EQ(gc.integral(h, h), 0.0);
  EXPECT_EQ(gc.max_over(h, h), 0.0);
  EXPECT_EQ(gc.integral(TimePoint::at_seconds(6.0), h), 0.0);  // inverted
}

TEST(ProfileGc, RetireKeepsAddPathUsable) {
  // After a fold the profile must keep absorbing adds at/after the horizon.
  TimelineProfile profile;
  for (int k = 0; k < 100; ++k) {
    profile.add(TimePoint::at_seconds(k), TimePoint::at_seconds(k + 1), 10.0);
  }
  profile.ensure_merged();
  ASSERT_GT(profile.retire_before(TimePoint::at_seconds(90.0)), 0u);
  profile.add(TimePoint::at_seconds(95.0), TimePoint::at_seconds(99.0), 7.0);
  EXPECT_EQ(profile.value_at(TimePoint::at_seconds(96.0)), 17.0);
  EXPECT_EQ(profile.value_at(TimePoint::at_seconds(100.5)), 0.0);
}

// --- ledger round trip ----------------------------------------------------

TEST(LedgerGc, ReleaseCollectReAdmitMatchesFreshLedger) {
  for (const std::uint64_t seed : kSeeds) {
    const auto requests = fig4_workload(seed, 3000);
    const Network net = workload::paper_rigid(Duration::seconds(1),
                                              Duration::seconds(1))
                            .network;

    NetworkLedger churned{net};
    std::vector<std::size_t> admitted;
    for (std::size_t k = 0; k < requests.size(); ++k) {
      const Request& r = requests[k];
      if (churned.fits(r.ingress, r.egress, r.release, r.deadline, r.min_rate())) {
        churned.reserve(r.ingress, r.egress, r.release, r.deadline, r.min_rate());
        admitted.push_back(k);
      }
    }
    ASSERT_GT(admitted.size(), 10u);

    // Expire the earliest 80% by deadline — enough churn that the per-port
    // amortization thresholds (>= 64 retirable, >= half the residents)
    // actually fire — then GC at the live watermark.
    std::vector<std::size_t> by_deadline = admitted;
    std::sort(by_deadline.begin(), by_deadline.end(), [&](std::size_t a, std::size_t b) {
      return requests[a].deadline < requests[b].deadline;
    });
    const std::size_t half = by_deadline.size() * 4 / 5;
    for (std::size_t j = 0; j < half; ++j) {
      const Request& r = requests[by_deadline[j]];
      churned.release(r.ingress, r.egress, r.release, r.deadline, r.min_rate());
    }
    TimePoint watermark = requests[by_deadline[half]].deadline;
    for (std::size_t j = half; j < by_deadline.size(); ++j) {
      watermark = min(watermark, requests[by_deadline[j]].release);
    }
    churned.advance_horizon(watermark);
    const std::size_t retired = churned.collect_retired();
    EXPECT_GT(retired, 0u) << "seed " << seed;

    // A fresh ledger holding only the live reservations must agree with the
    // churned + compacted one on every post-watermark admission probe.
    NetworkLedger fresh{net};
    for (std::size_t j = half; j < by_deadline.size(); ++j) {
      const Request& r = requests[by_deadline[j]];
      fresh.reserve(r.ingress, r.egress, r.release, r.deadline, r.min_rate());
    }
    std::size_t disagreements = 0;
    for (const Request& r : requests) {
      const TimePoint t0 = max(r.release, watermark);
      const TimePoint t1 = max(r.deadline, watermark);
      if (!(t1 > t0)) continue;
      if (churned.fits(r.ingress, r.egress, t0, t1, r.min_rate()) !=
          fresh.fits(r.ingress, r.egress, t0, t1, r.min_rate())) {
        ++disagreements;
      }
    }
    EXPECT_EQ(disagreements, 0u) << "seed " << seed;
  }
}

TEST(LedgerGc, SteadyStateResidencyStaysBounded) {
  const Network net = Network::uniform(2, 2, Bandwidth::gigabytes_per_second(1));
  NetworkLedger gc_on{net};
  NetworkLedger gc_off{net};
  const Bandwidth bw = Bandwidth::megabytes_per_second(10);

  // 20k sequential short reservations; at most ~16 live at once.
  constexpr std::size_t kChurn = 20000;
  std::size_t peak_resident = 0;
  for (std::size_t k = 0; k < kChurn; ++k) {
    const auto t0 = TimePoint::at_seconds(static_cast<double>(k));
    const auto t1 = TimePoint::at_seconds(static_cast<double>(k + 16));
    const IngressId i{k % 2};
    const EgressId e{(k / 2) % 2};
    gc_on.reserve(i, e, t0, t1, bw);
    gc_off.reserve(i, e, t0, t1, bw);
    if (k >= 16) {
      const auto s0 = TimePoint::at_seconds(static_cast<double>(k - 16));
      const auto s1 = TimePoint::at_seconds(static_cast<double>(k));
      const IngressId ri{(k - 16) % 2};
      const EgressId re{((k - 16) / 2) % 2};
      gc_on.release(ri, re, s0, s1, bw);
      gc_off.release(ri, re, s0, s1, bw);
      // Safe watermark: the earliest still-live reservation starts at k-15.
      gc_on.advance_horizon(TimePoint::at_seconds(static_cast<double>(k - 15)));
    }
    peak_resident = std::max(peak_resident, gc_on.resident_breakpoints());
  }
  // GC keeps residency O(live + batch); without it the profiles hold the
  // whole history.
  EXPECT_LT(peak_resident, 2000u);
  EXPECT_GT(gc_off.resident_breakpoints(), 10000u);
  EXPECT_LT(gc_on.resident_breakpoints(), 1000u);
}

}  // namespace
}  // namespace gridbw
