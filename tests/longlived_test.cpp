// Tests for the long-lived request module: the polynomial uniform optimum
// (max-flow) against brute force and the greedy baseline.

#include <gtest/gtest.h>

#include <vector>

#include "longlived/longlived.hpp"
#include "util/random.hpp"

namespace gridbw::longlived {
namespace {

Bandwidth mbps(double m) { return Bandwidth::megabytes_per_second(m); }

LongLivedRequest make(RequestId id, std::size_t in, std::size_t out, double rate_mbps) {
  return LongLivedRequest{id, IngressId{in}, EgressId{out}, mbps(rate_mbps)};
}

TEST(UniformOptimal, AcceptsAllWhenSlotsSuffice) {
  const Network net = Network::uniform(2, 2, mbps(100));
  const std::vector<LongLivedRequest> rs{make(1, 0, 0, 50), make(2, 0, 1, 50),
                                         make(3, 1, 0, 50), make(4, 1, 1, 50)};
  const auto out = schedule_uniform_optimal(net, rs, mbps(50));
  EXPECT_EQ(out.accepted_count(), 4u);
  EXPECT_TRUE(is_feasible(net, rs, out.accepted));
}

TEST(UniformOptimal, RespectsIngressSlots) {
  const Network net = Network::uniform(1, 3, mbps(100));
  // Ingress 0 has floor(100/40) = 2 slots for 3 requests.
  const std::vector<LongLivedRequest> rs{make(1, 0, 0, 40), make(2, 0, 1, 40),
                                         make(3, 0, 2, 40)};
  const auto out = schedule_uniform_optimal(net, rs, mbps(40));
  EXPECT_EQ(out.accepted_count(), 2u);
  EXPECT_EQ(out.rejected.size(), 1u);
  EXPECT_TRUE(is_feasible(net, rs, out.accepted));
}

TEST(UniformOptimal, BeatsGreedyOnTheExchangePattern) {
  // Greedy (in id order) routes r1 from in0 to out0; then r2 (in0 -> out1)
  // exhausts in0; r3 (in1 -> out0) exhausts out0... construct the pattern
  // where a bad early choice costs a request: capacities of exactly one
  // slot each, requests (0->0), (0->1), (1->0): greedy takes (0->0) and
  // blocks both others; the optimum takes the other two.
  const Network net = Network::uniform(2, 2, mbps(100));
  const std::vector<LongLivedRequest> rs{make(1, 0, 0, 100), make(2, 0, 1, 100),
                                         make(3, 1, 0, 100)};
  const auto greedy = schedule_greedy(net, rs);
  const auto optimal = schedule_uniform_optimal(net, rs, mbps(100));
  EXPECT_EQ(greedy.accepted_count(), 1u);
  EXPECT_EQ(optimal.accepted_count(), 2u);
  EXPECT_TRUE(is_feasible(net, rs, optimal.accepted));
}

TEST(UniformOptimal, RejectsNonUniformInput) {
  const Network net = Network::uniform(1, 1, mbps(100));
  const std::vector<LongLivedRequest> rs{make(1, 0, 0, 50), make(2, 0, 0, 60)};
  EXPECT_THROW((void)schedule_uniform_optimal(net, rs, mbps(50)),
               std::invalid_argument);
  EXPECT_THROW(
      (void)schedule_uniform_optimal(net, std::vector<LongLivedRequest>{},
                                     Bandwidth::zero()),
      std::invalid_argument);
}

TEST(UniformOptimal, EmptyRequestSet) {
  const Network net = Network::uniform(1, 1, mbps(100));
  const auto out =
      schedule_uniform_optimal(net, std::vector<LongLivedRequest>{}, mbps(10));
  EXPECT_EQ(out.accepted_count(), 0u);
  EXPECT_DOUBLE_EQ(out.accept_rate(), 0.0);
}

TEST(Greedy, HandlesHeterogeneousRates) {
  const Network net = Network::uniform(1, 1, mbps(100));
  const std::vector<LongLivedRequest> rs{make(1, 0, 0, 60), make(2, 0, 0, 30),
                                         make(3, 0, 0, 20)};
  const auto out = schedule_greedy(net, rs);
  // 60 + 30 fit; 20 does not (90 + 20 > 100).
  EXPECT_EQ(out.accepted_count(), 2u);
  EXPECT_TRUE(is_feasible(net, rs, out.accepted));
}

TEST(Greedy, RejectsNonPositiveRate) {
  const Network net = Network::uniform(1, 1, mbps(100));
  const std::vector<LongLivedRequest> rs{
      LongLivedRequest{1, IngressId{0}, EgressId{0}, Bandwidth::zero()}};
  EXPECT_THROW((void)schedule_greedy(net, rs), std::invalid_argument);
}

TEST(IsFeasible, CatchesViolations) {
  const Network net = Network::uniform(1, 1, mbps(100));
  const std::vector<LongLivedRequest> rs{make(1, 0, 0, 80), make(2, 0, 0, 80)};
  EXPECT_TRUE(is_feasible(net, rs, std::vector<RequestId>{1}));
  EXPECT_FALSE(is_feasible(net, rs, std::vector<RequestId>{1, 2}));  // over capacity
  EXPECT_FALSE(is_feasible(net, rs, std::vector<RequestId>{9}));     // unknown
  EXPECT_FALSE(is_feasible(net, rs, std::vector<RequestId>{1, 1}));  // duplicate
}

// ---------------------------------------------------------------------------
// Properties on random instances: max-flow optimum == brute force, and
// greedy never beats it.
// ---------------------------------------------------------------------------

class UniformOptimality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UniformOptimality, MatchesBruteForceAndDominatesGreedy) {
  Rng rng{GetParam()};
  const Network net = Network::uniform(3, 3, mbps(100));
  const Bandwidth b = mbps(static_cast<double>(rng.uniform_int(25, 55)));
  std::vector<LongLivedRequest> rs;
  const auto count = static_cast<RequestId>(rng.uniform_int(5, 12));
  for (RequestId id = 1; id <= count; ++id) {
    rs.push_back(LongLivedRequest{
        id, IngressId{static_cast<std::size_t>(rng.uniform_int(0, 2))},
        EgressId{static_cast<std::size_t>(rng.uniform_int(0, 2))}, b});
  }
  const auto optimal = schedule_uniform_optimal(net, rs, b);
  const auto greedy = schedule_greedy(net, rs);
  EXPECT_TRUE(is_feasible(net, rs, optimal.accepted));
  EXPECT_TRUE(is_feasible(net, rs, greedy.accepted));
  EXPECT_EQ(optimal.accepted_count(), optimal_bruteforce(net, rs));
  EXPECT_LE(greedy.accepted_count(), optimal.accepted_count());
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, UniformOptimality,
                         ::testing::Values(301, 302, 303, 304, 305, 306, 307, 308));

}  // namespace
}  // namespace gridbw::longlived
