// Tests for the §4 rigid-request heuristics: FCFS and the time-window
// decomposition (*-SLOTS) family. Hand-built scenarios pin down the exact
// decision rules; parameterized property sweeps validate every produced
// schedule against the independent validator.

#include <gtest/gtest.h>

#include <vector>

#include "core/validate.hpp"
#include "heuristics/registry.hpp"
#include "heuristics/rigid_fcfs.hpp"
#include "heuristics/rigid_slots.hpp"
#include "metrics/objectives.hpp"
#include "workload/generator.hpp"
#include "workload/load.hpp"
#include "workload/scenario.hpp"

namespace gridbw::heuristics {
namespace {

TimePoint at(double s) { return TimePoint::at_seconds(s); }
Bandwidth mbps(double m) { return Bandwidth::megabytes_per_second(m); }

Request rigid(RequestId id, double ts, double len, double rate_mbps, std::size_t in = 0,
              std::size_t out = 0) {
  return RequestBuilder{id}
      .from(IngressId{in})
      .to(EgressId{out})
      .rigid(at(ts), Duration::seconds(len), mbps(rate_mbps))
      .build();
}

TEST(RigidFcfs, AcceptsEverythingWhenCapacitySuffices) {
  const Network net = Network::uniform(1, 1, mbps(100));
  const std::vector<Request> rs{rigid(1, 0, 10, 40), rigid(2, 0, 10, 60)};
  const auto result = schedule_rigid_fcfs(net, rs);
  EXPECT_EQ(result.accepted_count(), 2u);
  EXPECT_TRUE(result.rejected.empty());
}

TEST(RigidFcfs, RejectsWhatDoesNotFit) {
  const Network net = Network::uniform(1, 1, mbps(100));
  const std::vector<Request> rs{rigid(1, 0, 10, 80), rigid(2, 5, 10, 30)};
  const auto result = schedule_rigid_fcfs(net, rs);
  EXPECT_TRUE(result.schedule.is_accepted(1));
  EXPECT_FALSE(result.schedule.is_accepted(2));
}

TEST(RigidFcfs, EqualStartTimesServeSmallestBandwidthFirst) {
  const Network net = Network::uniform(1, 1, mbps(100));
  // Both arrive at t=0; 70+40 > 100 so only one fits. The §4.1 rule picks
  // the smaller demand (id 2) even though id 1 has the smaller id.
  const std::vector<Request> rs{rigid(1, 0, 10, 70), rigid(2, 0, 10, 40)};
  const auto result = schedule_rigid_fcfs(net, rs);
  EXPECT_TRUE(result.schedule.is_accepted(2));
  EXPECT_FALSE(result.schedule.is_accepted(1));
}

TEST(RigidFcfs, EarlierArrivalWinsRegardlessOfSize) {
  const Network net = Network::uniform(1, 1, mbps(100));
  // The big request arrives first and blocks the small one: the FIFO
  // pathology the paper's Fig. 4 exhibits.
  const std::vector<Request> rs{rigid(1, 0, 100, 90), rigid(2, 1, 10, 20),
                                rigid(3, 2, 10, 20)};
  const auto result = schedule_rigid_fcfs(net, rs);
  EXPECT_TRUE(result.schedule.is_accepted(1));
  EXPECT_FALSE(result.schedule.is_accepted(2));
  EXPECT_FALSE(result.schedule.is_accepted(3));
}

TEST(RigidFcfs, RejectsRequestExceedingPortCapacity) {
  const Network net = Network::uniform(1, 1, mbps(100));
  const std::vector<Request> rs{rigid(1, 0, 10, 150)};
  const auto result = schedule_rigid_fcfs(net, rs);
  EXPECT_EQ(result.accepted_count(), 0u);
}

TEST(RigidFcfs, AssignsMinRateOverFullWindow) {
  const Network net = Network::uniform(1, 1, mbps(100));
  const std::vector<Request> rs{rigid(1, 3, 10, 50)};
  const auto result = schedule_rigid_fcfs(net, rs);
  const auto a = result.schedule.assignment(1);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->start, at(3));
  EXPECT_EQ(a->bw, mbps(50));
}

TEST(SlotCostFactors, CumulatedFormula) {
  const Network net = Network::uniform(1, 1, mbps(100));
  const Request r = rigid(1, 0, 100, 50);
  // On slice [50, 60]: priority = 60/100 = 0.6; b_min = 100 MB/s.
  // cost = (50/100) / 0.6 = 0.8333...
  EXPECT_NEAR(slot_cost(net, r, SlotCost::kCumulated, at(50), at(60)), 0.5 / 0.6, 1e-9);
}

TEST(SlotCostFactors, MinBwAndMinVol) {
  const Network net = Network::uniform(1, 1, mbps(100));
  const Request r = rigid(1, 0, 100, 50);
  EXPECT_DOUBLE_EQ(slot_cost(net, r, SlotCost::kMinBandwidth, at(0), at(1)), 5e7);
  EXPECT_DOUBLE_EQ(slot_cost(net, r, SlotCost::kMinVolume, at(0), at(1)),
                   r.volume.to_bytes());
}

TEST(SlotCostFactors, CumulatedPrefersShorterRequestsAtEqualStart) {
  const Network net = Network::uniform(1, 1, mbps(100));
  const Request short_r = rigid(1, 0, 10, 50);
  const Request long_r = rigid(2, 0, 100, 50);
  // First slice [0, 10]: the short request has priority 1, the long 0.1.
  EXPECT_LT(slot_cost(net, short_r, SlotCost::kCumulated, at(0), at(10)),
            slot_cost(net, long_r, SlotCost::kCumulated, at(0), at(10)));
}

TEST(RigidSlots, BeatsFcfsOnTheBlockingPattern) {
  const Network net = Network::uniform(1, 1, mbps(100));
  // One huge long request vs many small short ones. FIFO accepts the big
  // one and starves the rest; MINBW-SLOTS keeps the small ones.
  std::vector<Request> rs{rigid(1, 0, 1000, 90)};
  for (RequestId id = 2; id <= 21; ++id) {
    rs.push_back(rigid(id, static_cast<double>(id), 10, 30));
  }
  const auto fifo = schedule_rigid_fcfs(net, rs);
  const auto minbw = schedule_rigid_slots(net, rs, SlotCost::kMinBandwidth);
  EXPECT_EQ(fifo.accepted_count(), 1u);
  EXPECT_GT(minbw.accepted_count(), fifo.accepted_count());
  EXPECT_GE(minbw.accepted_count(), 5u);
  EXPECT_FALSE(minbw.schedule.is_accepted(1));  // the hog is evicted
}

TEST(RigidSlots, RetroRemovalDiscardsRequestFailingMidWindow) {
  const Network net = Network::uniform(1, 1, mbps(100));
  // Request 1 spans [0, 100] at 60. Request 2 (short, smaller bw in its
  // slice, arriving at 50) demands 50: in slice [50, 60] both cannot fit.
  // With MINBW cost, request 2 (50 < 60) wins and request 1 is removed.
  const std::vector<Request> rs{rigid(1, 0, 100, 60), rigid(2, 50, 10, 50)};
  const auto result = schedule_rigid_slots(net, rs, SlotCost::kMinBandwidth);
  EXPECT_TRUE(result.schedule.is_accepted(2));
  EXPECT_FALSE(result.schedule.is_accepted(1));
}

TEST(RigidSlots, CumulatedProtectsLongRunningRequests) {
  const Network net = Network::uniform(1, 1, mbps(100));
  // Same pattern, but CUMULATED gives the long request priority in late
  // slices (priority ~ 0.6 at t=50 vs 1.0 for the newcomer, and
  // 60/(100*0.6) = 1.0 vs 50/(100*1.0) = 0.5)... newcomer still cheaper.
  // Use a newcomer with slightly larger bandwidth so history wins:
  // newcomer cost 0.95 vs incumbent cost (60/100)/0.6 = 1.0 -> still loses.
  // The distinguishing case: incumbent near its end (priority ~1).
  const std::vector<Request> rs{rigid(1, 0, 100, 60), rigid(2, 90, 10, 60)};
  const auto result = schedule_rigid_slots(net, rs, SlotCost::kCumulated);
  // In slice [90,100]: incumbent priority 1.0 -> cost 0.6; newcomer
  // priority 1.0 -> cost 0.6; tie broken by id -> incumbent (id 1) first.
  EXPECT_TRUE(result.schedule.is_accepted(1));
  EXPECT_FALSE(result.schedule.is_accepted(2));
}

TEST(RigidSlots, MinVolPrefersSmallVolumes) {
  const Network net = Network::uniform(1, 1, mbps(100));
  // Small-volume request with huge bandwidth vs large-volume request with
  // small bandwidth, same slice: MINVOL picks the small volume (and then
  // cannot fit the other), MINBW the small bandwidth.
  const std::vector<Request> rs{rigid(1, 0, 1, 80),    // vol 80 MB
                                rigid(2, 0, 100, 30)}; // vol 3 GB
  const auto minvol = schedule_rigid_slots(net, rs, SlotCost::kMinVolume);
  const auto minbw = schedule_rigid_slots(net, rs, SlotCost::kMinBandwidth);
  EXPECT_TRUE(minvol.schedule.is_accepted(1));
  EXPECT_FALSE(minvol.schedule.is_accepted(2));
  EXPECT_TRUE(minbw.schedule.is_accepted(2));
  EXPECT_FALSE(minbw.schedule.is_accepted(1));
}

TEST(RigidSlots, IndependentPortsDoNotInterfere) {
  const Network net = Network::uniform(2, 2, mbps(100));
  const std::vector<Request> rs{rigid(1, 0, 10, 100, 0, 0), rigid(2, 0, 10, 100, 1, 1)};
  for (SlotCost cost :
       {SlotCost::kCumulated, SlotCost::kMinBandwidth, SlotCost::kMinVolume}) {
    const auto result = schedule_rigid_slots(net, rs, cost);
    EXPECT_EQ(result.accepted_count(), 2u) << to_string(cost);
  }
}

TEST(RigidSlots, EmptyRequestSet) {
  const Network net = Network::uniform(1, 1, mbps(100));
  const auto result = schedule_rigid_slots(net, std::vector<Request>{},
                                           SlotCost::kCumulated);
  EXPECT_EQ(result.accepted_count(), 0u);
  EXPECT_TRUE(result.rejected.empty());
}

TEST(Registry, RigidLineupHasFourEntries) {
  const auto all = rigid_schedulers();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].name, "FCFS");
  EXPECT_EQ(all[1].name, "CUMULATED-SLOTS");
  EXPECT_EQ(all[2].name, "MINBW-SLOTS");
  EXPECT_EQ(all[3].name, "MINVOL-SLOTS");
}

// ---------------------------------------------------------------------------
// Property sweep: every rigid heuristic produces a validator-clean schedule
// on random paper workloads across loads, and rejected+accepted == total.
// ---------------------------------------------------------------------------

class RigidScheduleValidity
    : public ::testing::TestWithParam<std::tuple<std::size_t, double, std::uint64_t>> {};

TEST_P(RigidScheduleValidity, SchedulesAreFeasibleAndComplete) {
  const auto [scheduler_index, load, seed] = GetParam();
  workload::Scenario scenario =
      workload::paper_rigid(Duration::seconds(1), Duration::seconds(2000));
  scenario.spec.mean_interarrival =
      workload::interarrival_for_load(scenario.spec, scenario.network, load);
  Rng rng{seed};
  const auto requests = workload::generate(scenario.spec, rng);
  ASSERT_GT(requests.size(), 10u);

  const auto scheduler = rigid_schedulers().at(scheduler_index);
  const auto result = scheduler.run(scenario.network, requests);

  EXPECT_EQ(result.accepted_count() + result.rejected.size(), requests.size());
  const auto report = validate_schedule(scenario.network, requests, result.schedule);
  EXPECT_TRUE(report.ok()) << scheduler.name << " invalid:\n" << report.to_string();
  // Rigid heuristics never delay starts or change rates.
  for (const Assignment& a : result.schedule.assignments()) {
    for (const Request& r : requests) {
      if (r.id != a.request) continue;
      EXPECT_EQ(a.start, r.release);
      EXPECT_NEAR(a.bw.to_bytes_per_second(), r.min_rate().to_bytes_per_second(), 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllHeuristicsAcrossLoads, RigidScheduleValidity,
    ::testing::Combine(::testing::Values(0u, 1u, 2u, 3u),
                       ::testing::Values(0.5, 2.0, 6.0),
                       ::testing::Values(11u, 22u)));

}  // namespace
}  // namespace gridbw::heuristics
