// Unit tests for the Schedule container and ScheduleResult.

#include "core/schedule.hpp"

#include <gtest/gtest.h>

namespace gridbw {
namespace {

TimePoint at(double s) { return TimePoint::at_seconds(s); }
Bandwidth mbps(double m) { return Bandwidth::megabytes_per_second(m); }

TEST(Schedule, StartsEmpty) {
  Schedule s;
  EXPECT_EQ(s.accepted_count(), 0u);
  EXPECT_FALSE(s.is_accepted(1));
  EXPECT_FALSE(s.assignment(1).has_value());
}

TEST(Schedule, AcceptRecordsAssignment) {
  Schedule s;
  s.accept(42, at(10), mbps(50));
  EXPECT_TRUE(s.is_accepted(42));
  const auto a = s.assignment(42);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->start, at(10));
  EXPECT_EQ(a->bw, mbps(50));
  EXPECT_EQ(s.accepted_count(), 1u);
}

TEST(Schedule, DuplicateAcceptThrows) {
  Schedule s;
  s.accept(1, at(0), mbps(10));
  EXPECT_THROW(s.accept(1, at(5), mbps(20)), std::logic_error);
}

TEST(Schedule, WithdrawRemoves) {
  Schedule s;
  s.accept(1, at(0), mbps(10));
  s.accept(2, at(1), mbps(20));
  s.accept(3, at(2), mbps(30));
  EXPECT_TRUE(s.withdraw(2));
  EXPECT_FALSE(s.is_accepted(2));
  EXPECT_EQ(s.accepted_count(), 2u);
  // Remaining assignments intact (withdraw swaps from the back).
  EXPECT_EQ(s.assignment(1)->bw, mbps(10));
  EXPECT_EQ(s.assignment(3)->bw, mbps(30));
  EXPECT_FALSE(s.withdraw(2));  // already gone
  EXPECT_FALSE(s.withdraw(99));
}

TEST(Schedule, WithdrawThenReacceptAllowed) {
  Schedule s;
  s.accept(1, at(0), mbps(10));
  EXPECT_TRUE(s.withdraw(1));
  s.accept(1, at(5), mbps(20));
  EXPECT_EQ(s.assignment(1)->start, at(5));
}

TEST(Assignment, EndDerivesFromVolume) {
  const Request r = RequestBuilder{5}
                        .from(IngressId{0})
                        .to(EgressId{0})
                        .window(at(0), at(100))
                        .volume(Volume::gigabytes(1))
                        .max_rate(mbps(100))
                        .build();
  const Assignment a{5, at(10), mbps(50)};
  EXPECT_EQ(a.end(r), at(30));  // 1 GB at 50 MB/s = 20 s
}

TEST(ScheduleResult, AcceptRate) {
  ScheduleResult r;
  r.schedule.accept(1, at(0), mbps(1));
  r.schedule.accept(2, at(0), mbps(1));
  r.rejected = {3, 4, 5, 6};
  EXPECT_EQ(r.accepted_count(), 2u);
  EXPECT_EQ(r.total_count(), 6u);
  EXPECT_NEAR(r.accept_rate(), 2.0 / 6.0, 1e-12);
}

TEST(ScheduleResult, EmptyAcceptRateIsZero) {
  const ScheduleResult r;
  EXPECT_DOUBLE_EQ(r.accept_rate(), 0.0);
}

}  // namespace
}  // namespace gridbw
